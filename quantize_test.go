package must

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// searchTop1 runs a k=3 search for the given vectors and returns the top
// match ID.
func searchTop1(t *testing.T, s Service, v NamedVectors) int64 {
	t.Helper()
	resp, err := s.Search(context.Background(), Query{Vectors: v, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) == 0 {
		t.Fatal("no matches")
	}
	return resp.Matches[0].ID
}

func TestEngineEnableQuantizationAfterBuild(t *testing.T) {
	e, rng := newBuiltEngine(t, 500)
	if e.Quantized() {
		t.Fatal("engine reports quantized before EnableQuantization")
	}
	if err := e.EnableQuantization(-1); err == nil {
		t.Fatal("negative rerankK accepted")
	}
	if err := e.EnableQuantization(0); err != nil {
		t.Fatal(err)
	}
	if !e.Quantized() {
		t.Fatal("engine not quantized after EnableQuantization")
	}
	// Enabling twice only updates the re-rank depth.
	if err := e.EnableQuantization(64); err != nil {
		t.Fatal(err)
	}
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.QuantizedBytes <= 0 {
		t.Errorf("QuantizedBytes = %d, want > 0", st.QuantizedBytes)
	}
	if st.KernelVariant == "" {
		t.Error("KernelVariant empty")
	}

	// The quantized path must still land exact self-queries: insert a
	// fresh object after enabling (covers the post-build SyncSQ8 on
	// insert) and search for it.
	v := NamedVectors{
		"image": engRandVec(rng, engImgDim),
		"text":  engRandVec(rng, engTxtDim),
	}
	id, err := e.Insert(v)
	if err != nil {
		t.Fatal(err)
	}
	if got := searchTop1(t, e, v); got != id {
		t.Errorf("quantized self-query top match = %d, want %d", got, id)
	}
}

func TestEngineQuantizationBeforeBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	e, err := NewEngine(engSchema(), EngineOptions{Build: BuildOptions{Gamma: 12, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableQuantization(20); err != nil {
		t.Fatal(err)
	}
	var last NamedVectors
	for i := 0; i < 300; i++ {
		last = NamedVectors{
			"image": engRandVec(rng, engImgDim),
			"text":  engRandVec(rng, engTxtDim),
		}
		if _, err := e.Insert(last); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-build inserts must not train the quantizer on a partial corpus;
	// Build does, via the pipeline's after-seal hook.
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.QuantizedBytes <= 0 {
		t.Errorf("QuantizedBytes = %d after quantized build, want > 0", st.QuantizedBytes)
	}
	if got := searchTop1(t, e, last); got != int64(e.Len()-1) {
		t.Errorf("quantized self-query top match = %d, want %d", got, e.Len()-1)
	}
}

func TestEngineQuantizedRebuild(t *testing.T) {
	e, rng := newBuiltEngine(t, 300)
	if err := e.EnableQuantization(0); err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 50; id++ {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if !e.Quantized() {
		t.Fatal("quantization lost across Rebuild")
	}
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.QuantizedBytes <= 0 {
		t.Errorf("QuantizedBytes = %d after rebuild, want > 0", st.QuantizedBytes)
	}
	v := NamedVectors{
		"image": engRandVec(rng, engImgDim),
		"text":  engRandVec(rng, engTxtDim),
	}
	id, err := e.Insert(v)
	if err != nil {
		t.Fatal(err)
	}
	if got := searchTop1(t, e, v); got != id {
		t.Errorf("post-rebuild quantized self-query top match = %d, want %d", got, id)
	}
}

// TestEngineQuantizedPersistence checks the v5 collection block: a
// quantized engine's snapshot carries the trained SQ8 shadow and resumes
// quantized, while a non-quantized engine keeps writing the byte-stable
// v4 format.
func TestEngineQuantizedPersistence(t *testing.T) {
	e, rng := newBuiltEngine(t, 300)

	var plain bytes.Buffer
	if err := e.SaveTo(&plain); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain.Bytes(), clMagicV5[:]) {
		t.Fatal("non-quantized engine snapshot contains the v5 collection magic")
	}
	if !bytes.Contains(plain.Bytes(), []byte("MUSTCL4\n")) {
		t.Fatal("non-quantized engine snapshot lost the v4 collection magic")
	}

	if err := e.EnableQuantization(0); err != nil {
		t.Fatal(err)
	}
	var quant bytes.Buffer
	if err := e.SaveTo(&quant); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(quant.Bytes(), clMagicV5[:]) {
		t.Fatal("quantized engine snapshot does not contain the v5 collection magic")
	}

	e2, err := ReadEngine(&quant)
	if err != nil {
		t.Fatal(err)
	}
	if !e2.Quantized() {
		t.Fatal("restored engine not quantized")
	}
	st1, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := e2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// The live store reports reserved chunk capacity; the restored one
	// adopts an exact-size code arena, so it may shrink — never grow.
	if st2.QuantizedBytes <= 0 || st2.QuantizedBytes > st1.QuantizedBytes {
		t.Errorf("restored QuantizedBytes = %d, want in (0, %d]", st2.QuantizedBytes, st1.QuantizedBytes)
	}

	// The restored engine must search identically: same codes, same
	// graph, same exact re-rank.
	for i := 0; i < 5; i++ {
		q := NamedVectors{
			"image": engRandVec(rng, engImgDim),
			"text":  engRandVec(rng, engTxtDim),
		}
		a, err := e.Search(context.Background(), Query{Vectors: q, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		b, err := e2.Search(context.Background(), Query{Vectors: q, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		for j := range a.Matches {
			if a.Matches[j].ID != b.Matches[j].ID || a.Matches[j].Similarity != b.Matches[j].Similarity {
				t.Fatalf("query %d result %d: (%d, %v) vs restored (%d, %v)",
					i, j, a.Matches[j].ID, a.Matches[j].Similarity, b.Matches[j].ID, b.Matches[j].Similarity)
			}
		}
	}
}

func TestShardedEngineQuantization(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s, err := NewShardedEngine(engSchema(), 3, EngineOptions{Build: BuildOptions{Gamma: 12, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := s.Insert(NamedVectors{
			"image": engRandVec(rng, engImgDim),
			"text":  engRandVec(rng, engTxtDim),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	if s.Quantized() {
		t.Fatal("sharded engine reports quantized before EnableQuantization")
	}
	if err := s.EnableQuantization(0); err != nil {
		t.Fatal(err)
	}
	if !s.Quantized() {
		t.Fatal("sharded engine not quantized after fan-out")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.QuantizedBytes <= 0 {
		t.Errorf("aggregated QuantizedBytes = %d, want > 0", st.QuantizedBytes)
	}
	if st.KernelVariant == "" {
		t.Error("aggregated KernelVariant empty")
	}
	v := NamedVectors{
		"image": engRandVec(rng, engImgDim),
		"text":  engRandVec(rng, engTxtDim),
	}
	id, err := s.Insert(v)
	if err != nil {
		t.Fatal(err)
	}
	if got := searchTop1(t, s, v); got != id {
		t.Errorf("sharded quantized self-query top match = %d, want %d", got, id)
	}

	// Quantization survives a sharded snapshot/restore round trip.
	dir := t.TempDir()
	path := dir + "/sharded.must"
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadService(path)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Quantized() {
		t.Fatal("restored sharded engine not quantized")
	}
	if got := searchTop1(t, restored, v); got != id {
		t.Errorf("restored sharded self-query top match = %d, want %d", got, id)
	}
}
