// Dynamic demonstrates the §IX index-maintenance features on a live
// index: incremental insertion (HNSW/Vamana-style neighbor search +
// linking), tombstone deletion (excluded from results, kept for routing),
// filtered search (the §III hybrid-query setting), and the iterative
// refinement loop (reuse a returned result as the next query's target
// reference).
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand"

	"must"
)

const (
	imageDim = 24
	textDim  = 12
)

func main() {
	rng := rand.New(rand.NewSource(7))
	c := must.NewCollection(imageDim, textDim)
	for i := 0; i < 2000; i++ {
		if _, err := c.Add(must.Object{randVec(rng, imageDim), randVec(rng, textDim)}); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := must.Build(c, c.UniformWeights(), must.BuildOptions{Gamma: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built index over %d objects\n", ix.Stats().Objects)

	// 1. Incremental insert: a brand-new product appears.
	img := randVec(rng, imageDim)
	txt := randVec(rng, textDim)
	newID, err := ix.Insert(must.Object{img, txt})
	if err != nil {
		log.Fatal(err)
	}
	q := must.Object{perturb(rng, img, 0.05), perturb(rng, txt, 0.05)}
	ms, err := ix.Search(q, must.SearchOptions{K: 3, L: 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted object %d; query for it returns top-1 = %d (sim %.3f)\n",
		newID, ms[0].ID, ms[0].Similarity)

	// 2. Tombstone deletion: the product is discontinued.
	if err := ix.Delete(newID); err != nil {
		log.Fatal(err)
	}
	ms, err = ix.Search(q, must.SearchOptions{K: 3, L: 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after Delete(%d): top-1 = %d (deleted objects keep routing, never surface)\n",
		newID, ms[0].ID)

	// 3. Filtered search: only even IDs qualify (an attribute predicate).
	ms, err = ix.Search(q, must.SearchOptions{K: 5, L: 200, Filter: func(id int) bool { return id%2 == 0 }})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("hybrid query (id%2==0):")
	for _, m := range ms {
		fmt.Printf(" %d", m.ID)
	}
	fmt.Println()

	// 4. Iterative refinement: take the current best, keep its look,
	// change the wish (§IX single-modality interaction loop).
	picked := ms[0].ID
	refined, err := ix.QueryFromObject(picked, must.Object{nil, randVec(rng, textDim)})
	if err != nil {
		log.Fatal(err)
	}
	ms, err = ix.Search(refined, must.SearchOptions{K: 3, L: 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refined around object %d with a new text wish: top-3 =", picked)
	for _, m := range ms {
		fmt.Printf(" %d", m.ID)
	}
	fmt.Println()

	// 5. Early termination: trade a little recall for latency.
	fast, err := ix.Search(q, must.SearchOptions{K: 3, L: 400, Patience: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("early-terminated search still returns %d results (top sim %.3f)\n",
		len(fast), fast[0].Similarity)
}

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func perturb(rng *rand.Rand, v []float32, eps float64) []float32 {
	out := make([]float32, len(v))
	for i := range v {
		out[i] = v[i] + float32(rng.NormFloat64()*eps)
	}
	return out
}
