// Dynamic demonstrates the §IX index-maintenance features on a live
// Engine: incremental insertion (HNSW/Vamana-style neighbor search +
// linking), tombstone deletion (excluded from results, kept for routing),
// filtered search (the §III hybrid-query setting), iterative refinement
// (reuse a returned result as the next query's target reference), early
// termination, and an explicit Rebuild that compacts tombstones while
// preserving object IDs — all safe under concurrent use.
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"must"
)

const (
	imageDim = 24
	textDim  = 12
)

func main() {
	rng := rand.New(rand.NewSource(7))
	engine, err := must.NewEngine(must.Schema{
		{Name: "image", Dim: imageDim},
		{Name: "text", Dim: textDim},
	}, must.EngineOptions{Build: must.BuildOptions{Gamma: 16, Seed: 1}})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := engine.Insert(must.NamedVectors{
			"image": randVec(rng, imageDim),
			"text":  randVec(rng, textDim),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := engine.Build(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built engine over %d objects\n", engine.Len())
	ctx := context.Background()

	// 1. Incremental insert: a brand-new product appears on the live index.
	img := randVec(rng, imageDim)
	txt := randVec(rng, textDim)
	newID, err := engine.Insert(must.NamedVectors{"image": img, "text": txt})
	if err != nil {
		log.Fatal(err)
	}
	q := must.Query{
		Vectors: must.NamedVectors{
			"image": perturb(rng, img, 0.05),
			"text":  perturb(rng, txt, 0.05),
		},
		K: 3, L: 150,
	}
	resp, err := engine.Search(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted object %d; query for it returns top-1 = %d (sim %.3f)\n",
		newID, resp.Matches[0].ID, resp.Matches[0].Similarity)

	// 2. Tombstone deletion: the product is discontinued.
	if err := engine.Delete(newID); err != nil {
		log.Fatal(err)
	}
	resp, err = engine.Search(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after Delete(%d): top-1 = %d (deleted objects keep routing, never surface)\n",
		newID, resp.Matches[0].ID)

	// 3. Filtered search: only even IDs qualify (an attribute predicate).
	filtered := q
	filtered.K, filtered.L = 5, 200
	filtered.Filter = func(id int64) bool { return id%2 == 0 }
	resp, err = engine.Search(ctx, filtered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("hybrid query (id%2==0):")
	for _, m := range resp.Matches {
		fmt.Printf(" %d", m.ID)
	}
	fmt.Println()

	// 4. Iterative refinement: take the current best, keep its look,
	// change the wish (§IX single-modality interaction loop).
	picked := resp.Matches[0].ID
	liked, err := engine.Object(picked)
	if err != nil {
		log.Fatal(err)
	}
	resp, err = engine.Search(ctx, must.Query{
		Vectors: must.NamedVectors{
			"image": liked["image"],        // keep the returned look
			"text":  randVec(rng, textDim), // new wish
		},
		K: 3, L: 150,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refined around object %d with a new text wish: top-3 =", picked)
	for _, m := range resp.Matches {
		fmt.Printf(" %d", m.ID)
	}
	fmt.Println()

	// 5. Early termination: trade a little recall for latency.
	fast := q
	fast.L, fast.Patience = 400, 3
	resp, err = engine.Search(ctx, fast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("early-terminated search still returns %d results (top sim %.3f)\n",
		len(resp.Matches), resp.Matches[0].Similarity)

	// 6. Rebuild: compact the tombstones away; IDs are preserved.
	if err := engine.Rebuild(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after Rebuild: %d live objects, %d tombstones, object %d still addressable: %v\n",
		engine.Len(), engine.Deleted(), picked, func() bool {
			_, err := engine.Object(picked)
			return err == nil
		}())
}

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func perturb(rng *rand.Rand, v []float32, eps float64) []float32 {
	out := make([]float32, len(v))
	for i := range v {
		out[i] = v[i] + float32(rng.NormFloat64()*eps)
	}
	return out
}
