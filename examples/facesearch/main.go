// Facesearch recreates the paper's Fig. 3 scenario: retrieve a face that
// matches a reference photo *after* applying an attribute edit described
// in text ("no glasses and hat"). It uses the CelebA-like simulated
// dataset and encoders, learns modality weights through the Engine, and
// contrasts MUST's joint search against what each single modality would
// return — using named weight overrides instead of positional vectors.
//
//	go run ./examples/facesearch
package main

import (
	"context"
	"fmt"
	"log"

	"must"
	"must/internal/dataset"
	"must/internal/encoder"
	"must/internal/vec"
)

func main() {
	// CelebA-like corpus: face latents + attribute annotations.
	raw, err := dataset.GenerateSemantic(dataset.CelebASim(0.15))
	if err != nil {
		log.Fatal(err)
	}
	base := encoder.NewResNet50(raw.ContentDim, 7)
	set := dataset.EncoderSet{
		Unimodal:    []encoder.Encoder{base, encoder.NewOrdinal(raw.AttrDim, 7)},
		Composition: encoder.NewCLIP(base, 7), // CLIP fuses face+text for the query
	}
	enc := dataset.MustEncode(raw, set)
	fmt.Printf("corpus: %d faces with %d modalities (%s)\n", len(enc.Objects), enc.M, enc.EncoderLabel)

	engine, err := must.NewEngine(must.Schema{
		{Name: "face", Dim: enc.Dims[0]},
		{Name: "attrs", Dim: enc.Dims[1]},
	}, must.EngineOptions{Build: must.BuildOptions{Gamma: 24, Seed: 2}})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range enc.Objects {
		if _, err := engine.InsertObject(must.Object(o)); err != nil {
			log.Fatal(err)
		}
	}

	// Learn weights from the first 150 workload queries.
	var trainQ []must.NamedVectors
	var trainPos []int64
	for _, q := range enc.Queries[:150] {
		trainQ = append(trainQ, must.NamedVectors{"face": q.Vectors[0], "attrs": q.Vectors[1]})
		trainPos = append(trainPos, int64(q.GroundTruth[0]))
	}
	w, err := engine.LearnWeights(trainQ, trainPos, must.WeightConfig{Epochs: 150, LearningRate: 0.01, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned weights: face ω²=%.3f, attribute-text ω²=%.3f\n", w[0]*w[0], w[1]*w[1])

	if err := engine.Build(); err != nil {
		log.Fatal(err)
	}

	// Run a held-out "edit this face" query three ways.
	q := enc.Queries[200]
	gt := int64(q.GroundTruth[0])
	fmt.Printf("\nquery: reference face + attribute edit (ground truth = face #%d)\n", gt)

	ctx := context.Background()
	show := func(label string, weights map[string]float32) {
		resp, err := engine.Search(ctx, must.Query{
			Vectors: must.NamedVectors{"face": q.Vectors[0], "attrs": q.Vectors[1]},
			K:       3, L: 300,
			Weights: weights,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s", label)
		for _, m := range resp.Matches {
			mark := ""
			if m.ID == gt {
				mark = "*"
			}
			// Annotate with latent-space truth for the demo printout.
			refSim := vec.Dot(raw.Objects[m.ID].Latents[0], raw.Queries[200].Latents[0])
			attrSim := vec.Dot(raw.Objects[m.ID].Latents[1], raw.Queries[200].Latents[1])
			fmt.Printf("  #%d%s(face~%.2f attr~%.2f)", m.ID, mark, refSim, attrSim)
		}
		fmt.Println()
	}
	show("face modality only:", map[string]float32{"face": 1, "attrs": 0})
	show("attribute text only:", map[string]float32{"face": 0, "attrs": 1})
	show("MUST joint (learned):", nil)
	fmt.Println("\n(* ground truth; face~ / attr~ are true latent similarities —")
	fmt.Println(" face-only finds look-alikes with wrong attributes, text-only finds")
	fmt.Println(" attribute matches with wrong faces, the joint search finds both)")
}
