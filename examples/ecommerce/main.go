// Ecommerce demonstrates user-defined weight preferences (§VIII-F,
// Tab. IX) on a Shopping-like product corpus: the same "reference product
// + attribute replacement" query returns visually-faithful results when
// the image modality is upweighted and attribute-faithful results when
// the text modality is upweighted. Per-query preferences are expressed
// through the Engine's named weight overrides, and the per-modality
// similarity breakdown on each match makes the trade-off directly
// observable — no need to recompute dot products by hand.
//
//	go run ./examples/ecommerce
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"must"
	"must/internal/dataset"
	"must/internal/encoder"
)

func main() {
	raw, err := dataset.GenerateSemantic(dataset.ShoppingSim(0.15))
	if err != nil {
		log.Fatal(err)
	}
	set := dataset.EncoderSet{Unimodal: []encoder.Encoder{
		encoder.NewResNet50(raw.ContentDim, 7),
		encoder.NewOrdinal(raw.AttrDim, 7),
	}}
	enc := dataset.MustEncode(raw, set)
	fmt.Printf("catalogue: %d products (%s)\n", len(enc.Objects), enc.EncoderLabel)

	engine, err := must.NewEngine(must.Schema{
		{Name: "image", Dim: enc.Dims[0]},
		{Name: "text", Dim: enc.Dims[1]},
	}, must.EngineOptions{Build: must.BuildOptions{Gamma: 24, Seed: 2}})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range enc.Objects {
		if _, err := engine.InsertObject(must.Object(o)); err != nil {
			log.Fatal(err)
		}
	}
	// Build one index under balanced weights; shoppers then express
	// preferences per query via Query.Weights.
	if err := engine.Build(); err != nil {
		log.Fatal(err)
	}

	qIdx := 42
	q := enc.Queries[qIdx]
	fmt.Printf("\nquery #%d: reference product + \"replace fabric/color\" edit\n", qIdx)
	fmt.Println("ω0²(image)  ω1²(text)   mean image contrib   mean text contrib   (of top-5)")
	ctx := context.Background()
	for _, w0sq := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		resp, err := engine.Search(ctx, must.Query{
			Vectors: must.NamedVectors{
				"image": q.Vectors[0],
				"text":  q.Vectors[1],
			},
			K: 5, L: 300,
			Weights: map[string]float32{
				"image": float32(math.Sqrt(w0sq)),
				"text":  float32(math.Sqrt(1 - w0sq)),
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		var imgSim, txtSim float64
		for _, m := range resp.Matches {
			// Normalize the per-modality contribution ω_i²·IP_i back to
			// the raw similarity IP_i for comparison across weightings.
			imgSim += float64(m.ByModality["image"]) / w0sq
			txtSim += float64(m.ByModality["text"]) / (1 - w0sq)
		}
		n := float64(len(resp.Matches))
		fmt.Printf("   %.1f         %.1f       %12.4f       %12.4f\n", w0sq, 1-w0sq, imgSim/n, txtSim/n)
	}
	fmt.Println("\nRaising the image weight pulls results toward the reference look;")
	fmt.Println("raising the text weight pulls them toward the requested attributes —")
	fmt.Println("the Tab. IX trade-off, reproduced on one index with per-query weights.")
}
