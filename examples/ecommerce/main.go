// Ecommerce demonstrates user-defined weight preferences (§VIII-F,
// Tab. IX) on a Shopping-like product corpus: the same "reference product
// + attribute replacement" query returns visually-faithful results when
// the image modality is upweighted and attribute-faithful results when
// the text modality is upweighted.
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"
	"math"

	"must"
	"must/internal/dataset"
	"must/internal/encoder"
	"must/internal/vec"
)

func main() {
	raw, err := dataset.GenerateSemantic(dataset.ShoppingSim(0.15))
	if err != nil {
		log.Fatal(err)
	}
	set := dataset.EncoderSet{Unimodal: []encoder.Encoder{
		encoder.NewResNet50(raw.ContentDim, 7),
		encoder.NewOrdinal(raw.AttrDim, 7),
	}}
	enc := dataset.MustEncode(raw, set)
	fmt.Printf("catalogue: %d products (%s)\n", len(enc.Objects), enc.EncoderLabel)

	c := must.NewCollection(enc.Dims...)
	for _, o := range enc.Objects {
		if _, err := c.Add(must.Object(o)); err != nil {
			log.Fatal(err)
		}
	}

	// Build one index under balanced weights; shoppers then express
	// preferences per query via SearchOptions.Weights.
	ix, err := must.Build(c, c.UniformWeights(), must.BuildOptions{Gamma: 24, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	qIdx := 42
	q := enc.Queries[qIdx]
	fmt.Printf("\nquery #%d: reference product + \"replace fabric/color\" edit\n", qIdx)
	fmt.Println("ω0²(image)  ω1²(text)   mean image-sim   mean text-sim   (of top-5 results)")
	for _, w0sq := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		w := must.Weights{float32(math.Sqrt(w0sq)), float32(math.Sqrt(1 - w0sq))}
		matches, err := ix.Search(must.Object(q.Vectors), must.SearchOptions{K: 5, L: 300, Weights: w})
		if err != nil {
			log.Fatal(err)
		}
		var imgSim, txtSim float64
		for _, m := range matches {
			imgSim += float64(vec.Dot(q.Vectors[0], enc.Objects[m.ID][0]))
			txtSim += float64(vec.Dot(q.Vectors[1], enc.Objects[m.ID][1]))
		}
		n := float64(len(matches))
		fmt.Printf("   %.1f         %.1f       %10.4f       %10.4f\n", w0sq, 1-w0sq, imgSim/n, txtSim/n)
	}
	fmt.Println("\nRaising the image weight pulls results toward the reference look;")
	fmt.Println("raising the text weight pulls them toward the requested attributes —")
	fmt.Println("the Tab. IX trade-off, reproduced on one index with per-query weights.")
}
