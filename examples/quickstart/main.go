// Quickstart: the minimal end-to-end MUST pipeline using only the public
// API — add multimodal objects, learn modality weights from a handful of
// (query, true answer) pairs, build the fused index, and search.
//
// The "embeddings" here are synthetic: each object is a product with an
// image vector (modality 0, the target) and a description vector
// (modality 1). A query gives a reference image plus a description tweak;
// the planted answer matches both.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"must"
)

const (
	imageDim = 32
	textDim  = 16
	corpus   = 3000
	training = 100
)

func main() {
	rng := rand.New(rand.NewSource(42))
	c := must.NewCollection(imageDim, textDim)

	// Plant training pairs: object i is the true answer for query i.
	var trainQueries []must.Object
	var trainPositives []int
	for i := 0; i < training; i++ {
		img := randVec(rng, imageDim)
		txt := randVec(rng, textDim)
		id, err := c.Add(must.Object{perturb(rng, img, 0.1), perturb(rng, txt, 0.1)})
		if err != nil {
			log.Fatal(err)
		}
		trainQueries = append(trainQueries, must.Object{perturb(rng, img, 0.1), perturb(rng, txt, 0.1)})
		trainPositives = append(trainPositives, id)
	}
	// Background corpus.
	for c.Len() < corpus {
		if _, err := c.Add(must.Object{randVec(rng, imageDim), randVec(rng, textDim)}); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Learn the modality weights (§VI of the paper).
	w, err := must.LearnWeights(c, trainQueries, trainPositives, must.WeightConfig{
		Epochs: 150, LearningRate: 0.02, Negatives: 5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned weights: ω0²=%.3f ω1²=%.3f\n", w[0]*w[0], w[1]*w[1])

	// 2. Build the fused proximity-graph index (§VII).
	ix, err := must.Build(c, w, must.BuildOptions{Gamma: 20, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("index: %d objects, %d edges, %.1f avg degree, built in %dms\n",
		st.Objects, st.Edges, st.AvgDegree, st.BuildTime/1e6)

	// 3. Search with a held-out query built the same way as training.
	img := randVec(rng, imageDim)
	txt := randVec(rng, textDim)
	wantID, err := c.Add(must.Object{perturb(rng, img, 0.1), perturb(rng, txt, 0.1)})
	if err != nil {
		log.Fatal(err)
	}
	// Rebuild to include the new object (the index is a static snapshot).
	ix, err = must.Build(c, w, must.BuildOptions{Gamma: 20, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	matches, err := ix.Search(must.Object{perturb(rng, img, 0.1), perturb(rng, txt, 0.1)}, must.SearchOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 matches:")
	for rank, m := range matches {
		mark := " "
		if m.ID == wantID {
			mark = "*"
		}
		fmt.Printf("  %d.%s object %d (joint similarity %.4f)\n", rank+1, mark, m.ID, m.Similarity)
	}
}

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func perturb(rng *rand.Rand, v []float32, eps float64) []float32 {
	out := make([]float32, len(v))
	for i := range v {
		out[i] = v[i] + float32(rng.NormFloat64()*eps)
	}
	return out
}
