// Quickstart: the minimal end-to-end MUST pipeline using the Engine API —
// declare a schema of named modalities, insert multimodal objects, learn
// modality weights from a handful of (query, true answer) pairs, build
// the fused index, and search with a typed Query.
//
// The "embeddings" here are synthetic: each object is a product with an
// image vector ("image", the target modality) and a description vector
// ("text"). A query gives a reference image plus a description tweak; the
// planted answer matches both.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"must"
)

const (
	imageDim = 32
	textDim  = 16
	corpus   = 3000
	training = 100
)

func main() {
	rng := rand.New(rand.NewSource(42))
	engine, err := must.NewEngine(must.Schema{
		{Name: "image", Dim: imageDim}, // modality 0 = target
		{Name: "text", Dim: textDim},
	}, must.EngineOptions{Build: must.BuildOptions{Gamma: 20, Seed: 2}})
	if err != nil {
		log.Fatal(err)
	}

	// Plant training pairs: object i is the true answer for query i.
	var trainQueries []must.NamedVectors
	var trainPositives []int64
	for i := 0; i < training; i++ {
		img := randVec(rng, imageDim)
		txt := randVec(rng, textDim)
		id, err := engine.Insert(must.NamedVectors{
			"image": perturb(rng, img, 0.1),
			"text":  perturb(rng, txt, 0.1),
		})
		if err != nil {
			log.Fatal(err)
		}
		trainQueries = append(trainQueries, must.NamedVectors{
			"image": perturb(rng, img, 0.1),
			"text":  perturb(rng, txt, 0.1),
		})
		trainPositives = append(trainPositives, id)
	}
	// Background corpus, plus the planted answer for the demo query.
	img := randVec(rng, imageDim)
	txt := randVec(rng, textDim)
	wantID, err := engine.Insert(must.NamedVectors{
		"image": perturb(rng, img, 0.1),
		"text":  perturb(rng, txt, 0.1),
	})
	if err != nil {
		log.Fatal(err)
	}
	for engine.Len() < corpus {
		if _, err := engine.Insert(must.NamedVectors{
			"image": randVec(rng, imageDim),
			"text":  randVec(rng, textDim),
		}); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Learn the modality weights (§VI of the paper).
	w, err := engine.LearnWeights(trainQueries, trainPositives, must.WeightConfig{
		Epochs: 150, LearningRate: 0.02, Negatives: 5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned weights: ω0²=%.3f ω1²=%.3f\n", w[0]*w[0], w[1]*w[1])

	// 2. Build the fused proximity-graph index (§VII).
	if err := engine.Build(); err != nil {
		log.Fatal(err)
	}
	st, err := engine.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d objects, %d edges, %.1f avg degree, built in %dms\n",
		st.Objects, st.Edges, st.AvgDegree, st.BuildTime/1e6)

	// 3. Search with a typed query: named modality vectors, context for
	// cancellation, per-modality score breakdown on every match.
	resp, err := engine.Search(context.Background(), must.Query{
		Vectors: must.NamedVectors{
			"image": perturb(rng, img, 0.1),
			"text":  perturb(rng, txt, 0.1),
		},
		K: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 matches (search took %v, %d hops):\n", resp.Latency, resp.Stats.Hops)
	for rank, m := range resp.Matches {
		mark := " "
		if m.ID == wantID {
			mark = "*"
		}
		fmt.Printf("  %d.%s object %d  joint=%.4f  (image %.4f + text %.4f)\n",
			rank+1, mark, m.ID, m.Similarity, m.ByModality["image"], m.ByModality["text"])
	}
}

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func perturb(rng *rand.Rand, v []float32, eps float64) []float32 {
	out := make([]float32, len(v))
	for i := range v {
		out[i] = v[i] + float32(rng.NormFloat64()*eps)
	}
	return out
}
