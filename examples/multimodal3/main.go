// Multimodal3 runs the MS-COCO-style 3-modality workload (image* ×2 +
// text, §VIII-A): a query combines a reference image, a second image
// contributing extra elements, and a text constraint. It compares MUST's
// joint search against searching any single modality, and shows the t ≠ m
// case — dropping query modalities by simply omitting them from the named
// query (§VII-B), with no rebuild and no zero-vector bookkeeping.
//
//	go run ./examples/multimodal3
package main

import (
	"context"
	"fmt"
	"log"

	"must"
	"must/internal/dataset"
	"must/internal/encoder"
	"must/internal/metrics"
)

func main() {
	raw, err := dataset.GenerateSemantic(dataset.MSCOCOSim(0.2))
	if err != nil {
		log.Fatal(err)
	}
	// Layout: [target image, caption text, second image].
	set := dataset.EncoderSet{Unimodal: []encoder.Encoder{
		encoder.NewResNet50(raw.ContentDim, 7),
		encoder.NewGRU(raw.AttrDim, 7),
		encoder.NewResNet50(raw.ContentDim, 9),
	}}
	enc := dataset.MustEncode(raw, set)
	fmt.Printf("corpus: %d scenes, 3 modalities (%s)\n", len(enc.Objects), enc.EncoderLabel)

	names := []string{"image", "text", "image2"}
	engine, err := must.NewEngine(must.Schema{
		{Name: names[0], Dim: enc.Dims[0]},
		{Name: names[1], Dim: enc.Dims[1]},
		{Name: names[2], Dim: enc.Dims[2]},
	}, must.EngineOptions{Build: must.BuildOptions{Gamma: 24, Seed: 2}})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range enc.Objects {
		if _, err := engine.InsertObject(must.Object(o)); err != nil {
			log.Fatal(err)
		}
	}
	var trainQ []must.NamedVectors
	var trainPos []int64
	for _, q := range enc.Queries[:150] {
		trainQ = append(trainQ, namedQuery(names, q.Vectors, nil))
		trainPos = append(trainPos, int64(q.GroundTruth[0]))
	}
	w, err := engine.LearnWeights(trainQ, trainPos, must.WeightConfig{Epochs: 150, LearningRate: 0.01, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned weights ω²: image=%.3f text=%.3f image2=%.3f\n",
		w[0]*w[0], w[1]*w[1], w[2]*w[2])

	if err := engine.Build(); err != nil {
		log.Fatal(err)
	}

	eval := enc.Queries[150:]
	if len(eval) > 150 {
		eval = eval[:150]
	}
	ctx := context.Background()
	// recallAt10 runs the evaluation keeping only the named modalities in
	// the query: omitted modalities get a zero weight automatically.
	recallAt10 := func(keep ...string) float64 {
		var results, truths [][]int
		for _, q := range eval {
			resp, err := engine.Search(ctx, must.Query{
				Vectors: namedQuery(names, q.Vectors, keep),
				K:       10, L: 300,
			})
			if err != nil {
				log.Fatal(err)
			}
			ids := make([]int, len(resp.Matches))
			for i, m := range resp.Matches {
				ids[i] = int(m.ID)
			}
			results = append(results, ids)
			truths = append(truths, q.GroundTruth)
		}
		return metrics.MeanRecall(results, truths)
	}

	fmt.Println("\nRecall@10(1) over", len(eval), "held-out queries:")
	fmt.Printf("  all three modalities (learned ω):  %.4f\n", recallAt10(names...))
	fmt.Printf("  without the text     (t=2):        %.4f\n", recallAt10("image", "image2"))
	fmt.Printf("  without image #2     (t=2):        %.4f\n", recallAt10("image", "text"))
	fmt.Printf("  target image only    (t=1):        %.4f\n", recallAt10("image"))
	fmt.Println("\nMore query modalities → better recall (the Tab. VIII / Tab. X effect);")
	fmt.Println("missing modalities degrade gracefully — just leave them out of the query.")
}

// namedQuery maps positional workload vectors onto modality names,
// keeping only the modalities listed in keep (nil keeps all).
func namedQuery(names []string, vectors [][]float32, keep []string) must.NamedVectors {
	kept := func(name string) bool {
		if keep == nil {
			return true
		}
		for _, k := range keep {
			if k == name {
				return true
			}
		}
		return false
	}
	q := make(must.NamedVectors, len(names))
	for i, name := range names {
		if kept(name) {
			q[name] = vectors[i]
		}
	}
	return q
}
