// Multimodal3 runs the MS-COCO-style 3-modality workload (image* ×2 +
// text, §VIII-A): a query combines a reference image, a second image
// contributing extra elements, and a text constraint. It compares MUST's
// joint search against searching any single modality, and shows the t ≠ m
// case — dropping a query modality via a zero weight (§VII-B).
//
//	go run ./examples/multimodal3
package main

import (
	"fmt"
	"log"

	"must"
	"must/internal/dataset"
	"must/internal/encoder"
	"must/internal/metrics"
)

func main() {
	raw, err := dataset.GenerateSemantic(dataset.MSCOCOSim(0.2))
	if err != nil {
		log.Fatal(err)
	}
	// Layout: [target image, caption text, second image].
	set := dataset.EncoderSet{Unimodal: []encoder.Encoder{
		encoder.NewResNet50(raw.ContentDim, 7),
		encoder.NewGRU(raw.AttrDim, 7),
		encoder.NewResNet50(raw.ContentDim, 9),
	}}
	enc := dataset.MustEncode(raw, set)
	fmt.Printf("corpus: %d scenes, 3 modalities (%s)\n", len(enc.Objects), enc.EncoderLabel)

	c := must.NewCollection(enc.Dims...)
	for _, o := range enc.Objects {
		if _, err := c.Add(must.Object(o)); err != nil {
			log.Fatal(err)
		}
	}
	var trainQ []must.Object
	var trainPos []int
	for _, q := range enc.Queries[:150] {
		trainQ = append(trainQ, must.Object(q.Vectors))
		trainPos = append(trainPos, q.GroundTruth[0])
	}
	w, err := must.LearnWeights(c, trainQ, trainPos, must.WeightConfig{Epochs: 150, LearningRate: 0.01, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned weights ω²: image=%.3f text=%.3f image2=%.3f\n",
		w[0]*w[0], w[1]*w[1], w[2]*w[2])

	ix, err := must.Build(c, w, must.BuildOptions{Gamma: 24, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	eval := enc.Queries[150:]
	if len(eval) > 150 {
		eval = eval[:150]
	}
	recallAt10 := func(weights must.Weights) float64 {
		var results, truths [][]int
		for _, q := range eval {
			ms, err := ix.Search(must.Object(q.Vectors), must.SearchOptions{K: 10, L: 300, Weights: weights})
			if err != nil {
				log.Fatal(err)
			}
			ids := make([]int, len(ms))
			for i, m := range ms {
				ids[i] = m.ID
			}
			results = append(results, ids)
			truths = append(truths, q.GroundTruth)
		}
		return metrics.MeanRecall(results, truths)
	}

	fmt.Println("\nRecall@10(1) over", len(eval), "held-out queries:")
	fmt.Printf("  all three modalities (learned ω):  %.4f\n", recallAt10(nil))
	fmt.Printf("  without the text     (t=2):        %.4f\n", recallAt10(must.Weights{w[0], 0, w[2]}))
	fmt.Printf("  without image #2     (t=2):        %.4f\n", recallAt10(must.Weights{w[0], w[1], 0}))
	fmt.Printf("  target image only    (t=1):        %.4f\n", recallAt10(must.Weights{1, 0, 0}))
	fmt.Println("\nMore query modalities → better recall (the Tab. VIII / Tab. X effect);")
	fmt.Println("missing modalities degrade gracefully via zero weights, no rebuild needed.")
}
