// Scale demonstrates the Tab. VII trend: exact multi-vector search grows
// linearly with corpus size while MUST's fused-graph search stays nearly
// flat, at matched (near-exact) recall. The MUST side runs through the
// Engine, which also serves the query workload concurrently via
// SearchBatch — the production throughput mode the paper's
// single-threaded numbers leave on the table.
//
//	go run ./examples/scale [-base 4000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"must"
	"must/internal/dataset"
	"must/internal/encoder"
)

func main() {
	base := flag.Int("base", 4000, "base corpus size; the sweep runs 1x/2x/4x")
	flag.Parse()

	ctx := context.Background()
	fmt.Println("n        build      exact/query   MUST/query   speedup   batched/query")
	for _, factor := range []int{1, 2, 4} {
		n := *base * factor
		raw, err := dataset.GenerateFeature(dataset.ImageTextN(n, 7))
		if err != nil {
			log.Fatal(err)
		}
		set := dataset.EncoderSet{Unimodal: []encoder.Encoder{
			encoder.NewResNet50(raw.ContentDim, 7),
			encoder.NewOrdinal(raw.AttrDim, 7),
		}}
		enc := dataset.MustEncode(raw, set)

		// Exact baseline on the low-level Collection API.
		c := must.NewCollection(enc.Dims...)
		for _, o := range enc.Objects {
			if _, err := c.Add(must.Object(o)); err != nil {
				log.Fatal(err)
			}
		}
		w := c.UniformWeights()

		// MUST through the Engine.
		engine, err := must.NewEngine(must.Schema{
			{Name: "image", Dim: enc.Dims[0]},
			{Name: "text", Dim: enc.Dims[1]},
		}, must.EngineOptions{Build: must.BuildOptions{Gamma: 24, Seed: 2}})
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range enc.Objects {
			if _, err := engine.InsertObject(must.Object(o)); err != nil {
				log.Fatal(err)
			}
		}
		buildStart := time.Now()
		if err := engine.Build(); err != nil {
			log.Fatal(err)
		}
		buildTime := time.Since(buildStart)

		queries := enc.Queries
		if len(queries) > 100 {
			queries = queries[:100]
		}
		exactStart := time.Now()
		for _, q := range queries {
			if _, err := c.ExactSearch(must.Object(q.Vectors), w, 10); err != nil {
				log.Fatal(err)
			}
		}
		exactPer := time.Since(exactStart) / time.Duration(len(queries))

		typed := make([]must.Query, len(queries))
		for i, q := range queries {
			typed[i] = must.Query{
				Vectors: must.NamedVectors{"image": q.Vectors[0], "text": q.Vectors[1]},
				K:       10, L: 80,
			}
		}
		graphStart := time.Now()
		for _, q := range typed {
			if _, err := engine.Search(ctx, q); err != nil {
				log.Fatal(err)
			}
		}
		graphPer := time.Since(graphStart) / time.Duration(len(queries))

		batchStart := time.Now()
		if _, err := engine.SearchBatch(ctx, typed, 0); err != nil {
			log.Fatal(err)
		}
		batchPer := time.Since(batchStart) / time.Duration(len(queries))

		fmt.Printf("%-8d %-10v %-13v %-12v %-9s %v\n",
			n, buildTime.Round(time.Millisecond),
			exactPer.Round(time.Microsecond), graphPer.Round(time.Microsecond),
			fmt.Sprintf("%.1fx", float64(exactPer)/float64(graphPer)),
			batchPer.Round(time.Microsecond))
	}
	fmt.Println("\nExact per-query time grows with n; the fused-graph search barely moves —")
	fmt.Println("the Tab. VII scalability result (98.4% response-time reduction at 16M) —")
	fmt.Println("and batching across cores amortizes each query further.")
}
