// Scale demonstrates the Tab. VII trend: exact multi-vector search grows
// linearly with corpus size while MUST's fused-graph search stays nearly
// flat, at matched (near-exact) recall.
//
//	go run ./examples/scale [-base 4000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"must"
	"must/internal/dataset"
	"must/internal/encoder"
)

func main() {
	base := flag.Int("base", 4000, "base corpus size; the sweep runs 1x/2x/4x")
	flag.Parse()

	fmt.Println("n        build      exact/query   MUST/query   speedup")
	for _, factor := range []int{1, 2, 4} {
		n := *base * factor
		raw, err := dataset.GenerateFeature(dataset.ImageTextN(n, 7))
		if err != nil {
			log.Fatal(err)
		}
		set := dataset.EncoderSet{Unimodal: []encoder.Encoder{
			encoder.NewResNet50(raw.ContentDim, 7),
			encoder.NewOrdinal(raw.AttrDim, 7),
		}}
		enc := dataset.MustEncode(raw, set)

		c := must.NewCollection(enc.Dims...)
		for _, o := range enc.Objects {
			if _, err := c.Add(must.Object(o)); err != nil {
				log.Fatal(err)
			}
		}
		w := c.UniformWeights()
		buildStart := time.Now()
		ix, err := must.Build(c, w, must.BuildOptions{Gamma: 24, Seed: 2})
		if err != nil {
			log.Fatal(err)
		}
		buildTime := time.Since(buildStart)

		queries := enc.Queries
		if len(queries) > 100 {
			queries = queries[:100]
		}
		exactStart := time.Now()
		for _, q := range queries {
			if _, err := c.ExactSearch(must.Object(q.Vectors), w, 10); err != nil {
				log.Fatal(err)
			}
		}
		exactPer := time.Since(exactStart) / time.Duration(len(queries))

		graphStart := time.Now()
		for _, q := range queries {
			if _, err := ix.Search(must.Object(q.Vectors), must.SearchOptions{K: 10, L: 80}); err != nil {
				log.Fatal(err)
			}
		}
		graphPer := time.Since(graphStart) / time.Duration(len(queries))

		fmt.Printf("%-8d %-10v %-13v %-12v %.1fx\n",
			n, buildTime.Round(time.Millisecond),
			exactPer.Round(time.Microsecond), graphPer.Round(time.Microsecond),
			float64(exactPer)/float64(graphPer))
	}
	fmt.Println("\nExact per-query time grows with n; the fused-graph search barely moves —")
	fmt.Println("the Tab. VII scalability result (98.4% response-time reduction at 16M).")
}
