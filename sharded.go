package must

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"must/internal/graph"
	"must/internal/maint"
	"must/internal/shard"
)

// ErrAllQuarantined is returned by Search/SearchEach when every built
// shard's health breaker is open, so the fan-out has nowhere to route
// the query. The condition is transient: each breaker re-admits a
// half-open probe within its probe interval (default 5s), and a
// maintenance rebuild resets it sooner. Callers should retry shortly;
// mustd maps it to 503 + Retry-After.
var ErrAllQuarantined = errors.New("must: all shards quarantined")

// ShardState is the build-progress state of one shard of a ShardedEngine.
type ShardState uint32

// Shard build-progress states, visible through ShardStats.
const (
	// ShardPending means the shard has no graph yet. Only empty shards
	// stay pending after a successful Build; the first Insert routed to a
	// pending shard builds it lazily.
	ShardPending ShardState = iota
	// ShardBuilding means a Build or Rebuild of the shard's graph is in
	// flight. During a Rebuild the shard keeps serving from its previous
	// graph.
	ShardBuilding
	// ShardBuilt means the shard has a live graph.
	ShardBuilt
)

func (s ShardState) String() string {
	switch s {
	case ShardPending:
		return "pending"
	case ShardBuilding:
		return "building"
	case ShardBuilt:
		return "built"
	}
	return fmt.Sprintf("ShardState(%d)", uint32(s))
}

// ShardInfo is one shard's slice of ShardedEngine.ShardStats.
type ShardInfo struct {
	// State is the shard's build-progress state ("pending", "building",
	// "built").
	State string `json:"state"`
	// Objects is the shard's live object count (tombstones excluded).
	Objects int `json:"objects"`
	// Deleted is the shard's tombstone count.
	Deleted int `json:"deleted"`
	// Epoch is the shard's own mutation epoch. The engine-level Epoch is
	// the sum of these, so any single-shard mutation changes the
	// engine-level value — per-shard writes stay per-shard, but caches
	// keyed on the summed epoch still invalidate correctly.
	Epoch uint64 `json:"epoch"`
	// Health is the shard's circuit-breaker state ("healthy", "degraded",
	// "quarantined", "probing"). Quarantined shards are skipped by the
	// search fan-out until a half-open probe or an automatic rebuild
	// re-admits them.
	Health string `json:"health"`
	// Stats is the shard's index statistics; zero until the shard is
	// built.
	Stats Stats `json:"stats"`
}

// ShardedEngine partitions a corpus into S independent Engine shards, each
// with its own arena-backed store, CSR graph, searcher pool, and locks.
// It implements the same Service surface as Engine and is the scale path:
//
//   - Build and Rebuild run shards in parallel on a bounded worker pool,
//     and Rebuild compacts one shard at a time with no engine-wide stall —
//     each shard keeps serving from its previous graph until its own
//     atomic swap.
//   - Search fans the query out across shards (reusing each shard's
//     pooled searchers) and merges per-shard top-k with a k-way heap,
//     preserving per-modality score breakdowns.
//   - Insert and Delete route by ID, so write locks are per-shard: a
//     write to shard 3 never blocks a search that only touches shard 5.
//
// Global IDs are pure arithmetic over (shard, local): global = local·S +
// shard. Sequential inserts are assigned round-robin, which yields the
// dense sequence 0,1,2,… — byte-identical to the IDs a single Engine
// would hand out for the same insertion order — and keeps shards within
// one object of perfectly balanced.
//
// The shard count is fixed at creation (it is baked into every global
// ID); pick S once, at most a small multiple of the core count.
type ShardedEngine struct {
	schema Schema
	shards []*Engine

	// rr is the round-robin insert cursor; rr mod S picks the next
	// shard. Atomic so Insert never takes an engine-wide lock.
	rr atomic.Uint64

	// buildMu serializes Build/Rebuild at the sharded level, mirroring
	// Engine.rebuildMu.
	buildMu sync.Mutex

	// mu makes the initial Build atomic with respect to every other
	// operation (matching Engine.Build, which holds its write lock for
	// the duration). Rebuild deliberately does NOT hold it — per-shard
	// rebuilds proceed under shardMu only, so serving never stalls.
	mu sync.RWMutex

	// shardMu[j] serializes graph (re)construction of shard j: the
	// parallel Build/Rebuild pools and the lazy build on Insert all
	// transition state[j] under it.
	shardMu []sync.Mutex
	// state[j] is the ShardState of shard j (atomic for lock-free
	// ShardStats reads; written only under shardMu[j]).
	state []atomic.Uint32
	// builtShards counts shards that have a live graph. Zero means the
	// engine as a whole is not built (searches return ErrNotBuilt).
	builtShards atomic.Int32

	// health[j] is shard j's circuit breaker: K consecutive
	// shard-attributable failures — minority panics or straggler
	// timeouts, never query-correlated ones that hit most shards at once
	// — quarantine the shard (skipped by SearchEach until a half-open
	// probe succeeds or a rebuild resets it). Always present;
	// ConfigureHealth replaces the thresholds.
	health []*maint.Breaker

	// adm gates writes at the engine level — one shared budget across
	// shards, debt read as the worst shard's ratio (see SetAdmission).
	adm admission
}

// newShardHealth builds the per-shard breaker set with cfg (zero fields
// take the maint defaults).
func newShardHealth(n int, cfg maint.BreakerConfig) []*maint.Breaker {
	hs := make([]*maint.Breaker, n)
	for j := range hs {
		hs[j] = maint.NewBreaker(cfg)
	}
	return hs
}

// HealthConfig tunes the per-shard circuit breakers; see ConfigureHealth.
type HealthConfig struct {
	// Threshold is K: consecutive shard-attributable failures (panics on
	// a minority of shards, or a fan-out timeout that only this shard
	// missed) within Window before the shard is quarantined (default 3).
	Threshold int
	// Window bounds how far apart consecutive failures may be and still
	// count as one run (default 10s).
	Window time.Duration
	// Probe is how long a quarantined shard stays fully skipped before
	// one half-open probe request is routed to it (default 5s).
	Probe time.Duration
}

// ConfigureHealth retunes every shard's circuit breaker in place (zero
// fields take defaults), resetting all health state to healthy.
// Breakers run with default thresholds from creation, so this is only
// needed to change them.
func (s *ShardedEngine) ConfigureHealth(cfg HealthConfig) {
	for _, b := range s.health {
		b.Configure(maint.BreakerConfig{
			Threshold: cfg.Threshold,
			Window:    cfg.Window,
			Probe:     cfg.Probe,
		})
	}
}

// ShardHealth returns the per-shard circuit-breaker states (index =
// shard): "healthy", "degraded", "quarantined", or "probing".
func (s *ShardedEngine) ShardHealth() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.health))
	for j, b := range s.health {
		out[j] = b.State().String()
	}
	return out
}

// NewShardedEngine creates an empty sharded engine with the given schema
// and shard count. shards must be in [1, 4096]; every shard applies the
// same EngineOptions. Schema[0] is the target modality.
func NewShardedEngine(schema Schema, shards int, opts EngineOptions) (*ShardedEngine, error) {
	if err := shard.Validate(shards); err != nil {
		return nil, fmt.Errorf("must: %w", err)
	}
	s := &ShardedEngine{
		shards:  make([]*Engine, shards),
		shardMu: make([]sync.Mutex, shards),
		state:   make([]atomic.Uint32, shards),
		health:  newShardHealth(shards, maint.BreakerConfig{}),
	}
	for j := range s.shards {
		e, err := NewEngine(schema, opts)
		if err != nil {
			return nil, err
		}
		s.shards[j] = e
	}
	s.schema = s.shards[0].Schema()
	return s, nil
}

// ShardCount returns the number of shards S.
func (s *ShardedEngine) ShardCount() int { return len(s.shards) }

// Schema returns a copy of the engine's schema.
func (s *ShardedEngine) Schema() Schema { return append(Schema(nil), s.schema...) }

// Epoch returns the sum of the per-shard mutation epochs. Each per-shard
// epoch is monotone, so the sum is too, and any result-visible mutation
// anywhere bumps it — the sum is a correct cache-invalidation key just
// like a single engine's epoch.
func (s *ShardedEngine) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum uint64
	for _, e := range s.shards {
		sum += e.Epoch()
	}
	return sum
}

// Epochs returns the per-shard epoch vector (index = shard).
func (s *ShardedEngine) Epochs() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, len(s.shards))
	for j, e := range s.shards {
		out[j] = e.Epoch()
	}
	return out
}

// Len returns the number of live objects across all shards.
func (s *ShardedEngine) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, e := range s.shards {
		n += e.Len()
	}
	return n
}

// Deleted returns the number of tombstoned objects across all shards.
func (s *ShardedEngine) Deleted() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, e := range s.shards {
		n += e.Deleted()
	}
	return n
}

// SetAdmission installs (or, with the zero value, clears) write-path
// admission control at the engine level: one in-flight write budget
// shared across all shards, with maintenance debt read as the worst
// shard's ratio. Gated writes fail fast with ErrOverloaded; searches
// are never gated. See Engine.SetAdmission.
func (s *ShardedEngine) SetAdmission(o AdmissionOptions) error {
	return s.adm.configure(o)
}

// WritesShed returns how many writes admission control has refused.
func (s *ShardedEngine) WritesShed() uint64 { return s.adm.writesShed() }

// debtRatio reads the worst shard's cached maintenance-debt ratio (each
// shard refreshes its own under its write lock).
func (s *ShardedEngine) debtRatio() float64 {
	var worst float64
	for _, e := range s.shards {
		if d := e.adm.debtRatio(); d > worst {
			worst = d
		}
	}
	return worst
}

// Insert adds an object and returns its stable global ID. The object is
// routed round-robin, so only one shard's write lock is taken.
func (s *ShardedEngine) Insert(v NamedVectors) (int64, error) {
	o, err := s.shards[0].positional(v)
	if err != nil {
		return 0, err
	}
	return s.InsertObject(o)
}

// InsertObject is Insert for positional (schema-ordered) vectors.
//
// If the engine is built and the object lands in a shard that is still
// pending (a shard can only be pending while empty), the shard's graph is
// built on the spot so the object becomes searchable, matching the
// single-engine invariant that post-Build inserts are immediately
// visible. In the vanishingly unlikely case that this lazy build fails,
// the object is stored, the error is returned, and the next insert into
// the shard retries the build.
func (s *ShardedEngine) InsertObject(o Object) (int64, error) {
	release, err := s.adm.admit(s.debtRatio())
	if err != nil {
		return 0, err
	}
	defer release()
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.shards)
	j := int(s.rr.Add(1)-1) % n
	local, err := s.shards[j].InsertObject(o)
	if err != nil {
		return 0, err
	}
	id := shard.Global(j, local, n)
	if s.builtShards.Load() > 0 && ShardState(s.state[j].Load()) == ShardPending {
		if err := s.buildShard(j, false); err != nil {
			return id, fmt.Errorf("must: shard %d lazy build: %w", j, err)
		}
	}
	return id, nil
}

// Delete tombstones the object with the given global ID. Only the owning
// shard's write lock is taken. Returns ErrOverloaded when admission
// control sheds the write.
func (s *ShardedEngine) Delete(id int64) error {
	release, err := s.adm.admit(s.debtRatio())
	if err != nil {
		return err
	}
	defer release()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 {
		return fmt.Errorf("must: %w %d", ErrUnknownID, id)
	}
	j, local := shard.Split(id, len(s.shards))
	err = s.shards[j].Delete(local)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrUnknownID):
		return fmt.Errorf("must: %w %d", ErrUnknownID, id)
	case errors.Is(err, ErrNotBuilt) && s.builtShards.Load() > 0:
		// The owning shard is pending, hence empty: the ID cannot exist.
		// Report what a built single engine would.
		return fmt.Errorf("must: %w %d", ErrUnknownID, id)
	}
	return err
}

// Object returns the stored (normalized) vectors of a live object by
// global ID.
func (s *ShardedEngine) Object(id int64) (NamedVectors, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 {
		return nil, fmt.Errorf("must: %w %d", ErrUnknownID, id)
	}
	j, local := shard.Split(id, len(s.shards))
	v, err := s.shards[j].Object(local)
	if err != nil && errors.Is(err, ErrUnknownID) {
		return nil, fmt.Errorf("must: %w %d", ErrUnknownID, id)
	}
	return v, err
}

// Weights returns a copy of the current per-modality weights.
func (s *ShardedEngine) Weights() Weights {
	return s.shards[0].Weights()
}

// SetWeights replaces the per-modality weights on every shard. The update
// is per-shard atomic but not engine-wide atomic: a search overlapping
// the call may score different shards under old and new weights for one
// request. Every shard's epoch bumps, so caches invalidate regardless.
func (s *ShardedEngine) SetWeights(w Weights) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.shards {
		if err := e.SetWeights(w); err != nil {
			return err
		}
	}
	return nil
}

// EnableQuantization attaches an SQ8 shadow store to every shard and
// routes all subsequent searches over the quantized path with an exact
// re-rank of the top rerankK candidates per shard (0 = 4·k). See
// Engine.EnableQuantization for training semantics.
func (s *ShardedEngine) EnableQuantization(rerankK int) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.shards {
		if err := e.EnableQuantization(rerankK); err != nil {
			return err
		}
	}
	return nil
}

// Quantized reports whether searches route over the SQ8 shadow stores.
func (s *ShardedEngine) Quantized() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.shards {
		if !e.Quantized() {
			return false
		}
	}
	return len(s.shards) > 0
}

// LearnWeights fits modality weights from training pairs (§VI) exactly as
// Engine.LearnWeights does: the pool T is the set of referenced positive
// objects, so the training problem is identical to the single-engine one
// over the same pairs. The learned weights are applied to every shard and
// returned.
func (s *ShardedEngine) LearnWeights(queries []NamedVectors, positives []int64, cfg WeightConfig) (Weights, error) {
	if len(queries) != len(positives) {
		return nil, fmt.Errorf("must: %d queries but %d positives", len(queries), len(positives))
	}
	ref := s.shards[0]
	posQueries := make([]Object, len(queries))
	for i, q := range queries {
		o := make(Object, len(s.schema))
		for name, v := range q {
			j, ok := ref.byName[name]
			if !ok {
				return nil, fmt.Errorf("must: training query %d: unknown modality %q", i, name)
			}
			o[j] = v
		}
		posQueries[i] = o
	}
	// Gather the referenced positives into a temporary pool collection.
	// LearnWeights only ever samples from the referenced objects (the
	// paper's T), so this loses nothing relative to handing it the full
	// corpus.
	pool := NewCollection(s.schema.Dims()...)
	pool.names = s.schema.Names()
	slotOf := make(map[int64]int, len(positives))
	internal := make([]int, len(positives))
	for i, id := range positives {
		slot, ok := slotOf[id]
		if !ok {
			nv, err := s.Object(id)
			if err != nil {
				return nil, fmt.Errorf("must: positive %d: %w", i, err)
			}
			o, err := ref.positional(nv)
			if err != nil {
				return nil, fmt.Errorf("must: positive %d: %w", i, err)
			}
			slot, err = pool.Add(o)
			if err != nil {
				return nil, fmt.Errorf("must: positive %d: %w", i, err)
			}
			slotOf[id] = slot
		}
		internal[i] = slot
	}
	w, err := LearnWeights(pool, posQueries, internal, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.SetWeights(w); err != nil {
		return nil, err
	}
	return w, nil
}

// buildConcurrency picks how many shards build at once and how many
// workers each shard's graph construction gets, so S parallel builds do
// not oversubscribe the machine: across × per ≤ GOMAXPROCS (with a floor
// of 1 each).
func buildConcurrency(shards int) (across, per int) {
	cores := runtime.GOMAXPROCS(0)
	across = shards
	if across > cores {
		across = cores
	}
	if across < 1 {
		across = 1
	}
	per = cores / across
	if per < 1 {
		per = 1
	}
	return across, per
}

// buildShard builds (or, when rebuild is set, rebuilds) one shard's
// graph, serialized per shard and tracked in state[j]. Empty shards are
// skipped: Build leaves them pending for the lazy path, and Rebuild skips
// all-tombstoned shards because compaction would leave them empty.
func (s *ShardedEngine) buildShard(j int, rebuild bool) error {
	s.shardMu[j].Lock()
	defer s.shardMu[j].Unlock()
	e := s.shards[j]
	switch ShardState(s.state[j].Load()) {
	case ShardBuilt:
		if !rebuild || e.Len() == 0 {
			return nil
		}
		s.state[j].Store(uint32(ShardBuilding))
		err := e.Rebuild()
		s.state[j].Store(uint32(ShardBuilt))
		if err == nil {
			// The rebuild replaced the graph the failures were blamed on:
			// re-admit the shard (quarantine's recovery path).
			s.health[j].Reset()
		}
		return err
	case ShardPending:
		if e.Len() == 0 {
			return nil
		}
		s.state[j].Store(uint32(ShardBuilding))
		if err := e.Build(); err != nil {
			s.state[j].Store(uint32(ShardPending))
			return err
		}
		s.state[j].Store(uint32(ShardBuilt))
		s.builtShards.Add(1)
		s.health[j].Reset()
		return nil
	}
	return nil
}

// Build constructs every non-empty shard's index in parallel on a bounded
// worker pool. Like Engine.Build it must be called once before Search and
// blocks other operations for the duration; empty shards are left pending
// and built lazily by the first Insert routed to them.
func (s *ShardedEngine) Build() error {
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.builtShards.Load() > 0 {
		return fmt.Errorf("must: engine already built; use Rebuild")
	}
	nonEmpty := 0
	for _, e := range s.shards {
		if e.Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		return fmt.Errorf("must: cannot index an empty collection")
	}
	across, per := buildConcurrency(nonEmpty)
	if across > 1 {
		// Give each concurrent shard build an equal slice of the cores
		// instead of letting every build claim all of them.
		prev := graph.SetBuildWorkers(per)
		defer graph.SetBuildWorkers(prev)
	}
	return shard.Do(len(s.shards), across, func(j int) error {
		return s.buildShard(j, false)
	})
}

// Rebuild reconstructs every shard's graph in parallel: per shard,
// tombstones are physically dropped, current weights become build
// weights, and the new graph swaps in atomically — the paper's periodic
// reconstruction (§IX), shard by shard. Unlike a single engine there is
// no engine-wide stall: each shard keeps serving from its old graph until
// its own swap, and searches overlapping the rebuild simply see shards
// compact one at a time. Shards whose objects are all tombstoned are
// skipped (compaction would empty them); their tombstones are dropped on
// a later rebuild once the shard has live objects again. Global IDs are
// preserved.
func (s *ShardedEngine) Rebuild() error {
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	if s.builtShards.Load() == 0 {
		return ErrNotBuilt
	}
	across, per := buildConcurrency(len(s.shards))
	if across > 1 {
		prev := graph.SetBuildWorkers(per)
		defer graph.SetBuildWorkers(prev)
	}
	return shard.Do(len(s.shards), across, func(j int) error {
		return s.buildShard(j, true)
	})
}

// RebuildShard rebuilds a single shard by index — the incremental
// maintenance hook: callers can walk shards on their own schedule (e.g.
// by tombstone ratio) and compact one at a time, bounding rebuild work
// and transient memory to one shard's worth.
func (s *ShardedEngine) RebuildShard(j int) error {
	if j < 0 || j >= len(s.shards) {
		return fmt.Errorf("must: shard %d out of range [0,%d)", j, len(s.shards))
	}
	if s.builtShards.Load() == 0 {
		return ErrNotBuilt
	}
	return s.buildShard(j, true)
}

// Search answers one typed query by fanning it out across shards and
// merging the per-shard top-k.
func (s *ShardedEngine) Search(ctx context.Context, q Query) (*Response, error) {
	out, errs := s.SearchEach(ctx, []Query{q}, 0)
	if len(errs) > 0 && errs[0] != nil {
		return nil, errs[0]
	}
	return out[0], nil
}

// SearchEach answers many queries concurrently: every built shard runs
// the whole batch through its own SearchEach (pooled searchers, one read
// lock per shard), then each query's per-shard top-k lists are merged
// with a k-way heap. out[i] and errs[i] describe queries[i]; any shard
// failing a query fails that query only.
//
// Semantics relative to a single engine: Query.K and Query.L apply per
// shard, so a sharded search examines up to S·L candidates — recall at
// equal L is never lower than the single engine's; lower L per shard
// buys the latency back (see the Sharding section of the README).
// Query.Filter receives global IDs, exactly as with a single engine.
// Merged Stats are summed across shards and Latency is the slowest
// shard's (the critical path of the fan-out).
//
// Fan-out degrades instead of failing: each shard runs in its own
// worker with panic recovery, and the collector stops waiting when ctx
// expires. A query whose shards partly succeeded returns a Response
// with Partial set and the failures listed in ShardErrors — one sick or
// hanging shard costs recall, not availability. Only a query that every
// shard failed gets an error (so validation errors, which fail on all
// shards identically, surface exactly as before). Abandoned shard
// workers observe ctx themselves and exit shortly after.
func (s *ShardedEngine) SearchEach(ctx context.Context, queries []Query, workers int) ([]*Response, []error) {
	if len(queries) == 0 {
		return nil, nil
	}
	out := make([]*Response, len(queries))
	errs := make([]error, len(queries))
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.builtShards.Load() == 0 {
		for i := range errs {
			errs[i] = ErrNotBuilt
		}
		return out, errs
	}
	n := len(s.shards)
	now := time.Now()
	var active, quarantined []int
	for j := range s.shards {
		if ShardState(s.state[j].Load()) == ShardPending {
			continue
		}
		// The breaker admits healthy/degraded shards always and a
		// quarantined shard once per probe interval (half-open probe);
		// otherwise the shard is skipped and reported via ShardErrors.
		if !s.health[j].Allow(now) {
			quarantined = append(quarantined, j)
			continue
		}
		active = append(active, j)
	}
	if len(active) == 0 {
		for i := range errs {
			errs[i] = ErrAllQuarantined
		}
		return out, errs
	}
	perShard := workers
	if perShard > 0 {
		perShard /= len(active)
		if perShard < 1 {
			perShard = 1
		}
	}
	type shardOut struct {
		resps    []*Response
		errs     []error
		panicked bool
	}
	anyPanicErr := func(es []error) bool {
		for _, e := range es {
			if errors.Is(e, errSearchPanicked) {
				return true
			}
		}
		return false
	}
	results := make([]shardOut, len(active))
	done := make([]chan struct{}, len(active))
	for ai := range active {
		done[ai] = make(chan struct{})
	}
	for ai := range active {
		go func(ai int) {
			defer close(done[ai])
			j := active[ai]
			defer func() {
				if r := recover(); r != nil {
					perr := fmt.Errorf("must: shard %d panicked: %v", j, r)
					es := make([]error, len(queries))
					for i := range es {
						es[i] = perr
					}
					results[ai] = shardOut{errs: es, panicked: true}
				}
			}()
			qs := queries
			// Rewrite filters into the shard's local-ID domain; the query
			// slice is copied only when some query actually has a filter.
			for i := range queries {
				if queries[i].Filter != nil {
					qs = make([]Query, len(queries))
					copy(qs, queries)
					for i := range qs {
						if f := qs[i].Filter; f != nil {
							qs[i].Filter = func(local int64) bool {
								return f(shard.Global(j, local, n))
							}
						}
					}
					break
				}
			}
			r, e := s.shards[j].SearchEach(ctx, qs, perShard)
			results[ai] = shardOut{resps: r, errs: e}
		}(ai)
	}
	// Collect until the deadline: a shard that has not finished when ctx
	// expires is reported as failed and its worker abandoned (it bails
	// out on its own — per-query searches check ctx — and only touches
	// its own results slot, which no one reads).
	finished := make([]bool, len(active))
	for ai := range active {
		select {
		case <-done[ai]:
			finished[ai] = true
		case <-ctx.Done():
			select {
			case <-done[ai]:
				finished[ai] = true
			default:
			}
		}
	}
	// Feed the health breakers. A failure must be shard-attributable, or
	// one misbehaving client would trip every breaker at once and turn
	// graceful degradation into a cluster-wide outage:
	//
	//   - A panic (in the shard worker or recovered inside the shard
	//     engine's own search path) counts against a shard only when a
	//     minority of the active shards panicked in this batch. A panic
	//     on a strict majority — e.g. a Query.Filter that panics on every
	//     ID — is query-correlated: it says nothing about any one shard,
	//     so it is treated like a validation error (which also hits every
	//     shard identically) rather than as S simultaneous shard faults.
	//   - A shard unfinished at ctx expiry counts as a failure only when
	//     the deadline was exceeded AND a strict majority of shards did
	//     finish — a true straggler. Caller cancellation, or a deadline
	//     that most shards missed together (the whole fan-out was slow
	//     under load), is neutral: neither failure nor success.
	//
	// A completed, non-panicking batch is a success; non-panic per-query
	// errors count as successes too. A failed half-open probe
	// re-quarantines; a neutral outcome leaves the breaker probing, and
	// Allow re-admits a fresh probe after another probe interval.
	nFinished, nPanicked := 0, 0
	panicked := make([]bool, len(active))
	for ai := range active {
		if !finished[ai] {
			continue
		}
		nFinished++
		if results[ai].panicked || anyPanicErr(results[ai].errs) {
			panicked[ai] = true
			nPanicked++
		}
	}
	queryCorrelatedPanic := nPanicked*2 > len(active)
	straggler := errors.Is(ctx.Err(), context.DeadlineExceeded) && nFinished*2 > len(active)
	feedAt := time.Now()
	for ai, j := range active {
		switch {
		case !finished[ai]:
			if straggler {
				s.health[j].Failure(feedAt)
			}
		case panicked[ai] && !queryCorrelatedPanic:
			s.health[j].Failure(feedAt)
		default:
			s.health[j].Success()
		}
	}
	for i := range queries {
		k := queries[i].K
		if k == 0 {
			k = 10
		}
		lists := make([][]ScoredMatch, 0, len(active))
		var stats SearchStats
		var latency time.Duration
		var qerr error
		var shardErrs []ShardError
		for _, j := range quarantined {
			shardErrs = append(shardErrs, ShardError{Shard: j, Err: "shard quarantined"})
		}
		for ai, j := range active {
			if !finished[ai] {
				shardErrs = append(shardErrs, ShardError{Shard: j, Err: ctx.Err().Error()})
				continue
			}
			if e := results[ai].errs[i]; e != nil {
				if qerr == nil {
					qerr = e
				}
				shardErrs = append(shardErrs, ShardError{Shard: j, Err: e.Error()})
				continue
			}
			resp := results[ai].resps[i]
			// Matches are cloned out of searcher buffers by the shard, so
			// rewriting IDs in place is safe.
			for mi := range resp.Matches {
				resp.Matches[mi].ID = shard.Global(j, resp.Matches[mi].ID, n)
			}
			lists = append(lists, resp.Matches)
			stats.FullEvals += resp.Stats.FullEvals
			stats.PartialSkips += resp.Stats.PartialSkips
			stats.Hops += resp.Stats.Hops
			if resp.Latency > latency {
				latency = resp.Latency
			}
		}
		if len(lists) == 0 {
			// Every shard failed this query: surface the first concrete
			// error (preserving errors.Is matching for validation failures,
			// ErrNotBuilt, ...), or the deadline if no shard got that far.
			if qerr == nil {
				qerr = ctx.Err()
			}
			errs[i] = qerr
			continue
		}
		merged := shard.MergeTopK(lists, k, func(a, b ScoredMatch) bool {
			return a.Similarity > b.Similarity
		})
		resp := &Response{Matches: merged, Stats: stats, Latency: latency}
		if len(shardErrs) > 0 {
			resp.Partial = true
			resp.ShardErrors = shardErrs
		}
		out[i] = resp
	}
	return out, errs
}

// SearchBatch answers many queries concurrently, failing the whole call
// on the first per-query error (see Engine.SearchBatch).
func (s *ShardedEngine) SearchBatch(ctx context.Context, queries []Query, workers int) ([]*Response, error) {
	out, errs := s.SearchEach(ctx, queries, workers)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("must: batch query %d: %w", i, err)
		}
	}
	return out, nil
}

// ExactSearch answers one typed query by exhaustive scan over every
// shard, merged exactly. Like Engine.ExactSearch it works before Build
// and honors tombstones and Query.Filter.
func (s *ShardedEngine) ExactSearch(ctx context.Context, q Query) (*Response, error) {
	start := time.Now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.shards)
	resps := make([]*Response, n)
	errs := make([]error, n)
	_ = shard.Do(n, 0, func(j int) error {
		sq := q
		if f := q.Filter; f != nil {
			sq.Filter = func(local int64) bool {
				return f(shard.Global(j, local, n))
			}
		}
		resps[j], errs[j] = s.shards[j].ExactSearch(ctx, sq)
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	k := q.K
	if k == 0 {
		k = 10
	}
	lists := make([][]ScoredMatch, n)
	var stats SearchStats
	for j, resp := range resps {
		for mi := range resp.Matches {
			resp.Matches[mi].ID = shard.Global(j, resp.Matches[mi].ID, n)
		}
		lists[j] = resp.Matches
		stats.FullEvals += resp.Stats.FullEvals
	}
	merged := shard.MergeTopK(lists, k, func(a, b ScoredMatch) bool {
		return a.Similarity > b.Similarity
	})
	return &Response{Matches: merged, Stats: stats, Latency: time.Since(start)}, nil
}

// Stats aggregates index statistics across built shards: counts and byte
// sizes sum, AvgDegree re-derives from the summed totals, and BuildTime
// is the slowest shard's (the wall-clock critical path of the parallel
// build). It returns ErrNotBuilt until at least one shard is built.
func (s *ShardedEngine) Stats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.builtShards.Load() == 0 {
		return Stats{}, ErrNotBuilt
	}
	var agg Stats
	tombstones := 0
	for j := range s.shards {
		if ShardState(s.state[j].Load()) == ShardPending {
			continue
		}
		st, err := s.shards[j].Stats()
		if err != nil {
			continue
		}
		agg.Objects += st.Objects
		agg.Edges += st.Edges
		agg.SizeBytes += st.SizeBytes
		agg.CorpusBytes += st.CorpusBytes
		agg.RawVectorBytes += st.RawVectorBytes
		agg.FusedBytes += st.FusedBytes
		agg.QuantizedBytes += st.QuantizedBytes
		agg.OverlayVertices += st.OverlayVertices
		tombstones += s.shards[j].Deleted()
		if agg.KernelVariant == "" {
			agg.KernelVariant = st.KernelVariant
		}
		if st.BuildTime > agg.BuildTime {
			agg.BuildTime = st.BuildTime
		}
		if agg.Algorithm == "" {
			agg.Algorithm = st.Algorithm
		}
	}
	if agg.Objects > 0 {
		agg.AvgDegree = float64(agg.Edges) / float64(agg.Objects)
		agg.OverlayRatio = float64(agg.OverlayVertices) / float64(agg.Objects)
		agg.TombstoneRatio = float64(tombstones) / float64(agg.Objects)
	}
	if agg.Edges > 0 {
		agg.GraphBytesPerEdge = float64(agg.SizeBytes) / float64(agg.Edges)
	}
	return agg, nil
}

// ShardStats reports per-shard build progress, sizes, and epochs —
// index j describes shard j.
func (s *ShardedEngine) ShardStats() []ShardInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ShardInfo, len(s.shards))
	for j, e := range s.shards {
		info := ShardInfo{
			State:   ShardState(s.state[j].Load()).String(),
			Objects: e.Len(),
			Deleted: e.Deleted(),
			Epoch:   e.Epoch(),
			Health:  s.health[j].State().String(),
		}
		if st, err := e.Stats(); err == nil {
			info.Stats = st
		}
		out[j] = info
	}
	return out
}
