package must

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"runtime"
	"testing"
)

func TestCollectionRoundTrip(t *testing.T) {
	c, queries, _ := buildCorpus(t, 200, 5, 91)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() || got.Modalities() != c.Modalities() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Len(), got.Modalities(), c.Len(), c.Modalities())
	}
	for id := 0; id < c.Len(); id++ {
		a, _ := c.Object(id)
		b, _ := got.Object(id)
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("object %d differs after round trip", id)
				}
			}
		}
	}
	_ = queries
}

// Full persistence: save collection + index, load both, search identically.
func TestFullPersistenceRoundTrip(t *testing.T) {
	c, queries, _ := buildCorpus(t, 300, 10, 92)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 12, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cPath := filepath.Join(dir, "collection.bin")
	iPath := filepath.Join(dir, "index.bin")
	if err := SaveCollection(cPath, c); err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(iPath); err != nil {
		t.Fatal(err)
	}

	c2, err := LoadCollection(cPath)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := LoadIndex(iPath, c2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[:5] {
		a, err := ix.Search(q, SearchOptions{K: 5, L: 100})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ix2.Search(q, SearchOptions{K: 5, L: 100})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatal("restored system searches differently")
			}
		}
	}
}

// WriteCollection must emit the v4 magic, and the v4 loader must adopt
// the vector block as one arena that the collection's shared store views
// directly (no per-object re-copy).
func TestCollectionWritesV4ArenaFormat(t *testing.T) {
	c, _, _ := buildCorpus(t, 20, 3, 90)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:8]); got != "MUSTCL4\n" {
		t.Fatalf("magic = %q, want MUSTCL4", got)
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range got.Dims() {
		total += d
	}
	st := got.flatStore()
	if st == nil {
		t.Fatal("v4 load did not install a store")
	}
	// The whole corpus must live in one contiguous arena run, and the
	// store's row/modality views must alias it rather than copy.
	var runs [][]float32
	if err := st.Runs(func(run []float32) error { runs = append(runs, run); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || len(runs[0]) != got.Len()*total {
		t.Fatalf("v4 load produced %d arena runs, want 1 full run", len(runs))
	}
	arena := runs[0]
	if &st.Row(3)[0] != &arena[3*total] {
		t.Fatal("store rows do not alias the adopted arena")
	}
	off := 3 * total
	for m := 0; m < got.Modalities(); m++ {
		v := st.Modality(3, m)
		if &v[0] != &arena[off] {
			t.Fatalf("modality %d view does not alias the arena", m)
		}
		off += len(v)
	}
}

// legacyStream re-encodes a written v4 stream in an older format:
// version 3 keeps the layout but narrows the object count to uint32;
// versions 2 and 1 share v3's byte layout (v1 additionally drops the
// names section).
func legacyStream(t *testing.T, raw []byte, version int) []byte {
	t.Helper()
	if string(raw[:8]) != "MUSTCL4\n" {
		t.Fatalf("unexpected magic %q", raw[:8])
	}
	m := int(binary.LittleEndian.Uint32(raw[8:]))
	// Walk the names section: m × (len uint32, bytes).
	off := 12 + 4*m
	namesStart := off
	for i := 0; i < m; i++ {
		off += 4 + int(binary.LittleEndian.Uint32(raw[off:]))
	}
	namesEnd := off
	n := binary.LittleEndian.Uint64(raw[off:])
	block := raw[off+8:]

	var out bytes.Buffer
	out.WriteString("MUSTCL")
	out.WriteByte(byte('0' + version))
	out.WriteByte('\n')
	out.Write(raw[8 : 12+4*m])
	if version >= 2 {
		out.Write(raw[namesStart:namesEnd])
	}
	if err := binary.Write(&out, binary.LittleEndian, uint32(n)); err != nil {
		t.Fatal(err)
	}
	out.Write(block)
	return out.Bytes()
}

// Streams in the three legacy formats must still load, and every one of
// them must land in an arena-backed store (single-copy even for old
// files).
func TestReadCollectionAcceptsLegacyFormats(t *testing.T) {
	c, _, _ := buildCorpus(t, 30, 3, 89)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, version := range []int{3, 2, 1} {
		got, err := ReadCollection(bytes.NewReader(legacyStream(t, raw, version)))
		if err != nil {
			t.Fatalf("v%d stream rejected: %v", version, err)
		}
		if got.Len() != c.Len() {
			t.Fatalf("v%d load: %d objects, want %d", version, got.Len(), c.Len())
		}
		if got.flatStore() == nil {
			t.Fatalf("v%d load did not land in a shared store", version)
		}
		for id := 0; id < c.Len(); id++ {
			a, _ := c.Object(id)
			b, _ := got.Object(id)
			for i := range a {
				for j := range a[i] {
					if a[i][j] != b[i][j] {
						t.Fatalf("object %d differs between v%d and v4 loads", id, version)
					}
				}
			}
		}
	}
}

// A v3 header claiming an enormous vector block with no data behind it
// must fail with a read error quickly, not attempt the full allocation.
func TestReadCollectionRejectsHugeClaimedBlock(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("MUSTCL3\n")
	for _, v := range []uint32{2, 1 << 16, 1 << 16, 0, 0, 1 << 28} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ReadCollection(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("huge claimed block with no data did not error")
	}
}

// The same must hold for v4, whose 64-bit count admits even wilder
// claims: load must never commit memory proportional to the claimed
// header, only to the data that actually arrives.
func TestReadCollectionV4NeverOverAllocates(t *testing.T) {
	mkHeader := func(n uint64) []byte {
		var buf bytes.Buffer
		buf.WriteString("MUSTCL4\n")
		for _, v := range []uint32{2, 1 << 16, 1 << 16, 0, 0} {
			if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
				t.Fatal(err)
			}
		}
		if err := binary.Write(&buf, binary.LittleEndian, n); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for _, n := range []uint64{1 << 27, 1 << 28, 1 << 40, 1 << 62} {
		if _, err := ReadCollection(bytes.NewReader(mkHeader(n))); err == nil {
			t.Errorf("claimed count %d with no data did not error", n)
		}
	}
	runtime.ReadMemStats(&after)
	// Each failed load may commit at most the capped upfront arena
	// (16 MiB); far below the petabytes the headers claim.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 256<<20 {
		t.Errorf("corrupt headers allocated %d bytes total, want bounded by the upfront cap", grew)
	}
}

func TestReadCollectionRejectsGarbage(t *testing.T) {
	if _, err := ReadCollection(bytes.NewReader([]byte("nonsense"))); err == nil {
		t.Error("garbage did not error")
	}
	c, _, _ := buildCorpus(t, 50, 5, 94)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/3]
	if _, err := ReadCollection(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream did not error")
	}
}

func TestFilteredSearch(t *testing.T) {
	c, queries, _ := buildCorpus(t, 300, 10, 95)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 12, Seed: 96})
	if err != nil {
		t.Fatal(err)
	}
	// Keep only even object IDs — the attribute-constraint analogue.
	even := func(id int) bool { return id%2 == 0 }
	for _, q := range queries {
		ms, err := ix.Search(q, SearchOptions{K: 5, L: 200, Filter: even})
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) == 0 {
			t.Fatal("filtered search returned nothing")
		}
		for _, m := range ms {
			if m.ID%2 != 0 {
				t.Fatalf("filter violated: id %d", m.ID)
			}
		}
	}
}

func TestEarlyTerminationTradeoff(t *testing.T) {
	c, queries, truths := buildCorpus(t, 600, 20, 97)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 14, Seed: 98})
	if err != nil {
		t.Fatal(err)
	}
	recall := func(patience int) float64 {
		hits := 0
		for i, q := range queries {
			ms, err := ix.Search(q, SearchOptions{K: 5, L: 200, Patience: patience})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range ms {
				if m.ID == truths[i] {
					hits++
					break
				}
			}
		}
		return float64(hits) / float64(len(queries))
	}
	full := recall(0)
	eager := recall(2)
	if eager > full+1e-9 {
		t.Errorf("early termination cannot beat full search: %v vs %v", eager, full)
	}
	if eager < full-0.3 {
		t.Errorf("early termination lost too much recall: %v vs %v", eager, full)
	}
}
