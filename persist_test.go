package must

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"testing"
)

func TestCollectionRoundTrip(t *testing.T) {
	c, queries, _ := buildCorpus(t, 200, 5, 91)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() || got.Modalities() != c.Modalities() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Len(), got.Modalities(), c.Len(), c.Modalities())
	}
	for id := 0; id < c.Len(); id++ {
		a, _ := c.Object(id)
		b, _ := got.Object(id)
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("object %d differs after round trip", id)
				}
			}
		}
	}
	_ = queries
}

// Full persistence: save collection + index, load both, search identically.
func TestFullPersistenceRoundTrip(t *testing.T) {
	c, queries, _ := buildCorpus(t, 300, 10, 92)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 12, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cPath := filepath.Join(dir, "collection.bin")
	iPath := filepath.Join(dir, "index.bin")
	if err := SaveCollection(cPath, c); err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(iPath); err != nil {
		t.Fatal(err)
	}

	c2, err := LoadCollection(cPath)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := LoadIndex(iPath, c2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[:5] {
		a, err := ix.Search(q, SearchOptions{K: 5, L: 100})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ix2.Search(q, SearchOptions{K: 5, L: 100})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatal("restored system searches differently")
			}
		}
	}
}

// WriteCollection must emit the v3 magic, and the v3 loader must place
// every object's vectors in one shared flat arena (adjacent objects'
// modality slices are contiguous in memory).
func TestCollectionWritesV3FlatFormat(t *testing.T) {
	c, _, _ := buildCorpus(t, 20, 3, 90)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:8]); got != "MUSTCL3\n" {
		t.Fatalf("magic = %q, want MUSTCL3", got)
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range got.Dims() {
		total += d
	}
	if got.arena == nil || len(got.arena) != got.Len()*total {
		t.Fatalf("v3 load did not produce a full arena: %d floats for %d objects of %d",
			len(got.arena), got.Len(), total)
	}
	// Every object's modality slices must be views into the arena at the
	// packed offsets, and the zero-copy store must expose the same rows.
	for id := 0; id < got.Len(); id++ {
		off := id * total
		for m := range got.objects[id] {
			v := got.objects[id][m]
			if &v[0] != &got.arena[off] {
				t.Fatalf("object %d modality %d does not view the arena", id, m)
			}
			off += len(v)
		}
	}
	st := got.flatStore()
	if st == nil {
		t.Fatal("flatStore returned nil for an arena-backed collection")
	}
	if &st.Row(3)[0] != &got.arena[3*total] {
		t.Fatal("flat store does not alias the arena")
	}
}

// A v2-format stream (the previous on-disk format) must still load and
// round-trip object-for-object.
func TestReadCollectionAcceptsLegacyV2(t *testing.T) {
	c, _, _ := buildCorpus(t, 30, 3, 89)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	// v3 and v2 are byte-identical after the magic, so rewriting the
	// version byte yields a valid v2 stream.
	raw := buf.Bytes()
	if raw[6] != '3' {
		t.Fatalf("unexpected magic %q", raw[:8])
	}
	raw[6] = '2'
	got, err := ReadCollection(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v2 stream rejected: %v", err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("v2 load: %d objects, want %d", got.Len(), c.Len())
	}
	for id := 0; id < c.Len(); id++ {
		a, _ := c.Object(id)
		b, _ := got.Object(id)
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("object %d differs between v2 and v3 loads", id)
				}
			}
		}
	}
	// Same for v1, which simply omits the names section.
	var v1 bytes.Buffer
	v1.Write([]byte("MUSTCL1\n"))
	body := raw[8:]
	// m uint32 + dims.
	m := int(body[0]) // little-endian, m < 256 here
	v1.Write(body[:4+4*m])
	rest := body[4+4*m:]
	// Skip the names section: m × (len uint32 == 0).
	rest = rest[4*m:]
	v1.Write(rest)
	gotV1, err := ReadCollection(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if gotV1.Len() != c.Len() {
		t.Fatalf("v1 load: %d objects, want %d", gotV1.Len(), c.Len())
	}
}

// A v3 header claiming an enormous vector block with no data behind it
// must fail with a read error quickly, not attempt the full allocation.
func TestReadCollectionRejectsHugeClaimedBlock(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("MUSTCL3\n")
	for _, v := range []uint32{2, 1 << 16, 1 << 16, 0, 0, 1 << 28} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ReadCollection(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("huge claimed block with no data did not error")
	}
}

func TestReadCollectionRejectsGarbage(t *testing.T) {
	if _, err := ReadCollection(bytes.NewReader([]byte("nonsense"))); err == nil {
		t.Error("garbage did not error")
	}
	c, _, _ := buildCorpus(t, 50, 5, 94)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/3]
	if _, err := ReadCollection(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream did not error")
	}
}

func TestFilteredSearch(t *testing.T) {
	c, queries, _ := buildCorpus(t, 300, 10, 95)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 12, Seed: 96})
	if err != nil {
		t.Fatal(err)
	}
	// Keep only even object IDs — the attribute-constraint analogue.
	even := func(id int) bool { return id%2 == 0 }
	for _, q := range queries {
		ms, err := ix.Search(q, SearchOptions{K: 5, L: 200, Filter: even})
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) == 0 {
			t.Fatal("filtered search returned nothing")
		}
		for _, m := range ms {
			if m.ID%2 != 0 {
				t.Fatalf("filter violated: id %d", m.ID)
			}
		}
	}
}

func TestEarlyTerminationTradeoff(t *testing.T) {
	c, queries, truths := buildCorpus(t, 600, 20, 97)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 14, Seed: 98})
	if err != nil {
		t.Fatal(err)
	}
	recall := func(patience int) float64 {
		hits := 0
		for i, q := range queries {
			ms, err := ix.Search(q, SearchOptions{K: 5, L: 200, Patience: patience})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range ms {
				if m.ID == truths[i] {
					hits++
					break
				}
			}
		}
		return float64(hits) / float64(len(queries))
	}
	full := recall(0)
	eager := recall(2)
	if eager > full+1e-9 {
		t.Errorf("early termination cannot beat full search: %v vs %v", eager, full)
	}
	if eager < full-0.3 {
		t.Errorf("early termination lost too much recall: %v vs %v", eager, full)
	}
}
