package must

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestCollectionRoundTrip(t *testing.T) {
	c, queries, _ := buildCorpus(t, 200, 5, 91)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() || got.Modalities() != c.Modalities() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Len(), got.Modalities(), c.Len(), c.Modalities())
	}
	for id := 0; id < c.Len(); id++ {
		a, _ := c.Object(id)
		b, _ := got.Object(id)
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("object %d differs after round trip", id)
				}
			}
		}
	}
	_ = queries
}

// Full persistence: save collection + index, load both, search identically.
func TestFullPersistenceRoundTrip(t *testing.T) {
	c, queries, _ := buildCorpus(t, 300, 10, 92)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 12, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cPath := filepath.Join(dir, "collection.bin")
	iPath := filepath.Join(dir, "index.bin")
	if err := SaveCollection(cPath, c); err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(iPath); err != nil {
		t.Fatal(err)
	}

	c2, err := LoadCollection(cPath)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := LoadIndex(iPath, c2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[:5] {
		a, err := ix.Search(q, SearchOptions{K: 5, L: 100})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ix2.Search(q, SearchOptions{K: 5, L: 100})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatal("restored system searches differently")
			}
		}
	}
}

func TestReadCollectionRejectsGarbage(t *testing.T) {
	if _, err := ReadCollection(bytes.NewReader([]byte("nonsense"))); err == nil {
		t.Error("garbage did not error")
	}
	c, _, _ := buildCorpus(t, 50, 5, 94)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/3]
	if _, err := ReadCollection(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream did not error")
	}
}

func TestFilteredSearch(t *testing.T) {
	c, queries, _ := buildCorpus(t, 300, 10, 95)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 12, Seed: 96})
	if err != nil {
		t.Fatal(err)
	}
	// Keep only even object IDs — the attribute-constraint analogue.
	even := func(id int) bool { return id%2 == 0 }
	for _, q := range queries {
		ms, err := ix.Search(q, SearchOptions{K: 5, L: 200, Filter: even})
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) == 0 {
			t.Fatal("filtered search returned nothing")
		}
		for _, m := range ms {
			if m.ID%2 != 0 {
				t.Fatalf("filter violated: id %d", m.ID)
			}
		}
	}
}

func TestEarlyTerminationTradeoff(t *testing.T) {
	c, queries, truths := buildCorpus(t, 600, 20, 97)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 14, Seed: 98})
	if err != nil {
		t.Fatal(err)
	}
	recall := func(patience int) float64 {
		hits := 0
		for i, q := range queries {
			ms, err := ix.Search(q, SearchOptions{K: 5, L: 200, Patience: patience})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range ms {
				if m.ID == truths[i] {
					hits++
					break
				}
			}
		}
		return float64(hits) / float64(len(queries))
	}
	full := recall(0)
	eager := recall(2)
	if eager > full+1e-9 {
		t.Errorf("early termination cannot beat full search: %v vs %v", eager, full)
	}
	if eager < full-0.3 {
		t.Errorf("early termination lost too much recall: %v vs %v", eager, full)
	}
}
