package must

import (
	"context"
	"strings"
	"testing"
	"time"
)

// sickShardQuery returns a query whose Filter misbehaves only for IDs
// owned by shard `sick` of an S-shard engine (filters run inside the
// owning shard's search, so the blast radius is exactly that shard).
func sickShardQuery(q NamedVectors, sick, shards int, misbehave func()) Query {
	return Query{
		Vectors: q,
		K:       5,
		Filter: func(id int64) bool {
			if int(id)%shards == sick {
				misbehave()
			}
			return true
		},
	}
}

func TestShardedPartialOnPanickingShard(t *testing.T) {
	const S = 4
	s := newSharded(t, shardedObjects(400, 1), S, true)
	q := sickShardQuery(shardedQueries(1, 2)[0], 1, S, func() { panic("shard 1 is sick") })

	resp, err := s.Search(context.Background(), q)
	if err != nil {
		t.Fatalf("one panicking shard must degrade, not fail: %v", err)
	}
	if !resp.Partial {
		t.Fatal("Partial not set")
	}
	if len(resp.ShardErrors) != 1 || resp.ShardErrors[0].Shard != 1 {
		t.Fatalf("ShardErrors = %+v, want exactly shard 1", resp.ShardErrors)
	}
	if !strings.Contains(resp.ShardErrors[0].Err, "panic") {
		t.Fatalf("ShardErrors[0].Err = %q, want a panic message", resp.ShardErrors[0].Err)
	}
	if len(resp.Matches) == 0 {
		t.Fatal("no matches from the 3 healthy shards")
	}
	for _, m := range resp.Matches {
		if int(m.ID)%S == 1 {
			t.Fatalf("match %d belongs to the failed shard", m.ID)
		}
	}
}

func TestShardedPartialOnHangingShard(t *testing.T) {
	const S = 4
	s := newSharded(t, shardedObjects(400, 1), S, true)
	hang := make(chan struct{})
	defer close(hang)
	q := sickShardQuery(shardedQueries(1, 2)[0], 2, S, func() { <-hang })

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp, err := s.Search(ctx, q)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("one hanging shard must degrade, not fail: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("fan-out took %v, should return near the 300ms deadline", elapsed)
	}
	if !resp.Partial {
		t.Fatal("Partial not set")
	}
	if len(resp.ShardErrors) != 1 || resp.ShardErrors[0].Shard != 2 {
		t.Fatalf("ShardErrors = %+v, want exactly shard 2", resp.ShardErrors)
	}
	if len(resp.Matches) == 0 {
		t.Fatal("no matches from the healthy shards")
	}
}

func TestShardedAllShardsFailingStillErrors(t *testing.T) {
	const S = 3
	s := newSharded(t, shardedObjects(120, 1), S, true)
	// A query invalid on every shard (unknown modality) must keep its
	// pre-degradation behavior: an error, never an empty partial result.
	_, err := s.Search(context.Background(), Query{Vectors: NamedVectors{"nope": make([]float32, 7)}})
	if err == nil {
		t.Fatal("invalid query returned no error")
	}
	// All shards panicking is a failure too.
	q := Query{
		Vectors: shardedQueries(1, 2)[0],
		Filter:  func(id int64) bool { panic("everything is sick") },
	}
	_, err = s.Search(context.Background(), q)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("all-shards panic: err = %v, want panic error", err)
	}
}

func TestSingleEnginePanicIsolatedPerQuery(t *testing.T) {
	e := newSingle(t, shardedObjects(200, 1), true)
	qs := shardedQueries(4, 2)
	queries := make([]Query, len(qs))
	for i, v := range qs {
		queries[i] = Query{Vectors: v, K: 3}
	}
	// Query 1 panics in its filter; the other three must still answer.
	queries[1].Filter = func(id int64) bool { panic("bad filter") }
	out, errs := e.SearchEach(context.Background(), queries, 1)
	for i := range queries {
		if i == 1 {
			if errs[1] == nil || !strings.Contains(errs[1].Error(), "panic") {
				t.Fatalf("errs[1] = %v, want panic error", errs[1])
			}
			continue
		}
		if errs[i] != nil || out[i] == nil || len(out[i].Matches) == 0 {
			t.Fatalf("query %d: err=%v out=%v (panic leaked across the batch)", i, errs[i], out[i])
		}
		if out[i].Partial {
			t.Fatalf("single engine set Partial on query %d", i)
		}
	}
}
