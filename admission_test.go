package must

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestAdmissionOptionsValidate(t *testing.T) {
	e := newSingle(t, shardedObjects(10, 1), false)
	if err := e.SetAdmission(AdmissionOptions{MaxPendingWrites: -1}); err == nil {
		t.Fatal("negative MaxPendingWrites accepted")
	}
	if err := e.SetAdmission(AdmissionOptions{DebtWatermark: math.NaN()}); err == nil {
		t.Fatal("NaN DebtWatermark accepted")
	}
	if err := e.SetAdmission(AdmissionOptions{DebtWatermark: -0.5}); err == nil {
		t.Fatal("negative DebtWatermark accepted")
	}
	if err := e.SetAdmission(AdmissionOptions{MaxPendingWrites: 8, DebtWatermark: 0.5}); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionPendingBudget drives the pending-writes gate directly:
// with a budget of 1, a second admit while the first is still in flight
// must shed, and releasing the slot must re-open it.
func TestAdmissionPendingBudget(t *testing.T) {
	var a admission
	if err := a.configure(AdmissionOptions{MaxPendingWrites: 1}); err != nil {
		t.Fatal(err)
	}
	release1, err := a.admit(0)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if _, err := a.admit(0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second admit = %v, want ErrOverloaded", err)
	}
	release1()
	release2, err := a.admit(0)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	release2()
	if got := a.writesShed(); got != 1 {
		t.Fatalf("writesShed = %d, want 1", got)
	}
	// Clearing the options disables the gate entirely.
	if err := a.configure(AdmissionOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := a.admit(1.0); err != nil {
			t.Fatalf("cleared gate shed a write: %v", err)
		}
	}
}

// TestEngineDebtBackpressure is the acceptance contract on a single
// engine: once tombstone debt crosses the watermark, writes shed with
// ErrOverloaded while searches keep answering; a rebuild clears the
// debt and re-admits writes.
func TestEngineDebtBackpressure(t *testing.T) {
	e := newSingle(t, shardedObjects(100, 1), true)
	if err := e.SetAdmission(AdmissionOptions{DebtWatermark: 0.20}); err != nil {
		t.Fatal(err)
	}
	// Delete 30% — past the 0.20 watermark.
	for id := int64(0); id < 30; id++ {
		if err := e.Delete(id); err != nil {
			// Deletes may themselves start shedding once the watermark is
			// crossed; push debt with direct tombstones via the ones that
			// still pass.
			if errors.Is(err, ErrOverloaded) {
				break
			}
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	if _, err := e.InsertObject(Object{randVec(rng, 24), randVec(rng, 12)}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("insert past debt watermark = %v, want ErrOverloaded", err)
	}
	if e.WritesShed() == 0 {
		t.Fatal("WritesShed did not count the refusal")
	}
	// Reads are never gated.
	if _, err := e.Search(context.Background(), Query{Vectors: shardedQueries(1, 2)[0], K: 5}); err != nil {
		t.Fatalf("search during overload: %v", err)
	}
	// Rebuild compacts the tombstones away; writes flow again.
	if err := e.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InsertObject(Object{randVec(rng, 24), randVec(rng, 12)}); err != nil {
		t.Fatalf("insert after rebuild = %v, want admitted", err)
	}
}

// TestShardedDebtBackpressure checks the sharded gate sheds on the
// WORST shard's debt (one hot shard must protect the whole engine) and
// that rebuilding that shard re-admits writes.
func TestShardedDebtBackpressure(t *testing.T) {
	const S = 4
	s := newSharded(t, shardedObjects(400, 1), S, true)
	if err := s.SetAdmission(AdmissionOptions{DebtWatermark: 0.20}); err != nil {
		t.Fatal(err)
	}
	// Tombstone only shard 1 (global IDs with id%S == 1) past 20%.
	deleted := 0
	for id := int64(1); id < 400 && deleted < 30; id += S {
		if err := s.Delete(id); err != nil {
			if errors.Is(err, ErrOverloaded) {
				break
			}
			t.Fatal(err)
		}
		deleted++
	}
	rng := rand.New(rand.NewSource(9))
	if _, err := s.InsertObject(Object{randVec(rng, 24), randVec(rng, 12)}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("insert with one hot shard = %v, want ErrOverloaded", err)
	}
	if s.WritesShed() == 0 {
		t.Fatal("WritesShed did not count the refusal")
	}
	if _, err := s.Search(context.Background(), Query{Vectors: shardedQueries(1, 2)[0], K: 5}); err != nil {
		t.Fatalf("search during overload: %v", err)
	}
	if err := s.RebuildShard(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertObject(Object{randVec(rng, 24), randVec(rng, 12)}); err != nil {
		t.Fatalf("insert after shard rebuild = %v, want admitted", err)
	}
}
