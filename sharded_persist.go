package must

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"must/internal/maint"
	"must/internal/shard"
)

// MUSTSH1 sharded container: a small header followed by one embedded
// engine blob (MUSTEG2; MUSTEG1 in older files) per shard, each
// preceded by its byte length.
//
//	magic   [8]byte  "MUSTSH1\n"
//	shards  uint32   shard count S (1..shard.MaxShards)
//	rr      uint64   round-robin insert cursor
//	S × { size uint64; blob [size]byte }   engine blobs, shard order
//
// The explicit per-blob length exists because ReadEngine buffers its
// reader internally (its read-ahead would otherwise consume bytes of the
// next shard); it also lets LoadShardedEngine skip across the file to
// compute section offsets and load every shard in parallel.
var shMagic = [8]byte{'M', 'U', 'S', 'T', 'S', 'H', '1', '\n'}

// SaveTo serializes the sharded engine to w in the MUSTSH1 container
// format. One shard's serialized blob is buffered in memory at a time
// (≈1/S of the corpus). Each shard snapshots under its own read lock, so
// saving overlaps serving; for a point-in-time snapshot across shards,
// quiesce writes first (the mustd drain path does).
func (s *ShardedEngine) SaveTo(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, err := w.Write(shMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s.shards))); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, s.rr.Load()); err != nil {
		return err
	}
	var buf bytes.Buffer
	for j, e := range s.shards {
		buf.Reset()
		if err := e.SaveTo(&buf); err != nil {
			return fmt.Errorf("must: shard %d: %w", j, err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(buf.Len())); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Save writes the sharded engine to the file at path.
func (s *ShardedEngine) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.SaveTo(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// readShardedHeader validates the MUSTSH1 magic and returns (S, rr).
func readShardedHeader(r io.Reader) (int, uint64, error) {
	var got [8]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return 0, 0, fmt.Errorf("must: reading sharded magic: %w", err)
	}
	if got != shMagic {
		return 0, 0, fmt.Errorf("must: bad sharded engine magic %q", got[:])
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return 0, 0, fmt.Errorf("must: reading shard count: %w", err)
	}
	if err := shard.Validate(int(n)); err != nil {
		return 0, 0, fmt.Errorf("must: %w", err)
	}
	var rr uint64
	if err := binary.Read(r, binary.LittleEndian, &rr); err != nil {
		return 0, 0, fmt.Errorf("must: reading insert cursor: %w", err)
	}
	return int(n), rr, nil
}

// assembleSharded wires loaded per-shard engines back into a
// ShardedEngine, rejecting blobs whose schemas disagree.
func assembleSharded(shards []*Engine, rr uint64) (*ShardedEngine, error) {
	s := &ShardedEngine{
		shards:  shards,
		shardMu: make([]sync.Mutex, len(shards)),
		state:   make([]atomic.Uint32, len(shards)),
		health:  newShardHealth(len(shards), maint.BreakerConfig{}),
	}
	s.schema = shards[0].Schema()
	want := s.schema.Names()
	for j, e := range shards {
		sc := e.Schema()
		if len(sc) != len(s.schema) {
			return nil, fmt.Errorf("must: shard %d schema has %d modalities, shard 0 has %d", j, len(sc), len(s.schema))
		}
		for i, m := range sc {
			if m.Name != want[i] || m.Dim != s.schema[i].Dim {
				return nil, fmt.Errorf("must: shard %d schema modality %d (%s/%d) disagrees with shard 0 (%s/%d)",
					j, i, m.Name, m.Dim, want[i], s.schema[i].Dim)
			}
		}
		if e.ix != nil {
			s.state[j].Store(uint32(ShardBuilt))
			s.builtShards.Add(1)
		}
	}
	s.rr.Store(rr)
	return s, nil
}

// ReadShardedEngine deserializes a MUSTSH1 container from a stream,
// loading shards sequentially. Prefer LoadShardedEngine for files — it
// loads shards in parallel.
func ReadShardedEngine(r io.Reader) (*ShardedEngine, error) {
	n, rr, err := readShardedHeader(r)
	if err != nil {
		return nil, err
	}
	shards := make([]*Engine, n)
	for j := range shards {
		var size uint64
		if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
			return nil, fmt.Errorf("must: shard %d: reading blob size: %w", j, err)
		}
		lr := io.LimitReader(r, int64(size))
		e, err := ReadEngine(lr)
		if err != nil {
			return nil, fmt.Errorf("must: shard %d: %w", j, err)
		}
		// ReadEngine's internal buffering may leave unread bytes inside
		// the blob region; drain them so the next shard starts aligned.
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return nil, fmt.Errorf("must: shard %d: %w", j, err)
		}
		shards[j] = e
	}
	return assembleSharded(shards, rr)
}

// LoadShardedEngine reads a MUSTSH1 container from the file at path,
// loading all shards in parallel (each from its own file section).
func LoadShardedEngine(path string) (*ShardedEngine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	n, rr, err := readShardedHeader(f)
	if err != nil {
		return nil, err
	}
	// Walk the size prefixes to compute each shard's file section.
	offsets := make([]int64, n)
	sizes := make([]int64, n)
	off := int64(len(shMagic) + 4 + 8)
	var szBuf [8]byte
	for j := 0; j < n; j++ {
		if _, err := f.ReadAt(szBuf[:], off); err != nil {
			return nil, fmt.Errorf("must: shard %d: reading blob size: %w", j, err)
		}
		size := int64(binary.LittleEndian.Uint64(szBuf[:]))
		if size < 0 || off+8+size > fi.Size() {
			return nil, fmt.Errorf("must: shard %d: blob size %d exceeds file", j, size)
		}
		offsets[j] = off + 8
		sizes[j] = size
		off += 8 + size
	}
	shards := make([]*Engine, n)
	err = shard.Do(n, 0, func(j int) error {
		e, err := ReadEngine(io.NewSectionReader(f, offsets[j], sizes[j]))
		if err != nil {
			return fmt.Errorf("must: shard %d: %w", j, err)
		}
		shards[j] = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	return assembleSharded(shards, rr)
}

// LoadService reads an engine snapshot from the file at path, sniffing
// the container magic: MUSTSH1 loads a ShardedEngine (shards in
// parallel), MUSTEG1/2 a single Engine. This is what serving layers use to
// restore whichever engine kind produced the snapshot.
func LoadService(path string) (Service, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var got [8]byte
	_, rerr := io.ReadFull(f, got[:])
	_ = f.Close()
	if rerr != nil {
		return nil, fmt.Errorf("must: reading snapshot magic: %w", rerr)
	}
	if got == shMagic {
		return LoadShardedEngine(path)
	}
	return LoadEngine(path)
}
