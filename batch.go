package must

import (
	"fmt"
	"runtime"
	"sync"

	"must/internal/search"
	"must/internal/vec"
)

// SearchBatch answers many queries concurrently, one searcher per worker
// (searchers are single-goroutine; the underlying index is read-only and
// shared). Results align with the queries slice. workers ≤ 0 uses
// GOMAXPROCS.
//
// Note the paper's throughput numbers are single-threaded (§VIII-A);
// SearchBatch is the production-oriented convenience on top.
func (ix *Index) SearchBatch(queries []Object, opts SearchOptions, workers int) ([][]Match, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if opts.K == 0 {
		opts.K = 10
	}
	if opts.L == 0 {
		opts.L = 4 * opts.K
		if opts.L < 100 {
			opts.L = 100
		}
	}
	w := vec.Weights(ix.f.Weights)
	if opts.Weights != nil {
		if len(opts.Weights) != ix.c.Modalities() {
			return nil, fmt.Errorf("must: %d override weights for %d modalities", len(opts.Weights), ix.c.Modalities())
		}
		w = vec.Weights(opts.Weights)
	}
	// Validate all queries up front so workers cannot race to report
	// different errors for the same call.
	converted := make([]vec.Multi, len(queries))
	for i, q := range queries {
		mv, err := ix.c.query(q)
		if err != nil {
			return nil, fmt.Errorf("must: batch query %d: %w", i, err)
		}
		converted[i] = mv
	}

	out := make([][]Match, len(queries))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	params := search.Params{
		K:          opts.K,
		L:          opts.L,
		Weights:    w,
		Filter:     opts.Filter,
		Tombstones: ix.dead,
		Patience:   opts.Patience,
		Optimize:   !opts.DisableOptimization,
	}
	for wk := 0; wk < workers; wk++ {
		go func(wk int) {
			defer wg.Done()
			s := ix.f.NewSearcher()
			for i := wk; i < len(queries); i += workers {
				res, _, err := s.SearchParams(converted[i], params)
				if err != nil {
					errs[wk] = err
					return
				}
				ms := make([]Match, len(res))
				for j, r := range res {
					ms[j] = Match{ID: r.ID, Similarity: r.IP}
				}
				out[i] = ms
			}
		}(wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// QueryFromObject supports the paper's iterative refinement flow (§IX and
// §I: "iteratively use a returned target modality example as a reference
// and express differences through auxiliary modalities"): it builds a new
// query whose target modality is the stored object's — e.g. a result the
// user liked — combined with fresh auxiliary vectors. Auxiliary entries
// may be nil to leave modalities missing (pair with zero weights).
func (ix *Index) QueryFromObject(id int, aux Object) (Object, error) {
	if id < 0 || id >= ix.c.Len() {
		return nil, fmt.Errorf("must: object id %d out of range [0,%d)", id, ix.c.Len())
	}
	m := ix.c.Modalities()
	if len(aux) != m {
		return nil, fmt.Errorf("must: aux has %d modalities, collection expects %d (index 0 is ignored)", len(aux), m)
	}
	q := make(Object, m)
	q[0] = vec.Clone(ix.c.store.Modality(id, 0))
	for i := 1; i < m; i++ {
		if aux[i] == nil {
			continue
		}
		if len(aux[i]) != ix.c.dims[i] {
			return nil, fmt.Errorf("must: aux modality %d has dim %d, expects %d", i, len(aux[i]), ix.c.dims[i])
		}
		q[i] = vec.Normalized(aux[i])
	}
	return q, nil
}
