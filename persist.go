package must

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"must/internal/index"
	"must/internal/vec"
)

// Collection binary format, little-endian.
//
// Version 4 (written by this package; arena dump):
//
//	magic "MUSTCL4\n"
//	m uint32, dims: m × uint32
//	names: m × (len uint32, bytes)   — len 0 for unnamed modalities
//	numObjects uint64
//	vectors: numObjects × rowDim × float32, one contiguous block
//
// The writer sources the float block straight from the collection's
// shared arena-backed store — a handful of bulk writes over the arena's
// contiguous runs instead of one encode loop per object — and the loader
// reads it back into a single arena that becomes the collection's store
// verbatim. A loaded system is therefore single-copy before the first
// query: build, search, brute force, and future appends all view the
// adopted arena. v4 also widens the count *field* to 64 bits so the wire
// format can outgrow uint32 without another version bump; both the
// writer and the loader currently enforce the same maxPersistObjects
// sanity bound, so every file that saves also loads.
//
// Version 3 (still readable; flat vector block, uint32 count):
//
//	magic "MUSTCL3\n"
//	m uint32, dims: m × uint32
//	names: m × (len uint32, bytes)
//	numObjects uint32
//	vectors: numObjects × rowDim × float32, one contiguous block
//
// Version 2 (still readable; adds modality names over v1):
//
//	magic "MUSTCL2\n"
//	m uint32, dims: m × uint32
//	names: m × (len uint32, bytes)
//	numObjects uint32
//	objects: numObjects × (per modality: dim × float32)
//
// Version 1 (still readable; no names):
//
//	magic "MUSTCL1\n"
//	m uint32, dims: m × uint32
//	numObjects uint32
//	objects: numObjects × (per modality: dim × float32)
//
// Every read path — v1 through v4 — lands the vectors in one arena-backed
// store, so legacy files also end up single-copy after load: v1/v2 rows
// are decoded directly into consecutive store rows, and v3/v4 blocks are
// adopted wholesale.
//
// Pairs with Index.Save/LoadIndex so a built system can be persisted and
// restored in full: save the collection and the index, load both, search.

// maxPersistObjects bounds the object count the persistence formats
// accept, enforced symmetrically: the writer rejects collections above it
// (nothing may be saved that cannot be loaded back) and the loader uses
// it to reject corrupt headers before allocating.
const maxPersistObjects = 1 << 28

var (
	clMagicV1 = [8]byte{'M', 'U', 'S', 'T', 'C', 'L', '1', '\n'}
	clMagicV2 = [8]byte{'M', 'U', 'S', 'T', 'C', 'L', '2', '\n'}
	clMagicV3 = [8]byte{'M', 'U', 'S', 'T', 'C', 'L', '3', '\n'}
	clMagicV4 = [8]byte{'M', 'U', 'S', 'T', 'C', 'L', '4', '\n'}
	// v5 = v4 plus a trailing SQ8 block: m × (min float32, delta float32)
	// per-modality scales followed by n·rowDim code bytes. Written only
	// when the store carries a trained SQ8 shadow covering every row;
	// collections without quantization keep writing v4, so files stay
	// byte-identical for non-quantized users and v1–v4 files keep loading.
	clMagicV5 = [8]byte{'M', 'U', 'S', 'T', 'C', 'L', '5', '\n'}
)

func writeString(bw *bufio.Writer, s string) error {
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := bw.WriteString(s)
	return err
}

func readString(br *bufio.Reader, maxLen uint32) (string, error) {
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > maxLen {
		return "", fmt.Errorf("must: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WriteCollection serializes c to w: the v4 arena-dump format, or v5 when
// the collection carries a trained SQ8 shadow store (v5 appends the
// quantizer scales and code arena so a loaded engine serves quantized
// searches without retraining).
func WriteCollection(w io.Writer, c *Collection) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writeCollectionBody(bw, c); err != nil {
		return err
	}
	return bw.Flush()
}

func writeCollectionBody(bw *bufio.Writer, c *Collection) error {
	if c.Len() > maxPersistObjects {
		return fmt.Errorf("must: collection has %d objects, persistence caps at %d", c.Len(), maxPersistObjects)
	}
	// The SQ8 block is written only when it covers the full corpus (it
	// always does under the Engine's write-lock discipline: SyncSQ8 runs
	// before any save can observe the new rows).
	var sq8 *vec.SQ8Store
	if c.store != nil {
		if q := c.store.SQ8(); q != nil && q.Trained() && q.Len() == c.Len() {
			sq8 = q
		}
	}
	magic := clMagicV4
	if sq8 != nil {
		magic = clMagicV5
	}
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(c.dims))); err != nil {
		return err
	}
	for _, d := range c.dims {
		if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	for i := range c.dims {
		name := ""
		if i < len(c.names) {
			name = c.names[i]
		}
		if len(name) > maxModalityNameLen {
			return fmt.Errorf("must: modality %d name exceeds %d bytes, would be unloadable", i, maxModalityNameLen)
		}
		if err := writeString(bw, name); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(c.Len())); err != nil {
		return err
	}
	if c.store == nil {
		return nil
	}
	// The vector block is sourced straight from the store's arena: a few
	// large contiguous runs (the bulk block plus any overflow chunks),
	// each encoded through one bounded scratch buffer. No per-object
	// dispatch — collection save time is dominated by this loop.
	scratch := make([]byte, 0, 1<<16)
	if err := c.store.Runs(func(run []float32) error {
		for len(run) > 0 {
			chunk := run
			if len(chunk) > (1<<16)/4 {
				chunk = chunk[:(1<<16)/4]
			}
			run = run[len(chunk):]
			scratch = scratch[:0]
			for _, x := range chunk {
				scratch = binary.LittleEndian.AppendUint32(scratch, math.Float32bits(x))
			}
			if _, err := bw.Write(scratch); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if sq8 == nil {
		return nil
	}
	// v5 SQ8 block: per-modality scales, then the code arena in the same
	// few-large-runs fashion as the float block (codes are raw bytes, so
	// no scratch re-encoding is needed).
	mins, deltas := sq8.Scales()
	for m := range c.dims {
		if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(mins[m])); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(deltas[m])); err != nil {
			return err
		}
	}
	return sq8.Runs(func(run []uint8) error {
		_, err := bw.Write(run)
		return err
	})
}

// readFloatBlock fills dst with little-endian float32s from br through
// the caller-provided scratch buffer (no full-size intermediate byte
// slice; the scratch is allocated once per load, not per call — the
// v1/v2 legacy path calls this once per object).
func readFloatBlock(br *bufio.Reader, dst []float32, scratch []byte) error {
	for len(dst) > 0 {
		want := len(dst) * 4
		if want > len(scratch) {
			want = len(scratch)
		}
		if _, err := io.ReadFull(br, scratch[:want]); err != nil {
			return err
		}
		for i := 0; i < want; i += 4 {
			dst[0] = math.Float32frombits(binary.LittleEndian.Uint32(scratch[i:]))
			dst = dst[1:]
		}
	}
	return nil
}

// ReadCollection deserializes a collection from r, accepting every format
// back to v1. All versions load into a single arena-backed store.
func ReadCollection(r io.Reader) (*Collection, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	return readCollectionBody(br)
}

func readCollectionBody(br *bufio.Reader) (*Collection, error) {
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("must: reading collection magic: %w", err)
	}
	version := 0
	switch got {
	case clMagicV1:
		version = 1
	case clMagicV2:
		version = 2
	case clMagicV3:
		version = 3
	case clMagicV4:
		version = 4
	case clMagicV5:
		version = 5
	default:
		return nil, fmt.Errorf("must: bad collection magic %q", got[:])
	}
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if m == 0 || m > 64 {
		return nil, fmt.Errorf("must: unreasonable modality count %d", m)
	}
	dims := make([]int, m)
	total := 0
	for i := range dims {
		var d uint32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<16 {
			return nil, fmt.Errorf("must: unreasonable dim %d", d)
		}
		dims[i] = int(d)
		total += int(d)
	}
	var names []string
	if version >= 2 {
		any := false
		names = make([]string, m)
		for i := range names {
			s, err := readString(br, maxModalityNameLen)
			if err != nil {
				return nil, fmt.Errorf("must: reading modality %d name: %w", i, err)
			}
			names[i] = s
			if s != "" {
				any = true
			}
		}
		if !any {
			names = nil
		}
	}
	var n uint64
	if version >= 4 {
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
	} else {
		var n32 uint32
		if err := binary.Read(br, binary.LittleEndian, &n32); err != nil {
			return nil, err
		}
		n = uint64(n32)
	}
	if n > maxPersistObjects {
		return nil, fmt.Errorf("must: unreasonable object count %d", n)
	}
	c := NewCollection(dims...)
	c.names = names
	if version >= 3 {
		// v3/v4: the whole vector block lands in one flat arena that
		// becomes the collection's store verbatim. The arena grows as
		// data actually arrives (capped initial allocation) so a corrupt
		// header claiming billions of floats fails with a read error
		// instead of attempting one enormous upfront allocation.
		totalFloats := int(n) * total
		capHint := totalFloats
		const maxUpfront = 1 << 22 // 4M floats = 16 MiB before any data is seen
		if capHint > maxUpfront {
			capHint = maxUpfront
		}
		arena := make([]float32, 0, capHint)
		scratch := make([]byte, 1<<16)
		for len(arena) < totalFloats {
			chunk := totalFloats - len(arena)
			if chunk > 1<<20 {
				chunk = 1 << 20
			}
			if cap(arena)-len(arena) < chunk {
				newCap := 2 * cap(arena)
				if newCap > totalFloats {
					newCap = totalFloats
				}
				grown := make([]float32, len(arena), newCap)
				copy(grown, arena)
				arena = grown
			}
			start := len(arena)
			arena = arena[:start+chunk]
			if err := readFloatBlock(br, arena[start:], scratch); err != nil {
				return nil, fmt.Errorf("must: reading flat vector block: %w", err)
			}
		}
		c.store = vec.FlatStoreFromArena(dims, arena)
		if version >= 5 {
			// SQ8 block: scales, then one code byte per stored float. The
			// code arena is adopted by the shadow store verbatim, mirroring
			// the float arena above.
			mins := make([]float32, m)
			deltas := make([]float32, m)
			for i := uint32(0); i < m; i++ {
				var mb, db uint32
				if err := binary.Read(br, binary.LittleEndian, &mb); err != nil {
					return nil, fmt.Errorf("must: reading sq8 scale %d: %w", i, err)
				}
				if err := binary.Read(br, binary.LittleEndian, &db); err != nil {
					return nil, fmt.Errorf("must: reading sq8 scale %d: %w", i, err)
				}
				mins[i] = math.Float32frombits(mb)
				deltas[i] = math.Float32frombits(db)
			}
			codes := make([]uint8, 0, capHint)
			for len(codes) < totalFloats {
				chunk := totalFloats - len(codes)
				if chunk > 1<<20 {
					chunk = 1 << 20
				}
				start := len(codes)
				codes = append(codes, make([]uint8, chunk)...)
				if _, err := io.ReadFull(br, codes[start:]); err != nil {
					return nil, fmt.Errorf("must: reading sq8 code block: %w", err)
				}
			}
			c.store.AdoptSQ8(vec.SQ8FromParts(c.store.Offsets(), c.store.RowDim(), mins, deltas, codes))
		}
		return c, nil
	}
	// v1/v2: per-object layout. Decode each object's floats directly into
	// the next store row, so legacy files also land in one arena. The
	// store's upfront commitment is capped the same way (overflow rows go
	// to the store's growable chunks), keeping corrupt headers cheap.
	bulkRows := int(n)
	const maxUpfront = 1 << 22
	if total > 0 && bulkRows > maxUpfront/total {
		bulkRows = maxUpfront / total
	}
	c.store = vec.NewFlatStore(dims, bulkRows)
	scratch := make([]byte, 1<<16)
	for i := uint64(0); i < n; i++ {
		if err := readFloatBlock(br, c.store.AppendRow(), scratch); err != nil {
			return nil, fmt.Errorf("must: reading object %d: %w", i, err)
		}
	}
	return c, nil
}

// Engine binary format, little-endian:
//
//	magic "MUSTEG2\n" (v1 files with "MUSTEG1\n" still load)
//	schema: m uint32, m × (nameLen uint32, name bytes, dim uint32)
//	weights: m × float32
//	build: gamma uint32, iterations uint32, algorithm uint32, seed int64
//	nextID uint64
//	epoch uint64 (v2 only; the mutation epoch at snapshot time — WAL
//	  replay applies only records logged after it. v1 loads as epoch 0.)
//	ids: n uint32, n × uint64
//	tombstones: n × uint8
//	collection body (v4 format, see above; v1-v3 bodies load too)
//	built uint8; if 1: index body (internal/index format)
var (
	egMagic  = [8]byte{'M', 'U', 'S', 'T', 'E', 'G', '1', '\n'}
	egMagic2 = [8]byte{'M', 'U', 'S', 'T', 'E', 'G', '2', '\n'}
)

// SaveTo serializes the whole engine — schema, weights, build options,
// objects, stable IDs, tombstones, and the built graph — to w. The engine
// may keep serving while it saves (a consistent snapshot is taken under
// the read lock).
func (e *Engine) SaveTo(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.c.Len() > maxPersistObjects {
		return fmt.Errorf("must: engine has %d objects, persistence caps at %d", e.c.Len(), maxPersistObjects)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(egMagic2[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(e.schema))); err != nil {
		return err
	}
	for _, m := range e.schema {
		if err := writeString(bw, m.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(m.Dim)); err != nil {
			return err
		}
	}
	for _, x := range e.weights {
		if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(x)); err != nil {
			return err
		}
	}
	bo := e.build
	if err := binary.Write(bw, binary.LittleEndian, uint32(bo.Gamma)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(bo.Iterations)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(bo.Algorithm)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, bo.Seed); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(e.nextID)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, e.epoch); err != nil {
		return err
	}
	n := e.c.Len()
	if err := binary.Write(bw, binary.LittleEndian, uint32(n)); err != nil {
		return err
	}
	for _, id := range e.ids {
		if err := binary.Write(bw, binary.LittleEndian, uint64(id)); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		var b byte
		if e.ix != nil && i < len(e.ix.dead) && e.ix.dead[i] {
			b = 1
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}
	if err := writeCollectionBody(bw, e.c); err != nil {
		return err
	}
	built := byte(0)
	if e.ix != nil {
		built = 1
	}
	if err := bw.WriteByte(built); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if e.ix != nil {
		// The index section is last, so its internal buffering cannot
		// over-read anything that follows on load.
		return e.ix.f.Write(w)
	}
	return nil
}

// Save writes the engine to the file at path.
func (e *Engine) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.SaveTo(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadEngine deserializes an engine written with SaveTo, restoring
// schema, weights, build options, objects, stable IDs, tombstones, and
// the built graph.
func ReadEngine(r io.Reader) (*Engine, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("must: reading engine magic: %w", err)
	}
	if got != egMagic && got != egMagic2 {
		return nil, fmt.Errorf("must: bad engine magic %q", got[:])
	}
	hasEpoch := got == egMagic2
	readU32 := func() (uint32, error) {
		var x uint32
		err := binary.Read(br, binary.LittleEndian, &x)
		return x, err
	}
	m, err := readU32()
	if err != nil {
		return nil, err
	}
	if m == 0 || m > 64 {
		return nil, fmt.Errorf("must: unreasonable modality count %d", m)
	}
	schema := make(Schema, m)
	for i := range schema {
		name, err := readString(br, maxModalityNameLen)
		if err != nil {
			return nil, err
		}
		d, err := readU32()
		if err != nil {
			return nil, err
		}
		schema[i] = Modality{Name: name, Dim: int(d)}
	}
	w := make(Weights, m)
	for i := range w {
		bits, err := readU32()
		if err != nil {
			return nil, err
		}
		w[i] = math.Float32frombits(bits)
	}
	var bo BuildOptions
	gamma, err := readU32()
	if err != nil {
		return nil, err
	}
	iters, err := readU32()
	if err != nil {
		return nil, err
	}
	algo, err := readU32()
	if err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &bo.Seed); err != nil {
		return nil, err
	}
	bo.Gamma, bo.Iterations, bo.Algorithm = int(gamma), int(iters), GraphAlgorithm(algo)
	var nextID uint64
	if err := binary.Read(br, binary.LittleEndian, &nextID); err != nil {
		return nil, err
	}
	var epoch uint64
	if hasEpoch {
		if err := binary.Read(br, binary.LittleEndian, &epoch); err != nil {
			return nil, err
		}
	}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	ids := make([]int64, n)
	for i := range ids {
		var x uint64
		if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
			return nil, err
		}
		ids[i] = int64(x)
	}
	dead := make([]bool, n)
	anyDead := false
	for i := range dead {
		b, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		dead[i] = b != 0
		anyDead = anyDead || dead[i]
	}
	c, err := readCollectionBody(br)
	if err != nil {
		return nil, err
	}
	if c.Modalities() != int(m) || c.Len() != int(n) {
		return nil, fmt.Errorf("must: engine file inconsistent: schema %d/%d modalities, %d/%d objects",
			c.Modalities(), m, c.Len(), n)
	}
	for i, d := range c.Dims() {
		if d != schema[i].Dim {
			return nil, fmt.Errorf("must: engine file inconsistent: modality %q dim %d in schema, %d in collection",
				schema[i].Name, schema[i].Dim, d)
		}
	}
	e, err := NewEngine(schema, EngineOptions{Weights: w, Build: bo})
	if err != nil {
		return nil, err
	}
	e.c.store = c.store
	if c.store != nil && c.store.SQ8() != nil {
		// A v5 collection body means the engine was serving quantized
		// searches when saved; resume doing so (default re-rank depth).
		e.quantize = true
	}
	e.nextID = int64(nextID)
	e.epoch = epoch
	e.ids = ids
	for slot, id := range ids {
		e.lookup[id] = slot
	}
	built, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if built != 0 {
		// The loaded collection's arena-backed store is the corpus, full
		// stop: the index attaches it directly and every searcher scores
		// against it.
		f, err := index.ReadFused(br, e.c.flatStore())
		if err != nil {
			return nil, err
		}
		ix := &Index{c: e.c, f: f}
		ix.SetBuildOptions(bo)
		if anyDead {
			ix.dead = dead
			for _, d := range dead {
				if d {
					ix.deadCount++
				}
			}
		}
		e.ix = ix
		e.resetSearchersLocked()
		e.updateDebtLocked()
	}
	return e, nil
}

// LoadEngine reads an engine from the file at path.
func LoadEngine(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	return ReadEngine(f)
}

// SaveCollection writes c to the file at path.
func SaveCollection(path string, c *Collection) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCollection(f, c); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// LoadCollection reads a collection from the file at path.
func LoadCollection(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	return ReadCollection(f)
}
