package must

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"must/internal/index"
	"must/internal/vec"
)

// Collection binary format, little-endian.
//
// Version 2 (written by this package; adds modality names):
//
//	magic "MUSTCL2\n"
//	m uint32, dims: m × uint32
//	names: m × (len uint32, bytes)   — len 0 for unnamed modalities
//	numObjects uint32
//	objects: numObjects × (per modality: dim × float32)
//
// Version 1 (still readable; no names):
//
//	magic "MUSTCL1\n"
//	m uint32, dims: m × uint32
//	numObjects uint32
//	objects: numObjects × (per modality: dim × float32)
//
// Pairs with Index.Save/LoadIndex so a built system can be persisted and
// restored in full: save the collection and the index, load both, search.

var (
	clMagicV1 = [8]byte{'M', 'U', 'S', 'T', 'C', 'L', '1', '\n'}
	clMagicV2 = [8]byte{'M', 'U', 'S', 'T', 'C', 'L', '2', '\n'}
)

func writeString(bw *bufio.Writer, s string) error {
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := bw.WriteString(s)
	return err
}

func readString(br *bufio.Reader, maxLen uint32) (string, error) {
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > maxLen {
		return "", fmt.Errorf("must: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WriteCollection serializes c to w in the v2 format (modality names
// included when present).
func WriteCollection(w io.Writer, c *Collection) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writeCollectionBody(bw, c); err != nil {
		return err
	}
	return bw.Flush()
}

func writeCollectionBody(bw *bufio.Writer, c *Collection) error {
	if _, err := bw.Write(clMagicV2[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(c.dims))); err != nil {
		return err
	}
	for _, d := range c.dims {
		if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	for i := range c.dims {
		name := ""
		if i < len(c.names) {
			name = c.names[i]
		}
		if len(name) > maxModalityNameLen {
			return fmt.Errorf("must: modality %d name exceeds %d bytes, would be unloadable", i, maxModalityNameLen)
		}
		if err := writeString(bw, name); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(c.objects))); err != nil {
		return err
	}
	var buf [4]byte
	for _, o := range c.objects {
		for _, v := range o {
			for _, x := range v {
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(x))
				if _, err := bw.Write(buf[:]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ReadCollection deserializes a collection from r, accepting both the v1
// and v2 formats.
func ReadCollection(r io.Reader) (*Collection, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	return readCollectionBody(br)
}

func readCollectionBody(br *bufio.Reader) (*Collection, error) {
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("must: reading collection magic: %w", err)
	}
	version := 0
	switch got {
	case clMagicV1:
		version = 1
	case clMagicV2:
		version = 2
	default:
		return nil, fmt.Errorf("must: bad collection magic %q", got[:])
	}
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if m == 0 || m > 64 {
		return nil, fmt.Errorf("must: unreasonable modality count %d", m)
	}
	dims := make([]int, m)
	total := 0
	for i := range dims {
		var d uint32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<16 {
			return nil, fmt.Errorf("must: unreasonable dim %d", d)
		}
		dims[i] = int(d)
		total += int(d)
	}
	var names []string
	if version >= 2 {
		any := false
		names = make([]string, m)
		for i := range names {
			s, err := readString(br, maxModalityNameLen)
			if err != nil {
				return nil, fmt.Errorf("must: reading modality %d name: %w", i, err)
			}
			names[i] = s
			if s != "" {
				any = true
			}
		}
		if !any {
			names = nil
		}
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	c := NewCollection(dims...)
	c.names = names
	c.objects = make([]vec.Multi, 0, n)
	for i := uint32(0); i < n; i++ {
		flat := make([]float32, total)
		if err := binary.Read(br, binary.LittleEndian, flat); err != nil {
			return nil, fmt.Errorf("must: reading object %d: %w", i, err)
		}
		mv := make(vec.Multi, m)
		off := 0
		for j, d := range dims {
			mv[j] = flat[off : off+d : off+d]
			off += d
		}
		c.objects = append(c.objects, mv)
	}
	return c, nil
}

// Engine binary format, little-endian:
//
//	magic "MUSTEG1\n"
//	schema: m uint32, m × (nameLen uint32, name bytes, dim uint32)
//	weights: m × float32
//	build: gamma uint32, iterations uint32, algorithm uint32, seed int64
//	nextID uint64
//	ids: n uint32, n × uint64
//	tombstones: n × uint8
//	collection body (v2 format, see above)
//	built uint8; if 1: index body (internal/index format)
var egMagic = [8]byte{'M', 'U', 'S', 'T', 'E', 'G', '1', '\n'}

// SaveTo serializes the whole engine — schema, weights, build options,
// objects, stable IDs, tombstones, and the built graph — to w. The engine
// may keep serving while it saves (a consistent snapshot is taken under
// the read lock).
func (e *Engine) SaveTo(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(egMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(e.schema))); err != nil {
		return err
	}
	for _, m := range e.schema {
		if err := writeString(bw, m.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(m.Dim)); err != nil {
			return err
		}
	}
	for _, x := range e.weights {
		if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(x)); err != nil {
			return err
		}
	}
	bo := e.build
	if err := binary.Write(bw, binary.LittleEndian, uint32(bo.Gamma)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(bo.Iterations)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(bo.Algorithm)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, bo.Seed); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(e.nextID)); err != nil {
		return err
	}
	n := e.c.Len()
	if err := binary.Write(bw, binary.LittleEndian, uint32(n)); err != nil {
		return err
	}
	for _, id := range e.ids {
		if err := binary.Write(bw, binary.LittleEndian, uint64(id)); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		var b byte
		if e.ix != nil && i < len(e.ix.dead) && e.ix.dead[i] {
			b = 1
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}
	if err := writeCollectionBody(bw, e.c); err != nil {
		return err
	}
	built := byte(0)
	if e.ix != nil {
		built = 1
	}
	if err := bw.WriteByte(built); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if e.ix != nil {
		// The index section is last, so its internal buffering cannot
		// over-read anything that follows on load.
		return e.ix.f.Write(w)
	}
	return nil
}

// Save writes the engine to the file at path.
func (e *Engine) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.SaveTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadEngine deserializes an engine written with SaveTo, restoring
// schema, weights, build options, objects, stable IDs, tombstones, and
// the built graph.
func ReadEngine(r io.Reader) (*Engine, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("must: reading engine magic: %w", err)
	}
	if got != egMagic {
		return nil, fmt.Errorf("must: bad engine magic %q", got[:])
	}
	readU32 := func() (uint32, error) {
		var x uint32
		err := binary.Read(br, binary.LittleEndian, &x)
		return x, err
	}
	m, err := readU32()
	if err != nil {
		return nil, err
	}
	if m == 0 || m > 64 {
		return nil, fmt.Errorf("must: unreasonable modality count %d", m)
	}
	schema := make(Schema, m)
	for i := range schema {
		name, err := readString(br, maxModalityNameLen)
		if err != nil {
			return nil, err
		}
		d, err := readU32()
		if err != nil {
			return nil, err
		}
		schema[i] = Modality{Name: name, Dim: int(d)}
	}
	w := make(Weights, m)
	for i := range w {
		bits, err := readU32()
		if err != nil {
			return nil, err
		}
		w[i] = math.Float32frombits(bits)
	}
	var bo BuildOptions
	gamma, err := readU32()
	if err != nil {
		return nil, err
	}
	iters, err := readU32()
	if err != nil {
		return nil, err
	}
	algo, err := readU32()
	if err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &bo.Seed); err != nil {
		return nil, err
	}
	bo.Gamma, bo.Iterations, bo.Algorithm = int(gamma), int(iters), GraphAlgorithm(algo)
	var nextID uint64
	if err := binary.Read(br, binary.LittleEndian, &nextID); err != nil {
		return nil, err
	}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	ids := make([]int64, n)
	for i := range ids {
		var x uint64
		if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
			return nil, err
		}
		ids[i] = int64(x)
	}
	dead := make([]bool, n)
	anyDead := false
	for i := range dead {
		b, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		dead[i] = b != 0
		anyDead = anyDead || dead[i]
	}
	c, err := readCollectionBody(br)
	if err != nil {
		return nil, err
	}
	if c.Modalities() != int(m) || c.Len() != int(n) {
		return nil, fmt.Errorf("must: engine file inconsistent: schema %d/%d modalities, %d/%d objects",
			c.Modalities(), m, c.Len(), n)
	}
	for i, d := range c.Dims() {
		if d != schema[i].Dim {
			return nil, fmt.Errorf("must: engine file inconsistent: modality %q dim %d in schema, %d in collection",
				schema[i].Name, schema[i].Dim, d)
		}
	}
	e, err := NewEngine(schema, EngineOptions{Weights: w, Build: bo})
	if err != nil {
		return nil, err
	}
	e.c.objects = c.objects
	e.nextID = int64(nextID)
	e.ids = ids
	for slot, id := range ids {
		e.lookup[id] = slot
	}
	built, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if built != 0 {
		f, err := index.ReadFused(br, e.c.objects)
		if err != nil {
			return nil, err
		}
		ix := &Index{c: e.c, f: f}
		ix.SetBuildOptions(bo)
		if anyDead {
			ix.dead = dead
		}
		e.ix = ix
		e.resetSearchersLocked()
	}
	return e, nil
}

// LoadEngine reads an engine from the file at path.
func LoadEngine(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEngine(f)
}

// SaveCollection writes c to the file at path.
func SaveCollection(path string, c *Collection) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCollection(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCollection reads a collection from the file at path.
func LoadCollection(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCollection(f)
}
