package must

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"must/internal/vec"
)

// Collection binary format, little-endian:
//
//	magic "MUSTCL1\n"
//	m uint32, dims: m × uint32
//	numObjects uint32
//	objects: numObjects × (per modality: dim × float32)
//
// Pairs with Index.Save/LoadIndex so a built system can be persisted and
// restored in full: save the collection and the index, load both, search.

var clMagic = [8]byte{'M', 'U', 'S', 'T', 'C', 'L', '1', '\n'}

// WriteCollection serializes c to w.
func WriteCollection(w io.Writer, c *Collection) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(clMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(c.dims))); err != nil {
		return err
	}
	for _, d := range c.dims {
		if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(c.objects))); err != nil {
		return err
	}
	var buf [4]byte
	for _, o := range c.objects {
		for _, v := range o {
			for _, x := range v {
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(x))
				if _, err := bw.Write(buf[:]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadCollection deserializes a collection from r.
func ReadCollection(r io.Reader) (*Collection, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("must: reading collection magic: %w", err)
	}
	if got != clMagic {
		return nil, fmt.Errorf("must: bad collection magic %q", got[:])
	}
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if m == 0 || m > 64 {
		return nil, fmt.Errorf("must: unreasonable modality count %d", m)
	}
	dims := make([]int, m)
	total := 0
	for i := range dims {
		var d uint32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<16 {
			return nil, fmt.Errorf("must: unreasonable dim %d", d)
		}
		dims[i] = int(d)
		total += int(d)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	c := NewCollection(dims...)
	c.objects = make([]vec.Multi, 0, n)
	for i := uint32(0); i < n; i++ {
		flat := make([]float32, total)
		if err := binary.Read(br, binary.LittleEndian, flat); err != nil {
			return nil, fmt.Errorf("must: reading object %d: %w", i, err)
		}
		mv := make(vec.Multi, m)
		off := 0
		for j, d := range dims {
			mv[j] = flat[off : off+d : off+d]
			off += d
		}
		c.objects = append(c.objects, mv)
	}
	return c, nil
}

// SaveCollection writes c to the file at path.
func SaveCollection(path string, c *Collection) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCollection(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCollection reads a collection from the file at path.
func LoadCollection(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCollection(f)
}
