// Command benchgate compares `go test -bench` output against a committed
// baseline (BENCH_BASELINE.json) and fails on performance regressions —
// the CI gate that keeps the fused-kernel search and the parallel build
// from silently slowing down.
//
// Typical use:
//
//	go test -bench=. -benchtime=200ms -count=5 ./... | tee bench.txt
//	go run ./cmd/benchgate -input bench.txt            # gate
//	go run ./cmd/benchgate -input bench.txt -update    # refresh baseline
//
// Multiple runs of the same benchmark (-count) are reduced to their
// median, which is what benchstat reports and is robust to one noisy run.
// Only baseline entries marked "gate": true fail the build; everything
// else is recorded for trend visibility. The tolerance (default 20%) can
// be overridden with -tolerance or the BENCH_GATE_TOLERANCE env var.
//
// Baselines are tied to the runner that produced them (the "runner"
// field): refresh the baseline whenever the CI runner hardware changes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's baseline record.
type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
	// Gate marks the benchmark as build-failing on regression; ungated
	// entries are informational.
	Gate bool `json:"gate,omitempty"`
}

// Baseline is the committed BENCH_BASELINE.json document.
type Baseline struct {
	Runner       string           `json:"runner"`
	Note         string           `json:"note,omitempty"`
	TolerancePct float64          `json:"tolerance_pct"`
	Benchmarks   map[string]Entry `json:"benchmarks"`
}

// gatedByDefault marks the benchmarks that guard the paper's headline
// claims: single-thread search throughput and index-build time.
var gatedByDefault = []*regexp.Regexp{
	regexp.MustCompile(`^BenchmarkSearch/flat/`),
	regexp.MustCompile(`^BenchmarkFig6MUSTSearch$`),
	regexp.MustCompile(`^BenchmarkFig7BuildMUST$`),
	regexp.MustCompile(`^BenchmarkFig10BuildOurs$`),
}

var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = append(out[m[1]], ns)
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func isGatedByDefault(name string) bool {
	for _, re := range gatedByDefault {
		if re.MatchString(name) {
			return true
		}
	}
	return false
}

func main() {
	input := flag.String("input", "bench.txt", "path to `go test -bench` output")
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "path to the committed baseline")
	tolerance := flag.Float64("tolerance", 0, "regression tolerance in percent (0 = baseline's tolerance_pct)")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of gating")
	runner := flag.String("runner", "", "runner label recorded on -update (defaults to the existing one)")
	flag.Parse()

	results, err := parseBench(*input)
	if err != nil {
		fatalf("reading %s: %v", *input, err)
	}
	if len(results) == 0 {
		fatalf("no benchmark results found in %s", *input)
	}

	var base Baseline
	raw, err := os.ReadFile(*baselinePath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &base); err != nil {
			fatalf("parsing %s: %v", *baselinePath, err)
		}
	case os.IsNotExist(err) && *update:
		base = Baseline{TolerancePct: 20}
	default:
		fatalf("reading %s: %v", *baselinePath, err)
	}

	if *update {
		// Rebuild the benchmark set from this run: gate flags carry over
		// for surviving names, and entries for renamed or deleted
		// benchmarks are pruned (a stale gated entry would otherwise fail
		// the gate as MISSING forever).
		fresh := make(map[string]Entry, len(results))
		for name, runs := range results {
			prev, existed := base.Benchmarks[name]
			gate := prev.Gate
			if !existed {
				gate = isGatedByDefault(name)
			}
			fresh[name] = Entry{NsPerOp: median(runs), Gate: gate}
		}
		for name := range base.Benchmarks {
			if _, ok := fresh[name]; !ok {
				fmt.Printf("benchgate: pruning stale baseline entry %s\n", name)
			}
		}
		base.Benchmarks = fresh
		if *runner != "" {
			base.Runner = *runner
		}
		if base.Note == "" {
			base.Note = "Median ns/op per benchmark; refresh with: go test -bench=. -benchtime=200ms -count=5 ./... | tee bench.txt && go run ./cmd/benchgate -input bench.txt -update"
		}
		out, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fatalf("encoding baseline: %v", err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatalf("writing %s: %v", *baselinePath, err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(results), *baselinePath)
		return
	}

	tol := base.TolerancePct
	if *tolerance > 0 {
		tol = *tolerance
	}
	if env := os.Getenv("BENCH_GATE_TOLERANCE"); env != "" {
		if v, err := strconv.ParseFloat(env, 64); err == nil && v > 0 {
			tol = v
		}
	}
	if tol <= 0 {
		tol = 20
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	fmt.Fprintf(&sb, "## Benchmark gate (tolerance %.0f%%, runner %q)\n\n", tol, base.Runner)
	sb.WriteString("| benchmark | baseline ns/op | current ns/op | delta | gated | status |\n")
	sb.WriteString("|---|---|---|---|---|---|\n")
	failures := 0
	for _, name := range names {
		e := base.Benchmarks[name]
		runs, ok := results[name]
		if !ok {
			status := "missing"
			if e.Gate {
				status = "**MISSING**"
				failures++
			}
			fmt.Fprintf(&sb, "| %s | %.0f | — | — | %v | %s |\n", name, e.NsPerOp, e.Gate, status)
			continue
		}
		cur := median(runs)
		delta := (cur - e.NsPerOp) / e.NsPerOp * 100
		status := "ok"
		switch {
		case e.Gate && delta > tol:
			status = "**REGRESSION**"
			failures++
		case delta > tol:
			status = "slower (ungated)"
		case delta < -tol:
			status = "faster — consider refreshing the baseline"
		}
		fmt.Fprintf(&sb, "| %s | %.0f | %.0f | %+.1f%% | %v | %s |\n", name, e.NsPerOp, cur, delta, e.Gate, status)
	}
	report := sb.String()
	fmt.Print(report)
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintln(f, report)
			f.Close()
		}
	}
	if failures > 0 {
		fatalf("%d gated benchmark(s) regressed more than %.0f%% against %s", failures, tol, *baselinePath)
	}
	fmt.Println("\nbenchgate: all gated benchmarks within tolerance")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
