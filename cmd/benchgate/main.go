// Command benchgate compares `go test -bench` output against a committed
// baseline (BENCH_BASELINE.json) and fails on performance regressions —
// the CI gate that keeps the fused-kernel search and the parallel build
// from silently slowing down.
//
// Typical use:
//
//	go test -bench=. -benchmem -benchtime=200ms -count=5 ./... | tee bench.txt
//	go run ./cmd/benchgate -input bench.txt            # gate
//	go run ./cmd/benchgate -input bench.txt -update    # refresh baseline
//
// Multiple runs of the same benchmark (-count) are reduced to their
// median, which is what benchstat reports and is robust to one noisy run.
// Only baseline entries marked "gate": true fail the build; everything
// else is recorded for trend visibility. The tolerance (default 20%) can
// be overridden with -tolerance or the BENCH_GATE_TOLERANCE env var.
//
// Besides ns/op, gated benchmarks also gate on B/op and allocs/op when
// the baseline records them (run with -benchmem): a change that keeps
// latency but silently re-introduces a per-query corpus copy or a
// per-candidate allocation fails the build the same way a slowdown does.
// Memory numbers are far more stable than timings, so they share the
// same tolerance with room to spare.
//
// Baselines are tied to the runner that produced them (the "runner"
// field): refresh the baseline whenever the CI runner hardware changes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's baseline record.
type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are recorded when the input was produced
	// with -benchmem; nil means the metric was absent and is not gated.
	BytesPerOp  *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Gate marks the benchmark as build-failing on regression; ungated
	// entries are informational.
	Gate bool `json:"gate,omitempty"`
}

// Baseline is the committed BENCH_BASELINE.json document.
type Baseline struct {
	Runner       string           `json:"runner"`
	Note         string           `json:"note,omitempty"`
	TolerancePct float64          `json:"tolerance_pct"`
	Benchmarks   map[string]Entry `json:"benchmarks"`
}

// gatedByDefault marks the benchmarks that guard the paper's headline
// claims plus the storage-architecture invariants: single-thread search
// throughput (0 allocs/op steady state), index-build time, index memory
// (graph bytes/edge + single-copy corpus), the MUSTIX2 bulk-load path,
// and the mustd serving pipeline (direct and batched dispatch).
var gatedByDefault = []*regexp.Regexp{
	regexp.MustCompile(`^BenchmarkSearch/flat/`),
	regexp.MustCompile(`^BenchmarkFig6MUSTSearch$`),
	regexp.MustCompile(`^BenchmarkFig7BuildMUST$`),
	regexp.MustCompile(`^BenchmarkFig10BuildOurs$`),
	regexp.MustCompile(`^BenchmarkIndexMemory$`),
	regexp.MustCompile(`^BenchmarkIndexLoad$`),
	regexp.MustCompile(`^BenchmarkServePipeline/`),
	// Sharded-engine scale path: parallel build and fan-out/merge search.
	// The PR tier (n=16384) lives in BENCH_BASELINE.json; the nightly
	// 256k tier (MUST_SCALE=1) gates against BENCH_BASELINE_SCALE.json.
	regexp.MustCompile(`^BenchmarkShardedBuild/`),
	regexp.MustCompile(`^BenchmarkShardedSearch/`),
	// Dot-kernel microbenchmarks (per runtime variant: go + avx2/neon)
	// and the SQ8 quantized search path against its float32 twin on the
	// CLIP-scale corpus — the pair that backs the ≥1.5× speedup claim.
	regexp.MustCompile(`^BenchmarkKernel/`),
	regexp.MustCompile(`^BenchmarkSearchSQ8/`),
}

// benchLine parses one `go test -bench` result line. Custom ReportMetric
// values print between ns/op and the -benchmem columns, so B/op and
// allocs/op are matched anywhere after ns/op rather than immediately
// adjacent to it.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) B/op)?(?:.*?\s([0-9.]+) allocs/op)?`)

// runs collects the per-run samples of one benchmark's metrics.
type runs struct {
	ns     []float64
	bytes  []float64
	allocs []float64
}

func parseBench(path string) (map[string]*runs, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	out := make(map[string]*runs)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := out[m[1]]
		if r == nil {
			r = &runs{}
			out[m[1]] = r
		}
		r.ns = append(r.ns, ns)
		if m[3] != "" {
			if v, err := strconv.ParseFloat(m[3], 64); err == nil {
				r.bytes = append(r.bytes, v)
			}
		}
		if m[4] != "" {
			if v, err := strconv.ParseFloat(m[4], 64); err == nil {
				r.allocs = append(r.allocs, v)
			}
		}
	}
	return out, sc.Err()
}

// medianOf returns a pointer to the median of xs, or nil when the metric
// was not present in every run (a partial -benchmem signal is not a
// trustworthy baseline).
func medianOf(xs []float64, want int) *float64 {
	if len(xs) == 0 || len(xs) != want {
		return nil
	}
	m := median(xs)
	return &m
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func isGatedByDefault(name string) bool {
	for _, re := range gatedByDefault {
		if re.MatchString(name) {
			return true
		}
	}
	return false
}

func main() {
	input := flag.String("input", "bench.txt", "path to `go test -bench` output")
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "path to the committed baseline")
	tolerance := flag.Float64("tolerance", 0, "regression tolerance in percent (0 = baseline's tolerance_pct)")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of gating")
	runner := flag.String("runner", "", "runner label recorded on -update (defaults to the existing one)")
	flag.Parse()

	results, err := parseBench(*input)
	if err != nil {
		fatalf("reading %s: %v", *input, err)
	}
	if len(results) == 0 {
		fatalf("no benchmark results found in %s", *input)
	}

	var base Baseline
	raw, err := os.ReadFile(*baselinePath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &base); err != nil {
			fatalf("parsing %s: %v", *baselinePath, err)
		}
	case os.IsNotExist(err) && *update:
		base = Baseline{TolerancePct: 20}
	default:
		fatalf("reading %s: %v", *baselinePath, err)
	}

	if *update {
		// Rebuild the benchmark set from this run: gate flags carry over
		// for surviving names, and entries for renamed or deleted
		// benchmarks are pruned (a stale gated entry would otherwise fail
		// the gate as MISSING forever).
		fresh := make(map[string]Entry, len(results))
		for name, r := range results {
			prev := base.Benchmarks[name]
			// Gate flags carry over, and any benchmark matching the
			// default-gate set is (re)gated — so promoting an existing
			// benchmark to gated only takes a gatedByDefault entry plus a
			// refresh, not a hand edit of the JSON.
			gate := prev.Gate || isGatedByDefault(name)
			fresh[name] = Entry{
				NsPerOp:     median(r.ns),
				BytesPerOp:  medianOf(r.bytes, len(r.ns)),
				AllocsPerOp: medianOf(r.allocs, len(r.ns)),
				Gate:        gate,
			}
		}
		for name := range base.Benchmarks {
			if _, ok := fresh[name]; !ok {
				fmt.Printf("benchgate: pruning stale baseline entry %s\n", name)
			}
		}
		base.Benchmarks = fresh
		if *runner != "" {
			base.Runner = *runner
		}
		if base.Note == "" {
			base.Note = "Median ns/op per benchmark; refresh with: go test -bench=. -benchtime=200ms -count=5 ./... | tee bench.txt && go run ./cmd/benchgate -input bench.txt -update"
		}
		out, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fatalf("encoding baseline: %v", err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatalf("writing %s: %v", *baselinePath, err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(results), *baselinePath)
		return
	}

	tol := base.TolerancePct
	if *tolerance > 0 {
		tol = *tolerance
	}
	if env := os.Getenv("BENCH_GATE_TOLERANCE"); env != "" {
		if v, err := strconv.ParseFloat(env, 64); err == nil && v > 0 {
			tol = v
		}
	}
	if tol <= 0 {
		tol = 20
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	fmt.Fprintf(&sb, "## Benchmark gate (tolerance %.0f%%, runner %q)\n\n", tol, base.Runner)
	sb.WriteString("| benchmark | metric | baseline | current | delta | gated | status |\n")
	sb.WriteString("|---|---|---|---|---|---|---|\n")
	failures := 0
	for _, name := range names {
		e := base.Benchmarks[name]
		r, ok := results[name]
		if !ok {
			status := "missing"
			if e.Gate {
				status = "**MISSING**"
				failures++
			}
			fmt.Fprintf(&sb, "| %s | ns/op | %.0f | — | — | %v | %s |\n", name, e.NsPerOp, e.Gate, status)
			continue
		}
		// One row per recorded metric; each gates independently.
		type metric struct {
			label string
			base  float64
			cur   []float64
		}
		metrics := []metric{{"ns/op", e.NsPerOp, r.ns}}
		if e.BytesPerOp != nil {
			metrics = append(metrics, metric{"B/op", *e.BytesPerOp, r.bytes})
		}
		if e.AllocsPerOp != nil {
			metrics = append(metrics, metric{"allocs/op", *e.AllocsPerOp, r.allocs})
		}
		for _, mt := range metrics {
			if len(mt.cur) == 0 {
				status := "missing metric (run with -benchmem)"
				if e.Gate {
					status = "**MISSING METRIC** (run with -benchmem)"
					failures++
				}
				fmt.Fprintf(&sb, "| %s | %s | %.0f | — | — | %v | %s |\n", name, mt.label, mt.base, e.Gate, status)
				continue
			}
			cur := median(mt.cur)
			var delta float64
			// Zero baseline (e.g. a benchmark that used to allocate
			// nothing): any appearance is an unbounded regression, reported
			// as such rather than as a fabricated percentage.
			unbounded := mt.base == 0 && cur != 0
			if mt.base != 0 {
				delta = (cur - mt.base) / mt.base * 100
			}
			deltaCell := fmt.Sprintf("%+.1f%%", delta)
			if unbounded {
				deltaCell = "+∞ (zero baseline)"
			}
			status := "ok"
			switch {
			case e.Gate && (unbounded || delta > tol):
				status = "**REGRESSION**"
				failures++
			case unbounded || delta > tol:
				status = "slower (ungated)"
			case delta < -tol:
				status = "faster — consider refreshing the baseline"
			}
			fmt.Fprintf(&sb, "| %s | %s | %.0f | %.0f | %s | %v | %s |\n", name, mt.label, mt.base, cur, deltaCell, e.Gate, status)
		}
	}
	report := sb.String()
	fmt.Print(report)
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintln(f, report)
			_ = f.Close()
		}
	}
	if failures > 0 {
		fatalf("%d gated benchmark(s) regressed more than %.0f%% against %s", failures, tol, *baselinePath)
	}
	fmt.Println("\nbenchgate: all gated benchmarks within tolerance")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
