// Command mustload is a closed-loop load driver for mustd. Each worker
// keeps exactly one request in flight (closed loop), so concurrency is
// the offered parallelism and latency percentiles are honest. It can
// prime an empty daemon (-prime N inserts random objects and triggers
// /v1/rebuild), mix writes into the stream (-write-ratio), and reports
// throughput, error/shed counts, and p50/p95/p99 per phase.
//
//	mustload -addr localhost:7700 -prime 20000 -c 64 -duration 30s
//	mustload -addr localhost:7700 -c 64 -write-ratio 0.05 -no-cache
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

type modality struct {
	Name string `json:"name"`
	Dim  int    `json:"dim"`
}

type statsResponse struct {
	Schema  []modality `json:"schema"`
	Objects int        `json:"objects"`
	Built   bool       `json:"built"`
	// Shards is non-empty when the target daemon runs a sharded engine.
	Shards []struct {
		State string `json:"state"`
	} `json:"shards"`
	// Engine picks the scan-path fields out of the nested must.Stats:
	// which dot kernel the daemon runs and whether an SQ8 shadow serves
	// the beam search (quantized_bytes > 0).
	Engine struct {
		QuantizedBytes int64  `json:"quantized_bytes"`
		KernelVariant  string `json:"kernel_variant"`
	} `json:"engine"`
}

type searchRequest struct {
	Vectors map[string][]float32 `json:"vectors"`
	K       int                  `json:"k,omitempty"`
	NoCache bool                 `json:"no_cache,omitempty"`
}

type insertRequest struct {
	Vectors map[string][]float32   `json:"vectors,omitempty"`
	Objects []map[string][]float32 `json:"objects,omitempty"`
}

type insertResponse struct {
	IDs []int64 `json:"ids"`
}

func main() {
	var (
		addr       = flag.String("addr", "localhost:7700", "mustd host:port")
		conc       = flag.Int("c", 64, "closed-loop workers (concurrent requests)")
		duration   = flag.Duration("duration", 10*time.Second, "measurement duration")
		k          = flag.Int("k", 10, "results per search")
		prime      = flag.Int("prime", 0, "insert this many random objects and rebuild before measuring")
		writeRatio = flag.Float64("write-ratio", 0, "fraction of requests that are insert+delete pairs")
		noCache    = flag.Bool("no-cache", false, "send no_cache so every search exercises the engine")
		seed       = flag.Int64("seed", 1, "workload randomness seed")
		retries    = flag.Int("retries", 4, "retry a 429-shed request up to this many times, honoring Retry-After (0 = count every 429 as shed)")
		retryCap   = flag.Duration("retry-cap", 2*time.Second, "upper bound on a single retry backoff sleep")
	)
	flag.Parse()
	if err := run(*addr, *conc, *duration, *k, *prime, *writeRatio, *noCache, *seed, *retries, *retryCap); err != nil {
		fmt.Fprintf(os.Stderr, "mustload: %v\n", err)
		os.Exit(1)
	}
}

type client struct {
	base string
	hc   *http.Client
	// maxRetries bounds 429 retries per request; retryCap bounds each
	// backoff sleep; retried counts retry sleeps across all workers.
	maxRetries int
	retryCap   time.Duration
	retried    atomic.Int64
}

// do issues one request and reports the status code plus the server's
// Retry-After hint (zero when absent or unparseable).
func (c *client) do(path string, body, out any) (int, time.Duration, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, 0, err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	var retryAfter time.Duration
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s >= 0 {
		retryAfter = time.Duration(s) * time.Second
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, retryAfter, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, retryAfter, fmt.Errorf("%s: %d %s", path, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out != nil {
		return resp.StatusCode, retryAfter, json.Unmarshal(data, out)
	}
	return resp.StatusCode, retryAfter, nil
}

// post retries 429-shed requests with capped jittered backoff. The
// server's Retry-After hint (when present) replaces the exponential
// base, and every sleep is jittered to 50-100% of the target so a fleet
// of shed workers doesn't come back in lockstep; only a request still
// shed after maxRetries surfaces its 429 to the caller.
func (c *client) post(rng *rand.Rand, path string, body, out any) (int, error) {
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		code, retryAfter, err := c.do(path, body, out)
		if err == nil || code != http.StatusTooManyRequests || attempt >= c.maxRetries {
			return code, err
		}
		d := backoff
		if retryAfter > 0 {
			d = retryAfter
		}
		if d > c.retryCap {
			d = c.retryCap
		}
		time.Sleep(time.Duration(float64(d) * (0.5 + 0.5*rng.Float64())))
		c.retried.Add(1)
		backoff *= 2
	}
}

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func randObject(rng *rand.Rand, schema []modality) map[string][]float32 {
	o := make(map[string][]float32, len(schema))
	for _, m := range schema {
		o[m.Name] = randVec(rng, m.Dim)
	}
	return o
}

// latencies collects per-request durations across workers.
type latencies struct {
	mu sync.Mutex
	ns []int64
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	l.ns = append(l.ns, int64(d))
	l.mu.Unlock()
}

func (l *latencies) percentile(p float64) time.Duration {
	if len(l.ns) == 0 {
		return 0
	}
	i := int(p * float64(len(l.ns)-1))
	return time.Duration(l.ns[i])
}

// report sorts and prints one class's latency line (no-op when the
// class saw no successful requests).
func (l *latencies) report(class string) {
	if len(l.ns) == 0 {
		return
	}
	sort.Slice(l.ns, func(i, j int) bool { return l.ns[i] < l.ns[j] })
	fmt.Printf("%s latency p50 %v  p95 %v  p99 %v  max %v\n", class,
		l.percentile(0.50).Round(time.Microsecond),
		l.percentile(0.95).Round(time.Microsecond),
		l.percentile(0.99).Round(time.Microsecond),
		time.Duration(l.ns[len(l.ns)-1]).Round(time.Microsecond))
}

func run(addr string, conc int, duration time.Duration, k, prime int, writeRatio float64, noCache bool, seed int64, retries int, retryCap time.Duration) error {
	c := &client{
		base: "http://" + addr,
		hc: &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        conc * 2,
				MaxIdleConnsPerHost: conc * 2,
			},
		},
		maxRetries: retries,
		retryCap:   retryCap,
	}

	var st statsResponse
	resp, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return fmt.Errorf("is mustd running at %s? %w", addr, err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("parsing /v1/stats: %w", err)
	}
	if len(st.Schema) == 0 {
		return fmt.Errorf("daemon reports an empty schema")
	}
	scan := ""
	if st.Engine.KernelVariant != "" {
		scan = fmt.Sprintf(", kernel=%s", st.Engine.KernelVariant)
	}
	if st.Engine.QuantizedBytes > 0 {
		scan += fmt.Sprintf(", sq8=%.1fMB", float64(st.Engine.QuantizedBytes)/(1<<20))
	}
	if len(st.Shards) > 0 {
		fmt.Printf("target %s: schema %v, %d objects, built=%v, %d shards%s\n", addr, st.Schema, st.Objects, st.Built, len(st.Shards), scan)
	} else {
		fmt.Printf("target %s: schema %v, %d objects, built=%v%s\n", addr, st.Schema, st.Objects, st.Built, scan)
	}

	rng := rand.New(rand.NewSource(seed))
	if prime > 0 {
		fmt.Printf("priming %d objects...\n", prime)
		start := time.Now()
		const chunk = 500
		for done := 0; done < prime; {
			n := chunk
			if prime-done < n {
				n = prime - done
			}
			objs := make([]map[string][]float32, n)
			for i := range objs {
				objs[i] = randObject(rng, st.Schema)
			}
			if _, err := c.post(rng, "/v1/insert", insertRequest{Objects: objs}, nil); err != nil {
				return fmt.Errorf("prime insert: %w", err)
			}
			done += n
		}
		if _, err := c.post(rng, "/v1/rebuild", struct{}{}, nil); err != nil {
			return fmt.Errorf("prime rebuild: %w", err)
		}
		fmt.Printf("primed and built in %v\n", time.Since(start).Round(time.Millisecond))
	}

	// Pre-generate a query pool so workers don't contend on one RNG.
	const poolSize = 4096
	pool := make([]map[string][]float32, poolSize)
	for i := range pool {
		pool[i] = randObject(rng, st.Schema)
	}

	var (
		searches, writes, errs atomic.Int64
		shedReads, shedWrites  atomic.Int64
		lat, wlat              latencies
		wg                     sync.WaitGroup
	)
	deadline := time.Now().Add(duration)
	fmt.Printf("measuring: %d workers, %v, write-ratio %.2f, no_cache=%v\n", conc, duration, writeRatio, noCache)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				if writeRatio > 0 && wrng.Float64() < writeRatio {
					var ir insertResponse
					start := time.Now()
					if code, err := c.post(wrng, "/v1/insert", insertRequest{Vectors: randObject(wrng, st.Schema)}, &ir); err != nil {
						if code == http.StatusTooManyRequests {
							shedWrites.Add(1)
						} else {
							errs.Add(1)
						}
						continue
					}
					wlat.add(time.Since(start))
					start = time.Now()
					if code, err := c.post(wrng, "/v1/delete", map[string][]int64{"ids": ir.IDs}, nil); err != nil {
						if code == http.StatusTooManyRequests {
							shedWrites.Add(1)
						} else {
							errs.Add(1)
						}
						continue
					}
					wlat.add(time.Since(start))
					writes.Add(1)
					continue
				}
				req := searchRequest{Vectors: pool[wrng.Intn(poolSize)], K: k, NoCache: noCache}
				start := time.Now()
				code, err := c.post(wrng, "/v1/search", req, nil)
				if err != nil {
					if code == http.StatusTooManyRequests {
						shedReads.Add(1)
					} else {
						errs.Add(1)
					}
					continue
				}
				lat.add(time.Since(start))
				searches.Add(1)
			}
		}(w)
	}
	wg.Wait()

	total := searches.Load()
	fmt.Printf("\nsearches %d (%.0f/s)  writes %d  retries %d  shed(429) reads %d writes %d  errors %d\n",
		total, float64(total)/duration.Seconds(), writes.Load(), c.retried.Load(),
		shedReads.Load(), shedWrites.Load(), errs.Load())
	lat.report("read ")
	wlat.report("write")
	if errs.Load() > 0 {
		return fmt.Errorf("%d requests errored", errs.Load())
	}
	return nil
}
