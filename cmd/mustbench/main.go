// Command mustbench regenerates the tables and figures of the MUST paper
// (see DESIGN.md §4 for the experiment index). Examples:
//
//	mustbench -exp t3 -scale 1        # Tab. III accuracy on MIT-States
//	mustbench -exp f6 -scale 0.5      # Fig. 6 QPS-vs-recall panels
//	mustbench -exp all                # everything (slow)
//
// The -scale flag multiplies dataset sizes relative to the DESIGN.md
// defaults; absolute numbers change with scale but the comparative shapes
// do not.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"must/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (t3,t4,t5,t6,t8,t9,t10,t11,t12,t21,f5,f6,f7,f8,f9,f10a,f10b,f10c,f11,f13,f14,t19,weights,all)")
		scale = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = DESIGN.md defaults)")
		seed  = flag.Int64("seed", 7, "random seed namespace")
		beam  = flag.Int("beam", 0, "accuracy-evaluation beam width l (0 = default)")
		gamma = flag.Int("gamma", 0, "graph degree bound γ (0 = default 30)")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	opt := experiments.Options{Scale: *scale, Seed: *seed, Beam: *beam, Gamma: *gamma}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"t3", "t4", "t5", "t21", "t6", "f5", "f6", "t7", "f8", "t8", "t10",
			"f9", "f13", "t9", "f10a", "f10c", "f11", "t11", "t12", "f14", "t19", "weights"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := run(id, opt); err != nil {
			fmt.Fprintf(os.Stderr, "mustbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func run(id string, opt experiments.Options) error {
	switch id {
	case "t3":
		return accuracyTable("Tab. III: MIT-States", "mitstates", []int{1, 5, 10}, opt)
	case "t4":
		return accuracyTable("Tab. IV: CelebA", "celeba", []int{1, 5, 10}, opt)
	case "t5":
		return accuracyTable("Tab. V: Shopping (T-shirt)", "shopping", []int{1, 5, 10}, opt)
	case "t21":
		return accuracyTable("Tab. XXI: Shopping (Bottoms)", "shopping-bottoms", []int{1, 5, 10}, opt)
	case "t6":
		return accuracyTable("Tab. VI: MS-COCO", "mscoco", []int{10, 50, 100}, opt)
	case "f5":
		return caseStudy(opt)
	case "f6":
		return qpsRecall(opt)
	case "t7", "f7":
		return scaleSweep(opt)
	case "f8":
		return kSweep(opt)
	case "t8":
		return modalityCount(opt)
	case "t10":
		return singleModality(opt)
	case "t19":
		return singleModalityAppendix(opt)
	case "f9":
		return weightLearning(opt)
	case "f13":
		return negativeCount(opt)
	case "t9":
		return userWeights(opt)
	case "f10a", "f10b":
		return graphComparison(opt)
	case "f10c":
		return multiVectorOpt(opt)
	case "f11":
		return neighborAudit(opt)
	case "t11":
		return graphQuality(opt)
	case "t12":
		return beamSweep(opt)
	case "f14", "f15":
		return gammaSweep(opt)
	case "weights":
		return learnedWeights(opt)
	case "stats":
		return indexStats(opt)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
}

// indexStats is not a paper experiment: it audits the fused index built
// on ImageText (degree spread, components) using internal/graph.Stats.
func indexStats(opt experiments.Options) error {
	st, hist, err := experiments.RunIndexStats(opt)
	if err != nil {
		return err
	}
	fmt.Println("Fused index audit (ImageText)")
	fmt.Printf("  vertices=%d edges=%d avgDeg=%.1f degRange=[%d,%d] median=%d p99=%d\n",
		st.Vertices, st.Edges, st.AvgDegree, st.MinDegree, st.MaxDegree, st.MedianDegree, st.P99Degree)
	fmt.Printf("  isolated=%d reachable=%d components=%d\n", st.Isolated, st.ReachableFromSeed, st.Components)
	buckets := make([]int, 0, len(hist))
	for b := range hist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	fmt.Println("  degree histogram (bucket: count):")
	for _, b := range buckets {
		fmt.Printf("    %3d+: %d\n", b, hist[b])
	}
	return nil
}

func accuracyTable(title, table string, ks []int, opt experiments.Options) error {
	rows, err := experiments.RunAccuracyTableNamed(table, ks, opt)
	if err != nil {
		return err
	}
	fmt.Println(title)
	header := "Framework  Encoder"
	for _, k := range ks {
		header += fmt.Sprintf("  Recall@%d(1)", k)
	}
	header += "  SME  ω²(learned)"
	fmt.Println(header)
	fmt.Println(strings.Repeat("-", len(header)+8))
	for _, r := range rows {
		line := fmt.Sprintf("%-9s  %-24s", r.Framework, r.Encoder)
		for _, k := range ks {
			line += fmt.Sprintf("  %11.4f", r.Recall[k])
		}
		line += fmt.Sprintf("  %6.4f", r.SME)
		if r.Weights != nil {
			line += "  ["
			for i, w := range r.Weights {
				if i > 0 {
					line += " "
				}
				line += fmt.Sprintf("%.4f", w*w)
			}
			line += "]"
		}
		fmt.Println(line)
	}
	return nil
}

func caseStudy(opt experiments.Options) error {
	results, err := experiments.RunCaseStudy(0, 5, opt)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 5: case study — top-5 per framework on MIT-States query #0")
	fmt.Println("          (GT = ground truth; RefSim/AttrSim/CompSim are latent similarities)")
	for _, res := range results {
		fmt.Printf("%s:\n", res.Framework)
		for rank, e := range res.Entries {
			mark := "  "
			if e.IsGroundTruth {
				mark = "✔ "
			}
			fmt.Printf("  %d. %sobj#%-6d RefSim=%.2f AttrSim=%.2f CompSim=%.2f\n",
				rank+1, mark, e.ID, e.RefSim, e.AttrSim, e.ComposedSim)
		}
	}
	return nil
}

func qpsRecall(opt experiments.Options) error {
	for _, name := range []experiments.FeatureName{experiments.ImageText, experiments.AudioText, experiments.VideoText} {
		curves, err := experiments.RunQPSRecall(name, 10, opt)
		if err != nil {
			return err
		}
		fmt.Printf("Fig. 6: QPS vs Recall@10(10) on %s\n", name)
		printCurves(curves)
	}
	return nil
}

func printCurves(curves []experiments.Curve) {
	for _, c := range curves {
		fmt.Printf("  %s:\n", c.Name)
		for _, p := range c.Points {
			fmt.Printf("    l=%-5d recall=%.4f qps=%8.1f latency=%v\n", p.Param, p.Recall, p.QPS, p.Latency.Round(time.Microsecond))
		}
	}
}

func scaleSweep(opt experiments.Options) error {
	rows, err := experiments.RunScale(nil, 0.99, opt)
	if err != nil {
		return err
	}
	fmt.Println("Tab. VII + Fig. 7: data-volume sweep (MUST vs MUST-- response; MUST vs MR build/size)")
	fmt.Println("n        MUSTresp   BRUTEresp  reduction  MUSTbuild  MRbuild    MUSTsize   MRsize")
	for _, r := range rows {
		fmt.Printf("%-8d %-10v %-10v %8.1f%%  %-10v %-10v %-10d %d\n",
			r.N, r.MustResponse.Round(time.Millisecond), r.BruteResponse.Round(time.Millisecond),
			r.Reduction, r.MustBuild.Round(time.Millisecond), r.MRBuild.Round(time.Millisecond),
			r.MustSize, r.MRSize)
	}
	return nil
}

func kSweep(opt experiments.Options) error {
	out, err := experiments.RunKSweep([]int{1, 50, 100}, opt)
	if err != nil {
		return err
	}
	ks := make([]int, 0, len(out))
	for k := range out {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		fmt.Printf("Fig. 8: QPS vs Recall@%d(%d) on ImageText\n", k, k)
		printCurves(out[k])
	}
	return nil
}

func modalityCount(opt experiments.Options) error {
	out, err := experiments.RunModalityCount(opt)
	if err != nil {
		return err
	}
	fmt.Println("Tab. VIII: Recall@1(1) vs number of modalities on CelebA+")
	fmt.Println("m      MR       MUST")
	for m := 2; m <= 4; m++ {
		fmt.Printf("%d  %.4f   %.4f\n", m, out[m]["MR"], out[m]["MUST"])
	}
	return nil
}

func singleModality(opt experiments.Options) error {
	rows, err := experiments.RunSingleModality(opt)
	if err != nil {
		return err
	}
	fmt.Println("Tab. X: single query modality on MIT-States")
	fmt.Println("Modality   Encoder      Recall@1(1)  Recall@5(1)")
	for _, r := range rows {
		fmt.Printf("%-9s  %-12s %10.4f  %10.4f\n", r.Modality, r.Encoder, r.Recall[1], r.Recall[5])
	}
	return nil
}

func singleModalityAppendix(opt experiments.Options) error {
	rows, err := experiments.RunSingleModalityAppendix(opt)
	if err != nil {
		return err
	}
	fmt.Println("Tab. XIX/XX: single-modality accuracy across datasets")
	fmt.Println("Dataset         Modality   Encoder      Recall@1(1)  Recall@5(1)  Recall@10(1)")
	for _, r := range rows {
		fmt.Printf("%-14s  %-9s  %-12s %10.4f  %10.4f  %10.4f\n",
			r.Dataset, r.Modality, r.Encoder, r.Recall[1], r.Recall[5], r.Recall[10])
	}
	return nil
}

func weightLearning(opt experiments.Options) error {
	runs, err := experiments.RunWeightLearning(opt)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 9: weight learning, hard vs random negatives (ImageText)")
	printWeightRuns(runs)
	return nil
}

func negativeCount(opt experiments.Options) error {
	runs, err := experiments.RunNegativeCount(nil, opt)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 13: effect of |N-| in weight learning (ImageText)")
	printWeightRuns(runs)
	return nil
}

func printWeightRuns(runs []experiments.WeightLearningRun) {
	for _, run := range runs {
		last := run.Trace[len(run.Trace)-1]
		fmt.Printf("  %s: final loss=%.4f recall=%.4f ω=[", run.Label, last.Loss, last.Recall)
		for i, w := range run.Weights {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%.3f", w)
		}
		fmt.Println("]")
		for _, tr := range run.Trace {
			fmt.Printf("    epoch=%-4d loss=%.4f recall=%.4f\n", tr.Epoch, tr.Loss, tr.Recall)
		}
	}
}

func userWeights(opt experiments.Options) error {
	rows, err := experiments.RunUserWeights(nil, opt)
	if err != nil {
		return err
	}
	fmt.Println("Tab. IX: user-defined weights on MIT-States")
	fmt.Println("ω0²   ω1²   IP(q0,r0)  IP(q1,r1)")
	for _, r := range rows {
		fmt.Printf("%.1f   %.1f   %8.4f  %8.4f\n", r.W0Sq, r.W1Sq, r.IP0, r.IP1)
	}
	return nil
}

func graphComparison(opt experiments.Options) error {
	rows, err := experiments.RunGraphComparison(opt)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 10(a)(b): proximity-graph comparison on ImageText")
	for _, r := range rows {
		fmt.Printf("  %-7s build=%-10v size=%d bytes\n", r.Name, r.BuildTime.Round(time.Millisecond), r.SizeBytes)
		for _, p := range r.Curve {
			fmt.Printf("    l=%-5d recall=%.4f qps=%8.1f\n", p.Param, p.Recall, p.QPS)
		}
	}
	return nil
}

func multiVectorOpt(opt experiments.Options) error {
	rows, err := experiments.RunMultiVectorOptimization(opt)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 10(c): multi-vector computation optimization on ImageText")
	fmt.Println("l      recall(on) recall(off)  qps(on)   qps(off)  fullEvals  partialSkips")
	for _, r := range rows {
		fmt.Printf("%-5d  %9.4f  %9.4f  %8.1f  %8.1f  %9d  %9d\n",
			r.Beam, r.RecallOn, r.RecallOff, r.QPSOn, r.QPSOff, r.FullEvals, r.PartSkips)
	}
	return nil
}

func neighborAudit(opt experiments.Options) error {
	rows, err := experiments.RunNeighborAudit(opt)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 11: neighbor similarity audit on CelebA")
	fmt.Println("Index           meanIP(mod0)  meanIP(mod1)  meanJoint")
	for _, r := range rows {
		fmt.Printf("%-14s  %11.4f  %11.4f  %9.4f\n", r.Index, r.MeanIP0, r.MeanIP1, r.MeanJoint)
	}
	return nil
}

func graphQuality(opt experiments.Options) error {
	rows, err := experiments.RunGraphQuality(nil, opt)
	if err != nil {
		return err
	}
	fmt.Println("Tab. XI: NNDescent graph quality vs iterations ε")
	fmt.Println("Dataset     ε=1      ε=2      ε=3")
	for _, r := range rows {
		fmt.Printf("%-10s  %.4f   %.4f   %.4f\n", r.Dataset, r.Quality[1], r.Quality[2], r.Quality[3])
	}
	return nil
}

func beamSweep(opt experiments.Options) error {
	rows, err := experiments.RunBeamSweep(nil, opt)
	if err != nil {
		return err
	}
	fmt.Println("Tab. XII: beam size l sweep on ImageText")
	fmt.Println("l      Recall@10(10)  latency")
	for _, r := range rows {
		fmt.Printf("%-5d  %12.4f  %v\n", r.L, r.Recall, r.Latency.Round(time.Microsecond))
	}
	return nil
}

func gammaSweep(opt experiments.Options) error {
	rows, err := experiments.RunGammaSweep(nil, 0, opt)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 14/15: γ sweep on ImageText")
	fmt.Println("γ     build       size(bytes)  recall    latency")
	for _, r := range rows {
		fmt.Printf("%-4d  %-10v  %-11d  %.4f    %v\n",
			r.Gamma, r.BuildTime.Round(time.Millisecond), r.SizeBytes, r.Recall, r.Latency.Round(time.Microsecond))
	}
	return nil
}

func learnedWeights(opt experiments.Options) error {
	rows, err := experiments.RunLearnedWeights(opt)
	if err != nil {
		return err
	}
	fmt.Println("Tab. XVIII: learned weights on feature datasets")
	fmt.Println("Dataset     Encoder             ω0²      ω1²")
	for _, r := range rows {
		fmt.Printf("%-10s  %-18s  %.4f   %.4f\n", r.Dataset, r.Encoder, r.WSq[0], r.WSq[1])
	}
	return nil
}
