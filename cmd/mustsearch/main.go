// Command mustsearch demonstrates the full MUST pipeline on a dataset
// file produced by mustgen (or a freshly generated one): it learns
// modality weights, builds the fused index, and answers the dataset's own
// query workload, printing per-query results against ground truth.
//
//	mustsearch -data celeba.bin -queries 5
//	mustsearch -queries 3              # generates a small CelebA-like set
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"must/internal/dataset"
	"must/internal/experiments"
	"must/internal/index"
	"must/internal/metrics"
	"must/internal/search"
)

func main() {
	var (
		data    = flag.String("data", "", "dataset file from mustgen (empty = generate a demo set)")
		queries = flag.Int("queries", 5, "number of workload queries to run")
		k       = flag.Int("k", 5, "results per query")
		beam    = flag.Int("beam", 200, "search beam width l")
		gamma   = flag.Int("gamma", 30, "graph degree bound γ")
	)
	flag.Parse()
	if err := run(*data, *queries, *k, *beam, *gamma); err != nil {
		fmt.Fprintf(os.Stderr, "mustsearch: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, nq, k, beam, gamma int) error {
	var enc *dataset.Encoded
	if path == "" {
		fmt.Println("no -data given; generating a small CelebA-like demo dataset...")
		raw, err := dataset.GenerateSemantic(dataset.CelebASim(0.2))
		if err != nil {
			return err
		}
		e, err := experiments.EncodeDefault(raw, 7)
		if err != nil {
			return err
		}
		enc = e
	} else {
		e, err := dataset.LoadEncoded(path)
		if err != nil {
			return err
		}
		enc = e
	}
	fmt.Printf("dataset %s (%s): %d objects, %d queries, %d modalities\n",
		enc.Name, enc.EncoderLabel, len(enc.Objects), len(enc.Queries), enc.M)

	w, err := experiments.LearnWeightsAuto(enc, experiments.Options{Seed: 7})
	if err != nil {
		return err
	}
	fmt.Print("learned weights ω² = [")
	for i, x := range w {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("%.4f", x*x)
	}
	fmt.Println("]")

	start := time.Now()
	opt := experiments.Options{Gamma: gamma, Seed: 7}
	fused, err := index.BuildFused(enc.Objects, w, opt.Pipeline("MUST"))
	if err != nil {
		return err
	}
	fmt.Printf("fused index built in %v (%d edges, %.1f avg degree)\n",
		time.Since(start).Round(time.Millisecond), fused.Graph.NumEdges(), fused.Graph.AvgDegree())

	s := fused.NewSearcher()
	if nq > len(enc.Queries) {
		nq = len(enc.Queries)
	}
	var recall float64
	for qi := 0; qi < nq; qi++ {
		q := enc.Queries[qi]
		t0 := time.Now()
		res, stats, err := s.Search(q.Vectors, k, beam)
		if err != nil {
			return err
		}
		lat := time.Since(t0)
		fmt.Printf("query #%d (%v, %d hops, %d evals):\n", qi, lat.Round(time.Microsecond), stats.Hops, stats.FullEvals)
		ids := search.IDs(res)
		for rank, r := range res {
			mark := " "
			for _, gt := range q.GroundTruth {
				if gt == r.ID {
					mark = "*"
				}
			}
			fmt.Printf("  %d.%s obj#%-7d joint-sim=%.4f\n", rank+1, mark, r.ID, r.IP)
		}
		if len(q.GroundTruth) > 0 {
			recall += metrics.Recall(ids, q.GroundTruth)
		}
	}
	fmt.Printf("mean Recall@%d = %.4f over %d queries (* marks ground truth)\n", k, recall/float64(nq), nq)
	return nil
}
