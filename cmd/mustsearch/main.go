// Command mustsearch demonstrates the full MUST pipeline on a dataset
// file produced by mustgen (or a freshly generated one): it learns
// modality weights, builds the fused index through the Engine API, and
// answers the dataset's own query workload with typed queries — printing
// per-query results, per-modality similarity breakdowns, and recall
// against ground truth. -timeout bounds each query via context deadline.
//
//	mustsearch -data celeba.bin -queries 5
//	mustsearch -queries 3              # generates a small CelebA-like set
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"must"
	"must/internal/dataset"
	"must/internal/experiments"
	"must/internal/metrics"
)

func main() {
	var (
		data    = flag.String("data", "", "dataset file from mustgen (empty = generate a demo set)")
		queries = flag.Int("queries", 5, "number of workload queries to run")
		k       = flag.Int("k", 5, "results per query")
		beam    = flag.Int("beam", 200, "search beam width l")
		gamma   = flag.Int("gamma", 30, "graph degree bound γ")
		timeout = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
	)
	flag.Parse()
	if err := run(*data, *queries, *k, *beam, *gamma, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "mustsearch: %v\n", err)
		os.Exit(1)
	}
}

// modalityNames labels the dataset's positional modalities for the
// Engine schema: modality 0 is the target, the rest are auxiliary.
func modalityNames(m int) []string {
	names := make([]string, m)
	names[0] = "target"
	for i := 1; i < m; i++ {
		names[i] = fmt.Sprintf("aux%d", i)
	}
	return names
}

func run(path string, nq, k, beam, gamma int, timeout time.Duration) error {
	var enc *dataset.Encoded
	if path == "" {
		fmt.Println("no -data given; generating a small CelebA-like demo dataset...")
		raw, err := dataset.GenerateSemantic(dataset.CelebASim(0.2))
		if err != nil {
			return err
		}
		e, err := experiments.EncodeDefault(raw, 7)
		if err != nil {
			return err
		}
		enc = e
	} else {
		e, err := dataset.LoadEncoded(path)
		if err != nil {
			return err
		}
		enc = e
	}
	names := modalityNames(enc.M)
	fmt.Printf("dataset %s (%s): %d objects, %d queries, modalities %v\n",
		enc.Name, enc.EncoderLabel, len(enc.Objects), len(enc.Queries), names)

	w, err := experiments.LearnWeightsAuto(enc, experiments.Options{Seed: 7})
	if err != nil {
		return err
	}
	fmt.Print("learned weights ω² = [")
	for i, x := range w {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("%.4f", x*x)
	}
	fmt.Println("]")

	schema := make(must.Schema, enc.M)
	for i := range schema {
		schema[i] = must.Modality{Name: names[i], Dim: enc.Dims[i]}
	}
	engine, err := must.NewEngine(schema, must.EngineOptions{
		Weights: must.Weights(w),
		Build:   must.BuildOptions{Gamma: gamma, Seed: 7},
	})
	if err != nil {
		return err
	}
	for _, o := range enc.Objects {
		if _, err := engine.InsertObject(must.Object(o)); err != nil {
			return err
		}
	}
	start := time.Now()
	if err := engine.Build(); err != nil {
		return err
	}
	st, err := engine.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("fused index built in %v (%d edges, %.1f avg degree)\n",
		time.Since(start).Round(time.Millisecond), st.Edges, st.AvgDegree)

	if nq > len(enc.Queries) {
		nq = len(enc.Queries)
	}
	var recall float64
	for qi := 0; qi < nq; qi++ {
		q := enc.Queries[qi]
		vectors := make(must.NamedVectors, enc.M)
		for i, v := range q.Vectors {
			vectors[names[i]] = v
		}
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, timeout)
		}
		resp, err := engine.Search(ctx, must.Query{Vectors: vectors, K: k, L: beam})
		cancel()
		if err != nil {
			return err
		}
		fmt.Printf("query #%d (%v, %d hops, %d evals):\n",
			qi, resp.Latency.Round(time.Microsecond), resp.Stats.Hops, resp.Stats.FullEvals)
		ids := make([]int, len(resp.Matches))
		for rank, m := range resp.Matches {
			ids[rank] = int(m.ID)
			mark := " "
			for _, gt := range q.GroundTruth {
				if int64(gt) == m.ID {
					mark = "*"
				}
			}
			fmt.Printf("  %d.%s obj#%-7d joint-sim=%.4f  [", rank+1, mark, m.ID, m.Similarity)
			for i, name := range names {
				if i > 0 {
					fmt.Print(" ")
				}
				fmt.Printf("%s=%.4f", name, m.ByModality[name])
			}
			fmt.Println("]")
		}
		if len(q.GroundTruth) > 0 {
			recall += metrics.Recall(ids, q.GroundTruth)
		}
	}
	fmt.Printf("mean Recall@%d = %.4f over %d queries (* marks ground truth)\n", k, recall/float64(nq), nq)
	return nil
}
