// Command mustd is the MUST serving daemon: an HTTP/JSON front end over
// a must.Service (one Engine, or a ShardedEngine with -shards) with
// dynamic request batching, an epoch-invalidated result cache, admission
// control, Prometheus metrics, and a graceful SIGTERM drain. All serving
// logic lives in internal/server; this file is flags, lifecycle, and
// snapshots.
//
//	mustd -schema image:512,text:384            # start empty, insert over HTTP
//	mustd -schema image:512,text:384 -shards 8  # sharded: parallel build, fan-out search
//	mustd -load engine.bin -snapshot engine.bin # restore, snapshot on shutdown
//	mustd -schema image:512,text:384 -wal ./wal # log every mutation, replay on restart
//
// -load sniffs the snapshot magic, so single and sharded snapshots both
// restore with the same flag (a sharded snapshot restores a sharded
// engine; -shards is ignored on restore).
//
// Endpoints: POST /v1/search /v1/insert /v1/delete /v1/rebuild,
// GET /v1/stats /healthz /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"must"
	"must/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":7700", "listen address")
		schemaSpec = flag.String("schema", "", "engine schema as name:dim,name:dim (modality 0 is the target); required unless -load is given")
		load       = flag.String("load", "", "restore the engine from this snapshot file at startup")
		snapshot   = flag.String("snapshot", "", "write engine snapshots to this file (atomic rename; always written on shutdown)")
		snapEvery  = flag.Duration("snapshot-interval", 0, "also snapshot periodically at this interval (0 = shutdown only)")

		gamma = flag.Int("gamma", 30, "graph degree bound γ for builds of a fresh engine")
		seed  = flag.Int64("seed", 0, "construction seed for builds of a fresh engine")

		shards = flag.Int("shards", 1, "partition a fresh engine into this many shards (parallel build/rebuild, fan-out search); 1 = single engine")

		sq8    = flag.Bool("sq8", false, "serve beam search over an int8 (SQ8) shadow of the vectors with exact float32 re-rank; 4x less scan bandwidth at a small recall cost")
		rerank = flag.Int("rerank", 0, "exact re-rank depth of the -sq8 path: top candidates re-scored in float32 (0 = 4x the request's k)")

		walDir        = flag.String("wal", "", "write-ahead log directory: every mutation is logged before it is acked and replayed on restart on top of the newest -load snapshot")
		fsyncPolicy   = flag.String("fsync", "always", "WAL durability: always (fsync per record), interval (background fsync), off (OS page cache only)")
		fsyncInterval = flag.Duration("fsync-interval", 50*time.Millisecond, "background fsync period under -fsync interval")

		maxBatch     = flag.Int("max-batch", 64, "largest coalesced engine batch")
		batchDelay   = flag.Duration("batch-delay", time.Millisecond, "longest a search waits for batch companions")
		batchWorkers = flag.Int("batch-workers", 0, "engine workers per batch (0 = GOMAXPROCS)")
		noBatch      = flag.Bool("no-batch", false, "serve each search with a direct engine call (per-request dispatch)")

		cacheSize    = flag.Int("cache", 4096, "result-cache capacity in responses (negative disables)")
		maxInFlight  = flag.Int("max-in-flight", 256, "admitted search requests before shedding 429s")
		maxInFlightW = flag.Int("max-in-flight-writes", 64, "admitted write requests (insert/delete/rebuild) before shedding 429s; a separate budget so a write flood never costs search admission")
		defTimeout   = flag.Duration("default-timeout", 2*time.Second, "search deadline when the request has no timeout_ms")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Second, "clamp for request-supplied timeout_ms")

		maintOn        = flag.Bool("maint", false, "run background maintenance: paced rebuilds (one shard at a time) when overlay or tombstone ratios pass their watermarks, and automatic quarantined-shard recovery")
		maintInterval  = flag.Duration("maint-interval", time.Second, "maintenance sampling interval")
		maintGap       = flag.Duration("maint-gap", 10*time.Second, "minimum time between two maintenance rebuilds")
		maintOverlay   = flag.Float64("maint-overlay", 0.20, "overlay ratio watermark that triggers a maintenance rebuild")
		maintTombstone = flag.Float64("maint-tombstone", 0.20, "tombstone ratio watermark that triggers a maintenance rebuild")

		maxPendingWrites = flag.Int("max-pending-writes", 0, "engine write budget: concurrent in-flight engine writes before shedding ErrOverloaded (0 = no engine-level gate)")
		debtWatermark    = flag.Float64("debt-watermark", 0, "shed writes while maintenance debt (worst overlay/tombstone ratio) is at or past this (0 = disabled)")
	)
	flag.Parse()
	if err := run(*addr, *schemaSpec, *load, *snapshot, *snapEvery, *gamma, *seed, *shards, *sq8, *rerank, *walDir, *fsyncPolicy, *fsyncInterval,
		maintConfig{
			enabled:            *maintOn,
			interval:           *maintInterval,
			gap:                *maintGap,
			overlayWatermark:   *maintOverlay,
			tombstoneWatermark: *maintTombstone,
		},
		must.AdmissionOptions{MaxPendingWrites: *maxPendingWrites, DebtWatermark: *debtWatermark},
		server.Config{
			MaxBatch:          *maxBatch,
			BatchDelay:        *batchDelay,
			BatchWorkers:      *batchWorkers,
			DisableBatching:   *noBatch,
			CacheSize:         *cacheSize,
			MaxInFlight:       *maxInFlight,
			MaxInFlightWrites: *maxInFlightW,
			DefaultTimeout:    *defTimeout,
			MaxTimeout:        *maxTimeout,
		}); err != nil {
		fmt.Fprintf(os.Stderr, "mustd: %v\n", err)
		os.Exit(1)
	}
}

// parseSchema turns "image:512,text:384" into a must.Schema.
func parseSchema(spec string) (must.Schema, error) {
	if spec == "" {
		return nil, errors.New("-schema is required when starting without -load (e.g. -schema image:512,text:384)")
	}
	var sc must.Schema
	for _, part := range strings.Split(spec, ",") {
		name, dimStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("schema entry %q is not name:dim", part)
		}
		dim, err := strconv.Atoi(dimStr)
		if err != nil || dim <= 0 {
			return nil, fmt.Errorf("schema entry %q has invalid dim", part)
		}
		sc = append(sc, must.Modality{Name: name, Dim: dim})
	}
	return sc, sc.Validate()
}

func openEngine(load, schemaSpec string, gamma int, seed int64, shards int) (must.Service, error) {
	if load != "" {
		start := time.Now()
		eng, err := must.LoadService(load)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", load, err)
		}
		kind := "engine"
		if se, ok := eng.(*must.ShardedEngine); ok {
			kind = fmt.Sprintf("%d-shard engine", se.ShardCount())
		}
		log.Printf("restored %s with %d objects from %s in %v", kind, eng.Len(), load, time.Since(start).Round(time.Millisecond))
		return eng, nil
	}
	sc, err := parseSchema(schemaSpec)
	if err != nil {
		return nil, err
	}
	opts := must.EngineOptions{
		Build: must.BuildOptions{Gamma: gamma, Seed: seed},
	}
	if shards > 1 {
		return must.NewShardedEngine(sc, shards, opts)
	}
	return must.NewEngine(sc, opts)
}

// saveSnapshot writes the engine to path durably: temp file, fsync the
// data, atomic rename, fsync the directory — a crash at any point leaves
// either the old snapshot or the new one, never a torn file that only
// reached the page cache. With a WAL attached the snapshot doubles as a
// checkpoint: the log is truncated once the snapshot is on disk.
func saveSnapshot(eng must.Service, durable *must.DurableService, path string) error {
	if durable != nil {
		return durable.Checkpoint(path)
	}
	return must.WriteSnapshot(eng, path)
}

// maintConfig carries the maintenance flags into run.
type maintConfig struct {
	enabled            bool
	interval           time.Duration
	gap                time.Duration
	overlayWatermark   float64
	tombstoneWatermark float64
}

func run(addr, schemaSpec, load, snapshot string, snapEvery time.Duration, gamma int, seed int64, shards int, sq8 bool, rerank int, walDir, fsyncPolicy string, fsyncInterval time.Duration, mc maintConfig, adm must.AdmissionOptions, cfg server.Config) error {
	eng, err := openEngine(load, schemaSpec, gamma, seed, shards)
	if err != nil {
		return err
	}
	var durable *must.DurableService
	if walDir != "" {
		start := time.Now()
		ds, replayed, err := must.OpenDurable(eng, walDir, must.DurableOptions{
			Fsync:         fsyncPolicy,
			FsyncInterval: fsyncInterval,
		})
		if err != nil {
			return fmt.Errorf("opening wal %s: %w", walDir, err)
		}
		durable = ds
		eng = ds
		log.Printf("wal open at %s (fsync=%s): replayed %d records in %v, %d objects",
			walDir, fsyncPolicy, replayed, time.Since(start).Round(time.Millisecond), eng.Len())
	}
	// A v5 snapshot restores already quantized; -sq8 additionally covers
	// fresh engines and (re)pins the re-rank depth, which is a serving
	// setting rather than part of the snapshot.
	if sq8 {
		if err := eng.EnableQuantization(rerank); err != nil {
			return fmt.Errorf("enabling sq8 quantization: %w", err)
		}
		log.Printf("sq8 quantization enabled (rerank depth %d; 0 = 4x k)", rerank)
	}
	// Admission is configured only now, after OpenDurable: WAL replay
	// re-applies already-acked writes through the same write path, and
	// shedding one would silently drop durable data.
	if adm != (must.AdmissionOptions{}) {
		if err := eng.SetAdmission(adm); err != nil {
			return fmt.Errorf("configuring admission: %w", err)
		}
		log.Printf("write admission on (max pending %d, debt watermark %.2f)", adm.MaxPendingWrites, adm.DebtWatermark)
		if adm.DebtWatermark > 0 && !mc.enabled {
			log.Printf("warning: -debt-watermark %.2f is set but -maint is off: once maintenance debt crosses the watermark, writes are shed with 429 indefinitely — nothing reduces debt except a rebuild; enable -maint or POST /v1/rebuild manually", adm.DebtWatermark)
		}
	}
	srv := server.New(eng, cfg)

	// maintGuard serializes maintenance rebuilds with snapshots so a
	// snapshot never captures a shard mid-compaction (and a compaction
	// never starts while a snapshot is streaming the engine).
	var maintGuard sync.Mutex
	var maintainer *must.Maintainer
	if mc.enabled {
		maintainer = must.StartMaintenance(eng, must.MaintenanceOptions{
			Interval:           mc.interval,
			MinRebuildGap:      mc.gap,
			OverlayWatermark:   mc.overlayWatermark,
			TombstoneWatermark: mc.tombstoneWatermark,
			Guard:              &maintGuard,
			Logf:               log.Printf,
		})
		srv.AttachMaintainer(maintainer)
		log.Printf("maintenance on (interval %v, gap %v, overlay>=%.2f, tombstone>=%.2f)",
			mc.interval, mc.gap, mc.overlayWatermark, mc.tombstoneWatermark)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	names := make([]string, 0, len(eng.Schema()))
	for _, m := range eng.Schema() {
		names = append(names, fmt.Sprintf("%s:%d", m.Name, m.Dim))
	}
	log.Printf("mustd listening on %s (schema %s, %d objects, batching=%v)",
		ln.Addr(), strings.Join(names, ","), eng.Len(), !cfg.DisableBatching)

	// Periodic snapshots run alongside serving; Engine.SaveTo holds only
	// a read lock, so searches keep flowing during a snapshot.
	snapStop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		if snapshot == "" || snapEvery <= 0 {
			return
		}
		t := time.NewTicker(snapEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				maintGuard.Lock()
				err := saveSnapshot(eng, durable, snapshot)
				maintGuard.Unlock()
				if err != nil {
					log.Printf("snapshot: %v", err)
				} else {
					log.Printf("snapshot written to %s (%d objects)", snapshot, eng.Len())
				}
			case <-snapStop:
				return
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v, draining", s)
	case err := <-serveErr:
		close(snapStop)
		<-snapDone
		return err
	}

	// Graceful drain: stop advertising health, refuse new API requests,
	// let admitted ones finish, then stop the batcher and snapshot.
	srv.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
	close(snapStop)
	<-snapDone
	if maintainer != nil {
		// Stop maintenance before the final snapshot so no rebuild is
		// mid-flight while the engine streams to disk.
		maintainer.Close()
	}
	if snapshot != "" {
		if err := saveSnapshot(eng, durable, snapshot); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		log.Printf("final snapshot written to %s (%d objects)", snapshot, eng.Len())
	}
	if durable != nil {
		if err := durable.Close(); err != nil {
			return fmt.Errorf("closing wal: %w", err)
		}
	}
	log.Printf("mustd drained cleanly")
	return nil
}
