// Command mustgen generates encoded multimodal datasets in the repository
// binary format (internal/dataset), or inspects existing files.
//
//	mustgen -dataset celeba -scale 0.5 -out celeba.bin
//	mustgen -dataset imagetext -n 50000 -out it50k.bin
//	mustgen -inspect it50k.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"must/internal/dataset"
	"must/internal/encoder"
)

func main() {
	var (
		name    = flag.String("dataset", "", "dataset: celeba|mitstates|shopping|shopping-bottoms|mscoco|celebaplus|imagetext|audiotext|videotext")
		scale   = flag.Float64("scale", 1.0, "scale factor for semantic datasets")
		n       = flag.Int("n", 20000, "object count for feature datasets")
		out     = flag.String("out", "", "output path")
		seed    = flag.Int64("seed", 7, "random seed")
		inspect = flag.String("inspect", "", "inspect an existing dataset file instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		if err := runInspect(*inspect); err != nil {
			fmt.Fprintf(os.Stderr, "mustgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *name == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := runGenerate(*name, *scale, *n, *seed, *out); err != nil {
		fmt.Fprintf(os.Stderr, "mustgen: %v\n", err)
		os.Exit(1)
	}
}

func runInspect(path string) error {
	enc, err := dataset.LoadEncoded(path)
	if err != nil {
		return err
	}
	fmt.Printf("name:     %s\n", enc.Name)
	fmt.Printf("encoders: %s\n", enc.EncoderLabel)
	fmt.Printf("modality: %d (dims %v)\n", enc.M, enc.Dims)
	fmt.Printf("objects:  %d\n", len(enc.Objects))
	fmt.Printf("queries:  %d\n", len(enc.Queries))
	withGT := 0
	for _, q := range enc.Queries {
		if len(q.GroundTruth) > 0 {
			withGT++
		}
	}
	fmt.Printf("queries with ground truth: %d\n", withGT)
	return nil
}

func runGenerate(name string, scale float64, n int, seed int64, out string) error {
	var (
		raw *dataset.Raw
		err error
	)
	semantic := func(cfg dataset.SemanticConfig) {
		raw, err = dataset.GenerateSemantic(cfg)
	}
	feature := func(cfg dataset.FeatureConfig) {
		raw, err = dataset.GenerateFeature(cfg)
	}
	switch name {
	case "celeba":
		semantic(dataset.CelebASim(scale))
	case "mitstates":
		semantic(dataset.MITStatesSim(scale))
	case "shopping":
		semantic(dataset.ShoppingSim(scale))
	case "shopping-bottoms":
		semantic(dataset.ShoppingBottomsSim(scale))
	case "mscoco":
		semantic(dataset.MSCOCOSim(scale))
	case "celebaplus":
		semantic(dataset.CelebAPlusSim(scale))
	case "imagetext":
		feature(dataset.ImageTextN(n, seed))
	case "audiotext":
		feature(dataset.AudioTextN(n, seed))
	case "videotext":
		feature(dataset.VideoTextN(n, seed))
	default:
		return fmt.Errorf("unknown dataset %q", name)
	}
	if err != nil {
		return err
	}
	enc, err := dataset.Encode(raw, defaultEncoders(raw, seed))
	if err != nil {
		return err
	}
	if err := dataset.SaveEncoded(out, enc); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d objects, %d queries, %d modalities (%s)\n",
		out, len(enc.Objects), len(enc.Queries), enc.M, enc.EncoderLabel)
	return nil
}

// defaultEncoders picks a sensible encoder set for the dataset layout:
// content → ResNet50, attribute → ordinal Encoding, extra content
// modalities → ResNet variants.
func defaultEncoders(raw *dataset.Raw, seed int64) dataset.EncoderSet {
	set := dataset.EncoderSet{Unimodal: make([]encoder.Encoder, 0, raw.M)}
	set.Unimodal = append(set.Unimodal,
		encoder.NewResNet50(raw.ContentDim, seed),
		encoder.NewOrdinal(raw.AttrDim, seed),
	)
	for i := 2; i < raw.M; i++ {
		if i%2 == 0 {
			set.Unimodal = append(set.Unimodal, encoder.NewResNet17(raw.ContentDim, seed^int64(i)))
		} else {
			set.Unimodal = append(set.Unimodal, encoder.NewResNet50(raw.ContentDim, seed^int64(i)))
		}
	}
	return set
}
