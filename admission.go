package must

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// ErrOverloaded is returned by Insert/InsertObject/Delete when write
// admission control sheds the request: either the in-flight write
// budget is exhausted or the engine's maintenance debt (overlay or
// tombstone ratio) is past the shedding watermark. Callers should back
// off and retry; serving layers map it to 429 + Retry-After. Reads are
// never shed — only the write path carries this error.
var ErrOverloaded = errors.New("must: overloaded, write shed by admission control")

// AdmissionOptions bounds the write path; see SetAdmission. The zero
// value disables both gates.
type AdmissionOptions struct {
	// MaxPendingWrites caps concurrently admitted writes (in flight or
	// queued on the engine lock). Writes past the cap fail fast with
	// ErrOverloaded instead of piling onto the lock. 0 = unlimited.
	MaxPendingWrites int
	// DebtWatermark sheds all writes while the engine's maintenance
	// debt — max(overlay ratio, tombstone ratio) — is at or past this
	// value, giving the background maintenance loop room to catch up.
	// Set it above the maintenance rebuild watermarks so shedding only
	// starts when maintenance is demonstrably behind. 0 = disabled.
	DebtWatermark float64
}

func (o AdmissionOptions) validate() error {
	if o.MaxPendingWrites < 0 {
		return fmt.Errorf("must: negative MaxPendingWrites %d", o.MaxPendingWrites)
	}
	if o.DebtWatermark < 0 || math.IsNaN(o.DebtWatermark) {
		return fmt.Errorf("must: invalid DebtWatermark %v", o.DebtWatermark)
	}
	return nil
}

// admission is the engine-side write gate shared by Engine and
// ShardedEngine. All state is atomic: the gate sits in front of the
// engine lock precisely so shed writes never touch it.
type admission struct {
	opts    atomic.Pointer[AdmissionOptions]
	pending atomic.Int64  // writes admitted and not yet completed
	shed    atomic.Uint64 // writes refused with ErrOverloaded
	debt    atomic.Uint64 // float64 bits of the cached debt ratio
}

// configure installs new options; nil-safe validation done by callers'
// SetAdmission wrappers.
func (a *admission) configure(o AdmissionOptions) error {
	if err := o.validate(); err != nil {
		return err
	}
	a.opts.Store(&o)
	return nil
}

// setDebt caches the current maintenance-debt ratio; engines refresh it
// under their write lock after every mutation, so the admit fast path
// only loads one atomic.
func (a *admission) setDebt(r float64) {
	a.debt.Store(math.Float64bits(r))
}

func (a *admission) debtRatio() float64 {
	return math.Float64frombits(a.debt.Load())
}

// admit gates one write against the given debt reading. On success it
// returns a release func the caller must run when the write completes
// (success or failure); on refusal it returns ErrOverloaded.
func (a *admission) admit(debt float64) (func(), error) {
	o := a.opts.Load()
	if o == nil {
		return func() {}, nil
	}
	if o.DebtWatermark > 0 && debt >= o.DebtWatermark {
		a.shed.Add(1)
		return nil, fmt.Errorf("%w (maintenance debt %.2f ≥ watermark %.2f)", ErrOverloaded, debt, o.DebtWatermark)
	}
	if o.MaxPendingWrites > 0 {
		if a.pending.Add(1) > int64(o.MaxPendingWrites) {
			a.pending.Add(-1)
			a.shed.Add(1)
			return nil, fmt.Errorf("%w (%d writes already in flight)", ErrOverloaded, o.MaxPendingWrites)
		}
		return func() { a.pending.Add(-1) }, nil
	}
	return func() {}, nil
}

// writesShed returns how many writes admission control refused.
func (a *admission) writesShed() uint64 { return a.shed.Load() }
