package must

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func perturb(rng *rand.Rand, v []float32, eps float64) []float32 {
	out := make([]float32, len(v))
	for i := range v {
		out[i] = v[i] + float32(rng.NormFloat64()*eps)
	}
	return out
}

// buildCorpus populates a 2-modality collection with planted query/answer
// pairs followed by random background objects.
func buildCorpus(t *testing.T, n, nq int, seed int64) (*Collection, []Object, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := NewCollection(24, 12)
	var queries []Object
	var truths []int
	for i := 0; i < nq; i++ {
		content := randVec(rng, 24)
		attr := randVec(rng, 12)
		id, err := c.Add(Object{perturb(rng, content, 0.05), perturb(rng, attr, 0.05)})
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, Object{perturb(rng, content, 0.05), perturb(rng, attr, 0.05)})
		truths = append(truths, id)
	}
	for c.Len() < n {
		if _, err := c.Add(Object{randVec(rng, 24), randVec(rng, 12)}); err != nil {
			t.Fatal(err)
		}
	}
	return c, queries, truths
}

func TestCollectionAddValidation(t *testing.T) {
	// NewCollection does not validate dims; the first Add must reject a
	// degenerate layout with an error, not a store-constructor panic.
	bad := NewCollection(8, 0)
	if _, err := bad.Add(Object{make([]float32, 8), nil}); err == nil {
		t.Error("zero-dim modality did not error")
	}
	c := NewCollection(4, 2)
	if _, err := c.Add(Object{{1, 0, 0, 0}}); err == nil {
		t.Error("wrong modality count did not error")
	}
	if _, err := c.Add(Object{{1, 0, 0}, {1, 0}}); err == nil {
		t.Error("wrong dim did not error")
	}
	id, err := c.Add(Object{{3, 4, 0, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || c.Len() != 1 {
		t.Fatalf("id=%d len=%d", id, c.Len())
	}
	// Stored vectors are normalized copies.
	o, err := c.Object(0)
	if err != nil {
		t.Fatal(err)
	}
	if o[0][0] != 0.6 || o[0][1] != 0.8 {
		t.Errorf("stored vector not normalized: %v", o[0])
	}
	if _, err := c.Object(5); err == nil {
		t.Error("out-of-range Object did not error")
	}
	if c.Modalities() != 2 || c.Dims()[0] != 4 {
		t.Error("layout accessors wrong")
	}
}

func TestEndToEndSearch(t *testing.T) {
	c, queries, truths := buildCorpus(t, 800, 30, 1)
	w := c.UniformWeights()
	ix, err := Build(c, w, BuildOptions{Gamma: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, q := range queries {
		ms, err := ix.Search(q, SearchOptions{K: 5, L: 200})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			if m.ID == truths[i] {
				hits++
				break
			}
		}
	}
	if hits < len(queries)*9/10 {
		t.Errorf("recall@5 = %d/%d on planted corpus", hits, len(queries))
	}
}

func TestLearnWeightsEndToEnd(t *testing.T) {
	c, queries, truths := buildCorpus(t, 400, 40, 3)
	w, err := LearnWeights(c, queries, truths, WeightConfig{Epochs: 60, Negatives: 5, LearningRate: 0.02, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 {
		t.Fatalf("got %d weights", len(w))
	}
	for i, x := range w {
		if x != x || x == 0 { // NaN or dead weight
			t.Errorf("weight %d = %v", i, x)
		}
	}
	ix, err := Build(c, w, BuildOptions{Gamma: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := ix.Search(queries[0], SearchOptions{K: 1, L: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("got %d matches", len(ms))
	}
}

func TestLearnWeightsValidation(t *testing.T) {
	c, queries, truths := buildCorpus(t, 100, 10, 6)
	if _, err := LearnWeights(c, queries, truths[:5], WeightConfig{}); err == nil {
		t.Error("length mismatch did not error")
	}
	bad := append([]int(nil), truths...)
	bad[0] = -1
	if _, err := LearnWeights(c, queries, bad, WeightConfig{Epochs: 1}); err == nil {
		t.Error("bad positive did not error")
	}
	badQ := append([]Object(nil), queries...)
	badQ[0] = Object{{1}}
	if _, err := LearnWeights(c, badQ, truths, WeightConfig{Epochs: 1}); err == nil {
		t.Error("bad query did not error")
	}
}

func TestBuildValidation(t *testing.T) {
	c := NewCollection(4, 2)
	if _, err := Build(c, []float32{1, 1}, BuildOptions{}); err == nil {
		t.Error("empty collection did not error")
	}
	c, _, _ = buildCorpus(t, 50, 5, 7)
	if _, err := Build(c, []float32{1}, BuildOptions{}); err == nil {
		t.Error("wrong weight count did not error")
	}
	if _, err := Build(c, c.UniformWeights(), BuildOptions{Algorithm: GraphAlgorithm(99)}); err == nil {
		t.Error("unknown algorithm did not error")
	}
}

func TestAllAlgorithmsBuildAndSearch(t *testing.T) {
	c, queries, _ := buildCorpus(t, 300, 10, 8)
	w := c.UniformWeights()
	for _, algo := range []GraphAlgorithm{AlgoOurs, AlgoKGraph, AlgoNSG, AlgoNSSG, AlgoHNSW, AlgoVamana, AlgoHCNNG} {
		ix, err := Build(c, w, BuildOptions{Gamma: 12, Algorithm: algo, Seed: 9})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		ms, err := ix.Search(queries[0], SearchOptions{K: 5, L: 60})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(ms) != 5 {
			t.Fatalf("%v: got %d matches", algo, len(ms))
		}
		st := ix.Stats()
		if st.Objects != 300 || st.Edges == 0 || st.Algorithm == "" {
			t.Errorf("%v: stats %+v", algo, st)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[GraphAlgorithm]string{
		AlgoOurs: "Ours", AlgoKGraph: "KGraph", AlgoNSG: "NSG", AlgoNSSG: "NSSG",
		AlgoHNSW: "HNSW", AlgoVamana: "Vamana", AlgoHCNNG: "HCNNG",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
	if GraphAlgorithm(42).String() != "GraphAlgorithm(42)" {
		t.Error("unknown algorithm String")
	}
}

func TestUserDefinedWeightOverride(t *testing.T) {
	c, queries, _ := buildCorpus(t, 300, 10, 10)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 12, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Weight only modality 1: results must rank by attribute similarity.
	ms, err := ix.Search(queries[0], SearchOptions{K: 5, L: 100, Weights: []float32{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("got %d matches", len(ms))
	}
	if _, err := ix.Search(queries[0], SearchOptions{K: 5, Weights: []float32{1}}); err == nil {
		t.Error("wrong override weight count did not error")
	}
}

func TestMissingModalityQuery(t *testing.T) {
	c, queries, truths := buildCorpus(t, 300, 10, 12)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 12, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// Drop the auxiliary modality (§IX single-modality input): nil vector
	// plus a zero weight for it.
	q := Object{queries[0][0], nil}
	ms, err := ix.Search(q, SearchOptions{K: 10, L: 150, Weights: []float32{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.ID == truths[0] {
			found = true
			break
		}
	}
	if !found {
		t.Error("target-only search missed the planted near-duplicate")
	}
}

func TestExactSearchMatchesIndexAtHighL(t *testing.T) {
	c, queries, _ := buildCorpus(t, 400, 10, 14)
	w := c.UniformWeights()
	ix, err := Build(c, w, BuildOptions{Gamma: 16, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, q := range queries {
		exact, err := c.ExactSearch(q, w, 1)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := ix.Search(q, SearchOptions{K: 1, L: 400})
		if err != nil {
			t.Fatal(err)
		}
		if exact[0].ID == approx[0].ID {
			agree++
		}
	}
	if agree < 9 {
		t.Errorf("index agreed with exact search on %d/10 queries", agree)
	}
}

func TestSaveLoadIndex(t *testing.T) {
	c, queries, _ := buildCorpus(t, 200, 5, 16)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ix.bin")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(path, c)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ix.Search(queries[0], SearchOptions{K: 5, L: 80})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Search(queries[0], SearchOptions{K: 5, L: 80})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("loaded index searches differently")
		}
	}
	if loaded.Weights()[0] != ix.Weights()[0] {
		t.Error("weights not restored")
	}
}

func TestSearchDefaults(t *testing.T) {
	c, queries, _ := buildCorpus(t, 200, 5, 18)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 10, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := ix.Search(queries[0], SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 10 {
		t.Fatalf("default K: got %d matches", len(ms))
	}
}

func TestAddRejectsNonFinite(t *testing.T) {
	c := NewCollection(2, 2)
	nan := float32(math.NaN())
	if _, err := c.Add(Object{{nan, 1}, {1, 0}}); err == nil {
		t.Error("NaN coordinate did not error")
	}
	inf := float32(math.Inf(1))
	if _, err := c.Add(Object{{1, 0}, {inf, 0}}); err == nil {
		t.Error("Inf coordinate did not error")
	}
	if c.Len() != 0 {
		t.Error("rejected objects were stored")
	}
}
