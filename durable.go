package must

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"time"

	"must/internal/faultfs"
	"must/internal/wal"
)

// DurableService wraps any Service with a write-ahead log: every insert,
// delete, and (re)build is applied to the engine and then logged (and,
// under wal.SyncAlways, fsynced) before the call returns. After a crash,
// OpenDurable replays the log on top of the newest snapshot, restoring
// exactly the acked state.
//
// Records carry the engine's mutation epoch after the record applied,
// and snapshots (MUSTEG2) persist their epoch — so replay skips records
// the snapshot already captured, and stale WAL segments left behind by a
// failed truncation are harmless.
//
// A mutation whose WAL append fails is NOT acked and poisons the
// service: all further mutations are rejected until restart. This is
// what keeps "acked" and "recoverable" the same set — the in-memory
// engine may be one un-acked mutation ahead of the log, and accepting
// more writes on top would let replay diverge (ID assignment is
// positional).
//
// Mutations, snapshots, and (re)builds serialize on one internal mutex
// so log order always matches apply order; searches are untouched and
// run concurrently. Weight changes (SetWeights, LearnWeights) and
// EnableQuantization are serialized but NOT logged — they become
// durable at the next snapshot, matching their role as control-plane
// settings rather than corpus mutations.
type DurableService struct {
	Service // reads and searches delegate to the wrapped engine

	fs faultfs.FS

	mu       sync.Mutex
	log      *wal.Log
	poisoned error
}

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Fsync is the WAL durability policy: "always" (default — fsync per
	// record; an acked write survives power loss), "interval"
	// (background fsync every FsyncInterval; power loss may lose the
	// tail), or "off" (OS page cache only; survives process crash, not
	// power loss).
	Fsync string
	// FsyncInterval is the background fsync period under Fsync
	// "interval" (default 50ms).
	FsyncInterval time.Duration
	// SegmentBytes caps a WAL segment file before rotation (default
	// 64 MiB).
	SegmentBytes int64

	// fs routes all WAL and snapshot I/O through a fault-injection seam
	// (crash-matrix tests); nil means the real filesystem.
	fs faultfs.FS
}

func (o DurableOptions) wal() (wal.Options, error) {
	policy := wal.SyncAlways
	if o.Fsync != "" {
		var err error
		if policy, err = wal.ParseSyncPolicy(o.Fsync); err != nil {
			return wal.Options{}, err
		}
	}
	return wal.Options{
		FS:           o.fs,
		Policy:       policy,
		SyncInterval: o.FsyncInterval,
		SegmentBytes: o.SegmentBytes,
	}, nil
}

// OpenDurable replays the WAL in dir on top of svc's current state
// (skipping records with epoch ≤ svc.Epoch(), i.e. already in the
// snapshot svc was restored from), then opens the log for appends and
// returns the wrapped service. It reports how many records replayed.
// A missing or empty dir replays nothing and starts a fresh log.
func OpenDurable(svc Service, dir string, dopts DurableOptions) (*DurableService, int, error) {
	opts, err := dopts.wal()
	if err != nil {
		return nil, 0, err
	}
	replayed, err := wal.Replay(dir, opts, svc.Epoch(), func(rec wal.Record) error {
		return applyRecord(svc, rec)
	})
	if err != nil {
		return nil, replayed, fmt.Errorf("must: wal replay: %w", err)
	}
	l, err := wal.Open(dir, opts)
	if err != nil {
		return nil, replayed, fmt.Errorf("must: opening wal: %w", err)
	}
	fs := opts.FS
	if fs == nil {
		fs = faultfs.OS
	}
	return &DurableService{Service: svc, fs: fs, log: l}, replayed, nil
}

// applyRecord re-applies one logged mutation during recovery.
func applyRecord(svc Service, rec wal.Record) error {
	switch rec.Op {
	case wal.OpInsert:
		o, err := decodeObject(rec.Data)
		if err != nil {
			return err
		}
		_, err = svc.InsertObject(o)
		return err
	case wal.OpDelete:
		if len(rec.Data) != 8 {
			return fmt.Errorf("must: delete record has %d data bytes, want 8", len(rec.Data))
		}
		return svc.Delete(int64(binary.LittleEndian.Uint64(rec.Data)))
	case wal.OpRebuild:
		// Same probe the serving layer uses: Stats errors until built.
		if _, err := svc.Stats(); err != nil {
			return svc.Build()
		}
		return svc.Rebuild()
	case wal.OpRebuildShard:
		if len(rec.Data) != 4 {
			return fmt.Errorf("must: rebuild-shard record has %d data bytes, want 4", len(rec.Data))
		}
		sr, ok := svc.(ShardRebuilder)
		if !ok {
			return fmt.Errorf("must: wal has a rebuild-shard record but the service is not sharded")
		}
		// The record was logged on a built engine at this exact epoch, so
		// replay reaches here with the shard built too — no Build probe.
		return sr.RebuildShard(int(binary.LittleEndian.Uint32(rec.Data)))
	}
	return fmt.Errorf("must: unknown wal op %d", rec.Op)
}

// logRecord appends one record for a mutation that just applied. Caller
// holds d.mu, so Epoch() is exactly the post-apply epoch.
func (d *DurableService) logRecord(op wal.Op, data []byte) error {
	err := d.log.Append(wal.Record{Op: op, Epoch: d.Service.Epoch(), Data: data})
	if err != nil {
		d.poisoned = fmt.Errorf("must: wal append failed; rejecting writes until restart: %w", err)
		return d.poisoned
	}
	return nil
}

func (d *DurableService) Insert(v NamedVectors) (int64, error) {
	data := encodeNamed(d.Service.Schema(), v)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.poisoned != nil {
		return 0, d.poisoned
	}
	id, err := d.Service.Insert(v)
	if err != nil {
		return 0, err
	}
	return id, d.logRecord(wal.OpInsert, data)
}

func (d *DurableService) InsertObject(o Object) (int64, error) {
	data := encodeObject(o)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.poisoned != nil {
		return 0, d.poisoned
	}
	id, err := d.Service.InsertObject(o)
	if err != nil {
		return 0, err
	}
	return id, d.logRecord(wal.OpInsert, data)
}

func (d *DurableService) Delete(id int64) error {
	var data [8]byte
	binary.LittleEndian.PutUint64(data[:], uint64(id))
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.poisoned != nil {
		return d.poisoned
	}
	if err := d.Service.Delete(id); err != nil {
		return err
	}
	return d.logRecord(wal.OpDelete, data[:])
}

// Build logs an OpRebuild record so that recovery can replay later
// deletes (which require a built index) and reproduce the graph — builds
// are bit-deterministic for a given corpus, weights, and seed.
func (d *DurableService) Build() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.poisoned != nil {
		return d.poisoned
	}
	if err := d.Service.Build(); err != nil {
		return err
	}
	return d.logRecord(wal.OpRebuild, nil)
}

func (d *DurableService) Rebuild() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.poisoned != nil {
		return d.poisoned
	}
	if err := d.Service.Rebuild(); err != nil {
		return err
	}
	return d.logRecord(wal.OpRebuild, nil)
}

// ShardCount reports the wrapped service's shard count, or 1 when it is
// not sharded (the whole engine is one maintenance unit).
func (d *DurableService) ShardCount() int {
	if sr, ok := d.Service.(ShardRebuilder); ok {
		return sr.ShardCount()
	}
	return 1
}

// ShardStats forwards the wrapped service's per-shard statistics, or nil
// when it is not sharded.
func (d *DurableService) ShardStats() []ShardInfo {
	if sr, ok := d.Service.(ShardRebuilder); ok {
		return sr.ShardStats()
	}
	return nil
}

// RebuildShard rebuilds one shard of the wrapped sharded service and
// logs an OpRebuildShard record. Single-shard rebuilds get their own op
// (rather than OpRebuild) because a full rebuild bumps every shard's
// epoch while this bumps one — epoch-guarded replay must reproduce the
// logged epoch sequence exactly.
func (d *DurableService) RebuildShard(j int) error {
	sr, ok := d.Service.(ShardRebuilder)
	if !ok {
		return fmt.Errorf("must: service is not sharded; use Rebuild")
	}
	var data [4]byte
	binary.LittleEndian.PutUint32(data[:], uint32(j))
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.poisoned != nil {
		return d.poisoned
	}
	if err := sr.RebuildShard(j); err != nil {
		return err
	}
	return d.logRecord(wal.OpRebuildShard, data[:])
}

func (d *DurableService) SetWeights(w Weights) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.poisoned != nil {
		return d.poisoned
	}
	return d.Service.SetWeights(w)
}

func (d *DurableService) LearnWeights(queries []NamedVectors, positives []int64, cfg WeightConfig) (Weights, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.poisoned != nil {
		return nil, d.poisoned
	}
	return d.Service.LearnWeights(queries, positives, cfg)
}

// Checkpoint writes a durable snapshot (temp file + fsync + rename +
// parent-dir fsync) and then truncates the WAL — every record logged so
// far has epoch ≤ the snapshot's, so they would be skipped on replay
// anyway; dropping them just keeps recovery fast. Mutations block for
// the duration, which is what makes the snapshot's epoch exact.
//
// A truncation failure after a successful snapshot is returned wrapped
// so the caller can log-and-continue: the snapshot IS durable and stale
// segments are harmless.
func (d *DurableService) Checkpoint(path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := writeSnapshot(d.fs, d.Service, path); err != nil {
		return err
	}
	if err := d.log.Truncate(); err != nil {
		return fmt.Errorf("must: snapshot durable, but wal truncate failed (stale segments are harmless): %w", err)
	}
	return nil
}

// Close syncs and closes the WAL. The wrapped engine needs no closing.
func (d *DurableService) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Close()
}

// WriteSnapshot saves svc to path with full crash safety: the bytes are
// written to a temp file, fsynced, renamed over path, and the parent
// directory fsynced — only then is the snapshot durable. A crash at any
// intermediate point leaves the previous snapshot intact.
func WriteSnapshot(svc Service, path string) error {
	return writeSnapshot(faultfs.OS, svc, path)
}

// writeSnapshot routes all I/O through fs so fault-injection tests can
// exercise every step.
func writeSnapshot(fs faultfs.FS, svc Service, path string) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := svc.SaveTo(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

// WAL record payloads, little-endian:
//
//	insert: m uint32, m × (dim uint32, dim × float32)  — raw (pre-
//	  normalization) vectors in schema order; re-inserting re-normalizes
//	  deterministically, so replay reproduces the stored rows bit-exactly
//	delete: id uint64
//	rebuild: empty

func encodeObject(o Object) []byte {
	size := 4
	for _, v := range o {
		size += 4 + 4*len(v)
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf, uint32(len(o)))
	off := 4
	for _, v := range o {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(v)))
		off += 4
		for _, x := range v {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(x))
			off += 4
		}
	}
	return buf
}

// encodeNamed encodes v in sc's order. A modality missing from v encodes
// as zero-length — such a record is never logged, because the engine
// rejects the insert first.
func encodeNamed(sc Schema, v NamedVectors) []byte {
	o := make(Object, len(sc))
	for i, m := range sc {
		o[i] = v[m.Name]
	}
	return encodeObject(o)
}

func decodeObject(data []byte) (Object, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("must: insert record too short (%d bytes)", len(data))
	}
	m := binary.LittleEndian.Uint32(data)
	if m > 64 {
		return nil, fmt.Errorf("must: insert record has unreasonable modality count %d", m)
	}
	o := make(Object, m)
	off := 4
	for i := range o {
		if len(data)-off < 4 {
			return nil, fmt.Errorf("must: insert record truncated at modality %d", i)
		}
		dim := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if dim < 0 || len(data)-off < 4*dim {
			return nil, fmt.Errorf("must: insert record truncated in modality %d (dim %d)", i, dim)
		}
		v := make([]float32, dim)
		for j := range v {
			v[j] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
		o[i] = v
	}
	if off != len(data) {
		return nil, fmt.Errorf("must: insert record has %d trailing bytes", len(data)-off)
	}
	return o, nil
}
