package must

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"must/internal/faultfs"
)

// durableSchema matches the dims used across engine tests but stays
// small so crash-matrix tests can rebuild dozens of engines quickly.
var durableSchema = Schema{{Name: "image", Dim: 8}, {Name: "text", Dim: 6}}

func durableRandObject(rng *rand.Rand) NamedVectors {
	v := make(NamedVectors, len(durableSchema))
	for _, m := range durableSchema {
		x := make([]float32, m.Dim)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		v[m.Name] = x
	}
	return v
}

func newDurableEngine(t *testing.T, shards int) Service {
	t.Helper()
	opts := EngineOptions{Build: BuildOptions{Gamma: 8, Seed: 42}}
	if shards > 1 {
		s, err := NewShardedEngine(durableSchema, shards, opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	e, err := NewEngine(durableSchema, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// sameCorpus asserts a and b hold identical objects under identical IDs.
func sameCorpus(t *testing.T, a, b Service) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len: %d vs %d", a.Len(), b.Len())
	}
	if a.Epoch() != b.Epoch() {
		t.Fatalf("Epoch: %d vs %d", a.Epoch(), b.Epoch())
	}
	// Walk IDs 0..nextID looking for live objects on either side.
	for id := int64(0); id < int64(a.Len()+b.Len()+64); id++ {
		av, aerr := a.Object(id)
		bv, berr := b.Object(id)
		if (aerr == nil) != (berr == nil) {
			t.Fatalf("id %d: presence differs (%v vs %v)", id, aerr, berr)
		}
		if aerr != nil {
			continue
		}
		for name, ax := range av {
			bx, ok := bv[name]
			if !ok || len(ax) != len(bx) {
				t.Fatalf("id %d modality %q differs in shape", id, name)
			}
			for i := range ax {
				if ax[i] != bx[i] {
					t.Fatalf("id %d modality %q[%d]: %v vs %v (replay not bit-exact)", id, name, i, ax[i], bx[i])
				}
			}
		}
	}
}

// runWorkload drives the same scripted mutation sequence against a
// service, acking through the returned ack func (nil-safe).
func runWorkload(t *testing.T, svc Service, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ids := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		id, err := svc.Insert(durableRandObject(rng))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	if err := svc.Build(); err != nil {
		t.Fatal(err)
	}
	// Delete a deterministic quarter, insert a few more, rebuild.
	for i := 0; i < n; i += 4 {
		if err := svc.Delete(ids[i]); err != nil {
			t.Fatalf("delete %d: %v", ids[i], err)
		}
	}
	for i := 0; i < n/8; i++ {
		if _, err := svc.Insert(durableRandObject(rng)); err != nil {
			t.Fatalf("post-build insert %d: %v", i, err)
		}
	}
	if err := svc.Rebuild(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableReplayEquivalence(t *testing.T) {
	// snapshot + WAL replay must reconstruct the exact state of a service
	// that never crashed — same IDs, same bits, same epoch.
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			ds, replayed, err := OpenDurable(newDurableEngine(t, shards), filepath.Join(dir, "wal"), DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if replayed != 0 {
				t.Fatalf("fresh log replayed %d records", replayed)
			}
			runWorkload(t, ds, 64)
			if err := ds.Close(); err != nil { // "crash": state only in the WAL
				t.Fatal(err)
			}

			ds2, replayed, err := OpenDurable(newDurableEngine(t, shards), filepath.Join(dir, "wal"), DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if replayed == 0 {
				t.Fatal("nothing replayed")
			}
			defer ds2.Close()

			never := newDurableEngine(t, shards)
			runWorkload(t, never, 64)
			sameCorpus(t, ds2, never)
		})
	}
}

func TestDurableCheckpointTruncatesAndSkips(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	snap := filepath.Join(dir, "engine.bin")

	ds, _, err := OpenDurable(newDurableEngine(t, 1), walDir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, ds, 32)
	if err := ds.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations land only in the (fresh) WAL.
	rng := rand.New(rand.NewSource(99))
	postIDs := make([]int64, 3)
	for i := range postIDs {
		id, err := ds.Insert(durableRandObject(rng))
		if err != nil {
			t.Fatal(err)
		}
		postIDs[i] = id
	}
	preLen := ds.Len()
	preEpoch := ds.Epoch()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: snapshot restore + replay of exactly the 3 tail records.
	eng, err := LoadService(snap)
	if err != nil {
		t.Fatal(err)
	}
	ds2, replayed, err := OpenDurable(eng, walDir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if replayed != 3 {
		t.Fatalf("replayed %d records, want 3 (checkpoint should have truncated the rest)", replayed)
	}
	if ds2.Len() != preLen || ds2.Epoch() != preEpoch {
		t.Fatalf("restored len/epoch %d/%d, want %d/%d", ds2.Len(), ds2.Epoch(), preLen, preEpoch)
	}
	for _, id := range postIDs {
		if _, err := ds2.Object(id); err != nil {
			t.Fatalf("post-checkpoint insert %d lost: %v", id, err)
		}
	}
}

func TestDurablePoisonOnAppendFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.Wrap(faultfs.OS)
	ds, _, err := OpenDurable(newDurableEngine(t, 1), filepath.Join(dir, "wal"), DurableOptions{fs: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	rng := rand.New(rand.NewSource(1))
	if _, err := ds.Insert(durableRandObject(rng)); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk gone")
	ffs.Inject(faultfs.Fault{Op: faultfs.OpSync, PathContains: ".seg", Err: boom})
	if _, err := ds.Insert(durableRandObject(rng)); !errors.Is(err, boom) {
		t.Fatalf("insert during fault = %v, want wrapped %v", err, boom)
	}
	// Every subsequent mutation is rejected, even though the disk is fine
	// again — the in-memory engine is ahead of the log and accepting more
	// writes would make replay diverge.
	if _, err := ds.Insert(durableRandObject(rng)); err == nil {
		t.Fatal("poisoned service accepted an insert")
	}
	if err := ds.Delete(0); err == nil {
		t.Fatal("poisoned service accepted a delete")
	}
}

func TestDurableFailedInsertNotLogged(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	ds, _, err := OpenDurable(newDurableEngine(t, 1), walDir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Insert(NamedVectors{"image": make([]float32, 8)}); err == nil {
		t.Fatal("insert missing a modality should fail")
	}
	rng := rand.New(rand.NewSource(2))
	if _, err := ds.Insert(durableRandObject(rng)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	ds2, replayed, err := OpenDurable(newDurableEngine(t, 1), walDir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if replayed != 1 {
		t.Fatalf("replayed %d records, want 1 (the failed insert must not be logged)", replayed)
	}
}
