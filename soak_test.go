package must

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"must/internal/faultfs"
	"must/internal/maint"
)

// TestSoakChurnSelfHeals is the long-running robustness proof, gated
// behind MUST_SOAK=1 (MUST_SOAK_DURATION overrides the churn phase
// length, default 60s):
//
//  1. pre window: 95/5 search/insert+delete churn against a durable
//     sharded engine with maintenance paused — the pre-rebuild p99;
//  2. rebuild window: same churn with maintenance resumed — paced
//     rebuilds must fire, and search p99 must stay within 2x the
//     pre-rebuild p99;
//  3. fault: a faultfs-injected WAL failure lands on a maintenance
//     rebuild, poisoning the durable service (writes refused by design);
//  4. recovery: restart (replay the WAL), resume maintenance, and
//     assert the engine converges back to healthy — tombstones drained,
//     zero maintenance debt, every shard healthy, searches clean.
func TestSoakChurnSelfHeals(t *testing.T) {
	if os.Getenv("MUST_SOAK") == "" {
		t.Skip("set MUST_SOAK=1 to run the soak test")
	}
	churnFor := 60 * time.Second
	if d, err := time.ParseDuration(os.Getenv("MUST_SOAK_DURATION")); err == nil && d > 0 {
		churnFor = d
	}
	const S = 3
	// Race instrumentation makes graph construction ~10x slower, so the
	// same pacing would leave rebuilds hogging CPU near-constantly and
	// the p99 bound would measure the detector, not the engine: shrink
	// the corpus and stretch the rebuild gap when -race is on.
	corpus, rebuildGap := 3000, time.Second
	if raceDetectorOn {
		corpus, rebuildGap = 1200, 2*time.Second
	}
	walDir := filepath.Join(t.TempDir(), "wal")
	ffs := faultfs.Wrap(faultfs.OS)
	ds, _, err := OpenDurable(newDurableEngine(t, S), walDir, DurableOptions{fs: ffs})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < corpus; i++ {
		if _, err := ds.Insert(durableRandObject(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Build(); err != nil {
		t.Fatal(err)
	}

	queries := make([]NamedVectors, 256)
	for i := range queries {
		queries[i] = durableRandObject(rng)
	}
	search := func(i int) error {
		_, err := ds.Search(context.Background(), Query{Vectors: queries[i%len(queries)], K: 10})
		return err
	}

	p99 := func(lats []time.Duration) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[int(0.99*float64(len(lats)-1))]
	}

	// Phases 1+2 — one continuous 95/5 churn stream split into two
	// windows: maintenance PAUSED (pre-rebuild baseline), then RESUMED
	// (paced rebuilds live). Same workload either side, so the p99 delta
	// isolates exactly what the rebuilds cost.
	o := fastMaint()
	o.Interval = 20 * time.Millisecond
	o.MinRebuildGap = rebuildGap
	o.OverlayWatermark = 0.10
	o.TombstoneWatermark = 0.10
	m := StartMaintenance(ds, o)
	m.Pause()

	var (
		stop      atomic.Bool
		during    atomic.Bool // false: pre window, true: rebuilds live
		churnErrs atomic.Int64
		mu        sync.Mutex
		preLats   []time.Duration
		durLats   []time.Duration
		wg        sync.WaitGroup
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(31 + int64(w)))
			for i := w; !stop.Load(); i++ {
				if wrng.Float64() < 0.05 {
					id, err := ds.Insert(durableRandObject(wrng))
					if err == nil {
						err = ds.Delete(id)
					}
					if err != nil && !errors.Is(err, ErrOverloaded) {
						churnErrs.Add(1)
					}
					continue
				}
				d := during.Load()
				start := time.Now()
				if err := search(i); err != nil {
					churnErrs.Add(1)
					continue
				}
				el := time.Since(start)
				mu.Lock()
				if d {
					durLats = append(durLats, el)
				} else {
					preLats = append(preLats, el)
				}
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(churnFor / 4)
	during.Store(true)
	m.Resume()
	time.Sleep(3 * churnFor / 4)
	stop.Store(true)
	wg.Wait()
	pre := p99(preLats)
	dur := p99(durLats)
	rebuilds := m.Rebuilds()
	t.Logf("churn: pre-rebuild p99 %v (%d samples), during-rebuild p99 %v (%d samples), %d maintenance rebuilds, %d errors",
		pre, len(preLats), dur, len(durLats), rebuilds, churnErrs.Load())
	if rebuilds == 0 {
		t.Fatal("no maintenance rebuild fired during churn")
	}
	if churnErrs.Load() > 0 {
		t.Fatalf("%d non-overload churn errors", churnErrs.Load())
	}
	// The acceptance bound, with a floor so microsecond-scale baselines
	// don't turn scheduler noise into flakes.
	bound := 2 * pre
	if floor := 2 * time.Millisecond; bound < floor {
		bound = floor
	}
	if dur > bound {
		t.Fatalf("search p99 during paced rebuilds %v > %v (2x pre-rebuild p99 %v)", dur, bound, pre)
	}

	// Phase 3 — a WAL fault lands on a maintenance rebuild. Build debt
	// first so the very next WAL append is the rebuild record.
	m.Pause()
	for i := 0; i < corpus/10; i++ {
		id, err := ds.Insert(durableRandObject(rng))
		if err == nil {
			err = ds.Delete(id)
		}
		if err != nil && !errors.Is(err, ErrOverloaded) {
			t.Fatalf("debt churn: %v", err)
		}
	}
	diskGone := errors.New("soak: disk fault")
	ffs.Inject(faultfs.Fault{Op: faultfs.OpSync, PathContains: ".seg", Err: diskGone})
	m.Resume()
	m.Kick()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && m.Stats().Failures == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Stats().Failures == 0 {
		t.Fatal("injected WAL fault never failed a maintenance rebuild")
	}
	m.Close()
	// The service is now poisoned (by design: the engine is ahead of the
	// log). Searches still answer; writes refuse.
	if err := search(0); err != nil {
		t.Fatalf("search on poisoned service: %v", err)
	}
	_ = ds.Close() // close may surface the injected fault; restart is the recovery

	// Phase 4 — restart: replay the WAL (the failed rebuild was never
	// logged, so replay is clean), resume maintenance, converge.
	ffs.Clear()
	ds2, replayed, err := OpenDurable(newDurableEngine(t, S), walDir, DurableOptions{fs: ffs})
	if err != nil {
		t.Fatalf("restart after fault: %v", err)
	}
	defer ds2.Close()
	t.Logf("restarted: replayed %d records, %d objects, %d tombstones", replayed, ds2.Len(), ds2.Deleted())
	dirtyOnRestart := ds2.Deleted() > 0
	m2 := StartMaintenance(ds2, o)
	defer m2.Close()
	deadline = time.Now().Add(30 * time.Second)
	// Converged = every shard under both watermarks and healthy, judged
	// on the shard stats themselves (the manager's debt gauge reads 0
	// before its first sample, so it alone would pass vacuously).
	healthy := func() bool {
		for _, info := range ds2.ShardStats() {
			if info.Health != maint.Healthy.String() {
				return false
			}
			if info.Stats.TombstoneRatio >= o.TombstoneWatermark ||
				info.Stats.OverlayRatio >= o.OverlayWatermark {
				return false
			}
		}
		return m2.Stats().Debt == 0
	}
	for time.Now().Before(deadline) && !healthy() {
		time.Sleep(10 * time.Millisecond)
	}
	if !healthy() {
		t.Fatalf("engine did not converge back to healthy: %+v %+v", m2.Stats(), ds2.ShardStats())
	}
	if dirtyOnRestart && m2.Rebuilds() == 0 && ds2.Deleted() > 0 {
		t.Fatal("restart left debt but maintenance never rebuilt")
	}
	if _, err := ds2.Search(context.Background(), Query{Vectors: queries[0], K: 10}); err != nil {
		t.Fatalf("search after recovery: %v", err)
	}
	t.Logf("converged: %+v", m2.Stats())
}
