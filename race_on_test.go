//go:build race

package must_test

// raceDetectorEnabled reports whether this test binary was built with
// -race; heavyweight fixtures shrink when it is (see raceBigN).
const raceDetectorEnabled = true
