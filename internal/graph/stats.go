package graph

import "sort"

// Stats summarizes a built graph's structure; cmd/mustbench and tests use
// it to audit index health (degree spread matters for both search latency
// tails and memory).
type Stats struct {
	// Vertices and Edges are the basic counts.
	Vertices, Edges int
	// MinDegree, MaxDegree, AvgDegree describe the out-degree spread.
	MinDegree, MaxDegree int
	AvgDegree            float64
	// MedianDegree and P99Degree are robust spread measures.
	MedianDegree, P99Degree int
	// Isolated counts vertices with no out-edges.
	Isolated int
	// ReachableFromSeed counts vertices BFS reaches from the seed.
	ReachableFromSeed int
	// Components is the number of weakly connected components.
	Components int
}

// ComputeStats analyzes g.
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	st := Stats{Vertices: n}
	if n == 0 {
		return st
	}
	degrees := make([]int, n)
	st.MinDegree = g.Degree(0)
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		degrees[v] = d
		st.Edges += d
		if d < st.MinDegree {
			st.MinDegree = d
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
		if d == 0 {
			st.Isolated++
		}
	}
	st.AvgDegree = float64(st.Edges) / float64(n)
	sort.Ints(degrees)
	st.MedianDegree = degrees[n/2]
	p99 := (n * 99) / 100
	if p99 >= n {
		p99 = n - 1
	}
	st.P99Degree = degrees[p99]
	st.ReachableFromSeed = g.Reachable()
	st.Components = weakComponents(g)
	return st
}

// weakComponents counts weakly connected components via union-find over
// the undirected view of the graph.
func weakComponents(g *Graph) int {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			union(int32(v), u)
		}
	}
	roots := map[int32]struct{}{}
	for v := range parent {
		roots[find(int32(v))] = struct{}{}
	}
	return len(roots)
}

// DegreeHistogram buckets out-degrees into the given bucket width and
// returns bucket→count, for index-audit reports.
func DegreeHistogram(g *Graph, bucket int) map[int]int {
	if bucket <= 0 {
		bucket = 5
	}
	out := map[int]int{}
	for v := 0; v < g.NumVertices(); v++ {
		out[(g.Degree(int32(v))/bucket)*bucket]++
	}
	return out
}
