package graph

import (
	"math/rand"
	"testing"

	"must/internal/vec"
)

// testSpace builds a clustered unit-vector space: clumpy data is what
// proximity graphs are designed for and keeps quality assertions
// meaningful.
func testSpace(n, dim, clusters int, seed int64) *Space {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, clusters)
	for i := range centers {
		centers[i] = vec.RandUnit(rng, dim)
	}
	data := make([][]float32, n)
	for i := range data {
		data[i] = vec.AddGaussianNoise(rng, centers[rng.Intn(clusters)], 0.6)
	}
	return NewSpace(data)
}

func exactTopK(s *Space, v int32, k int) map[int32]struct{} {
	l := newNeighborList(k)
	for u := 0; u < s.Len(); u++ {
		if int32(u) != v {
			l.insert(int32(u), s.IP(v, int32(u)))
		}
	}
	out := make(map[int32]struct{}, len(l.ids))
	for _, id := range l.ids {
		out[id] = struct{}{}
	}
	return out
}

func TestNeighborList(t *testing.T) {
	l := newNeighborList(3)
	if !l.insert(1, 0.5) || !l.insert(2, 0.9) || !l.insert(3, 0.1) {
		t.Fatal("inserts into empty list failed")
	}
	if l.insert(2, 0.9) {
		t.Error("duplicate insert succeeded")
	}
	if l.insert(4, 0.05) {
		t.Error("insert below worst into full list succeeded")
	}
	if !l.insert(5, 0.7) {
		t.Error("insert above worst into full list failed")
	}
	// Expect ids sorted by IP desc: 2 (0.9), 5 (0.7), 1 (0.5).
	want := []int32{2, 5, 1}
	for i, id := range l.ids {
		if id != want[i] {
			t.Fatalf("ids = %v, want %v", l.ids, want)
		}
	}
	for i := 1; i < len(l.ips); i++ {
		if l.ips[i] > l.ips[i-1] {
			t.Fatal("ips not sorted descending")
		}
	}
}

func TestSpaceBasics(t *testing.T) {
	s := testSpace(50, 16, 3, 1)
	if s.Len() != 50 || s.Dim() != 16 {
		t.Fatalf("Len=%d Dim=%d", s.Len(), s.Dim())
	}
	if ip := s.IP(3, 3); ip < 0.999 || ip > 1.001 {
		t.Errorf("self IP = %v, want 1 for unit vectors", ip)
	}
	med := s.Medoid()
	if med < 0 || int(med) >= s.Len() {
		t.Fatalf("medoid %d out of range", med)
	}
	// The medoid maximizes IP to the centroid.
	c := s.Centroid()
	for i := 0; i < s.Len(); i++ {
		if s.IPTo(int32(i), c) > s.IPTo(med, c)+1e-6 {
			t.Fatalf("vertex %d beats medoid", i)
		}
	}
}

func TestNewFusedSpaceMatchesWeightedConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	objs := make([]vec.Multi, 10)
	for i := range objs {
		objs[i] = vec.Multi{vec.RandUnit(rng, 8), vec.RandUnit(rng, 4)}
	}
	w := vec.Weights{0.8, 0.33}
	s := NewFusedSpace(objs, w)
	if s.Dim() != 12 {
		t.Fatalf("fused dim = %d, want 12", s.Dim())
	}
	wantSelf := float64(w.SumSquared())
	if got := float64(s.SelfIP()); got < wantSelf-1e-3 || got > wantSelf+1e-3 {
		t.Errorf("SelfIP = %v, want %v", got, wantSelf)
	}
	got := s.IP(0, 1)
	want := vec.JointIP(w, objs[0], objs[1])
	if d := got - want; d > 1e-4 || d < -1e-4 {
		t.Errorf("fused IP = %v, joint IP = %v", got, want)
	}
}

func TestNNDescentQuality(t *testing.T) {
	s := testSpace(800, 16, 8, 3)
	const gamma = 10
	adj := NNDescent{Iters: 4, Seed: 1}.Init(s, gamma)
	// Measure fraction of exact top-γ recovered.
	var qual float64
	for v := 0; v < 100; v++ {
		truth := exactTopK(s, int32(v), gamma)
		hits := 0
		for _, u := range adj[v] {
			if _, ok := truth[u]; ok {
				hits++
			}
		}
		qual += float64(hits) / float64(gamma)
	}
	qual /= 100
	if qual < 0.85 {
		t.Errorf("NNDescent quality = %v, want >= 0.85 (Tab. XI regime)", qual)
	}
}

func TestNNDescentQualityImprovesWithIterations(t *testing.T) {
	s := testSpace(600, 16, 6, 4)
	const gamma = 10
	qual := func(iters int) float64 {
		adj := NNDescent{Iters: iters, Seed: 1}.Init(s, gamma)
		g := NewCSR(adj, 0)
		return Quality(g, s, gamma, 80)
	}
	q1, q3 := qual(1), qual(3)
	if q3 < q1 {
		t.Errorf("quality decreased with iterations: q1=%v q3=%v", q1, q3)
	}
	if q3 < 0.8 {
		t.Errorf("q3 = %v, want >= 0.8", q3)
	}
}

func TestMRNGAngleProperty(t *testing.T) {
	// Lemma 2: any two selected neighbors subtend an angle ≥ 60° at the
	// vertex. Verify via the law of cosines on a real selection.
	s := testSpace(400, 12, 4, 5)
	adj := NNDescent{Iters: 3, Seed: 2}.Init(s, 20)
	scratch := newCandScratch()
	self := s.SelfIP()
	for v := int32(0); v < 50; v++ {
		cands := NeighborsOfNeighbors{}.Candidates(s, adj, v, scratch)
		sel := MRNG{}.Select(s, v, cands, 10)
		for i := 0; i < len(sel); i++ {
			for j := i + 1; j < len(sel); j++ {
				dVU := distFromIP(self, s.IP(v, sel[i]))
				dVW := distFromIP(self, s.IP(v, sel[j]))
				dUW := distFromIP(self, s.IP(sel[i], sel[j]))
				denom := 2 * sqrt32(dVU*dVW)
				if denom <= 0 {
					continue
				}
				cos := (dVU + dVW - dUW) / denom
				if cos > 0.5+1e-3 { // cos 60° = 0.5
					t.Fatalf("vertex %d: neighbors %d,%d subtend cos=%v > 0.5", v, sel[i], sel[j], cos)
				}
			}
		}
	}
}

func TestTopKSelector(t *testing.T) {
	s := testSpace(100, 8, 2, 6)
	cands := make([]int32, 0, 99)
	for u := int32(1); u < 100; u++ {
		cands = append(cands, u)
	}
	sel := TopK{}.Select(s, 0, cands, 5)
	if len(sel) != 5 {
		t.Fatalf("TopK selected %d, want 5", len(sel))
	}
	truth := exactTopK(s, 0, 5)
	for _, u := range sel {
		if _, ok := truth[u]; !ok {
			t.Errorf("TopK selected %d, not in exact top-5", u)
		}
	}
}

func TestSelectorsExcludeSelf(t *testing.T) {
	s := testSpace(50, 8, 2, 7)
	cands := []int32{0, 1, 2, 3}
	for _, sel := range []Selector{MRNG{}, TopK{}, AngleSelector{}} {
		out := sel.Select(s, 0, cands, 10)
		for _, u := range out {
			if u == 0 {
				t.Errorf("%s selected self", sel.SelectName())
			}
		}
	}
}

func TestBFSRepairConnects(t *testing.T) {
	s := testSpace(60, 8, 2, 8)
	// Build a deliberately disconnected graph: two halves with no edges
	// between them.
	adj := make([][]int32, 60)
	for v := 0; v < 30; v++ {
		adj[v] = []int32{int32((v + 1) % 30)}
	}
	for v := 30; v < 60; v++ {
		adj[v] = []int32{int32(30 + (v-30+1)%30)}
	}
	if g := NewCSR(adj, 0); g.Reachable() == 60 {
		t.Fatal("test setup: graph should be disconnected")
	}
	// Repair operates on the pre-seal working adjacency, as in Build.
	BFSRepair{}.Ensure(s, adj, 0)
	if got := NewCSR(adj, 0).Reachable(); got != 60 {
		t.Errorf("after repair reachable = %d, want 60", got)
	}
}

func TestPipelineBuildOurs(t *testing.T) {
	s := testSpace(500, 16, 5, 9)
	p := Ours(15, 3, 42)
	g, err := p.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.Reachable() != 500 {
		t.Errorf("reachable = %d, want 500 (connectivity component)", g.Reachable())
	}
	if g.MaxDegree() > 15+1 { // +1: connectivity repair may add one edge
		t.Errorf("max degree = %d exceeds γ", g.MaxDegree())
	}
	// MRNG diversification deliberately trades top-γ overlap for angular
	// spread, so quality is well below a kNN graph's but must stay sane.
	if q := Quality(g, s, 10, 60); q < 0.3 {
		t.Errorf("graph quality = %v, too low", q)
	}
	if p.ComponentSummary() != "NNDescent→NoN→MRNG→Centroid→BFS" {
		t.Errorf("summary = %q", p.ComponentSummary())
	}
}

func TestPipelineValidation(t *testing.T) {
	s := testSpace(10, 4, 1, 10)
	if _, err := (Pipeline{Name: "broken", Gamma: 5}).Build(s); err == nil {
		t.Error("missing components did not error")
	}
	p := Ours(0, 3, 1)
	if _, err := p.Build(s); err == nil {
		t.Error("gamma=0 did not error")
	}
}

func TestAssembliesBuildAndAreSearchable(t *testing.T) {
	s := testSpace(400, 12, 4, 11)
	assemblies := []Pipeline{
		Ours(12, 3, 1),
		KGraphAssembly(12, 3, 1),
		NSGAssembly(12, 3, 30, 1),
		NSSGAssembly(12, 3, 1),
	}
	for _, p := range assemblies {
		g, err := p.Build(s)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if g.NumVertices() != 400 {
			t.Fatalf("%s: vertices = %d", p.Name, g.NumVertices())
		}
		if g.AvgDegree() <= 0 {
			t.Errorf("%s: no edges", p.Name)
		}
		// The beam search over the built graph should find a vertex's own
		// position: route toward vertex 7 and expect to visit it.
		visited := beamSearchGraph(s, g, g.Seed, s.Vector(7), 20)
		found := false
		for _, u := range visited {
			if u == 7 {
				found = true
				break
			}
		}
		if !found && p.Name != "KGraph" { // KGraph has no connectivity guarantee
			t.Errorf("%s: beam search failed to reach target vertex", p.Name)
		}
	}
}

func TestBuildHNSW(t *testing.T) {
	s := testSpace(500, 12, 5, 12)
	g := BuildHNSW(s, HNSWConfig{M: 8, EfConstruction: 60, Seed: 1})
	if g.NumVertices() != 500 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.MaxDegree() > 16 {
		t.Errorf("layer-0 degree %d exceeds 2M", g.MaxDegree())
	}
	if r := g.Reachable(); r < 450 {
		t.Errorf("reachable = %d, want near 500", r)
	}
}

func TestBuildVamana(t *testing.T) {
	s := testSpace(400, 12, 4, 13)
	g := BuildVamana(s, VamanaConfig{Gamma: 12, Beam: 30, Alpha: 1.2, Seed: 1})
	if g.NumVertices() != 400 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.MaxDegree() > 12 {
		t.Errorf("degree %d exceeds R", g.MaxDegree())
	}
	if r := g.Reachable(); r < 360 {
		t.Errorf("reachable = %d, want near 400", r)
	}
}

func TestBuildHCNNG(t *testing.T) {
	s := testSpace(400, 12, 4, 14)
	g := BuildHCNNG(s, HCNNGConfig{Rounds: 3, LeafSize: 50, MaxDegree: 20, Seed: 1})
	if g.NumVertices() != 400 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.Reachable() != 400 {
		t.Errorf("reachable = %d, want 400 (HCNNG repairs connectivity)", g.Reachable())
	}
	if g.MaxDegree() > 21 {
		t.Errorf("degree %d exceeds cap", g.MaxDegree())
	}
}

func TestGraphStats(t *testing.T) {
	g := NewCSR([][]int32{{1, 2}, {0}, {}}, 0)
	if g.NumEdges() != 3 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	if g.AvgDegree() != 1 {
		t.Errorf("avg degree = %v", g.AvgDegree())
	}
	if g.MaxDegree() != 2 {
		t.Errorf("max degree = %d", g.MaxDegree())
	}
	if g.SizeBytes() <= 0 {
		t.Error("size must be positive")
	}
	if g.Reachable() != 3 {
		t.Errorf("reachable = %d", g.Reachable())
	}
}

func TestQualityPerfectGraph(t *testing.T) {
	s := testSpace(120, 8, 2, 15)
	const gamma = 6
	adj := make([][]int32, s.Len())
	for v := range adj {
		truth := exactTopK(s, int32(v), gamma)
		for u := range truth {
			adj[v] = append(adj[v], u)
		}
	}
	g := NewCSR(adj, 0)
	if q := Quality(g, s, gamma, 0); q < 0.999 {
		t.Errorf("perfect graph quality = %v, want 1", q)
	}
}

func TestBuildDeterminism(t *testing.T) {
	s := testSpace(300, 12, 3, 16)
	build := func() *Graph {
		g, err := Ours(10, 3, 99).Build(s)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := build(), build()
	if a.Seed != b.Seed {
		t.Fatal("seeds differ between identical builds")
	}
	if !graphsEqual(a, b) {
		t.Fatal("identical builds produced different adjacency")
	}
}

// A released store-backed space must agree with its materialized form on
// every similarity primitive: the lazy per-modality path is what
// incremental inserts route through once the fused build buffer is gone.
func TestStoreViewMatchesMaterializedSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := make([]vec.Multi, 40)
	for i := range objs {
		objs[i] = vec.Multi{vec.RandUnit(rng, 16), vec.RandUnit(rng, 6), vec.RandUnit(rng, 10)}
	}
	w := vec.Weights{0.7, 0.5, 0.3}
	st := vec.FlatFromMulti(objs)
	mat := NewFusedSpaceFromStore(st, w)
	lazy := StoreView(st, w)
	if mat.FusedBytes() == 0 {
		t.Fatal("materialized space reports no fused buffer")
	}
	if lazy.FusedBytes() != 0 {
		t.Fatal("store view materialized a fused buffer")
	}
	const tol = 1e-5
	approx := func(a, b float32) bool { d := a - b; return d < tol && d > -tol }
	if !approx(mat.SelfIP(), lazy.SelfIP()) {
		t.Fatalf("SelfIP: %v vs %v", mat.SelfIP(), lazy.SelfIP())
	}
	q := mat.Vector(3)
	for i := 0; i < mat.Len(); i++ {
		for j := 0; j < 5; j++ {
			if !approx(mat.IP(int32(i), int32(j)), lazy.IP(int32(i), int32(j))) {
				t.Fatalf("IP(%d,%d): %v vs %v", i, j, mat.IP(int32(i), int32(j)), lazy.IP(int32(i), int32(j)))
			}
		}
		if !approx(mat.IPTo(int32(i), q), lazy.IPTo(int32(i), q)) {
			t.Fatalf("IPTo(%d): %v vs %v", i, mat.IPTo(int32(i), q), lazy.IPTo(int32(i), q))
		}
		mv, lv := mat.Vector(int32(i)), lazy.Vector(int32(i))
		for d := range mv {
			if mv[d] != lv[d] {
				t.Fatalf("Vector(%d)[%d]: %v vs %v", i, d, mv[d], lv[d])
			}
		}
	}
	// Release drops the fused buffer and flips the materialized space onto
	// the same lazy path; everything must keep answering.
	mat.Release()
	if mat.FusedBytes() != 0 {
		t.Fatal("Release left fused bytes behind")
	}
	if !approx(mat.IP(0, 1), lazy.IP(0, 1)) {
		t.Fatal("released space disagrees with store view")
	}
	// New rows appended to the shared store become visible to both views.
	st.AppendMulti(vec.Multi{vec.RandUnit(rng, 16), vec.RandUnit(rng, 6), vec.RandUnit(rng, 10)})
	if mat.Len() != 41 || lazy.Len() != 41 {
		t.Fatalf("appended row not visible: %d / %d", mat.Len(), lazy.Len())
	}
	if ip := lazy.IP(40, 40); !approx(ip, lazy.SelfIP()) {
		t.Fatalf("self IP of appended row = %v, want %v", ip, lazy.SelfIP())
	}
	// A still-materialized space must serve rows beyond its fused buffer
	// through the lazy fallback instead of indexing past the buffer.
	mat2 := NewFusedSpaceFromStore(st, w)
	st.AppendMulti(vec.Multi{vec.RandUnit(rng, 16), vec.RandUnit(rng, 6), vec.RandUnit(rng, 10)})
	if mat2.Len() != 42 {
		t.Fatalf("appended row not visible to materialized space: %d", mat2.Len())
	}
	if got, want := mat2.IP(41, 0), lazy.IP(41, 0); !approx(got, want) {
		t.Fatalf("mixed fused/lazy IP = %v, want %v", got, want)
	}
	if ip := mat2.IP(41, 41); !approx(ip, mat2.SelfIP()) {
		t.Fatalf("self IP of row past the fused buffer = %v, want %v", ip, mat2.SelfIP())
	}
	if v := mat2.Vector(41); len(v) != mat2.Dim() {
		t.Fatalf("Vector past the fused buffer has dim %d", len(v))
	}
}

// Insert on a released space must link new vertices well enough that a
// beam search finds them — the §IX dynamic-update path with no fused
// buffer resident.
func TestInsertOnReleasedSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	objs := make([]vec.Multi, 200)
	for i := range objs {
		objs[i] = vec.Multi{vec.RandUnit(rng, 12), vec.RandUnit(rng, 6)}
	}
	w := vec.Weights{0.8, 0.6}
	st := vec.FlatFromMulti(objs)
	s := NewFusedSpaceFromStore(st, w)
	g, err := Ours(10, 3, 9).Build(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Release()
	// Append ten new objects to the shared store and link each one.
	for k := 0; k < 10; k++ {
		nv := vec.Multi{vec.RandUnit(rng, 12), vec.RandUnit(rng, 6)}
		id := int32(st.AppendMulti(nv))
		Insert(s, g, id, 10, 40)
		if g.Degree(id) == 0 {
			t.Fatalf("inserted vertex %d has no out-edges", id)
		}
		found := false
		for _, u := range beamSearchGraph(s, g, g.Seed, s.Vector(id), 40) {
			if u == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("beam search cannot reach inserted vertex %d", id)
		}
	}
}
