package graph

import (
	"math/rand"
	"testing"

	"must/internal/vec"
)

// NewCSR must preserve the builder adjacency list-for-list, report the
// CSR cost model, and stay overlay-free.
func TestNewCSRPreservesAdjacency(t *testing.T) {
	adj := [][]int32{{1, 2}, {2}, {}, {0, 1, 2}}
	g := NewCSR(adj, 3)
	if g.NumVertices() != 4 || g.NumEdges() != 6 || g.Seed != 3 {
		t.Fatalf("basic counts wrong: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	for v, want := range adj {
		got := g.Neighbors(int32(v))
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d: %v, want %v", v, got, want)
			}
		}
		if g.Degree(int32(v)) != len(want) {
			t.Fatalf("vertex %d degree %d, want %d", v, g.Degree(int32(v)), len(want))
		}
	}
	if g.OverlayVertices() != 0 {
		t.Fatal("fresh CSR graph reports overlay vertices")
	}
	// 4 B/edge + 4 B/(vertex+1) + seed: the whole point of the layout.
	want := int64(6*4 + 5*4 + 8)
	if g.SizeBytes() != want {
		t.Fatalf("SizeBytes = %d, want %d", g.SizeBytes(), want)
	}
}

// Neighbors must be a zero-copy view into the flat edge array.
func TestNeighborsZeroCopy(t *testing.T) {
	g := NewCSR([][]int32{{1, 2}, {0}, {0, 1}}, 0)
	a, b := g.Neighbors(0), g.Neighbors(2)
	offsets, edges := g.CSR()
	if &a[0] != &edges[offsets[0]] || &b[0] != &edges[offsets[2]] {
		t.Fatal("Neighbors returned a copy, not a CSR subslice")
	}
}

// SetNeighbors and EnsureVertices must leave the frozen core untouched,
// serve edits from the overlay, and Compact must fold everything back
// into a sealed CSR identical to the overlaid view.
func TestOverlayEditAndCompact(t *testing.T) {
	g := NewCSR([][]int32{{1}, {2}, {0}}, 0)
	g.EnsureVertices(4)
	if g.NumVertices() != 4 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if got := g.Neighbors(3); len(got) != 0 {
		t.Fatalf("appended vertex has edges: %v", got)
	}
	g.SetNeighbors(3, []int32{0, 2})
	g.SetNeighbors(1, []int32{2, 3})
	if g.OverlayVertices() != 2 {
		t.Fatalf("overlay vertices = %d, want 2", g.OverlayVertices())
	}
	if g.NumEdges() != 1+2+1+2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Untouched sealed vertices still read from the core.
	if n := g.Neighbors(0); len(n) != 1 || n[0] != 1 {
		t.Fatalf("vertex 0 = %v", n)
	}
	before := make([][]int32, g.NumVertices())
	for v := range before {
		before[v] = append([]int32(nil), g.Neighbors(int32(v))...)
	}
	g.Compact()
	if g.OverlayVertices() != 0 {
		t.Fatal("Compact left overlay vertices")
	}
	for v := range before {
		got := g.Neighbors(int32(v))
		if len(got) != len(before[v]) {
			t.Fatalf("vertex %d changed across Compact: %v vs %v", v, got, before[v])
		}
		for i := range got {
			if got[i] != before[v][i] {
				t.Fatalf("vertex %d changed across Compact: %v vs %v", v, got, before[v])
			}
		}
	}
	// Compacted topology is flat again: zero-copy views, CSR cost model.
	offsets, edges := g.CSR()
	if int(offsets[len(offsets)-1]) != len(edges) || len(offsets) != g.NumVertices()+1 {
		t.Fatal("compacted CSR arrays inconsistent")
	}
}

// Insert → Compact over a real built graph: the §IX dynamic-update path
// must keep every pre-insert neighbor reachable and survive compaction
// with identical topology.
func TestInsertThenCompactOverCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	objs := make([]vec.Multi, 300)
	for i := range objs {
		objs[i] = vec.Multi{vec.RandUnit(rng, 12), vec.RandUnit(rng, 6)}
	}
	st := vec.FlatFromMulti(objs)
	s := NewFusedSpaceFromStore(st, vec.Weights{0.8, 0.6})
	g, err := Ours(10, 3, 72).Build(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Release()
	for k := 0; k < 20; k++ {
		id := int32(st.AppendMulti(vec.Multi{vec.RandUnit(rng, 12), vec.RandUnit(rng, 6)}))
		Insert(s, g, id, 10, 40)
	}
	if g.OverlayVertices() == 0 {
		t.Fatal("inserts did not populate the overlay")
	}
	before := make([][]int32, g.NumVertices())
	for v := range before {
		before[v] = append([]int32(nil), g.Neighbors(int32(v))...)
	}
	g.Compact()
	for v := range before {
		got := g.Neighbors(int32(v))
		if len(got) != len(before[v]) {
			t.Fatalf("vertex %d changed across Compact", v)
		}
		for i := range got {
			if got[i] != before[v][i] {
				t.Fatalf("vertex %d changed across Compact", v)
			}
		}
	}
	// Every inserted vertex stays routable on the compacted graph.
	for id := int32(300); id < int32(g.NumVertices()); id++ {
		found := false
		for _, u := range beamSearchGraph(s, g, g.Seed, s.Vector(id), 40) {
			if u == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("beam search cannot reach inserted vertex %d after Compact", id)
		}
	}
}

func TestSnapshotCSRDoesNotMutate(t *testing.T) {
	g := NewCSR([][]int32{{1}, {2}, {0}}, 0)
	g.EnsureVertices(4)
	g.SetNeighbors(3, []int32{0, 2})
	g.SetNeighbors(1, []int32{2, 3})
	offsets, edges := g.SnapshotCSR()
	if g.OverlayVertices() != 2 {
		t.Fatalf("SnapshotCSR disturbed the overlay: %d vertices", g.OverlayVertices())
	}
	if len(offsets) != g.NumVertices()+1 || int(offsets[len(offsets)-1]) != len(edges) {
		t.Fatal("snapshot CSR arrays inconsistent")
	}
	// The snapshot must equal what a mutating Compact+CSR produces.
	co, ce := g.CSR()
	if g.OverlayVertices() != 0 {
		t.Fatal("CSR left overlay vertices")
	}
	if len(co) != len(offsets) || len(ce) != len(edges) {
		t.Fatalf("snapshot differs from compacted: %d/%d offsets, %d/%d edges",
			len(offsets), len(co), len(edges), len(ce))
	}
	for i := range co {
		if co[i] != offsets[i] {
			t.Fatalf("offset %d: snapshot %d, compacted %d", i, offsets[i], co[i])
		}
	}
	for i := range ce {
		if ce[i] != edges[i] {
			t.Fatalf("edge %d: snapshot %d, compacted %d", i, edges[i], ce[i])
		}
	}
	// Fully sealed: the live arrays come back without copying.
	o2, e2 := g.SnapshotCSR()
	if &o2[0] != &co[0] || &e2[0] != &ce[0] {
		t.Fatal("sealed SnapshotCSR copied the live arrays")
	}
}
