package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: after any sequence of inserts, the neighbor list is sorted by
// descending IP, duplicate-free, within capacity, and contains the
// highest-IP items ever offered.
func TestNeighborListInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(8)
		l := newNeighborList(capacity)
		type offer struct {
			id int32
			ip float32
		}
		var offers []offer
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			o := offer{id: int32(rng.Intn(20)), ip: float32(rng.Float64())}
			// Keep the first IP offered per id: duplicates are rejected
			// by id regardless of the new IP.
			dup := false
			for _, prev := range offers {
				if prev.id == o.id {
					dup = true
					break
				}
			}
			if !dup {
				offers = append(offers, o)
			}
			l.insert(o.id, o.ip)
		}
		// Sorted, unique, bounded.
		if len(l.ids) > capacity || len(l.ids) != len(l.ips) {
			return false
		}
		seen := map[int32]bool{}
		for i := range l.ids {
			if seen[l.ids[i]] {
				return false
			}
			seen[l.ids[i]] = true
			if i > 0 && l.ips[i] > l.ips[i-1] {
				return false
			}
		}
		// The worst kept IP must be at least the (capacity)-th best
		// offered IP (first-offer-per-id semantics).
		if len(l.ids) == capacity {
			better := 0
			for _, o := range offers {
				if o.ip > l.worstIP() {
					better++
				}
			}
			// Everything strictly better than the worst kept must be kept.
			if better > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}
