package graph

import (
	"math/rand"
	"testing"

	"must/internal/vec"
)

func TestBeamSearchVectorFindsNearest(t *testing.T) {
	s := testSpace(600, 16, 6, 21)
	g, err := Ours(16, 3, 22).Build(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	hits := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		// Data-like queries: perturbations of stored vectors, the regime
		// proximity graphs are built for.
		q := vec.AddGaussianNoise(rng, s.Vector(int32(rng.Intn(s.Len()))), 0.3)
		// Exact nearest vertex.
		best := int32(0)
		bestIP := s.IPTo(0, q)
		for v := 1; v < s.Len(); v++ {
			if ip := s.IPTo(int32(v), q); ip > bestIP {
				bestIP = ip
				best = int32(v)
			}
		}
		visited := beamSearchGraph(s, g, g.Seed, q, 40)
		for _, u := range visited {
			if u == best {
				hits++
				break
			}
		}
	}
	if hits < trials*8/10 {
		t.Errorf("beam search found the exact nearest vertex in %d/%d trials", hits, trials)
	}
}

func TestBeamSearchVisitOrderStartsAtSeed(t *testing.T) {
	s := testSpace(100, 8, 2, 24)
	g, err := Ours(8, 2, 25).Build(s)
	if err != nil {
		t.Fatal(err)
	}
	visited := beamSearchGraph(s, g, g.Seed, s.Vector(3), 10)
	if len(visited) == 0 || visited[0] != g.Seed {
		t.Errorf("visit order must start at the seed, got %v", visited)
	}
	// No duplicates in visit order.
	seen := map[int32]bool{}
	for _, v := range visited {
		if seen[v] {
			t.Fatalf("vertex %d visited twice", v)
		}
		seen[v] = true
	}
}

func TestBeamSearchDegenerateBeam(t *testing.T) {
	s := testSpace(50, 8, 2, 26)
	g, err := Ours(6, 2, 27).Build(s)
	if err != nil {
		t.Fatal(err)
	}
	// beam < 1 is clamped to 1: pure greedy descent, still terminates.
	visited := beamSearchGraph(s, g, g.Seed, s.Vector(7), 0)
	if len(visited) == 0 {
		t.Fatal("greedy descent visited nothing")
	}
}

func TestBeamSearchWiderBeamVisitsMore(t *testing.T) {
	s := testSpace(400, 12, 4, 28)
	g, err := Ours(12, 3, 29).Build(s)
	if err != nil {
		t.Fatal(err)
	}
	narrow := beamSearchGraph(s, g, g.Seed, s.Vector(5), 4)
	wide := beamSearchGraph(s, g, g.Seed, s.Vector(5), 64)
	if len(wide) <= len(narrow) {
		t.Errorf("wider beam visited %d vertices, narrow visited %d", len(wide), len(narrow))
	}
}
