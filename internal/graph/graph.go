package graph

import "sort"

// Graph is a directed proximity graph over a Space, stored in CSR
// (compressed sparse row) form: the out-neighbors of sealed vertex v are
// edges[offsets[v]:offsets[v+1]], one flat int32 array for the whole
// graph. Seed is the fixed start vertex for searches (component ④).
//
// CSR is the canonical representation of a built graph — every builder
// seals its working [][]int32 adjacency through NewCSR — because it costs
// 4 bytes per edge plus 4 bytes per vertex of offsets, with O(1) slice
// headers in total, where the slice-of-slices layout paid a 24-byte
// header and a separate allocation per vertex and scattered neighbor
// lists across the heap. Routing reads neighbors as zero-copy subslices
// of one array, which the hardware prefetcher handles far better than a
// pointer chase per hop.
//
// Incremental inserts (§IX) do not mutate the frozen core. The first
// topology edit allocates a small append-overlay: overlay[v], when
// non-nil, replaces v's CSR list, and vertices appended after sealing
// live only in the overlay. Compact folds the overlay back into a fresh
// CSR core; the index layer calls it once the overlay grows past a small
// fraction of the graph, so steady state is always the flat form.
//
// A Graph is safe for concurrent readers; SetNeighbors, EnsureVertices
// and Compact must be serialized with readers by the caller (the Engine
// holds its write lock across inserts).
type Graph struct {
	// offsets has one entry per sealed vertex plus a terminator;
	// offsets[v+1]-offsets[v] is v's out-degree.
	offsets []uint32
	// edges is the concatenation of all sealed adjacency lists.
	edges []int32
	// overlay, when non-nil, has length n; a non-nil overlay[v] overrides
	// the CSR list of v (and is the only storage for vertices ≥ the
	// sealed count).
	overlay [][]int32
	// overlaid counts sealed vertices whose list has been overridden;
	// appended vertices are counted separately as n − sealed.
	overlaid int
	// n is the total vertex count: sealed vertices plus appended ones.
	n int

	// Seed is the fixed routing entry point.
	Seed int32
}

// NewCSR seals a builder's [][]int32 adjacency into the canonical CSR
// form. The input lists are copied into the flat edge array; the caller
// may discard them afterwards.
func NewCSR(adj [][]int32, seed int32) *Graph {
	total := 0
	for _, nbrs := range adj {
		total += len(nbrs)
	}
	g := &Graph{
		offsets: make([]uint32, len(adj)+1),
		edges:   make([]int32, 0, total),
		n:       len(adj),
		Seed:    seed,
	}
	for v, nbrs := range adj {
		g.edges = append(g.edges, nbrs...)
		g.offsets[v+1] = uint32(len(g.edges))
	}
	return g
}

// NewCSRParts wraps already-flat CSR arrays (e.g. decoded from an index
// file) without copying. offsets must have one entry per vertex plus a
// terminator equal to len(edges), and must be non-decreasing; the loader
// validates this before calling.
func NewCSRParts(offsets []uint32, edges []int32, seed int32) *Graph {
	return &Graph{offsets: offsets, edges: edges, n: len(offsets) - 1, Seed: seed}
}

// sealed returns the number of vertices in the frozen CSR core.
func (g *Graph) sealed() int { return len(g.offsets) - 1 }

// NumVertices returns the vertex count (sealed plus appended).
func (g *Graph) NumVertices() int { return g.n }

// Neighbors returns v's out-neighbor list as a zero-copy view: a
// subslice of the flat edge array for sealed vertices, the overlay list
// for edited or appended ones. Callers must not mutate or append to the
// returned slice.
func (g *Graph) Neighbors(v int32) []int32 {
	if g.overlay != nil {
		if nbrs := g.overlay[v]; nbrs != nil {
			return nbrs
		}
		if int(v) >= g.sealed() {
			return nil
		}
	}
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}

// Degree returns v's out-degree.
func (g *Graph) Degree(v int32) int {
	if g.overlay != nil {
		if nbrs := g.overlay[v]; nbrs != nil || int(v) >= g.sealed() {
			return len(nbrs)
		}
	}
	return int(g.offsets[v+1] - g.offsets[v])
}

// SetNeighbors replaces v's out-neighbor list. The frozen CSR core is
// never edited in place: the new list lands in the overlay (allocated on
// first use), and the caller transfers ownership of nbrs. v must be a
// valid vertex (grow the graph first with EnsureVertices).
func (g *Graph) SetNeighbors(v int32, nbrs []int32) {
	if g.overlay == nil {
		g.overlay = make([][]int32, g.n)
	}
	if nbrs == nil {
		nbrs = []int32{}
	}
	if g.overlay[v] == nil && int(v) < g.sealed() {
		g.overlaid++
	}
	g.overlay[v] = nbrs
}

// EnsureVertices grows the graph to at least n vertices; new vertices
// start with no edges and live in the overlay until the next Compact.
func (g *Graph) EnsureVertices(n int) {
	if n <= g.n {
		return
	}
	if g.overlay == nil {
		g.overlay = make([][]int32, n)
	} else {
		for len(g.overlay) < n {
			g.overlay = append(g.overlay, nil)
		}
	}
	g.n = n
}

// OverlayVertices reports how many vertices are currently served from
// the overlay (edited lists plus appended vertices). 0 means the graph
// is fully sealed. O(1) — the index layer polls it after every insert to
// decide when to Compact.
func (g *Graph) OverlayVertices() int {
	if g.overlay == nil {
		return 0
	}
	return g.overlaid + (g.n - g.sealed())
}

// Compact folds the overlay back into a fresh CSR core covering every
// vertex, restoring the frozen flat form after a burst of incremental
// inserts. It is a no-op on a fully sealed graph. Neighbor views
// obtained before Compact remain valid (the old arrays are unshared) but
// stale; callers re-read through Neighbors.
func (g *Graph) Compact() {
	if g.overlay == nil {
		return
	}
	g.offsets, g.edges = g.compacted()
	g.overlay = nil
	g.overlaid = 0
}

// compacted builds fresh flat arrays covering every vertex, overlay
// folded in, without touching g.
func (g *Graph) compacted() (offsets []uint32, edges []int32) {
	offsets = make([]uint32, g.n+1)
	total := 0
	for v := 0; v < g.n; v++ {
		total += g.Degree(int32(v))
	}
	edges = make([]int32, 0, total)
	for v := 0; v < g.n; v++ {
		edges = append(edges, g.Neighbors(int32(v))...)
		offsets[v+1] = uint32(len(edges))
	}
	return offsets, edges
}

// CSR returns the graph's flat arrays, compacting any overlay first so
// the result covers every vertex. The returned slices are the live
// backing arrays — callers must treat them as read-only. CSR mutates
// the graph; use SnapshotCSR when readers may be running concurrently.
func (g *Graph) CSR() (offsets []uint32, edges []int32) {
	g.Compact()
	return g.offsets, g.edges
}

// SnapshotCSR returns flat arrays covering every vertex without
// mutating the graph: when an overlay exists the compacted form is
// built into fresh slices and g keeps its overlay. Safe to call
// concurrently with readers (Neighbors/Degree) under a lock that
// excludes writers — which is exactly the engine-snapshot case, where
// serialization runs under the engine's read lock alongside searches.
func (g *Graph) SnapshotCSR() (offsets []uint32, edges []int32) {
	if g.overlay == nil {
		return g.offsets, g.edges
	}
	return g.compacted()
}

// NumEdges returns the total directed edge count.
func (g *Graph) NumEdges() int {
	if g.overlay == nil {
		return len(g.edges)
	}
	total := 0
	for v := 0; v < g.n; v++ {
		total += g.Degree(int32(v))
	}
	return total
}

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.n)
}

// MaxDegree returns the maximum out-degree.
func (g *Graph) MaxDegree() int {
	m := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(int32(v)); d > m {
			m = d
		}
	}
	return m
}

// SizeBytes reports the in-memory topology size: 4 bytes per edge plus 4
// bytes per vertex of CSR offsets, plus the per-vertex slice headers and
// edge payload of any live overlay. For a sealed graph this is the
// ~4 B/edge + 4 B/vertex the Fig. 7 / Fig. 14 index-size reports count;
// the overlay term is 0 in steady state (Compact folds it away).
func (g *Graph) SizeBytes() int64 {
	total := int64(len(g.edges))*4 + int64(len(g.offsets))*4 + 8
	if g.overlay != nil {
		total += int64(len(g.overlay)) * 24 // slice headers
		for _, nbrs := range g.overlay {
			total += int64(len(nbrs)) * 4
		}
	}
	return total
}

// Reachable returns how many vertices BFS reaches from the seed.
func (g *Graph) Reachable() int {
	if g.n == 0 {
		return 0
	}
	visited := make([]bool, g.n)
	queue := []int32{g.Seed}
	visited[g.Seed] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if !visited[u] {
				visited[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	return count
}

// Quality measures graph quality as defined in Appendix H: the mean
// fraction of each vertex's top-γ exact nearest neighbors (by the space's
// IP) present in its adjacency list. To keep it affordable it samples
// `sample` vertices deterministically (stride sampling); sample ≤ 0 means
// every vertex. The candidate and truth buffers are hoisted out of the
// sample loop — at n vertices an O(n) slice and a γ-entry map per sample
// used to dominate the allocator.
func Quality(g *Graph, s *Space, gamma, sample int) float64 {
	n := s.Len()
	if n <= 1 {
		return 1
	}
	stride := 1
	if sample > 0 && sample < n {
		stride = n / sample
	}
	type cand struct {
		id int32
		ip float32
	}
	cands := make([]cand, 0, n-1)
	truth := make(map[int32]struct{}, gamma)
	var total float64
	var counted int
	for v := 0; v < n; v += stride {
		// Exact top-γ for vertex v, reusing the hoisted buffers.
		cands = cands[:0]
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			cands = append(cands, cand{int32(u), s.IP(int32(v), int32(u))})
		}
		k := gamma
		if k > len(cands) {
			k = len(cands)
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].ip > cands[j].ip })
		for id := range truth {
			delete(truth, id)
		}
		for _, c := range cands[:k] {
			truth[c.id] = struct{}{}
		}
		hits := 0
		for _, u := range g.Neighbors(int32(v)) {
			if _, ok := truth[u]; ok {
				hits++
			}
		}
		total += float64(hits) / float64(k)
		counted++
	}
	return total / float64(counted)
}

// neighborList is a fixed-capacity list of (id, ip) pairs kept sorted by
// descending IP, used by NNDescent and the selection components.
type neighborList struct {
	ids []int32
	ips []float32
	cap int
}

func newNeighborList(capacity int) *neighborList {
	return &neighborList{
		ids: make([]int32, 0, capacity),
		ips: make([]float32, 0, capacity),
		cap: capacity,
	}
}

// insert adds (id, ip) if the list has room or ip beats the current worst,
// keeping the list sorted and duplicate-free. It reports whether the list
// changed.
func (l *neighborList) insert(id int32, ip float32) bool {
	if len(l.ids) == l.cap && ip <= l.ips[len(l.ips)-1] {
		return false
	}
	// Reject duplicates.
	for _, existing := range l.ids {
		if existing == id {
			return false
		}
	}
	// Find insertion point (descending ips).
	pos := sort.Search(len(l.ips), func(i int) bool { return l.ips[i] < ip })
	if len(l.ids) < l.cap {
		l.ids = append(l.ids, 0)
		l.ips = append(l.ips, 0)
	} else {
		pos = min(pos, l.cap-1)
	}
	copy(l.ids[pos+1:], l.ids[pos:])
	copy(l.ips[pos+1:], l.ips[pos:])
	l.ids[pos] = id
	l.ips[pos] = ip
	return true
}

func (l *neighborList) worstIP() float32 {
	if len(l.ips) == 0 {
		return float32(-1 << 30)
	}
	return l.ips[len(l.ips)-1]
}

func (l *neighborList) full() bool { return len(l.ids) == l.cap }

// distFromIP converts an inner product into a squared Euclidean distance
// using the space's constant self-IP: ||a-b||² = 2·(selfIP − IP(a,b)).
func distFromIP(selfIP, ip float32) float32 { return 2 * (selfIP - ip) }
