package graph

import "sort"

// Graph is a directed proximity graph over a Space: Adj[v] lists v's
// out-neighbors, Seed is the fixed start vertex for searches (component ④).
type Graph struct {
	Adj  [][]int32
	Seed int32
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Adj) }

// NumEdges returns the total directed edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for _, n := range g.Adj {
		total += len(n)
	}
	return total
}

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if len(g.Adj) == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(len(g.Adj))
}

// MaxDegree returns the maximum out-degree.
func (g *Graph) MaxDegree() int {
	m := 0
	for _, n := range g.Adj {
		if len(n) > m {
			m = len(n)
		}
	}
	return m
}

// SizeBytes estimates the in-memory index size: 4 bytes per edge plus the
// per-vertex slice headers. Used by the Fig. 7 / Fig. 14 index-size
// reports.
func (g *Graph) SizeBytes() int64 {
	return int64(g.NumEdges())*4 + int64(len(g.Adj))*24 + 8
}

// Reachable returns how many vertices BFS reaches from the seed.
func (g *Graph) Reachable() int {
	if len(g.Adj) == 0 {
		return 0
	}
	visited := make([]bool, len(g.Adj))
	queue := []int32{g.Seed}
	visited[g.Seed] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Adj[v] {
			if !visited[u] {
				visited[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	return count
}

// Quality measures graph quality as defined in Appendix H: the mean
// fraction of each vertex's top-γ exact nearest neighbors (by the space's
// IP) present in its adjacency list. To keep it affordable it samples
// `sample` vertices deterministically (stride sampling); sample ≤ 0 means
// every vertex.
func Quality(g *Graph, s *Space, gamma, sample int) float64 {
	n := s.Len()
	if n <= 1 {
		return 1
	}
	stride := 1
	if sample > 0 && sample < n {
		stride = n / sample
	}
	type cand struct {
		id int32
		ip float32
	}
	var total float64
	var counted int
	for v := 0; v < n; v += stride {
		// Exact top-γ for vertex v.
		cands := make([]cand, 0, n-1)
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			cands = append(cands, cand{int32(u), s.IP(int32(v), int32(u))})
		}
		k := gamma
		if k > len(cands) {
			k = len(cands)
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].ip > cands[j].ip })
		truth := make(map[int32]struct{}, k)
		for _, c := range cands[:k] {
			truth[c.id] = struct{}{}
		}
		hits := 0
		for _, u := range g.Adj[v] {
			if _, ok := truth[u]; ok {
				hits++
			}
		}
		total += float64(hits) / float64(k)
		counted++
	}
	return total / float64(counted)
}

// neighborList is a fixed-capacity list of (id, ip) pairs kept sorted by
// descending IP, used by NNDescent and the selection components.
type neighborList struct {
	ids []int32
	ips []float32
	cap int
}

func newNeighborList(capacity int) *neighborList {
	return &neighborList{
		ids: make([]int32, 0, capacity),
		ips: make([]float32, 0, capacity),
		cap: capacity,
	}
}

// insert adds (id, ip) if the list has room or ip beats the current worst,
// keeping the list sorted and duplicate-free. It reports whether the list
// changed.
func (l *neighborList) insert(id int32, ip float32) bool {
	if len(l.ids) == l.cap && ip <= l.ips[len(l.ips)-1] {
		return false
	}
	// Reject duplicates.
	for _, existing := range l.ids {
		if existing == id {
			return false
		}
	}
	// Find insertion point (descending ips).
	pos := sort.Search(len(l.ips), func(i int) bool { return l.ips[i] < ip })
	if len(l.ids) < l.cap {
		l.ids = append(l.ids, 0)
		l.ips = append(l.ips, 0)
	} else {
		pos = min(pos, l.cap-1)
	}
	copy(l.ids[pos+1:], l.ids[pos:])
	copy(l.ips[pos+1:], l.ips[pos:])
	l.ids[pos] = id
	l.ips[pos] = ip
	return true
}

func (l *neighborList) worstIP() float32 {
	if len(l.ips) == 0 {
		return float32(-1 << 30)
	}
	return l.ips[len(l.ips)-1]
}

func (l *neighborList) full() bool { return len(l.ids) == l.cap }

// distFromIP converts an inner product into a squared Euclidean distance
// using the space's constant self-IP: ||a-b||² = 2·(selfIP − IP(a,b)).
func distFromIP(selfIP, ip float32) float32 { return 2 * (selfIP - ip) }
