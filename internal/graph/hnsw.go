package graph

import (
	"math"
	"math/rand"
	"sort"
)

// HNSWConfig parameterizes the Hierarchical Navigable Small World builder
// (Malkov & Yashunin, one of the §VIII-G competitors).
type HNSWConfig struct {
	// M is the per-layer degree bound; layer 0 allows 2M.
	M int
	// EfConstruction is the construction beam width.
	EfConstruction int
	// Seed drives level assignment.
	Seed int64
}

// BuildHNSW constructs an HNSW over the space and flattens it into the
// common Graph form: the layer-0 adjacency plus the top-layer entry point
// chain collapsed into the seed. The flattened graph is what MUST's joint
// search routes over, mirroring how the paper plugs competitor graphs into
// its search (§VIII-G).
func BuildHNSW(s *Space, cfg HNSWConfig) *Graph {
	n := s.Len()
	m := cfg.M
	if m <= 0 {
		m = 16
	}
	ef := cfg.EfConstruction
	if ef <= 0 {
		ef = 100
	}
	maxM0 := 2 * m
	ml := 1 / math.Log(float64(m))
	rng := rand.New(rand.NewSource(cfg.Seed))

	// layers[l][v] is v's adjacency at layer l; vertices exist at layers
	// 0..level[v].
	level := make([]int, n)
	maxLevel := 0
	for v := 0; v < n; v++ {
		l := int(-math.Log(rng.Float64()+1e-12) * ml)
		level[v] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	layers := make([]map[int32][]int32, maxLevel+1)
	for l := range layers {
		layers[l] = make(map[int32][]int32)
	}

	enter := int32(0)
	enterLevel := level[0]
	for l := 0; l <= level[0]; l++ {
		layers[l][0] = nil
	}

	// selectNeighbors is HNSW's heuristic: a cheap MRNG-style occlusion.
	selectNeighbors := func(v int32, cands []int32, limit int) []int32 {
		ordered := sortByIP(s, v, cands)
		out := make([]int32, 0, limit)
		for _, c := range ordered {
			if len(out) >= limit {
				break
			}
			ok := true
			for _, u := range out {
				if s.IP(u, c.id) >= c.ip {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, c.id)
			}
		}
		// HNSW keeps discarded candidates if the list is underfull.
		if len(out) < limit {
			present := make(map[int32]struct{}, len(out))
			for _, u := range out {
				present[u] = struct{}{}
			}
			for _, c := range ordered {
				if len(out) >= limit {
					break
				}
				if _, ok := present[c.id]; !ok {
					out = append(out, c.id)
					present[c.id] = struct{}{}
				}
			}
		}
		return out
	}

	searchLayer := func(query int32, entry int32, width int, l int) []int32 {
		adj := layers[l]
		type entryT struct {
			id      int32
			ip      float32
			visited bool
		}
		pool := []entryT{{entry, s.IP(entry, query), false}}
		seen := map[int32]struct{}{entry: {}}
		insert := func(id int32, ip float32) {
			if len(pool) == width && ip <= pool[len(pool)-1].ip {
				return
			}
			pos := sort.Search(len(pool), func(i int) bool { return pool[i].ip < ip })
			if len(pool) < width {
				pool = append(pool, entryT{})
			} else {
				pos = min(pos, width-1)
			}
			copy(pool[pos+1:], pool[pos:])
			pool[pos] = entryT{id, ip, false}
		}
		for {
			idx := -1
			for i := range pool {
				if !pool[i].visited {
					idx = i
					break
				}
			}
			if idx == -1 {
				break
			}
			pool[idx].visited = true
			for _, u := range adj[pool[idx].id] {
				if _, ok := seen[u]; ok {
					continue
				}
				seen[u] = struct{}{}
				insert(u, s.IP(u, query))
			}
		}
		out := make([]int32, len(pool))
		for i, e := range pool {
			out[i] = e.id
		}
		return out
	}

	for v := 1; v < n; v++ {
		vid := int32(v)
		lv := level[v]
		cur := enter
		// Greedy descent through layers above lv.
		for l := enterLevel; l > lv; l-- {
			improved := true
			for improved {
				improved = false
				best := s.IP(cur, vid)
				for _, u := range layers[l][cur] {
					if ip := s.IP(u, vid); ip > best {
						best = ip
						cur = u
						improved = true
					}
				}
			}
		}
		// Insert at layers min(lv, enterLevel)..0.
		top := lv
		if top > enterLevel {
			top = enterLevel
		}
		for l := top; l >= 0; l-- {
			cands := searchLayer(vid, cur, ef, l)
			limit := m
			if l == 0 {
				limit = maxM0
			}
			neighbors := selectNeighbors(vid, cands, m)
			layers[l][vid] = neighbors
			for _, u := range neighbors {
				lst := append(layers[l][u], vid)
				if len(lst) > limit {
					lst = selectNeighbors(u, lst, limit)
				}
				layers[l][u] = lst
			}
			if len(cands) > 0 {
				cur = cands[0]
			}
		}
		// Register empty adjacency on the extra layers this vertex owns
		// and possibly promote it to the new entry point.
		if lv > enterLevel {
			for l := enterLevel + 1; l <= lv; l++ {
				layers[l][vid] = nil
			}
			enter = vid
			enterLevel = lv
		}
	}

	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		adj[v] = layers[0][int32(v)]
	}
	return NewCSR(adj, enter)
}
