package graph

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// The five fine-grained components of the index-construction pipeline
// (Algorithm 1, §VII-A). Any proximity graph decomposable into these
// components can be re-assembled on the pipeline; the paper's "Ours" index
// is NNDescent initialization + neighbors-of-neighbors candidates + MRNG
// selection + centroid seed + BFS connectivity.

// Initializer builds the initial neighbor lists (component ①).
type Initializer interface {
	// Init returns an initial adjacency with at most gamma neighbors per
	// vertex.
	Init(s *Space, gamma int) [][]int32
	// InitName labels the component in reports.
	InitName() string
}

// CandidateAcquirer produces candidate final neighbors per vertex from the
// initial graph (component ②).
type CandidateAcquirer interface {
	// Candidates returns candidate neighbor IDs for vertex v, excluding v
	// itself. The returned slice may be in any order and may contain no
	// duplicates.
	Candidates(s *Space, adj [][]int32, v int32, scratch *candScratch) []int32
	// CandidateName labels the component in reports.
	CandidateName() string
}

// Selector filters candidates into the final neighbor list (component ③).
type Selector interface {
	// Select returns the final neighbors of v, at most gamma of them,
	// chosen from cands.
	Select(s *Space, v int32, cands []int32, gamma int) []int32
	// SelectName labels the component in reports.
	SelectName() string
}

// SeedStrategy chooses the fixed search entry point (component ④).
type SeedStrategy interface {
	Seed(s *Space, rng *rand.Rand) int32
	SeedName() string
}

// Connectivity post-processes the graph so every vertex is reachable from
// the seed (component ⑤).
type Connectivity interface {
	// Ensure may add edges to adj in place.
	Ensure(s *Space, adj [][]int32, seed int32)
	// ConnectName labels the component in reports.
	ConnectName() string
}

// ---------------------------------------------------------------------------
// Component ①: initialization.

// NNDescent iteratively refines random neighbor lists by joining
// neighbors-of-neighbors (Algorithm 1, lines 2–8), augmented with the
// classic reverse-edge join that NNDescent uses to accelerate convergence.
// Iters is the ε of the paper (default 3, Tab. XI).
type NNDescent struct {
	// Iters is the maximum number of refinement iterations ε.
	Iters int
	// Seed drives the random initial lists.
	Seed int64
}

// InitName implements Initializer.
func (d NNDescent) InitName() string { return "NNDescent" }

// Init implements Initializer.
func (d NNDescent) Init(s *Space, gamma int) [][]int32 {
	n := s.Len()
	iters := d.Iters
	if iters <= 0 {
		iters = 3
	}
	// Initial random lists, split so the expensive part parallelizes
	// without perturbing the output: the candidate IDs are drawn from one
	// sequential RNG (bit-identical to a fully serial build — a duplicate
	// or self draw consumes exactly one RNG value either way), then the
	// inner products and sorted-list construction run across workers, each
	// owning its vertex's list.
	rng := rand.New(rand.NewSource(d.Seed))
	draws := make([][]int32, n)
	for v := 0; v < n; v++ {
		want := gamma
		if want > n-1 {
			want = n - 1
		}
		picked := draws[v][:0]
	draw:
		for len(picked) < want {
			u := int32(rng.Intn(n))
			if u == int32(v) {
				continue
			}
			for _, p := range picked {
				if p == u {
					continue draw
				}
			}
			picked = append(picked, u)
		}
		draws[v] = picked
	}
	lists := make([]*neighborList, n)
	parallelVertices(n, func(v int) {
		l := newNeighborList(gamma)
		for _, u := range draws[v] {
			l.insert(u, s.IP(int32(v), u))
		}
		lists[v] = l
	})

	for iter := 0; iter < iters; iter++ {
		// Snapshot the current lists so the forward join is deterministic
		// under parallelism: every worker reads the snapshot and writes
		// only its own vertex's list.
		snapshot := make([][]int32, n)
		for v := range lists {
			snapshot[v] = append([]int32(nil), lists[v].ids...)
		}
		var changed int64
		parallelVertices(n, func(v int) {
			l := lists[v]
			for _, nb := range snapshot[v] {
				for _, u := range snapshot[nb] {
					if u == int32(v) {
						continue
					}
					if l.full() {
						// Cheap pre-check before the IP: the insert will
						// reject anything at or below the worst entry.
						ip := s.IP(int32(v), u)
						if ip <= l.worstIP() {
							continue
						}
						if l.insert(u, ip) {
							atomic.AddInt64(&changed, 1)
						}
						continue
					}
					if l.insert(u, s.IP(int32(v), u)) {
						atomic.AddInt64(&changed, 1)
					}
				}
			}
		})
		// Reverse join: offer each directed edge's source to its target.
		// Built single-threaded (cheap), applied per owner in parallel.
		rev := make([][]int32, n)
		for v := 0; v < n; v++ {
			for _, u := range lists[v].ids {
				rev[u] = append(rev[u], int32(v))
			}
		}
		parallelVertices(n, func(v int) {
			l := lists[v]
			for _, u := range rev[v] {
				if u == int32(v) {
					continue
				}
				if l.full() {
					ip := s.IP(int32(v), u)
					if ip <= l.worstIP() {
						continue
					}
					if l.insert(u, ip) {
						atomic.AddInt64(&changed, 1)
					}
					continue
				}
				if l.insert(u, s.IP(int32(v), u)) {
					atomic.AddInt64(&changed, 1)
				}
			}
		})
		if changed == 0 {
			break
		}
	}

	adj := make([][]int32, n)
	for v := range lists {
		adj[v] = lists[v].ids
	}
	return adj
}

// RandomInit assigns gamma random neighbors per vertex; the degenerate
// baseline initializer.
type RandomInit struct {
	Seed int64
}

// InitName implements Initializer.
func (RandomInit) InitName() string { return "Random" }

// Init implements Initializer.
func (r RandomInit) Init(s *Space, gamma int) [][]int32 {
	n := s.Len()
	rng := rand.New(rand.NewSource(r.Seed))
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		l := newNeighborList(gamma)
		for len(l.ids) < gamma && len(l.ids) < n-1 {
			u := int32(rng.Intn(n))
			if u != int32(v) {
				l.insert(u, s.IP(int32(v), u))
			}
		}
		adj[v] = l.ids
	}
	return adj
}

// ---------------------------------------------------------------------------
// Component ②: candidate acquisition.

// candScratch holds reusable per-worker buffers for candidate expansion.
type candScratch struct {
	seen map[int32]struct{}
	out  []int32
}

func newCandScratch() *candScratch {
	return &candScratch{seen: make(map[int32]struct{}, 1024)}
}

func (c *candScratch) reset() {
	for k := range c.seen {
		delete(c.seen, k)
	}
	c.out = c.out[:0]
}

func (c *candScratch) add(id int32) {
	if _, ok := c.seen[id]; ok {
		return
	}
	c.seen[id] = struct{}{}
	c.out = append(c.out, id)
}

// NeighborsOfNeighbors gathers each vertex's initial neighbors and their
// neighbors (Algorithm 1, lines 9–10).
type NeighborsOfNeighbors struct{}

// CandidateName implements CandidateAcquirer.
func (NeighborsOfNeighbors) CandidateName() string { return "NoN" }

// Candidates implements CandidateAcquirer.
func (NeighborsOfNeighbors) Candidates(s *Space, adj [][]int32, v int32, scratch *candScratch) []int32 {
	scratch.reset()
	for _, nb := range adj[v] {
		if nb != v {
			scratch.add(nb)
		}
		for _, u := range adj[nb] {
			if u != v {
				scratch.add(u)
			}
		}
	}
	return scratch.out
}

// SearchCandidates routes a beam search from the seed toward each vertex
// and uses the visited set as candidates — the NSG-style acquisition.
type SearchCandidates struct {
	// Beam is the search beam width (NSG's L); candidates are the visited
	// vertices of the search.
	Beam int
	// SeedVertex is the routing start; Medoid of the space if negative.
	SeedVertex int32
}

// CandidateName implements CandidateAcquirer.
func (SearchCandidates) CandidateName() string { return "Search" }

// Candidates implements CandidateAcquirer.
func (c SearchCandidates) Candidates(s *Space, adj [][]int32, v int32, scratch *candScratch) []int32 {
	seed := c.SeedVertex
	if seed < 0 {
		seed = 0
	}
	visited := beamSearchVertex(s, adj, seed, v, c.Beam)
	scratch.reset()
	for _, u := range visited {
		if u != v {
			scratch.add(u)
		}
	}
	// Also keep the initial neighbors: the search may not revisit them.
	for _, u := range adj[v] {
		if u != v {
			scratch.add(u)
		}
	}
	return scratch.out
}

// ---------------------------------------------------------------------------
// Component ③: neighbor selection.

// MRNG applies the monotonic relative neighborhood rule of Algorithm 1,
// lines 11–17: a candidate v joins N(o) only if it is closer to o than to
// every already-selected neighbor (IP(ô,v̂) > IP(û,v̂)), which yields the
// ≥60° angular spread of Lemma 2.
type MRNG struct{}

// SelectName implements Selector.
func (MRNG) SelectName() string { return "MRNG" }

// Select implements Selector.
func (MRNG) Select(s *Space, v int32, cands []int32, gamma int) []int32 {
	ordered := sortByIP(s, v, cands)
	out := make([]int32, 0, gamma)
	for _, c := range ordered {
		if len(out) >= gamma {
			break
		}
		ipVC := s.IP(v, c.id)
		occluded := false
		for _, u := range out {
			if s.IP(u, c.id) >= ipVC {
				occluded = true
				break
			}
		}
		if !occluded {
			out = append(out, c.id)
		}
	}
	return out
}

// TopK keeps the gamma closest candidates with no diversification — the
// KGraph-style selector.
type TopK struct{}

// SelectName implements Selector.
func (TopK) SelectName() string { return "TopK" }

// Select implements Selector.
func (TopK) Select(s *Space, v int32, cands []int32, gamma int) []int32 {
	ordered := sortByIP(s, v, cands)
	if len(ordered) > gamma {
		ordered = ordered[:gamma]
	}
	out := make([]int32, len(ordered))
	for i, c := range ordered {
		out[i] = c.id
	}
	return out
}

// AngleSelector keeps a candidate only if the angle it forms at v with
// every selected neighbor is at least MinCos⁻¹ — the NSSG-style relaxed
// diversification. MinCos is the cosine of the minimum allowed angle
// (NSSG's default ~60° → 0.5).
type AngleSelector struct {
	MinCos float32
}

// SelectName implements Selector.
func (AngleSelector) SelectName() string { return "Angle" }

// Select implements Selector.
func (a AngleSelector) Select(s *Space, v int32, cands []int32, gamma int) []int32 {
	minCos := a.MinCos
	if minCos == 0 {
		minCos = 0.5
	}
	ordered := sortByIP(s, v, cands)
	self := s.SelfIP()
	out := make([]int32, 0, gamma)
	for _, c := range ordered {
		if len(out) >= gamma {
			break
		}
		dVC := distFromIP(self, c.ip)
		ok := true
		for _, u := range out {
			dVU := distFromIP(self, s.IP(v, u))
			dUC := distFromIP(self, s.IP(u, c.id))
			// cos ∠(c, v, u) from the law of cosines on squared
			// distances: cos = (dVC + dVU − dUC) / (2·√(dVC·dVU)).
			denom := 2 * sqrt32(dVC*dVU)
			if denom <= 0 {
				ok = false
				break
			}
			cos := (dVC + dVU - dUC) / denom
			if cos > minCos {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c.id)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Component ④: seed preprocessing.

// CentroidSeed picks the vertex nearest the dataset centroid (Algorithm 1,
// line 18).
type CentroidSeed struct{}

// SeedName implements SeedStrategy.
func (CentroidSeed) SeedName() string { return "Centroid" }

// Seed implements SeedStrategy.
func (CentroidSeed) Seed(s *Space, _ *rand.Rand) int32 { return s.Medoid() }

// RandomSeed picks a uniformly random vertex.
type RandomSeed struct{}

// SeedName implements SeedStrategy.
func (RandomSeed) SeedName() string { return "Random" }

// Seed implements SeedStrategy.
func (RandomSeed) Seed(s *Space, rng *rand.Rand) int32 { return int32(rng.Intn(s.Len())) }

// ---------------------------------------------------------------------------
// Component ⑤: connectivity.

// BFSRepair breadth-first-searches from the seed and, whenever unreached
// vertices remain, connects the nearest reached vertex to one of them and
// resumes (Algorithm 1, line 19).
type BFSRepair struct{}

// ConnectName implements Connectivity.
func (BFSRepair) ConnectName() string { return "BFS" }

// Ensure implements Connectivity.
func (BFSRepair) Ensure(s *Space, adj [][]int32, seed int32) {
	n := len(adj)
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	push := func(v int32) {
		visited[v] = true
		queue = append(queue, v)
	}
	push(seed)
	for head := 0; ; {
		for head < len(queue) {
			v := queue[head]
			head++
			for _, u := range adj[v] {
				if !visited[u] {
					push(u)
				}
			}
		}
		if len(queue) == n {
			return
		}
		// Pick the first unvisited vertex and bridge to it from its
		// nearest visited vertex.
		var orphan int32 = -1
		for v := 0; v < n; v++ {
			if !visited[v] {
				orphan = int32(v)
				break
			}
		}
		best := seed
		bestIP := float32(-1 << 30)
		for _, v := range queue {
			if ip := s.IP(v, orphan); ip > bestIP {
				bestIP = ip
				best = v
			}
		}
		adj[best] = append(adj[best], orphan)
		push(orphan)
	}
}

// NoConnectivity leaves the graph as-is (KGraph has no repair step).
type NoConnectivity struct{}

// ConnectName implements Connectivity.
func (NoConnectivity) ConnectName() string { return "None" }

// Ensure implements Connectivity.
func (NoConnectivity) Ensure(*Space, [][]int32, int32) {}

// ---------------------------------------------------------------------------
// Shared helpers.

type ipCand struct {
	id int32
	ip float32
}

// sortByIP returns cands with their IPs to v, sorted by descending IP.
func sortByIP(s *Space, v int32, cands []int32) []ipCand {
	out := make([]ipCand, 0, len(cands))
	for _, c := range cands {
		if c == v {
			continue
		}
		out = append(out, ipCand{c, s.IP(v, c)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ip != out[j].ip {
			return out[i].ip > out[j].ip
		}
		return out[i].id < out[j].id // deterministic tie-break
	})
	return out
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(x)))
}

// buildWorkers overrides the worker count of every parallel build stage;
// 0 means GOMAXPROCS. It exists so tests can pin the build to one worker
// and assert that parallel and sequential construction produce identical
// graphs (every parallel stage writes only vertex-owned state, so the
// output is worker-count-independent by design).
var buildWorkers atomic.Int32

// SetBuildWorkers caps the number of workers used by graph construction
// (0 restores the GOMAXPROCS default) and returns the previous setting.
// It applies process-wide to subsequent builds; builds already running are
// unaffected.
func SetBuildWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(buildWorkers.Swap(int32(n)))
}

// parallelVertices runs fn(v) for every vertex across GOMAXPROCS workers
// (or the SetBuildWorkers override), chunked to amortize scheduling.
func parallelVertices(n int, fn func(v int)) {
	workers := int(buildWorkers.Load())
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for v := 0; v < n; v++ {
			fn(v)
		}
		return
	}
	const chunk = 64
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&next, chunk)) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for v := start; v < end; v++ {
					fn(v)
				}
			}
		}()
	}
	wg.Wait()
}
