// Package graph implements the proximity-graph substrate of the MUST
// reproduction: the component-based index-construction pipeline of
// Algorithm 1 (§VII-A) and the comparison graph algorithms of §VIII-G
// (KGraph, NSG, NSSG, HNSW, Vamana, HCNNG), all operating on a common
// vector Space so they can be built over fused concatenated vectors (MUST)
// or single-modality vectors (MR).
package graph

import (
	"fmt"

	"must/internal/vec"
)

// Space is the set of vectors a graph is built over. For the fused index
// the vectors are weighted concatenations [ω_0·ϕ_0(o_0), ...] (§VI); for a
// per-modality index they are that modality's vectors. Similarity is the
// inner product.
//
// All vectors in a Space must have the same self-inner-product (true for
// weighted concatenations of unit vectors, where IP(ô,ô) = Σω_i²); several
// components rely on this to convert between IPs, distances and angles.
type Space struct {
	data   [][]float32
	selfIP float32
}

// NewSpace wraps the given vectors. It panics if vectors is empty or
// dimensions are inconsistent, which would indicate a bug in the caller.
func NewSpace(vectors [][]float32) *Space {
	if len(vectors) == 0 {
		panic("graph: empty space")
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			panic(fmt.Sprintf("graph: vector %d has dim %d, want %d", i, len(v), d))
		}
	}
	return &Space{data: vectors, selfIP: vec.Dot(vectors[0], vectors[0])}
}

// NewFusedSpace builds the fused space over multi-vector objects under the
// given weights: each object becomes its weighted concatenation.
func NewFusedSpace(objects []vec.Multi, w vec.Weights) *Space {
	data := make([][]float32, len(objects))
	for i, o := range objects {
		data[i] = vec.WeightedConcat(w, o)
	}
	return NewSpace(data)
}

// NewModalitySpace builds a single-modality space over multi-vector
// objects, as MR's per-modality indexes require.
func NewModalitySpace(objects []vec.Multi, modality int) *Space {
	data := make([][]float32, len(objects))
	for i, o := range objects {
		data[i] = o[modality]
	}
	return NewSpace(data)
}

// Len returns the number of vectors.
func (s *Space) Len() int { return len(s.data) }

// Dim returns the vector dimension.
func (s *Space) Dim() int { return len(s.data[0]) }

// IP returns the inner product between stored vectors i and j.
func (s *Space) IP(i, j int32) float32 {
	return vec.Dot(s.data[i], s.data[j])
}

// IPTo returns the inner product between stored vector i and an external
// query vector q of the same dimension.
func (s *Space) IPTo(i int32, q []float32) float32 {
	return vec.Dot(s.data[i], q)
}

// Vector returns the stored vector i (shared, not copied).
func (s *Space) Vector(i int32) []float32 { return s.data[i] }

// SelfIP returns IP(v, v), identical for every vector in the space.
func (s *Space) SelfIP() float32 { return s.selfIP }

// Centroid returns the (unnormalized) mean of all vectors, used by the
// seed-preprocessing component (④).
func (s *Space) Centroid() []float32 {
	c := make([]float32, s.Dim())
	for _, v := range s.data {
		for i, x := range v {
			c[i] += x
		}
	}
	inv := 1 / float32(s.Len())
	for i := range c {
		c[i] *= inv
	}
	return c
}

// Medoid returns the index of the vector with the highest inner product to
// the centroid — the fixed seed of component ④ (Algorithm 1, line 18).
func (s *Space) Medoid() int32 {
	c := s.Centroid()
	best := int32(0)
	bestIP := vec.Dot(s.data[0], c)
	for i := 1; i < s.Len(); i++ {
		if ip := vec.Dot(s.data[i], c); ip > bestIP {
			bestIP = ip
			best = int32(i)
		}
	}
	return best
}
