// Package graph implements the proximity-graph substrate of the MUST
// reproduction: the component-based index-construction pipeline of
// Algorithm 1 (§VII-A) and the comparison graph algorithms of §VIII-G
// (KGraph, NSG, NSSG, HNSW, Vamana, HCNNG), all operating on a common
// vector Space so they can be built over fused concatenated vectors (MUST)
// or single-modality vectors (MR).
package graph

import (
	"fmt"

	"must/internal/vec"
)

// Space is the set of vectors a graph is built over. For the fused index
// the vectors are weighted concatenations [ω_0·ϕ_0(o_0), ...] (§VI); for a
// per-modality index they are that modality's vectors. Similarity is the
// inner product.
//
// A fused Space is a *view* over a shared vec.FlatStore — the single
// corpus copy the whole system scores against — plus the modality weights.
// During index construction the weighted rows are materialized into one
// contiguous fused buffer (the IP-heavy build loops walk sequential
// memory), and Release drops that buffer once the graph is built: the
// steady-state index keeps only the shared store, and IP/IPTo fall back to
// computing the weighted similarity per modality directly from the raw
// rows — slightly more arithmetic per call, paid only by the rare
// incremental-insert path.
//
// Spaces created from raw vectors (NewSpace, NewModalitySpace) own their
// buffer outright; Release is a no-op for them.
//
// All vectors in a Space must have the same self-inner-product (true for
// weighted concatenations of unit vectors, where IP(ô,ô) = Σω_i²); several
// components rely on this to convert between IPs, distances and angles.
type Space struct {
	// st and w back a fused view; st is nil for raw self-contained spaces.
	st   *vec.FlatStore
	w    vec.Weights
	w2   []float32 // ω_m², cached for the lazy per-modality path
	offs []int     // store row offsets, shared with st

	// fused holds the materialized weighted rows; nil after Release on a
	// store-backed space. Raw spaces keep their data here permanently.
	fused []float32
	// fusedRows is how many rows fused covers. Rows appended to the
	// backing store after materialization are not in the buffer; the
	// similarity fast paths check against fusedRows and fall back to the
	// lazy store path for anything beyond it, so a store append can never
	// index past the buffer.
	fusedRows int
	dim       int
	n         int // raw spaces only; store-backed spaces track st.Len()
	selfIP    float32
}

// NewSpace packs the given raw vectors into a fresh self-contained space.
// It panics if vectors is empty or dimensions are inconsistent, which
// would indicate a bug in the caller.
func NewSpace(vectors [][]float32) *Space {
	if len(vectors) == 0 {
		panic("graph: empty space")
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			panic(fmt.Sprintf("graph: vector %d has dim %d, want %d", i, len(v), d))
		}
	}
	s := &Space{fused: make([]float32, 0, len(vectors)*d), dim: d, n: len(vectors), fusedRows: len(vectors)}
	for _, v := range vectors {
		s.fused = append(s.fused, v...)
	}
	s.selfIP = vec.Dot(s.Vector(0), s.Vector(0))
	return s
}

// NewFusedSpace builds a self-contained fused space over multi-vector
// objects under the given weights: each object becomes its weighted
// concatenation, written directly into the flat buffer by GOMAXPROCS
// workers (each row is owned by exactly one worker, so the pack is
// deterministic). It is the convenience constructor for callers that hold
// a [][]float32-of-slices corpus (experiment harnesses, tests) — it packs
// straight from the objects, with no intermediate store copy; the
// production path is NewFusedSpaceFromStore over the shared collection
// store.
func NewFusedSpace(objects []vec.Multi, w vec.Weights) *Space {
	if len(objects) == 0 {
		panic("graph: empty space")
	}
	d := objects[0].TotalDim()
	for i, o := range objects {
		if o.TotalDim() != d {
			panic(fmt.Sprintf("graph: object %d has total dim %d, want %d", i, o.TotalDim(), d))
		}
	}
	s := &Space{fused: make([]float32, len(objects)*d), dim: d, n: len(objects), fusedRows: len(objects)}
	parallelVertices(len(objects), func(i int) {
		row := s.fused[i*d : (i+1)*d]
		off := 0
		for m, v := range objects[i] {
			wi := float32(0)
			if m < len(w) {
				wi = w[m]
			}
			for _, x := range v {
				row[off] = wi * x
				off++
			}
		}
	})
	s.selfIP = vec.Dot(s.Vector(0), s.Vector(0))
	return s
}

// NewFusedSpaceFromStore builds the fused space as a view over the shared
// flat store, materializing the weighted concatenation of every row into
// one flat buffer by GOMAXPROCS workers (each row is owned by exactly one
// worker, so the pack is deterministic). Call Release after construction
// to drop the materialized buffer and keep only the store view.
func NewFusedSpaceFromStore(st *vec.FlatStore, w vec.Weights) *Space {
	s := newStoreSpace(st, w)
	n := st.Len()
	if n == 0 {
		panic("graph: empty space")
	}
	s.fused = make([]float32, n*s.dim)
	s.fusedRows = n
	parallelVertices(n, func(i int) {
		s.packRow(i, s.fused[i*s.dim:(i+1)*s.dim])
	})
	s.selfIP = vec.Dot(s.Vector(0), s.Vector(0))
	return s
}

// StoreView builds a fused space over the shared store with no
// materialized buffer at all: every IP is computed from the raw rows and
// weights on the fly. This is what a deserialized index attaches for
// incremental inserts — the corpus stays single-copy from the first
// operation.
func StoreView(st *vec.FlatStore, w vec.Weights) *Space {
	s := newStoreSpace(st, w)
	if st.Len() > 0 {
		row := make([]float32, s.dim)
		s.packRow(0, row)
		s.selfIP = vec.Dot(row, row)
	}
	return s
}

func newStoreSpace(st *vec.FlatStore, w vec.Weights) *Space {
	if st == nil {
		panic("graph: nil store")
	}
	w2 := make([]float32, st.Modalities())
	for m := range w2 {
		if m < len(w) {
			w2[m] = w[m] * w[m]
		}
	}
	return &Space{
		st:   st,
		w:    w.Clone(),
		w2:   w2,
		offs: st.Offsets(),
		dim:  st.RowDim(),
	}
}

// packRow writes the weighted concatenation of store row i into dst.
func (s *Space) packRow(i int, dst []float32) {
	row := s.st.Row(i)
	for m := range s.w2 {
		wi := float32(0)
		if m < len(s.w) {
			wi = s.w[m]
		}
		for d := s.offs[m]; d < s.offs[m+1]; d++ {
			dst[d] = wi * row[d]
		}
	}
}

// NewModalitySpace builds a single-modality space over multi-vector
// objects, as MR's per-modality indexes require.
func NewModalitySpace(objects []vec.Multi, modality int) *Space {
	data := make([][]float32, len(objects))
	for i, o := range objects {
		data[i] = o[modality]
	}
	return NewSpace(data)
}

// Release drops the materialized fused buffer of a store-backed space,
// leaving the lazy view in place. The transient fused block exists only
// between NewFusedSpaceFromStore and Release — bracketing the graph build
// — so a built index holds the corpus once, not twice. No-op for raw
// spaces (they have no backing store to fall back to).
func (s *Space) Release() {
	if s.st != nil {
		s.fused = nil
		s.fusedRows = 0
	}
}

// FusedBytes reports the bytes held by the materialized fused buffer
// (0 after Release). Raw spaces report their owned buffer.
func (s *Space) FusedBytes() int64 { return int64(len(s.fused)) * 4 }

// Len returns the number of vectors. A store-backed space tracks the
// store, so rows appended to the shared store become visible here — the
// incremental-insert path relies on this.
func (s *Space) Len() int {
	if s.st != nil {
		return s.st.Len()
	}
	return s.n
}

// Dim returns the vector dimension.
func (s *Space) Dim() int { return s.dim }

// IP returns the inner product between stored vectors i and j.
func (s *Space) IP(i, j int32) float32 {
	if int(i) < s.fusedRows && int(j) < s.fusedRows {
		a := int(i) * s.dim
		b := int(j) * s.dim
		return vec.Dot(s.fused[a:a+s.dim], s.fused[b:b+s.dim])
	}
	ri, rj := s.st.Row(int(i)), s.st.Row(int(j))
	var sum float32
	for m, w2 := range s.w2 {
		if w2 == 0 {
			continue
		}
		a, b := s.offs[m], s.offs[m+1]
		sum += w2 * vec.Dot(ri[a:b], rj[a:b])
	}
	return sum
}

// IPTo returns the inner product between stored vector i and an external
// query vector q of the space's dimension (a weighted concatenation, e.g.
// from Vector or vec.WeightedConcat).
func (s *Space) IPTo(i int32, q []float32) float32 {
	if int(i) < s.fusedRows {
		a := int(i) * s.dim
		return vec.Dot(s.fused[a:a+s.dim], q)
	}
	ri := s.st.Row(int(i))
	var sum float32
	for m := range s.w2 {
		if s.w2[m] == 0 {
			continue
		}
		a, b := s.offs[m], s.offs[m+1]
		// q already carries one factor of ω_m; the stored row carries none.
		sum += s.w[m] * vec.Dot(ri[a:b], q[a:b])
	}
	return sum
}

// Vector returns stored vector i as a weighted concatenation. While the
// fused buffer is materialized this is a zero-copy view; after Release it
// allocates and packs the row on demand (acceptable on the rare
// incremental-insert path, not in build loops).
func (s *Space) Vector(i int32) []float32 {
	if int(i) < s.fusedRows {
		a := int(i) * s.dim
		return s.fused[a : a+s.dim : a+s.dim]
	}
	out := make([]float32, s.dim)
	s.packRow(int(i), out)
	return out
}

// SelfIP returns IP(v, v), identical for every vector in the space.
func (s *Space) SelfIP() float32 { return s.selfIP }

// Centroid returns the (unnormalized) mean of all vectors, used by the
// seed-preprocessing component (④). The accumulation is sequential so the
// result — and everything seeded from it — is independent of worker count.
func (s *Space) Centroid() []float32 {
	c := make([]float32, s.dim)
	n := s.Len()
	var scratch []float32
	for i := 0; i < n; i++ {
		var row []float32
		if i < s.fusedRows {
			row = s.fused[i*s.dim : (i+1)*s.dim]
		} else {
			if scratch == nil {
				scratch = make([]float32, s.dim)
			}
			s.packRow(i, scratch)
			row = scratch
		}
		for j, x := range row {
			c[j] += x
		}
	}
	inv := 1 / float32(n)
	for j := range c {
		c[j] *= inv
	}
	return c
}

// Medoid returns the index of the vector with the highest inner product to
// the centroid — the fixed seed of component ④ (Algorithm 1, line 18).
// The n inner products are computed in parallel (each worker writes only
// its own entries); the argmax reduction is sequential, so the result is
// deterministic for any worker count.
func (s *Space) Medoid() int32 {
	c := s.Centroid()
	n := s.Len()
	ips := make([]float32, n)
	parallelVertices(n, func(i int) {
		ips[i] = s.IPTo(int32(i), c)
	})
	best := int32(0)
	bestIP := ips[0]
	for i := 1; i < n; i++ {
		if ips[i] > bestIP {
			bestIP = ips[i]
			best = int32(i)
		}
	}
	return best
}
