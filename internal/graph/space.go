// Package graph implements the proximity-graph substrate of the MUST
// reproduction: the component-based index-construction pipeline of
// Algorithm 1 (§VII-A) and the comparison graph algorithms of §VIII-G
// (KGraph, NSG, NSSG, HNSW, Vamana, HCNNG), all operating on a common
// vector Space so they can be built over fused concatenated vectors (MUST)
// or single-modality vectors (MR).
package graph

import (
	"fmt"

	"must/internal/vec"
)

// Space is the set of vectors a graph is built over. For the fused index
// the vectors are weighted concatenations [ω_0·ϕ_0(o_0), ...] (§VI); for a
// per-modality index they are that modality's vectors. Similarity is the
// inner product.
//
// Vectors are stored flat: one contiguous []float32 holding all rows
// back-to-back, so the IP-heavy build loops walk sequential memory instead
// of chasing a pointer per vector. Vector returns views computed on
// demand, which keeps Append safe (a reallocation of the backing array
// never invalidates previously working code, only previously returned
// views — callers re-fetch per use).
//
// All vectors in a Space must have the same self-inner-product (true for
// weighted concatenations of unit vectors, where IP(ô,ô) = Σω_i²); several
// components rely on this to convert between IPs, distances and angles.
type Space struct {
	buf    []float32
	dim    int
	n      int
	selfIP float32
}

// NewSpace packs the given vectors into a fresh flat space. It panics if
// vectors is empty or dimensions are inconsistent, which would indicate a
// bug in the caller.
func NewSpace(vectors [][]float32) *Space {
	if len(vectors) == 0 {
		panic("graph: empty space")
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			panic(fmt.Sprintf("graph: vector %d has dim %d, want %d", i, len(v), d))
		}
	}
	s := &Space{buf: make([]float32, 0, len(vectors)*d), dim: d, n: len(vectors)}
	for _, v := range vectors {
		s.buf = append(s.buf, v...)
	}
	s.selfIP = vec.Dot(s.Vector(0), s.Vector(0))
	return s
}

// NewFusedSpace builds the fused space over multi-vector objects under the
// given weights: each object becomes its weighted concatenation, written
// directly into the flat buffer by GOMAXPROCS workers (each row is owned
// by exactly one worker, so the pack is deterministic).
func NewFusedSpace(objects []vec.Multi, w vec.Weights) *Space {
	if len(objects) == 0 {
		panic("graph: empty space")
	}
	d := objects[0].TotalDim()
	for i, o := range objects {
		if o.TotalDim() != d {
			panic(fmt.Sprintf("graph: object %d has total dim %d, want %d", i, o.TotalDim(), d))
		}
	}
	s := &Space{buf: make([]float32, len(objects)*d), dim: d, n: len(objects)}
	parallelVertices(len(objects), func(i int) {
		row := s.buf[i*d : (i+1)*d]
		off := 0
		for m, v := range objects[i] {
			wi := float32(0)
			if m < len(w) {
				wi = w[m]
			}
			for _, x := range v {
				row[off] = wi * x
				off++
			}
		}
	})
	s.selfIP = vec.Dot(s.Vector(0), s.Vector(0))
	return s
}

// NewModalitySpace builds a single-modality space over multi-vector
// objects, as MR's per-modality indexes require.
func NewModalitySpace(objects []vec.Multi, modality int) *Space {
	data := make([][]float32, len(objects))
	for i, o := range objects {
		data[i] = o[modality]
	}
	return NewSpace(data)
}

// Len returns the number of vectors.
func (s *Space) Len() int { return s.n }

// Dim returns the vector dimension.
func (s *Space) Dim() int { return s.dim }

// IP returns the inner product between stored vectors i and j.
func (s *Space) IP(i, j int32) float32 {
	a := int(i) * s.dim
	b := int(j) * s.dim
	return vec.Dot(s.buf[a:a+s.dim], s.buf[b:b+s.dim])
}

// IPTo returns the inner product between stored vector i and an external
// query vector q of the same dimension.
func (s *Space) IPTo(i int32, q []float32) float32 {
	a := int(i) * s.dim
	return vec.Dot(s.buf[a:a+s.dim], q)
}

// Vector returns a view of stored vector i. The view is only valid until
// the next Append (which may reallocate the flat buffer); re-fetch rather
// than caching across mutations.
func (s *Space) Vector(i int32) []float32 {
	a := int(i) * s.dim
	return s.buf[a : a+s.dim : a+s.dim]
}

// SelfIP returns IP(v, v), identical for every vector in the space.
func (s *Space) SelfIP() float32 { return s.selfIP }

// Centroid returns the (unnormalized) mean of all vectors, used by the
// seed-preprocessing component (④). The accumulation is sequential so the
// result — and everything seeded from it — is independent of worker count.
func (s *Space) Centroid() []float32 {
	c := make([]float32, s.dim)
	for i := 0; i < s.n; i++ {
		row := s.buf[i*s.dim : (i+1)*s.dim]
		for j, x := range row {
			c[j] += x
		}
	}
	inv := 1 / float32(s.n)
	for j := range c {
		c[j] *= inv
	}
	return c
}

// Medoid returns the index of the vector with the highest inner product to
// the centroid — the fixed seed of component ④ (Algorithm 1, line 18).
// The n inner products are computed in parallel (each worker writes only
// its own entries); the argmax reduction is sequential, so the result is
// deterministic for any worker count.
func (s *Space) Medoid() int32 {
	c := s.Centroid()
	ips := make([]float32, s.n)
	parallelVertices(s.n, func(i int) {
		ips[i] = s.IPTo(int32(i), c)
	})
	best := int32(0)
	bestIP := ips[0]
	for i := 1; i < s.n; i++ {
		if ips[i] > bestIP {
			bestIP = ips[i]
			best = int32(i)
		}
	}
	return best
}
