package graph

import "testing"

func TestComputeStatsHandBuilt(t *testing.T) {
	g := NewCSR([][]int32{
		{1, 2}, // 0
		{0},    // 1
		{},     // 2 (isolated out-degree, but reachable)
		{4},    // 3 (second component)
		{3},    // 4
	}, 0)
	st := ComputeStats(g)
	if st.Vertices != 5 || st.Edges != 5 {
		t.Errorf("vertices/edges = %d/%d", st.Vertices, st.Edges)
	}
	if st.MinDegree != 0 || st.MaxDegree != 2 {
		t.Errorf("degree range = %d..%d", st.MinDegree, st.MaxDegree)
	}
	if st.Isolated != 1 {
		t.Errorf("isolated = %d", st.Isolated)
	}
	if st.ReachableFromSeed != 3 {
		t.Errorf("reachable = %d, want 3", st.ReachableFromSeed)
	}
	if st.Components != 2 {
		t.Errorf("components = %d, want 2", st.Components)
	}
	if st.AvgDegree != 1 {
		t.Errorf("avg degree = %v", st.AvgDegree)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(&Graph{})
	if st.Vertices != 0 || st.Components != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestComputeStatsOnBuiltGraph(t *testing.T) {
	s := testSpace(300, 12, 3, 101)
	g, err := Ours(10, 3, 102).Build(s)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(g)
	if st.Components != 1 {
		t.Errorf("pipeline graph has %d components, want 1 (connectivity component ran)", st.Components)
	}
	if st.ReachableFromSeed != 300 {
		t.Errorf("reachable = %d", st.ReachableFromSeed)
	}
	if st.MedianDegree <= 0 || st.P99Degree < st.MedianDegree {
		t.Errorf("degree quantiles look wrong: median=%d p99=%d", st.MedianDegree, st.P99Degree)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := NewCSR([][]int32{{1, 2, 3}, {0}, {0, 1}, {}}, 0)
	h := DegreeHistogram(g, 2)
	// degrees: 3,1,2,0 → buckets (width 2): 2,0,2,0 → {0:2, 2:2}
	if h[0] != 2 || h[2] != 2 {
		t.Errorf("histogram = %v", h)
	}
	// Degenerate bucket width defaults.
	h = DegreeHistogram(g, 0)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 4 {
		t.Errorf("histogram lost vertices: %v", h)
	}
}
