package graph

import "math/rand"

// VamanaConfig parameterizes the Vamana/DiskANN builder (Jayaram
// Subramanya et al., one of the §VIII-G competitors).
type VamanaConfig struct {
	// Gamma is the degree bound R.
	Gamma int
	// Beam is the construction search list size L.
	Beam int
	// Alpha is the RobustPrune distance-scale parameter for the second
	// pass (first pass uses α = 1).
	Alpha float32
	// Seed drives the random initial graph and insertion order.
	Seed int64
}

// BuildVamana constructs a Vamana graph: a random regular start, then two
// passes of greedy-search + RobustPrune with α = 1 and α = cfg.Alpha,
// adding pruned reverse edges along the way.
func BuildVamana(s *Space, cfg VamanaConfig) *Graph {
	n := s.Len()
	gamma := cfg.Gamma
	if gamma <= 0 {
		gamma = 30
	}
	beam := cfg.Beam
	if beam <= 0 {
		beam = 2 * gamma
	}
	alpha := cfg.Alpha
	if alpha <= 1 {
		alpha = 1.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	adj := RandomInit{Seed: cfg.Seed}.Init(s, gamma)
	medoid := s.Medoid()
	self := s.SelfIP()

	// robustPrune keeps at most gamma candidates, discarding any candidate
	// p whose distance to an already-kept p* satisfies α·d(p*,p) ≤ d(v,p).
	robustPrune := func(v int32, cands []int32, a float32) []int32 {
		ordered := sortByIP(s, v, cands)
		kept := make([]int32, 0, gamma)
		alive := make([]bool, len(ordered))
		for i := range alive {
			alive[i] = true
		}
		for i := 0; i < len(ordered) && len(kept) < gamma; i++ {
			if !alive[i] {
				continue
			}
			p := ordered[i]
			kept = append(kept, p.id)
			for j := i + 1; j < len(ordered); j++ {
				if !alive[j] {
					continue
				}
				q := ordered[j]
				dPQ := distFromIP(self, s.IP(p.id, q.id))
				dVQ := distFromIP(self, q.ip)
				if a*a*dPQ <= dVQ {
					alive[j] = false
				}
			}
		}
		return kept
	}

	order := rng.Perm(n)
	pass := func(a float32) {
		for _, vi := range order {
			v := int32(vi)
			visited := beamSearchVertex(s, adj, medoid, v, beam)
			cands := make([]int32, 0, len(visited)+len(adj[v]))
			for _, u := range visited {
				if u != v {
					cands = append(cands, u)
				}
			}
			cands = append(cands, adj[v]...)
			adj[v] = robustPrune(v, cands, a)
			// Reverse edges with pruning on overflow.
			for _, u := range adj[v] {
				lst := adj[u]
				present := false
				for _, w := range lst {
					if w == v {
						present = true
						break
					}
				}
				if present {
					continue
				}
				lst = append(lst, v)
				if len(lst) > gamma {
					lst = robustPrune(u, lst, a)
				}
				adj[u] = lst
			}
		}
	}
	pass(1)
	pass(alpha)

	return NewCSR(adj, medoid)
}
