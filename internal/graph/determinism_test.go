package graph

import (
	"math/rand"
	"reflect"
	"testing"

	"must/internal/vec"
)

func determinismFixture(t *testing.T, n int, seed int64) *Space {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	objects := make([]vec.Multi, n)
	for i := range objects {
		objects[i] = vec.Multi{vec.RandUnit(rng, 20), vec.RandUnit(rng, 10)}
	}
	return NewFusedSpace(objects, vec.Weights{0.8, 0.6})
}

// The parallel build must produce a graph identical to the sequential
// build for the same seed: every parallel stage (NNDescent joins,
// candidate acquisition + selection, medoid inner products) writes only
// vertex-owned state, so the output may not depend on the worker count.
func TestParallelBuildMatchesSequential(t *testing.T) {
	space := determinismFixture(t, 600, 51)
	pipelines := map[string]func() Pipeline{
		"Ours":   func() Pipeline { return Ours(14, 3, 52) },
		"KGraph": func() Pipeline { return KGraphAssembly(14, 3, 52) },
		"NSG":    func() Pipeline { return NSGAssembly(14, 3, 28, 52) },
	}
	for name, mk := range pipelines {
		prev := SetBuildWorkers(1)
		seq, err := mk().Build(space)
		if err != nil {
			t.Fatalf("%s sequential build: %v", name, err)
		}
		SetBuildWorkers(8)
		par, err := mk().Build(space)
		SetBuildWorkers(prev)
		if err != nil {
			t.Fatalf("%s parallel build: %v", name, err)
		}
		if seq.Seed != par.Seed {
			t.Errorf("%s: seeds differ: sequential %d, parallel %d", name, seq.Seed, par.Seed)
		}
		if !reflect.DeepEqual(seq.Adj, par.Adj) {
			for v := range seq.Adj {
				if !reflect.DeepEqual(seq.Adj[v], par.Adj[v]) {
					t.Fatalf("%s: adjacency of vertex %d differs: sequential %v, parallel %v",
						name, v, seq.Adj[v], par.Adj[v])
				}
			}
		}
	}
}

// Rebuilding with the same seed must reproduce the same graph; a
// different seed must not (the randomness is real, just pinned).
func TestBuildSeedDeterminism(t *testing.T) {
	space := determinismFixture(t, 400, 53)
	a, err := Ours(12, 3, 54).Build(space)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ours(12, 3, 54).Build(space)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Adj, b.Adj) || a.Seed != b.Seed {
		t.Error("same seed produced different graphs")
	}
	c, err := Ours(12, 3, 99).Build(space)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Adj, c.Adj) {
		t.Error("different seeds produced identical graphs (suspicious)")
	}
}

func TestSetBuildWorkersRoundTrip(t *testing.T) {
	prev := SetBuildWorkers(3)
	if got := SetBuildWorkers(prev); got != 3 {
		t.Errorf("SetBuildWorkers returned %d, want 3", got)
	}
	if got := SetBuildWorkers(0); got != prev {
		t.Errorf("restore returned %d, want %d", got, prev)
	}
	SetBuildWorkers(-5) // negative clamps to the default
	if got := SetBuildWorkers(0); got != 0 {
		t.Errorf("negative worker count stored as %d, want 0", got)
	}
}
