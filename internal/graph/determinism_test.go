package graph

import (
	"math/rand"
	"testing"

	"must/internal/vec"
)

func determinismFixture(t *testing.T, n int, seed int64) *Space {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	objects := make([]vec.Multi, n)
	for i := range objects {
		objects[i] = vec.Multi{vec.RandUnit(rng, 20), vec.RandUnit(rng, 10)}
	}
	return NewFusedSpace(objects, vec.Weights{0.8, 0.6})
}

// graphsEqual compares two sealed graphs edge-for-edge through the public
// topology accessors (CSR offsets/edges included, since Neighbors views
// straight into them).
func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.Seed != b.Seed {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(int32(v)), b.Neighbors(int32(v))
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

// The parallel build must produce a sealed CSR graph identical to the
// sequential build for the same seed at every worker count: every
// parallel stage (NNDescent joins, candidate acquisition + selection,
// medoid inner products) writes only vertex-owned state, and the CSR
// seal is a deterministic concatenation in vertex order, so the output
// may not depend on the worker count.
func TestParallelBuildMatchesSequential(t *testing.T) {
	space := determinismFixture(t, 600, 51)
	pipelines := map[string]func() Pipeline{
		"Ours":   func() Pipeline { return Ours(14, 3, 52) },
		"KGraph": func() Pipeline { return KGraphAssembly(14, 3, 52) },
		"NSG":    func() Pipeline { return NSGAssembly(14, 3, 28, 52) },
	}
	for name, mk := range pipelines {
		prev := SetBuildWorkers(1)
		seq, err := mk().Build(space)
		if err != nil {
			SetBuildWorkers(prev)
			t.Fatalf("%s sequential build: %v", name, err)
		}
		for _, workers := range []int{2, 3, 8} {
			SetBuildWorkers(workers)
			par, err := mk().Build(space)
			if err != nil {
				SetBuildWorkers(prev)
				t.Fatalf("%s build with %d workers: %v", name, workers, err)
			}
			if seq.Seed != par.Seed {
				t.Errorf("%s (%d workers): seeds differ: sequential %d, parallel %d", name, workers, seq.Seed, par.Seed)
			}
			if !graphsEqual(seq, par) {
				for v := 0; v < seq.NumVertices(); v++ {
					sv, pv := seq.Neighbors(int32(v)), par.Neighbors(int32(v))
					if len(sv) != len(pv) {
						t.Fatalf("%s (%d workers): adjacency of vertex %d differs: sequential %v, parallel %v",
							name, workers, v, sv, pv)
					}
					for i := range sv {
						if sv[i] != pv[i] {
							t.Fatalf("%s (%d workers): adjacency of vertex %d differs: sequential %v, parallel %v",
								name, workers, v, sv, pv)
						}
					}
				}
			}
		}
		SetBuildWorkers(prev)
	}
}

// Rebuilding with the same seed must reproduce the same graph; a
// different seed must not (the randomness is real, just pinned).
func TestBuildSeedDeterminism(t *testing.T) {
	space := determinismFixture(t, 400, 53)
	a, err := Ours(12, 3, 54).Build(space)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ours(12, 3, 54).Build(space)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(a, b) {
		t.Error("same seed produced different graphs")
	}
	c, err := Ours(12, 3, 99).Build(space)
	if err != nil {
		t.Fatal(err)
	}
	if graphsEqual(a, c) {
		t.Error("different seeds produced identical graphs (suspicious)")
	}
}

func TestSetBuildWorkersRoundTrip(t *testing.T) {
	prev := SetBuildWorkers(3)
	if got := SetBuildWorkers(prev); got != 3 {
		t.Errorf("SetBuildWorkers returned %d, want 3", got)
	}
	if got := SetBuildWorkers(0); got != prev {
		t.Errorf("restore returned %d, want %d", got, prev)
	}
	SetBuildWorkers(-5) // negative clamps to the default
	if got := SetBuildWorkers(0); got != 0 {
		t.Errorf("negative worker count stored as %d, want 0", got)
	}
}
