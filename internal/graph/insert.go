package graph

// Incremental insertion (§IX of the paper): "upon the arrival of a new
// object, its embedding vector can be used to search for neighbors in the
// index, updating them accordingly" — the HNSW/Vamana-style dynamic
// update. The new vertex beam-searches for its neighborhood, links via
// MRNG selection, and adds degree-capped reverse edges.
//
// The graph's frozen CSR core is never edited in place: the new vertex's
// list and every reverse-edge edit land in the append-overlay
// (Graph.SetNeighbors), and the index layer compacts the overlay back
// into CSR once it grows past a small fraction of the graph.

// Append copies a vector into a raw space's buffer and returns its new
// index. The vector must have the space's dimension and the same
// self-inner-product as the rest of the space (a weighted concatenation of
// unit vectors). Append may reallocate the buffer; views previously
// returned by Vector are no longer tied to the space afterwards.
//
// Store-backed fused spaces reject Append: their rows live in the shared
// vec.FlatStore, so new objects are appended to the store (one copy,
// visible to every layer) and become visible here through Len.
func (s *Space) Append(v []float32) int32 {
	if s.st != nil {
		panic("graph: Append on a store-backed space; append to the shared store instead")
	}
	if len(v) != s.Dim() {
		panic("graph: Append dimension mismatch")
	}
	s.fused = append(s.fused, v...)
	s.n++
	s.fusedRows = s.n
	return int32(s.n - 1)
}

// Insert links an already-appended vertex id into the graph: it routes a
// beam search toward the vertex from the seed, selects up to gamma diverse
// neighbors with the MRNG rule, and installs reverse edges capped at
// gamma (re-selected when they overflow). It returns the vertex id.
func Insert(s *Space, g *Graph, id int32, gamma, beam int) int32 {
	if beam < gamma {
		beam = gamma
	}
	// Grow the vertex set up to the space size (supports callers that
	// appended several vectors before linking).
	g.EnsureVertices(s.Len())
	visited := beamSearchGraph(s, g, g.Seed, s.Vector(id), beam)
	cands := make([]int32, 0, len(visited))
	for _, u := range visited {
		if u != id {
			cands = append(cands, u)
		}
	}
	neighbors := MRNG{}.Select(s, id, cands, gamma)
	g.SetNeighbors(id, neighbors)
	for _, u := range neighbors {
		lst := g.Neighbors(u)
		present := false
		for _, w := range lst {
			if w == id {
				present = true
				break
			}
		}
		if present {
			continue
		}
		// Copy-on-write: lst may be a view into the frozen CSR edge array,
		// so the reverse edge is added on a fresh overlay list.
		grown := make([]int32, 0, len(lst)+1)
		grown = append(grown, lst...)
		grown = append(grown, id)
		if len(grown) > gamma {
			grown = MRNG{}.Select(s, u, grown, gamma)
		}
		g.SetNeighbors(u, grown)
	}
	return id
}
