package graph

import "sort"

// neighborsFunc resolves a vertex's out-neighbor list. Build-time code
// passes a view over its working [][]int32 adjacency; post-seal code
// (incremental inserts) passes Graph.Neighbors.
type neighborsFunc func(v int32) []int32

// sliceNeighbors adapts a builder's working adjacency to neighborsFunc.
func sliceNeighbors(adj [][]int32) neighborsFunc {
	return func(v int32) []int32 { return adj[v] }
}

// beamSearchVertex runs a greedy beam search over adj from start toward
// the stored vertex target, returning the visited vertices in visit order.
// It is the build-time routing primitive used by NSG-style candidate
// acquisition and Vamana's construction passes. beam is the working-set
// size (NSG's L / Vamana's L).
func beamSearchVertex(s *Space, adj [][]int32, start, target int32, beam int) []int32 {
	return beamSearch(s, sliceNeighbors(adj), start, s.Vector(target), beam)
}

// beamSearchVector is beamSearchVertex for an arbitrary query vector of
// the space's dimension.
func beamSearchVector(s *Space, adj [][]int32, start int32, query []float32, beam int) []int32 {
	return beamSearch(s, sliceNeighbors(adj), start, query, beam)
}

// beamSearchGraph routes over a sealed Graph (CSR core plus overlay) —
// the §IX incremental-insert path.
func beamSearchGraph(s *Space, g *Graph, start int32, query []float32, beam int) []int32 {
	return beamSearch(s, g.Neighbors, start, query, beam)
}

func beamSearch(s *Space, neighbors neighborsFunc, start int32, query []float32, beam int) []int32 {
	if beam < 1 {
		beam = 1
	}
	type entry struct {
		id      int32
		ip      float32
		visited bool
	}
	// pool is the candidate beam kept sorted by descending IP.
	pool := make([]entry, 0, beam+1)
	seen := map[int32]struct{}{start: {}}
	pool = append(pool, entry{start, s.IPTo(start, query), false})
	visitOrder := make([]int32, 0, beam*2)

	insert := func(id int32, ip float32) {
		if len(pool) == beam && ip <= pool[len(pool)-1].ip {
			return
		}
		pos := sort.Search(len(pool), func(i int) bool { return pool[i].ip < ip })
		if len(pool) < beam {
			pool = append(pool, entry{})
		} else {
			pos = min(pos, beam-1)
		}
		copy(pool[pos+1:], pool[pos:])
		pool[pos] = entry{id, ip, false}
	}

	for {
		// Find the best unvisited entry.
		idx := -1
		for i := range pool {
			if !pool[i].visited {
				idx = i
				break
			}
		}
		if idx == -1 {
			break
		}
		pool[idx].visited = true
		v := pool[idx].id
		visitOrder = append(visitOrder, v)
		for _, u := range neighbors(v) {
			if _, ok := seen[u]; ok {
				continue
			}
			seen[u] = struct{}{}
			insert(u, s.IPTo(u, query))
		}
	}
	return visitOrder
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
