package graph

import (
	"math/rand"
	"sort"
)

// HCNNGConfig parameterizes the hierarchical-clustering builder (Muñoz et
// al., one of the §VIII-G competitors): several rounds of random divisive
// clustering, an exact minimum spanning tree inside each leaf cluster, and
// a union of the per-round MST edges.
type HCNNGConfig struct {
	// Rounds is the number of clustering rounds (HCNNG's number of
	// trees); more rounds add more edges.
	Rounds int
	// LeafSize is the maximum cluster size at which an MST is built.
	LeafSize int
	// MaxDegree caps the final out-degree, keeping the closest edges.
	MaxDegree int
	// Seed drives the random pivots.
	Seed int64
}

// BuildHCNNG constructs an HCNNG graph over the space.
func BuildHCNNG(s *Space, cfg HCNNGConfig) *Graph {
	n := s.Len()
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	leaf := cfg.LeafSize
	if leaf <= 0 {
		leaf = 200
	}
	if leaf < 3 {
		leaf = 3
	}
	maxDeg := cfg.MaxDegree
	if maxDeg <= 0 {
		maxDeg = 40
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	edges := make([]map[int32]struct{}, n)
	for i := range edges {
		edges[i] = make(map[int32]struct{})
	}
	addEdge := func(a, b int32) {
		edges[a][b] = struct{}{}
		edges[b][a] = struct{}{}
	}

	// mst builds an exact Prim MST over the members (undirected edges).
	mst := func(members []int32) {
		k := len(members)
		if k < 2 {
			return
		}
		inTree := make([]bool, k)
		bestIP := make([]float32, k)
		bestFrom := make([]int, k)
		for i := range bestIP {
			bestIP[i] = float32(-1 << 30)
		}
		inTree[0] = true
		for i := 1; i < k; i++ {
			bestIP[i] = s.IP(members[0], members[i])
			bestFrom[i] = 0
		}
		for added := 1; added < k; added++ {
			next := -1
			for i := 1; i < k; i++ {
				if !inTree[i] && (next == -1 || bestIP[i] > bestIP[next]) {
					next = i
				}
			}
			inTree[next] = true
			addEdge(members[bestFrom[next]], members[next])
			for i := 1; i < k; i++ {
				if !inTree[i] {
					if ip := s.IP(members[next], members[i]); ip > bestIP[i] {
						bestIP[i] = ip
						bestFrom[i] = next
					}
				}
			}
		}
	}

	// split recursively partitions members with two random pivots until
	// clusters are leaf-sized, then MSTs them.
	var split func(members []int32)
	split = func(members []int32) {
		if len(members) <= leaf {
			mst(members)
			return
		}
		a := members[rng.Intn(len(members))]
		b := a
		for b == a {
			b = members[rng.Intn(len(members))]
		}
		var left, right []int32
		for _, v := range members {
			if s.IP(v, a) >= s.IP(v, b) {
				left = append(left, v)
			} else {
				right = append(right, v)
			}
		}
		// Degenerate splits can happen with duplicate vectors; fall back
		// to a halving split to guarantee termination.
		if len(left) == 0 || len(right) == 0 {
			mid := len(members) / 2
			left, right = members[:mid], members[mid:]
		}
		split(left)
		split(right)
	}

	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	for r := 0; r < rounds; r++ {
		split(all)
	}

	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		lst := make([]int32, 0, len(edges[v]))
		for u := range edges[v] {
			lst = append(lst, u)
		}
		// Keep the closest MaxDegree neighbors, deterministically.
		sort.Slice(lst, func(i, j int) bool {
			ipI, ipJ := s.IP(int32(v), lst[i]), s.IP(int32(v), lst[j])
			if ipI != ipJ {
				return ipI > ipJ
			}
			return lst[i] < lst[j]
		})
		if len(lst) > maxDeg {
			lst = lst[:maxDeg]
		}
		adj[v] = lst
	}
	seed := s.Medoid()
	BFSRepair{}.Ensure(s, adj, seed)
	return NewCSR(adj, seed)
}
