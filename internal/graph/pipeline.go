package graph

import (
	"fmt"
	"math/rand"
)

// Pipeline assembles the five components of Algorithm 1 into an index
// builder. Re-assembling components from different published graphs is how
// the paper both implements its competitors and derives its own optimized
// index (§VII-A, §VIII-G).
type Pipeline struct {
	// Name labels the assembly in reports (e.g. "Ours", "KGraph").
	Name string
	// Gamma is the maximum out-degree γ (default 30, Appendix H).
	Gamma int
	// Init, Candidates, Select, Seed, Connect are the five components.
	Init       Initializer
	Candidates CandidateAcquirer
	Select     Selector
	Seed       SeedStrategy
	Connect    Connectivity
	// RandSeed drives any randomized component decisions.
	RandSeed int64
	// AfterSeal, when set, runs after the adjacency is sealed into its
	// CSR form but before Build returns. The index layer uses it to train
	// the SQ8 quantizer over the finished corpus while the build still
	// owns the store (so quantizer training is accounted to build time,
	// not to the first search).
	AfterSeal func()
}

func (p Pipeline) validate() error {
	if p.Init == nil || p.Candidates == nil || p.Select == nil || p.Seed == nil || p.Connect == nil {
		return fmt.Errorf("graph: pipeline %q is missing components", p.Name)
	}
	if p.Gamma <= 0 {
		return fmt.Errorf("graph: pipeline %q has non-positive gamma", p.Name)
	}
	return nil
}

// Build runs the pipeline over the space and returns the finished graph.
func (p Pipeline) Build(s *Space) (*Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("graph: pipeline %q: empty space", p.Name)
	}
	rng := rand.New(rand.NewSource(p.RandSeed))

	// ① Initialization.
	initial := p.Init.Init(s, p.Gamma)

	// Resolve a deferred routing seed for search-based acquisition before
	// the parallel stage so the medoid is computed once.
	if sc, ok := p.Candidates.(SearchCandidates); ok && sc.SeedVertex < 0 {
		sc.SeedVertex = s.Medoid()
		p.Candidates = sc
	}

	// ② Candidate acquisition + ③ neighbor selection, fused per vertex so
	// candidate buffers stay worker-local.
	final := make([][]int32, s.Len())
	scratches := make(chan *candScratch, 64)
	parallelVertices(s.Len(), func(v int) {
		var scratch *candScratch
		select {
		case scratch = <-scratches:
		default:
			scratch = newCandScratch()
		}
		cands := p.Candidates.Candidates(s, initial, int32(v), scratch)
		final[v] = p.Select.Select(s, int32(v), cands, p.Gamma)
		select {
		case scratches <- scratch:
		default:
		}
	})

	// ④ Seed preprocessing.
	seed := p.Seed.Seed(s, rng)

	// ⑤ Connectivity.
	p.Connect.Ensure(s, final, seed)

	// Seal the working adjacency into the canonical CSR form; the
	// per-vertex lists are garbage from here on.
	g := NewCSR(final, seed)
	if p.AfterSeal != nil {
		p.AfterSeal()
	}
	return g, nil
}

// ComponentSummary renders the assembly, e.g.
// "NNDescent→NoN→MRNG→Centroid→BFS".
func (p Pipeline) ComponentSummary() string {
	return fmt.Sprintf("%s→%s→%s→%s→%s",
		p.Init.InitName(), p.Candidates.CandidateName(), p.Select.SelectName(),
		p.Seed.SeedName(), p.Connect.ConnectName())
}

// ---------------------------------------------------------------------------
// Named assemblies (§VIII-G): the paper's fused index plus the component
// re-assemblies of KGraph, NSG and NSSG.

// Ours is the paper's optimized assembly: NNDescent initialization,
// neighbors-of-neighbors candidates, MRNG selection, centroid seed, BFS
// connectivity (Algorithm 1 as printed).
func Ours(gamma, iters int, seed int64) Pipeline {
	return Pipeline{
		Name:       "Ours",
		Gamma:      gamma,
		Init:       NNDescent{Iters: iters, Seed: seed},
		Candidates: NeighborsOfNeighbors{},
		Select:     MRNG{},
		Seed:       CentroidSeed{},
		Connect:    BFSRepair{},
		RandSeed:   seed,
	}
}

// KGraphAssembly re-assembles KGraph: NNDescent with plain top-γ neighbor
// lists, no diversification, random seed, no connectivity repair.
func KGraphAssembly(gamma, iters int, seed int64) Pipeline {
	return Pipeline{
		Name:       "KGraph",
		Gamma:      gamma,
		Init:       NNDescent{Iters: iters, Seed: seed},
		Candidates: NeighborsOfNeighbors{},
		Select:     TopK{},
		Seed:       RandomSeed{},
		Connect:    NoConnectivity{},
		RandSeed:   seed,
	}
}

// NSGAssembly re-assembles NSG: NNDescent initialization, search-based
// candidate acquisition from the medoid, MRNG selection, centroid seed and
// connectivity repair.
func NSGAssembly(gamma, iters, beam int, seed int64) Pipeline {
	return Pipeline{
		Name:       "NSG",
		Gamma:      gamma,
		Init:       NNDescent{Iters: iters, Seed: seed},
		Candidates: SearchCandidates{Beam: beam, SeedVertex: -1},
		Select:     MRNG{},
		Seed:       CentroidSeed{},
		Connect:    BFSRepair{},
		RandSeed:   seed,
	}
}

// NSSGAssembly re-assembles NSSG: NNDescent initialization,
// neighbors-of-neighbors expansion, angle-based selection (min 60°),
// random seed and connectivity repair.
func NSSGAssembly(gamma, iters int, seed int64) Pipeline {
	return Pipeline{
		Name:       "NSSG",
		Gamma:      gamma,
		Init:       NNDescent{Iters: iters, Seed: seed},
		Candidates: NeighborsOfNeighbors{},
		Select:     AngleSelector{MinCos: 0.5},
		Seed:       RandomSeed{},
		Connect:    BFSRepair{},
		RandSeed:   seed,
	}
}
