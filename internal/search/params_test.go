package search

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"must/internal/vec"
)

// countdownCtx is a context whose Err() starts returning Canceled after a
// fixed number of polls — it deterministically triggers the periodic
// in-loop cancellation check rather than the entry check.
type countdownCtx struct {
	remaining int
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

func TestSearchParamsContextCancelledAtEntry(t *testing.T) {
	objects, w, g := buildFixture(t, 400, 3)
	s := New(g, objects, w)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := objects[7]
	_, _, err := s.SearchParams(q, Params{K: 5, L: 100, Optimize: true, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestSearchParamsContextCancelledMidSearch(t *testing.T) {
	objects, w, g := buildFixture(t, 2000, 3)
	s := New(g, objects, w)
	q := objects[7]
	// One poll happens at entry and one at the first routing hop; allowing
	// exactly those two makes the next periodic poll fail mid-routing.
	ctx := &countdownCtx{remaining: 2}
	_, st, err := s.SearchParams(q, Params{K: 5, L: 400, Optimize: true, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if st.Hops == 0 || st.Hops > ctxCheckInterval {
		t.Fatalf("cancellation not mid-search: %d hops", st.Hops)
	}
	// The searcher must remain usable after an aborted search.
	res, _, err := s.SearchParams(q, Params{K: 5, L: 400, Optimize: true})
	if err != nil || len(res) != 5 {
		t.Fatalf("searcher broken after cancellation: %v, %d results", err, len(res))
	}
}

func TestSearchParamsBreakdownSumsToJointIP(t *testing.T) {
	objects, w, g := buildFixture(t, 600, 5)
	s := New(g, objects, w)
	q := objects[11]
	res, _, err := s.SearchParams(q, Params{K: 10, L: 200, Optimize: true, Breakdown: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for _, r := range res {
		if len(r.PerModality) != len(q) {
			t.Fatalf("result %d: %d modality contributions, want %d", r.ID, len(r.PerModality), len(q))
		}
		var sum float32
		for _, x := range r.PerModality {
			sum += x
		}
		if diff := math.Abs(float64(sum - r.IP)); diff > 1e-4 {
			t.Errorf("result %d: contributions sum to %.6f, joint IP %.6f", r.ID, sum, r.IP)
		}
	}
	// Without Breakdown the field stays nil (no extra work on the hot path).
	res, _, err = s.SearchParams(q, Params{K: 5, L: 200, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.PerModality != nil {
			t.Fatal("PerModality populated without Breakdown")
		}
	}
}

func TestSearchParamsPerCallWeightOverride(t *testing.T) {
	objects, w, g := buildFixture(t, 600, 7)
	s := New(g, objects, w)
	q := vec.Multi{vec.RandUnit(rand.New(rand.NewSource(1)), 24), vec.RandUnit(rand.New(rand.NewSource(2)), 12)}
	over := vec.Weights{1, 0}
	res, _, err := s.SearchParams(q, Params{K: 5, L: 200, Optimize: true, Weights: over, Breakdown: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.PerModality[1] != 0 {
			t.Errorf("zero-weighted modality contributed %f", r.PerModality[1])
		}
	}
	// The same searcher still honors its constructor weights afterwards.
	want := exactTopK(objects, w, q, 5)
	got, _, err := s.Search(q, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	overlap := 0
	for _, r := range got {
		for _, id := range want {
			if r.ID == id {
				overlap++
			}
		}
	}
	if overlap == 0 {
		t.Error("constructor-weight search found none of the exact top-5")
	}
}

func TestLegacySearchMatchesSearchParams(t *testing.T) {
	objects, w, g := buildFixture(t, 500, 9)
	s1 := New(g, objects, w, WithEarlyTermination(3))
	s2 := New(g, objects, w)
	q := objects[42]
	a, _, err := s1.Search(q, 5, 150)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s2.SearchParams(q, Params{K: 5, L: 150, Optimize: true, Patience: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].IP != b[i].IP {
			t.Fatalf("rank %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
