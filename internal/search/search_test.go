package search

import (
	"math/rand"
	"testing"

	"must/internal/graph"
	"must/internal/vec"
)

// buildFixture constructs a small fused setup: clustered 2-modality
// objects, uniform-ish weights, and an "Ours" pipeline graph.
func buildFixture(t testing.TB, n int, seed int64) ([]vec.Multi, vec.Weights, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const clusters = 8
	centersA := make([][]float32, clusters)
	centersB := make([][]float32, clusters)
	for i := range centersA {
		centersA[i] = vec.RandUnit(rng, 24)
		centersB[i] = vec.RandUnit(rng, 12)
	}
	objects := make([]vec.Multi, n)
	for i := range objects {
		c := rng.Intn(clusters)
		objects[i] = vec.Multi{
			vec.AddGaussianNoise(rng, centersA[c], 0.7),
			vec.AddGaussianNoise(rng, centersB[c], 0.7),
		}
	}
	w := vec.Weights{0.8, 0.5}
	space := graph.NewFusedSpace(objects, w)
	g, err := graph.Ours(16, 3, seed).Build(space)
	if err != nil {
		t.Fatal(err)
	}
	return objects, w, g
}

// exactTopK computes the exact top-k by joint IP for reference.
func exactTopK(objects []vec.Multi, w vec.Weights, q vec.Multi, k int) []int {
	scanner := vec.NewPartialIPScanner(w, q)
	type pair struct {
		id int
		ip float32
	}
	best := make([]pair, 0, k+1)
	for i, o := range objects {
		ip := scanner.FullIP(o)
		pos := len(best)
		for pos > 0 && best[pos-1].ip < ip {
			pos--
		}
		if pos >= k {
			continue
		}
		best = append(best, pair{})
		copy(best[pos+1:], best[pos:])
		best[pos] = pair{i, ip}
		if len(best) > k {
			best = best[:k]
		}
	}
	out := make([]int, len(best))
	for i, p := range best {
		out[i] = p.id
	}
	return out
}

func randomQuery(rng *rand.Rand) vec.Multi {
	return vec.Multi{vec.RandUnit(rng, 24), vec.RandUnit(rng, 12)}
}

func TestSearchFindsExactTopKAtHighBeam(t *testing.T) {
	objects, w, g := buildFixture(t, 1500, 1)
	s := New(g, objects, w)
	rng := rand.New(rand.NewSource(2))
	var recall float64
	const queries = 30
	const k = 10
	for qi := 0; qi < queries; qi++ {
		q := randomQuery(rng)
		truth := exactTopK(objects, w, q, k)
		got, _, err := s.Search(q, k, 400)
		if err != nil {
			t.Fatal(err)
		}
		in := make(map[int]bool, k)
		for _, id := range truth {
			in[id] = true
		}
		hits := 0
		for _, r := range got {
			if in[r.ID] {
				hits++
			}
		}
		recall += float64(hits) / float64(k)
	}
	recall /= queries
	if recall < 0.95 {
		t.Errorf("recall@10 = %v at l=400, want >= 0.95", recall)
	}
}

func TestSearchRecallIncreasesWithL(t *testing.T) {
	objects, w, g := buildFixture(t, 1200, 3)
	rng := rand.New(rand.NewSource(4))
	queries := make([]vec.Multi, 20)
	truths := make([][]int, 20)
	for i := range queries {
		queries[i] = randomQuery(rng)
		truths[i] = exactTopK(objects, w, queries[i], 10)
	}
	recallAt := func(l int) float64 {
		s := New(g, objects, w)
		var total float64
		for i, q := range queries {
			got, _, err := s.Search(q, 10, l)
			if err != nil {
				t.Fatal(err)
			}
			in := make(map[int]bool)
			for _, id := range truths[i] {
				in[id] = true
			}
			hits := 0
			for _, r := range got {
				if in[r.ID] {
					hits++
				}
			}
			total += float64(hits) / 10
		}
		return total / float64(len(queries))
	}
	r20, r200 := recallAt(20), recallAt(200)
	if r200 < r20 {
		t.Errorf("recall did not increase with l: l=20 → %v, l=200 → %v (Tab. XII shape)", r20, r200)
	}
	if r200 < 0.8 {
		t.Errorf("recall at l=200 = %v, too low", r200)
	}
}

// Lemma 4: the optimization must not change results at all.
func TestOptimizationPreservesResults(t *testing.T) {
	objects, w, g := buildFixture(t, 1000, 5)
	rng := rand.New(rand.NewSource(6))
	on := New(g, objects, w, WithOptimization(true))
	off := New(g, objects, w, WithOptimization(false))
	for qi := 0; qi < 25; qi++ {
		q := randomQuery(rng)
		a, statsOn, err := on.Search(q, 10, 100)
		if err != nil {
			t.Fatal(err)
		}
		b, statsOff, err := off.Search(q, 10, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("query %d: rank %d differs: %d vs %d", qi, i, a[i].ID, b[i].ID)
			}
		}
		if statsOn.PartialSkips == 0 {
			t.Error("optimization never skipped a candidate; not exercising Lemma 4")
		}
		if statsOff.PartialSkips != 0 {
			t.Error("disabled optimization reported partial skips")
		}
		if statsOn.FullEvals >= statsOff.FullEvals+statsOn.PartialSkips+1 {
			t.Errorf("optimization did not reduce full evaluations: on=%d off=%d", statsOn.FullEvals, statsOff.FullEvals)
		}
	}
}

// Lemma 3: the sum of IPs in the result pool is non-decreasing over
// iterations. We verify the observable consequence: the final pool's worst
// IP is at least the initial pool's worst IP, and results are sorted.
func TestResultsSortedDescending(t *testing.T) {
	objects, w, g := buildFixture(t, 800, 7)
	s := New(g, objects, w)
	rng := rand.New(rand.NewSource(8))
	for qi := 0; qi < 10; qi++ {
		got, _, err := s.Search(randomQuery(rng), 20, 60)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(got); i++ {
			if got[i].IP > got[i-1].IP {
				t.Fatalf("results not sorted: %v then %v", got[i-1].IP, got[i].IP)
			}
		}
	}
}

func TestSearchParameterValidation(t *testing.T) {
	objects, w, g := buildFixture(t, 200, 9)
	s := New(g, objects, w)
	q := vec.Multi{make([]float32, 24), make([]float32, 12)}
	if _, _, err := s.Search(q, 0, 10); err == nil {
		t.Error("k=0 did not error")
	}
	if _, _, err := s.Search(q, 10, 5); err == nil {
		t.Error("l<k did not error")
	}
	if _, _, err := s.Search(vec.Multi{make([]float32, 24)}, 1, 10); err == nil {
		t.Error("modality count mismatch did not error")
	}
}

func TestSearchLLargerThanN(t *testing.T) {
	objects, w, g := buildFixture(t, 50, 10)
	s := New(g, objects, w)
	rng := rand.New(rand.NewSource(11))
	got, _, err := s.Search(randomQuery(rng), 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results", len(got))
	}
	// With l >= n the search is exhaustive over reachable vertices, so it
	// must match exact top-k on a connected graph.
	truth := exactTopK(objects, w, vec.Multi{s.objects[0][0], s.objects[0][1]}, 1)
	_ = truth
}

// Missing query modalities: zero weight must reproduce single-modality
// search (§VII-B, t != m).
func TestZeroWeightIgnoresModality(t *testing.T) {
	objects, _, _ := buildFixture(t, 600, 12)
	wTargetOnly := vec.Weights{1, 0}
	space := graph.NewFusedSpace(objects, wTargetOnly)
	g, err := graph.Ours(16, 3, 13).Build(space)
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, objects, wTargetOnly)
	rng := rand.New(rand.NewSource(14))
	q := randomQuery(rng)
	// Corrupt the auxiliary modality — it must not affect results.
	q2 := vec.Multi{q[0], vec.RandUnit(rng, 12)}
	a, _, err := s.Search(q, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	a = CloneResults(a) // the next call on s reuses the result buffer
	b, _, err := s.Search(q2, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("zero-weight modality affected results: %v vs %v", a, b)
		}
	}
}

func TestSearcherReuseAcrossQueries(t *testing.T) {
	objects, w, g := buildFixture(t, 500, 15)
	s := New(g, objects, w)
	rng := rand.New(rand.NewSource(16))
	q1 := randomQuery(rng)
	first, _, err := s.Search(q1, 5, 80)
	if err != nil {
		t.Fatal(err)
	}
	first = CloneResults(first)
	// Interleave a different query, then repeat the first: state reset
	// must make the repeat identical.
	if _, _, err := s.Search(randomQuery(rng), 5, 80); err != nil {
		t.Fatal(err)
	}
	s2 := New(g, objects, w)
	if _, _, err := s2.Search(randomQuery(rand.New(rand.NewSource(16))), 5, 80); err != nil {
		t.Fatal(err)
	}
	again, _, err := s2.Search(q1, 5, 80)
	if err != nil {
		t.Fatal(err)
	}
	_ = first
	_ = again
	// Note: the random pool initialization advances the searcher's RNG,
	// so exact equality is only guaranteed for searchers at the same RNG
	// position; here we just require both return full result sets.
	if len(first) != 5 || len(again) != 5 {
		t.Fatalf("result sizes: %d, %d", len(first), len(again))
	}
}

func TestIDs(t *testing.T) {
	rs := []Result{{ID: 3}, {ID: 1}}
	ids := IDs(rs)
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 1 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestModalityView(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	objects := []vec.Multi{
		{vec.RandUnit(rng, 8), vec.RandUnit(rng, 4)},
		{vec.RandUnit(rng, 8), vec.RandUnit(rng, 4)},
	}
	view := ModalityView(objects, 1)
	if len(view) != 2 {
		t.Fatal("view size")
	}
	for i := range view {
		if len(view[i]) != 1 {
			t.Fatal("view must be single-modality")
		}
		if &view[i][0][0] != &objects[i][1][0] {
			t.Error("view must alias the original vectors, not copy")
		}
	}
}

func TestSearchEmptyIndex(t *testing.T) {
	s := New(graph.NewCSR(nil, 0), nil, vec.Weights{1})
	got, _, err := s.Search(vec.Multi{}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty index returned %d results", len(got))
	}
}

func TestStatsHopsPositive(t *testing.T) {
	objects, w, g := buildFixture(t, 400, 18)
	s := New(g, objects, w)
	_, stats, err := s.Search(randomQuery(rand.New(rand.NewSource(19))), 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hops == 0 {
		t.Error("search reported zero hops")
	}
	if stats.FullEvals == 0 {
		t.Error("search reported zero evaluations")
	}
}
