package search

import (
	"math/rand"
	"testing"

	"must/internal/graph"
	"must/internal/vec"
)

// The CSR core and the append-overlay are two storage paths for the same
// topology; routing must not be able to tell them apart. This pins the
// refactor from [][]int32 adjacency to CSR: a graph whose every list is
// served from the overlay (the old slice-per-vertex shape) must produce
// bit-identical results and routing Stats to the sealed CSR graph.
func TestCSRAndOverlaySearchIdentical(t *testing.T) {
	objects, w, g := buildFixture(t, 900, 81)
	// Rebuild the same topology with every vertex overlaid.
	adj := make([][]int32, g.NumVertices())
	for v := range adj {
		adj[v] = append([]int32(nil), g.Neighbors(int32(v))...)
	}
	overlaid := graph.NewCSR(make([][]int32, len(adj)), g.Seed)
	for v := range adj {
		overlaid.SetNeighbors(int32(v), adj[v])
	}
	if overlaid.OverlayVertices() != len(adj) {
		t.Fatalf("overlay coverage = %d, want %d", overlaid.OverlayVertices(), len(adj))
	}

	rng := rand.New(rand.NewSource(82))
	a := New(g, objects, w, WithRandSeed(7))
	b := New(overlaid, objects, w, WithRandSeed(7))
	for qi := 0; qi < 15; qi++ {
		q := randomQuery(rng)
		ra, sa, err := a.Search(q, 10, 150)
		if err != nil {
			t.Fatal(err)
		}
		ra = CloneResults(ra)
		rb, sb, err := b.Search(q, 10, 150)
		if err != nil {
			t.Fatal(err)
		}
		if sa != sb {
			t.Fatalf("query %d: stats differ: CSR %+v vs overlay %+v", qi, sa, sb)
		}
		if len(ra) != len(rb) {
			t.Fatalf("query %d: result counts differ", qi)
		}
		for i := range ra {
			if ra[i].ID != rb[i].ID || ra[i].IP != rb[i].IP {
				t.Fatalf("query %d rank %d: CSR (%d,%v) vs overlay (%d,%v)",
					qi, i, ra[i].ID, ra[i].IP, rb[i].ID, rb[i].IP)
			}
		}
	}
	// Compacting the overlaid graph must not change anything either.
	overlaid.Compact()
	c := New(overlaid, objects, w, WithRandSeed(7))
	a2 := New(g, objects, w, WithRandSeed(7))
	q := randomQuery(rng)
	ra, _, err := a2.Search(q, 10, 150)
	if err != nil {
		t.Fatal(err)
	}
	ra = CloneResults(ra)
	rc, _, err := c.Search(q, 10, 150)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		if ra[i].ID != rc[i].ID {
			t.Fatalf("rank %d differs after Compact", i)
		}
	}
}

// Steady-state searches on the flat-kernel path must not allocate: the
// epoch-stamped visit marks, the reused result pool, and the in-place
// scanner reset together make the per-call footprint zero. This is the
// unit-test twin of the 0 allocs/op benchmark gate.
func TestSearchSteadyStateZeroAllocs(t *testing.T) {
	objects, w, g := buildFixture(t, 600, 83)
	store := vec.FlatFromMulti(objects)
	s := NewFlat(g, store, w)
	rng := rand.New(rand.NewSource(84))
	queries := make([]vec.Multi, 8)
	for i := range queries {
		queries[i] = randomQuery(rng)
	}
	// Warm the reusable buffers.
	for _, q := range queries {
		if _, _, err := s.Search(q, 10, 200); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(40, func() {
		q := queries[i%len(queries)]
		i++
		if _, _, err := s.Search(q, 10, 200); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state search allocates %.2f times per call, want 0", avg)
	}
}
