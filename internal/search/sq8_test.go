package search

import (
	"math/rand"
	"testing"

	"must/internal/vec"
)

// quantFixture builds a fused setup with a trained SQ8 shadow store.
func quantFixture(t testing.TB, n int, seed int64) (*Searcher, []vec.Multi, vec.Weights, *vec.FlatStore) {
	t.Helper()
	objects, w, g := buildFixture(t, n, seed)
	store := vec.FlatFromMulti(objects)
	store.EnableSQ8()
	store.SyncSQ8()
	return NewFlat(g, store, w), objects, w, store
}

func TestQuantizedSearchRecall(t *testing.T) {
	s, objects, w, _ := quantFixture(t, 2000, 31)
	rng := rand.New(rand.NewSource(32))
	const k, l = 10, 200
	qHits, fHits, total := 0, 0, 0
	for trial := 0; trial < 20; trial++ {
		q := randomQuery(rng)
		want := exactTopK(objects, w, q, k)
		in := make(map[int]bool, len(want))
		for _, id := range want {
			in[id] = true
		}
		qGot, _, err := s.SearchParams(q, Params{K: k, L: l, Optimize: true, Quantized: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range qGot {
			if in[r.ID] {
				qHits++
			}
		}
		fGot, _, err := s.SearchParams(q, Params{K: k, L: l, Optimize: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range fGot {
			if in[r.ID] {
				fHits++
			}
		}
		total += k
	}
	qRecall := float64(qHits) / float64(total)
	fRecall := float64(fHits) / float64(total)
	t.Logf("recall@%d over %d queries: quantized %.3f, float32 %.3f", k, total/k, qRecall, fRecall)
	// The floor is relative to the float32 beam search on the same
	// fixture: quantization (with the default 4·k exact re-rank) may cost
	// at most 5 points of recall on top of whatever the routing itself
	// loses on this deliberately noisy corpus.
	if qRecall < fRecall-0.05 {
		t.Fatalf("quantized recall@%d = %.3f, float32 path = %.3f; want within 0.05", k, qRecall, fRecall)
	}
}

// TestQuantizedRerankScoresExact locks the re-rank contract: every
// returned result carries its exact float32 joint IP (default re-rank
// depth 4·k covers the whole returned slice), not the quantized
// approximation routing used.
func TestQuantizedRerankScoresExact(t *testing.T) {
	s, _, w, store := quantFixture(t, 800, 57)
	rng := rand.New(rand.NewSource(58))
	for trial := 0; trial < 10; trial++ {
		q := randomQuery(rng)
		got, _, err := s.SearchParams(q, Params{K: 10, L: 100, Optimize: true, Quantized: true})
		if err != nil {
			t.Fatal(err)
		}
		exact := vec.NewFlatScanner(store, w, q)
		for _, r := range got {
			if want := exact.FullIP(store.Row(r.ID)); r.IP != want {
				t.Fatalf("trial %d id %d: result IP %v != exact %v", trial, r.ID, r.IP, want)
			}
		}
		for i := 1; i < len(got); i++ {
			if got[i].IP > got[i-1].IP {
				t.Fatalf("trial %d: re-ranked results out of order at %d", trial, i)
			}
		}
	}
}

// TestQuantizedFallsBackWithoutShadow: Params.Quantized on a store with no
// trained shadow must silently serve the exact path with identical results.
func TestQuantizedFallsBackWithoutShadow(t *testing.T) {
	objects, w, g := buildFixture(t, 600, 41)
	store := vec.FlatFromMulti(objects)
	s := NewFlat(g, store, w)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		q := randomQuery(rng)
		p := Params{K: 10, L: 100, Optimize: true}
		want, _, err := s.SearchParams(q, p)
		if err != nil {
			t.Fatal(err)
		}
		wantIDs := append([]int(nil), IDs(want)...)
		p.Quantized = true
		got, _, err := s.SearchParams(q, p)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range IDs(got) {
			if id != wantIDs[i] {
				t.Fatalf("trial %d: fallback results differ at rank %d: %d vs %d", trial, i, id, wantIDs[i])
			}
		}
	}
}

// TestQuantizedSteadyStateZeroAllocs: the quantized scan + re-rank path
// must stay allocation-free once the reusable buffers are warm, like the
// float32 path the CI gate pins.
func TestQuantizedSteadyStateZeroAllocs(t *testing.T) {
	s, _, _, _ := quantFixture(t, 600, 83)
	rng := rand.New(rand.NewSource(84))
	queries := make([]vec.Multi, 8)
	for i := range queries {
		queries[i] = randomQuery(rng)
	}
	p := Params{K: 10, L: 200, Optimize: true, Quantized: true}
	for _, q := range queries {
		if _, _, err := s.SearchParams(q, p); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(40, func() {
		q := queries[i%len(queries)]
		i++
		if _, _, err := s.SearchParams(q, p); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state quantized search allocates %.2f times per call, want 0", avg)
	}
}

// TestQuantizedTombstonesAndFilter: routing over codes must still honor
// tombstones and filters on the way out.
func TestQuantizedTombstonesAndFilter(t *testing.T) {
	s, _, _, _ := quantFixture(t, 600, 19)
	rng := rand.New(rand.NewSource(20))
	q := randomQuery(rng)
	dead := make([]bool, 600)
	base, _, err := s.SearchParams(q, Params{K: 5, L: 100, Optimize: true, Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	banned := base[0].ID
	dead[banned] = true
	got, _, err := s.SearchParams(q, Params{
		K: 5, L: 100, Optimize: true, Quantized: true,
		Tombstones: dead,
		Filter:     func(id int) bool { return id%2 == banned%2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID == banned {
			t.Fatal("tombstoned object returned")
		}
		if r.ID%2 != banned%2 {
			t.Fatalf("filtered-out object %d returned", r.ID)
		}
	}
}
