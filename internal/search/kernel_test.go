package search

import (
	"math/rand"
	"testing"

	"must/internal/vec"
)

// The fused flat kernel and the legacy per-modality kernel must return
// the same ranked IDs with matching similarities: the flat path changes
// memory layout and arithmetic grouping, not semantics.
func TestFlatAndLegacyKernelsAgree(t *testing.T) {
	objects, w, g := buildFixture(t, 900, 71)
	flat := New(g, objects, w)
	legacy := New(g, objects, w, WithFlatKernel(false))
	rng := rand.New(rand.NewSource(72))
	for qi := 0; qi < 20; qi++ {
		q := randomQuery(rng)
		a, _, err := flat.Search(q, 10, 120)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := legacy.Search(q, 10, 120)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: result counts differ: %d vs %d", qi, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("query %d rank %d: flat %d vs legacy %d", qi, i, a[i].ID, b[i].ID)
			}
			d := float64(a[i].IP - b[i].IP)
			if d > 1e-5 || d < -1e-5 {
				t.Fatalf("query %d rank %d: similarity drift %v vs %v", qi, i, a[i].IP, b[i].IP)
			}
		}
	}
}

// NewFlat over a shared store must behave like New over the original
// multi-vectors, including per-modality breakdowns derived from store
// views.
func TestNewFlatSharedStoreMatchesNew(t *testing.T) {
	objects, w, g := buildFixture(t, 700, 73)
	store := vec.FlatFromMulti(objects)
	shared := NewFlat(g, store, w)
	private := New(g, objects, w)
	rng := rand.New(rand.NewSource(74))
	for qi := 0; qi < 10; qi++ {
		q := randomQuery(rng)
		p := Params{K: 5, L: 90, Optimize: true, Breakdown: true}
		a, _, err := shared.SearchParams(q, p)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := private.SearchParams(q, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].IP != b[i].IP {
				t.Fatalf("query %d rank %d: shared (%d,%v) vs private (%d,%v)",
					qi, i, a[i].ID, a[i].IP, b[i].ID, b[i].IP)
			}
			for m := range a[i].PerModality {
				if a[i].PerModality[m] != b[i].PerModality[m] {
					t.Fatalf("query %d rank %d: breakdowns differ", qi, i)
				}
			}
		}
	}
}
