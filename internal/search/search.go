// Package search implements MUST's merging-free joint search (Algorithm 2,
// §VII-B): greedy beam routing over the fused proximity graph under the
// joint similarity of Lemma 1, with the multi-vector partial-inner-product
// early-termination optimization of Lemma 4.
package search

import (
	"context"
	"fmt"
	"math/rand"

	"must/internal/graph"
	"must/internal/vec"
)

// Stats reports the work one search performed; the Fig. 10(c) experiment
// and the efficiency analyses read these.
type Stats struct {
	// FullEvals counts candidates whose joint IP was computed across all
	// modalities.
	FullEvals int
	// PartialSkips counts candidates discarded early by the Lemma 4
	// bound before all modalities were scanned.
	PartialSkips int
	// Hops counts the vertices expanded by greedy routing.
	Hops int
}

// Searcher executes joint searches over a fused index. It is not safe for
// concurrent use; create one Searcher per goroutine (they share the
// underlying graph and the read-only vector storage — pooled searchers
// over one shared FlatStore cost only their visit buffers).
//
// Steady-state searches are allocation-free on the flat-kernel path: the
// visit state is a single epoch-stamped []uint32 (bumping the epoch
// resets it in O(1), replacing two []bool arrays and a touched-list
// sweep), the Algorithm 2 result pool and the neighbor-batch buffer are
// reused across calls, and the fused scanner re-targets in place. The
// returned result slice is part of that reused state — see SearchParams.
//
// Candidate scoring runs on a contiguous vec.FlatStore through the fused
// vec.FlatScanner kernel: one ω²-scaled multiply-add sweep per candidate
// row, with the Lemma 4 early exit checked at modality boundaries. The
// legacy [][]float32 per-modality path is kept behind WithFlatKernel(false)
// for comparison benchmarks.
type Searcher struct {
	g *graph.Graph
	// store is the packed vector storage the flat kernel scores against.
	store *vec.FlatStore
	// objects is the multi-vector view of the same data, used by the
	// legacy kernel and for per-modality breakdowns; nil when constructed
	// with NewFlat (views are derived from the store on demand).
	objects []vec.Multi
	// n is the object count at construction time; searchers never see
	// objects appended later (create a new searcher after inserts).
	n       int
	useFlat bool
	weights vec.Weights
	// optimize toggles the Lemma 4 partial-IP early termination
	// (§VIII-G, Fig. 10(c)).
	optimize bool
	// tombstones marks deleted objects (§IX index updates): tombstoned
	// vertices still route — they may be essential for connectivity — but
	// are excluded from results until the next rebuild.
	tombstones []bool
	// filter, when set, restricts results to objects it accepts — the
	// hybrid-query setting of §III (vector search + attribute
	// constraints). Filtered-out vertices still route.
	filter func(id int) bool
	// patience enables adaptive early termination: stop routing after
	// this many consecutive hops that fail to improve the result pool
	// (0 = run Algorithm 2 to completion).
	patience int
	rng      *rand.Rand

	// Reusable per-search state. marks is the epoch-stamped visit array:
	// marks[v] == gen means v's IP has been computed (H' of Algorithm 2),
	// marks[v] == gen+1 means v has also been expanded (H). gen advances
	// by 2 per search, so the array resets without being touched.
	marks []uint32
	gen   uint32
	// pool is the result set R of Algorithm 2, reused across calls.
	pool []poolEntry
	// results backs the returned slice; valid until the next search.
	results []Result
	batch   []int32 // unseen neighbors of the current hop, gathered first
	// flat is the reusable fused scanner (reset per call on the flat path).
	flat vec.FlatScanner
	// sq8 is the reusable quantized scanner (reset per call when
	// Params.Quantized routes over the SQ8 shadow store).
	sq8 vec.SQ8Scanner
}

// poolEntry is one entry of the Algorithm 2 result pool R.
type poolEntry struct {
	id int32
	ip float32
}

// Option configures a Searcher.
type Option func(*Searcher)

// WithOptimization enables or disables the Lemma 4 multi-vector
// computation optimization (enabled by default).
func WithOptimization(on bool) Option {
	return func(s *Searcher) { s.optimize = on }
}

// WithRandSeed fixes the seed of the random initial candidates of
// Algorithm 2 line 2 (default 1, making searches deterministic).
func WithRandSeed(seed int64) Option {
	return func(s *Searcher) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithTombstones attaches a deletion bitset (§IX): objects with a true
// entry are routed through during greedy search — removing them could
// disconnect the graph — but never returned. The slice is shared, not
// copied, so callers may flip entries between searches. Raise l when many
// objects are deleted, since tombstoned pool entries crowd out results.
func WithTombstones(dead []bool) Option {
	return func(s *Searcher) { s.tombstones = dead }
}

// WithFilter restricts results to objects accepted by keep — the hybrid
// vector-plus-constraint queries of §III. Rejected objects still
// participate in routing; raise l when the filter is selective.
func WithFilter(keep func(id int) bool) Option {
	return func(s *Searcher) { s.filter = keep }
}

// WithEarlyTermination stops the greedy routing after `patience`
// consecutive hops that do not improve the result pool, trading a little
// recall for latency (the adaptive-termination idea the paper cites as
// [54]). patience ≤ 0 disables it (Algorithm 2 runs to completion).
func WithEarlyTermination(patience int) Option {
	return func(s *Searcher) { s.patience = patience }
}

// WithFlatKernel selects between the fused flat-store kernel (true, the
// default) and the legacy per-modality [][]float32 scan. The legacy path
// exists for the BenchmarkSearch flat-vs-legacy comparison and as a
// cross-check in tests; both produce the same results.
func WithFlatKernel(on bool) Option {
	return func(s *Searcher) { s.useFlat = on }
}

// New creates a Searcher over a built graph, the object multi-vectors it
// indexes, and the modality weights. The objects are packed into a private
// FlatStore for the fused kernel; when many searchers share one corpus
// (e.g. a server-side pool), build the store once and use NewFlat instead.
func New(g *graph.Graph, objects []vec.Multi, w vec.Weights, opts ...Option) *Searcher {
	s := &Searcher{
		g:        g,
		store:    vec.FlatFromMulti(objects),
		objects:  objects,
		n:        len(objects),
		useFlat:  true,
		weights:  w,
		optimize: true,
		rng:      rand.New(rand.NewSource(1)),
		marks:    make([]uint32, len(objects)),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// NewFlat creates a Searcher sharing an already packed FlatStore — the
// zero-copy constructor the Engine's searcher pool uses. store may be nil
// only for an empty index.
func NewFlat(g *graph.Graph, store *vec.FlatStore, w vec.Weights, opts ...Option) *Searcher {
	n := 0
	if store != nil {
		n = store.Len()
	}
	s := &Searcher{
		g:        g,
		store:    store,
		n:        n,
		useFlat:  true,
		weights:  w,
		optimize: true,
		rng:      rand.New(rand.NewSource(1)),
		marks:    make([]uint32, n),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// object returns object id as a multi-vector, preferring the caller-shared
// slice and falling back to flat-store views.
func (s *Searcher) object(id int32) vec.Multi {
	if s.objects != nil {
		return s.objects[id]
	}
	return s.store.Multi(int(id))
}

// Result is one returned object with its joint similarity.
type Result struct {
	ID int
	IP float32
	// PerModality holds the per-modality contributions ω_i²·IP_i whose sum
	// is the joint IP (Lemma 1). Populated only when Params.Breakdown is
	// set; nil otherwise.
	PerModality []float32
}

// Params configures a single search call, overriding the Searcher's
// constructor-time options. The zero value is not useful — K and L are
// required; use Defaults (or the legacy Search method) to inherit the
// constructor options.
type Params struct {
	// K is the number of results; L is the result-set size l of
	// Algorithm 2 (l ≥ k).
	K, L int
	// Weights overrides the searcher weights for this call (user-defined
	// weight preference, §VIII-F); nil keeps the searcher weights.
	Weights vec.Weights
	// Filter restricts results to accepted objects (§III hybrid queries).
	Filter func(id int) bool
	// Tombstones marks deleted objects (§IX); routed through, never
	// returned.
	Tombstones []bool
	// Patience > 0 enables adaptive early termination.
	Patience int
	// Optimize toggles the Lemma 4 partial-IP early termination.
	Optimize bool
	// Breakdown requests per-modality similarity contributions on the
	// returned results (Result.PerModality).
	Breakdown bool
	// Quantized routes the beam search over the store's SQ8 shadow (1
	// byte/dim instead of 4 — see vec.SQ8Store) and re-ranks the top
	// RerankK pool entries with exact float32 scores before returning.
	// Silently falls back to the exact path when the store has no trained
	// shadow covering the searcher's snapshot (e.g. quantization disabled,
	// or the legacy kernel selected).
	Quantized bool
	// RerankK is the exact re-rank depth of the quantized path: how many
	// of the top pool entries get exact float32 scores. 0 means 4·K
	// (clamped to L). Deeper re-rank recovers more of the recall lost to
	// quantization error at the cost of rerank_k full float32 sweeps.
	RerankK int
	// Ctx, when non-nil, is checked periodically during routing; the
	// search aborts with the context's error on cancellation or deadline.
	Ctx context.Context
}

// defaults returns Params inheriting the searcher's constructor options.
func (s *Searcher) defaults(k, l int) Params {
	return Params{
		K:          k,
		L:          l,
		Filter:     s.filter,
		Tombstones: s.tombstones,
		Patience:   s.patience,
		Optimize:   s.optimize,
	}
}

// ctxCheckInterval is how many routing hops pass between ctx.Err() polls;
// a power of two so the check compiles to a mask.
const ctxCheckInterval = 64

// Search returns the approximate top-k results for the multimodal query
// under the searcher's weights. l is the result-set size of Algorithm 2
// (l ≥ k); larger l trades speed for recall (Tab. XII). Missing query
// modalities are handled by zero weights in the searcher's weight vector
// (§VII-B). The returned slice is owned by the Searcher and valid until
// its next search — see SearchParams.
func (s *Searcher) Search(query vec.Multi, k, l int) ([]Result, Stats, error) {
	return s.SearchParams(query, s.defaults(k, l))
}

// SearchParams is Search with explicit per-call parameters. It lets one
// pooled Searcher serve calls with different filters, weights, tombstone
// sets, and contexts: the Searcher contributes only the graph, the object
// vectors, and its reusable routing buffers.
//
// The returned slice aliases the Searcher's reusable result buffer: it is
// valid until the next Search/SearchParams call on this Searcher. Copy it
// (or the fields you need) before searching again — the steady-state
// search path performs zero allocations, so there is no per-call slice to
// hand out.
func (s *Searcher) SearchParams(query vec.Multi, p Params) ([]Result, Stats, error) {
	k, l := p.K, p.L
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("search: k must be positive, got %d", k)
	}
	if l < k {
		return nil, Stats{}, fmt.Errorf("search: l (%d) must be at least k (%d)", l, k)
	}
	modalities := 0
	if s.store != nil {
		modalities = s.store.Modalities()
	} else if len(s.objects) > 0 {
		modalities = len(s.objects[0])
	}
	if len(query) != 0 && modalities > 0 && len(query) != modalities {
		return nil, Stats{}, fmt.Errorf("search: query has %d modalities, objects have %d", len(query), modalities)
	}
	if p.Ctx != nil {
		if err := p.Ctx.Err(); err != nil {
			return nil, Stats{}, fmt.Errorf("search: %w", err)
		}
	}
	n := s.n
	if n == 0 {
		return nil, Stats{}, nil
	}
	if l > n {
		l = n
	}
	weights := s.weights
	if p.Weights != nil {
		weights = p.Weights
	}

	var stats Stats
	// Kernel selection: the fused flat scanner sweeps each candidate's
	// packed row once; the legacy scanner dispatches per modality slice.
	// Both use the same distance formulation and accumulation order, so
	// the optimized and unoptimized paths agree bit-for-bit within either
	// kernel. The flat scanner is re-targeted in place (no allocation);
	// the comparison-only legacy path allocates a scanner per call.
	var flat *vec.FlatScanner
	var legacy *vec.PartialIPScanner
	var quant *vec.SQ8Scanner
	var codes *vec.SQ8Store
	if s.useFlat && s.store != nil {
		s.flat.Reset(s.store, weights, query)
		flat = &s.flat
		if p.Quantized {
			if q := s.store.SQ8(); q != nil && q.Trained() && q.Len() >= n {
				s.sq8.Reset(s.store, weights, query)
				quant = &s.sq8
				codes = q
			}
		}
	} else {
		legacy = vec.NewPartialIPScanner(weights, query)
	}

	// Advance the visit epoch: every stamp from previous searches is now
	// stale, which resets the whole array in O(1). Near the uint32 limit
	// the stamps are cleared for real and the epoch restarts.
	s.gen += 2
	if s.gen >= ^uint32(1) { // 2^32-2: gen+1 would wrap next search
		for i := range s.marks {
			s.marks[i] = 0
		}
		s.gen = 2
	}
	gen := s.gen
	marks := s.marks
	seenCount := 0

	// evalFull computes the routing joint IP with no early termination —
	// exact on the float32 paths, approximate (dequantized) on the
	// quantized path, where the post-routing re-rank restores exactness.
	evalFull := func(id int32) float32 {
		stats.FullEvals++
		if quant != nil {
			return quant.FullIP(codes.Row(int(id)))
		}
		if flat != nil {
			return flat.FullIP(s.store.Row(int(id)))
		}
		return legacy.FullIP(s.object(id))
	}

	// R: the result pool, sorted by descending IP, capacity l, reused
	// across calls. cursor is the lowest index that may hold an unvisited
	// entry: everything before it is visited, so the per-hop "nearest
	// unvisited vertex" lookup resumes from cursor instead of rescanning
	// the pool from the top (which costs O(l) per hop and dominated
	// routing at large l).
	if cap(s.pool) < l {
		s.pool = make([]poolEntry, 0, l)
	}
	pool := s.pool[:0]
	cursor := 0
	insert := func(id int32, ip float32) {
		// Hand-rolled binary search for the first entry with a smaller IP
		// (sort.Search's closure indirection shows up at this call rate).
		lo, hi := 0, len(pool)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if pool[mid].ip < ip {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		pos := lo
		if len(pool) < l {
			pool = append(pool, poolEntry{})
		} else if pos >= l {
			return
		}
		copy(pool[pos+1:], pool[pos:])
		pool[pos] = poolEntry{id, ip}
		if pos < cursor {
			cursor = pos
		}
	}
	mark := func(id int32) {
		marks[id] = gen
		seenCount++
	}

	// Line 1-3: seed plus l-1 random vertices.
	mark(s.g.Seed)
	insert(s.g.Seed, evalFull(s.g.Seed))
	for len(pool) < l {
		id := int32(s.rng.Intn(n))
		if marks[id] >= gen {
			continue
		}
		mark(id)
		insert(id, evalFull(id))
		if seenCount == n {
			break
		}
	}

	// Lines 4-10: greedy routing.
	stale := 0
	for {
		if p.Ctx != nil && stats.Hops&(ctxCheckInterval-1) == 0 {
			if err := p.Ctx.Err(); err != nil {
				s.pool = pool[:0]
				return nil, stats, fmt.Errorf("search: %w", err)
			}
		}
		// v ← nearest unvisited vertex in R (first unvisited at or after
		// cursor; the cursor invariant keeps everything before it visited).
		for cursor < len(pool) && marks[pool[cursor].id] == gen+1 {
			cursor++
		}
		if cursor == len(pool) {
			break
		}
		v := pool[cursor].id
		marks[v] = gen + 1 // visited
		stats.Hops++
		threshold := pool[len(pool)-1].ip // worst of R (z in Algorithm 2)
		full := len(pool) == l
		improved := false
		// Gather the unseen neighbors first, then score the batch: the
		// candidate IDs are resolved up front — one zero-copy subslice of
		// the CSR edge array per hop — so the scoring loop is a straight
		// run of row sweeps over the packed store, which the hardware
		// prefetcher handles far better than scoring interleaved with
		// adjacency chasing. Each gathered row is software-prefetched
		// here, a full batch ahead of its dot sweep: candidate rows are
		// random-access into a multi-MB arena, and without the hint every
		// sweep stalls on a cold row.
		batch := s.batch[:0]
		for _, u := range s.g.Neighbors(v) {
			if marks[u] >= gen {
				continue
			}
			mark(u)
			batch = append(batch, u)
			if quant != nil {
				vec.PrefetchBytes(codes.Row(int(u)))
			} else if flat != nil {
				vec.PrefetchFloats(s.store.Row(int(u)))
			}
		}
		s.batch = batch
		for _, u := range batch {
			var ip float32
			if p.Optimize && full {
				var bound float32
				var exact bool
				if quant != nil {
					bound, exact = quant.Scan(codes.Row(int(u)), threshold)
				} else if flat != nil {
					bound, exact = flat.Scan(s.store.Row(int(u)), threshold)
				} else {
					bound, exact = legacy.Scan(s.object(u), threshold)
				}
				if !exact {
					stats.PartialSkips++
					continue
				}
				stats.FullEvals++
				ip = bound
			} else {
				ip = evalFull(u)
				if full && ip <= threshold {
					continue
				}
			}
			insert(u, ip)
			improved = true
			threshold = pool[len(pool)-1].ip
			full = len(pool) == l
		}
		if p.Patience > 0 {
			if improved {
				stale = 0
			} else if stale++; stale >= p.Patience {
				break
			}
		}
	}
	// Hand the (possibly grown) pool buffer back to the searcher.
	s.pool = pool

	// Exact re-rank of the quantized path: the top rk pool entries are
	// re-scored with the float32 scanner (already reset for this query)
	// and re-sorted in place. Entries past rk keep their approximate
	// scores — they only matter when filters/tombstones skip past the
	// re-ranked prefix, and the default depth of 4·k leaves slack for
	// that. Insertion sort: rk is small and the quantized order is already
	// nearly correct.
	if quant != nil {
		rk := p.RerankK
		if rk <= 0 {
			rk = 4 * k
		}
		if rk > len(pool) {
			rk = len(pool)
		}
		for i := 0; i < rk; i++ {
			stats.FullEvals++
			pool[i].ip = flat.FullIP(s.store.Row(int(pool[i].id)))
		}
		for i := 1; i < rk; i++ {
			e := pool[i]
			j := i
			for ; j > 0 && pool[j-1].ip < e.ip; j-- {
				pool[j] = pool[j-1]
			}
			pool[j] = e
		}
	}

	out := s.results[:0]
	for _, e := range pool {
		if len(out) == k {
			break
		}
		if int(e.id) < len(p.Tombstones) && p.Tombstones[e.id] {
			continue
		}
		if p.Filter != nil && !p.Filter(int(e.id)) {
			continue
		}
		r := Result{ID: int(e.id), IP: e.ip}
		if p.Breakdown {
			r.PerModality = Breakdown(weights, query, s.object(e.id))
		}
		out = append(out, r)
	}
	s.results = out
	return out, stats, nil
}

// Breakdown computes the per-modality contributions ω_i²·IP_i of Lemma 1
// between query and cand, in the same distance formulation the routing
// uses (ω_i²·(1 − ½‖q_i − u_i‖²) on normalized vectors), so the
// contributions sum to the joint IP up to rounding.
func Breakdown(w vec.Weights, query, cand vec.Multi) []float32 {
	out := make([]float32, len(cand))
	for i := range cand {
		if i >= len(w) || w[i] == 0 {
			continue
		}
		w2 := w[i] * w[i]
		out[i] = w2 * (1 - 0.5*vec.SquaredL2(query[i], cand[i]))
	}
	return out
}

// IDs extracts the object IDs of results, in rank order.
func IDs(rs []Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

// CloneResults copies results out of a Searcher's reusable buffer, for
// callers that need them to survive the searcher's next call.
func CloneResults(rs []Result) []Result {
	return append([]Result(nil), rs...)
}

// ModalityView re-wraps multi-vector objects as single-modality objects so
// the same Searcher machinery can serve MR's per-modality indexes.
func ModalityView(objects []vec.Multi, modality int) []vec.Multi {
	out := make([]vec.Multi, len(objects))
	for i, o := range objects {
		out[i] = vec.Multi{o[modality]}
	}
	return out
}
