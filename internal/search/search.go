// Package search implements MUST's merging-free joint search (Algorithm 2,
// §VII-B): greedy beam routing over the fused proximity graph under the
// joint similarity of Lemma 1, with the multi-vector partial-inner-product
// early-termination optimization of Lemma 4.
package search

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"must/internal/graph"
	"must/internal/vec"
)

// Stats reports the work one search performed; the Fig. 10(c) experiment
// and the efficiency analyses read these.
type Stats struct {
	// FullEvals counts candidates whose joint IP was computed across all
	// modalities.
	FullEvals int
	// PartialSkips counts candidates discarded early by the Lemma 4
	// bound before all modalities were scanned.
	PartialSkips int
	// Hops counts the vertices expanded by greedy routing.
	Hops int
}

// Searcher executes joint searches over a fused index. It is not safe for
// concurrent use; create one Searcher per goroutine (they share the
// underlying graph and object vectors, which are read-only).
type Searcher struct {
	g       *graph.Graph
	objects []vec.Multi
	weights vec.Weights
	// optimize toggles the Lemma 4 partial-IP early termination
	// (§VIII-G, Fig. 10(c)).
	optimize bool
	// tombstones marks deleted objects (§IX index updates): tombstoned
	// vertices still route — they may be essential for connectivity — but
	// are excluded from results until the next rebuild.
	tombstones []bool
	// filter, when set, restricts results to objects it accepts — the
	// hybrid-query setting of §III (vector search + attribute
	// constraints). Filtered-out vertices still route.
	filter func(id int) bool
	// patience enables adaptive early termination: stop routing after
	// this many consecutive hops that fail to improve the result pool
	// (0 = run Algorithm 2 to completion).
	patience int
	rng      *rand.Rand

	// reusable per-search state
	visited []bool // H of Algorithm 2
	seen    []bool // vertices whose IP has been computed
	touched []int32
}

// Option configures a Searcher.
type Option func(*Searcher)

// WithOptimization enables or disables the Lemma 4 multi-vector
// computation optimization (enabled by default).
func WithOptimization(on bool) Option {
	return func(s *Searcher) { s.optimize = on }
}

// WithRandSeed fixes the seed of the random initial candidates of
// Algorithm 2 line 2 (default 1, making searches deterministic).
func WithRandSeed(seed int64) Option {
	return func(s *Searcher) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithTombstones attaches a deletion bitset (§IX): objects with a true
// entry are routed through during greedy search — removing them could
// disconnect the graph — but never returned. The slice is shared, not
// copied, so callers may flip entries between searches. Raise l when many
// objects are deleted, since tombstoned pool entries crowd out results.
func WithTombstones(dead []bool) Option {
	return func(s *Searcher) { s.tombstones = dead }
}

// WithFilter restricts results to objects accepted by keep — the hybrid
// vector-plus-constraint queries of §III. Rejected objects still
// participate in routing; raise l when the filter is selective.
func WithFilter(keep func(id int) bool) Option {
	return func(s *Searcher) { s.filter = keep }
}

// WithEarlyTermination stops the greedy routing after `patience`
// consecutive hops that do not improve the result pool, trading a little
// recall for latency (the adaptive-termination idea the paper cites as
// [54]). patience ≤ 0 disables it (Algorithm 2 runs to completion).
func WithEarlyTermination(patience int) Option {
	return func(s *Searcher) { s.patience = patience }
}

// New creates a Searcher over a built graph, the object multi-vectors it
// indexes, and the modality weights.
func New(g *graph.Graph, objects []vec.Multi, w vec.Weights, opts ...Option) *Searcher {
	s := &Searcher{
		g:        g,
		objects:  objects,
		weights:  w,
		optimize: true,
		rng:      rand.New(rand.NewSource(1)),
		visited:  make([]bool, len(objects)),
		seen:     make([]bool, len(objects)),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Result is one returned object with its joint similarity.
type Result struct {
	ID int
	IP float32
	// PerModality holds the per-modality contributions ω_i²·IP_i whose sum
	// is the joint IP (Lemma 1). Populated only when Params.Breakdown is
	// set; nil otherwise.
	PerModality []float32
}

// Params configures a single search call, overriding the Searcher's
// constructor-time options. The zero value is not useful — K and L are
// required; use Defaults (or the legacy Search method) to inherit the
// constructor options.
type Params struct {
	// K is the number of results; L is the result-set size l of
	// Algorithm 2 (l ≥ k).
	K, L int
	// Weights overrides the searcher weights for this call (user-defined
	// weight preference, §VIII-F); nil keeps the searcher weights.
	Weights vec.Weights
	// Filter restricts results to accepted objects (§III hybrid queries).
	Filter func(id int) bool
	// Tombstones marks deleted objects (§IX); routed through, never
	// returned.
	Tombstones []bool
	// Patience > 0 enables adaptive early termination.
	Patience int
	// Optimize toggles the Lemma 4 partial-IP early termination.
	Optimize bool
	// Breakdown requests per-modality similarity contributions on the
	// returned results (Result.PerModality).
	Breakdown bool
	// Ctx, when non-nil, is checked periodically during routing; the
	// search aborts with the context's error on cancellation or deadline.
	Ctx context.Context
}

// defaults returns Params inheriting the searcher's constructor options.
func (s *Searcher) defaults(k, l int) Params {
	return Params{
		K:          k,
		L:          l,
		Filter:     s.filter,
		Tombstones: s.tombstones,
		Patience:   s.patience,
		Optimize:   s.optimize,
	}
}

// ctxCheckInterval is how many routing hops pass between ctx.Err() polls;
// a power of two so the check compiles to a mask.
const ctxCheckInterval = 64

// Search returns the approximate top-k results for the multimodal query
// under the searcher's weights. l is the result-set size of Algorithm 2
// (l ≥ k); larger l trades speed for recall (Tab. XII). Missing query
// modalities are handled by zero weights in the searcher's weight vector
// (§VII-B).
func (s *Searcher) Search(query vec.Multi, k, l int) ([]Result, Stats, error) {
	return s.SearchParams(query, s.defaults(k, l))
}

// SearchParams is Search with explicit per-call parameters. It lets one
// pooled Searcher serve calls with different filters, weights, tombstone
// sets, and contexts: the Searcher contributes only the graph, the object
// vectors, and its reusable visit buffers.
func (s *Searcher) SearchParams(query vec.Multi, p Params) ([]Result, Stats, error) {
	k, l := p.K, p.L
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("search: k must be positive, got %d", k)
	}
	if l < k {
		return nil, Stats{}, fmt.Errorf("search: l (%d) must be at least k (%d)", l, k)
	}
	if len(query) != 0 && len(s.objects) > 0 && len(query) != len(s.objects[0]) {
		return nil, Stats{}, fmt.Errorf("search: query has %d modalities, objects have %d", len(query), len(s.objects[0]))
	}
	if p.Ctx != nil {
		if err := p.Ctx.Err(); err != nil {
			return nil, Stats{}, fmt.Errorf("search: %w", err)
		}
	}
	n := len(s.objects)
	if n == 0 {
		return nil, Stats{}, nil
	}
	if l > n {
		l = n
	}
	weights := s.weights
	if p.Weights != nil {
		weights = p.Weights
	}

	var stats Stats
	scanner := vec.NewPartialIPScanner(weights, query)

	// Reset the visit/seen markers from the previous search.
	for _, v := range s.touched {
		s.visited[v] = false
		s.seen[v] = false
	}
	s.touched = s.touched[:0]

	// evalFull computes the exact joint IP (distance form, so the
	// optimized and unoptimized paths agree bit-for-bit).
	evalFull := func(id int32) float32 {
		stats.FullEvals++
		return scanner.FullIP(s.objects[id])
	}

	// R: the result pool, sorted by descending IP, capacity l.
	type entry struct {
		id int32
		ip float32
	}
	pool := make([]entry, 0, l)
	insert := func(id int32, ip float32) {
		pos := sort.Search(len(pool), func(i int) bool { return pool[i].ip < ip })
		if len(pool) < l {
			pool = append(pool, entry{})
		} else if pos >= l {
			return
		}
		copy(pool[pos+1:], pool[pos:])
		pool[pos] = entry{id, ip}
	}
	mark := func(id int32) {
		s.seen[id] = true
		s.touched = append(s.touched, id)
	}

	// Line 1-3: seed plus l-1 random vertices.
	mark(s.g.Seed)
	insert(s.g.Seed, evalFull(s.g.Seed))
	for len(pool) < l {
		id := int32(s.rng.Intn(n))
		if s.seen[id] {
			continue
		}
		mark(id)
		insert(id, evalFull(id))
		if len(s.touched) == n {
			break
		}
	}

	// Lines 4-10: greedy routing.
	stale := 0
	for {
		if p.Ctx != nil && stats.Hops&(ctxCheckInterval-1) == 0 {
			if err := p.Ctx.Err(); err != nil {
				return nil, stats, fmt.Errorf("search: %w", err)
			}
		}
		// v ← nearest unvisited vertex in R.
		idx := -1
		for i := range pool {
			if !s.visited[pool[i].id] {
				idx = i
				break
			}
		}
		if idx == -1 {
			break
		}
		v := pool[idx].id
		s.visited[v] = true
		stats.Hops++
		threshold := pool[len(pool)-1].ip // worst of R (z in Algorithm 2)
		full := len(pool) == l
		improved := false
		for _, u := range s.g.Adj[v] {
			if s.seen[u] {
				continue
			}
			mark(u)
			var ip float32
			if p.Optimize && full {
				bound, exact := scanner.Scan(s.objects[u], threshold)
				if !exact {
					stats.PartialSkips++
					continue
				}
				stats.FullEvals++
				ip = bound
			} else {
				ip = evalFull(u)
				if full && ip <= threshold {
					continue
				}
			}
			insert(u, ip)
			improved = true
			threshold = pool[len(pool)-1].ip
			full = len(pool) == l
		}
		if p.Patience > 0 {
			if improved {
				stale = 0
			} else if stale++; stale >= p.Patience {
				break
			}
		}
	}

	out := make([]Result, 0, k)
	for _, e := range pool {
		if len(out) == k {
			break
		}
		if int(e.id) < len(p.Tombstones) && p.Tombstones[e.id] {
			continue
		}
		if p.Filter != nil && !p.Filter(int(e.id)) {
			continue
		}
		r := Result{ID: int(e.id), IP: e.ip}
		if p.Breakdown {
			r.PerModality = Breakdown(weights, query, s.objects[e.id])
		}
		out = append(out, r)
	}
	return out, stats, nil
}

// Breakdown computes the per-modality contributions ω_i²·IP_i of Lemma 1
// between query and cand, in the same distance formulation the routing
// uses (ω_i²·(1 − ½‖q_i − u_i‖²) on normalized vectors), so the
// contributions sum to the joint IP up to rounding.
func Breakdown(w vec.Weights, query, cand vec.Multi) []float32 {
	out := make([]float32, len(cand))
	for i := range cand {
		if i >= len(w) || w[i] == 0 {
			continue
		}
		w2 := w[i] * w[i]
		out[i] = w2 * (1 - 0.5*vec.SquaredL2(query[i], cand[i]))
	}
	return out
}

// IDs extracts the object IDs of results, in rank order.
func IDs(rs []Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

// ModalityView re-wraps multi-vector objects as single-modality objects so
// the same Searcher machinery can serve MR's per-modality indexes.
func ModalityView(objects []vec.Multi, modality int) []vec.Multi {
	out := make([]vec.Multi, len(objects))
	for i, o := range objects {
		out[i] = vec.Multi{o[modality]}
	}
	return out
}
