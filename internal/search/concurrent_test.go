package search

import (
	"math/rand"
	"sync"
	"testing"

	"must/internal/vec"
)

// The index (graph + vectors) is read-only after build; one Searcher per
// goroutine must produce exactly the same results as serial execution.
func TestConcurrentSearchersAgreeWithSerial(t *testing.T) {
	objects, w, g := buildFixture(t, 800, 31)
	rng := rand.New(rand.NewSource(32))
	const nq = 40
	queries := make([]vec.Multi, nq)
	for i := range queries {
		queries[i] = randomQuery(rng)
	}

	serial := make([][]Result, nq)
	s := New(g, objects, w, WithRandSeed(99))
	for i, q := range queries {
		res, _, err := s.Search(q, 10, 100)
		if err != nil {
			t.Fatal(err)
		}
		// Search returns a view into the searcher's reusable buffer; copy
		// before the next call overwrites it.
		serial[i] = CloneResults(res)
	}

	parallel := make([][]Result, nq)
	var wg sync.WaitGroup
	const workers = 4
	wg.Add(workers)
	for wkr := 0; wkr < workers; wkr++ {
		go func(wkr int) {
			defer wg.Done()
			// Fresh searcher per goroutine, same pool RNG seed so the
			// random initial candidates match the serial run per query.
			for i := wkr; i < nq; i += workers {
				local := New(g, objects, w, WithRandSeed(99))
				// Replay earlier queries to advance the RNG to the same
				// position the serial searcher had.
				for j := 0; j < i; j++ {
					if _, _, err := local.Search(queries[j], 10, 100); err != nil {
						t.Error(err)
						return
					}
				}
				res, _, err := local.Search(queries[i], 10, 100)
				if err != nil {
					t.Error(err)
					return
				}
				parallel[i] = res
			}
		}(wkr)
	}
	wg.Wait()

	for i := range serial {
		if len(serial[i]) != len(parallel[i]) {
			t.Fatalf("query %d: result count differs", i)
		}
		for j := range serial[i] {
			if serial[i][j].ID != parallel[i][j].ID {
				t.Fatalf("query %d rank %d: %d vs %d", i, j, serial[i][j].ID, parallel[i][j].ID)
			}
		}
	}
}

// Tombstones shared across searchers: flipping entries between searches
// is visible to existing searchers (documented sharing semantics).
func TestTombstonesSharedSemantics(t *testing.T) {
	objects, w, g := buildFixture(t, 300, 33)
	dead := make([]bool, len(objects))
	s := New(g, objects, w, WithTombstones(dead))
	rng := rand.New(rand.NewSource(34))
	q := randomQuery(rng)
	before, _, err := s.Search(q, 5, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("no results")
	}
	deadID := before[0].ID // before aliases the searcher's buffer; save the ID
	dead[deadID] = true
	after, _, err := s.Search(q, 5, 150)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if r.ID == deadID {
			t.Fatal("tombstoned-after-the-fact object still returned")
		}
	}
	if len(after) != 5 {
		t.Fatalf("got %d results, want 5", len(after))
	}
}
