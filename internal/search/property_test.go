package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"must/internal/vec"
)

// Structural properties of every search result set, checked over random
// queries: IDs unique and in range, similarities sorted descending, size
// exactly min(k, n), and the reported IP matching a direct recomputation.
func TestSearchResultInvariants(t *testing.T) {
	objects, w, g := buildFixture(t, 700, 61)
	s := New(g, objects, w)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		k := 1 + rng.Intn(20)
		l := k + rng.Intn(100)
		res, _, err := s.Search(q, k, l)
		if err != nil {
			t.Logf("search error: %v", err)
			return false
		}
		if len(res) != k {
			t.Logf("got %d results, want %d", len(res), k)
			return false
		}
		seen := map[int]bool{}
		scanner := vec.NewPartialIPScanner(w, q)
		for i, r := range res {
			if r.ID < 0 || r.ID >= len(objects) {
				t.Logf("id %d out of range", r.ID)
				return false
			}
			if seen[r.ID] {
				t.Logf("duplicate id %d", r.ID)
				return false
			}
			seen[r.ID] = true
			if i > 0 && res[i-1].IP < r.IP {
				t.Logf("not sorted at rank %d", i)
				return false
			}
			want := scanner.FullIP(objects[r.ID])
			if d := want - r.IP; d > 1e-4 || d < -1e-4 {
				t.Logf("ip mismatch for %d: %v vs %v", r.ID, r.IP, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(62))}); err != nil {
		t.Error(err)
	}
}

// Property: the best result never gets worse as l grows (larger beams
// explore supersets in expectation; with the shared seed pool the top-1 IP
// is monotone non-decreasing for nested beams on the same query).
func TestTop1ImprovesWithBeam(t *testing.T) {
	objects, w, g := buildFixture(t, 700, 63)
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 20; trial++ {
		q := randomQuery(rng)
		var prev float32 = -1 << 30
		for _, l := range []int{10, 40, 160, 640} {
			s := New(g, objects, w, WithRandSeed(1))
			res, _, err := s.Search(q, 1, l)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) == 0 {
				t.Fatal("no results")
			}
			// Allow a hair of float slack: pools are not strictly nested
			// because random initialization differs per l.
			if res[0].IP < prev-0.05 {
				t.Errorf("trial %d: top-1 IP degraded sharply with beam growth: %v -> %v at l=%d",
					trial, prev, res[0].IP, l)
			}
			if res[0].IP > prev {
				prev = res[0].IP
			}
		}
	}
}
