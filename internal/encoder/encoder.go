// Package encoder provides the simulated embedding pipeline that stands in
// for the paper's trained encoders (ResNet17/50, LSTM, Transformer, GRU,
// ordinal Encoding, TIRG, CLIP, MPC — Appendix B of the paper).
//
// The substitution (documented in DESIGN.md §2): every object and query
// carries a ground-truth *latent* vector per modality. An encoder is a
// fixed random projection from the latent space into that encoder's
// embedding space, followed by additive Gaussian noise whose standard
// deviation models the encoder's quality — a better encoder (the paper's
// CLIP, ResNet50) has lower noise than a worse one (TIRG, ResNet17). Noise
// is a deterministic function of the content, so encoding the same content
// twice yields the identical vector, exactly as a frozen neural encoder
// would.
//
// Multimodal composition encoders (CLIPSim, TIRGSim, MPCSim) embed a
// *composed* latent into the target modality's embedding space — the
// paper's requirement that Φ(q0,...,q_{t-1}) share ϕ0's vector space —
// with an extra "modality gap" noise term on top of the target encoder's
// own error.
package encoder

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"must/internal/vec"
)

// Encoder embeds a single modality's latent content into a normalized
// high-dimensional vector, the ϕ_i(·) of the paper.
type Encoder interface {
	// Name identifies the encoder (e.g. "ResNet50Sim") in reports.
	Name() string
	// Dim is the output embedding dimension.
	Dim() int
	// Encode maps the latent content to a unit vector. It is
	// deterministic: equal latents produce equal embeddings.
	Encode(latent []float32) []float32
}

// MultiEncoder embeds an already-composed latent (target content fused
// with auxiliary modifications) into the target modality's embedding
// space, the Φ(·,...,·) of the paper.
type MultiEncoder interface {
	Name() string
	Dim() int
	// EncodeComposed maps the composed latent to a unit vector in the
	// same space as the paired target-modality Encoder.
	EncodeComposed(composed []float32) []float32
}

// Spec configures a simulated unimodal encoder.
type Spec struct {
	// Name is the report label, e.g. "ResNet50".
	Name string
	// LatentDim is the input latent dimension this encoder accepts.
	LatentDim int
	// Dim is the output embedding dimension.
	Dim int
	// Sigma is the per-coordinate Gaussian noise the encoder adds before
	// re-normalization; larger means a worse encoder.
	Sigma float64
	// Seed fixes the projection matrix and the content-noise keying.
	Seed int64
}

// Sim is a simulated unimodal encoder: a fixed random projection plus
// content-keyed Gaussian noise.
type Sim struct {
	spec Spec
	proj []float32 // Dim × LatentDim, row-major
}

// New builds a simulated encoder from spec.
func New(spec Spec) *Sim {
	if spec.LatentDim <= 0 || spec.Dim <= 0 {
		panic(fmt.Sprintf("encoder: invalid spec dims %d -> %d", spec.LatentDim, spec.Dim))
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	return &Sim{
		spec: spec,
		proj: vec.RandProjection(rng, spec.Dim, spec.LatentDim),
	}
}

// Name implements Encoder.
func (s *Sim) Name() string { return s.spec.Name }

// Dim implements Encoder.
func (s *Sim) Dim() int { return s.spec.Dim }

// Sigma reports the configured noise level.
func (s *Sim) Sigma() float64 { return s.spec.Sigma }

// Encode implements Encoder. The noise RNG is seeded from a hash of the
// latent content combined with the encoder seed, making the embedding a
// pure function of (encoder, content).
func (s *Sim) Encode(latent []float32) []float32 {
	if len(latent) != s.spec.LatentDim {
		panic(fmt.Sprintf("encoder %s: latent dim %d, want %d", s.spec.Name, len(latent), s.spec.LatentDim))
	}
	out := vec.ApplyProjection(s.proj, s.spec.Dim, latent)
	if s.spec.Sigma == 0 {
		return out
	}
	noise := rand.New(rand.NewSource(contentSeed(latent, s.spec.Seed)))
	return vec.AddGaussianNoise(noise, out, s.spec.Sigma)
}

// MultiSpec configures a simulated multimodal composition encoder.
type MultiSpec struct {
	// Name is the report label, e.g. "CLIP".
	Name string
	// GapSigma is the extra "modality gap" noise added on top of the
	// target encoder's projection; it models the joint-embedding error
	// the paper discusses (§I, §IV).
	GapSigma float64
	// FailProb is the probability that a composition misses entirely —
	// the heavy tail of joint-embedding error that keeps real JE top-1
	// recall below ~0.4 (§I: "even with the best joint embedding
	// approach, the top-1 recall rate barely surpasses 0.4"). Failure is
	// a deterministic function of the content.
	FailProb float64
	// FailSigma is the noise level of failed compositions (default 2.5).
	FailSigma float64
	// Seed keys the gap-noise stream.
	Seed int64
}

// MultiSim is a simulated multimodal encoder. It shares the projection of
// a target-modality Sim — so its output lives in the same vector space as
// ϕ0, per §V — but applies its own, larger noise.
type MultiSim struct {
	spec   MultiSpec
	target *Sim
}

// NewMulti builds a composition encoder on top of the target modality's
// unimodal encoder.
func NewMulti(spec MultiSpec, target *Sim) *MultiSim {
	if target == nil {
		panic("encoder: NewMulti requires a target encoder")
	}
	return &MultiSim{spec: spec, target: target}
}

// Name implements MultiEncoder.
func (m *MultiSim) Name() string { return m.spec.Name }

// Dim implements MultiEncoder.
func (m *MultiSim) Dim() int { return m.target.Dim() }

// GapSigma reports the configured modality-gap noise.
func (m *MultiSim) GapSigma() float64 { return m.spec.GapSigma }

// EncodeComposed implements MultiEncoder.
func (m *MultiSim) EncodeComposed(composed []float32) []float32 {
	out := vec.ApplyProjection(m.target.proj, m.target.spec.Dim, composed)
	sigma := math.Hypot(m.target.spec.Sigma, m.spec.GapSigma)
	noise := rand.New(rand.NewSource(contentSeed(composed, m.spec.Seed)))
	if m.spec.FailProb > 0 && noise.Float64() < m.spec.FailProb {
		failSigma := m.spec.FailSigma
		if failSigma == 0 {
			failSigma = 2.5
		}
		sigma = math.Hypot(sigma, failSigma)
	}
	if sigma == 0 {
		return out
	}
	return vec.AddGaussianNoise(noise, out, sigma)
}

// contentSeed derives a deterministic RNG seed from the content bits and
// the encoder's own seed.
func contentSeed(latent []float32, encoderSeed int64) int64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, x := range latent {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(x))
		h.Write(buf[:])
	}
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], uint64(encoderSeed))
	h.Write(sb[:])
	return int64(h.Sum64())
}
