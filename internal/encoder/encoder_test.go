package encoder

import (
	"math"
	"math/rand"
	"testing"

	"must/internal/vec"
)

func TestEncodeDeterministic(t *testing.T) {
	e := NewResNet50(16, 42)
	rng := rand.New(rand.NewSource(1))
	latent := vec.RandUnit(rng, 16)
	a := e.Encode(latent)
	b := e.Encode(latent)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Encode is not deterministic for identical content")
		}
	}
}

func TestEncodeOutputIsUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	encoders := []Encoder{
		NewResNet17(12, 7), NewResNet50(12, 7), NewLSTM(12, 7),
		NewTransformer(12, 7), NewGRU(12, 7), NewOrdinal(12, 7),
	}
	for _, e := range encoders {
		v := e.Encode(vec.RandUnit(rng, 12))
		if n := vec.Norm(v); math.Abs(float64(n)-1) > 1e-4 {
			t.Errorf("%s output norm = %v, want 1", e.Name(), n)
		}
		if len(v) != e.Dim() {
			t.Errorf("%s output dim = %d, want %d", e.Name(), len(v), e.Dim())
		}
	}
}

func TestDifferentSeedsGiveDifferentProjections(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	latent := vec.RandUnit(rng, 16)
	a := NewResNet50(16, 1).Encode(latent)
	b := NewResNet50(16, 2).Encode(latent)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical encoders")
	}
}

// Better encoders (lower sigma) must preserve latent similarity structure
// better: the expected IP between embeddings of nearby latents should be
// higher under ResNet50 than ResNet17.
func TestEncoderQualityOrdering(t *testing.T) {
	const latentDim = 24
	r17 := NewResNet17(latentDim, 99)
	r50 := NewResNet50(latentDim, 99)
	rng := rand.New(rand.NewSource(4))
	var sim17, sim50 float64
	const trials = 60
	for i := 0; i < trials; i++ {
		z := vec.RandUnit(rng, latentDim)
		zNear := vec.Normalized(vec.Add(z, vec.Scale(0.1, vec.RandUnit(rng, latentDim))))
		sim17 += float64(vec.Dot(r17.Encode(z), r17.Encode(zNear)))
		sim50 += float64(vec.Dot(r50.Encode(z), r50.Encode(zNear)))
	}
	if sim50 <= sim17 {
		t.Errorf("ResNet50 mean similarity %v should exceed ResNet17 %v", sim50/trials, sim17/trials)
	}
}

func TestMultiEncoderSharesTargetSpace(t *testing.T) {
	const latentDim = 24
	target := NewResNet50(latentDim, 11)
	clip := NewCLIP(target, 11)
	if clip.Dim() != target.Dim() {
		t.Fatalf("CLIP dim %d != target dim %d", clip.Dim(), target.Dim())
	}
	rng := rand.New(rand.NewSource(5))
	z := vec.RandUnit(rng, latentDim)
	// The composition encoder embeds the same latent into a vector highly
	// correlated with the target encoder's embedding — the paper's shared
	// vector-space requirement — but with extra modality-gap noise.
	var sim float64
	const trials = 40
	for i := 0; i < trials; i++ {
		z := vec.RandUnit(rng, latentDim)
		sim += float64(vec.Dot(clip.EncodeComposed(z), target.Encode(z)))
	}
	sim /= trials
	if sim < 0.3 {
		t.Errorf("CLIP and target embeddings nearly uncorrelated (mean IP %v); not a shared space", sim)
	}
	_ = z
}

func TestCompositionEncoderOrdering(t *testing.T) {
	const latentDim = 24
	target := NewResNet50(latentDim, 13)
	clip := NewCLIP(target, 13)
	tirg := NewTIRG(target, 13)
	mpc := NewMPC(target, 13)
	rng := rand.New(rand.NewSource(6))
	meanSim := func(m *MultiSim) float64 {
		var s float64
		const trials = 60
		for i := 0; i < trials; i++ {
			z := vec.RandUnit(rng, latentDim)
			s += float64(vec.Dot(m.EncodeComposed(z), target.Encode(z)))
		}
		return s / trials
	}
	sClip, sTirg, sMpc := meanSim(clip), meanSim(tirg), meanSim(mpc)
	if !(sClip > sTirg && sTirg > sMpc) {
		t.Errorf("composition quality ordering violated: CLIP=%v TIRG=%v MPC=%v", sClip, sTirg, sMpc)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	e := NewLSTM(8, 1)
	if err := r.Register(e); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(NewLSTM(8, 2)); err == nil {
		t.Error("duplicate Register did not error")
	}
	got, err := r.Lookup("LSTM")
	if err != nil || got != e {
		t.Errorf("Lookup = %v, %v", got, err)
	}
	if _, err := r.Lookup("nope"); err == nil {
		t.Error("Lookup of unknown encoder did not error")
	}

	m := NewCLIP(NewResNet50(8, 1), 1)
	if err := r.RegisterMulti(m); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterMulti(NewCLIP(NewResNet50(8, 2), 2)); err == nil {
		t.Error("duplicate RegisterMulti did not error")
	}
	gm, err := r.LookupMulti("CLIP")
	if err != nil || gm != m {
		t.Errorf("LookupMulti = %v, %v", gm, err)
	}
	if _, err := r.LookupMulti("nope"); err == nil {
		t.Error("LookupMulti of unknown encoder did not error")
	}
	if n := r.Names(); len(n) != 1 || n[0] != "LSTM" {
		t.Errorf("Names = %v", n)
	}
}

func TestEncodeDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode with wrong latent dim did not panic")
		}
	}()
	NewLSTM(8, 1).Encode(make([]float32, 9))
}
