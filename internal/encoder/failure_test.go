package encoder

import (
	"math/rand"
	"testing"

	"must/internal/vec"
)

// The composition-failure mixture must be deterministic per content and
// hit close to its configured rate across contents.
func TestCompositionFailureRate(t *testing.T) {
	const latentDim = 24
	target := New(Spec{Name: "base", LatentDim: latentDim, Dim: 32, Sigma: 0.1, Seed: 1})
	m := NewMulti(MultiSpec{Name: "failing", GapSigma: 0.1, FailProb: 0.5, FailSigma: 3.0, Seed: 2}, target)
	rng := rand.New(rand.NewSource(3))
	failures := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		z := vec.RandUnit(rng, latentDim)
		out := m.EncodeComposed(z)
		// A failed composition has near-zero similarity to the clean
		// projection; a good one stays high (sigma 0.14 → ~0.99).
		clean := target.Encode(z)
		if vec.Dot(out, clean) < 0.5 {
			failures++
		}
		// Determinism: the same content fails (or not) identically.
		out2 := m.EncodeComposed(z)
		for j := range out {
			if out[j] != out2[j] {
				t.Fatal("composition failure not deterministic per content")
			}
		}
	}
	rate := float64(failures) / trials
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("observed failure rate %v, configured 0.5", rate)
	}
}

func TestZeroFailProbNeverFails(t *testing.T) {
	const latentDim = 16
	target := New(Spec{Name: "base", LatentDim: latentDim, Dim: 24, Sigma: 0.05, Seed: 4})
	m := NewMulti(MultiSpec{Name: "clean", GapSigma: 0.05, Seed: 5}, target)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		z := vec.RandUnit(rng, latentDim)
		if vec.Dot(m.EncodeComposed(z), target.Encode(z)) < 0.9 {
			t.Fatal("composition failed with FailProb=0")
		}
	}
}
