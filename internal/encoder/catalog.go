package encoder

import "fmt"

// Default noise levels for the simulated encoders. The ordering mirrors
// the quality ordering observed in the paper's accuracy tables
// (Tab. III–VI): ResNet50 beats ResNet17, LSTM beats Transformer on the
// MIT-States-style text, ordinal Encoding is strong on structured
// attributes, and among composition encoders CLIP beats TIRG beats MPC.
// Absolute values are calibrated so the reproduced recall tables land in
// the paper's regimes (JE Recall@1 well under 0.4, MUST best).
const (
	SigmaResNet17    = 0.62
	SigmaResNet50    = 0.45
	SigmaLSTM        = 0.40
	SigmaTransformer = 0.62
	SigmaGRU         = 0.48
	SigmaOrdinal     = 0.30

	GapSigmaCLIP = 0.55
	GapSigmaTIRG = 0.80
	GapSigmaMPC  = 1.10
)

// Composition failure probabilities: the fraction of queries whose joint
// embedding misses the target entirely (the modality-gap heavy tail,
// §I/§IV). Calibrated so JE's top-1 recall lands in the paper's regimes
// (CLIP ≈ 0.2–0.4, TIRG below it, MPC worst on 3-modality fusion).
const (
	FailProbCLIP = 0.50
	FailProbTIRG = 0.65
	FailProbMPC  = 0.85
)

// Standard embedding dimensions for the simulated modalities. They are
// smaller than the real encoders' (2048-d ResNet etc.) to keep the
// reproduction laptop-scale; all comparisons are relative, so only the
// ratio of signal to noise matters.
const (
	DimImage = 64
	DimText  = 32
	DimAudio = 48
	DimVideo = 48
)

// Catalog constructors. Each takes the latent dimension of the modality it
// encodes and a seed namespace so different datasets get independent
// projections.

// NewResNet17 simulates the 17-layer ResNet image encoder.
func NewResNet17(latentDim int, seed int64) *Sim {
	return New(Spec{Name: "ResNet17", LatentDim: latentDim, Dim: DimImage, Sigma: SigmaResNet17, Seed: seed ^ 0x5e17})
}

// NewResNet50 simulates the 50-layer ResNet image encoder.
func NewResNet50(latentDim int, seed int64) *Sim {
	return New(Spec{Name: "ResNet50", LatentDim: latentDim, Dim: DimImage, Sigma: SigmaResNet50, Seed: seed ^ 0x5e50})
}

// NewLSTM simulates the LSTM text encoder.
func NewLSTM(latentDim int, seed int64) *Sim {
	return New(Spec{Name: "LSTM", LatentDim: latentDim, Dim: DimText, Sigma: SigmaLSTM, Seed: seed ^ 0x157})
}

// NewTransformer simulates the Transformer text encoder.
func NewTransformer(latentDim int, seed int64) *Sim {
	return New(Spec{Name: "Transformer", LatentDim: latentDim, Dim: DimText, Sigma: SigmaTransformer, Seed: seed ^ 0x7f5})
}

// NewGRU simulates the GRU text encoder used on MS-COCO.
func NewGRU(latentDim int, seed int64) *Sim {
	return New(Spec{Name: "GRU", LatentDim: latentDim, Dim: DimText, Sigma: SigmaGRU, Seed: seed ^ 0x6e0})
}

// NewOrdinal simulates the ordinal "Encoding" of structured attribute text
// (Appendix B): low noise because structured attributes embed cleanly.
func NewOrdinal(latentDim int, seed int64) *Sim {
	return New(Spec{Name: "Encoding", LatentDim: latentDim, Dim: DimText, Sigma: SigmaOrdinal, Seed: seed ^ 0x0e4d})
}

// NewCLIP simulates the CLIP-derived combiner composition encoder on top
// of the given target-modality encoder.
func NewCLIP(target *Sim, seed int64) *MultiSim {
	return NewMulti(MultiSpec{Name: "CLIP", GapSigma: GapSigmaCLIP, FailProb: FailProbCLIP, Seed: seed ^ 0xc11b}, target)
}

// NewTIRG simulates the TIRG gating-residual composition encoder.
func NewTIRG(target *Sim, seed int64) *MultiSim {
	return NewMulti(MultiSpec{Name: "TIRG", GapSigma: GapSigmaTIRG, FailProb: FailProbTIRG, Seed: seed ^ 0x7169}, target)
}

// NewMPC simulates the probabilistic MPC composition encoder used for the
// 3-modality MS-COCO workload.
func NewMPC(target *Sim, seed int64) *MultiSim {
	return NewMulti(MultiSpec{Name: "MPC", GapSigma: GapSigmaMPC, FailProb: FailProbMPC, Seed: seed ^ 0x3bc}, target)
}

// Registry supports the paper's pluggable-encoder design: user code can
// register additional encoders by name and resolve them at run time
// (§V: "the embedding component in MUST is pluggable").
type Registry struct {
	uni   map[string]Encoder
	multi map[string]MultiEncoder
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{uni: map[string]Encoder{}, multi: map[string]MultiEncoder{}}
}

// Register adds a unimodal encoder. It returns an error on duplicates so
// misconfigured pipelines fail loudly at setup time.
func (r *Registry) Register(e Encoder) error {
	if _, ok := r.uni[e.Name()]; ok {
		return fmt.Errorf("encoder: duplicate unimodal encoder %q", e.Name())
	}
	r.uni[e.Name()] = e
	return nil
}

// RegisterMulti adds a multimodal composition encoder.
func (r *Registry) RegisterMulti(e MultiEncoder) error {
	if _, ok := r.multi[e.Name()]; ok {
		return fmt.Errorf("encoder: duplicate multimodal encoder %q", e.Name())
	}
	r.multi[e.Name()] = e
	return nil
}

// Lookup resolves a unimodal encoder by name.
func (r *Registry) Lookup(name string) (Encoder, error) {
	e, ok := r.uni[name]
	if !ok {
		return nil, fmt.Errorf("encoder: unknown unimodal encoder %q", name)
	}
	return e, nil
}

// LookupMulti resolves a multimodal encoder by name.
func (r *Registry) LookupMulti(name string) (MultiEncoder, error) {
	e, ok := r.multi[name]
	if !ok {
		return nil, fmt.Errorf("encoder: unknown multimodal encoder %q", name)
	}
	return e, nil
}

// Names lists the registered unimodal encoder names.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.uni))
	for n := range r.uni {
		out = append(out, n)
	}
	return out
}
