package experiments

import (
	"fmt"

	"must/internal/baseline"
	"must/internal/dataset"
	"must/internal/encoder"
	"must/internal/index"
	"must/internal/vec"
)

// mitStatesBestSet is the best MIT-States encoder combination per Tab. III
// (ResNet50+LSTM for MR/MUST).
func mitStatesBestSet(raw *dataset.Raw, seed int64) dataset.EncoderSet {
	return dataset.EncoderSet{Unimodal: []encoder.Encoder{
		encoder.NewResNet50(raw.ContentDim, seed),
		encoder.NewLSTM(raw.AttrDim, seed),
	}}
}

// celebABestSet is the best CelebA encoder combination per Tab. IV
// (CLIP+Encoding).
func celebABestSet(raw *dataset.Raw, seed int64) dataset.EncoderSet {
	base := encoder.NewResNet50(raw.ContentDim, seed)
	return dataset.EncoderSet{
		Unimodal:    []encoder.Encoder{base, encoder.NewOrdinal(raw.AttrDim, seed)},
		Composition: encoder.NewCLIP(base, seed),
	}
}

// CaseResult is one framework's top-k list for the case-study query
// (Fig. 5), annotated with what each returned object matches.
type CaseResult struct {
	Framework string
	// Entries are the top-k returned objects in rank order.
	Entries []CaseEntry
}

// CaseEntry annotates one returned object.
type CaseEntry struct {
	ID int
	// IsGroundTruth marks the planted true result.
	IsGroundTruth bool
	// RefSim is the latent similarity between the object's content and
	// the query's reference content (high = "looks like the input").
	RefSim float64
	// AttrSim is the latent similarity between the object's attribute and
	// the query's requested modification (high = "matches the text").
	AttrSim float64
	// ComposedSim is the latent similarity to the true composed target.
	ComposedSim float64
}

// RunCaseStudy reproduces Fig. 5: one MIT-States query executed by MUST,
// MR and JE with their best encoders, with the top-k lists annotated
// against the ground-truth latents.
func RunCaseStudy(queryIdx, k int, opt Options) ([]CaseResult, error) {
	opt = opt.withDefaults()
	raw, err := dataset.GenerateSemantic(dataset.MITStatesSim(opt.Scale))
	if err != nil {
		return nil, err
	}
	if queryIdx < 0 || queryIdx >= len(raw.Queries) {
		return nil, fmt.Errorf("experiments: query index %d out of range", queryIdx)
	}

	// MUST and MR share ResNet50+LSTM; JE uses CLIP (its best, Tab. III).
	encPlain, err := dataset.Encode(raw, mitStatesBestSet(raw, opt.Seed))
	if err != nil {
		return nil, err
	}
	base := encoder.NewResNet50(raw.ContentDim, opt.Seed)
	encJE, err := dataset.Encode(raw, dataset.EncoderSet{
		Unimodal:    []encoder.Encoder{base, encoder.NewLSTM(raw.AttrDim, opt.Seed)},
		Composition: encoder.NewCLIP(base, opt.Seed),
	})
	if err != nil {
		return nil, err
	}

	w, _, err := learnWeightsFor(encPlain, opt)
	if err != nil {
		return nil, err
	}
	fused, err := index.BuildFused(encPlain.Objects, w, opt.pipeline("MUST"))
	if err != nil {
		return nil, err
	}
	mr, err := baseline.BuildMR(encPlain.Objects, opt.pipeline("MR"))
	if err != nil {
		return nil, err
	}
	je, err := baseline.BuildJE(encJE.Objects, opt.pipeline("JE"))
	if err != nil {
		return nil, err
	}

	rq := raw.Queries[queryIdx]
	annotate := func(ids []int) []CaseEntry {
		out := make([]CaseEntry, 0, len(ids))
		for _, id := range ids {
			o := raw.Objects[id]
			e := CaseEntry{
				ID:          id,
				RefSim:      float64(vec.Dot(o.Latents[0], rq.Latents[0])),
				AttrSim:     float64(vec.Dot(o.Latents[1], rq.Latents[1])),
				ComposedSim: float64(vec.Dot(o.Latents[0], rq.Composed)),
			}
			for _, gt := range rq.GroundTruth {
				if gt == id {
					e.IsGroundTruth = true
				}
			}
			out = append(out, e)
		}
		return out
	}

	var results []CaseResult
	ms := fused.NewSearcher()
	res, _, err := ms.Search(encPlain.Queries[queryIdx].Vectors, k, opt.Beam)
	if err != nil {
		return nil, err
	}
	ids := make([]int, len(res))
	for i, r := range res {
		ids[i] = r.ID
	}
	results = append(results, CaseResult{Framework: "MUST", Entries: annotate(ids)})

	mrIDs, err := mr.NewSearcher().Search(encPlain.Queries[queryIdx].Vectors, k, opt.Beam)
	if err != nil {
		return nil, err
	}
	results = append(results, CaseResult{Framework: "MR", Entries: annotate(mrIDs)})

	jeIDs, err := je.NewSearcher().Search(encJE.Queries[queryIdx].Vectors, k, opt.Beam)
	if err != nil {
		return nil, err
	}
	results = append(results, CaseResult{Framework: "JE", Entries: annotate(jeIDs)})
	return results, nil
}
