// Package experiments contains one runner per table and figure of the
// paper's evaluation (§VIII and appendices), as indexed in DESIGN.md §4.
// Each runner generates its workload, executes every compared framework,
// and returns rows shaped like the paper's tables; cmd/mustbench renders
// them. Sizes are scaled per DESIGN.md §2 and controlled by a Scale knob.
package experiments

import (
	"fmt"
	"time"

	"must/internal/baseline"
	"must/internal/dataset"
	"must/internal/encoder"
	"must/internal/graph"
	"must/internal/index"
	"must/internal/metrics"
	"must/internal/search"
	"must/internal/vec"
	"must/internal/weights"
)

// Options tunes every experiment runner.
type Options struct {
	// Scale multiplies dataset sizes (1 = DESIGN.md defaults; tests use
	// less).
	Scale float64
	// Gamma is the graph degree bound γ (default 30 at Scale 1, reduced
	// automatically for small scales).
	Gamma int
	// Iters is the NNDescent ε (default 3).
	Iters int
	// Beam is the accuracy-evaluation beam width l (default 200).
	Beam int
	// TrainEpochs bounds weight-learning epochs (default 200).
	TrainEpochs int
	// Seed namespaces all randomness.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Gamma == 0 {
		o.Gamma = 30
	}
	if o.Iters == 0 {
		o.Iters = 3
	}
	if o.Beam == 0 {
		o.Beam = 200
	}
	if o.TrainEpochs == 0 {
		o.TrainEpochs = 200
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

func (o Options) pipeline(name string) graph.Pipeline {
	p := graph.Ours(o.Gamma, o.Iters, o.Seed)
	p.Name = name
	return p
}

// Pipeline exposes the default "Ours" assembly configured by these
// options, for callers outside this package (cmd/mustsearch).
func (o Options) Pipeline(name string) graph.Pipeline {
	return o.withDefaults().pipeline(name)
}

// EncodeDefault encodes a raw dataset with the standard encoder layout
// (content → ResNet50, attribute → ordinal Encoding, extra content
// modalities → ResNet variants), mirroring cmd/mustgen's default.
func EncodeDefault(raw *dataset.Raw, seed int64) (*dataset.Encoded, error) {
	set := dataset.EncoderSet{Unimodal: []encoder.Encoder{
		encoder.NewResNet50(raw.ContentDim, seed),
		encoder.NewOrdinal(raw.AttrDim, seed),
	}}
	for i := 2; i < raw.M; i++ {
		if i%2 == 0 {
			set.Unimodal = append(set.Unimodal, encoder.NewResNet17(raw.ContentDim, seed^int64(i)))
		} else {
			set.Unimodal = append(set.Unimodal, encoder.NewResNet50(raw.ContentDim, seed^int64(i)))
		}
	}
	return dataset.Encode(raw, set)
}

// LearnWeightsAuto learns modality weights for an encoded dataset: it uses
// the planted ground truth when present (semantic datasets) and falls back
// to the uniform-weight exact top-1 protocol otherwise (feature datasets).
func LearnWeightsAuto(enc *dataset.Encoded, opt Options) (vec.Weights, error) {
	opt = opt.withDefaults()
	hasGT := false
	for _, q := range enc.Queries {
		if len(q.GroundTruth) > 0 {
			hasGT = true
			break
		}
	}
	if hasGT {
		w, _, err := learnWeightsFor(enc, opt)
		return w, err
	}
	w, _, err := LearnFeatureWeights(enc, opt)
	return w, err
}

// splitTrainEval reserves up to 20% of queries (capped at 300) for weight
// learning and returns train/eval index ranges.
func splitTrainEval(total int) (train, eval int) {
	train = total / 5
	if train > 300 {
		train = 300
	}
	if train < 1 {
		train = 1
	}
	if train >= total {
		train = total - 1
	}
	return train, total - train
}

// learnWeightsFor trains modality weights on the first part of the query
// workload, with the pool T being the referenced true objects (§VI-A).
func learnWeightsFor(enc *dataset.Encoded, opt Options) (vec.Weights, *weights.Result, error) {
	trainN, _ := splitTrainEval(len(enc.Queries))
	anchors := make([]vec.Multi, 0, trainN)
	var pool []vec.Multi
	poolIdx := map[int]int{}
	positives := make([]int, 0, trainN)
	for _, q := range enc.Queries[:trainN] {
		if len(q.GroundTruth) == 0 {
			continue
		}
		gt := q.GroundTruth[0]
		pi, ok := poolIdx[gt]
		if !ok {
			pi = len(pool)
			poolIdx[gt] = pi
			pool = append(pool, enc.Objects[gt])
		}
		anchors = append(anchors, q.Vectors)
		positives = append(positives, pi)
	}
	res, err := weights.Train(anchors, positives, pool, weights.Config{
		Epochs:        opt.TrainEpochs,
		HardNegatives: true,
		Seed:          opt.Seed,
		LearningRate:  0.01,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: learning weights for %s/%s: %w", enc.Name, enc.EncoderLabel, err)
	}
	return res.Weights, res, nil
}

// evalQueries returns the evaluation slice of the workload (after the
// training split).
func evalQueries(enc *dataset.Encoded) []dataset.EncodedQuery {
	trainN, _ := splitTrainEval(len(enc.Queries))
	return enc.Queries[trainN:]
}

// FillGroundTruth computes exact top-k' ground truth under w for every
// query of a feature dataset (§VIII-A's semi-synthetic protocol).
func FillGroundTruth(enc *dataset.Encoded, w vec.Weights, kPrime int) {
	bf := &index.BruteForce{Objects: enc.Objects, Weights: w}
	for i := range enc.Queries {
		res := bf.TopKParallel(enc.Queries[i].Vectors, kPrime)
		gt := make([]int, len(res))
		for j, r := range res {
			gt[j] = r.ID
		}
		enc.Queries[i].GroundTruth = gt
	}
}

// searchFunc abstracts one framework's search call for shared evaluation.
type searchFunc func(q vec.Multi, k, l int) ([]int, error)

// accuracyEval runs queries through fn and reports Recall@k(k') for each
// requested k plus the mean SME of the top-1 result (Eq. 4).
func accuracyEval(enc *dataset.Encoded, queries []dataset.EncodedQuery, fn searchFunc, ks []int, l int) (map[int]float64, float64, error) {
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	if l < maxK {
		l = maxK
	}
	recalls := make(map[int]float64, len(ks))
	var smeSum float64
	var smeCount int
	for _, q := range queries {
		ids, err := fn(q.Vectors, maxK, l)
		if err != nil {
			return nil, 0, err
		}
		for _, k := range ks {
			top := ids
			if len(top) > k {
				top = top[:k]
			}
			recalls[k] += metrics.Recall(top, q.GroundTruth)
		}
		if len(ids) > 0 && len(q.GroundTruth) > 0 {
			gt0 := enc.Objects[q.GroundTruth[0]][0]
			r0 := enc.Objects[ids[0]][0]
			smeSum += metrics.SME(vec.Dot(gt0, r0))
			smeCount++
		}
	}
	for _, k := range ks {
		recalls[k] /= float64(len(queries))
	}
	sme := 0.0
	if smeCount > 0 {
		sme = smeSum / float64(smeCount)
	}
	return recalls, sme, nil
}

// timedEval measures single-threaded throughput: it runs all queries
// through fn, returning mean recall@k(k') and the observed QPS.
func timedEval(queries []dataset.EncodedQuery, fn searchFunc, k, l int) (recall, qps float64, mean time.Duration, err error) {
	start := time.Now()
	var total float64
	for _, q := range queries {
		ids, e := fn(q.Vectors, k, l)
		if e != nil {
			return 0, 0, 0, e
		}
		total += metrics.Recall(ids, q.GroundTruth)
	}
	elapsed := time.Since(start)
	n := len(queries)
	return total / float64(n), metrics.QPS(n, elapsed), elapsed / time.Duration(n), nil
}

// mustSearcherFunc adapts a fused-index searcher.
func mustSearcherFunc(s *search.Searcher) searchFunc {
	return func(q vec.Multi, k, l int) ([]int, error) {
		res, _, err := s.Search(q, k, l)
		if err != nil {
			return nil, err
		}
		return search.IDs(res), nil
	}
}

// bruteFunc adapts exact search (MUST--).
func bruteFunc(bf *index.BruteForce) searchFunc {
	return func(q vec.Multi, k, _ int) ([]int, error) {
		return search.IDs(bf.TopK(q, k)), nil
	}
}

// mrFunc adapts the MR searcher.
func mrFunc(s *baseline.MRSearcher) searchFunc {
	return func(q vec.Multi, k, l int) ([]int, error) { return s.Search(q, k, l) }
}

// mrBruteFunc adapts MR--.
func mrBruteFunc(b *baseline.MRBrute) searchFunc {
	return func(q vec.Multi, k, l int) ([]int, error) { return b.Search(q, k, l) }
}

// jeFunc adapts the JE searcher.
func jeFunc(s *baseline.JESearcher) searchFunc {
	return func(q vec.Multi, k, l int) ([]int, error) { return s.Search(q, k, l) }
}
