package experiments

import (
	"fmt"

	"must/internal/baseline"
	"must/internal/dataset"
	"must/internal/encoder"
	"must/internal/index"
	"must/internal/vec"
)

// AccuracyRow is one row of an accuracy table (Tab. III–VI, XXI):
// framework × encoder combination with Recall@k(1) at several k plus SME.
type AccuracyRow struct {
	Framework string
	Encoder   string
	// Recall maps k → Recall@k(1).
	Recall map[int]float64
	// SME is the mean similarity measurement error of the top-1 result.
	SME float64
	// Weights are the learned weights (MUST rows only).
	Weights vec.Weights
}

// encoderRow describes one encoder combination for an accuracy table.
type encoderRow struct {
	set dataset.EncoderSet
	// jeOnly marks composition-encoder rows evaluated only under JE.
	jeOnly bool
	// skipJE marks rows with no composition vector (JE needs one).
	skipJE bool
}

// encodersFor builds the per-dataset encoder rows matching the paper's
// tables. seed namespaces the projections per dataset.
func encodersFor(raw *dataset.Raw, table string, seed int64) []encoderRow {
	cd, ad := raw.ContentDim, raw.AttrDim
	img := func(kind string) *encoder.Sim {
		if kind == "17" {
			return encoder.NewResNet17(cd, seed)
		}
		return encoder.NewResNet50(cd, seed)
	}
	switch table {
	case "mitstates":
		rows := []encoderRow{}
		text := map[string]func() encoder.Encoder{
			"LSTM":        func() encoder.Encoder { return encoder.NewLSTM(ad, seed) },
			"Transformer": func() encoder.Encoder { return encoder.NewTransformer(ad, seed) },
		}
		// JE rows: TIRG and CLIP compositions over a ResNet50-grade base.
		base := img("50")
		rows = append(rows,
			encoderRow{set: dataset.EncoderSet{
				Unimodal:    []encoder.Encoder{base, encoder.NewLSTM(ad, seed)},
				Composition: encoder.NewTIRG(base, seed),
			}, jeOnly: true},
			encoderRow{set: dataset.EncoderSet{
				Unimodal:    []encoder.Encoder{base, encoder.NewLSTM(ad, seed)},
				Composition: encoder.NewCLIP(base, seed),
			}, jeOnly: true},
		)
		// MR/MUST rows: {ResNet17,ResNet50,TIRG,CLIP} × {LSTM,Transformer}.
		for _, tname := range []string{"LSTM", "Transformer"} {
			for _, iname := range []string{"17", "50"} {
				rows = append(rows, encoderRow{set: dataset.EncoderSet{
					Unimodal: []encoder.Encoder{img(iname), text[tname]()},
				}, skipJE: true})
			}
			rows = append(rows, encoderRow{set: dataset.EncoderSet{
				Unimodal:    []encoder.Encoder{base, text[tname]()},
				Composition: encoder.NewTIRG(base, seed),
			}, skipJE: true})
			rows = append(rows, encoderRow{set: dataset.EncoderSet{
				Unimodal:    []encoder.Encoder{base, text[tname]()},
				Composition: encoder.NewCLIP(base, seed),
			}, skipJE: true})
		}
		return rows
	case "celeba", "shopping":
		ordinal := func() encoder.Encoder { return encoder.NewOrdinal(ad, seed) }
		base := img("50")
		rows := []encoderRow{
			{set: dataset.EncoderSet{
				Unimodal:    []encoder.Encoder{base, ordinal()},
				Composition: encoder.NewTIRG(base, seed),
			}, jeOnly: true},
		}
		if table == "celeba" {
			rows = append(rows, encoderRow{set: dataset.EncoderSet{
				Unimodal:    []encoder.Encoder{base, ordinal()},
				Composition: encoder.NewCLIP(base, seed),
			}, jeOnly: true})
		}
		rows = append(rows, encoderRow{set: dataset.EncoderSet{
			Unimodal: []encoder.Encoder{img("17"), ordinal()},
		}, skipJE: true})
		if table == "celeba" {
			rows = append(rows, encoderRow{set: dataset.EncoderSet{
				Unimodal: []encoder.Encoder{img("50"), ordinal()},
			}, skipJE: true})
		}
		rows = append(rows, encoderRow{set: dataset.EncoderSet{
			Unimodal:    []encoder.Encoder{base, ordinal()},
			Composition: encoder.NewTIRG(base, seed),
		}, skipJE: true})
		if table == "celeba" {
			rows = append(rows, encoderRow{set: dataset.EncoderSet{
				Unimodal:    []encoder.Encoder{base, ordinal()},
				Composition: encoder.NewCLIP(base, seed),
			}, skipJE: true})
		}
		return rows
	case "mscoco":
		// Layout: [content image, text, second image].
		base := img("50")
		gru := func() encoder.Encoder { return encoder.NewGRU(ad, seed) }
		second := func() encoder.Encoder { return encoder.NewResNet50(cd, seed^0x2) }
		return []encoderRow{
			{set: dataset.EncoderSet{
				Unimodal:    []encoder.Encoder{base, gru(), second()},
				Composition: encoder.NewMPC(base, seed),
			}, jeOnly: true},
			{set: dataset.EncoderSet{
				Unimodal:    []encoder.Encoder{base, gru(), second()},
				Composition: encoder.NewMPC(base, seed),
			}, skipJE: true},
			{set: dataset.EncoderSet{
				Unimodal: []encoder.Encoder{base, gru(), second()},
			}, skipJE: true},
		}
	default:
		panic(fmt.Sprintf("experiments: unknown encoder table %q", table))
	}
}

// RunAccuracyTableNamed reproduces one of Tab. III–VI / XXI by preset
// name: "mitstates", "celeba", "shopping", "shopping-bottoms" or "mscoco".
func RunAccuracyTableNamed(table string, ks []int, opt Options) ([]AccuracyRow, error) {
	opt = opt.withDefaults()
	var (
		cfg     dataset.SemanticConfig
		catalog string
	)
	switch table {
	case "mitstates":
		cfg, catalog = dataset.MITStatesSim(opt.Scale), "mitstates"
	case "celeba":
		cfg, catalog = dataset.CelebASim(opt.Scale), "celeba"
	case "shopping":
		cfg, catalog = dataset.ShoppingSim(opt.Scale), "shopping"
	case "shopping-bottoms":
		cfg, catalog = dataset.ShoppingBottomsSim(opt.Scale), "shopping"
	case "mscoco":
		cfg, catalog = dataset.MSCOCOSim(opt.Scale), "mscoco"
	default:
		return nil, fmt.Errorf("experiments: unknown accuracy table %q", table)
	}
	raw, err := dataset.GenerateSemantic(cfg)
	if err != nil {
		return nil, err
	}
	return RunAccuracyTable(raw, catalog, ks, opt)
}

// RunAccuracyTable reproduces one of Tab. III–VI / XXI: every framework ×
// encoder combination on the named dataset. table selects the encoder
// catalog ("mitstates", "celeba", "shopping", "mscoco").
func RunAccuracyTable(raw *dataset.Raw, table string, ks []int, opt Options) ([]AccuracyRow, error) {
	opt = opt.withDefaults()
	var rows []AccuracyRow
	for _, er := range encodersFor(raw, table, opt.Seed) {
		enc, err := dataset.Encode(raw, er.set)
		if err != nil {
			return nil, err
		}
		eval := evalQueries(enc)
		if er.jeOnly {
			je, err := baseline.BuildJE(enc.Objects, opt.pipeline("JE"))
			if err != nil {
				return nil, err
			}
			rec, sme, err := accuracyEval(enc, eval, jeFunc(je.NewSearcher()), ks, opt.Beam)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AccuracyRow{
				Framework: "JE",
				Encoder:   er.set.Composition.Name(),
				Recall:    rec, SME: sme,
			})
			continue
		}
		// MR row.
		mr, err := baseline.BuildMR(enc.Objects, opt.pipeline("MR"))
		if err != nil {
			return nil, err
		}
		rec, sme, err := accuracyEval(enc, eval, mrFunc(mr.NewSearcher()), ks, opt.Beam)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AccuracyRow{Framework: "MR", Encoder: enc.EncoderLabel, Recall: rec, SME: sme})

		// MUST row: learn weights, build fused index, joint search.
		w, _, err := learnWeightsFor(enc, opt)
		if err != nil {
			return nil, err
		}
		fused, err := index.BuildFused(enc.Objects, w, opt.pipeline("MUST"))
		if err != nil {
			return nil, err
		}
		rec, sme, err = accuracyEval(enc, eval, mustSearcherFunc(fused.NewSearcher()), ks, opt.Beam)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AccuracyRow{
			Framework: "MUST", Encoder: enc.EncoderLabel,
			Recall: rec, SME: sme, Weights: w,
		})
	}
	return rows, nil
}

// RunModalityCount reproduces Tab. VIII: Recall@1(1) of MR and MUST on
// CelebA+ with m ∈ {2, 3, 4} query/object modalities.
func RunModalityCount(opt Options) (map[int]map[string]float64, error) {
	opt = opt.withDefaults()
	raw, err := dataset.GenerateSemantic(dataset.CelebAPlusSim(opt.Scale))
	if err != nil {
		return nil, err
	}
	base := encoder.NewResNet50(raw.ContentDim, opt.Seed)
	set := dataset.EncoderSet{
		Unimodal: []encoder.Encoder{
			base,
			encoder.NewOrdinal(raw.AttrDim, opt.Seed),
			encoder.NewResNet17(raw.ContentDim, opt.Seed),
			encoder.NewResNet50(raw.ContentDim, opt.Seed^0x77),
		},
		Composition: encoder.NewCLIP(base, opt.Seed),
	}
	enc, err := dataset.Encode(raw, set)
	if err != nil {
		return nil, err
	}
	eval := evalQueries(enc)
	w, _, err := learnWeightsFor(enc, opt)
	if err != nil {
		return nil, err
	}

	out := map[int]map[string]float64{}
	for m := 2; m <= 4; m++ {
		// Restrict to the first m modalities by truncating objects and
		// queries; weights are re-normalized over the kept modalities.
		objs := make([]vec.Multi, len(enc.Objects))
		for i, o := range enc.Objects {
			objs[i] = o[:m]
		}
		wm := w[:m].Clone()
		fused, err := index.BuildFused(objs, wm, opt.pipeline("MUST"))
		if err != nil {
			return nil, err
		}
		mr, err := baseline.BuildMR(objs, opt.pipeline("MR"))
		if err != nil {
			return nil, err
		}
		ms := fused.NewSearcher()
		mrs := mr.NewSearcher()
		sub := make([]dataset.EncodedQuery, len(eval))
		for i, q := range eval {
			sub[i] = dataset.EncodedQuery{Vectors: q.Vectors[:m], GroundTruth: q.GroundTruth}
		}
		recMust, _, err := accuracyEval(enc, sub, mustSearcherFunc(ms), []int{1}, opt.Beam)
		if err != nil {
			return nil, err
		}
		recMR, _, err := accuracyEval(enc, sub, mrFunc(mrs), []int{1}, opt.Beam)
		if err != nil {
			return nil, err
		}
		out[m] = map[string]float64{"MUST": recMust[1], "MR": recMR[1]}
	}
	return out, nil
}

// SingleModalityRow is one row of Tab. X / XIX / XX: accuracy when only
// one query modality is used.
type SingleModalityRow struct {
	Dataset  string
	Modality string // "Target" or "Auxiliary"
	Encoder  string
	Recall   map[int]float64
}

// RunSingleModality reproduces Tab. X on MIT-States: search accuracy with
// t = 1 (either the target or the auxiliary modality alone), by zeroing
// the other modality's weight in a fused search.
func RunSingleModality(opt Options) ([]SingleModalityRow, error) {
	opt = opt.withDefaults()
	raw, err := dataset.GenerateSemantic(dataset.MITStatesSim(opt.Scale))
	if err != nil {
		return nil, err
	}
	var rows []SingleModalityRow
	type combo struct {
		modality string
		weights  vec.Weights
		set      dataset.EncoderSet
		encName  string
	}
	combos := []combo{}
	for _, iname := range []string{"17", "50"} {
		var ie encoder.Encoder
		if iname == "17" {
			ie = encoder.NewResNet17(raw.ContentDim, opt.Seed)
		} else {
			ie = encoder.NewResNet50(raw.ContentDim, opt.Seed)
		}
		combos = append(combos, combo{
			modality: "Target", weights: vec.Weights{1, 0}, encName: ie.Name(),
			set: dataset.EncoderSet{Unimodal: []encoder.Encoder{ie, encoder.NewLSTM(raw.AttrDim, opt.Seed)}},
		})
	}
	for _, tname := range []string{"LSTM", "Transformer"} {
		var te encoder.Encoder
		if tname == "LSTM" {
			te = encoder.NewLSTM(raw.AttrDim, opt.Seed)
		} else {
			te = encoder.NewTransformer(raw.AttrDim, opt.Seed)
		}
		combos = append(combos, combo{
			modality: "Auxiliary", weights: vec.Weights{0, 1}, encName: te.Name(),
			set: dataset.EncoderSet{Unimodal: []encoder.Encoder{encoder.NewResNet50(raw.ContentDim, opt.Seed), te}},
		})
	}
	for _, cb := range combos {
		enc, err := dataset.Encode(raw, cb.set)
		if err != nil {
			return nil, err
		}
		fused, err := index.BuildFused(enc.Objects, cb.weights, opt.pipeline("single"))
		if err != nil {
			return nil, err
		}
		rec, _, err := accuracyEval(enc, evalQueries(enc), mustSearcherFunc(fused.NewSearcher()), []int{1, 5}, opt.Beam)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SingleModalityRow{Dataset: raw.Name, Modality: cb.modality, Encoder: cb.encName, Recall: rec})
	}
	return rows, nil
}

// RunSingleModalityAppendix reproduces Tab. XIX/XX: target-only and
// auxiliary-only accuracy on MIT-States, CelebA and Shopping.
func RunSingleModalityAppendix(opt Options) ([]SingleModalityRow, error) {
	opt = opt.withDefaults()
	var rows []SingleModalityRow
	configs := []struct {
		cfg dataset.SemanticConfig
		aux func(raw *dataset.Raw) encoder.Encoder
	}{
		{dataset.MITStatesSim(opt.Scale), func(raw *dataset.Raw) encoder.Encoder { return encoder.NewLSTM(raw.AttrDim, opt.Seed) }},
		{dataset.CelebASim(opt.Scale), func(raw *dataset.Raw) encoder.Encoder { return encoder.NewOrdinal(raw.AttrDim, opt.Seed) }},
		{dataset.ShoppingSim(opt.Scale), func(raw *dataset.Raw) encoder.Encoder { return encoder.NewOrdinal(raw.AttrDim, opt.Seed) }},
	}
	for _, c := range configs {
		raw, err := dataset.GenerateSemantic(c.cfg)
		if err != nil {
			return nil, err
		}
		for _, side := range []struct {
			modality string
			weights  vec.Weights
			encName  func(set dataset.EncoderSet) string
		}{
			{"Target", vec.Weights{1, 0}, func(set dataset.EncoderSet) string { return set.Unimodal[0].Name() }},
			{"Auxiliary", vec.Weights{0, 1}, func(set dataset.EncoderSet) string { return set.Unimodal[1].Name() }},
		} {
			set := dataset.EncoderSet{Unimodal: []encoder.Encoder{
				encoder.NewResNet50(raw.ContentDim, opt.Seed), c.aux(raw),
			}}
			enc, err := dataset.Encode(raw, set)
			if err != nil {
				return nil, err
			}
			fused, err := index.BuildFused(enc.Objects, side.weights, opt.pipeline("single"))
			if err != nil {
				return nil, err
			}
			rec, _, err := accuracyEval(enc, evalQueries(enc), mustSearcherFunc(fused.NewSearcher()), []int{1, 5, 10}, opt.Beam)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SingleModalityRow{
				Dataset: raw.Name, Modality: side.modality,
				Encoder: side.encName(set), Recall: rec,
			})
		}
	}
	return rows, nil
}
