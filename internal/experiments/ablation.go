package experiments

import (
	"math"
	"strconv"
	"time"

	"must/internal/baseline"
	"must/internal/dataset"
	"must/internal/graph"
	"must/internal/index"
	"must/internal/metrics"
	"must/internal/search"
	"must/internal/vec"
	"must/internal/weights"
)

// WeightLearningRun is one training configuration's outcome (Fig. 9 and
// Fig. 13): the loss/recall curves plus the learned weights.
type WeightLearningRun struct {
	Label   string
	Trace   []weights.Trace
	Weights vec.Weights
}

// RunWeightLearning reproduces Fig. 9: hard- vs random-negative training
// on the ImageText dataset.
func RunWeightLearning(opt Options) ([]WeightLearningRun, error) {
	opt = opt.withDefaults()
	n := int(float64(featureBaseN) * opt.Scale)
	enc, err := EncodeFeature(ImageText, n, opt)
	if err != nil {
		return nil, err
	}
	anchors, positives, pool, err := featureTrainingSet(enc, opt)
	if err != nil {
		return nil, err
	}
	var out []WeightLearningRun
	for _, hard := range []bool{true, false} {
		label := "Hard"
		epochs := opt.TrainEpochs
		if !hard {
			label = "Random"
			epochs = opt.TrainEpochs * 2 // the paper trains random longer (Fig. 9b)
		}
		res, err := weights.Train(anchors, positives, pool, weights.Config{
			Epochs:        epochs,
			HardNegatives: hard,
			Seed:          opt.Seed,
			LearningRate:  0.01,
			Init:          skewedInit(),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, WeightLearningRun{Label: label, Trace: res.Trace, Weights: res.Weights})
	}
	return out, nil
}

// RunNegativeCount reproduces Fig. 13: hard-negative training with
// |N−| ∈ negCounts.
func RunNegativeCount(negCounts []int, opt Options) ([]WeightLearningRun, error) {
	opt = opt.withDefaults()
	if len(negCounts) == 0 {
		negCounts = []int{1, 2, 4, 6, 8, 10}
	}
	n := int(float64(featureBaseN) * opt.Scale)
	enc, err := EncodeFeature(ImageText, n, opt)
	if err != nil {
		return nil, err
	}
	anchors, positives, pool, err := featureTrainingSet(enc, opt)
	if err != nil {
		return nil, err
	}
	var out []WeightLearningRun
	for _, nn := range negCounts {
		res, err := weights.Train(anchors, positives, pool, weights.Config{
			Epochs:        opt.TrainEpochs,
			NumNegatives:  nn,
			HardNegatives: true,
			Seed:          opt.Seed,
			LearningRate:  0.01,
			Init:          skewedInit(),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, WeightLearningRun{
			Label:   "|N-|=" + strconv.Itoa(nn),
			Trace:   res.Trace,
			Weights: res.Weights,
		})
	}
	return out, nil
}

// featureTrainingSet assembles (anchors, positives, pool) for a feature
// dataset: each query's positive is its uniform-weight exact top-1, and
// the pool additionally contains each query's next-nearest objects as hard
// decoys — without them the pool is trivially separable and the learning
// curves of Fig. 9/13 degenerate.
func featureTrainingSet(enc *dataset.Encoded, opt Options) ([]vec.Multi, []int, []vec.Multi, error) {
	uniform := vec.Uniform(enc.M)
	bf := &index.BruteForce{Objects: enc.Objects, Weights: uniform}
	n := len(enc.Queries)
	if n > 200 {
		n = 200
	}
	anchors := make([]vec.Multi, 0, n)
	positives := make([]int, 0, n)
	poolIdx := map[int]int{}
	var pool []vec.Multi
	intern := func(id int) int {
		pi, ok := poolIdx[id]
		if !ok {
			pi = len(pool)
			poolIdx[id] = pi
			pool = append(pool, enc.Objects[id])
		}
		return pi
	}
	for _, q := range enc.Queries[:n] {
		top := bf.TopKParallel(q.Vectors, 6)
		if len(top) == 0 {
			continue
		}
		anchors = append(anchors, q.Vectors)
		positives = append(positives, intern(top[0].ID))
		for _, decoy := range top[1:] {
			intern(decoy.ID)
		}
	}
	return anchors, positives, pool, nil
}

// skewedInit is a deliberately wrong starting ratio for the Fig. 9/13
// learning curves (the paper starts from random weights); normalized to
// Σω² = 2.
func skewedInit() vec.Weights {
	w := vec.Weights{0.35, 1.36}
	scale := float32(math.Sqrt(2 / float64(w.SumSquared())))
	for i := range w {
		w[i] *= scale
	}
	return w
}

// UserWeightRow is one column of Tab. IX: per-modality similarities of the
// top-1 result under a user-defined weight split.
type UserWeightRow struct {
	W0Sq, W1Sq float64
	// IP0 and IP1 are the mean per-modality inner products between the
	// query and its top-1 result.
	IP0, IP1 float64
}

// RunUserWeights reproduces Tab. IX on MIT-States: sweeping ω₀²/ω₁² and
// measuring how the returned objects trade target-modality similarity
// against auxiliary-modality similarity.
func RunUserWeights(splits []float64, opt Options) ([]UserWeightRow, error) {
	opt = opt.withDefaults()
	if len(splits) == 0 {
		splits = []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	}
	raw, err := dataset.GenerateSemantic(dataset.MITStatesSim(opt.Scale))
	if err != nil {
		return nil, err
	}
	enc, err := dataset.Encode(raw, mitStatesBestSet(raw, opt.Seed))
	if err != nil {
		return nil, err
	}
	eval := evalQueries(enc)
	if len(eval) > 300 {
		eval = eval[:300]
	}
	var rows []UserWeightRow
	for _, w0sq := range splits {
		w := vec.Weights{float32(math.Sqrt(w0sq)), float32(math.Sqrt(1 - w0sq))}
		fused, err := index.BuildFused(enc.Objects, w, opt.pipeline("user"))
		if err != nil {
			return nil, err
		}
		s := fused.NewSearcher()
		var ip0, ip1 float64
		for _, q := range eval {
			res, _, err := s.Search(q.Vectors, 1, opt.Beam)
			if err != nil {
				return nil, err
			}
			if len(res) == 0 {
				continue
			}
			r := enc.Objects[res[0].ID]
			ip0 += float64(vec.Dot(q.Vectors[0], r[0]))
			ip1 += float64(vec.Dot(q.Vectors[1], r[1]))
		}
		rows = append(rows, UserWeightRow{
			W0Sq: w0sq, W1Sq: 1 - w0sq,
			IP0: ip0 / float64(len(eval)),
			IP1: ip1 / float64(len(eval)),
		})
	}
	return rows, nil
}

// GraphCompareRow is one proximity graph's build cost (Fig. 10a) and
// QPS-recall curve (Fig. 10b) under the same joint search.
type GraphCompareRow struct {
	Name      string
	BuildTime time.Duration
	SizeBytes int64
	Curve     []metrics.Point
}

// RunGraphComparison reproduces Fig. 10(a)(b): the fused index built by
// every §VIII-G graph algorithm on ImageText, searched with MUST's joint
// search.
func RunGraphComparison(opt Options) ([]GraphCompareRow, error) {
	opt = opt.withDefaults()
	n := int(float64(featureBaseN) * opt.Scale)
	enc, err := EncodeFeature(ImageText, n, opt)
	if err != nil {
		return nil, err
	}
	w, _, err := LearnFeatureWeights(enc, opt)
	if err != nil {
		return nil, err
	}
	const k = 10
	FillGroundTruth(enc, w, k)

	builders := []struct {
		name  string
		build func() (*index.Fused, error)
	}{
		{"Ours", func() (*index.Fused, error) {
			return index.BuildFused(enc.Objects, w, opt.pipeline("Ours"))
		}},
		{"KGraph", func() (*index.Fused, error) {
			return index.BuildFused(enc.Objects, w, graph.KGraphAssembly(opt.Gamma, opt.Iters, opt.Seed))
		}},
		{"NSG", func() (*index.Fused, error) {
			return index.BuildFused(enc.Objects, w, graph.NSGAssembly(opt.Gamma, opt.Iters, 2*opt.Gamma, opt.Seed))
		}},
		{"NSSG", func() (*index.Fused, error) {
			return index.BuildFused(enc.Objects, w, graph.NSSGAssembly(opt.Gamma, opt.Iters, opt.Seed))
		}},
		{"HNSW", func() (*index.Fused, error) {
			return index.BuildFusedGraph(enc.Objects, w, "HNSW", func(s *graph.Space) *graph.Graph {
				return graph.BuildHNSW(s, graph.HNSWConfig{M: opt.Gamma / 2, EfConstruction: 4 * opt.Gamma, Seed: opt.Seed})
			})
		}},
		{"Vamana", func() (*index.Fused, error) {
			return index.BuildFusedGraph(enc.Objects, w, "Vamana", func(s *graph.Space) *graph.Graph {
				return graph.BuildVamana(s, graph.VamanaConfig{Gamma: opt.Gamma, Beam: 2 * opt.Gamma, Alpha: 1.2, Seed: opt.Seed})
			})
		}},
		{"HCNNG", func() (*index.Fused, error) {
			return index.BuildFusedGraph(enc.Objects, w, "HCNNG", func(s *graph.Space) *graph.Graph {
				return graph.BuildHCNNG(s, graph.HCNNGConfig{Rounds: 3, LeafSize: 200, MaxDegree: opt.Gamma, Seed: opt.Seed})
			})
		}},
	}
	var rows []GraphCompareRow
	for _, b := range builders {
		fused, err := b.build()
		if err != nil {
			return nil, err
		}
		row := GraphCompareRow{Name: b.name, BuildTime: fused.BuildTime, SizeBytes: fused.SizeBytes()}
		for _, l := range DefaultBeams {
			if l < k {
				continue
			}
			rec, qps, lat, err := timedEval(enc.Queries, mustSearcherFunc(fused.NewSearcher()), k, l)
			if err != nil {
				return nil, err
			}
			row.Curve = append(row.Curve, metrics.Point{Param: l, Recall: rec, QPS: qps, Latency: lat})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// OptimizationPoint pairs the on/off measurements of Fig. 10(c).
type OptimizationPoint struct {
	Beam                 int
	RecallOn, RecallOff  float64
	QPSOn, QPSOff        float64
	FullEvals, PartSkips int
}

// RunMultiVectorOptimization reproduces Fig. 10(c): the joint search with
// and without the Lemma 4 partial-IP early termination.
func RunMultiVectorOptimization(opt Options) ([]OptimizationPoint, error) {
	opt = opt.withDefaults()
	n := int(float64(featureBaseN) * opt.Scale)
	enc, err := EncodeFeature(ImageText, n, opt)
	if err != nil {
		return nil, err
	}
	w, _, err := LearnFeatureWeights(enc, opt)
	if err != nil {
		return nil, err
	}
	const k = 10
	FillGroundTruth(enc, w, k)
	fused, err := index.BuildFused(enc.Objects, w, opt.pipeline("MUST"))
	if err != nil {
		return nil, err
	}
	var out []OptimizationPoint
	for _, l := range DefaultBeams {
		if l < k {
			continue
		}
		sOn := fused.NewSearcher()
		recOn, qpsOn, _, err := timedEval(enc.Queries, mustSearcherFunc(sOn), k, l)
		if err != nil {
			return nil, err
		}
		sOff := fused.NewSearcher(search.WithOptimization(false))
		recOff, qpsOff, _, err := timedEval(enc.Queries, mustSearcherFunc(sOff), k, l)
		if err != nil {
			return nil, err
		}
		// Sample one query for the work counters.
		sStat := fused.NewSearcher()
		var fe, ps int
		if len(enc.Queries) > 0 {
			_, st, err := sStat.Search(enc.Queries[0].Vectors, k, l)
			if err != nil {
				return nil, err
			}
			fe, ps = st.FullEvals, st.PartialSkips
		}
		out = append(out, OptimizationPoint{
			Beam: l, RecallOn: recOn, RecallOff: recOff,
			QPSOn: qpsOn, QPSOff: qpsOff,
			FullEvals: fe, PartSkips: ps,
		})
	}
	return out, nil
}

// NeighborAuditRow quantifies Fig. 11: the mean per-modality similarity
// between vertices and their index neighbors, for the fused index versus
// MR's per-modality indexes.
type NeighborAuditRow struct {
	Index string
	// MeanIP0 and MeanIP1 are the mean modality-0 / modality-1 inner
	// products across sampled (vertex, neighbor) pairs.
	MeanIP0, MeanIP1 float64
	// MeanJoint is the mean joint similarity under the learned weights.
	MeanJoint float64
}

// RunNeighborAudit reproduces Fig. 11 quantitatively on CelebA: MUST's
// fused index balances both modalities where MR's indexes each collapse to
// one.
func RunNeighborAudit(opt Options) ([]NeighborAuditRow, error) {
	opt = opt.withDefaults()
	raw, err := dataset.GenerateSemantic(dataset.CelebASim(opt.Scale))
	if err != nil {
		return nil, err
	}
	enc, err := dataset.Encode(raw, celebABestSet(raw, opt.Seed))
	if err != nil {
		return nil, err
	}
	w, _, err := learnWeightsFor(enc, opt)
	if err != nil {
		return nil, err
	}
	fused, err := index.BuildFused(enc.Objects, w, opt.pipeline("MUST"))
	if err != nil {
		return nil, err
	}
	mr, err := baseline.BuildMR(enc.Objects, opt.pipeline("MR"))
	if err != nil {
		return nil, err
	}
	audit := func(name string, g *graph.Graph) NeighborAuditRow {
		var ip0, ip1, joint float64
		var count int
		stride := len(enc.Objects) / 200
		if stride < 1 {
			stride = 1
		}
		for v := 0; v < len(enc.Objects); v += stride {
			for _, u := range g.Neighbors(int32(v)) {
				a, b := enc.Objects[v], enc.Objects[u]
				ip0 += float64(vec.Dot(a[0], b[0]))
				ip1 += float64(vec.Dot(a[1], b[1]))
				joint += float64(vec.JointIP(w, a, b))
				count++
			}
		}
		if count == 0 {
			return NeighborAuditRow{Index: name}
		}
		return NeighborAuditRow{
			Index:   name,
			MeanIP0: ip0 / float64(count), MeanIP1: ip1 / float64(count),
			MeanJoint: joint / float64(count),
		}
	}
	return []NeighborAuditRow{
		audit("MUST(fused)", fused.Graph),
		audit("MR(modality0)", mr.Indexes()[0].Graph),
		audit("MR(modality1)", mr.Indexes()[1].Graph),
	}, nil
}

// GraphQualityRow is one row of Tab. XI: NNDescent graph quality after ε
// iterations, per dataset.
type GraphQualityRow struct {
	Dataset FeatureName
	// Quality maps ε → graph quality.
	Quality map[int]float64
}

// RunGraphQuality reproduces Tab. XI on the three feature datasets.
func RunGraphQuality(iters []int, opt Options) ([]GraphQualityRow, error) {
	opt = opt.withDefaults()
	if len(iters) == 0 {
		iters = []int{1, 2, 3}
	}
	n := int(float64(featureBaseN) * opt.Scale / 4)
	if n < 500 {
		n = 500
	}
	var rows []GraphQualityRow
	for _, name := range []FeatureName{ImageText, AudioText, VideoText} {
		enc, err := EncodeFeature(name, n, opt)
		if err != nil {
			return nil, err
		}
		w := vec.Uniform(enc.M)
		space := graph.NewFusedSpace(enc.Objects, w)
		row := GraphQualityRow{Dataset: name, Quality: map[int]float64{}}
		for _, e := range iters {
			adj := graph.NNDescent{Iters: e, Seed: opt.Seed}.Init(space, opt.Gamma)
			g := graph.NewCSR(adj, 0)
			row.Quality[e] = graph.Quality(g, space, opt.Gamma, 100)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BeamRow is one column of Tab. XII: recall and response time at one l.
type BeamRow struct {
	L        int
	Recall   float64
	Latency  time.Duration
	QPS      float64
	Frontier bool
}

// RunBeamSweep reproduces Tab. XII: Recall@10(10) and response time as l
// grows, on ImageText.
func RunBeamSweep(beams []int, opt Options) ([]BeamRow, error) {
	opt = opt.withDefaults()
	if len(beams) == 0 {
		beams = []int{50, 100, 200, 400, 800, 1600}
	}
	n := int(float64(featureBaseN) * opt.Scale)
	enc, err := EncodeFeature(ImageText, n, opt)
	if err != nil {
		return nil, err
	}
	w, _, err := LearnFeatureWeights(enc, opt)
	if err != nil {
		return nil, err
	}
	const k = 10
	FillGroundTruth(enc, w, k)
	fused, err := index.BuildFused(enc.Objects, w, opt.pipeline("MUST"))
	if err != nil {
		return nil, err
	}
	var rows []BeamRow
	for _, l := range beams {
		rec, qps, lat, err := timedEval(enc.Queries, mustSearcherFunc(fused.NewSearcher()), k, l)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BeamRow{L: l, Recall: rec, Latency: lat, QPS: qps})
	}
	return rows, nil
}

// GammaRow is one γ setting's costs and search quality (Fig. 14/15).
type GammaRow struct {
	Gamma     int
	BuildTime time.Duration
	SizeBytes int64
	Recall    float64
	Latency   time.Duration
}

// RunGammaSweep reproduces Fig. 14/15: the effect of the degree bound γ on
// index size, build time, recall and response time (fixed l).
func RunGammaSweep(gammas []int, beam int, opt Options) ([]GammaRow, error) {
	opt = opt.withDefaults()
	if len(gammas) == 0 {
		gammas = []int{10, 20, 30, 40, 50}
	}
	if beam == 0 {
		beam = 400
	}
	n := int(float64(featureBaseN) * opt.Scale)
	enc, err := EncodeFeature(ImageText, n, opt)
	if err != nil {
		return nil, err
	}
	w, _, err := LearnFeatureWeights(enc, opt)
	if err != nil {
		return nil, err
	}
	const k = 10
	FillGroundTruth(enc, w, k)
	var rows []GammaRow
	for _, g := range gammas {
		o := opt
		o.Gamma = g
		fused, err := index.BuildFused(enc.Objects, w, o.pipeline("MUST"))
		if err != nil {
			return nil, err
		}
		rec, _, lat, err := timedEval(enc.Queries, mustSearcherFunc(fused.NewSearcher()), k, beam)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GammaRow{
			Gamma: g, BuildTime: fused.BuildTime, SizeBytes: fused.SizeBytes(),
			Recall: rec, Latency: lat,
		})
	}
	return rows, nil
}

// RunIndexStats builds the fused ImageText index and audits its graph
// structure (not a paper experiment; an index-health report for
// operators).
func RunIndexStats(opt Options) (graph.Stats, map[int]int, error) {
	opt = opt.withDefaults()
	n := int(float64(featureBaseN) * opt.Scale)
	enc, err := EncodeFeature(ImageText, n, opt)
	if err != nil {
		return graph.Stats{}, nil, err
	}
	w, _, err := LearnFeatureWeights(enc, opt)
	if err != nil {
		return graph.Stats{}, nil, err
	}
	fused, err := index.BuildFused(enc.Objects, w, opt.pipeline("MUST"))
	if err != nil {
		return graph.Stats{}, nil, err
	}
	return graph.ComputeStats(fused.Graph), graph.DegreeHistogram(fused.Graph, 5), nil
}

// LearnedWeightRow records Tab. XIII–XVIII: the learned ω² per dataset and
// encoder combination.
type LearnedWeightRow struct {
	Dataset string
	Encoder string
	WSq     []float64
}

// RunLearnedWeights collects the learned weights across the feature
// datasets (Tab. XVIII); the per-encoder semantic weights appear in the
// accuracy tables' Weights column (Tab. XIII–XVII).
func RunLearnedWeights(opt Options) ([]LearnedWeightRow, error) {
	opt = opt.withDefaults()
	n := int(float64(featureBaseN) * opt.Scale)
	var rows []LearnedWeightRow
	for _, name := range []FeatureName{ImageText, AudioText, VideoText} {
		enc, err := EncodeFeature(name, n, opt)
		if err != nil {
			return nil, err
		}
		w, _, err := LearnFeatureWeights(enc, opt)
		if err != nil {
			return nil, err
		}
		wsq := make([]float64, len(w))
		for i, x := range w {
			wsq[i] = float64(x) * float64(x)
		}
		rows = append(rows, LearnedWeightRow{Dataset: string(name), Encoder: enc.EncoderLabel, WSq: wsq})
	}
	return rows, nil
}
