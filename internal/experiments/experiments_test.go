package experiments

import (
	"testing"

	"must/internal/dataset"
)

// testOpt returns options small enough for CI while keeping the paper's
// comparative shapes measurable.
func testOpt() Options {
	return Options{Scale: 0.06, Gamma: 16, Beam: 150, TrainEpochs: 60, Seed: 7}
}

// find returns the first row matching framework and encoder.
func find(rows []AccuracyRow, framework, enc string) *AccuracyRow {
	for i := range rows {
		if rows[i].Framework == framework && rows[i].Encoder == enc {
			return &rows[i]
		}
	}
	return nil
}

// TestAccuracyShapeCelebA asserts the Tab. IV shape: MUST beats MR on the
// shared encoder and beats JE overall, with lower SME.
func TestAccuracyShapeCelebA(t *testing.T) {
	rows, err := RunAccuracyTableNamed("celeba", []int{1, 5}, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	mr := find(rows, "MR", "CLIP+Encoding")
	mu := find(rows, "MUST", "CLIP+Encoding")
	je := find(rows, "JE", "CLIP")
	if mr == nil || mu == nil || je == nil {
		t.Fatalf("missing rows: %+v", rows)
	}
	if mu.Recall[1] <= mr.Recall[1] {
		t.Errorf("MUST@1 (%v) must beat MR@1 (%v)", mu.Recall[1], mr.Recall[1])
	}
	if mu.Recall[1] <= je.Recall[1] {
		t.Errorf("MUST@1 (%v) must beat JE@1 (%v)", mu.Recall[1], je.Recall[1])
	}
	if mu.SME >= je.SME {
		t.Errorf("MUST SME (%v) must undercut JE SME (%v)", mu.SME, je.SME)
	}
	if mu.Weights == nil {
		t.Error("MUST row missing learned weights")
	}
	for _, r := range rows {
		for k, v := range r.Recall {
			if v < 0 || v > 1 {
				t.Errorf("%s/%s recall@%d = %v out of range", r.Framework, r.Encoder, k, v)
			}
		}
	}
}

// TestAccuracyShapeMSCOCO asserts the Tab. VI shape on 3 modalities: both
// multi-vector frameworks crush JE.
func TestAccuracyShapeMSCOCO(t *testing.T) {
	opt := testOpt()
	opt.Scale = 0.2 // MS-COCO's hard regime needs enough density per cluster
	rows, err := RunAccuracyTableNamed("mscoco", []int{10, 50}, opt)
	if err != nil {
		t.Fatal(err)
	}
	je := find(rows, "JE", "MPC")
	mu := find(rows, "MUST", "ResNet50+GRU+ResNet50")
	mr := find(rows, "MR", "ResNet50+GRU+ResNet50")
	if je == nil || mu == nil || mr == nil {
		t.Fatalf("missing rows")
	}
	if mu.Recall[10] <= je.Recall[10] {
		t.Errorf("MUST@10 (%v) must beat JE@10 (%v)", mu.Recall[10], je.Recall[10])
	}
	if mr.Recall[10] <= je.Recall[10] {
		t.Errorf("MR@10 (%v) must beat JE@10 (%v)", mr.Recall[10], je.Recall[10])
	}
	if mu.Recall[10] <= mr.Recall[10] {
		t.Errorf("MUST@10 (%v) must beat MR@10 (%v)", mu.Recall[10], mr.Recall[10])
	}
}

func TestRunAccuracyTableUnknown(t *testing.T) {
	if _, err := RunAccuracyTableNamed("nope", []int{1}, testOpt()); err == nil {
		t.Error("unknown table did not error")
	}
}

// TestQPSRecallShape asserts the Fig. 6 shape: MUST reaches near-exact
// recall, MR plateaus below it, brute force is exact but slower than the
// graph at high recall.
func TestQPSRecallShape(t *testing.T) {
	curves, err := RunQPSRecall(ImageText, 10, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	qpsByName := map[string][]float64{}
	for _, c := range curves {
		for _, p := range c.Points {
			byName[c.Name] = append(byName[c.Name], p.Recall)
			qpsByName[c.Name] = append(qpsByName[c.Name], p.QPS)
		}
	}
	maxOf := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(byName["MUST"]) < 0.95 {
		t.Errorf("MUST max recall = %v, want near exact", maxOf(byName["MUST"]))
	}
	if maxOf(byName["MR"]) >= maxOf(byName["MUST"]) {
		t.Errorf("MR max recall (%v) must plateau below MUST (%v)", maxOf(byName["MR"]), maxOf(byName["MUST"]))
	}
	if got := maxOf(byName["MUST--"]); got < 0.999 {
		t.Errorf("MUST-- recall = %v, must be exact", got)
	}
	// MUST's best-recall point must be faster than brute force.
	bruteQPS := qpsByName["MUST--"][0]
	var mustHighQPS float64
	for _, c := range curves {
		if c.Name != "MUST" {
			continue
		}
		for _, p := range c.Points {
			if p.Recall >= 0.95 && p.QPS > mustHighQPS {
				mustHighQPS = p.QPS
			}
		}
	}
	if mustHighQPS <= bruteQPS {
		t.Errorf("MUST at recall≥0.95 (%v QPS) must beat brute force (%v QPS)", mustHighQPS, bruteQPS)
	}
}

// TestScaleShape asserts the Tab. VII shape: brute-force response grows
// roughly linearly while MUST's reduction stays high at the top scale.
func TestScaleShape(t *testing.T) {
	rows, err := RunScale([]int{1, 4}, 0.95, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	small, big := rows[0], rows[1]
	if big.N != 4*small.N {
		t.Fatalf("scale factors wrong: %d vs %d", small.N, big.N)
	}
	if big.BruteResponse <= small.BruteResponse {
		t.Error("brute-force response did not grow with n")
	}
	if big.Reduction < 30 {
		t.Errorf("MUST reduction at top scale = %.1f%%, want large", big.Reduction)
	}
	if big.MustSize <= small.MustSize {
		t.Error("index size did not grow with n")
	}
	// MR maintains one graph per modality: bigger than MUST's single one.
	if big.MRSize <= big.MustSize {
		t.Errorf("MR total size (%d) must exceed MUST size (%d)", big.MRSize, big.MustSize)
	}
}

// TestModalityCountShape asserts the Tab. VIII shape: MUST's recall does
// not degrade as modalities are added, and MUST beats MR at every m.
func TestModalityCountShape(t *testing.T) {
	out, err := RunModalityCount(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	for m := 2; m <= 4; m++ {
		if out[m]["MUST"] < out[m]["MR"] {
			t.Errorf("m=%d: MUST (%v) below MR (%v)", m, out[m]["MUST"], out[m]["MR"])
		}
	}
	if out[4]["MUST"] < out[2]["MUST"]-0.05 {
		t.Errorf("MUST recall regressed with more modalities: m=2 %v, m=4 %v", out[2]["MUST"], out[4]["MUST"])
	}
}

// TestUserWeightsShape asserts the Tab. IX shape: raising ω0² raises the
// target-modality similarity of results and lowers the auxiliary one.
func TestUserWeightsShape(t *testing.T) {
	rows, err := RunUserWeights([]float64{0.2, 0.8}, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	lo, hi := rows[0], rows[1]
	if hi.IP0 <= lo.IP0 {
		t.Errorf("IP0 must rise with ω0²: %v -> %v", lo.IP0, hi.IP0)
	}
	if hi.IP1 >= lo.IP1 {
		t.Errorf("IP1 must fall with ω0²: %v -> %v", lo.IP1, hi.IP1)
	}
}

// TestGraphQualityShape asserts the Tab. XI shape: quality grows with ε.
func TestGraphQualityShape(t *testing.T) {
	rows, err := RunGraphQuality([]int{1, 3}, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Quality[3] < r.Quality[1] {
			t.Errorf("%s: quality fell with iterations: %v -> %v", r.Dataset, r.Quality[1], r.Quality[3])
		}
		if r.Quality[3] < 0.7 {
			t.Errorf("%s: quality at ε=3 = %v, too low", r.Dataset, r.Quality[3])
		}
	}
}

// TestBeamSweepShape asserts the Tab. XII shape: recall is non-decreasing
// and latency increasing in l.
func TestBeamSweepShape(t *testing.T) {
	rows, err := RunBeamSweep([]int{20, 400}, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Recall < rows[0].Recall {
		t.Errorf("recall fell with l: %v -> %v", rows[0].Recall, rows[1].Recall)
	}
	if rows[1].Latency <= rows[0].Latency {
		t.Errorf("latency did not grow with l: %v -> %v", rows[0].Latency, rows[1].Latency)
	}
}

// TestMultiVectorOptimizationShape asserts the Fig. 10(c) shape: identical
// recall with and without the optimization, and real skips happening.
func TestMultiVectorOptimizationShape(t *testing.T) {
	rows, err := RunMultiVectorOptimization(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	anySkips := false
	for _, r := range rows {
		if r.RecallOn != r.RecallOff {
			t.Errorf("l=%d: optimization changed recall: %v vs %v", r.Beam, r.RecallOn, r.RecallOff)
		}
		if r.PartSkips > 0 {
			anySkips = true
		}
	}
	if !anySkips {
		t.Error("optimization never skipped any candidate")
	}
}

// TestNeighborAuditShape asserts the Fig. 11 shape: the fused index's
// neighbors balance both modalities, MR's collapse to one.
func TestNeighborAuditShape(t *testing.T) {
	rows, err := RunNeighborAudit(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	var fused, mod0, mod1 *NeighborAuditRow
	for i := range rows {
		switch rows[i].Index {
		case "MUST(fused)":
			fused = &rows[i]
		case "MR(modality0)":
			mod0 = &rows[i]
		case "MR(modality1)":
			mod1 = &rows[i]
		}
	}
	if fused == nil || mod0 == nil || mod1 == nil {
		t.Fatalf("missing audit rows: %+v", rows)
	}
	// The per-modality indexes maximize their own modality.
	if mod0.MeanIP0 <= fused.MeanIP0 {
		t.Errorf("modality-0 index should beat fused on IP0: %v vs %v", mod0.MeanIP0, fused.MeanIP0)
	}
	if mod1.MeanIP1 <= fused.MeanIP1 {
		t.Errorf("modality-1 index should beat fused on IP1: %v vs %v", mod1.MeanIP1, fused.MeanIP1)
	}
	// But the fused index wins on joint similarity.
	if fused.MeanJoint <= mod0.MeanJoint || fused.MeanJoint <= mod1.MeanJoint {
		t.Errorf("fused joint similarity (%v) must beat per-modality indexes (%v, %v)",
			fused.MeanJoint, mod0.MeanJoint, mod1.MeanJoint)
	}
}

// TestWeightLearningShape asserts the Fig. 9 shape: hard negatives reach
// recall at least on par with random negatives.
func TestWeightLearningShape(t *testing.T) {
	runs, err := RunWeightLearning(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	var hard, random float64
	for _, r := range runs {
		final := r.Trace[len(r.Trace)-1].Recall
		switch r.Label {
		case "Hard":
			hard = final
		case "Random":
			random = final
		}
	}
	if hard < random-0.05 {
		t.Errorf("hard negatives (%v) must not trail random (%v)", hard, random)
	}
}

func TestCaseStudy(t *testing.T) {
	results, err := RunCaseStudy(0, 5, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d frameworks", len(results))
	}
	var mustHasGT bool
	for _, res := range results {
		if len(res.Entries) == 0 || len(res.Entries) > 5 {
			t.Fatalf("%s returned %d entries", res.Framework, len(res.Entries))
		}
		for _, e := range res.Entries {
			if e.RefSim < -1.01 || e.RefSim > 1.01 || e.AttrSim < -1.01 || e.AttrSim > 1.01 {
				t.Errorf("%s: similarity out of range: %+v", res.Framework, e)
			}
		}
		if res.Framework == "MUST" {
			for _, e := range res.Entries {
				if e.IsGroundTruth {
					mustHasGT = true
				}
			}
		}
	}
	if !mustHasGT {
		t.Log("note: MUST top-5 missed the ground truth at this tiny scale (non-fatal)")
	}
	if _, err := RunCaseStudy(-1, 5, testOpt()); err == nil {
		t.Error("out-of-range query index did not error")
	}
}

func TestSingleModalityRows(t *testing.T) {
	rows, err := RunSingleModality(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Recall[1] < 0 || r.Recall[1] > 1 {
			t.Errorf("%s/%s recall out of range", r.Modality, r.Encoder)
		}
		// Single-modality search must be clearly worse than full MSTM
		// (paper Tab. X): recall@1 stays low.
		if r.Recall[1] > 0.6 {
			t.Errorf("%s/%s single-modality recall@1 = %v, suspiciously high", r.Modality, r.Encoder, r.Recall[1])
		}
	}
}

func TestFillGroundTruth(t *testing.T) {
	opt := testOpt()
	enc, err := EncodeFeature(ImageText, 500, opt)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := LearnFeatureWeights(enc, opt)
	if err != nil {
		t.Fatal(err)
	}
	FillGroundTruth(enc, w, 5)
	for i, q := range enc.Queries {
		if len(q.GroundTruth) != 5 {
			t.Fatalf("query %d has %d ground truths", i, len(q.GroundTruth))
		}
	}
}

func TestEncodeFeatureUnknown(t *testing.T) {
	if _, err := EncodeFeature(FeatureName("nope"), 100, testOpt()); err == nil {
		t.Error("unknown feature dataset did not error")
	}
}

func TestSplitTrainEval(t *testing.T) {
	cases := []struct {
		total, wantTrain int
	}{
		{10, 2}, {2000, 300}, {5, 1}, {1, 1}, // total=1 degenerates to train=0? see below
	}
	for _, c := range cases {
		train, eval := splitTrainEval(c.total)
		if train < 0 || train >= c.total && c.total > 1 {
			t.Errorf("total=%d: train=%d invalid", c.total, train)
		}
		if train+eval != c.total {
			t.Errorf("total=%d: %d+%d != total", c.total, train, eval)
		}
	}
}

func TestLearnedWeightsRows(t *testing.T) {
	opt := testOpt()
	rows, err := RunLearnedWeights(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.WSq) != 2 {
			t.Errorf("%s: %d weights", r.Dataset, len(r.WSq))
		}
		for _, w := range r.WSq {
			if w < 0 {
				t.Errorf("%s: negative squared weight", r.Dataset)
			}
		}
	}
}

func TestGammaSweepShape(t *testing.T) {
	rows, err := RunGammaSweep([]int{8, 24}, 200, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].SizeBytes <= rows[0].SizeBytes {
		t.Errorf("index size did not grow with γ: %d -> %d", rows[0].SizeBytes, rows[1].SizeBytes)
	}
	if rows[1].Recall < rows[0].Recall-0.02 {
		t.Errorf("recall fell with γ: %v -> %v", rows[0].Recall, rows[1].Recall)
	}
}

// TestGraphComparisonSmall runs the Fig. 10(a)(b) comparison on a tiny
// corpus and asserts every graph builds and searches.
func TestGraphComparisonSmall(t *testing.T) {
	opt := testOpt()
	opt.Scale = 0.03
	rows, err := RunGraphComparison(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d graphs", len(rows))
	}
	for _, r := range rows {
		if r.BuildTime <= 0 || r.SizeBytes <= 0 {
			t.Errorf("%s: missing build accounting", r.Name)
		}
		best := 0.0
		for _, p := range r.Curve {
			if p.Recall > best {
				best = p.Recall
			}
		}
		if best < 0.5 {
			t.Errorf("%s: best recall %v too low", r.Name, best)
		}
	}
}

// The semantic presets all flow through RunAccuracyTableNamed; make sure
// the raw generators stay compatible with the encoder catalogs.
func TestEncoderCatalogsMatchPresets(t *testing.T) {
	for _, tbl := range []string{"mitstates", "celeba", "shopping", "mscoco"} {
		var cfg dataset.SemanticConfig
		switch tbl {
		case "mitstates":
			cfg = dataset.MITStatesSim(0.05)
		case "celeba":
			cfg = dataset.CelebASim(0.05)
		case "shopping":
			cfg = dataset.ShoppingSim(0.05)
		case "mscoco":
			cfg = dataset.MSCOCOSim(0.05)
		}
		raw, err := dataset.GenerateSemantic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, er := range encodersFor(raw, tbl, 1) {
			if len(er.set.Unimodal) != raw.M {
				t.Errorf("%s: encoder row %s has %d encoders for %d modalities",
					tbl, er.set.Label(), len(er.set.Unimodal), raw.M)
			}
		}
	}
}

func TestSingleModalityAppendixRows(t *testing.T) {
	rows, err := RunSingleModalityAppendix(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 datasets × 2 modalities)", len(rows))
	}
	for _, r := range rows {
		if r.Dataset == "" || r.Encoder == "" {
			t.Errorf("row missing labels: %+v", r)
		}
		if r.Recall[10] < r.Recall[1] {
			t.Errorf("%s/%s: recall@10 (%v) below recall@1 (%v)", r.Dataset, r.Modality, r.Recall[10], r.Recall[1])
		}
	}
}
