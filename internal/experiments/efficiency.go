package experiments

import (
	"fmt"
	"time"

	"must/internal/baseline"
	"must/internal/dataset"
	"must/internal/encoder"
	"must/internal/index"
	"must/internal/metrics"
	"must/internal/vec"
	"must/internal/weights"
)

// FeatureName selects one of the semi-synthetic datasets of Fig. 6.
type FeatureName string

// The three million-scale dataset analogues (scaled per DESIGN.md §2).
const (
	ImageText FeatureName = "ImageText"
	AudioText FeatureName = "AudioText"
	VideoText FeatureName = "VideoText"
)

// featureBaseN is the Scale=1 object count standing in for the paper's 1M.
const featureBaseN = 20000

// EncodeFeature generates and encodes a feature dataset at n objects.
func EncodeFeature(name FeatureName, n int, opt Options) (*dataset.Encoded, error) {
	opt = opt.withDefaults()
	var cfg dataset.FeatureConfig
	switch name {
	case ImageText:
		cfg = dataset.ImageTextN(n, opt.Seed)
	case AudioText:
		cfg = dataset.AudioTextN(n, opt.Seed)
	case VideoText:
		cfg = dataset.VideoTextN(n, opt.Seed)
	default:
		return nil, fmt.Errorf("experiments: unknown feature dataset %q", name)
	}
	raw, err := dataset.GenerateFeature(cfg)
	if err != nil {
		return nil, err
	}
	set := dataset.EncoderSet{Unimodal: []encoder.Encoder{
		encoder.NewResNet50(raw.ContentDim, opt.Seed),
		encoder.NewOrdinal(raw.AttrDim, opt.Seed),
	}}
	return dataset.Encode(raw, set)
}

// LearnFeatureWeights learns modality weights for a feature dataset using
// the uniform-weight exact top-1 of each query as its positive (the
// semi-synthetic stand-in for labeled true objects; DESIGN.md §2).
func LearnFeatureWeights(enc *dataset.Encoded, opt Options) (vec.Weights, *weights.Result, error) {
	opt = opt.withDefaults()
	uniform := vec.Uniform(enc.M)
	bf := &index.BruteForce{Objects: enc.Objects, Weights: uniform}
	n := len(enc.Queries)
	if n > 200 {
		n = 200
	}
	anchors := make([]vec.Multi, 0, n)
	positives := make([]int, 0, n)
	poolIdx := map[int]int{}
	var pool []vec.Multi
	for _, q := range enc.Queries[:n] {
		top := bf.TopKParallel(q.Vectors, 1)
		if len(top) == 0 {
			continue
		}
		gt := top[0].ID
		pi, ok := poolIdx[gt]
		if !ok {
			pi = len(pool)
			poolIdx[gt] = pi
			pool = append(pool, enc.Objects[gt])
		}
		anchors = append(anchors, q.Vectors)
		positives = append(positives, pi)
	}
	res, err := weights.Train(anchors, positives, pool, weights.Config{
		Epochs:        opt.TrainEpochs,
		HardNegatives: true,
		Seed:          opt.Seed,
		LearningRate:  0.01,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Weights, res, nil
}

// Curve is one method's QPS-vs-recall series (Fig. 6, 8, 10).
type Curve struct {
	Name   string
	Points []metrics.Point
}

// DefaultBeams is the l sweep used for QPS-recall curves.
var DefaultBeams = []int{10, 20, 40, 80, 160, 320, 640, 1280}

// RunQPSRecall reproduces one panel of Fig. 6: QPS vs Recall@k(k) for
// MUST, MUST--, MR and MR-- on the named feature dataset.
func RunQPSRecall(name FeatureName, k int, opt Options) ([]Curve, error) {
	opt = opt.withDefaults()
	n := int(float64(featureBaseN) * opt.Scale)
	enc, err := EncodeFeature(name, n, opt)
	if err != nil {
		return nil, err
	}
	w, _, err := LearnFeatureWeights(enc, opt)
	if err != nil {
		return nil, err
	}
	FillGroundTruth(enc, w, k)

	fused, err := index.BuildFused(enc.Objects, w, opt.pipeline("MUST"))
	if err != nil {
		return nil, err
	}
	mr, err := baseline.BuildMR(enc.Objects, opt.pipeline("MR"))
	if err != nil {
		return nil, err
	}
	mustBrute := &index.BruteForce{Objects: enc.Objects, Weights: w}
	mrBrute := baseline.NewMRBrute(enc.Objects)

	curves := make([]Curve, 0, 4)
	sweep := func(label string, fn searchFunc) error {
		var pts []metrics.Point
		for _, l := range DefaultBeams {
			if l < k {
				continue
			}
			rec, qps, lat, err := timedEval(enc.Queries, fn, k, l)
			if err != nil {
				return err
			}
			pts = append(pts, metrics.Point{Param: l, Recall: rec, QPS: qps, Latency: lat})
		}
		curves = append(curves, Curve{Name: label, Points: pts})
		return nil
	}
	if err := sweep("MUST", mustSearcherFunc(fused.NewSearcher())); err != nil {
		return nil, err
	}
	if err := sweep("MR", mrFunc(mr.NewSearcher())); err != nil {
		return nil, err
	}
	// Brute-force methods: one point each (no beam knob); MR-- still
	// sweeps l because its merge depends on the per-stream candidate
	// count.
	rec, qps, lat, err := timedEval(enc.Queries, bruteFunc(mustBrute), k, k)
	if err != nil {
		return nil, err
	}
	curves = append(curves, Curve{Name: "MUST--", Points: []metrics.Point{{Param: 0, Recall: rec, QPS: qps, Latency: lat}}})
	var mrbPts []metrics.Point
	for _, l := range []int{k, 4 * k, 16 * k, 64 * k} {
		rec, qps, lat, err := timedEval(enc.Queries, mrBruteFunc(mrBrute), k, l)
		if err != nil {
			return nil, err
		}
		mrbPts = append(mrbPts, metrics.Point{Param: l, Recall: rec, QPS: qps, Latency: lat})
	}
	curves = append(curves, Curve{Name: "MR--", Points: mrbPts})
	return curves, nil
}

// ScaleRow is one row of Tab. VII / Fig. 7: metrics at one data volume.
type ScaleRow struct {
	N int
	// MustResponse and BruteResponse are the total batch response times
	// at Recall@10(10) ≥ target (Tab. VII).
	MustResponse, BruteResponse time.Duration
	// Reduction is the percentage decrease from brute force to MUST.
	Reduction float64
	// MustBuild and MRBuild are index construction times (Fig. 7a).
	MustBuild, MRBuild time.Duration
	// MustSize and MRSize are index sizes in bytes (Fig. 7b).
	MustSize, MRSize int64
}

// RunScale reproduces Tab. VII and Fig. 7: a geometric data-volume sweep
// (factors × base) on ImageText, comparing MUST against MUST-- response
// time at high recall and against MR on build time and index size.
func RunScale(factors []int, recallTarget float64, opt Options) ([]ScaleRow, error) {
	opt = opt.withDefaults()
	if len(factors) == 0 {
		factors = []int{1, 2, 4, 8, 16}
	}
	base := int(float64(featureBaseN) * opt.Scale / 4)
	if base < 500 {
		base = 500
	}
	const k = 10
	var rows []ScaleRow
	for _, f := range factors {
		n := base * f
		enc, err := EncodeFeature(ImageText, n, opt)
		if err != nil {
			return nil, err
		}
		w, _, err := LearnFeatureWeights(enc, opt)
		if err != nil {
			return nil, err
		}
		FillGroundTruth(enc, w, k)
		fused, err := index.BuildFused(enc.Objects, w, opt.pipeline("MUST"))
		if err != nil {
			return nil, err
		}
		mr, err := baseline.BuildMR(enc.Objects, opt.pipeline("MR"))
		if err != nil {
			return nil, err
		}
		bf := &index.BruteForce{Objects: enc.Objects, Weights: w}

		// Find the smallest beam achieving the recall target.
		var mustTotal time.Duration
		reached := false
		for _, l := range DefaultBeams {
			rec, _, lat, err := timedEval(enc.Queries, mustSearcherFunc(fused.NewSearcher()), k, l)
			if err != nil {
				return nil, err
			}
			mustTotal = lat * time.Duration(len(enc.Queries))
			if rec >= recallTarget {
				reached = true
				break
			}
		}
		if !reached {
			// Fall back to an exhaustive beam; recorded time reflects it.
			rec, _, lat, err := timedEval(enc.Queries, mustSearcherFunc(fused.NewSearcher()), k, n)
			if err != nil {
				return nil, err
			}
			_ = rec
			mustTotal = lat * time.Duration(len(enc.Queries))
		}
		start := time.Now()
		for _, q := range enc.Queries {
			bf.TopK(q.Vectors, k)
		}
		bruteTotal := time.Since(start)

		reduction := 0.0
		if bruteTotal > 0 {
			reduction = 100 * (1 - float64(mustTotal)/float64(bruteTotal))
		}
		rows = append(rows, ScaleRow{
			N:             n,
			MustResponse:  mustTotal,
			BruteResponse: bruteTotal,
			Reduction:     reduction,
			MustBuild:     fused.BuildTime,
			MRBuild:       time.Duration(mr.BuildTime()),
			MustSize:      fused.SizeBytes(),
			MRSize:        mr.SizeBytes(),
		})
	}
	return rows, nil
}

// RunKSweep reproduces Fig. 8: QPS-recall curves of MUST and MR on
// ImageText for several k (1, 50, 100 in the paper).
func RunKSweep(ks []int, opt Options) (map[int][]Curve, error) {
	opt = opt.withDefaults()
	n := int(float64(featureBaseN) * opt.Scale)
	enc, err := EncodeFeature(ImageText, n, opt)
	if err != nil {
		return nil, err
	}
	w, _, err := LearnFeatureWeights(enc, opt)
	if err != nil {
		return nil, err
	}
	fused, err := index.BuildFused(enc.Objects, w, opt.pipeline("MUST"))
	if err != nil {
		return nil, err
	}
	mr, err := baseline.BuildMR(enc.Objects, opt.pipeline("MR"))
	if err != nil {
		return nil, err
	}
	out := map[int][]Curve{}
	for _, k := range ks {
		FillGroundTruth(enc, w, k)
		var curves []Curve
		for _, run := range []struct {
			name string
			fn   searchFunc
		}{
			{"MUST", mustSearcherFunc(fused.NewSearcher())},
			{"MR", mrFunc(mr.NewSearcher())},
		} {
			var pts []metrics.Point
			for _, l := range DefaultBeams {
				if l < k {
					continue
				}
				rec, qps, lat, err := timedEval(enc.Queries, run.fn, k, l)
				if err != nil {
					return nil, err
				}
				pts = append(pts, metrics.Point{Param: l, Recall: rec, QPS: qps, Latency: lat})
			}
			curves = append(curves, Curve{Name: run.name, Points: pts})
		}
		out[k] = curves
	}
	return out, nil
}
