package index

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"

	"must/internal/graph"
	"must/internal/vec"
)

// writeLegacyV1 serializes f exactly the way the MUSTIX1 writer did:
// per-vertex degree framing, one binary.Write per value. It exists so the
// load-compat tests exercise real previous-release bytes.
func writeLegacyV1(t *testing.T, f *Fused) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("MUSTIX1\n")
	le := binary.LittleEndian
	if err := binary.Write(&buf, le, uint32(len(f.Pipeline))); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(f.Pipeline)
	if err := binary.Write(&buf, le, uint32(len(f.Weights))); err != nil {
		t.Fatal(err)
	}
	for _, x := range f.Weights {
		if err := binary.Write(&buf, le, math.Float32bits(x)); err != nil {
			t.Fatal(err)
		}
	}
	n := f.Graph.NumVertices()
	if err := binary.Write(&buf, le, uint32(n)); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(&buf, le, uint32(f.Graph.Seed)); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		nbrs := f.Graph.Neighbors(int32(v))
		if err := binary.Write(&buf, le, uint32(len(nbrs))); err != nil {
			t.Fatal(err)
		}
		for _, u := range nbrs {
			if err := binary.Write(&buf, le, uint32(u)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

// A MUSTIX1 index written by the previous release must load into the CSR
// core and search identically to the index it came from — the format-bump
// compatibility promise.
func TestLegacyV1LoadsIntoCSR(t *testing.T) {
	objects := fixtureObjects(400, 41)
	w := vec.Weights{0.8, 0.5}
	f, err := BuildFused(objects, w, graph.Ours(12, 3, 42))
	if err != nil {
		t.Fatal(err)
	}
	raw := writeLegacyV1(t, f)
	got, err := ReadFused(bytes.NewReader(raw), f.Store)
	if err != nil {
		t.Fatalf("loading v1 bytes: %v", err)
	}
	if got.Pipeline != f.Pipeline || got.Graph.Seed != f.Graph.Seed {
		t.Fatal("v1 header mismatch")
	}
	for v := 0; v < f.Graph.NumVertices(); v++ {
		want := f.Graph.Neighbors(int32(v))
		have := got.Graph.Neighbors(int32(v))
		if len(want) != len(have) {
			t.Fatalf("vertex %d degree mismatch", v)
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("vertex %d adjacency mismatch", v)
			}
		}
	}
	rng := rand.New(rand.NewSource(43))
	for qi := 0; qi < 5; qi++ {
		q := vec.Multi{vec.RandUnit(rng, 16), vec.RandUnit(rng, 8)}
		a, sa, err := f.NewSearcher().Search(q, 10, 120)
		if err != nil {
			t.Fatal(err)
		}
		b, sb, err := got.NewSearcher().Search(q, 10, 120)
		if err != nil {
			t.Fatal(err)
		}
		if sa != sb {
			t.Fatalf("query %d: routing stats differ: %+v vs %+v", qi, sa, sb)
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].IP != b[i].IP {
				t.Fatalf("query %d rank %d: v1-loaded index searches differently", qi, i)
			}
		}
	}
}

// A MUSTIX2 round trip through Write must preserve an index that carries
// an incremental-insert overlay: Write folds the overlay into the file
// via a non-mutating snapshot (so it can run concurrently with searches
// under the engine's read lock), and the loaded graph must agree with
// the original edge-for-edge.
func TestV2RoundTripAfterInserts(t *testing.T) {
	objects := fixtureObjects(300, 44)
	w := vec.Weights{0.8, 0.5}
	f, err := BuildFused(objects, w, graph.Ours(10, 3, 45))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(46))
	for i := 0; i < 12; i++ {
		id := f.Store.AppendMulti(vec.Multi{vec.RandUnit(rng, 16), vec.RandUnit(rng, 8)})
		if err := f.Insert(id, 10, 0); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if f.Graph.OverlayVertices() == 0 {
		t.Fatal("Write mutated the graph: overlay gone")
	}
	got, err := ReadFused(&buf, f.Store)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumVertices() != f.Graph.NumVertices() {
		t.Fatalf("vertex count: got %d want %d", got.Graph.NumVertices(), f.Graph.NumVertices())
	}
	for v := 0; v < f.Graph.NumVertices(); v++ {
		want := f.Graph.Neighbors(int32(v))
		have := got.Graph.Neighbors(int32(v))
		if len(want) != len(have) {
			t.Fatalf("vertex %d degree mismatch", v)
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("vertex %d adjacency mismatch", v)
			}
		}
	}
}

// corruptCase mutates valid MUSTIX2 bytes into a specific corruption.
func v2Bytes(t *testing.T, n int, seed int64) ([]byte, *Fused) {
	t.Helper()
	objects := fixtureObjects(n, seed)
	f, err := BuildFused(objects, vec.Weights{0.8, 0.5}, graph.Ours(8, 2, seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), f
}

// headerLen locates the offset of the CSR offsets block in a MUSTIX2
// stream (magic + pipeline + weights + nv + seed).
func v2TopologyStart(f *Fused) int {
	return 8 + 4 + len(f.Pipeline) + 4 + 4*len(f.Weights) + 4 + 4
}

// Corrupt MUSTIX2 streams must fail with errors, not panics or huge
// allocations — mirroring the v4 collection corrupt-header bound test.
func TestV2CorruptHeaderBounds(t *testing.T) {
	raw, f := v2Bytes(t, 120, 47)
	top := v2TopologyStart(f)
	le := binary.LittleEndian

	t.Run("truncated-offsets", func(t *testing.T) {
		if _, err := ReadFused(bytes.NewReader(raw[:top+10]), f.Store); err == nil {
			t.Error("truncated offsets block did not error")
		}
	})
	t.Run("decreasing-offsets", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		// offsets[1] and offsets[2] swapped out of order.
		le.PutUint32(bad[top+4:], 1<<30)
		if _, err := ReadFused(bytes.NewReader(bad), f.Store); err == nil || !strings.Contains(err.Error(), "out of range") && !strings.Contains(err.Error(), "decrease") {
			t.Errorf("corrupt offsets error = %v", err)
		}
	})
	t.Run("edge-out-of-range", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		nv := f.Graph.NumVertices()
		edgeStart := top + 4*(nv+1)
		le.PutUint32(bad[edgeStart:], uint32(nv)+7)
		if _, err := ReadFused(bytes.NewReader(bad), f.Store); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("out-of-range edge error = %v", err)
		}
	})
	t.Run("absurd-edge-count-truncated-stream", func(t *testing.T) {
		// A lying terminator claims ~n² edges; the loader must fail with an
		// I/O error once the stream runs dry instead of pre-committing the
		// claimed allocation (per-vertex degree is bounded by nv, so the
		// largest credible claim is nv² — the chunked reader never allocates
		// ahead of delivered bytes).
		bad := append([]byte(nil), raw[:top+4*(f.Graph.NumVertices()+1)]...)
		nv := uint32(f.Graph.NumVertices())
		// Rewrite offsets as a maximal valid ramp: offsets[v] = v*nv.
		for v := uint32(0); v <= nv; v++ {
			le.PutUint32(bad[top+int(4*v):], v*nv)
		}
		if _, err := ReadFused(bytes.NewReader(bad), f.Store); err == nil {
			t.Error("absurd edge count with truncated stream did not error")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[6] = '9'
		if _, err := ReadFused(bytes.NewReader(bad), f.Store); err == nil || !strings.Contains(err.Error(), "bad magic") {
			t.Errorf("bad magic error = %v", err)
		}
	})
	t.Run("degree-overflow-v1", func(t *testing.T) {
		// v1 vertex with degree > numVertices must be rejected before any
		// neighbor bytes are trusted.
		var buf bytes.Buffer
		buf.WriteString("MUSTIX1\n")
		binary.Write(&buf, le, uint32(0)) // empty pipeline
		binary.Write(&buf, le, uint32(2)) // two weights
		binary.Write(&buf, le, math.Float32bits(0.8))
		binary.Write(&buf, le, math.Float32bits(0.5))
		binary.Write(&buf, le, uint32(f.Store.Len())) // matches store
		binary.Write(&buf, le, uint32(0))             // seed
		binary.Write(&buf, le, uint32(1<<31))         // absurd degree
		if _, err := ReadFused(bytes.NewReader(buf.Bytes()), f.Store); err == nil || !strings.Contains(err.Error(), "degree") {
			t.Errorf("absurd v1 degree error = %v", err)
		}
	})
}
