package index

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"must/internal/graph"
	"must/internal/vec"
)

func fixtureObjects(n int, seed int64) []vec.Multi {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 6
	ca := make([][]float32, clusters)
	cb := make([][]float32, clusters)
	for i := range ca {
		ca[i] = vec.RandUnit(rng, 16)
		cb[i] = vec.RandUnit(rng, 8)
	}
	out := make([]vec.Multi, n)
	for i := range out {
		c := rng.Intn(clusters)
		out[i] = vec.Multi{
			vec.AddGaussianNoise(rng, ca[c], 0.8),
			vec.AddGaussianNoise(rng, cb[c], 0.8),
		}
	}
	return out
}

func TestBuildFused(t *testing.T) {
	objects := fixtureObjects(600, 1)
	w := vec.Weights{0.8, 0.5}
	f, err := BuildFused(objects, w, graph.Ours(12, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if f.Graph.NumVertices() != 600 {
		t.Fatalf("vertices = %d", f.Graph.NumVertices())
	}
	if f.BuildTime <= 0 {
		t.Error("build time not recorded")
	}
	if f.SizeBytes() <= 0 {
		t.Error("size not positive")
	}
	if f.Pipeline != "Ours" {
		t.Errorf("pipeline = %q", f.Pipeline)
	}
	// Weights must be cloned, not aliased.
	w[0] = 99
	if f.Weights[0] == 99 {
		t.Error("index aliased caller weights")
	}
}

func TestBuildFusedEmpty(t *testing.T) {
	if _, err := BuildFused(nil, vec.Weights{1}, graph.Ours(10, 3, 1)); err == nil {
		t.Error("empty build did not error")
	}
}

func TestBuildFusedGraphHNSW(t *testing.T) {
	objects := fixtureObjects(400, 3)
	w := vec.Weights{0.7, 0.7}
	f, err := BuildFusedGraph(objects, w, "HNSW", func(s *graph.Space) *graph.Graph {
		return graph.BuildHNSW(s, graph.HNSWConfig{M: 8, EfConstruction: 60, Seed: 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Pipeline != "HNSW" {
		t.Errorf("pipeline = %q", f.Pipeline)
	}
	s := f.NewSearcher()
	rng := rand.New(rand.NewSource(4))
	q := vec.Multi{vec.RandUnit(rng, 16), vec.RandUnit(rng, 8)}
	got, _, err := s.Search(q, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
}

func TestBruteForceExact(t *testing.T) {
	objects := fixtureObjects(300, 5)
	w := vec.Weights{0.8, 0.5}
	bf := &BruteForce{Objects: objects, Weights: w}
	rng := rand.New(rand.NewSource(6))
	q := vec.Multi{vec.RandUnit(rng, 16), vec.RandUnit(rng, 8)}
	got := bf.TopK(q, 10)
	if len(got) != 10 {
		t.Fatalf("got %d results", len(got))
	}
	// Verify exactness: nothing outside the result set has a higher IP
	// than the worst returned.
	scanner := vec.NewPartialIPScanner(w, q)
	worst := got[len(got)-1].IP
	in := make(map[int]bool)
	for _, r := range got {
		in[r.ID] = true
	}
	for i, o := range objects {
		if !in[i] && scanner.FullIP(o) > worst {
			t.Fatalf("object %d beats worst returned but was excluded", i)
		}
	}
	// Sorted descending.
	for i := 1; i < len(got); i++ {
		if got[i].IP > got[i-1].IP {
			t.Fatal("results not sorted")
		}
	}
}

// Property: parallel brute force matches serial brute force exactly.
func TestBruteForceParallelMatchesSerial(t *testing.T) {
	objects := fixtureObjects(500, 7)
	w := vec.Weights{0.8, 0.5}
	bf := &BruteForce{Objects: objects, Weights: w}
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := vec.Multi{vec.RandUnit(r, 16), vec.RandUnit(r, 8)}
		a := bf.TopK(q, 10)
		b := bf.TopKParallel(q, 10)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestBruteForceEdgeCases(t *testing.T) {
	bf := &BruteForce{Objects: nil, Weights: vec.Weights{1}}
	if got := bf.TopK(vec.Multi{}, 5); len(got) != 0 {
		t.Error("empty corpus returned results")
	}
	objects := fixtureObjects(3, 9)
	bf = &BruteForce{Objects: objects, Weights: vec.Weights{0.8, 0.5}}
	rng := rand.New(rand.NewSource(10))
	q := vec.Multi{vec.RandUnit(rng, 16), vec.RandUnit(rng, 8)}
	if got := bf.TopK(q, 10); len(got) != 3 {
		t.Errorf("k>n returned %d results, want 3", len(got))
	}
	if got := bf.TopK(q, 0); len(got) != 0 {
		t.Error("k=0 returned results")
	}
}

// Graph search must approach brute-force results — the fused index is an
// approximation of BruteForce (the MUST vs MUST-- relationship).
func TestFusedApproximatesBruteForce(t *testing.T) {
	objects := fixtureObjects(1000, 11)
	w := vec.Weights{0.8, 0.5}
	f, err := BuildFused(objects, w, graph.Ours(16, 3, 12))
	if err != nil {
		t.Fatal(err)
	}
	bf := &BruteForce{Objects: objects, Weights: w}
	s := f.NewSearcher()
	rng := rand.New(rand.NewSource(13))
	var recall float64
	const queries = 20
	for qi := 0; qi < queries; qi++ {
		q := vec.Multi{vec.RandUnit(rng, 16), vec.RandUnit(rng, 8)}
		truth := bf.TopK(q, 10)
		got, _, err := s.Search(q, 10, 300)
		if err != nil {
			t.Fatal(err)
		}
		in := make(map[int]bool)
		for _, r := range truth {
			in[r.ID] = true
		}
		hits := 0
		for _, r := range got {
			if in[r.ID] {
				hits++
			}
		}
		recall += float64(hits) / 10
	}
	recall /= queries
	if recall < 0.9 {
		t.Errorf("fused recall vs brute force = %v, want >= 0.9", recall)
	}
}

func TestIndexSerializationRoundTrip(t *testing.T) {
	objects := fixtureObjects(300, 14)
	w := vec.Weights{0.8, 0.5}
	f, err := BuildFused(objects, w, graph.Ours(10, 3, 15))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFused(&buf, vec.FlatFromMulti(objects))
	if err != nil {
		t.Fatal(err)
	}
	if got.Pipeline != f.Pipeline || got.Graph.Seed != f.Graph.Seed {
		t.Fatal("header mismatch")
	}
	if len(got.Weights) != len(f.Weights) || got.Weights[0] != f.Weights[0] {
		t.Fatal("weights mismatch")
	}
	for v := 0; v < f.Graph.NumVertices(); v++ {
		want := f.Graph.Neighbors(int32(v))
		have := got.Graph.Neighbors(int32(v))
		if len(have) != len(want) {
			t.Fatalf("vertex %d degree mismatch", v)
		}
		for i := range want {
			if have[i] != want[i] {
				t.Fatalf("vertex %d adjacency mismatch", v)
			}
		}
	}
	// A loaded index must search identically (same pool seed).
	rng := rand.New(rand.NewSource(16))
	q := vec.Multi{vec.RandUnit(rng, 16), vec.RandUnit(rng, 8)}
	a, _, _ := f.NewSearcher().Search(q, 5, 50)
	b, _, _ := got.NewSearcher().Search(q, 5, 50)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("loaded index searches differently")
		}
	}
}

func TestIndexFileRoundTrip(t *testing.T) {
	objects := fixtureObjects(100, 17)
	f, err := BuildFused(objects, vec.Weights{0.8, 0.5}, graph.Ours(8, 2, 18))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.bin")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, vec.FlatFromMulti(objects))
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumVertices() != 100 {
		t.Fatal("file round trip lost vertices")
	}
}

func TestReadFusedRejectsMismatchedObjects(t *testing.T) {
	objects := fixtureObjects(50, 19)
	f, err := BuildFused(objects, vec.Weights{0.8, 0.5}, graph.Ours(8, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFused(&buf, vec.FlatFromMulti(objects[:49])); err == nil {
		t.Error("mismatched store row count did not error")
	}
	if _, err := ReadFused(bytes.NewReader([]byte("garbage")), vec.FlatFromMulti(objects)); err == nil {
		t.Error("garbage did not error")
	}
}
