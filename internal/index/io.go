package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"must/internal/graph"
	"must/internal/vec"
)

// Binary index format, little-endian.
//
// Current (MUSTIX2) — the graph topology as two bulk CSR blocks:
//
//	magic "MUSTIX2\n"
//	pipelineLen uint32, pipeline bytes
//	numWeights uint32, weights float32...
//	numVertices uint32, seed uint32
//	offsets uint32 × (numVertices+1)   (non-decreasing; offsets[0] = 0)
//	edges   uint32 × offsets[numVertices]
//
// The two arrays are exactly the in-memory CSR representation, so a load
// is two bulk reads plus validation — no per-vertex framing, no
// per-value decode calls.
//
// Legacy (MUSTIX1) — per-vertex adjacency framing, still readable:
//
//	magic "MUSTIX1\n"
//	...same header...
//	numVertices uint32, seed uint32
//	per vertex: degree uint32, neighbors uint32...
//
// v1 files are converted to CSR while loading (each vertex's neighbor
// block is read with one io.ReadFull, not a binary.Read per value).
//
// Object vectors are not stored — the index references the shared corpus
// store, which has its own serialization (the collection formats).

var (
	ixMagicV1 = [8]byte{'M', 'U', 'S', 'T', 'I', 'X', '1', '\n'}
	ixMagicV2 = [8]byte{'M', 'U', 'S', 'T', 'I', 'X', '2', '\n'}
)

// ioChunkBytes sizes the scratch buffer bulk encode/decode works through:
// big enough that the bufio round trips amortize, small enough to keep a
// corrupt header from committing unbounded memory before the stream runs
// dry.
const ioChunkBytes = 1 << 16

// writeU32Block writes vals as back-to-back little-endian uint32s through
// a reused scratch buffer — one bw.Write per chunk instead of a
// binary.Write (and its reflection dispatch) per value.
func writeU32Block(bw *bufio.Writer, scratch []byte, vals []uint32) error {
	for len(vals) > 0 {
		n := len(scratch) / 4
		if n > len(vals) {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(scratch[i*4:], vals[i])
		}
		if _, err := bw.Write(scratch[:n*4]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// writeI32Block is writeU32Block for the CSR edge array.
func writeI32Block(bw *bufio.Writer, scratch []byte, vals []int32) error {
	for len(vals) > 0 {
		n := len(scratch) / 4
		if n > len(vals) {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(scratch[i*4:], uint32(vals[i]))
		}
		if _, err := bw.Write(scratch[:n*4]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// readU32Block fills dst with little-endian uint32s using chunked
// io.ReadFull decodes.
func readU32Block(br *bufio.Reader, scratch []byte, dst []uint32) error {
	for len(dst) > 0 {
		n := len(scratch) / 4
		if n > len(dst) {
			n = len(dst)
		}
		if _, err := io.ReadFull(br, scratch[:n*4]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			dst[i] = binary.LittleEndian.Uint32(scratch[i*4:])
		}
		dst = dst[n:]
	}
	return nil
}

// Write serializes the index structure (graph + weights) to w in the
// MUSTIX2 format. Any incremental-insert overlay is folded into the
// written form via a non-mutating snapshot, so Write is safe alongside
// concurrent searches under the engine's read lock (writers — inserts,
// deletes, rebuilds — must still be excluded).
func (f *Fused) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(ixMagicV2[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(f.Pipeline))); err != nil {
		return err
	}
	if _, err := bw.WriteString(f.Pipeline); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(f.Weights))); err != nil {
		return err
	}
	for _, x := range f.Weights {
		if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(x)); err != nil {
			return err
		}
	}
	offsets, edges := f.Graph.SnapshotCSR()
	if err := binary.Write(bw, binary.LittleEndian, uint32(f.Graph.NumVertices())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(f.Graph.Seed)); err != nil {
		return err
	}
	scratch := make([]byte, ioChunkBytes)
	if err := writeU32Block(bw, scratch, offsets); err != nil {
		return err
	}
	if err := writeI32Block(bw, scratch, edges); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadFused deserializes an index structure (either format version) and
// attaches the shared corpus store (which must hold the same rows the
// index was built over). The loaded index is single-copy from the start:
// searches and incremental inserts both run against store, with no fused
// buffer; the topology lands directly in the frozen CSR core.
func ReadFused(r io.Reader, store *vec.FlatStore) (*Fused, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	var version int
	switch got {
	case ixMagicV1:
		version = 1
	case ixMagicV2:
		version = 2
	default:
		return nil, fmt.Errorf("index: bad magic %q", got[:])
	}
	readU32 := func() (uint32, error) {
		var x uint32
		err := binary.Read(br, binary.LittleEndian, &x)
		return x, err
	}
	pLen, err := readU32()
	if err != nil {
		return nil, err
	}
	if pLen > 1<<16 {
		return nil, fmt.Errorf("index: unreasonable pipeline name length %d", pLen)
	}
	pBytes := make([]byte, pLen)
	if _, err := io.ReadFull(br, pBytes); err != nil {
		return nil, err
	}
	nw, err := readU32()
	if err != nil {
		return nil, err
	}
	if nw > 64 {
		return nil, fmt.Errorf("index: unreasonable weight count %d", nw)
	}
	weights := make(vec.Weights, nw)
	for i := range weights {
		bits, err := readU32()
		if err != nil {
			return nil, err
		}
		weights[i] = math.Float32frombits(bits)
	}
	nv, err := readU32()
	if err != nil {
		return nil, err
	}
	storeLen := 0
	if store != nil {
		storeLen = store.Len()
	}
	if int(nv) != storeLen {
		return nil, fmt.Errorf("index: graph has %d vertices, store has %d rows", nv, storeLen)
	}
	seed, err := readU32()
	if err != nil {
		return nil, err
	}
	if seed >= nv {
		return nil, fmt.Errorf("index: seed %d out of range", seed)
	}

	var g *graph.Graph
	if version == 2 {
		g, err = readTopologyV2(br, nv, int32(seed))
	} else {
		g, err = readTopologyV1(br, nv, int32(seed))
	}
	if err != nil {
		return nil, err
	}
	return &Fused{
		Graph:    g,
		Weights:  weights,
		Store:    store,
		Pipeline: string(pBytes),
	}, nil
}

// readTopologyV2 bulk-decodes the two CSR blocks, validating the offsets
// invariant and every edge endpoint before the graph is constructed. The
// edge array is grown chunk by chunk as bytes actually arrive, so a
// corrupt header claiming an absurd edge count fails with an I/O error
// after at most the real stream size, instead of committing the claimed
// allocation up front (mirroring the v4 collection loader's bound).
func readTopologyV2(br *bufio.Reader, nv uint32, seed int32) (*graph.Graph, error) {
	scratch := make([]byte, ioChunkBytes)
	offsets := make([]uint32, int(nv)+1)
	if err := readU32Block(br, scratch, offsets); err != nil {
		return nil, fmt.Errorf("index: reading CSR offsets: %w", err)
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("index: CSR offsets start at %d, want 0", offsets[0])
	}
	for v := uint32(0); v < nv; v++ {
		if offsets[v+1] < offsets[v] {
			return nil, fmt.Errorf("index: CSR offsets decrease at vertex %d", v)
		}
		if offsets[v+1]-offsets[v] > nv {
			return nil, fmt.Errorf("index: vertex %d degree %d out of range", v, offsets[v+1]-offsets[v])
		}
	}
	numEdges := int(offsets[nv])
	capHint := numEdges
	if capHint > 1<<22 {
		capHint = 1 << 22 // grow the rest as the stream delivers it
	}
	edges := make([]int32, 0, capHint)
	for len(edges) < numEdges {
		n := len(scratch) / 4
		if rem := numEdges - len(edges); n > rem {
			n = rem
		}
		if _, err := io.ReadFull(br, scratch[:n*4]); err != nil {
			return nil, fmt.Errorf("index: reading CSR edges: %w", err)
		}
		for i := 0; i < n; i++ {
			u := binary.LittleEndian.Uint32(scratch[i*4:])
			if u >= nv {
				return nil, fmt.Errorf("index: edge target %d out of range", u)
			}
			edges = append(edges, int32(u))
		}
	}
	return graph.NewCSRParts(offsets, edges, seed), nil
}

// readTopologyV1 converts the legacy per-vertex framing into CSR while
// loading: each vertex's neighbor block is pulled with a single
// io.ReadFull into the scratch buffer (the old loader issued one
// binary.Read — an interface dispatch and a 4-byte read — per neighbor).
func readTopologyV1(br *bufio.Reader, nv uint32, seed int32) (*graph.Graph, error) {
	scratch := make([]byte, ioChunkBytes)
	offsets := make([]uint32, int(nv)+1)
	edges := make([]int32, 0, int(nv)*16)
	var degBuf [4]byte
	for v := uint32(0); v < nv; v++ {
		if _, err := io.ReadFull(br, degBuf[:]); err != nil {
			return nil, fmt.Errorf("index: reading vertex %d: %w", v, err)
		}
		deg := binary.LittleEndian.Uint32(degBuf[:])
		if deg > nv {
			return nil, fmt.Errorf("index: vertex %d degree %d out of range", v, deg)
		}
		remaining := int(deg)
		for remaining > 0 {
			n := len(scratch) / 4
			if n > remaining {
				n = remaining
			}
			if _, err := io.ReadFull(br, scratch[:n*4]); err != nil {
				return nil, fmt.Errorf("index: reading vertex %d neighbors: %w", v, err)
			}
			for i := 0; i < n; i++ {
				u := binary.LittleEndian.Uint32(scratch[i*4:])
				if u >= nv {
					return nil, fmt.Errorf("index: vertex %d neighbor %d out of range", v, u)
				}
				edges = append(edges, int32(u))
			}
			remaining -= n
		}
		offsets[v+1] = uint32(len(edges))
	}
	return graph.NewCSRParts(offsets, edges, seed), nil
}

// Save writes the index to the file at path.
func (f *Fused) Save(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(file); err != nil {
		_ = file.Close()
		return err
	}
	return file.Close()
}

// Load reads an index from path and attaches the shared corpus store.
func Load(path string, store *vec.FlatStore) (*Fused, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = file.Close() }()
	return ReadFused(file, store)
}
