package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"must/internal/graph"
	"must/internal/vec"
)

// Binary index format, little-endian:
//
//	magic "MUSTIX1\n"
//	pipelineLen uint32, pipeline bytes
//	numWeights uint32, weights float32...
//	numVertices uint32, seed uint32
//	per vertex: degree uint32, neighbors uint32...
//
// Object vectors are not stored — the index references the shared corpus
// store, which has its own serialization (the collection formats).

var ixMagic = [8]byte{'M', 'U', 'S', 'T', 'I', 'X', '1', '\n'}

// Write serializes the index structure (graph + weights) to w.
func (f *Fused) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(ixMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(f.Pipeline))); err != nil {
		return err
	}
	if _, err := bw.WriteString(f.Pipeline); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(f.Weights))); err != nil {
		return err
	}
	for _, x := range f.Weights {
		if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(x)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(f.Graph.Adj))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(f.Graph.Seed)); err != nil {
		return err
	}
	for _, nbrs := range f.Graph.Adj {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(nbrs))); err != nil {
			return err
		}
		for _, u := range nbrs {
			if err := binary.Write(bw, binary.LittleEndian, uint32(u)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFused deserializes an index structure and attaches the shared
// corpus store (which must hold the same rows the index was built over).
// The loaded index is single-copy from the start: searches and
// incremental inserts both run against store, with no fused buffer.
func ReadFused(r io.Reader, store *vec.FlatStore) (*Fused, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if got != ixMagic {
		return nil, fmt.Errorf("index: bad magic %q", got[:])
	}
	readU32 := func() (uint32, error) {
		var x uint32
		err := binary.Read(br, binary.LittleEndian, &x)
		return x, err
	}
	pLen, err := readU32()
	if err != nil {
		return nil, err
	}
	if pLen > 1<<16 {
		return nil, fmt.Errorf("index: unreasonable pipeline name length %d", pLen)
	}
	pBytes := make([]byte, pLen)
	if _, err := io.ReadFull(br, pBytes); err != nil {
		return nil, err
	}
	nw, err := readU32()
	if err != nil {
		return nil, err
	}
	if nw > 64 {
		return nil, fmt.Errorf("index: unreasonable weight count %d", nw)
	}
	weights := make(vec.Weights, nw)
	for i := range weights {
		bits, err := readU32()
		if err != nil {
			return nil, err
		}
		weights[i] = math.Float32frombits(bits)
	}
	nv, err := readU32()
	if err != nil {
		return nil, err
	}
	storeLen := 0
	if store != nil {
		storeLen = store.Len()
	}
	if int(nv) != storeLen {
		return nil, fmt.Errorf("index: graph has %d vertices, store has %d rows", nv, storeLen)
	}
	seed, err := readU32()
	if err != nil {
		return nil, err
	}
	if seed >= nv {
		return nil, fmt.Errorf("index: seed %d out of range", seed)
	}
	adj := make([][]int32, nv)
	for v := range adj {
		deg, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("index: reading vertex %d: %w", v, err)
		}
		if deg > nv {
			return nil, fmt.Errorf("index: vertex %d degree %d out of range", v, deg)
		}
		nbrs := make([]int32, deg)
		for i := range nbrs {
			u, err := readU32()
			if err != nil {
				return nil, err
			}
			if u >= nv {
				return nil, fmt.Errorf("index: vertex %d neighbor %d out of range", v, u)
			}
			nbrs[i] = int32(u)
		}
		adj[v] = nbrs
	}
	return &Fused{
		Graph:    &graph.Graph{Adj: adj, Seed: int32(seed)},
		Weights:  weights,
		Store:    store,
		Pipeline: string(pBytes),
	}, nil
}

// Save writes the index to the file at path.
func (f *Fused) Save(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// Load reads an index from path and attaches the shared corpus store.
func Load(path string, store *vec.FlatStore) (*Fused, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return ReadFused(file, store)
}
