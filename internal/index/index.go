// Package index assembles the fused proximity-graph index of §VII: the
// weighted-concatenation space, the component-pipeline build (Algorithm
// 1), brute-force exact search (the paper's MUST-- and MR-- baselines and
// the ground-truth generator), and index serialization.
package index

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"must/internal/graph"
	"must/internal/search"
	"must/internal/vec"
)

// Fused is a built fused index: the proximity graph over weighted
// concatenated vectors plus everything needed to search it.
//
// The corpus lives once, in Store — the same vec.FlatStore the owning
// collection packs objects into. Build materializes a transient fused
// (weighted-concatenation) buffer, constructs the graph over it, and
// releases it before returning, so a built index holds the vectors
// exactly once; incremental inserts and every searcher score against the
// shared store directly.
type Fused struct {
	// Graph is the proximity graph (vertices = object IDs).
	Graph *graph.Graph
	// Weights are the modality weights ω the index was built under.
	Weights vec.Weights
	// Store is the shared packed corpus (one row per object, shared with
	// the collection and every searcher; read-only here).
	Store *vec.FlatStore
	// BuildTime records wall-clock construction time (Fig. 7).
	BuildTime time.Duration
	// Pipeline describes how the graph was assembled.
	Pipeline string

	// space is the store-backed view incremental inserts route through.
	// Its fused buffer is released after construction; after that it
	// computes weighted similarities from Store rows on demand.
	space *graph.Space
}

// BuildFusedStore constructs the fused index over the rows of the shared
// store with the given weights using pipeline p. The weighted fused
// buffer exists only for the duration of the build.
func BuildFusedStore(store *vec.FlatStore, w vec.Weights, p graph.Pipeline) (*Fused, error) {
	// Quantizer training rides the pipeline's after-seal hook so it runs
	// inside the build (and its timing) rather than lazily on first
	// search. buildOverStore's unconditional sync then no-ops.
	if store != nil && store.SQ8() != nil {
		prev := p.AfterSeal
		p.AfterSeal = func() {
			if prev != nil {
				prev()
			}
			store.SyncSQ8()
		}
	}
	return buildOverStore(store, w, p.Name, func(s *graph.Space) (*graph.Graph, error) {
		return p.Build(s)
	})
}

// BuildFused constructs the fused index over a [][]float32-of-slices
// corpus by packing it into a fresh store first — the convenience entry
// point for experiment harnesses and tests that do not hold a shared
// store.
func BuildFused(objects []vec.Multi, w vec.Weights, p graph.Pipeline) (*Fused, error) {
	if len(objects) == 0 {
		return nil, fmt.Errorf("index: no objects to index")
	}
	return BuildFusedStore(vec.FlatFromMulti(objects), w, p)
}

// BuildFusedGraphStore wraps an externally built graph (HNSW, Vamana,
// HCNNG) over the shared store into a Fused index so every §VIII-G
// competitor searches through the same joint-search machinery.
func BuildFusedGraphStore(store *vec.FlatStore, w vec.Weights, name string, build func(*graph.Space) *graph.Graph) (*Fused, error) {
	return buildOverStore(store, w, name, func(s *graph.Space) (*graph.Graph, error) {
		return build(s), nil
	})
}

// BuildFusedGraph is BuildFusedGraphStore for callers holding a
// [][]float32-of-slices corpus.
func BuildFusedGraph(objects []vec.Multi, w vec.Weights, name string, build func(*graph.Space) *graph.Graph) (*Fused, error) {
	if len(objects) == 0 {
		return nil, fmt.Errorf("index: no objects to index")
	}
	return BuildFusedGraphStore(vec.FlatFromMulti(objects), w, name, build)
}

func buildOverStore(store *vec.FlatStore, w vec.Weights, name string, build func(*graph.Space) (*graph.Graph, error)) (*Fused, error) {
	if store == nil || store.Len() == 0 {
		return nil, fmt.Errorf("index: no objects to index")
	}
	start := time.Now()
	space := graph.NewFusedSpaceFromStore(store, w)
	g, err := build(space)
	if err != nil {
		return nil, err
	}
	// The weighted fused block was only needed to build the graph; from
	// here on the store is the single corpus copy.
	space.Release()
	// Non-pipeline builders (HNSW/Vamana/HCNNG graph funcs) have no
	// after-seal hook; make sure an enabled SQ8 shadow is trained before
	// the index is handed out. No-op when disabled or already synced.
	store.SyncSQ8()
	return &Fused{
		Graph:     g,
		Weights:   w.Clone(),
		Store:     store,
		BuildTime: time.Since(start),
		Pipeline:  name,
		space:     space,
	}, nil
}

// NewSearcher returns a fresh single-goroutine searcher over the index.
// All searchers share the index's flat store, so creating one costs only
// its visit buffers.
func (f *Fused) NewSearcher(opts ...search.Option) *search.Searcher {
	return search.NewFlat(f.Graph, f.Store, f.Weights, opts...)
}

// SizeBytes reports the index size (graph memory only, matching how the
// paper reports index size separately from the vector data).
func (f *Fused) SizeBytes() int64 { return f.Graph.SizeBytes() }

// CorpusBytes reports the bytes committed to the shared vector store —
// the single resident copy of the corpus.
func (f *Fused) CorpusBytes() int64 {
	if f.Store == nil {
		return 0
	}
	return f.Store.MemoryBytes()
}

// FusedBytes reports the bytes of the transient weighted-concatenation
// buffer. It is 0 for any index returned by the Build functions (the
// buffer is released before they return); a non-zero value can only be
// observed mid-build.
func (f *Fused) FusedBytes() int64 {
	if f.space == nil {
		return 0
	}
	return f.space.FusedBytes()
}

// Insert incrementally links store row id into the graph (§IX dynamic
// updates): the row must already have been appended to the shared store
// by the owning collection, and must be the next unlinked vertex. Its
// weighted concatenation beam-searches for its neighborhood and links
// with MRNG selection plus degree-capped reverse edges. gamma and beam
// default to 30 and 4·gamma when non-positive. Searchers created before
// the insert do not see the new object; create them after.
func (f *Fused) Insert(id, gamma, beam int) error {
	if f.Store == nil {
		return fmt.Errorf("index: cannot insert into an index with no store")
	}
	if id != f.Graph.NumVertices() {
		return fmt.Errorf("index: insert id %d is not the next vertex (graph has %d)", id, f.Graph.NumVertices())
	}
	if id >= f.Store.Len() {
		return fmt.Errorf("index: insert id %d not yet in the store (%d rows)", id, f.Store.Len())
	}
	if gamma <= 0 {
		gamma = 30
	}
	if beam <= 0 {
		beam = 4 * gamma
	}
	if f.space == nil {
		// Deserialized index: attach a lazy view over the shared store —
		// no fused buffer is ever materialized for inserts.
		f.space = graph.StoreView(f.Store, f.Weights)
	}
	graph.Insert(f.space, f.Graph, int32(id), gamma, beam)
	// Fold the append-overlay back into the frozen CSR core once it
	// covers more than a quarter of the graph: inserts stay O(1)
	// amortized, and steady state always returns to the flat form.
	if ov := f.Graph.OverlayVertices(); ov*4 > f.Graph.NumVertices() {
		f.Graph.Compact()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Brute force (MUST-- / MR-- and ground-truth generation).

// BruteForce performs exact top-k retrieval by scanning all objects — the
// paper's "--" baselines (§VIII-D) and the ground-truth oracle for the
// feature datasets. Exactly one of Store and Objects should be set:
// production paths share the collection's flat store (scored through the
// fused row kernel), while experiment harnesses may pass a plain object
// slice.
type BruteForce struct {
	Objects []vec.Multi
	Store   *vec.FlatStore
	Weights vec.Weights
}

func (b *BruteForce) numObjects() int {
	if b.Store != nil {
		return b.Store.Len()
	}
	return len(b.Objects)
}

// TopK returns the exact top-k object IDs by joint similarity to query,
// best first.
func (b *BruteForce) TopK(query vec.Multi, k int) []search.Result {
	return b.topK(query, k, 1, nil)
}

// TopKFiltered is TopK restricted to objects accepted by keep (nil keeps
// everything) — the exact-retrieval counterpart of the hybrid
// vector-plus-constraint queries of §III, also used to exclude
// tombstoned objects from exact results.
func (b *BruteForce) TopKFiltered(query vec.Multi, k int, keep func(id int) bool) []search.Result {
	return b.topK(query, k, 1, keep)
}

// TopKParallel is TopK using all cores; used for bulk ground-truth
// computation, not for timing comparisons (the paper measures
// single-threaded search).
func (b *BruteForce) TopKParallel(query vec.Multi, k int) []search.Result {
	return b.topK(query, k, runtime.GOMAXPROCS(0), nil)
}

func (b *BruteForce) topK(query vec.Multi, k, workers int, keep func(id int) bool) []search.Result {
	n := b.numObjects()
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// Store-backed scans run the fused flat kernel over packed rows; the
	// legacy path dispatches per modality slice. Both use the same
	// distance formulation, so results agree.
	var flat *vec.FlatScanner
	var legacy *vec.PartialIPScanner
	if b.Store != nil {
		flat = vec.NewFlatScanner(b.Store, b.Weights, query)
	} else {
		legacy = vec.NewPartialIPScanner(b.Weights, query)
	}
	score := func(i int) float32 {
		if flat != nil {
			return flat.FullIP(b.Store.Row(i))
		}
		return legacy.FullIP(b.Objects[i])
	}
	type shard struct{ res []search.Result }
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (n + workers - 1) / workers
	for wi := 0; wi < workers; wi++ {
		go func(wi int) {
			defer wg.Done()
			// The scanners are stateless per call, so sharing them across
			// workers is safe for FullIP.
			lo, hi := wi*chunk, (wi+1)*chunk
			if hi > n {
				hi = n
			}
			local := make([]search.Result, 0, k+1)
			for i := lo; i < hi; i++ {
				if keep != nil && !keep(i) {
					continue
				}
				ip := score(i)
				if len(local) == k && ip <= local[len(local)-1].IP {
					continue
				}
				pos := sort.Search(len(local), func(j int) bool { return local[j].IP < ip })
				if len(local) < k {
					local = append(local, search.Result{})
				} else if pos >= k {
					continue
				}
				copy(local[pos+1:], local[pos:])
				local[pos] = search.Result{ID: i, IP: ip}
			}
			shards[wi].res = local
		}(wi)
	}
	wg.Wait()
	merged := make([]search.Result, 0, workers*k)
	for _, s := range shards {
		merged = append(merged, s.res...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].IP != merged[j].IP {
			return merged[i].IP > merged[j].IP
		}
		return merged[i].ID < merged[j].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}
