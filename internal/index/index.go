// Package index assembles the fused proximity-graph index of §VII: the
// weighted-concatenation space, the component-pipeline build (Algorithm
// 1), brute-force exact search (the paper's MUST-- and MR-- baselines and
// the ground-truth generator), and index serialization.
package index

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"must/internal/graph"
	"must/internal/search"
	"must/internal/vec"
)

// Fused is a built fused index: the proximity graph over weighted
// concatenated vectors plus everything needed to search it.
type Fused struct {
	// Graph is the proximity graph (vertices = object IDs).
	Graph *graph.Graph
	// Weights are the modality weights ω the index was built under.
	Weights vec.Weights
	// Objects are the indexed multi-vector objects (shared with the
	// caller, read-only).
	Objects []vec.Multi
	// BuildTime records wall-clock construction time (Fig. 7).
	BuildTime time.Duration
	// Pipeline describes how the graph was assembled.
	Pipeline string

	// space caches the weighted-concatenation space for incremental
	// inserts; rebuilt lazily after deserialization.
	space *graph.Space
	// store is the packed flat copy of Objects every searcher scores
	// against; built once per index so pooled searchers share it.
	store *vec.FlatStore
}

// BuildFused constructs the fused index over objects with the given
// weights using pipeline p.
func BuildFused(objects []vec.Multi, w vec.Weights, p graph.Pipeline) (*Fused, error) {
	if len(objects) == 0 {
		return nil, fmt.Errorf("index: no objects to index")
	}
	start := time.Now()
	space := graph.NewFusedSpace(objects, w)
	g, err := p.Build(space)
	if err != nil {
		return nil, err
	}
	return &Fused{
		Graph:     g,
		Weights:   w.Clone(),
		Objects:   objects,
		BuildTime: time.Since(start),
		Pipeline:  p.Name,
		space:     space,
		store:     vec.FlatFromMulti(objects),
	}, nil
}

// BuildFusedGraph wraps an externally built graph (HNSW, Vamana, HCNNG)
// into a Fused index so every §VIII-G competitor searches through the same
// joint-search machinery.
func BuildFusedGraph(objects []vec.Multi, w vec.Weights, name string, build func(*graph.Space) *graph.Graph) (*Fused, error) {
	if len(objects) == 0 {
		return nil, fmt.Errorf("index: no objects to index")
	}
	start := time.Now()
	space := graph.NewFusedSpace(objects, w)
	g := build(space)
	return &Fused{
		Graph:     g,
		Weights:   w.Clone(),
		Objects:   objects,
		BuildTime: time.Since(start),
		Pipeline:  name,
		store:     vec.FlatFromMulti(objects),
	}, nil
}

// Store returns the index's packed flat vector store, building it on
// first use. Not safe to call concurrently with itself or with Insert;
// the Engine materializes it under its write lock before pooling
// searchers.
func (f *Fused) Store() *vec.FlatStore {
	if f.store == nil {
		f.store = vec.FlatFromMulti(f.Objects)
	}
	return f.store
}

// AdoptStore installs a pre-packed flat store as the index's search
// storage, avoiding the copy Store would otherwise make. The store's rows
// must be exactly Objects in order — the v3 collection loader's arena
// satisfies this by construction.
func (f *Fused) AdoptStore(st *vec.FlatStore) error {
	if st == nil {
		return fmt.Errorf("index: cannot adopt a nil store")
	}
	if st.Len() != len(f.Objects) {
		return fmt.Errorf("index: store has %d rows, index has %d objects", st.Len(), len(f.Objects))
	}
	if len(f.Objects) > 0 {
		dims := f.Objects[0].Dims()
		sd := st.Dims()
		if len(sd) != len(dims) {
			return fmt.Errorf("index: store has %d modalities, objects have %d", len(sd), len(dims))
		}
		for i := range dims {
			if sd[i] != dims[i] {
				return fmt.Errorf("index: store modality %d dim %d, objects have %d", i, sd[i], dims[i])
			}
		}
	}
	f.store = st
	return nil
}

// NewSearcher returns a fresh single-goroutine searcher over the index.
// All searchers share the index's flat store, so creating one costs only
// its visit buffers.
func (f *Fused) NewSearcher(opts ...search.Option) *search.Searcher {
	return search.NewFlat(f.Graph, f.Store(), f.Weights, opts...)
}

// SizeBytes reports the index size (graph memory only, matching how the
// paper reports index size separately from the vector data).
func (f *Fused) SizeBytes() int64 { return f.Graph.SizeBytes() }

// Insert incrementally adds a new object (§IX dynamic updates): the
// object's weighted concatenation beam-searches for its neighborhood and
// links with MRNG selection plus degree-capped reverse edges. gamma and
// beam default to 30 and 4·gamma when non-positive. Searchers created
// before the insert do not see the new object; create them after.
func (f *Fused) Insert(o vec.Multi, gamma, beam int) (int, error) {
	if len(f.Objects) == 0 {
		return 0, fmt.Errorf("index: cannot insert into an empty index")
	}
	if len(o) != len(f.Objects[0]) {
		return 0, fmt.Errorf("index: object has %d modalities, index has %d", len(o), len(f.Objects[0]))
	}
	for i, v := range o {
		if len(v) != len(f.Objects[0][i]) {
			return 0, fmt.Errorf("index: modality %d has dim %d, index has %d", i, len(v), len(f.Objects[0][i]))
		}
	}
	if gamma <= 0 {
		gamma = 30
	}
	if beam <= 0 {
		beam = 4 * gamma
	}
	if f.space == nil {
		f.space = graph.NewFusedSpace(f.Objects, f.Weights)
	}
	f.Objects = append(f.Objects, o)
	if f.store != nil {
		f.store.AppendMulti(o)
	}
	id := f.space.Append(vec.WeightedConcat(f.Weights, o))
	graph.Insert(f.space, f.Graph, id, gamma, beam)
	return int(id), nil
}

// ---------------------------------------------------------------------------
// Brute force (MUST-- / MR-- and ground-truth generation).

// BruteForce performs exact top-k retrieval by scanning all objects — the
// paper's "--" baselines (§VIII-D) and the ground-truth oracle for the
// feature datasets.
type BruteForce struct {
	Objects []vec.Multi
	Weights vec.Weights
}

// TopK returns the exact top-k object IDs by joint similarity to query,
// best first.
func (b *BruteForce) TopK(query vec.Multi, k int) []search.Result {
	return bruteTopK(b.Objects, b.Weights, query, k, 1, nil)
}

// TopKFiltered is TopK restricted to objects accepted by keep (nil keeps
// everything) — the exact-retrieval counterpart of the hybrid
// vector-plus-constraint queries of §III, also used to exclude
// tombstoned objects from exact results.
func (b *BruteForce) TopKFiltered(query vec.Multi, k int, keep func(id int) bool) []search.Result {
	return bruteTopK(b.Objects, b.Weights, query, k, 1, keep)
}

// TopKParallel is TopK using all cores; used for bulk ground-truth
// computation, not for timing comparisons (the paper measures
// single-threaded search).
func (b *BruteForce) TopKParallel(query vec.Multi, k int) []search.Result {
	return bruteTopK(b.Objects, b.Weights, query, k, runtime.GOMAXPROCS(0), nil)
}

func bruteTopK(objects []vec.Multi, w vec.Weights, query vec.Multi, k int, workers int, keep func(id int) bool) []search.Result {
	n := len(objects)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	scanner := vec.NewPartialIPScanner(w, query)
	type shard struct{ res []search.Result }
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (n + workers - 1) / workers
	for wi := 0; wi < workers; wi++ {
		go func(wi int) {
			defer wg.Done()
			// The scanner is stateless per call, so sharing it across
			// workers is safe for FullIP.
			lo, hi := wi*chunk, (wi+1)*chunk
			if hi > n {
				hi = n
			}
			local := make([]search.Result, 0, k+1)
			for i := lo; i < hi; i++ {
				if keep != nil && !keep(i) {
					continue
				}
				ip := scanner.FullIP(objects[i])
				if len(local) == k && ip <= local[len(local)-1].IP {
					continue
				}
				pos := sort.Search(len(local), func(j int) bool { return local[j].IP < ip })
				if len(local) < k {
					local = append(local, search.Result{})
				} else if pos >= k {
					continue
				}
				copy(local[pos+1:], local[pos:])
				local[pos] = search.Result{ID: i, IP: ip}
			}
			shards[wi].res = local
		}(wi)
	}
	wg.Wait()
	merged := make([]search.Result, 0, workers*k)
	for _, s := range shards {
		merged = append(merged, s.res...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].IP != merged[j].IP {
			return merged[i].IP > merged[j].IP
		}
		return merged[i].ID < merged[j].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}
