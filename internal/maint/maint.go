package maint

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Sample is one maintenance-pressure reading for one rebuildable unit
// (a whole single engine, or one shard of a sharded engine).
type Sample struct {
	// Unit identifies the unit: shard index for sharded targets, 0 for
	// single-engine targets.
	Unit int
	// OverlayRatio is overlay vertices / live objects in [0, 1+).
	OverlayRatio float64
	// TombstoneRatio is deleted objects / total stored objects in [0, 1].
	TombstoneRatio float64
	// Quarantined marks a unit whose health breaker is open; it jumps
	// the watermark queue — a rebuild is the re-admission path.
	Quarantined bool
}

// Target is what the Manager maintains. Implementations must tolerate
// Rebuild racing concurrent reads and writes (both engines do).
type Target interface {
	// Samples returns the current pressure reading for every unit.
	Samples() []Sample
	// Rebuild compacts one unit. It is called at most once per
	// MinRebuildGap, never concurrently with itself.
	Rebuild(unit int) error
}

// Config tunes a Manager; zero fields take defaults.
type Config struct {
	// Interval between pressure samples (default 1s).
	Interval time.Duration
	// MinRebuildGap is the minimum time between two rebuilds, pacing
	// maintenance so it never monopolizes the engine (default 10s).
	MinRebuildGap time.Duration
	// JitterFrac randomizes each sleep by ±JitterFrac of its nominal
	// duration so co-located services don't rebuild in lockstep
	// (default 0.1; negative disables).
	JitterFrac float64
	// OverlayWatermark triggers a rebuild when a unit's overlay ratio
	// meets or exceeds it (default 0.20).
	OverlayWatermark float64
	// TombstoneWatermark triggers a rebuild when a unit's tombstone
	// ratio meets or exceeds it (default 0.20).
	TombstoneWatermark float64
	// Guard, when set, is held around every Rebuild call. mustd shares
	// one guard between the maintenance loop and the periodic-snapshot
	// loop so a snapshot never captures a unit mid-compaction.
	Guard sync.Locker
	// Logf, when set, receives one line per rebuild decision and error.
	Logf func(format string, args ...any)
	// Seed seeds the jitter source; 0 uses a fixed default, keeping the
	// manager free of global randomness.
	Seed int64

	// now overrides the clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.MinRebuildGap <= 0 {
		c.MinRebuildGap = 10 * time.Second
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.1
	}
	if c.OverlayWatermark <= 0 {
		c.OverlayWatermark = 0.20
	}
	if c.TombstoneWatermark <= 0 {
		c.TombstoneWatermark = 0.20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Manager runs the background maintenance loop: every Interval it
// samples the target's units, picks the quarantined unit (rebuild is
// the re-admission path) or the worst watermark exceeder, and rebuilds
// it — at most one unit per MinRebuildGap. Close stops the loop and
// waits for an in-flight rebuild to finish.
type Manager struct {
	cfg    Config
	target Target

	rebuilds  atomic.Uint64 // completed rebuilds
	failures  atomic.Uint64 // rebuilds that returned an error
	paused    atomic.Bool
	debt      atomic.Uint64 // units over watermark at last sample
	lastUnit  atomic.Int64  // last unit rebuilt, -1 if none
	kick      chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewManager starts the maintenance loop over target.
func NewManager(target Target, cfg Config) *Manager {
	m := &Manager{
		cfg:    cfg.withDefaults(),
		target: target,
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	m.lastUnit.Store(-1)
	go m.loop()
	return m
}

// Rebuilds returns how many maintenance rebuilds completed successfully.
func (m *Manager) Rebuilds() uint64 { return m.rebuilds.Load() }

// Failures returns how many maintenance rebuilds returned an error.
func (m *Manager) Failures() uint64 { return m.failures.Load() }

// Debt returns how many units were at or past a watermark (or
// quarantined) at the last sample — the backpressure signal for
// admission control.
func (m *Manager) Debt() int { return int(m.debt.Load()) }

// LastUnit returns the unit most recently rebuilt, or -1.
func (m *Manager) LastUnit() int { return int(m.lastUnit.Load()) }

// Pause suspends rebuild decisions (sampling continues so Debt stays
// fresh). Idempotent.
func (m *Manager) Pause() { m.paused.Store(true) }

// Resume re-enables rebuild decisions. Idempotent.
func (m *Manager) Resume() { m.paused.Store(false) }

// Paused reports whether rebuild decisions are suspended.
func (m *Manager) Paused() bool { return m.paused.Load() }

// Kick asks the loop to sample immediately instead of waiting for the
// next tick. Non-blocking; coalesces with a pending kick.
func (m *Manager) Kick() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// Close stops the loop and waits for an in-flight rebuild to complete.
// Safe to call more than once.
func (m *Manager) Close() {
	m.closeOnce.Do(func() { close(m.stop) })
	<-m.done
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

func (m *Manager) loop() {
	defer close(m.done)
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	var lastRebuild time.Time
	for {
		d := m.cfg.Interval
		if m.cfg.JitterFrac > 0 {
			d += time.Duration((rng.Float64()*2 - 1) * m.cfg.JitterFrac * float64(d))
		}
		timer := time.NewTimer(d)
		select {
		case <-m.stop:
			timer.Stop()
			return
		case <-m.kick:
			timer.Stop()
		case <-timer.C:
		}

		unit, ok := m.pick()
		if !ok || m.paused.Load() {
			continue
		}
		now := m.cfg.now()
		if !lastRebuild.IsZero() && now.Sub(lastRebuild) < m.cfg.MinRebuildGap {
			continue
		}
		lastRebuild = now
		m.rebuild(unit)
	}
}

// pick samples the target and selects the unit to rebuild: a
// quarantined unit first, else the unit furthest past a watermark.
// It also refreshes the debt gauge as a side effect.
func (m *Manager) pick() (int, bool) {
	samples := m.target.Samples()
	best, bestScore := -1, 0.0
	quarantined := -1
	debt := 0
	for _, s := range samples {
		if s.Quarantined {
			debt++
			if quarantined < 0 {
				quarantined = s.Unit
			}
			continue
		}
		// Score = worst watermark overshoot, ≥1 means at/over.
		score := 0.0
		if m.cfg.OverlayWatermark > 0 {
			score = s.OverlayRatio / m.cfg.OverlayWatermark
		}
		if m.cfg.TombstoneWatermark > 0 {
			if t := s.TombstoneRatio / m.cfg.TombstoneWatermark; t > score {
				score = t
			}
		}
		if score >= 1 {
			debt++
			if score > bestScore {
				best, bestScore = s.Unit, score
			}
		}
	}
	m.debt.Store(uint64(debt))
	if quarantined >= 0 {
		// Quarantine outranks any watermark score — rebuilding is the
		// shard's re-admission path.
		return quarantined, true
	}
	return best, best >= 0
}

func (m *Manager) rebuild(unit int) {
	if m.cfg.Guard != nil {
		m.cfg.Guard.Lock()
		defer m.cfg.Guard.Unlock()
	}
	m.logf("maint: rebuilding unit %d", unit)
	if err := m.target.Rebuild(unit); err != nil {
		m.failures.Add(1)
		m.logf("maint: rebuild unit %d failed: %v", unit, err)
		return
	}
	m.rebuilds.Add(1)
	m.lastUnit.Store(int64(unit))
}
