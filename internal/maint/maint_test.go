package maint

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBreakerQuarantineAfterThreshold(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Window: time.Second, Probe: time.Second})
	now := time.Unix(1000, 0)
	if got := b.Failure(now); got != Degraded {
		t.Fatalf("after 1 failure: state=%v want Degraded", got)
	}
	if got := b.Failure(now.Add(10 * time.Millisecond)); got != Degraded {
		t.Fatalf("after 2 failures: state=%v want Degraded", got)
	}
	if got := b.Failure(now.Add(20 * time.Millisecond)); got != Quarantined {
		t.Fatalf("after 3 failures: state=%v want Quarantined", got)
	}
	if b.Allow(now.Add(30 * time.Millisecond)) {
		t.Fatal("quarantined breaker admitted a request before the probe interval")
	}
}

func TestBreakerWindowResetsCount(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2, Window: time.Second})
	now := time.Unix(1000, 0)
	b.Failure(now)
	// Second failure lands outside the window: the run restarts, so the
	// breaker must not open.
	if got := b.Failure(now.Add(2 * time.Second)); got != Degraded {
		t.Fatalf("stale failure run still counted: state=%v want Degraded", got)
	}
	if got := b.Failures(); got != 1 {
		t.Fatalf("consecutive=%d want 1", got)
	}
}

func TestBreakerSuccessResets(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Window: time.Second})
	now := time.Unix(1000, 0)
	b.Failure(now)
	b.Failure(now)
	b.Success()
	if got := b.State(); got != Healthy {
		t.Fatalf("state=%v want Healthy", got)
	}
	if got := b.Failures(); got != 0 {
		t.Fatalf("consecutive=%d want 0", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Window: time.Second, Probe: time.Second})
	now := time.Unix(1000, 0)
	if got := b.Failure(now); got != Quarantined {
		t.Fatalf("state=%v want Quarantined", got)
	}
	// A success from a straggler request must not close an open breaker.
	b.Success()
	if got := b.State(); got != Quarantined {
		t.Fatalf("straggler success closed the breaker: state=%v", got)
	}
	if b.Allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("admitted before probe interval elapsed")
	}
	// Probe due: exactly one request admitted.
	if !b.Allow(now.Add(time.Second)) {
		t.Fatal("probe not admitted after interval")
	}
	if got := b.State(); got != Probing {
		t.Fatalf("state=%v want Probing", got)
	}
	if b.Allow(now.Add(time.Second)) {
		t.Fatal("second request admitted during probe")
	}
	// Failed probe re-opens and restarts the probe clock.
	if got := b.Failure(now.Add(1100 * time.Millisecond)); got != Quarantined {
		t.Fatalf("state=%v want Quarantined after failed probe", got)
	}
	if b.Allow(now.Add(1200 * time.Millisecond)) {
		t.Fatal("admitted right after failed probe")
	}
	// Next probe succeeds → Healthy.
	if !b.Allow(now.Add(2100 * time.Millisecond)) {
		t.Fatal("second probe not admitted")
	}
	b.Success()
	if got := b.State(); got != Healthy {
		t.Fatalf("state=%v want Healthy after successful probe", got)
	}
}

// TestBreakerAbandonedProbeReadmits: a probe whose outcome never
// arrives (the fan-out was cancelled, or the batch was judged neutral)
// must not wedge the breaker half-open forever — after another probe
// interval a fresh probe is admitted.
func TestBreakerAbandonedProbeReadmits(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Window: time.Second, Probe: time.Second})
	now := time.Unix(1000, 0)
	b.Failure(now)
	if !b.Allow(now.Add(time.Second)) {
		t.Fatal("probe not admitted after interval")
	}
	// The probe's outcome never lands; before another interval elapses
	// requests stay refused...
	if b.Allow(now.Add(1500 * time.Millisecond)) {
		t.Fatal("admitted while a probe was still pending")
	}
	// ...and after it, a fresh probe is admitted instead of wedging.
	if !b.Allow(now.Add(2 * time.Second)) {
		t.Fatal("abandoned probe wedged the breaker")
	}
	if got := b.State(); got != Probing {
		t.Fatalf("state=%v want Probing", got)
	}
	b.Success()
	if got := b.State(); got != Healthy {
		t.Fatalf("state=%v want Healthy after fresh probe succeeded", got)
	}
}

func TestBreakerReset(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1})
	b.Failure(time.Unix(1000, 0))
	b.Reset()
	if got := b.State(); got != Healthy {
		t.Fatalf("state=%v want Healthy after Reset", got)
	}
	if !b.Allow(time.Unix(1000, 1)) {
		t.Fatal("reset breaker refused a request")
	}
}

// fakeTarget is a Target with settable samples and a recorded rebuild
// log; Rebuild clears the rebuilt unit's pressure.
type fakeTarget struct {
	mu       sync.Mutex
	samples  []Sample
	rebuilt  []int
	rebuildE error
}

func (f *fakeTarget) Samples() []Sample {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Sample, len(f.samples))
	copy(out, f.samples)
	return out
}

func (f *fakeTarget) Rebuild(unit int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rebuilt = append(f.rebuilt, unit)
	if f.rebuildE != nil {
		return f.rebuildE
	}
	for i := range f.samples {
		if f.samples[i].Unit == unit {
			f.samples[i] = Sample{Unit: unit}
		}
	}
	return nil
}

func (f *fakeTarget) rebuiltUnits() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, len(f.rebuilt))
	copy(out, f.rebuilt)
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestManagerRebuildsWorstUnit(t *testing.T) {
	ft := &fakeTarget{samples: []Sample{
		{Unit: 0, OverlayRatio: 0.25},
		{Unit: 1, TombstoneRatio: 0.60}, // worst overshoot → first
		{Unit: 2, OverlayRatio: 0.05},   // under watermark → never
	}}
	m := NewManager(ft, Config{
		Interval:           time.Millisecond,
		MinRebuildGap:      time.Millisecond,
		OverlayWatermark:   0.20,
		TombstoneWatermark: 0.20,
	})
	defer m.Close()
	waitFor(t, "two rebuilds", func() bool { return m.Rebuilds() >= 2 })
	got := ft.rebuiltUnits()
	if got[0] != 1 {
		t.Fatalf("first rebuild hit unit %d, want 1 (worst overshoot)", got[0])
	}
	if got[1] != 0 {
		t.Fatalf("second rebuild hit unit %d, want 0", got[1])
	}
	// Unit 2 never crossed a watermark; with all pressure cleared the
	// loop must go quiet.
	n := m.Rebuilds()
	time.Sleep(20 * time.Millisecond)
	if m.Rebuilds() != n {
		t.Fatalf("manager rebuilt with no unit over watermark")
	}
	for _, u := range ft.rebuiltUnits() {
		if u == 2 {
			t.Fatal("unit 2 rebuilt despite being under watermark")
		}
	}
}

func TestManagerQuarantinePriority(t *testing.T) {
	ft := &fakeTarget{samples: []Sample{
		{Unit: 0, OverlayRatio: 0.90},
		{Unit: 1, Quarantined: true}, // outranks any watermark score
	}}
	m := NewManager(ft, Config{Interval: time.Millisecond, MinRebuildGap: time.Millisecond})
	defer m.Close()
	waitFor(t, "a rebuild", func() bool { return len(ft.rebuiltUnits()) >= 1 })
	if got := ft.rebuiltUnits()[0]; got != 1 {
		t.Fatalf("first rebuild hit unit %d, want quarantined unit 1", got)
	}
}

func TestManagerMinRebuildGapPaces(t *testing.T) {
	base := time.Unix(1000, 0)
	var clock struct {
		mu sync.Mutex
		t  time.Time
	}
	clock.t = base
	ft := &fakeTarget{samples: []Sample{
		{Unit: 0, OverlayRatio: 0.90},
		{Unit: 1, OverlayRatio: 0.80},
	}}
	m := NewManager(ft, Config{
		Interval:      time.Millisecond,
		MinRebuildGap: time.Hour, // frozen clock never advances past it
		now: func() time.Time {
			clock.mu.Lock()
			defer clock.mu.Unlock()
			return clock.t
		},
	})
	defer m.Close()
	waitFor(t, "first rebuild", func() bool { return m.Rebuilds() == 1 })
	// Clock frozen inside the gap: no second rebuild despite unit 1
	// still being over watermark.
	time.Sleep(20 * time.Millisecond)
	if got := m.Rebuilds(); got != 1 {
		t.Fatalf("rebuilds=%d want 1 while inside MinRebuildGap", got)
	}
	// Advance past the gap → unit 1 gets its turn.
	clock.mu.Lock()
	clock.t = base.Add(2 * time.Hour)
	clock.mu.Unlock()
	waitFor(t, "second rebuild", func() bool { return m.Rebuilds() == 2 })
	if got := ft.rebuiltUnits(); got[1] != 1 {
		t.Fatalf("second rebuild hit unit %d, want 1", got[1])
	}
}

func TestManagerPauseResume(t *testing.T) {
	ft := &fakeTarget{samples: []Sample{{Unit: 0, OverlayRatio: 0.90}}}
	m := NewManager(ft, Config{Interval: time.Millisecond, MinRebuildGap: time.Millisecond})
	defer m.Close()
	m.Pause()
	time.Sleep(20 * time.Millisecond)
	if got := m.Rebuilds(); got > 1 {
		t.Fatalf("rebuilds=%d while paused (allowing one pre-pause race)", got)
	}
	// Debt stays fresh while paused: sampling continues.
	waitFor(t, "debt gauge", func() bool { return m.Debt() >= 1 })
	m.Resume()
	waitFor(t, "rebuild after resume", func() bool { return m.Rebuilds() >= 1 })
}

func TestManagerRebuildErrorCounted(t *testing.T) {
	ft := &fakeTarget{
		samples:  []Sample{{Unit: 0, OverlayRatio: 0.90}},
		rebuildE: errors.New("boom"),
	}
	m := NewManager(ft, Config{Interval: time.Millisecond, MinRebuildGap: time.Millisecond})
	defer m.Close()
	waitFor(t, "failure counter", func() bool { return m.Failures() >= 1 })
	if got := m.Rebuilds(); got != 0 {
		t.Fatalf("rebuilds=%d want 0 when every rebuild fails", got)
	}
}

func TestManagerGuardHeldDuringRebuild(t *testing.T) {
	var guard sync.Mutex
	ft := &fakeTarget{samples: []Sample{{Unit: 0, OverlayRatio: 0.90}}}
	m := NewManager(ft, Config{
		Interval:      time.Millisecond,
		MinRebuildGap: time.Hour,
		Guard:         &guard,
	})
	defer m.Close()
	// Holding the guard blocks the rebuild: simulate the snapshot loop.
	guard.Lock()
	time.Sleep(10 * time.Millisecond)
	if got := m.Rebuilds(); got != 0 {
		t.Fatalf("rebuild ran while guard was held externally")
	}
	guard.Unlock()
	waitFor(t, "rebuild after guard release", func() bool { return m.Rebuilds() == 1 })
}

func TestManagerCloseStopsLoop(t *testing.T) {
	ft := &fakeTarget{samples: []Sample{{Unit: 0, OverlayRatio: 0.90}}}
	m := NewManager(ft, Config{Interval: time.Millisecond, MinRebuildGap: time.Millisecond})
	m.Close()
	m.Close() // idempotent
	n := len(ft.rebuiltUnits())
	time.Sleep(10 * time.Millisecond)
	if got := len(ft.rebuiltUnits()); got != n {
		t.Fatal("manager kept rebuilding after Close")
	}
}

func TestManagerKick(t *testing.T) {
	ft := &fakeTarget{samples: []Sample{{Unit: 0, OverlayRatio: 0.90}}}
	m := NewManager(ft, Config{Interval: time.Hour, MinRebuildGap: time.Millisecond})
	defer m.Close()
	time.Sleep(5 * time.Millisecond)
	if m.Rebuilds() != 0 {
		t.Fatal("rebuild before kick despite hour-long interval")
	}
	m.Kick()
	waitFor(t, "rebuild after kick", func() bool { return m.Rebuilds() == 1 })
}
