// Package maint is the self-healing layer under write churn: a
// per-shard health circuit breaker and a background maintenance manager
// that turns overlay growth and tombstone accumulation into paced,
// automatic rebuilds. The package is engine-agnostic — the root package
// adapts Engine/ShardedEngine/DurableService onto the small Target and
// breaker surfaces here, so the state machines stay unit-testable with
// fake clocks and fake targets.
package maint

import (
	"sync"
	"time"
)

// State is a circuit breaker's health state.
type State uint32

const (
	// Healthy: the unit serves normally.
	Healthy State = iota
	// Degraded: recent consecutive failures below the quarantine
	// threshold. Still serving; one success resets to Healthy.
	Degraded
	// Quarantined: the breaker is open. The unit is skipped by fan-out
	// until a half-open probe succeeds or a rebuild resets it.
	Quarantined
	// Probing: half-open — one in-flight probe request has been admitted
	// to test whether the unit recovered. Success re-admits (Healthy),
	// failure re-opens (Quarantined).
	Probing
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	case Probing:
		return "probing"
	}
	return "unknown"
}

// BreakerConfig tunes one circuit breaker; zero fields take defaults.
type BreakerConfig struct {
	// Threshold is K: consecutive failures within Window before the
	// breaker opens (default 3).
	Threshold int
	// Window bounds how far apart "consecutive" failures may be: a
	// failure more than Window after the previous one restarts the count
	// (default 10s).
	Window time.Duration
	// Probe is how long a quarantined breaker stays fully open before
	// admitting one half-open probe request (default 5s).
	Probe time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Probe <= 0 {
		c.Probe = 5 * time.Second
	}
	return c
}

// Breaker is a per-unit health circuit breaker:
//
//	healthy → degraded (first failure) → quarantined (K consecutive
//	failures within the window) → probing (one request admitted after
//	the probe interval) → healthy (probe succeeded) or back to
//	quarantined (probe failed). A rebuild of the unit calls Reset,
//	re-admitting it immediately.
//
// All methods are safe for concurrent use. Failures are expected to be
// coarse-grained (one per fan-out, not one per query), so a mutex is
// fine.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       State
	consecutive int       // consecutive failures in the current run
	lastFailure time.Time // when the run's latest failure landed
	openedAt    time.Time // when the breaker last opened
	lastProbe   time.Time // when the last half-open probe was admitted
}

// NewBreaker returns a Healthy breaker with the given config.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the current health state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Failures returns the current consecutive-failure count.
func (b *Breaker) Failures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecutive
}

// Failure records one failed interaction (panic or timeout) at now and
// returns the resulting state. A failure while Probing re-opens the
// breaker and restarts the probe clock.
func (b *Breaker) Failure(now time.Time) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Quarantined:
		// Already open (e.g. a straggler from a fan-out that tripped the
		// breaker); nothing changes.
		return b.state
	case Probing:
		b.state = Quarantined
		b.openedAt = now
		b.lastProbe = now
		return b.state
	}
	if !b.lastFailure.IsZero() && now.Sub(b.lastFailure) > b.cfg.Window {
		b.consecutive = 0
	}
	b.consecutive++
	b.lastFailure = now
	if b.consecutive >= b.cfg.Threshold {
		b.state = Quarantined
		b.openedAt = now
		b.lastProbe = now
	} else {
		b.state = Degraded
	}
	return b.state
}

// Success records one successful interaction: any non-quarantined state
// (including a half-open probe) resets to Healthy. A success while
// Quarantined is ignored — only an admitted probe (state Probing) or a
// Reset re-admits an open breaker, so a late straggler from before the
// quarantine cannot close it.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Quarantined {
		return
	}
	b.state = Healthy
	b.consecutive = 0
	b.lastFailure = time.Time{}
}

// Allow reports whether a request may be routed to the unit at now.
// Healthy and Degraded always admit. Quarantined admits exactly one
// request per Probe interval — the half-open probe, whose admission
// moves the breaker to Probing; while that probe is in flight all
// other requests are refused, and its outcome (Success/Failure)
// decides re-admission. A probe whose outcome never arrives (the
// fan-out was cancelled and its worker abandoned, or the caller deemed
// the batch neutral) does not wedge the breaker: after another Probe
// interval a fresh probe is admitted.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Healthy, Degraded:
		return true
	case Probing:
		if now.Sub(b.lastProbe) >= b.cfg.Probe {
			b.lastProbe = now
			return true
		}
		return false
	}
	if now.Sub(b.lastProbe) >= b.cfg.Probe {
		b.state = Probing
		b.lastProbe = now
		return true
	}
	return false
}

// Configure replaces the breaker's thresholds (zero fields take
// defaults) and resets it to Healthy.
func (b *Breaker) Configure(cfg BreakerConfig) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cfg = cfg.withDefaults()
	b.state = Healthy
	b.consecutive = 0
	b.lastFailure = time.Time{}
}

// Reset force-closes the breaker — called after the unit was rebuilt,
// which replaces the state the failures were blamed on.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Healthy
	b.consecutive = 0
	b.lastFailure = time.Time{}
}
