package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"must/internal/faultfs"
)

func mustAppend(t *testing.T, l *Log, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append(%+v): %v", r, err)
		}
	}
}

func collect(t *testing.T, dir string, opts Options, after uint64) []Record {
	t.Helper()
	var got []Record
	n, err := Replay(dir, opts, after, func(r Record) error {
		cp := r
		cp.Data = append([]byte(nil), r.Data...)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(got) {
		t.Fatalf("Replay count %d != %d records", n, len(got))
	}
	return got
}

func rec(op Op, epoch uint64, data string) Record {
	return Record{Op: op, Epoch: epoch, Data: []byte(data)}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		rec(OpInsert, 1, "obj-1"),
		rec(OpInsert, 2, "obj-2"),
		rec(OpRebuild, 3, ""),
		rec(OpDelete, 4, "\x01\x00\x00\x00\x00\x00\x00\x00"),
	}
	mustAppend(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got := collect(t, dir, Options{}, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Epoch != want[i].Epoch || string(got[i].Data) != string(want[i].Data) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReplaySkipsEpochs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l,
		rec(OpInsert, 1, "a"), rec(OpInsert, 2, "b"),
		rec(OpInsert, 3, "c"), rec(OpInsert, 4, "d"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir, Options{}, 2)
	if len(got) != 2 || got[0].Epoch != 3 || got[1].Epoch != 4 {
		t.Fatalf("after epoch 2 replayed %+v", got)
	}
	if got := collect(t, dir, Options{}, 99); len(got) != 0 {
		t.Fatalf("after epoch 99 replayed %+v", got)
	}
}

func TestReplayMissingDir(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "nope"), Options{}, 0, func(Record) error {
		t.Fatal("apply called")
		return nil
	})
	if n != 0 || err != nil {
		t.Fatalf("missing dir: n=%d err=%v", n, err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var want []uint64
	for i := uint64(1); i <= 20; i++ {
		mustAppend(t, l, rec(OpInsert, i, "payload-payload-payload"))
		want = append(want, i)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listSegments(faultfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(seqs))
	}
	got := collect(t, dir, Options{}, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Epoch != want[i] {
			t.Fatalf("record %d epoch %d, want %d (cross-segment order broken)", i, r.Epoch, want[i])
		}
	}
}

// lastSegPath returns the path of the newest segment.
func lastSegPath(t *testing.T, dir string) string {
	t.Helper()
	seqs, err := listSegments(faultfs.OS, dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("listSegments: %v %v", seqs, err)
	}
	return filepath.Join(dir, segName(seqs[len(seqs)-1]))
}

func TestTornTailTruncated(t *testing.T) {
	// A crash mid-append leaves a partial final frame; replay must keep
	// every complete frame and truncate the tail in place.
	for _, cut := range []int64{1, 5, 9, 12} { // inside header, inside payload
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			mustAppend(t, l, rec(OpInsert, 1, "aaaa"), rec(OpInsert, 2, "bbbb"))
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			path := lastSegPath(t, dir)
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			frame := int64(headerLen + 1 + 8 + 4) // one "aaaa" frame
			// Tear the second frame: keep `cut` bytes of it.
			if err := os.Truncate(path, fi.Size()-frame+cut); err != nil {
				t.Fatal(err)
			}

			got := collect(t, dir, Options{}, 0)
			if len(got) != 1 || got[0].Epoch != 1 {
				t.Fatalf("after torn tail replayed %+v, want just epoch 1", got)
			}
			// The torn bytes are gone: a re-replay sees a clean log.
			fi2, _ := os.Stat(path)
			if want := int64(len(magic)) + frame; fi2.Size() != want {
				t.Fatalf("segment size %d after truncation, want %d", fi2.Size(), want)
			}
		})
	}
}

func TestMidLogCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, rec(OpInsert, 1, "aaaa"), rec(OpInsert, 2, "bbbb"), rec(OpInsert, 3, "cccc"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := lastSegPath(t, dir)
	// Flip a payload byte of the MIDDLE frame: valid frames follow, so
	// this is corruption, not a torn tail.
	frame := int64(headerLen + 1 + 8 + 4)
	if err := faultfs.FlipByte(path, int64(len(magic))+frame+headerLen+2, 0xff); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, Options{}, 0, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay = %v, want ErrCorrupt", err)
	}
}

func TestCorruptionInNonFinalSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 10}) // rotate after every record
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, rec(OpInsert, 1, "aaaa"), rec(OpInsert, 2, "bbbb"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := listSegments(faultfs.OS, dir)
	if len(seqs) < 2 {
		t.Fatalf("need >=2 segments, got %d", len(seqs))
	}
	// Corrupt the LAST frame of the FIRST segment: even though nothing
	// follows it within its file, a later segment exists, so this must
	// be an error, not a truncation.
	if err := faultfs.FlipByte(filepath.Join(dir, segName(seqs[0])), int64(len(magic))+headerLen+2, 0xff); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, Options{}, 0, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay = %v, want ErrCorrupt", err)
	}
}

func TestBadCRCOnFinalFrameTruncates(t *testing.T) {
	// A bit-flip in the very last frame is indistinguishable from a torn
	// write of that frame; standard WAL behavior is to truncate it.
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, rec(OpInsert, 1, "aaaa"), rec(OpInsert, 2, "bbbb"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := lastSegPath(t, dir)
	frame := int64(headerLen + 1 + 8 + 4)
	if err := faultfs.FlipByte(path, int64(len(magic))+frame+headerLen+2, 0xff); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir, Options{}, 0)
	if len(got) != 1 || got[0].Epoch != 1 {
		t.Fatalf("replayed %+v, want just epoch 1", got)
	}
}

func TestTruncateDropsOldSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, rec(OpInsert, 1, "aaaa"), rec(OpInsert, 2, "bbbb"), rec(OpInsert, 3, "cccc"))
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, rec(OpInsert, 4, "dddd"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir, Options{}, 0)
	if len(got) != 1 || got[0].Epoch != 4 {
		t.Fatalf("after Truncate replayed %+v, want just epoch 4", got)
	}
}

func TestAppendFailurePropagates(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.Wrap(faultfs.OS)
	l, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	boom := errors.New("disk full")
	ffs.Inject(faultfs.Fault{Op: faultfs.OpSync, PathContains: ".seg", Err: boom})
	if err := l.Append(rec(OpInsert, 1, "x")); !errors.Is(err, boom) {
		t.Fatalf("Append = %v, want %v", err, boom)
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncInterval, SyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, rec(OpInsert, 1, "x"))
	time.Sleep(30 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, dir, Options{}, 0); len(got) != 1 {
		t.Fatalf("replayed %+v", got)
	}
}

func TestSyncIntervalBackgroundFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.Wrap(faultfs.OS)
	l, err := Open(dir, Options{FS: ffs, Policy: SyncInterval, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	boom := errors.New("bg sync boom")
	ffs.Inject(faultfs.Fault{Op: faultfs.OpSync, PathContains: ".seg", Err: boom})
	mustAppend(t, l, rec(OpInsert, 1, "x"))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := l.Append(rec(OpInsert, 2, "y")); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("Append = %v, want wrapped %v", err, boom)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("background sync failure never surfaced on Append")
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "off": SyncOff} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestInsaneLengthAtTailTruncates(t *testing.T) {
	// A torn header can leave garbage length bytes; if nothing valid
	// follows, treat as torn tail.
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, rec(OpInsert, 1, "aaaa"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := lastSegPath(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var junk [8]byte
	binary.LittleEndian.PutUint32(junk[0:4], 0xfffffff0)
	if _, err := f.Write(junk[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got := collect(t, dir, Options{}, 0)
	if len(got) != 1 || got[0].Epoch != 1 {
		t.Fatalf("replayed %+v, want just epoch 1", got)
	}
}
