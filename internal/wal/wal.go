// Package wal implements the write-ahead log behind mustd's durable
// ingest. Every mutation (insert, delete, rebuild) is appended as a
// CRC32C-framed record BEFORE the client is acked; after a crash, the
// daemon replays the log on top of the newest snapshot to restore the
// exact acked state.
//
// On-disk layout: a directory of segment files named
// wal-00000000000000000001.seg, each starting with an 8-byte magic
// ("MUSTWL1\n") followed by frames:
//
//	u32 payload length (LE) | u32 CRC32C(payload) (LE) | payload
//
// payload = op (u8) | epoch (u64 LE) | data. The epoch is the engine's
// mutation counter AFTER the record applied; snapshots persist their
// epoch, so replay skips records the snapshot already captured.
//
// Recovery semantics: a bad frame in the FINAL segment with nothing
// valid after it is a torn tail from a crash mid-append — it is
// truncated away and the log stays usable. A bad frame in any earlier
// segment, or one followed by a valid frame, is real corruption and
// recovery fails loudly rather than silently serving a partial corpus.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"must/internal/faultfs"
)

// Op tags what a record does on replay.
type Op uint8

const (
	// OpInsert carries an encoded object; replay re-inserts it.
	OpInsert Op = 1
	// OpDelete carries a u64 global ID; replay deletes it.
	OpDelete Op = 2
	// OpRebuild carries no data; replay builds (if unbuilt) or rebuilds.
	// Logged so that a replayed delete never lands on an unbuilt engine.
	OpRebuild Op = 3
	// OpRebuildShard carries a u32 shard index; replay rebuilds that one
	// shard. Logged instead of OpRebuild for maintenance-paced
	// single-shard compactions: a full rebuild bumps every shard's epoch
	// while a shard rebuild bumps one, and epoch-guarded replay relies on
	// reproducing exactly the logged epoch sequence.
	OpRebuildShard Op = 4
)

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: zero acked writes lost on
	// crash or power failure.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most every Options.SyncInterval: bounded
	// loss window, near-SyncOff throughput.
	SyncInterval
	// SyncOff never fsyncs from the WAL (the OS flushes on its own
	// schedule): fastest, loses recent acks on power failure but not on
	// process crash.
	SyncOff
)

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want always, interval, or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return "unknown"
}

// Record is one logged mutation.
type Record struct {
	Op    Op
	Epoch uint64 // engine epoch after this mutation applied
	Data  []byte
}

// ErrCorrupt reports unrecoverable mid-log corruption (as opposed to a
// torn tail, which recovery repairs silently).
var ErrCorrupt = errors.New("wal: corrupt record before end of log")

// Options tunes a WAL.
type Options struct {
	// FS is the filesystem seam; nil means faultfs.OS.
	FS faultfs.FS
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// SyncInterval is the flush period under SyncInterval (default 50ms).
	SyncInterval time.Duration
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size (default 64 MiB).
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = faultfs.OS
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

var magic = [8]byte{'M', 'U', 'S', 'T', 'W', 'L', '1', '\n'}

const (
	headerLen = 8 // frame header: length + crc
	// maxPayload bounds a single record; anything larger read back is
	// treated as corruption rather than an allocation request.
	maxPayload = 1 << 30
)

// castagnoli is the CRC32C table (same polynomial iSCSI/ext4 use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only WAL over a directory of segments. Append is
// safe for concurrent use; Close stops the background flusher.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	seg     faultfs.File // current segment, opened for append
	segSeq  uint64       // sequence number of the current segment
	segSize int64
	dirty   bool // unsynced appends under SyncInterval
	closed  bool

	flushStop chan struct{}
	flushDone chan struct{}
	// flushErr holds the first background-sync failure; surfaced on the
	// next Append so callers learn their earlier acks may not be durable.
	flushErr error
}

func segName(seq uint64) string {
	return fmt.Sprintf("wal-%020d.seg", seq)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the segment sequence numbers in dir, ascending.
func listSegments(fs faultfs.FS, dir string) ([]uint64, error) {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Open opens (creating if needed) the WAL in dir. It does NOT replay —
// call Replay first on the recovery path, then Open to append. Opening
// always rotates to a fresh segment, so a torn tail left behind by
// Replay's truncation can never be appended to mid-frame.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	seqs, err := listSegments(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(seqs); n > 0 {
		next = seqs[n-1] + 1
	}
	l := &Log{dir: dir, opts: opts, flushStop: make(chan struct{}), flushDone: make(chan struct{})}
	if err := l.openSegmentLocked(next); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		go l.flushLoop()
	} else {
		close(l.flushDone)
	}
	return l, nil
}

// openSegmentLocked creates segment seq and makes it current. Caller
// holds l.mu (or is the constructor).
func (l *Log) openSegmentLocked(seq uint64) error {
	path := filepath.Join(l.dir, segName(seq))
	f, err := l.opts.FS.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(magic[:]); err != nil {
		_ = f.Close()
		return err
	}
	if l.opts.Policy == SyncAlways {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
	}
	// Make the new segment's directory entry durable before anything is
	// logged into it.
	if l.opts.Policy != SyncOff {
		if err := l.opts.FS.SyncDir(l.dir); err != nil {
			_ = f.Close()
			return err
		}
	}
	if l.seg != nil {
		if err := l.seg.Close(); err != nil {
			_ = f.Close()
			return err
		}
	}
	l.seg, l.segSeq, l.segSize = f, seq, int64(len(magic))
	return nil
}

// Append logs one record and, under SyncAlways, fsyncs before
// returning. When Append returns nil under SyncAlways the record is
// durable; a non-nil error means durability is unknown and the caller
// must NOT ack the mutation.
func (l *Log) Append(rec Record) error {
	frame := encodeFrame(rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: appending to closed log")
	}
	if err := l.flushErr; err != nil {
		return fmt.Errorf("wal: earlier background sync failed: %w", err)
	}
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.openSegmentLocked(l.segSeq + 1); err != nil {
			return err
		}
	}
	if _, err := l.seg.Write(frame); err != nil {
		return err
	}
	l.segSize += int64(len(frame))
	switch l.opts.Policy {
	case SyncAlways:
		return l.seg.Sync()
	case SyncInterval:
		l.dirty = true
	}
	return nil
}

// Sync forces unsynced appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.seg == nil {
		return nil
	}
	l.dirty = false
	return l.seg.Sync()
}

func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed {
				l.dirty = false
				if err := l.seg.Sync(); err != nil && l.flushErr == nil {
					l.flushErr = err
				}
			}
			l.mu.Unlock()
		case <-l.flushStop:
			return
		}
	}
}

// Truncate discards every segment before the current one and rotates to
// a fresh segment. Call it right after a successful snapshot: all
// records logged so far have epoch ≤ the snapshot's, so the epoch guard
// makes them no-ops on replay — dropping them just keeps recovery fast.
// Failure here is safe to ignore for correctness (stale segments are
// harmless), but is still reported so the caller can log it.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: truncating closed log")
	}
	old := l.segSeq
	if err := l.openSegmentLocked(l.segSeq + 1); err != nil {
		return err
	}
	seqs, err := listSegments(l.opts.FS, l.dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, seq := range seqs {
		if seq > old {
			continue
		}
		if err := l.opts.FS.Remove(filepath.Join(l.dir, segName(seq))); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := l.opts.FS.SyncDir(l.dir); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close syncs and closes the current segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.flushStop)
	<-l.flushDone

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seg == nil {
		return nil
	}
	syncErr := error(nil)
	if l.opts.Policy != SyncOff {
		syncErr = l.seg.Sync()
	}
	closeErr := l.seg.Close()
	l.seg = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Dir returns the WAL directory.
func (l *Log) Dir() string { return l.dir }

func encodeFrame(rec Record) []byte {
	payload := make([]byte, 1+8+len(rec.Data))
	payload[0] = byte(rec.Op)
	binary.LittleEndian.PutUint64(payload[1:9], rec.Epoch)
	copy(payload[9:], rec.Data)
	frame := make([]byte, headerLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[headerLen:], payload)
	return frame
}

// Replay scans every segment in dir in order and calls apply for each
// record whose epoch is > afterEpoch. A torn tail in the final segment
// is truncated in place (so a later Open starts from a clean log);
// corruption anywhere else returns an error wrapping ErrCorrupt.
// A missing directory replays nothing.
func Replay(dir string, opts Options, afterEpoch uint64, apply func(Record) error) (replayed int, err error) {
	opts = opts.withDefaults()
	if _, err := opts.FS.Stat(dir); err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	seqs, err := listSegments(opts.FS, dir)
	if err != nil {
		return 0, err
	}
	for i, seq := range seqs {
		final := i == len(seqs)-1
		n, err := replaySegment(opts.FS, filepath.Join(dir, segName(seq)), final, afterEpoch, apply)
		replayed += n
		if err != nil {
			return replayed, fmt.Errorf("segment %s: %w", segName(seq), err)
		}
	}
	return replayed, nil
}

// replaySegment reads one segment. In the final segment a bad frame at
// the tail truncates the file; elsewhere it is ErrCorrupt.
func replaySegment(fs faultfs.FS, path string, final bool, afterEpoch uint64, apply func(Record) error) (int, error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, err
	}
	defer func() { _ = f.Close() }()

	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if final && (err == io.EOF || err == io.ErrUnexpectedEOF) {
			// Crash before the magic finished landing: the whole segment
			// is a torn tail.
			return 0, fs.Truncate(path, 0)
		}
		return 0, fmt.Errorf("reading magic: %w", err)
	}
	if hdr != magic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:])
	}

	offset := int64(len(magic))
	applied := 0
	// One frame of lookahead: a bad frame is only "torn" if nothing
	// valid follows it. decode errors carry the reason for the corrupt
	// case.
	rec, end, derr := decodeFrame(f, offset)
	for {
		if derr != nil {
			if !final {
				return applied, fmt.Errorf("%w at offset %d: %v", ErrCorrupt, offset, derr)
			}
			// Final segment: distinguish torn tail from mid-log damage by
			// scanning ahead for any valid frame.
			if rest, ok := anyValidFrameAfter(f, offset); ok {
				return applied, fmt.Errorf("%w at offset %d (valid frame follows at %d): %v", ErrCorrupt, offset, rest, derr)
			}
			return applied, fs.Truncate(path, offset)
		}
		if rec == nil { // clean EOF
			return applied, nil
		}
		if rec.Epoch > afterEpoch {
			if err := apply(*rec); err != nil {
				return applied, err
			}
			applied++
		}
		offset = end
		rec, end, derr = decodeFrame(f, offset)
	}
}

// decodeFrame reads the frame at offset. Returns (nil, offset, nil) on
// clean EOF, (rec, nextOffset, nil) on success, (nil, 0, err) on a bad
// frame.
func decodeFrame(f faultfs.File, offset int64) (*Record, int64, error) {
	var hdr [headerLen]byte
	n, err := f.ReadAt(hdr[:], offset)
	if n == 0 && err == io.EOF {
		return nil, offset, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("short header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length < 9 || length > maxPayload {
		return nil, 0, fmt.Errorf("insane payload length %d", length)
	}
	payload := make([]byte, length)
	if _, err := f.ReadAt(payload, offset+headerLen); err != nil {
		return nil, 0, fmt.Errorf("short payload: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, errors.New("crc mismatch")
	}
	rec := &Record{
		Op:    Op(payload[0]),
		Epoch: binary.LittleEndian.Uint64(payload[1:9]),
		Data:  payload[9:],
	}
	return rec, offset + headerLen + int64(length), nil
}

// anyValidFrameAfter scans byte-by-byte past a bad frame looking for a
// later decodable frame — evidence the damage is mid-log corruption
// rather than a torn tail. Returns the offset of the first valid frame.
func anyValidFrameAfter(f faultfs.File, after int64) (int64, bool) {
	// The common corruption test flips a byte in one frame; the next
	// frame starts within that frame's length + header. Scan a bounded
	// window to keep recovery O(window) not O(file²).
	const window = 1 << 20
	for off := after + 1; off < after+window; off++ {
		if rec, _, err := decodeFrame(f, off); err == nil && rec != nil {
			return off, true
		} else if rec == nil && err == nil {
			return 0, false // hit EOF
		}
	}
	return 0, false
}
