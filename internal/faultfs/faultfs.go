// Package faultfs is the filesystem seam all durability-critical I/O in
// this repo goes through: the WAL, engine snapshots, and their parent-
// directory syncs. Production code takes an FS value (almost always
// faultfs.OS, a thin passthrough to the os package) so tests can swap in
// Faulty, which injects short writes, Sync errors, torn final writes,
// and bit-flips at chosen offsets — turning "does recovery survive a
// crash here?" into a deterministic table test instead of a prayer.
//
// The interface is deliberately small: exactly the operations a
// write-ahead log and an atomic snapshot need, nothing more. Read paths
// that cannot lose data (LoadService and friends) keep using os
// directly.
package faultfs

import (
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the durability paths use. Write and
// Sync are the injection-interesting calls; the rest exist so recovery
// code can read segments back through the same seam it wrote them.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync). A write is
	// not durable until Sync returns nil.
	Sync() error
	// Seek repositions the read/write offset.
	Seek(offset int64, whence int) (int64, error)
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface the WAL and snapshot writers operate on.
type FS interface {
	// Create truncates-or-creates a file for writing (os.Create).
	Create(name string) (File, error)
	// Open opens a file read-only (os.Open).
	Open(name string) (File, error)
	// OpenFile is the general open (os.OpenFile); the WAL uses it for
	// append-mode segment handles.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (os.Rename). The
	// commit point of every atomic-replace protocol in this repo.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (os.Remove).
	Remove(name string) error
	// MkdirAll creates a directory tree (os.MkdirAll).
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory (os.ReadDir).
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat stats a path (os.Stat).
	Stat(name string) (os.FileInfo, error)
	// Truncate truncates the named file (os.Truncate); recovery uses it
	// to drop a torn WAL tail.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making renames and removals
	// inside it durable. A rename is not crash-safe until the parent
	// directory is synced.
	SyncDir(dir string) error
}

// OS is the production FS: a passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}
