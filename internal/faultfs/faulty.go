package faultfs

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// Op names an FS or File operation for fault matching.
type Op string

const (
	OpCreate   Op = "create"
	OpOpen     Op = "open"
	OpOpenFile Op = "openfile"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
	OpSyncDir  Op = "syncdir"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
)

// Fault is one injection rule. A rule matches when the operation equals
// Op, the path contains PathContains (empty matches everything), and
// After more matching calls have passed first (After=0 fires on the
// first match). Once a rule fires it is spent unless Repeat is set.
//
// What firing does depends on the fields:
//   - Err != nil: the operation fails with Err. For OpWrite with
//     Short > 0, the first Short bytes are written before the error —
//     a torn write.
//   - Err == nil and Short > 0 on OpWrite: the write persists only the
//     first Short bytes but REPORTS full success — a lying kernel, the
//     nastiest torn-write variant.
//
// Faults on OpWrite/OpSync/OpClose apply to files whose path matched at
// open time.
type Fault struct {
	Op           Op
	PathContains string
	After        int
	Err          error
	Short        int
	Repeat       bool
}

// Faulty wraps an FS and injects faults per a rule list. Safe for
// concurrent use. The zero value is not usable; use Wrap.
type Faulty struct {
	inner FS

	mu    sync.Mutex
	rules []*Fault
	log   []string // fired-rule descriptions, for test assertions
}

// Wrap returns a Faulty over inner with no rules (pure passthrough
// until Inject is called).
func Wrap(inner FS) *Faulty {
	return &Faulty{inner: inner}
}

// Inject adds a rule. The same *Fault can be inspected afterwards; a
// spent rule is removed from the active set.
func (f *Faulty) Inject(rule Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := rule
	f.rules = append(f.rules, &r)
}

// Clear drops all rules.
func (f *Faulty) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Fired returns descriptions of every rule that has fired, in order.
func (f *Faulty) Fired() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.log))
	copy(out, f.log)
	return out
}

// match finds the first live rule for (op, path), decrements its
// countdown, and if it fires returns it (removing it unless Repeat).
func (f *Faulty) match(op Op, path string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, r := range f.rules {
		if r.Op != op {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		if r.After > 0 {
			r.After--
			return nil
		}
		f.log = append(f.log, fmt.Sprintf("%s %s", op, path))
		if !r.Repeat {
			f.rules = append(f.rules[:i], f.rules[i+1:]...)
		}
		return r
	}
	return nil
}

func (f *Faulty) Create(name string) (File, error) {
	if r := f.match(OpCreate, name); r != nil {
		return nil, r.Err
	}
	fl, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: fl, fs: f, path: name}, nil
}

func (f *Faulty) Open(name string) (File, error) {
	if r := f.match(OpOpen, name); r != nil {
		return nil, r.Err
	}
	fl, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: fl, fs: f, path: name}, nil
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if r := f.match(OpOpenFile, name); r != nil {
		return nil, r.Err
	}
	fl, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: fl, fs: f, path: name}, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if r := f.match(OpRename, newpath); r != nil {
		return r.Err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	if r := f.match(OpRemove, name); r != nil {
		return r.Err
	}
	return f.inner.Remove(name)
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }
func (f *Faulty) Stat(name string) (os.FileInfo, error)      { return f.inner.Stat(name) }

func (f *Faulty) Truncate(name string, size int64) error {
	if r := f.match(OpTruncate, name); r != nil {
		return r.Err
	}
	return f.inner.Truncate(name, size)
}

func (f *Faulty) SyncDir(dir string) error {
	if r := f.match(OpSyncDir, dir); r != nil {
		return r.Err
	}
	return f.inner.SyncDir(dir)
}

// faultyFile applies write/sync/close rules registered on the parent.
type faultyFile struct {
	File
	fs   *Faulty
	path string
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	if r := ff.fs.match(OpWrite, ff.path); r != nil {
		short := r.Short
		if short > len(p) {
			short = len(p)
		}
		n := 0
		if short > 0 {
			var err error
			n, err = ff.File.Write(p[:short])
			if err != nil {
				return n, err
			}
		}
		if r.Err != nil {
			return n, r.Err
		}
		// Short write reported as success: the caller thinks len(p)
		// bytes landed but only n did.
		return len(p), nil
	}
	return ff.File.Write(p)
}

func (ff *faultyFile) Sync() error {
	if r := ff.fs.match(OpSync, ff.path); r != nil {
		return r.Err
	}
	return ff.File.Sync()
}

func (ff *faultyFile) Close() error {
	if r := ff.fs.match(OpClose, ff.path); r != nil {
		_ = ff.File.Close()
		return r.Err
	}
	return ff.File.Close()
}

// FlipByte XORs the byte at offset in the named file with mask,
// simulating media corruption. It bypasses any FS wrapper and operates
// on the real file.
func FlipByte(path string, offset int64, mask byte) error {
	fl, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer func() { _ = fl.Close() }()
	var b [1]byte
	if _, err := fl.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= mask
	_, err = fl.WriteAt(b[:], offset)
	return err
}
