package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")

	f, err := OS.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := OS.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path + ".2")
	if err != nil || string(got) != "hello" {
		t.Fatalf("got %q, %v", got, err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %v %v", ents, err)
	}
}

func TestFaultySyncError(t *testing.T) {
	dir := t.TempDir()
	ffs := Wrap(OS)
	boom := errors.New("sync boom")
	ffs.Inject(Fault{Op: OpSync, Err: boom})

	f, err := ffs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync err = %v, want %v", err, boom)
	}
	// Rule is spent: next Sync passes through.
	if err := f.Sync(); err != nil {
		t.Fatalf("second Sync = %v, want nil", err)
	}
	if fired := ffs.Fired(); len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestFaultyTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	ffs := Wrap(OS)
	boom := errors.New("io boom")
	// First write fine; second write tears after 3 bytes with an error.
	ffs.Inject(Fault{Op: OpWrite, After: 1, Short: 3, Err: boom})

	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("bbbb"))
	if !errors.Is(err, boom) || n != 3 {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "aaaabbb" {
		t.Fatalf("file = %q, want aaaabbb", got)
	}
}

func TestFaultyShortWriteReportedAsSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lie")
	ffs := Wrap(OS)
	ffs.Inject(Fault{Op: OpWrite, Short: 2})

	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("cccc"))
	if err != nil || n != 4 {
		t.Fatalf("lying write: n=%d err=%v, want 4,nil", n, err)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "cc" {
		t.Fatalf("file = %q, want cc", got)
	}
}

func TestFaultyPathMatchAndRename(t *testing.T) {
	dir := t.TempDir()
	ffs := Wrap(OS)
	boom := errors.New("rename boom")
	ffs.Inject(Fault{Op: OpRename, PathContains: "final", Err: boom})

	a := filepath.Join(dir, "a")
	if err := os.WriteFile(a, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-matching path passes through.
	if err := ffs.Rename(a, filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(filepath.Join(dir, "b"), filepath.Join(dir, "final")); !errors.Is(err, boom) {
		t.Fatalf("rename = %v, want %v", err, boom)
	}
}

func TestFlipByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flip")
	if err := os.WriteFile(path, []byte{0x00, 0xff, 0x0f}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipByte(path, 1, 0x81); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	want := []byte{0x00, 0x7e, 0x0f}
	if string(got) != string(want) {
		t.Fatalf("file = %x, want %x", got, want)
	}
}

func TestFaultyRepeat(t *testing.T) {
	dir := t.TempDir()
	ffs := Wrap(OS)
	boom := errors.New("always")
	ffs.Inject(Fault{Op: OpSyncDir, Err: boom, Repeat: true})
	for i := 0; i < 3; i++ {
		if err := ffs.SyncDir(dir); !errors.Is(err, boom) {
			t.Fatalf("SyncDir #%d = %v", i, err)
		}
	}
	ffs.Clear()
	if err := ffs.SyncDir(dir); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
}
