// Package weights implements the paper's lightweight vector weight
// learning model (§VI): a contrastive objective over joint similarities
// that learns the relative importance ω_i of each modality. Negative
// examples are mined by vector search over the pool of true objects under
// the current weights ("hard negatives", Eq. 5), or sampled uniformly for
// the Fig. 9 ablation. The loss is the softmax contrastive loss of Eq. 6
// and training is plain mini-batch gradient descent — the analytic
// gradient substitutes for the paper's PyTorch loop (DESIGN.md §2).
package weights

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"must/internal/vec"
)

// Config parameterizes training. Zero values select the paper's defaults
// (Appendix F: learning rate 0.002, 700 iterations; Appendix G: 10
// negatives).
type Config struct {
	// LearningRate is the SGD step size (default 0.002).
	LearningRate float64
	// Epochs is the number of passes over the anchor set (default 700).
	Epochs int
	// NumNegatives is |N−| per anchor (default 10).
	NumNegatives int
	// BatchSize is the minibatch M (default 64).
	BatchSize int
	// HardNegatives selects search-mined negatives (true, the paper's
	// strategy) or uniform random negatives (false, the Fig. 9 ablation).
	HardNegatives bool
	// RemineEvery controls how often (in epochs) hard negatives are
	// refreshed under the current weights (default 10).
	RemineEvery int
	// Seed drives shuffling and random negatives.
	Seed int64
	// Init optionally sets the starting weights; default is uniform
	// (ω_i² = 1/m).
	Init vec.Weights
	// TraceEvery records a Trace point every that many epochs (default
	// 10; 0 keeps the default).
	TraceEvery int
	// NoRenorm disables the per-epoch rescaling of weights to Σω² = m.
	// Joint similarity is scale-invariant in the weights, so the rescale
	// only pins the softmax temperature of the contrastive loss; without
	// it the magnitudes inflate and the learned ratio can drift late in
	// training.
	NoRenorm bool
}

func (c *Config) fillDefaults() {
	if c.LearningRate == 0 {
		c.LearningRate = 0.002
	}
	if c.Epochs == 0 {
		c.Epochs = 700
	}
	if c.NumNegatives == 0 {
		c.NumNegatives = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.RemineEvery == 0 {
		c.RemineEvery = 10
	}
	if c.TraceEvery == 0 {
		c.TraceEvery = 10
	}
}

// Trace is one recorded training point: the loss/recall curves of Fig. 9
// and Fig. 13.
type Trace struct {
	Epoch   int
	Loss    float64
	Recall  float64
	Weights vec.Weights
}

// Result bundles the learned weights with the training curves.
type Result struct {
	// Weights are the final learned ω.
	Weights vec.Weights
	// Trace holds the recorded loss/recall points.
	Trace []Trace
}

// Train learns modality weights from anchors (the query multi-vectors Q),
// their positives (indexes into pool), and the pool of true objects T.
// anchors[i]'s positive example is pool[positives[i]].
func Train(anchors []vec.Multi, positives []int, pool []vec.Multi, cfg Config) (*Result, error) {
	if len(anchors) == 0 {
		return nil, fmt.Errorf("weights: no anchors")
	}
	if len(anchors) != len(positives) {
		return nil, fmt.Errorf("weights: %d anchors but %d positives", len(anchors), len(positives))
	}
	if len(pool) < 2 {
		return nil, fmt.Errorf("weights: pool must hold at least 2 objects")
	}
	for i, p := range positives {
		if p < 0 || p >= len(pool) {
			return nil, fmt.Errorf("weights: positive %d of anchor %d out of range", p, i)
		}
	}
	m := len(anchors[0])
	cfg.fillDefaults()

	w := make(vec.Weights, m)
	if cfg.Init != nil {
		if len(cfg.Init) != m {
			return nil, fmt.Errorf("weights: init has %d weights for %d modalities", len(cfg.Init), m)
		}
		copy(w, cfg.Init)
	} else {
		copy(w, vec.Uniform(m))
	}

	// Precompute the per-modality similarity a_i(p, o) between every
	// anchor and every pool object: the training loop then never touches
	// raw vectors. Memory: len(anchors)·len(pool)·m float32.
	sims := precomputeSims(anchors, pool, m)

	rng := rand.New(rand.NewSource(cfg.Seed))
	negs := make([][]int, len(anchors))
	mine := func() {
		if cfg.HardNegatives {
			mineHard(sims, positives, w, cfg.NumNegatives, negs)
		} else {
			mineRandom(rng, len(pool), positives, cfg.NumNegatives, negs)
		}
	}
	mine()

	res := &Result{}
	order := make([]int, len(anchors))
	for i := range order {
		order[i] = i
	}
	grad := make([]float64, m)
	scores := make([]float64, cfg.NumNegatives+1)

	record := func(epoch int) {
		res.Trace = append(res.Trace, Trace{
			Epoch:   epoch,
			Loss:    loss(sims, positives, negs, w),
			Recall:  recallTop1(sims, positives, w),
			Weights: w.Clone(),
		})
	}
	record(0)

	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if cfg.HardNegatives && epoch%cfg.RemineEvery == 0 {
			mine()
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			for i := range grad {
				grad[i] = 0
			}
			for _, ai := range batch {
				accumulateGrad(sims[ai], positives[ai], negs[ai], w, scores, grad)
			}
			scale := cfg.LearningRate / float64(len(batch))
			for i := range w {
				w[i] -= float32(scale * grad[i])
			}
		}
		if !cfg.NoRenorm {
			renormalize(w)
		}
		if epoch%cfg.TraceEvery == 0 || epoch == cfg.Epochs {
			record(epoch)
		}
	}
	res.Weights = w
	return res, nil
}

// renormalize rescales w so that Σω_i² = m, preserving all ratios (joint
// similarity rankings are invariant under positive scaling of ω²). It
// delegates to vec.Weights.Renormalize, which computes the scale and the
// residual correction in float64: the old float32 running sum drifted by
// an ULP per modality per epoch, compounding over hundreds of epochs. A
// degenerate collapse (Σω² ≤ 0) restarts from equal weights at the pinned
// scale (ω_i = 1).
func renormalize(w vec.Weights) {
	w.Renormalize(float64(len(w)))
}

// precomputeSims builds sims[a][o*m+i] = IP(anchor_a modality i, pool_o
// modality i).
func precomputeSims(anchors, pool []vec.Multi, m int) [][]float32 {
	sims := make([][]float32, len(anchors))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	wg.Add(workers)
	for wi := 0; wi < workers; wi++ {
		go func(wi int) {
			defer wg.Done()
			for a := wi; a < len(anchors); a += workers {
				row := make([]float32, len(pool)*m)
				for o, obj := range pool {
					for i := 0; i < m; i++ {
						row[o*m+i] = vec.Dot(anchors[a][i], obj[i])
					}
				}
				sims[a] = row
			}
		}(wi)
	}
	wg.Wait()
	return sims
}

// jointSim evaluates Σ ω_i²·a_i from a precomputed similarity row.
func jointSim(row []float32, o int, w vec.Weights) float64 {
	var s float64
	base := o * len(w)
	for i, wi := range w {
		s += float64(wi) * float64(wi) * float64(row[base+i])
	}
	return s
}

// mineHard fills negs with the NumNegatives pool objects most similar to
// each anchor under the current weights, excluding the positive (Eq. 5).
func mineHard(sims [][]float32, positives []int, w vec.Weights, k int, negs [][]int) {
	type cand struct {
		id int
		s  float64
	}
	nPool := len(sims[0]) / len(w)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	wg.Add(workers)
	for wi := 0; wi < workers; wi++ {
		go func(wi int) {
			defer wg.Done()
			cands := make([]cand, 0, k+2)
			for a := wi; a < len(sims); a += workers {
				cands = cands[:0]
				worst := math.Inf(-1)
				for o := 0; o < nPool; o++ {
					if o == positives[a] {
						continue
					}
					s := jointSim(sims[a], o, w)
					if len(cands) == k && s <= worst {
						continue
					}
					pos := sort.Search(len(cands), func(i int) bool { return cands[i].s < s })
					if len(cands) < k {
						cands = append(cands, cand{})
					} else if pos >= k {
						continue
					}
					copy(cands[pos+1:], cands[pos:])
					cands[pos] = cand{o, s}
					worst = cands[len(cands)-1].s
				}
				out := make([]int, len(cands))
				for i, c := range cands {
					out[i] = c.id
				}
				negs[a] = out
			}
		}(wi)
	}
	wg.Wait()
}

// mineRandom fills negs with uniform random pool objects (≠ positive).
func mineRandom(rng *rand.Rand, nPool int, positives []int, k int, negs [][]int) {
	for a := range negs {
		out := make([]int, 0, k)
		seen := map[int]struct{}{positives[a]: {}}
		for len(out) < k && len(seen) < nPool {
			o := rng.Intn(nPool)
			if _, ok := seen[o]; ok {
				continue
			}
			seen[o] = struct{}{}
			out = append(out, o)
		}
		negs[a] = out
	}
}

// accumulateGrad adds one anchor's gradient of the Eq. 6 loss into grad.
// scores is scratch of size ≥ len(negs)+1.
func accumulateGrad(row []float32, positive int, negIDs []int, w vec.Weights, scores []float64, grad []float64) {
	n := len(negIDs) + 1
	scores = scores[:0]
	scores = append(scores, jointSim(row, positive, w))
	for _, o := range negIDs {
		scores = append(scores, jointSim(row, o, w))
	}
	// Softmax with max-shift for stability.
	maxS := scores[0]
	for _, s := range scores[1:] {
		if s > maxS {
			maxS = s
		}
	}
	var z float64
	for i := range scores {
		scores[i] = math.Exp(scores[i] - maxS)
		z += scores[i]
	}
	m := len(w)
	for idx := 0; idx < n; idx++ {
		p := scores[idx] / z
		coeff := p
		if idx == 0 {
			coeff = p - 1 // the positive's indicator
		}
		var o int
		if idx == 0 {
			o = positive
		} else {
			o = negIDs[idx-1]
		}
		base := o * m
		for i := 0; i < m; i++ {
			// d(jointSim)/dω_i = 2·ω_i·a_i.
			grad[i] += coeff * 2 * float64(w[i]) * float64(row[base+i])
		}
	}
}

// loss evaluates the mean Eq. 6 loss over all anchors under w.
func loss(sims [][]float32, positives []int, negs [][]int, w vec.Weights) float64 {
	var total float64
	for a := range sims {
		sPos := jointSim(sims[a], positives[a], w)
		maxS := sPos
		negScores := make([]float64, len(negs[a]))
		for i, o := range negs[a] {
			negScores[i] = jointSim(sims[a], o, w)
			if negScores[i] > maxS {
				maxS = negScores[i]
			}
		}
		z := math.Exp(sPos - maxS)
		for _, s := range negScores {
			z += math.Exp(s - maxS)
		}
		total += -(sPos - maxS - math.Log(z))
	}
	return total / float64(len(sims))
}

// recallTop1 reports the fraction of anchors whose positive is the top-1
// pool object under w — the recall curve of Fig. 9.
func recallTop1(sims [][]float32, positives []int, w vec.Weights) float64 {
	nPool := len(sims[0]) / len(w)
	hits := 0
	for a := range sims {
		sPos := jointSim(sims[a], positives[a], w)
		best := true
		for o := 0; o < nPool; o++ {
			if o != positives[a] && jointSim(sims[a], o, w) > sPos {
				best = false
				break
			}
		}
		if best {
			hits++
		}
	}
	return float64(hits) / float64(len(sims))
}
