package weights

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"must/internal/vec"
)

// Property: renormalize pins Σω² = m while preserving every pairwise
// ratio (hence all joint-similarity rankings).
func TestRenormalizeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(4)
		w := make(vec.Weights, m)
		for i := range w {
			w[i] = float32(rng.Float64()*3 + 0.01)
		}
		before := w.Clone()
		renormalize(w)
		// The float64 renormalization with residual correction must pin the
		// float32 squared sum exactly (vec.Weights.Renormalize), not just
		// approximately as the old float32 scaling did.
		if w.SumSquared() != float32(m) {
			return false
		}
		// Ratios preserved.
		for i := 1; i < m; i++ {
			r0 := float64(before[i]) / float64(before[0])
			r1 := float64(w[i]) / float64(w[0])
			if math.Abs(r0-r1) > 1e-4*math.Max(1, math.Abs(r0)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

func TestRenormalizeDegenerate(t *testing.T) {
	w := vec.Weights{0, 0}
	renormalize(w)
	if w.SumSquared() != 2 {
		t.Errorf("zero weights not reset to uniform: %v", w)
	}
	for _, x := range w {
		if x != 1 {
			t.Errorf("degenerate reset should pin ω_i = 1, got %v", w)
		}
	}
}

// Training with renormalization must keep Σω² = m at every trace point.
func TestTrainingKeepsWeightNormalization(t *testing.T) {
	anchors, positives, pool := balancedTraining(60, 9)
	res, err := Train(anchors, positives, pool, Config{
		Epochs: 40, HardNegatives: true, NumNegatives: 4, LearningRate: 0.05, Seed: 10, TraceEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Trace[1:] { // epoch 0 records the raw init
		if s := float64(tr.Weights.SumSquared()); math.Abs(s-2) > 1e-2 {
			t.Errorf("epoch %d: Σω² = %v, want 2", tr.Epoch, s)
		}
	}
}
