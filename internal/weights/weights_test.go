package weights

import (
	"math"
	"math/rand"
	"testing"

	"must/internal/vec"
)

// synthTraining builds a training set where modality 0 is pure noise and
// modality 1 carries all the signal: the positive matches the anchor's
// modality-1 vector closely, while other pool objects are random. A
// correct learner must grow ω_1 relative to ω_0.
func synthTraining(n int, seed int64) (anchors []vec.Multi, positives []int, pool []vec.Multi) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		signal := vec.RandUnit(rng, 12)
		anchors = append(anchors, vec.Multi{vec.RandUnit(rng, 16), vec.AddGaussianNoise(rng, signal, 0.2)})
		pool = append(pool, vec.Multi{vec.RandUnit(rng, 16), vec.AddGaussianNoise(rng, signal, 0.2)})
		positives = append(positives, i)
	}
	return
}

// balancedTraining builds a set where both modalities carry equal signal.
func balancedTraining(n int, seed int64) (anchors []vec.Multi, positives []int, pool []vec.Multi) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		s0 := vec.RandUnit(rng, 16)
		s1 := vec.RandUnit(rng, 12)
		anchors = append(anchors, vec.Multi{vec.AddGaussianNoise(rng, s0, 0.3), vec.AddGaussianNoise(rng, s1, 0.3)})
		pool = append(pool, vec.Multi{vec.AddGaussianNoise(rng, s0, 0.3), vec.AddGaussianNoise(rng, s1, 0.3)})
		positives = append(positives, i)
	}
	return
}

func TestTrainLearnsInformativeModality(t *testing.T) {
	anchors, positives, pool := synthTraining(150, 1)
	res, err := Train(anchors, positives, pool, Config{
		Epochs:        150,
		HardNegatives: true,
		NumNegatives:  5,
		LearningRate:  0.02,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Weights
	if w[1]*w[1] <= w[0]*w[0] {
		t.Errorf("learner failed to upweight the informative modality: ω² = [%v %v]", w[0]*w[0], w[1]*w[1])
	}
	final := res.Trace[len(res.Trace)-1]
	if final.Recall < 0.9 {
		t.Errorf("final recall = %v, want >= 0.9 on separable data", final.Recall)
	}
}

func TestTrainLossDecreases(t *testing.T) {
	anchors, positives, pool := balancedTraining(120, 3)
	res, err := Train(anchors, positives, pool, Config{
		Epochs:        100,
		HardNegatives: true,
		NumNegatives:  5,
		LearningRate:  0.01,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Trace[0]
	last := res.Trace[len(res.Trace)-1]
	// Hard-negative loss can fluctuate as negatives get harder, but
	// recall must improve or hold and loss must not blow up.
	if last.Recall < first.Recall-0.05 {
		t.Errorf("recall regressed: %v -> %v", first.Recall, last.Recall)
	}
	if math.IsNaN(last.Loss) || math.IsInf(last.Loss, 0) {
		t.Errorf("loss diverged: %v", last.Loss)
	}
}

// Fig. 9: hard negatives must converge to recall at least as good as
// random negatives, and typically better, for the same budget.
func TestHardNegativesBeatRandom(t *testing.T) {
	anchors, positives, pool := balancedTraining(200, 5)
	run := func(hard bool) float64 {
		res, err := Train(anchors, positives, pool, Config{
			Epochs:        120,
			HardNegatives: hard,
			NumNegatives:  5,
			LearningRate:  0.02,
			Seed:          6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace[len(res.Trace)-1].Recall
	}
	hard, random := run(true), run(false)
	if hard < random-0.02 {
		t.Errorf("hard-negative recall %v below random-negative recall %v", hard, random)
	}
}

func TestTrainValidation(t *testing.T) {
	anchors, positives, pool := synthTraining(10, 7)
	if _, err := Train(nil, nil, pool, Config{}); err == nil {
		t.Error("no anchors did not error")
	}
	if _, err := Train(anchors, positives[:5], pool, Config{}); err == nil {
		t.Error("anchor/positive mismatch did not error")
	}
	if _, err := Train(anchors, positives, pool[:1], Config{}); err == nil {
		t.Error("tiny pool did not error")
	}
	bad := append([]int(nil), positives...)
	bad[0] = 999
	if _, err := Train(anchors, bad, pool, Config{Epochs: 1}); err == nil {
		t.Error("out-of-range positive did not error")
	}
	if _, err := Train(anchors, positives, pool, Config{Epochs: 1, Init: vec.Weights{1}}); err == nil {
		t.Error("wrong init size did not error")
	}
}

func TestTrainDeterministic(t *testing.T) {
	anchors, positives, pool := balancedTraining(60, 8)
	cfg := Config{Epochs: 30, HardNegatives: true, NumNegatives: 4, LearningRate: 0.01, Seed: 9}
	a, err := Train(anchors, positives, pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(anchors, positives, pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("training not deterministic: %v vs %v", a.Weights, b.Weights)
		}
	}
}

func TestTraceRecording(t *testing.T) {
	anchors, positives, pool := synthTraining(30, 10)
	res, err := Train(anchors, positives, pool, Config{
		Epochs: 50, TraceEvery: 10, HardNegatives: true, NumNegatives: 3, LearningRate: 0.01, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 0 plus epochs 10,20,30,40,50.
	if len(res.Trace) != 6 {
		t.Fatalf("trace has %d points, want 6", len(res.Trace))
	}
	if res.Trace[0].Epoch != 0 || res.Trace[5].Epoch != 50 {
		t.Errorf("trace epochs: first=%d last=%d", res.Trace[0].Epoch, res.Trace[5].Epoch)
	}
	// Recorded weights must be snapshots, not aliases.
	res.Trace[0].Weights[0] = 123
	if res.Trace[1].Weights[0] == 123 {
		t.Error("trace weights aliased")
	}
}

func TestInitWeightsRespected(t *testing.T) {
	anchors, positives, pool := synthTraining(20, 12)
	init := vec.Weights{0.9, 0.1}
	res, err := Train(anchors, positives, pool, Config{
		Epochs: 0, TraceEvery: 1, Init: init, Seed: 13, HardNegatives: true,
	})
	// Epochs: 0 falls back to default 700? fillDefaults sets 700 when 0.
	// So instead run 1 epoch with lr 0 to freeze the init.
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	res2, err := Train(anchors, positives, pool, Config{
		Epochs: 1, LearningRate: 1e-12, Init: init, Seed: 13, HardNegatives: true, NumNegatives: 2,
		NoRenorm: true, // renormalization would rescale the init ratio-preservingly
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res2.Weights[0])-0.9) > 1e-3 || math.Abs(float64(res2.Weights[1])-0.1) > 1e-3 {
		t.Errorf("init weights not respected: %v", res2.Weights)
	}
}

func TestGradientMatchesNumerical(t *testing.T) {
	// Analytic gradient vs central finite differences on a tiny problem.
	rng := rand.New(rand.NewSource(14))
	anchor := vec.Multi{vec.RandUnit(rng, 8), vec.RandUnit(rng, 6)}
	pool := []vec.Multi{
		{vec.RandUnit(rng, 8), vec.RandUnit(rng, 6)},
		{vec.RandUnit(rng, 8), vec.RandUnit(rng, 6)},
		{vec.RandUnit(rng, 8), vec.RandUnit(rng, 6)},
	}
	sims := precomputeSims([]vec.Multi{anchor}, pool, 2)
	w := vec.Weights{0.7, 0.4}
	positive := 0
	negIDs := []int{1, 2}

	grad := make([]float64, 2)
	scores := make([]float64, 3)
	accumulateGrad(sims[0], positive, negIDs, w, scores, grad)

	lossAt := func(w vec.Weights) float64 {
		return loss(sims, []int{positive}, [][]int{negIDs}, w)
	}
	const h = 1e-4
	for i := 0; i < 2; i++ {
		wp := w.Clone()
		wm := w.Clone()
		wp[i] += h
		wm[i] -= h
		numeric := (lossAt(wp) - lossAt(wm)) / (2 * h)
		if math.Abs(numeric-grad[i]) > 1e-2*math.Max(1, math.Abs(numeric)) {
			t.Errorf("gradient[%d] analytic=%v numeric=%v", i, grad[i], numeric)
		}
	}
}

func TestMineRandomAvoidsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	negs := make([][]int, 5)
	positives := []int{0, 1, 2, 3, 4}
	mineRandom(rng, 20, positives, 6, negs)
	for a, ns := range negs {
		if len(ns) != 6 {
			t.Fatalf("anchor %d got %d negatives", a, len(ns))
		}
		seen := map[int]bool{}
		for _, o := range ns {
			if o == positives[a] {
				t.Fatalf("anchor %d: positive sampled as negative", a)
			}
			if seen[o] {
				t.Fatalf("anchor %d: duplicate negative %d", a, o)
			}
			seen[o] = true
		}
	}
}

func TestMineHardReturnsClosest(t *testing.T) {
	anchors, positives, pool := balancedTraining(30, 16)
	sims := precomputeSims(anchors, pool, 2)
	w := vec.Uniform(2)
	negs := make([][]int, len(anchors))
	mineHard(sims, positives, w, 3, negs)
	for a := range anchors {
		if len(negs[a]) != 3 {
			t.Fatalf("anchor %d got %d negatives", a, len(negs[a]))
		}
		// Every returned negative must beat every non-returned pool
		// object in joint similarity.
		worst := math.Inf(1)
		in := map[int]bool{}
		for _, o := range negs[a] {
			if o == positives[a] {
				t.Fatalf("anchor %d: positive mined as negative", a)
			}
			in[o] = true
			if s := jointSim(sims[a], o, w); s < worst {
				worst = s
			}
		}
		for o := range pool {
			if o == positives[a] || in[o] {
				continue
			}
			if jointSim(sims[a], o, w) > worst+1e-9 {
				t.Fatalf("anchor %d: non-mined object %d beats worst mined", a, o)
			}
		}
	}
}
