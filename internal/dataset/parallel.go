package dataset

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for i in [0, n) across GOMAXPROCS goroutines.
// Work is handed out in chunks to amortize the atomic counter.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	const chunk = 64
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&next, chunk)) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
