package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"must/internal/vec"
)

// Binary format for encoded datasets, little-endian throughout:
//
//	magic "MUSTDS1\n" (8 bytes)
//	nameLen uint32, name bytes
//	encoderLabelLen uint32, label bytes
//	m uint32
//	dims: m × uint32
//	numObjects uint32
//	objects: numObjects × (per modality: dim × float32)
//	numQueries uint32
//	queries: numQueries × (per modality: dim × float32,
//	         then gtLen uint32, gt: gtLen × uint32)
//
// The format exists so cmd/mustgen can generate once and cmd/mustbench /
// cmd/mustsearch can reload, and to exercise a realistic storage layer.

var magic = [8]byte{'M', 'U', 'S', 'T', 'D', 'S', '1', '\n'}

// WriteEncoded serializes e to w.
func WriteEncoded(w io.Writer, e *Encoded) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	writeString := func(s string) error {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeString(e.Name); err != nil {
		return err
	}
	if err := writeString(e.EncoderLabel); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(e.M)); err != nil {
		return err
	}
	for _, d := range e.Dims {
		if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	writeVec := func(v []float32) error {
		var buf [4]byte
		for _, x := range v {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(x))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(e.Objects))); err != nil {
		return err
	}
	for _, o := range e.Objects {
		for _, v := range o {
			if err := writeVec(v); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(e.Queries))); err != nil {
		return err
	}
	for _, q := range e.Queries {
		for _, v := range q.Vectors {
			if err := writeVec(v); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(q.GroundTruth))); err != nil {
			return err
		}
		for _, id := range q.GroundTruth {
			if err := binary.Write(bw, binary.LittleEndian, uint32(id)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEncoded deserializes an encoded dataset from r.
func ReadEncoded(r io.Reader) (*Encoded, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("dataset: bad magic %q", got[:])
	}
	readU32 := func() (uint32, error) {
		var x uint32
		err := binary.Read(br, binary.LittleEndian, &x)
		return x, err
	}
	readString := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("dataset: unreasonable string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	e := &Encoded{}
	var err error
	if e.Name, err = readString(); err != nil {
		return nil, fmt.Errorf("dataset: reading name: %w", err)
	}
	if e.EncoderLabel, err = readString(); err != nil {
		return nil, fmt.Errorf("dataset: reading encoder label: %w", err)
	}
	m, err := readU32()
	if err != nil {
		return nil, err
	}
	if m == 0 || m > 64 {
		return nil, fmt.Errorf("dataset: unreasonable modality count %d", m)
	}
	e.M = int(m)
	e.Dims = make([]int, m)
	total := 0
	for i := range e.Dims {
		d, err := readU32()
		if err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<16 {
			return nil, fmt.Errorf("dataset: unreasonable dim %d", d)
		}
		e.Dims[i] = int(d)
		total += int(d)
	}
	readMulti := func() ([][]float32, error) {
		flat := make([]float32, total)
		if err := binary.Read(br, binary.LittleEndian, flat); err != nil {
			return nil, err
		}
		mv := make([][]float32, m)
		off := 0
		for i, d := range e.Dims {
			mv[i] = flat[off : off+d : off+d]
			off += d
		}
		return mv, nil
	}
	nObj, err := readU32()
	if err != nil {
		return nil, err
	}
	e.Objects = make([]vec.Multi, 0, nObj)
	for i := uint32(0); i < nObj; i++ {
		mv, err := readMulti()
		if err != nil {
			return nil, fmt.Errorf("dataset: reading object %d: %w", i, err)
		}
		e.Objects = append(e.Objects, mv)
	}
	nQ, err := readU32()
	if err != nil {
		return nil, err
	}
	e.Queries = make([]EncodedQuery, 0, nQ)
	for i := uint32(0); i < nQ; i++ {
		mv, err := readMulti()
		if err != nil {
			return nil, fmt.Errorf("dataset: reading query %d: %w", i, err)
		}
		gtLen, err := readU32()
		if err != nil {
			return nil, err
		}
		if gtLen > nObj {
			return nil, fmt.Errorf("dataset: query %d ground truth length %d exceeds object count", i, gtLen)
		}
		gt := make([]int, gtLen)
		for j := range gt {
			id, err := readU32()
			if err != nil {
				return nil, err
			}
			if id >= nObj {
				return nil, fmt.Errorf("dataset: query %d ground truth id %d out of range", i, id)
			}
			gt[j] = int(id)
		}
		e.Queries = append(e.Queries, EncodedQuery{Vectors: mv, GroundTruth: gt})
	}
	return e, nil
}

// SaveEncoded writes e to the file at path.
func SaveEncoded(path string, e *Encoded) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEncoded(f, e); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// LoadEncoded reads an encoded dataset from the file at path.
func LoadEncoded(path string) (*Encoded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	return ReadEncoded(f)
}
