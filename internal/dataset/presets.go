package dataset

// Presets for the nine datasets of Tab. II, scaled to laptop/CI budgets
// (DESIGN.md §2). The Scale argument multiplies object and query counts;
// Scale = 1 gives the default reproduction size used by `go test`, the
// benchmark harness passes larger scales.

// CelebASim mirrors CelebA (2 modalities: face image* + attribute text).
// Paper: 191,549 objects / 34,326 queries; default here: 15k / 1.5k.
func CelebASim(scale float64) SemanticConfig {
	return SemanticConfig{
		Name:               "CelebASim",
		Seed:               0xce1eba,
		NumObjects:         scaled(15000, scale),
		NumQueries:         scaled(1500, scale),
		ContentDim:         24,
		AttrDim:            16,
		NumAttrs:           40, // CelebA has 40 annotated attributes
		AttrJitter:         0.25,
		ComposeAlpha:       0.9,
		RefDistractors:     2,
		RefDistractorNoise: 0.35,
		ContentClusters:    scaled(150, scale), // identity look-alike groups
		ContentJitter:      0.75,
	}
}

// MITStatesSim mirrors MIT-States (image* + state-adjective text).
// Paper: 53,743 objects / 72,732 queries; default here: 12k / 2k.
func MITStatesSim(scale float64) SemanticConfig {
	return SemanticConfig{
		Name:               "MITStatesSim",
		Seed:               0x317a7e5,
		NumObjects:         scaled(12000, scale),
		NumQueries:         scaled(2000, scale),
		ContentDim:         24,
		AttrDim:            16,
		NumAttrs:           115, // MIT-States has 115 adjectives
		AttrJitter:         0.20,
		ComposeAlpha:       1.0, // state changes move content strongly
		RefDistractors:     2,
		RefDistractorNoise: 0.30,
		ContentClusters:    scaled(120, scale), // noun categories
		ContentJitter:      0.70,
	}
}

// ShoppingSim mirrors Shopping100k T-shirts (product image* + structured
// attribute text). Paper: 96,009 objects / 47,658 queries; default here:
// 10k / 1.5k. Attribute modifications dominate (replace color/fabric), so
// the composition is strong and reference distractors are plentiful —
// which is what collapses MR's image stream in Tab. V.
func ShoppingSim(scale float64) SemanticConfig {
	return SemanticConfig{
		Name:               "ShoppingSim",
		Seed:               0x5a0bb1,
		NumObjects:         scaled(10000, scale),
		NumQueries:         scaled(1500, scale),
		ContentDim:         20,
		AttrDim:            16,
		NumAttrs:           60,
		AttrJitter:         0.15,
		ComposeAlpha:       1.6, // attribute replacement changes the product a lot
		RefDistractors:     4,   // catalogues are full of near-duplicates
		RefDistractorNoise: 0.20,
		ContentClusters:    scaled(100, scale), // product families
		ContentJitter:      0.50,
	}
}

// ShoppingBottomsSim is the second Shopping category (Tab. XXI).
func ShoppingBottomsSim(scale float64) SemanticConfig {
	cfg := ShoppingSim(scale)
	cfg.Name = "ShoppingBottomsSim"
	cfg.Seed = 0x5a0bb2
	return cfg
}

// MSCOCOSim mirrors MS-COCO (image* ×2 + text, 3 modalities).
// Paper: 19,711 objects / 1,237 queries; default here: 8k / 1k. This is
// the paper's hardest dataset (Recall@10 ≈ 0.09 for the best method), so
// the composition is strong and jitter high.
func MSCOCOSim(scale float64) SemanticConfig {
	return SemanticConfig{
		Name:               "MSCOCOSim",
		Seed:               0xc0c0,
		NumObjects:         scaled(8000, scale),
		NumQueries:         scaled(1000, scale),
		ContentDim:         24,
		AttrDim:            16,
		NumAttrs:           30, // coarse caption themes
		AttrJitter:         1.20,
		ComposeAlpha:       1.2,
		RefDistractors:     2,
		RefDistractorNoise: 0.25,
		SecondContent:      true,
		SecondAlpha:        0.8,
		ContentClusters:    scaled(30, scale), // scene categories
		ContentJitter:      0.90,
		TargetNoise:        1.90, // true targets match only semantically
	}
}

// CelebAPlusSim mirrors CelebA+ (image* ×3 + text, 4 modalities): the
// CelebA objects with two extra simulated image modalities (§VIII-A).
func CelebAPlusSim(scale float64) SemanticConfig {
	cfg := CelebASim(scale)
	cfg.Name = "CelebAPlusSim"
	cfg.ContentViews = 2
	return cfg
}

// ImageTextN mirrors ImageText1M (SIFT-derived image features + text) at n
// objects. Paper: 1M objects / 10k queries.
func ImageTextN(n int, seed int64) FeatureConfig {
	return FeatureConfig{
		Name:            "ImageText",
		Seed:            seed,
		NumObjects:      n,
		NumQueries:      200,
		ContentDim:      24,
		AttrDim:         16,
		NumAttrs:        50,
		AttrJitter:      0.35,
		ContentClusters: 200,
		ContentJitter:   0.8,
	}
}

// AudioTextN mirrors AudioText1M (MSONG audio features + text).
func AudioTextN(n int, seed int64) FeatureConfig {
	return FeatureConfig{
		Name:            "AudioText",
		Seed:            seed ^ 0xa0d10,
		NumObjects:      n,
		NumQueries:      200,
		ContentDim:      32, // audio features are higher-dimensional
		AttrDim:         16,
		NumAttrs:        50,
		AttrJitter:      0.35,
		ContentClusters: 150,
		ContentJitter:   0.7,
	}
}

// VideoTextN mirrors VideoText1M (UQ-V keyframe features + text).
func VideoTextN(n int, seed int64) FeatureConfig {
	return FeatureConfig{
		Name:            "VideoText",
		Seed:            seed ^ 0x71de0,
		NumObjects:      n,
		NumQueries:      200,
		ContentDim:      28,
		AttrDim:         16,
		NumAttrs:        50,
		AttrJitter:      0.35,
		ContentClusters: 180,
		ContentJitter:   0.75,
	}
}

func scaled(base int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}
