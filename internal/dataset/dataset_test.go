package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"must/internal/encoder"
	"must/internal/vec"
)

// smallSemantic returns a tiny semantic config for fast tests.
func smallSemantic() SemanticConfig {
	return SemanticConfig{
		Name:               "TinySem",
		Seed:               1,
		NumObjects:         300,
		NumQueries:         40,
		ContentDim:         16,
		AttrDim:            8,
		NumAttrs:           10,
		AttrJitter:         0.2,
		ComposeAlpha:       0.9,
		RefDistractors:     2,
		RefDistractorNoise: 0.3,
	}
}

func tinyEncoderSet(raw *Raw, withComposition bool) EncoderSet {
	target := encoder.NewResNet50(raw.ContentDim, 7)
	set := EncoderSet{Unimodal: []encoder.Encoder{target, encoder.NewLSTM(raw.AttrDim, 7)}}
	if withComposition {
		set.Composition = encoder.NewCLIP(target, 7)
	}
	return set
}

func TestGenerateSemanticShape(t *testing.T) {
	raw, err := GenerateSemantic(smallSemantic())
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Objects) != 300 || len(raw.Queries) != 40 {
		t.Fatalf("got %d objects, %d queries", len(raw.Objects), len(raw.Queries))
	}
	if raw.M != 2 {
		t.Fatalf("M = %d, want 2", raw.M)
	}
	for i, o := range raw.Objects {
		if len(o.Latents) != 2 {
			t.Fatalf("object %d has %d latents", i, len(o.Latents))
		}
		if len(o.Latents[0]) != 16 || len(o.Latents[1]) != 8 {
			t.Fatalf("object %d latent dims %d/%d", i, len(o.Latents[0]), len(o.Latents[1]))
		}
	}
	for i, q := range raw.Queries {
		if len(q.GroundTruth) != 1 {
			t.Fatalf("query %d has %d ground truths", i, len(q.GroundTruth))
		}
		if q.GroundTruth[0] < 0 || q.GroundTruth[0] >= len(raw.Objects) {
			t.Fatalf("query %d ground truth %d out of range", i, q.GroundTruth[0])
		}
	}
}

func TestGenerateSemanticDeterministic(t *testing.T) {
	a, err := GenerateSemantic(smallSemantic())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSemantic(smallSemantic())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Objects {
		for j := range a.Objects[i].Latents {
			for k := range a.Objects[i].Latents[j] {
				if a.Objects[i].Latents[j][k] != b.Objects[i].Latents[j][k] {
					t.Fatal("semantic generation not deterministic")
				}
			}
		}
	}
}

// The planted ground-truth object must be the best match for its query
// in latent space under the composed semantics: closer to the composed
// latent than any background object, and attribute-matching.
func TestGroundTruthIsBestLatentMatch(t *testing.T) {
	raw, err := GenerateSemantic(smallSemantic())
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range raw.Queries {
		gt := q.GroundTruth[0]
		gtSim := vec.Dot(q.Composed, raw.Objects[gt].Latents[0])
		better := 0
		for oi, o := range raw.Objects {
			if oi == gt {
				continue
			}
			if vec.Dot(q.Composed, o.Latents[0]) > gtSim {
				better++
			}
		}
		if better > 0 {
			t.Errorf("query %d: %d objects beat the ground truth in composed-latent similarity (gtSim=%v)", qi, better, gtSim)
		}
	}
}

// Reference distractors must be closer to the raw reference latent than
// the ground-truth object is — that is what breaks MR's image stream.
func TestReferenceDistractorsConfuseTargetModality(t *testing.T) {
	cfg := smallSemantic()
	raw, err := GenerateSemantic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	confused := 0
	for qi, q := range raw.Queries {
		gt := q.GroundTruth[0]
		ref := q.Latents[0]
		gtSim := vec.Dot(ref, raw.Objects[gt].Latents[0])
		// Distractors are planted right after the ground truth.
		for d := 1; d <= cfg.RefDistractors; d++ {
			if vec.Dot(ref, raw.Objects[gt+d].Latents[0]) > gtSim {
				confused++
			}
		}
		_ = qi
	}
	// With RefDistractorNoise < ComposeAlpha the distractors should beat
	// the ground truth for nearly every query.
	want := len(raw.Queries) * cfg.RefDistractors
	if confused < want*9/10 {
		t.Errorf("only %d/%d reference distractors beat the ground truth in reference similarity", confused, want)
	}
}

func TestGenerateSemanticValidation(t *testing.T) {
	cfg := smallSemantic()
	cfg.NumObjects = 10 // cannot hold 40 queries × 3 planted objects
	if _, err := GenerateSemantic(cfg); err == nil {
		t.Error("undersized object set did not error")
	}
	cfg = smallSemantic()
	cfg.ContentDim = 0
	if _, err := GenerateSemantic(cfg); err == nil {
		t.Error("zero content dim did not error")
	}
	cfg = smallSemantic()
	cfg.NumQueries = 0
	if _, err := GenerateSemantic(cfg); err == nil {
		t.Error("zero queries did not error")
	}
}

func TestSemanticModalities(t *testing.T) {
	cfg := smallSemantic()
	cfg.SecondContent = true
	cfg.SecondAlpha = 0.8
	cfg.ContentViews = 1
	raw, err := GenerateSemantic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if raw.M != 4 {
		t.Fatalf("M = %d, want 4 (content, attr, second, view)", raw.M)
	}
	// The view modality must share the content latent.
	o := raw.Objects[0]
	for i := range o.Latents[0] {
		if o.Latents[0][i] != o.Latents[3][i] {
			t.Fatal("view modality does not share content latent")
		}
	}
}

func TestEncodeShapesAndComposition(t *testing.T) {
	raw, err := GenerateSemantic(smallSemantic())
	if err != nil {
		t.Fatal(err)
	}
	plain := MustEncode(raw, tinyEncoderSet(raw, false))
	if plain.EncoderLabel != "ResNet50+LSTM" {
		t.Errorf("label = %q", plain.EncoderLabel)
	}
	comp := MustEncode(raw, tinyEncoderSet(raw, true))
	if comp.EncoderLabel != "CLIP+LSTM" {
		t.Errorf("label = %q", comp.EncoderLabel)
	}
	if len(plain.Objects) != len(raw.Objects) || len(plain.Queries) != len(raw.Queries) {
		t.Fatal("encode changed cardinalities")
	}
	for _, o := range plain.Objects[:5] {
		if len(o) != 2 || len(o[0]) != encoder.DimImage || len(o[1]) != encoder.DimText {
			t.Fatalf("object dims %v", o.Dims())
		}
	}
	// With a composition encoder the query's modality-0 vector changes,
	// the objects' do not.
	for i := range plain.Objects {
		for j := range plain.Objects[i][0] {
			if plain.Objects[i][0][j] != comp.Objects[i][0][j] {
				t.Fatal("composition encoder altered object vectors")
			}
		}
	}
	diff := false
	for j := range plain.Queries[0].Vectors[0] {
		if plain.Queries[0].Vectors[0][j] != comp.Queries[0].Vectors[0][j] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("composition encoder did not change query vectors")
	}
}

func TestEncodeValidatesEncoderCount(t *testing.T) {
	raw, err := GenerateSemantic(smallSemantic())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Encode(raw, EncoderSet{Unimodal: []encoder.Encoder{encoder.NewLSTM(raw.AttrDim, 1)}})
	if err == nil {
		t.Error("wrong encoder count did not error")
	}
}

func TestEncodedVectorsAreUnit(t *testing.T) {
	raw, err := GenerateSemantic(smallSemantic())
	if err != nil {
		t.Fatal(err)
	}
	enc := MustEncode(raw, tinyEncoderSet(raw, true))
	check := func(mv vec.Multi) {
		for _, v := range mv {
			if n := float64(vec.Norm(v)); math.Abs(n-1) > 1e-3 {
				t.Fatalf("vector norm %v, want 1", n)
			}
		}
	}
	for _, o := range enc.Objects[:10] {
		check(o)
	}
	for _, q := range enc.Queries[:10] {
		check(q.Vectors)
	}
}

func TestGenerateFeatureShape(t *testing.T) {
	cfg := ImageTextN(500, 3)
	cfg.NumQueries = 20
	raw, err := GenerateFeature(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Objects) != 500 || len(raw.Queries) != 20 {
		t.Fatalf("got %d objects, %d queries", len(raw.Objects), len(raw.Queries))
	}
	for _, q := range raw.Queries {
		if len(q.GroundTruth) != 0 {
			t.Fatal("feature queries must start with empty ground truth")
		}
	}
}

func TestGenerateFeatureValidation(t *testing.T) {
	cfg := ImageTextN(0, 1)
	if _, err := GenerateFeature(cfg); err == nil {
		t.Error("zero objects did not error")
	}
}

func TestPresetsScale(t *testing.T) {
	base := CelebASim(1)
	half := CelebASim(0.5)
	if half.NumObjects != base.NumObjects/2 {
		t.Errorf("scaled objects = %d, want %d", half.NumObjects, base.NumObjects/2)
	}
	if CelebAPlusSim(1).modalities() != 4 {
		t.Errorf("CelebA+ modalities = %d, want 4", CelebAPlusSim(1).modalities())
	}
	if MSCOCOSim(1).modalities() != 3 {
		t.Errorf("MS-COCO modalities = %d, want 3", MSCOCOSim(1).modalities())
	}
	// All presets must validate at small scale.
	for _, cfg := range []SemanticConfig{CelebASim(0.1), MITStatesSim(0.1), ShoppingSim(0.1), ShoppingBottomsSim(0.1), MSCOCOSim(0.1), CelebAPlusSim(0.1)} {
		if err := cfg.validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestIORoundTrip(t *testing.T) {
	raw, err := GenerateSemantic(smallSemantic())
	if err != nil {
		t.Fatal(err)
	}
	enc := MustEncode(raw, tinyEncoderSet(raw, true))
	var buf bytes.Buffer
	if err := WriteEncoded(&buf, enc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEncoded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != enc.Name || got.EncoderLabel != enc.EncoderLabel || got.M != enc.M {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Objects) != len(enc.Objects) || len(got.Queries) != len(enc.Queries) {
		t.Fatal("cardinality mismatch after round trip")
	}
	for i := range enc.Objects {
		for j := range enc.Objects[i] {
			for k := range enc.Objects[i][j] {
				if got.Objects[i][j][k] != enc.Objects[i][j][k] {
					t.Fatal("object vectors mismatch after round trip")
				}
			}
		}
	}
	for i := range enc.Queries {
		if len(got.Queries[i].GroundTruth) != len(enc.Queries[i].GroundTruth) {
			t.Fatal("ground truth mismatch after round trip")
		}
		for j := range enc.Queries[i].GroundTruth {
			if got.Queries[i].GroundTruth[j] != enc.Queries[i].GroundTruth[j] {
				t.Fatal("ground truth ids mismatch after round trip")
			}
		}
	}
}

func TestIOFileRoundTrip(t *testing.T) {
	raw, err := GenerateSemantic(smallSemantic())
	if err != nil {
		t.Fatal(err)
	}
	enc := MustEncode(raw, tinyEncoderSet(raw, false))
	path := filepath.Join(t.TempDir(), "ds.bin")
	if err := SaveEncoded(path, enc); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEncoded(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Objects) != len(enc.Objects) {
		t.Fatal("file round trip lost objects")
	}
}

func TestReadEncodedRejectsGarbage(t *testing.T) {
	if _, err := ReadEncoded(bytes.NewReader([]byte("not a dataset at all"))); err == nil {
		t.Error("garbage input did not error")
	}
	// Truncated valid prefix.
	raw, _ := GenerateSemantic(smallSemantic())
	enc := MustEncode(raw, tinyEncoderSet(raw, false))
	var buf bytes.Buffer
	if err := WriteEncoded(&buf, enc); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadEncoded(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input did not error")
	}
}

func TestParallelForCoversAll(t *testing.T) {
	const n = 1000
	hits := make([]int32, n)
	parallelFor(n, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
	// Degenerate sizes.
	parallelFor(0, func(int) { t.Fatal("called for n=0") })
	count := 0
	parallelFor(1, func(int) { count++ })
	if count != 1 {
		t.Fatalf("n=1 ran %d times", count)
	}
}
