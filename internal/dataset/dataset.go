// Package dataset generates the multimodal object sets and query workloads
// used by every experiment in the MUST reproduction.
//
// The substitution for the paper's real datasets (DESIGN.md §2): every
// object carries one ground-truth *latent* vector per modality. Two
// families of generators mirror the paper's two dataset families:
//
//   - Semantic datasets (CelebA, MIT-States, Shopping, MS-COCO, CelebA+
//     analogues): queries are built as "reference content + attribute
//     modification", and a ground-truth object matching the composed
//     semantics is planted, along with reference-similar distractors with
//     the wrong attribute and attribute-matching distractors with the
//     wrong content — exactly the failure structure of Fig. 3. Ground
//     truth is known by construction (k' = 1).
//
//   - Feature datasets (ImageText1M, AudioText1M, VideoText1M,
//     ImageText16M analogues): objects and queries are drawn from the same
//     distribution and ground truth is the exact top-k' under joint
//     similarity, computed by brute force in the experiment harness —
//     matching the semi-synthetic protocol of §VIII-A.
//
// Generation is separated from encoding so one raw dataset can be encoded
// with many encoder combinations (the per-encoder rows of Tab. III–VI).
package dataset

import (
	"fmt"

	"must/internal/encoder"
	"must/internal/vec"
)

// Raw is a generated dataset before encoding: ground-truth latents only.
type Raw struct {
	// Name labels the dataset in reports, e.g. "MITStatesSim".
	Name string
	// M is the number of modalities per object.
	M int
	// ContentDim and AttrDim are the latent dimensions of the content and
	// attribute modalities.
	ContentDim, AttrDim int
	// Objects holds the object latents; index = object ID.
	Objects []RawObject
	// Queries holds the query workload.
	Queries []RawQuery
}

// RawObject is one multimodal object's ground-truth latents.
type RawObject struct {
	// Latents has one latent vector per modality, in the dataset's
	// modality layout (0 = target content, 1 = attribute, then optional
	// second-content and view modalities).
	Latents [][]float32
}

// RawQuery is one multimodal query's ground-truth latents.
type RawQuery struct {
	// Latents holds the per-modality query inputs: Latents[0] is the
	// reference content shown to the target-modality encoder, Latents[1]
	// the attribute modification, and any further entries follow the
	// dataset's modality layout.
	Latents [][]float32
	// Composed is the ground-truth composed content latent — what the
	// multimodal encoder Φ is asked to embed.
	Composed []float32
	// GroundTruth lists the IDs of true result objects (empty for feature
	// datasets until the harness computes exact top-k').
	GroundTruth []int
}

// EncoderSet selects the encoders for one experiment row.
type EncoderSet struct {
	// Unimodal has one encoder per modality, aligned with the dataset's
	// modality layout.
	Unimodal []encoder.Encoder
	// Composition, if non-nil, replaces the query's modality-0 vector
	// with Φ(q0,...,q_{t-1}) (Option 2 in Fig. 4(f)). Objects always use
	// Unimodal[0].
	Composition encoder.MultiEncoder
}

// Label renders the encoder combination the way the paper's tables do,
// e.g. "CLIP+LSTM" or "ResNet50+GRU+ResNet50".
func (s EncoderSet) Label() string {
	out := ""
	for i, e := range s.Unimodal {
		name := e.Name()
		if i == 0 && s.Composition != nil {
			name = s.Composition.Name()
		}
		if i > 0 {
			out += "+"
		}
		out += name
	}
	return out
}

// Encoded is a dataset after embedding with a particular EncoderSet.
type Encoded struct {
	// Name and M are copied from the raw dataset.
	Name string
	M    int
	// EncoderLabel records which encoder combination produced the
	// vectors.
	EncoderLabel string
	// Dims holds the per-modality embedding dimensions.
	Dims []int
	// Objects holds one multi-vector per object; index = object ID.
	Objects []vec.Multi
	// Queries holds the encoded query workload.
	Queries []EncodedQuery
}

// EncodedQuery is one query after embedding.
type EncodedQuery struct {
	// Vectors holds the per-modality query vectors. Vectors[0] is either
	// ϕ0(q0) or Φ(q0,...,q_{t-1}) depending on the EncoderSet.
	Vectors vec.Multi
	// GroundTruth lists the IDs of true result objects.
	GroundTruth []int
}

// Encode embeds raw with the given encoder set. It validates that the set
// covers every modality and that encoder latent dimensions line up with
// the dataset layout (via the encoders' own checks).
func Encode(raw *Raw, set EncoderSet) (*Encoded, error) {
	if len(set.Unimodal) != raw.M {
		return nil, fmt.Errorf("dataset: %d unimodal encoders for %d modalities", len(set.Unimodal), raw.M)
	}
	enc := &Encoded{
		Name:         raw.Name,
		M:            raw.M,
		EncoderLabel: set.Label(),
		Dims:         make([]int, raw.M),
	}
	for i, e := range set.Unimodal {
		enc.Dims[i] = e.Dim()
	}
	enc.Objects = make([]vec.Multi, len(raw.Objects))
	parallelFor(len(raw.Objects), func(i int) {
		o := raw.Objects[i]
		mv := make(vec.Multi, raw.M)
		for j := 0; j < raw.M; j++ {
			mv[j] = set.Unimodal[j].Encode(o.Latents[j])
		}
		enc.Objects[i] = mv
	})
	enc.Queries = make([]EncodedQuery, len(raw.Queries))
	parallelFor(len(raw.Queries), func(i int) {
		q := raw.Queries[i]
		mv := make(vec.Multi, raw.M)
		for j := 0; j < raw.M; j++ {
			mv[j] = set.Unimodal[j].Encode(q.Latents[j])
		}
		if set.Composition != nil {
			mv[0] = set.Composition.EncodeComposed(q.Composed)
		}
		enc.Queries[i] = EncodedQuery{Vectors: mv, GroundTruth: q.GroundTruth}
	})
	return enc, nil
}

// MustEncode is Encode but panics on configuration errors; used by
// experiment code where the encoder sets are statically correct.
func MustEncode(raw *Raw, set EncoderSet) *Encoded {
	e, err := Encode(raw, set)
	if err != nil {
		panic(err)
	}
	return e
}
