package dataset

import (
	"fmt"
	"math/rand"

	"must/internal/vec"
)

// FeatureConfig parameterizes the semi-synthetic feature datasets — the
// analogues of ImageText1M, AudioText1M, VideoText1M and ImageText16M,
// which the paper built by attaching a text modality to existing feature
// corpora (§VIII-A, Appendix J). Objects and queries are drawn from the
// same distribution; ground truth is NOT planted but computed by the
// harness as the exact top-k' under joint similarity.
type FeatureConfig struct {
	// Name labels the dataset, e.g. "ImageText1M".
	Name string
	// Seed drives all randomness.
	Seed int64
	// NumObjects and NumQueries size the corpus and workload.
	NumObjects, NumQueries int
	// ContentDim and AttrDim are the latent dimensions of the two
	// modalities.
	ContentDim, AttrDim int
	// NumAttrs is the number of attribute clusters for the attached text
	// modality; the clustering mirrors the categorical text the paper
	// attached to SIFT/MSONG/UQ-V features.
	NumAttrs int
	// AttrJitter is the per-object jitter around cluster centers.
	AttrJitter float64
	// ContentClusters optionally clusters the content modality too
	// (natural feature corpora are clumpy, which is what makes proximity
	// graphs shine); 0 means fully random content.
	ContentClusters int
	// ContentJitter is the jitter around content cluster centers.
	ContentJitter float64
}

func (c FeatureConfig) validate() error {
	if c.NumObjects <= 0 || c.NumQueries <= 0 {
		return fmt.Errorf("dataset %s: need positive objects and queries", c.Name)
	}
	if c.ContentDim <= 0 || c.AttrDim <= 0 || c.NumAttrs <= 0 {
		return fmt.Errorf("dataset %s: invalid dims/attrs", c.Name)
	}
	return nil
}

// GenerateFeature builds a feature dataset from cfg. Queries have empty
// GroundTruth; callers compute exact top-k' with index.BruteForce and fill
// it in (see experiments.FillGroundTruth).
func GenerateFeature(cfg FeatureConfig) (*Raw, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	raw := &Raw{
		Name:       cfg.Name,
		M:          2,
		ContentDim: cfg.ContentDim,
		AttrDim:    cfg.AttrDim,
		Objects:    make([]RawObject, cfg.NumObjects),
		Queries:    make([]RawQuery, cfg.NumQueries),
	}

	attrs := make([][]float32, cfg.NumAttrs)
	for i := range attrs {
		attrs[i] = vec.RandUnit(rng, cfg.AttrDim)
	}
	var contents [][]float32
	if cfg.ContentClusters > 0 {
		contents = make([][]float32, cfg.ContentClusters)
		for i := range contents {
			contents[i] = vec.RandUnit(rng, cfg.ContentDim)
		}
	}

	drawContent := func() []float32 {
		if contents == nil {
			return vec.RandUnit(rng, cfg.ContentDim)
		}
		return vec.AddGaussianNoise(rng, contents[rng.Intn(len(contents))], cfg.ContentJitter)
	}
	drawAttr := func() []float32 {
		return vec.AddGaussianNoise(rng, attrs[rng.Intn(len(attrs))], cfg.AttrJitter)
	}

	for i := range raw.Objects {
		raw.Objects[i] = RawObject{Latents: [][]float32{drawContent(), drawAttr()}}
	}
	for i := range raw.Queries {
		content := drawContent()
		raw.Queries[i] = RawQuery{
			Latents:  [][]float32{content, drawAttr()},
			Composed: content,
		}
	}
	return raw, nil
}
