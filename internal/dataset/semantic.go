package dataset

import (
	"fmt"
	"math/rand"

	"must/internal/vec"
)

// SemanticConfig parameterizes the semantic dataset generator, which
// produces the CelebA / MIT-States / Shopping / MS-COCO / CelebA+
// analogues.
//
// Modality layout of the generated objects and queries:
//
//	0                     target content (image)
//	1                     attribute (text)
//	2 (if SecondContent)  second content (the MS-COCO second image)
//	then ContentViews     extra views of the content latent (CelebA+'s
//	                      additional image modalities, distinguished only
//	                      by the encoder applied to them)
type SemanticConfig struct {
	// Name labels the dataset.
	Name string
	// Seed drives all randomness; equal configs generate equal datasets.
	Seed int64
	// NumObjects and NumQueries size the object set and workload.
	// NumObjects must be at least NumQueries*(1+RefDistractors).
	NumObjects, NumQueries int
	// ContentDim and AttrDim are the latent dimensions.
	ContentDim, AttrDim int
	// NumAttrs is the number of attribute clusters (MIT-States
	// adjectives, CelebA attribute combinations, ...). Each object's
	// attribute latent is a jittered cluster center.
	NumAttrs int
	// AttrJitter is the noise-to-signal ratio of per-object attribute
	// jitter around the cluster center.
	AttrJitter float64
	// ComposeAlpha is the modification strength: the composed latent is
	// normalize(ref + ComposeAlpha·dir(attr)) — how far the auxiliary
	// modification moves the target content.
	ComposeAlpha float64
	// RefDistractors is the number of planted objects per query that are
	// near the query's reference content but carry a different attribute
	// (the e/f-style confusers of Fig. 3).
	RefDistractors int
	// RefDistractorNoise is the noise-to-signal ratio of those
	// distractors' content latents around the reference.
	RefDistractorNoise float64
	// SecondContent adds the MS-COCO-style second content modality.
	SecondContent bool
	// SecondAlpha is the composition strength of the second content.
	SecondAlpha float64
	// ContentViews adds that many extra modalities sharing the content
	// latent (CelebA+).
	ContentViews int
	// ContentClusters, when positive, draws reference and background
	// contents from that many clusters instead of uniformly — faces and
	// products are clumpy, and the cluster-mates are the natural
	// confusers that make MSTM hard (Fig. 3's b–f candidates).
	ContentClusters int
	// ContentJitter is the noise-to-signal ratio around content cluster
	// centers.
	ContentJitter float64
	// TargetNoise displaces the ground-truth object's content from the
	// exact composed latent: the true answer matches the composition only
	// semantically, not geometrically. High values make the dataset hard
	// (MS-COCO's Recall@10 ≈ 0.09 regime).
	TargetNoise float64
}

func (c SemanticConfig) validate() error {
	if c.NumObjects <= 0 || c.NumQueries <= 0 {
		return fmt.Errorf("dataset %s: need positive objects and queries", c.Name)
	}
	planted := c.NumQueries * (1 + c.RefDistractors)
	if c.NumObjects < planted {
		return fmt.Errorf("dataset %s: %d objects cannot hold %d planted objects", c.Name, c.NumObjects, planted)
	}
	if c.ContentDim <= 0 || c.AttrDim <= 0 || c.NumAttrs <= 0 {
		return fmt.Errorf("dataset %s: invalid dims/attrs", c.Name)
	}
	return nil
}

// modalities returns the number of modalities implied by the config.
func (c SemanticConfig) modalities() int {
	m := 2
	if c.SecondContent {
		m++
	}
	return m + c.ContentViews
}

// GenerateSemantic builds a semantic dataset from cfg. Objects are laid
// out as: for each query, first its ground-truth object then its reference
// distractors; remaining slots are background objects with random content
// and clustered attributes.
func GenerateSemantic(cfg SemanticConfig) (*Raw, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := cfg.modalities()
	raw := &Raw{
		Name:       cfg.Name,
		M:          m,
		ContentDim: cfg.ContentDim,
		AttrDim:    cfg.AttrDim,
		Objects:    make([]RawObject, 0, cfg.NumObjects),
		Queries:    make([]RawQuery, 0, cfg.NumQueries),
	}

	// Attribute cluster centers and the fixed map from attribute latent
	// space into content latent space (the "direction" an attribute
	// modification moves content in).
	attrs := make([][]float32, cfg.NumAttrs)
	for i := range attrs {
		attrs[i] = vec.RandUnit(rng, cfg.AttrDim)
	}
	attrToContent := vec.RandProjection(rng, cfg.ContentDim, cfg.AttrDim)

	// Optional content clusters (clumpy corpora).
	var contentCenters [][]float32
	if cfg.ContentClusters > 0 {
		contentCenters = make([][]float32, cfg.ContentClusters)
		for i := range contentCenters {
			contentCenters[i] = vec.RandUnit(rng, cfg.ContentDim)
		}
	}
	drawContent := func() []float32 {
		if contentCenters == nil {
			return vec.RandUnit(rng, cfg.ContentDim)
		}
		return vec.AddGaussianNoise(rng, contentCenters[rng.Intn(len(contentCenters))], cfg.ContentJitter)
	}

	contentDir := func(attr []float32) []float32 {
		return vec.ApplyProjection(attrToContent, cfg.ContentDim, attr)
	}
	compose := func(ref, attr, second []float32) []float32 {
		out := vec.Clone(ref)
		vec.AXPY(float32(cfg.ComposeAlpha), contentDir(attr), out)
		if second != nil {
			vec.AXPY(float32(cfg.SecondAlpha), second, out)
		}
		return vec.Normalize(out)
	}
	buildObject := func(content, attr, second []float32) RawObject {
		lat := make([][]float32, 0, m)
		lat = append(lat, content, attr)
		if cfg.SecondContent {
			lat = append(lat, second)
		}
		for v := 0; v < cfg.ContentViews; v++ {
			lat = append(lat, content)
		}
		return RawObject{Latents: lat}
	}

	for qi := 0; qi < cfg.NumQueries; qi++ {
		ref := drawContent()
		cluster := rng.Intn(cfg.NumAttrs)
		attrObj := vec.AddGaussianNoise(rng, attrs[cluster], cfg.AttrJitter)
		attrQuery := vec.AddGaussianNoise(rng, attrs[cluster], cfg.AttrJitter)

		var secondObj, secondQuery []float32
		if cfg.SecondContent {
			secondQuery = drawContent()
			secondObj = vec.AddGaussianNoise(rng, secondQuery, cfg.AttrJitter)
		}

		// Ground-truth object: composed content + the query's attribute.
		gtID := len(raw.Objects)
		gtContent := compose(ref, attrObj, secondObj)
		if cfg.TargetNoise > 0 {
			gtContent = vec.AddGaussianNoise(rng, gtContent, cfg.TargetNoise)
		}
		raw.Objects = append(raw.Objects, buildObject(gtContent, attrObj, secondObj))

		// Reference distractors: near the reference, wrong attribute.
		for d := 0; d < cfg.RefDistractors; d++ {
			wrong := cluster
			for wrong == cluster && cfg.NumAttrs > 1 {
				wrong = rng.Intn(cfg.NumAttrs)
			}
			content := vec.AddGaussianNoise(rng, ref, cfg.RefDistractorNoise)
			var second []float32
			if cfg.SecondContent {
				second = drawContent()
			}
			raw.Objects = append(raw.Objects, buildObject(content, vec.AddGaussianNoise(rng, attrs[wrong], cfg.AttrJitter), second))
		}

		// Query latents.
		qlat := make([][]float32, 0, m)
		qlat = append(qlat, ref, attrQuery)
		if cfg.SecondContent {
			qlat = append(qlat, secondQuery)
		}
		for v := 0; v < cfg.ContentViews; v++ {
			qlat = append(qlat, ref)
		}
		raw.Queries = append(raw.Queries, RawQuery{
			Latents:     qlat,
			Composed:    compose(ref, attrQuery, secondQuery),
			GroundTruth: []int{gtID},
		})
	}

	// Background objects: random content, clustered attributes.
	for len(raw.Objects) < cfg.NumObjects {
		content := drawContent()
		attr := vec.AddGaussianNoise(rng, attrs[rng.Intn(cfg.NumAttrs)], cfg.AttrJitter)
		var second []float32
		if cfg.SecondContent {
			second = drawContent()
		}
		raw.Objects = append(raw.Objects, buildObject(content, attr, second))
	}
	return raw, nil
}
