package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// statusRecorder captures the status code a handler wrote so the
// instrumentation wrapper can label its counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// endpoint wraps a handler with the serving-tier middleware stack:
// method filtering, drain refusal, admission control (429 +
// Retry-After when MaxInFlight requests are already admitted), the
// in-flight gauge, and per-endpoint request/latency metrics. name is
// the metrics label; admit selects whether the endpoint competes for
// admission slots (observability endpoints never do — an overloaded
// server must still answer /healthz and /metrics).
func (s *Server) endpoint(name, method string, admit bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			s.metrics.ObserveRequest(name, rec.code, time.Since(start).Seconds())
		}()
		if r.Method != method {
			rec.Header().Set("Allow", method)
			writeError(rec, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		if s.draining.Load() {
			writeError(rec, http.StatusServiceUnavailable, "server draining")
			return
		}
		if admit {
			select {
			case s.sem <- struct{}{}:
				s.metrics.inFlight.Add(1)
				defer func() {
					s.metrics.inFlight.Add(-1)
					<-s.sem
				}()
			default:
				// Admission control: shedding beats queueing — the client
				// learns in microseconds that it should back off, instead
				// of joining an unbounded queue that grows p99 for
				// everyone.
				s.metrics.rejected.Add(1)
				rec.Header().Set("Retry-After", "1")
				writeError(rec, http.StatusTooManyRequests, "too many in-flight requests")
				return
			}
		}
		h(rec, r)
	})
}

// maxBodyBytes bounds request bodies (a 1M-object bulk insert belongs
// in the bulk-load CLI, not one HTTP request).
const maxBodyBytes = 32 << 20

// decodeJSON strictly decodes one JSON document from the request body:
// unknown fields and trailing garbage are errors, so client typos fail
// loudly instead of silently searching with defaults.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errTrailingBody
	}
	return nil
}

var errTrailingBody = errors.New("request body has trailing data after the JSON document")

// writeError emits the uniform JSON error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}

// writeJSON emits a 200 JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
