package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// statusRecorder captures the status code a handler wrote so the
// instrumentation wrapper can label its counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// admitClass selects which in-flight budget an endpoint competes for.
// Reads and writes are admitted separately so a write flood is shed
// without costing search admission (and vice versa); observability
// endpoints never compete — an overloaded server must still answer
// /healthz and /metrics.
type admitClass int

const (
	admitNone admitClass = iota
	admitRead
	admitWrite
)

// endpoint wraps a handler with the serving-tier middleware stack:
// method filtering, drain refusal, per-class admission control (429 +
// Retry-After when the class's in-flight budget is exhausted), the
// in-flight gauge, and per-endpoint request/latency metrics. name is
// the metrics label.
func (s *Server) endpoint(name, method string, class admitClass, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			s.metrics.ObserveRequest(name, rec.code, time.Since(start).Seconds())
		}()
		if r.Method != method {
			rec.Header().Set("Allow", method)
			writeError(rec, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		if s.draining.Load() {
			writeError(rec, http.StatusServiceUnavailable, "server draining")
			return
		}
		if class != admitNone {
			sem := s.sem
			what := "requests"
			if class == admitWrite {
				sem = s.wsem
				what = "writes"
			}
			select {
			case sem <- struct{}{}:
				s.metrics.inFlight.Add(1)
				defer func() {
					s.metrics.inFlight.Add(-1)
					<-sem
				}()
			default:
				// Admission control: shedding beats queueing — the client
				// learns in microseconds that it should back off, instead
				// of joining an unbounded queue that grows p99 for
				// everyone.
				s.metrics.rejected.Add(1)
				if class == admitWrite {
					s.metrics.writesShed.Add(1)
				}
				rec.Header().Set("Retry-After", "1")
				writeError(rec, http.StatusTooManyRequests, "too many in-flight "+what)
				return
			}
		}
		h(rec, r)
	})
}

// maxBodyBytes bounds request bodies (a 1M-object bulk insert belongs
// in the bulk-load CLI, not one HTTP request).
const maxBodyBytes = 32 << 20

// decodeJSON strictly decodes one JSON document from the request body:
// unknown fields and trailing garbage are errors, so client typos fail
// loudly instead of silently searching with defaults.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errTrailingBody
	}
	return nil
}

var errTrailingBody = errors.New("request body has trailing data after the JSON document")

// writeError emits the uniform JSON error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}

// writeJSON emits a 200 JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
