package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"must"
)

// benchFixture is built once and shared by every sub-benchmark so graph
// construction does not pollute timings.
var (
	benchOnce    sync.Once
	benchEng     *must.Engine
	benchQueries []must.Query
)

func benchSetup(b *testing.B) (*must.Engine, []must.Query) {
	b.Helper()
	benchOnce.Do(func() {
		benchEng, benchQueries, _ = testEngine(b, 2000)
	})
	return benchEng, benchQueries
}

// BenchmarkServePipeline measures the serving hot path at high offered
// concurrency: direct is one engine call per request (the -no-batch
// daemon mode); batched coalesces concurrent requests through the
// dynamic batcher exactly as mustd serves them. ns/op is per served
// query.
func BenchmarkServePipeline(b *testing.B) {
	eng, queries := benchSetup(b)

	b.Run("direct", func(b *testing.B) {
		b.SetParallelism(64)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				q := queries[i%len(queries)]
				i++
				if _, err := eng.Search(context.Background(), q); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})

	b.Run("batched", func(b *testing.B) {
		bat := newBatcher(eng, 64, time.Millisecond, 0, nil, nil)
		defer bat.Close()
		b.SetParallelism(64)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				q := queries[i%len(queries)]
				i++
				if _, _, err := bat.Search(context.Background(), q); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}
