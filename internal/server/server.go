package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"must"
)

// Config tunes the serving tier; the zero value gets production-shaped
// defaults (batching on, 64×1ms coalescing, 4096-entry cache, 256
// in-flight requests, 2s default / 30s max per-request timeout).
type Config struct {
	// MaxBatch is the largest coalesced engine batch (default 64).
	MaxBatch int
	// BatchDelay is the longest a request waits for companions before
	// its batch dispatches anyway (default 1ms).
	BatchDelay time.Duration
	// BatchWorkers bounds the engine workers per batch (0 = GOMAXPROCS).
	BatchWorkers int
	// DisableBatching serves every search with a direct engine call —
	// the per-request dispatch path the load driver compares against.
	DisableBatching bool
	// CacheSize is the result-cache capacity in responses (default
	// 4096; negative disables the cache).
	CacheSize int
	// MaxInFlight bounds admitted read requests (search); excess get
	// 429 + Retry-After (default 256).
	MaxInFlight int
	// MaxInFlightWrites bounds admitted write requests (insert, delete,
	// rebuild) on a separate budget, so a write flood is shed without
	// costing search admission — and vice versa (default 64).
	MaxInFlightWrites int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 2s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeout_ms (default 30s).
	MaxTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = time.Millisecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.MaxInFlightWrites <= 0 {
		c.MaxInFlightWrites = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	return c
}

// Server is the HTTP serving tier over a must.Service (a single Engine
// or a ShardedEngine). Create with
// New, mount Handler on an http.Server, and Close after draining.
type Server struct {
	eng     must.Service
	cfg     Config
	metrics *Metrics
	cache   *resultCache
	batcher *batcher
	mux     *http.ServeMux
	sem     chan struct{} // read admission (search)
	wsem    chan struct{} // write admission (insert, delete, rebuild)

	// maint, when attached, surfaces background-maintenance counters in
	// /v1/stats and /metrics; the loop itself runs in the daemon.
	maint *must.Maintainer

	draining atomic.Bool

	// rebuildMu serializes /v1/rebuild so two concurrent requests don't
	// race Build vs Rebuild (the engine would reject one with a
	// confusing error).
	rebuildMu sync.Mutex

	byName map[string]int
	schema must.Schema
}

// New assembles a Server over an engine (which may be empty and
// unbuilt: inserts accumulate and /v1/rebuild triggers the first
// build).
func New(eng must.Service, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		eng:     eng,
		cfg:     cfg,
		metrics: NewMetrics(),
		cache:   newResultCache(cfg.CacheSize),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		wsem:    make(chan struct{}, cfg.MaxInFlightWrites),
		schema:  eng.Schema(),
		byName:  make(map[string]int),
	}
	for i, m := range s.schema {
		s.byName[m.Name] = i
	}
	if !cfg.DisableBatching {
		s.batcher = newBatcher(eng, cfg.MaxBatch, cfg.BatchDelay, cfg.BatchWorkers, s.metrics.ObserveBatch, s.metrics.ObserveBatchPanic)
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/search", s.endpoint("search", http.MethodPost, admitRead, s.handleSearch))
	mux.Handle("/v1/insert", s.endpoint("insert", http.MethodPost, admitWrite, s.handleInsert))
	mux.Handle("/v1/delete", s.endpoint("delete", http.MethodPost, admitWrite, s.handleDelete))
	mux.Handle("/v1/rebuild", s.endpoint("rebuild", http.MethodPost, admitWrite, s.handleRebuild))
	mux.Handle("/v1/stats", s.endpoint("stats", http.MethodGet, admitNone, s.handleStats))
	mux.Handle("/healthz", http.HandlerFunc(s.handleHealthz))
	mux.Handle("/metrics", s.endpoint("metrics", http.MethodGet, admitNone, s.handleMetrics))
	s.mux = mux
	return s
}

// Handler returns the route multiplexer to mount on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the registry (the daemon's snapshot loop and tests
// read counters through it).
func (s *Server) Metrics() *Metrics { return s.metrics }

// AttachMaintainer surfaces a background maintainer's counters in
// /v1/stats and /metrics. Call before serving; the maintainer's
// lifecycle (Close) stays with the caller.
func (s *Server) AttachMaintainer(m *must.Maintainer) { s.maint = m }

// StartDraining flips the server into drain mode: /healthz turns 503 so
// load balancers stop routing here, and every new API request is
// refused; requests already admitted run to completion. Call before
// http.Server.Shutdown.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Close stops the batcher after serving everything it already
// accepted. Call after http.Server.Shutdown has drained the handlers.
func (s *Server) Close() {
	if s.batcher != nil {
		s.batcher.Close()
	}
}

// validateSearch checks a request against the schema so malformed
// requests fail 400 deterministically before touching the engine.
func (s *Server) validateSearch(req *SearchRequest) error {
	if len(req.Vectors) == 0 {
		return fmt.Errorf("vectors is empty")
	}
	for name, v := range req.Vectors {
		i, ok := s.byName[name]
		if !ok {
			return fmt.Errorf("unknown modality %q (schema has %v)", name, s.schema.Names())
		}
		if len(v) != s.schema[i].Dim {
			return fmt.Errorf("modality %q has dim %d, expects %d", name, len(v), s.schema[i].Dim)
		}
	}
	for name := range req.Weights {
		if _, ok := s.byName[name]; !ok {
			return fmt.Errorf("weight override names unknown modality %q", name)
		}
	}
	if req.K < 0 || req.L < 0 || req.Patience < 0 || req.TimeoutMS < 0 {
		return fmt.Errorf("k, l, patience, timeout_ms must be non-negative")
	}
	return nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SearchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.validateSearch(&req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	q := must.Query{
		Vectors:             req.Vectors,
		K:                   req.K,
		L:                   req.L,
		Weights:             req.Weights,
		Patience:            req.Patience,
		DisableOptimization: req.DisableOptimization,
	}

	// The epoch is read before the search so a mutation that lands
	// mid-flight stamps the cached entry stale, never fresh.
	key := cacheKey(&req)
	epoch := s.eng.Epoch()
	if !req.NoCache {
		if resp, ok := s.cache.Get(key, epoch); ok {
			writeJSON(w, s.searchResponse(resp, start, 0, true))
			return
		}
	}

	var (
		resp *must.Response
		size int
		err  error
	)
	if s.batcher != nil {
		resp, size, err = s.batcher.Search(ctx, q)
	} else {
		resp, err = s.eng.Search(ctx, q)
		if err == nil {
			size = 1
		}
	}
	if err != nil {
		s.writeSearchError(w, err)
		return
	}
	if resp.Partial {
		// A degraded answer must not outlive the sick shard that caused
		// it: serving it from the cache would turn a transient blip into
		// sticky recall loss for the epoch.
		s.metrics.ObservePartial()
	} else {
		s.cache.Put(key, epoch, resp)
	}
	writeJSON(w, s.searchResponse(resp, start, size, false))
}

// searchResponse converts an engine response into the wire shape.
func (s *Server) searchResponse(resp *must.Response, start time.Time, batchSize int, cached bool) *SearchResponse {
	matches := make([]SearchMatch, len(resp.Matches))
	for i, m := range resp.Matches {
		matches[i] = SearchMatch{ID: m.ID, Similarity: m.Similarity, ByModality: m.ByModality}
	}
	return &SearchResponse{
		Matches:      matches,
		QueryTimeMS:  float64(time.Since(start)) / float64(time.Millisecond),
		EngineTimeMS: float64(resp.Latency) / float64(time.Millisecond),
		Cached:       cached,
		BatchSize:    batchSize,
		Partial:      resp.Partial,
		ShardErrors:  resp.ShardErrors,
		Stats: SearchWork{
			FullEvals:    resp.Stats.FullEvals,
			PartialSkips: resp.Stats.PartialSkips,
			Hops:         resp.Stats.Hops,
		},
	}
}

func (s *Server) writeSearchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, must.ErrNotBuilt):
		writeError(w, http.StatusConflict, "index not built: insert objects and POST /v1/rebuild")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "search timed out")
	case errors.Is(err, context.Canceled):
		// The client went away; the code is moot but keep the counter
		// honest with the nginx convention for client-closed requests.
		writeError(w, 499, "client cancelled")
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "server draining")
	case errors.Is(err, must.ErrAllQuarantined):
		// Transient: breakers re-admit a half-open probe within the probe
		// interval, and maintenance rebuilds quarantined shards.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "all shards quarantined; retry shortly")
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "batch queue full")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	objects := req.Objects
	if req.Vectors != nil {
		objects = append([]map[string][]float32{req.Vectors}, objects...)
	}
	if len(objects) == 0 {
		writeError(w, http.StatusBadRequest, "no objects to insert")
		return
	}
	ids := make([]int64, 0, len(objects))
	for i, o := range objects {
		id, err := s.eng.Insert(o)
		if err != nil {
			if errors.Is(err, must.ErrOverloaded) {
				// Engine backpressure: the write budget (or maintenance
				// debt) is exhausted. Inserts before the refusal stay
				// inserted; tell the client so it can retry just the rest.
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests,
					fmt.Sprintf("overloaded, write shed (inserted %d of %d; retry the rest)", len(ids), len(objects)))
				return
			}
			// Inserts before the failure stay inserted; report both so
			// the client can reconcile.
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("object %d: %v (inserted %d of %d)", i, err, len(ids), len(objects)))
			return
		}
		ids = append(ids, id)
	}
	writeJSON(w, InsertResponse{IDs: ids})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "no ids to delete")
		return
	}
	deleted := 0
	for _, id := range req.IDs {
		if err := s.eng.Delete(id); err != nil {
			if errors.Is(err, must.ErrOverloaded) {
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests,
					fmt.Sprintf("overloaded, write shed (deleted %d of %d; retry the rest)", deleted, len(req.IDs)))
				return
			}
			code := http.StatusNotFound
			if errors.Is(err, must.ErrNotBuilt) {
				code = http.StatusConflict
			}
			writeError(w, code, fmt.Sprintf("id %d: %v (deleted %d of %d)", id, err, deleted, len(req.IDs)))
			return
		}
		deleted++
	}
	writeJSON(w, DeleteResponse{Deleted: deleted})
}

func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	start := time.Now()
	_, statsErr := s.eng.Stats()
	built := statsErr == nil
	var err error
	if built {
		err = s.eng.Rebuild()
	} else {
		err = s.eng.Build()
	}
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, RebuildResponse{
		Built:   !built,
		Objects: s.eng.Len(),
		TookMS:  float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.eng.Stats()
	built := err == nil
	hits, misses := s.cache.Counters()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	batches, batched := s.metrics.BatchCounters()
	avg := 0.0
	if batches > 0 {
		avg = float64(batched) / float64(batches)
	}
	schema := make([]ModalityInfo, len(s.schema))
	for i, m := range s.schema {
		schema[i] = ModalityInfo{Name: m.Name, Dim: m.Dim}
	}
	// ShardRebuilder catches both a bare ShardedEngine and one behind a
	// durable wrapper; a single engine reports ShardCount 1 and no shard
	// block.
	var shards []must.ShardInfo
	if sr, ok := s.eng.(must.ShardRebuilder); ok && sr.ShardCount() > 1 {
		shards = sr.ShardStats()
	}
	var maintStats *must.MaintStats
	if s.maint != nil {
		st := s.maint.Stats()
		maintStats = &st
	}
	writeJSON(w, StatsResponse{
		Schema:  schema,
		Objects: s.eng.Len(),
		Deleted: s.eng.Deleted(),
		Epoch:   s.eng.Epoch(),
		Built:   built,
		Engine:  st,
		Server: ServerStats{
			CacheHits:      hits,
			CacheMisses:    misses,
			CacheHitRatio:  ratio,
			CacheEntries:   s.cache.Len(),
			Batches:        batches,
			BatchedQueries: batched,
			AvgBatchSize:   avg,
			InFlight:       s.metrics.inFlight.Load(),
			Rejected:       s.metrics.rejected.Load(),
			PartialResults: s.metrics.partialResults.Load(),
			BatchPanics:    s.metrics.batchPanics.Load(),
			WritesShed:     s.metrics.writesShed.Load() + s.eng.WritesShed(),
		},
		Shards:      shards,
		Maintenance: maintStats,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w, s.eng, s.cache, s.maint)
}
