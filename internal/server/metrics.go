package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"must"
)

// Metrics is a dependency-free Prometheus registry scoped to what mustd
// exports: request counters by endpoint and status code, latency
// histograms by endpoint, the batch-size histogram, cache and admission
// counters, and engine gauges sampled at scrape time. All increments
// are atomic; the only lock guards lazy counter creation.
type Metrics struct {
	mu       sync.Mutex
	requests map[requestKey]*atomic.Uint64
	latency  map[string]*histogram

	batchSize      *histogram
	batches        atomic.Uint64
	batchedQueries atomic.Uint64

	inFlight atomic.Int64
	rejected atomic.Uint64

	// writesShed counts write requests refused by overload protection:
	// write-class admission rejections plus engine-level ErrOverloaded
	// refusals mapped to 429.
	writesShed atomic.Uint64

	// partialResults counts searches answered degraded (some shards
	// failed or timed out); batchPanics counts engine panics recovered
	// in the batcher's dispatch path.
	partialResults atomic.Uint64
	batchPanics    atomic.Uint64
}

type requestKey struct {
	endpoint string
	code     int
}

// latencyBuckets are upper bounds in seconds, 100µs to ~10s.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// batchBuckets are upper bounds on the coalesced batch size.
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// histogram is a fixed-bucket Prometheus histogram with atomic counters
// (sum is stored as float64 bits updated by CAS).
type histogram struct {
	bounds  []float64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds))}
}

func (h *histogram) observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (h *histogram) sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:  make(map[requestKey]*atomic.Uint64),
		latency:   make(map[string]*histogram),
		batchSize: newHistogram(batchBuckets),
	}
}

// ObserveRequest records one finished request.
func (m *Metrics) ObserveRequest(endpoint string, code int, seconds float64) {
	m.requestCounter(endpoint, code).Add(1)
	m.latencyHistogram(endpoint).observe(seconds)
}

// ObserveBatch records one dispatched engine batch of the given size.
func (m *Metrics) ObserveBatch(size int) {
	m.batches.Add(1)
	m.batchedQueries.Add(uint64(size))
	m.batchSize.observe(float64(size))
}

func (m *Metrics) requestCounter(endpoint string, code int) *atomic.Uint64 {
	key := requestKey{endpoint, code}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.requests[key]
	if c == nil {
		c = &atomic.Uint64{}
		m.requests[key] = c
	}
	return c
}

func (m *Metrics) latencyHistogram(endpoint string) *histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[endpoint]
	if h == nil {
		h = newHistogram(latencyBuckets)
		m.latency[endpoint] = h
	}
	return h
}

// BatchCounters returns dispatched batch totals (batches, queries).
func (m *Metrics) BatchCounters() (uint64, uint64) {
	return m.batches.Load(), m.batchedQueries.Load()
}

// ObservePartial records one search served with partial (degraded)
// results.
func (m *Metrics) ObservePartial() { m.partialResults.Add(1) }

// ObserveBatchPanic records one recovered panic in batch dispatch.
func (m *Metrics) ObserveBatchPanic() { m.batchPanics.Add(1) }

// ObserveWriteShed records one write refused by overload protection.
func (m *Metrics) ObserveWriteShed() { m.writesShed.Add(1) }

// WritesShed returns the shed-write total (server-side refusals only;
// the engine keeps its own count for direct callers).
func (m *Metrics) WritesShed() uint64 { return m.writesShed.Load() }

// WritePrometheus renders the registry — plus cache counters, engine
// gauges, and maintenance counters sampled now — in Prometheus text
// exposition format. maint may be nil (maintenance disabled).
func (m *Metrics) WritePrometheus(w io.Writer, eng must.Service, cache *resultCache, maint *must.Maintainer) {
	// Request counters, sorted for deterministic scrapes.
	m.mu.Lock()
	reqKeys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	latKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		latKeys = append(latKeys, k)
	}
	m.mu.Unlock()
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].endpoint != reqKeys[j].endpoint {
			return reqKeys[i].endpoint < reqKeys[j].endpoint
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	sort.Strings(latKeys)

	fmt.Fprintln(w, "# HELP mustd_requests_total Requests served, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE mustd_requests_total counter")
	for _, k := range reqKeys {
		fmt.Fprintf(w, "mustd_requests_total{endpoint=%q,code=\"%d\"} %d\n",
			k.endpoint, k.code, m.requestCounter(k.endpoint, k.code).Load())
	}

	fmt.Fprintln(w, "# HELP mustd_request_seconds Request latency, by endpoint.")
	fmt.Fprintln(w, "# TYPE mustd_request_seconds histogram")
	for _, ep := range latKeys {
		writeHistogram(w, "mustd_request_seconds", fmt.Sprintf("endpoint=%q", ep), m.latencyHistogram(ep))
	}

	fmt.Fprintln(w, "# HELP mustd_batch_size Coalesced queries per dispatched engine batch.")
	fmt.Fprintln(w, "# TYPE mustd_batch_size histogram")
	writeHistogram(w, "mustd_batch_size", "", m.batchSize)

	hits, misses := cache.Counters()
	fmt.Fprintln(w, "# HELP mustd_cache_hits_total Result-cache hits.")
	fmt.Fprintln(w, "# TYPE mustd_cache_hits_total counter")
	fmt.Fprintf(w, "mustd_cache_hits_total %d\n", hits)
	fmt.Fprintln(w, "# HELP mustd_cache_misses_total Result-cache misses (stale-epoch evictions included).")
	fmt.Fprintln(w, "# TYPE mustd_cache_misses_total counter")
	fmt.Fprintf(w, "mustd_cache_misses_total %d\n", misses)
	fmt.Fprintln(w, "# HELP mustd_cache_entries Live result-cache entries.")
	fmt.Fprintln(w, "# TYPE mustd_cache_entries gauge")
	fmt.Fprintf(w, "mustd_cache_entries %d\n", cache.Len())

	fmt.Fprintln(w, "# HELP mustd_in_flight_requests Requests currently admitted.")
	fmt.Fprintln(w, "# TYPE mustd_in_flight_requests gauge")
	fmt.Fprintf(w, "mustd_in_flight_requests %d\n", m.inFlight.Load())
	fmt.Fprintln(w, "# HELP mustd_rejected_total Requests rejected by admission control (429).")
	fmt.Fprintln(w, "# TYPE mustd_rejected_total counter")
	fmt.Fprintf(w, "mustd_rejected_total %d\n", m.rejected.Load())

	fmt.Fprintln(w, "# HELP must_partial_results_total Searches answered degraded: some shards failed or missed the deadline.")
	fmt.Fprintln(w, "# TYPE must_partial_results_total counter")
	fmt.Fprintf(w, "must_partial_results_total %d\n", m.partialResults.Load())
	fmt.Fprintln(w, "# HELP must_batch_panics_total Engine panics recovered in batch dispatch (each fails only its own batch).")
	fmt.Fprintln(w, "# TYPE must_batch_panics_total counter")
	fmt.Fprintf(w, "must_batch_panics_total %d\n", m.batchPanics.Load())

	// Self-healing counters: shed writes combine server-side admission
	// rejections with engine-level ErrOverloaded refusals, so one series
	// answers "is backpressure firing".
	fmt.Fprintln(w, "# HELP must_writes_shed_total Writes refused by overload protection (429 + Retry-After).")
	fmt.Fprintln(w, "# TYPE must_writes_shed_total counter")
	fmt.Fprintf(w, "must_writes_shed_total %d\n", m.writesShed.Load()+eng.WritesShed())
	if maint != nil {
		st := maint.Stats()
		fmt.Fprintln(w, "# HELP must_maintenance_rebuilds_total Background maintenance rebuilds completed.")
		fmt.Fprintln(w, "# TYPE must_maintenance_rebuilds_total counter")
		fmt.Fprintf(w, "must_maintenance_rebuilds_total %d\n", st.Rebuilds)
		fmt.Fprintln(w, "# HELP must_maintenance_failures_total Background maintenance rebuilds that failed.")
		fmt.Fprintln(w, "# TYPE must_maintenance_failures_total counter")
		fmt.Fprintf(w, "must_maintenance_failures_total %d\n", st.Failures)
		fmt.Fprintln(w, "# HELP must_maintenance_debt Units (shards) at or past a watermark, or quarantined, at the last sample.")
		fmt.Fprintln(w, "# TYPE must_maintenance_debt gauge")
		fmt.Fprintf(w, "must_maintenance_debt %d\n", st.Debt)
	}

	// Engine gauges, sampled at scrape time.
	fmt.Fprintln(w, "# HELP mustd_engine_objects Live (non-tombstoned) objects.")
	fmt.Fprintln(w, "# TYPE mustd_engine_objects gauge")
	fmt.Fprintf(w, "mustd_engine_objects %d\n", eng.Len())
	fmt.Fprintln(w, "# HELP mustd_engine_deleted Tombstoned objects awaiting rebuild.")
	fmt.Fprintln(w, "# TYPE mustd_engine_deleted gauge")
	fmt.Fprintf(w, "mustd_engine_deleted %d\n", eng.Deleted())
	fmt.Fprintln(w, "# HELP mustd_engine_epoch Engine mutation epoch.")
	fmt.Fprintln(w, "# TYPE mustd_engine_epoch gauge")
	fmt.Fprintf(w, "mustd_engine_epoch %d\n", eng.Epoch())
	if st, err := eng.Stats(); err == nil {
		fmt.Fprintln(w, "# HELP mustd_engine_edges Directed edges in the proximity graph.")
		fmt.Fprintln(w, "# TYPE mustd_engine_edges gauge")
		fmt.Fprintf(w, "mustd_engine_edges %d\n", st.Edges)
		fmt.Fprintln(w, "# HELP mustd_engine_graph_bytes Graph memory footprint.")
		fmt.Fprintln(w, "# TYPE mustd_engine_graph_bytes gauge")
		fmt.Fprintf(w, "mustd_engine_graph_bytes %d\n", st.SizeBytes)
		fmt.Fprintln(w, "# HELP mustd_engine_corpus_bytes Shared vector-store memory.")
		fmt.Fprintln(w, "# TYPE mustd_engine_corpus_bytes gauge")
		fmt.Fprintf(w, "mustd_engine_corpus_bytes %d\n", st.CorpusBytes)
	}
}

func writeHistogram(w io.Writer, name, labels string, h *histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep,
			strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.count.Load())
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.sum())
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	}
}
