package server

import (
	"testing"

	"must"
)

func req(seed float32) *SearchRequest {
	return &SearchRequest{
		Vectors: map[string][]float32{"image": {seed, 1, 2}, "text": {3, 4}},
		K:       5,
	}
}

func TestCacheKeyCanonical(t *testing.T) {
	// Same logical request, maps built in different insertion orders.
	a := &SearchRequest{
		Vectors: map[string][]float32{"image": {1, 2}, "text": {3}},
		Weights: map[string]float32{"image": 0.5, "text": 0.25},
		K:       7, L: 40,
	}
	b := &SearchRequest{K: 7, L: 40}
	b.Weights = map[string]float32{}
	b.Weights["text"] = 0.25
	b.Weights["image"] = 0.5
	b.Vectors = map[string][]float32{}
	b.Vectors["text"] = []float32{3}
	b.Vectors["image"] = []float32{1, 2}
	if cacheKey(a) != cacheKey(b) {
		t.Fatal("identical requests produced different keys")
	}
	// Every result-affecting parameter must change the key.
	variants := []*SearchRequest{
		{Vectors: a.Vectors, Weights: a.Weights, K: 8, L: 40},
		{Vectors: a.Vectors, Weights: a.Weights, K: 7, L: 41},
		{Vectors: a.Vectors, Weights: a.Weights, K: 7, L: 40, Patience: 3},
		{Vectors: a.Vectors, Weights: a.Weights, K: 7, L: 40, DisableOptimization: true},
		{Vectors: a.Vectors, Weights: map[string]float32{"image": 0.5}, K: 7, L: 40},
		{Vectors: map[string][]float32{"image": {1, 2}}, Weights: a.Weights, K: 7, L: 40},
		{Vectors: map[string][]float32{"image": {1, 2.5}, "text": {3}}, Weights: a.Weights, K: 7, L: 40},
	}
	base := cacheKey(a)
	seen := map[string]int{base: -1}
	for i, v := range variants {
		k := cacheKey(v)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d", i, prev)
		}
		seen[k] = i
	}
	// TimeoutMS and NoCache must NOT change the key: they alter delivery,
	// not results, and a different timeout should still hit the cache.
	c := *a
	c.TimeoutMS = 500
	c.NoCache = true
	if cacheKey(&c) != base {
		t.Error("timeout_ms/no_cache changed the cache key")
	}
}

func TestCacheHitMissAndEpochInvalidation(t *testing.T) {
	c := newResultCache(64)
	resp := &must.Response{}
	key := cacheKey(req(1))

	if _, ok := c.Get(key, 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, 1, resp)
	if got, ok := c.Get(key, 1); !ok || got != resp {
		t.Fatal("miss after put at same epoch")
	}
	// Epoch moved (insert/delete/rebuild happened): stale entry must
	// read as a miss and be evicted.
	if _, ok := c.Get(key, 2); ok {
		t.Fatal("served a stale-epoch entry")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not evicted, len=%d", c.Len())
	}
	hits, misses := c.Counters()
	if hits != 1 || misses != 2 {
		t.Fatalf("counters hits=%d misses=%d, want 1/2", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Capacity 16 across 16 shards = 1 per shard: a second distinct key
	// landing in the same shard must evict the older one.
	c := newResultCache(16)
	resp := &must.Response{}
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = cacheKey(req(float32(i)))
		c.Put(keys[i], 1, resp)
	}
	if got := c.Len(); got > 16 {
		t.Fatalf("cache grew past capacity: %d entries", got)
	}
	// The newest keys of each shard survive; at least one old key is gone.
	evicted := false
	for _, k := range keys[:100] {
		if _, ok := c.Get(k, 1); !ok {
			evicted = true
			break
		}
	}
	if !evicted {
		t.Fatal("no eviction despite 200 inserts into capacity 16")
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := newResultCache(capacity)
		key := cacheKey(req(1))
		c.Put(key, 1, &must.Response{})
		if _, ok := c.Get(key, 1); ok {
			t.Fatalf("capacity %d: disabled cache served a hit", capacity)
		}
		if c.Len() != 0 {
			t.Fatalf("capacity %d: disabled cache holds entries", capacity)
		}
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(128)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				key := cacheKey(req(float32(i % 50)))
				if _, ok := c.Get(key, uint64(i%3)); !ok {
					c.Put(key, uint64(i%3), &must.Response{})
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() > 128 {
		t.Fatalf("cache exceeded capacity under concurrency: %d", c.Len())
	}
}

func TestCacheKeyDistinctAcrossDims(t *testing.T) {
	// Guard against length-prefix confusion: ["ab"],["c"] vs ["a"],["bc"].
	a := &SearchRequest{Vectors: map[string][]float32{"ab": {1}, "c": {2}}}
	b := &SearchRequest{Vectors: map[string][]float32{"a": {1}, "bc": {2}}}
	if cacheKey(a) == cacheKey(b) {
		t.Fatal("different modality splits share a key")
	}
	for i := 0; i < 4; i++ {
		x := &SearchRequest{Vectors: map[string][]float32{"m": make([]float32, i)}}
		y := &SearchRequest{Vectors: map[string][]float32{"m": make([]float32, i+1)}}
		if cacheKey(x) == cacheKey(y) {
			t.Fatalf("dims %d and %d share a key", i, i+1)
		}
	}
}
