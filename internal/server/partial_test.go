package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"must"
)

// partialService marks every search response as degraded, standing in
// for a ShardedEngine with one sick shard.
type partialService struct {
	must.Service
}

func markPartial(out []*must.Response) {
	for _, r := range out {
		if r != nil {
			r.Partial = true
			r.ShardErrors = []must.ShardError{{Shard: 2, Err: "injected shard failure"}}
		}
	}
}

func (p *partialService) Search(ctx context.Context, q must.Query) (*must.Response, error) {
	r, err := p.Service.Search(ctx, q)
	if err == nil {
		markPartial([]*must.Response{r})
	}
	return r, err
}

func (p *partialService) SearchEach(ctx context.Context, queries []must.Query, workers int) ([]*must.Response, []error) {
	out, errs := p.Service.SearchEach(ctx, queries, workers)
	markPartial(out)
	return out, errs
}

// panickyService panics inside the engine call, as a buggy kernel or
// poisoned query would.
type panickyService struct {
	must.Service
}

func (p *panickyService) SearchEach(ctx context.Context, queries []must.Query, workers int) ([]*must.Response, []error) {
	panic("engine bug")
}

func TestServerPartialResponse(t *testing.T) {
	for _, batching := range []bool{true, false} {
		name := "batched"
		if !batching {
			name = "direct"
		}
		t.Run(name, func(t *testing.T) {
			eng, queries, _ := testEngine(t, 200)
			s := New(&partialService{eng}, Config{DisableBatching: !batching})
			ts := httptest.NewServer(s.Handler())
			defer func() { ts.Close(); s.Close() }()

			resp, data := postJSON(t, ts.URL+"/v1/search", searchBody(queries[0]))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("degraded search must still be 200, got %d %s", resp.StatusCode, data)
			}
			var sr SearchResponse
			if err := json.Unmarshal(data, &sr); err != nil {
				t.Fatal(err)
			}
			if !sr.Partial {
				t.Fatalf("partial flag not plumbed to JSON: %s", data)
			}
			if len(sr.ShardErrors) != 1 || sr.ShardErrors[0].Shard != 2 || sr.ShardErrors[0].Err != "injected shard failure" {
				t.Fatalf("shard_errors = %+v", sr.ShardErrors)
			}
			if len(sr.Matches) == 0 {
				t.Fatal("no matches in partial response")
			}

			// Partial responses must not be cached: the same request again
			// is re-answered by the engine, not the cache.
			resp2, data2 := postJSON(t, ts.URL+"/v1/search", searchBody(queries[0]))
			var sr2 SearchResponse
			if err := json.Unmarshal(data2, &sr2); err != nil {
				t.Fatal(err)
			}
			if resp2.StatusCode != http.StatusOK || sr2.Cached {
				t.Fatalf("partial response was cached (status %d, cached=%v)", resp2.StatusCode, sr2.Cached)
			}

			// The counter and stats surface both report the two degraded
			// answers.
			_, metrics := getBody(t, ts.URL+"/metrics")
			if !strings.Contains(string(metrics), "must_partial_results_total 2") {
				t.Fatalf("metrics missing must_partial_results_total 2:\n%s", metrics)
			}
			_, stats := getBody(t, ts.URL+"/v1/stats")
			var st StatsResponse
			if err := json.Unmarshal(stats, &st); err != nil {
				t.Fatal(err)
			}
			if st.Server.PartialResults != 2 {
				t.Fatalf("stats partial_results = %d, want 2", st.Server.PartialResults)
			}
		})
	}
}

func TestServerBatchPanicIs500NotCrash(t *testing.T) {
	eng, queries, _ := testEngine(t, 200)
	s := New(&panickyService{eng}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	resp, data := postJSON(t, ts.URL+"/v1/search", searchBody(queries[0]))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked batch: status %d %s, want 500", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "panic") {
		t.Fatalf("500 body %q does not mention the panic", data)
	}

	// The dispatcher survived: the daemon still answers (another 500 for
	// this engine, but over a live connection) and exports the counter.
	resp2, _ := postJSON(t, ts.URL+"/v1/search", searchBody(queries[1]))
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("second search after panic: status %d", resp2.StatusCode)
	}
	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "must_batch_panics_total 2") {
		t.Fatalf("metrics missing must_batch_panics_total 2:\n%s", metrics)
	}
	_, stats := getBody(t, ts.URL+"/v1/stats")
	var st StatsResponse
	if err := json.Unmarshal(stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Server.BatchPanics != 2 {
		t.Fatalf("stats batch_panics = %d, want 2", st.Server.BatchPanics)
	}
}
