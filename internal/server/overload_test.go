package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"must"
)

// TestEngineOverloadMapsTo429 drives engine-level backpressure through
// the HTTP surface: once maintenance debt crosses the watermark, writes
// get 429 + Retry-After while searches keep returning 200.
func TestEngineOverloadMapsTo429(t *testing.T) {
	s, ts, queries, ids := testServer(t, Config{DisableBatching: true, CacheSize: -1})
	if err := s.eng.SetAdmission(must.AdmissionOptions{DebtWatermark: 0.10}); err != nil {
		t.Fatal(err)
	}
	// Tombstone past the watermark; the shedding point lands mid-loop.
	saw429 := false
	for _, id := range ids {
		resp, _ := postJSON(t, ts.URL+"/v1/delete", DeleteRequest{IDs: []int64{id}})
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delete: unexpected status %d", resp.StatusCode)
		}
	}
	if !saw429 {
		t.Fatal("deletes never shed; debt watermark not reached")
	}
	// Inserts shed too.
	resp, body := postJSON(t, ts.URL+"/v1/insert", InsertRequest{Vectors: queries[0].Vectors})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("insert during overload: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("insert 429 without Retry-After")
	}
	// Searches are never gated by write backpressure.
	resp, body = postJSON(t, ts.URL+"/v1/search", SearchRequest{Vectors: queries[0].Vectors, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search during overload: %d %s", resp.StatusCode, body)
	}
	// The shed count is visible in /v1/stats and /metrics.
	resp, body = getBody(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Server.WritesShed == 0 {
		t.Fatal("stats writes_shed = 0 after shed writes")
	}
	_, body = getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), "must_writes_shed_total") {
		t.Fatal("metrics missing must_writes_shed_total")
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "must_writes_shed_total ") && strings.TrimPrefix(line, "must_writes_shed_total ") == "0" {
			t.Fatal("must_writes_shed_total is 0 after shed writes")
		}
	}
}

// TestWriteAdmissionSeparateFromRead fills the write-class semaphore to
// capacity and checks writes shed 429 while reads still flow — the
// budgets must be independent.
func TestWriteAdmissionSeparateFromRead(t *testing.T) {
	eng, queries, _ := testEngine(t, 200)
	s := New(eng, Config{DisableBatching: true, CacheSize: -1, MaxInFlightWrites: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	// Occupy every write slot (as in-flight writes would).
	s.wsem <- struct{}{}
	s.wsem <- struct{}{}
	defer func() { <-s.wsem; <-s.wsem }()

	resp, body := postJSON(t, ts.URL+"/v1/insert", InsertRequest{Vectors: queries[0].Vectors})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("insert with write budget exhausted: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("write-class 429 without Retry-After")
	}
	if !strings.Contains(string(body), "writes") {
		t.Fatalf("429 body %q should name the write budget", body)
	}
	if s.metrics.WritesShed() == 0 {
		t.Fatal("write-class rejection not counted in writesShed")
	}
	// Read admission is untouched: searches still 200.
	resp, body = postJSON(t, ts.URL+"/v1/search", SearchRequest{Vectors: queries[0].Vectors, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search with write budget exhausted: %d %s", resp.StatusCode, body)
	}
}

// TestStatsAndMetricsMaintenanceBlock: an attached maintainer surfaces
// in /v1/stats (maintenance block) and /metrics (rebuild counters).
func TestStatsAndMetricsMaintenanceBlock(t *testing.T) {
	eng, _, ids := testEngine(t, 200)
	s := New(eng, Config{DisableBatching: true, CacheSize: -1})
	m := must.StartMaintenance(eng, must.MaintenanceOptions{
		Interval:           2 * time.Millisecond,
		MinRebuildGap:      time.Millisecond,
		TombstoneWatermark: 0.10,
	})
	defer m.Close()
	s.AttachMaintainer(m)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	// Push past the watermark and wait for the self-heal.
	for _, id := range ids[:40] {
		if err := eng.Delete(id); err != nil && eng.Deleted() > 0 {
			break
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && (eng.Deleted() != 0 || m.Rebuilds() == 0) {
		time.Sleep(2 * time.Millisecond)
	}
	if m.Rebuilds() == 0 {
		t.Fatal("maintenance never rebuilt")
	}

	_, body := getBody(t, ts.URL+"/v1/stats")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Maintenance == nil || !st.Maintenance.Enabled || st.Maintenance.Rebuilds == 0 {
		t.Fatalf("stats maintenance block = %+v, want enabled with rebuilds > 0", st.Maintenance)
	}
	_, body = getBody(t, ts.URL+"/metrics")
	text := string(body)
	if !strings.Contains(text, "must_maintenance_rebuilds_total") {
		t.Fatal("metrics missing must_maintenance_rebuilds_total")
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "must_maintenance_rebuilds_total ") &&
			strings.TrimPrefix(line, "must_maintenance_rebuilds_total ") == "0" {
			t.Fatal("must_maintenance_rebuilds_total is 0 after a rebuild")
		}
	}
}
