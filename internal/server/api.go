// Package server is the mustd serving tier: HTTP/JSON handlers over a
// must.Engine with dynamic request batching, an epoch-invalidated
// result cache, admission control, Prometheus-text metrics, and a
// graceful drain path. It holds all daemon logic so cmd/mustd stays a
// thin flag-parsing shell and everything here is unit-testable
// in-process.
package server

import "must"

// SearchRequest is the POST /v1/search body. Vectors maps modality
// names to embeddings; modalities absent from the map are treated as
// missing (their weight is forced to zero, §VII-B of the paper).
type SearchRequest struct {
	Vectors map[string][]float32 `json:"vectors"`
	// K is the number of results (default 10).
	K int `json:"k,omitempty"`
	// L is the beam width l of Algorithm 2 (default max(4K, 100)).
	L int `json:"l,omitempty"`
	// Weights overrides the engine's per-modality weights by name for
	// this query only.
	Weights map[string]float32 `json:"weights,omitempty"`
	// Patience enables adaptive early termination after this many
	// non-improving hops (0 = full Algorithm 2).
	Patience int `json:"patience,omitempty"`
	// DisableOptimization turns off the Lemma 4 partial-IP early exit.
	DisableOptimization bool `json:"disable_optimization,omitempty"`
	// TimeoutMS bounds this request's wall-clock time; it is mapped to a
	// context deadline. 0 uses the server default; values above the
	// server maximum are clamped.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache for this request (the response
	// is still cached for later requests).
	NoCache bool `json:"no_cache,omitempty"`
}

// SearchMatch is one result row of a SearchResponse.
type SearchMatch struct {
	ID         int64   `json:"id"`
	Similarity float32 `json:"similarity"`
	// ByModality decomposes Similarity into per-modality contributions
	// ω_i²·IP_i keyed by modality name.
	ByModality map[string]float32 `json:"by_modality,omitempty"`
}

// SearchResponse is the POST /v1/search reply.
type SearchResponse struct {
	Matches []SearchMatch `json:"matches"`
	// QueryTimeMS is this request's server-side wall time in
	// milliseconds, queueing and batching included.
	QueryTimeMS float64 `json:"query_time_ms"`
	// EngineTimeMS is the engine's own routing time for the sub-query.
	EngineTimeMS float64 `json:"engine_time_ms"`
	// Cached reports the response was served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// BatchSize is how many concurrent requests rode in the coalesced
	// engine batch that served this one (1 = alone; 0 when cached or
	// batching is disabled).
	BatchSize int `json:"batch_size,omitempty"`
	// Partial reports a degraded sharded search: matches cover only the
	// shards that answered before the deadline; ShardErrors lists the
	// rest. Partial responses are never served from (or stored in) the
	// result cache.
	Partial     bool              `json:"partial,omitempty"`
	ShardErrors []must.ShardError `json:"shard_errors,omitempty"`
	// Stats reports the routing work the engine performed.
	Stats SearchWork `json:"stats"`
}

// SearchWork mirrors must.SearchStats with stable JSON names.
type SearchWork struct {
	FullEvals    int `json:"full_evals"`
	PartialSkips int `json:"partial_skips"`
	Hops         int `json:"hops"`
}

// InsertRequest is the POST /v1/insert body: one object via Vectors, or
// many via Objects (either may be used; IDs come back in order, Vectors
// first).
type InsertRequest struct {
	Vectors map[string][]float32   `json:"vectors,omitempty"`
	Objects []map[string][]float32 `json:"objects,omitempty"`
}

// InsertResponse returns the stable engine IDs of inserted objects.
type InsertResponse struct {
	IDs []int64 `json:"ids"`
}

// DeleteRequest is the POST /v1/delete body.
type DeleteRequest struct {
	IDs []int64 `json:"ids"`
}

// DeleteResponse reports how many objects were tombstoned.
type DeleteResponse struct {
	Deleted int `json:"deleted"`
}

// RebuildResponse is the POST /v1/rebuild reply.
type RebuildResponse struct {
	// Built distinguishes a first Build from a compacting Rebuild.
	Built   bool    `json:"built"`
	Objects int     `json:"objects"`
	TookMS  float64 `json:"took_ms"`
}

// ModalityInfo describes one schema modality in /v1/stats.
type ModalityInfo struct {
	Name string `json:"name"`
	Dim  int    `json:"dim"`
}

// ServerStats reports serving-tier counters in /v1/stats.
type ServerStats struct {
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	CacheEntries   int     `json:"cache_entries"`
	Batches        uint64  `json:"batches"`
	BatchedQueries uint64  `json:"batched_queries"`
	AvgBatchSize   float64 `json:"avg_batch_size"`
	InFlight       int64   `json:"in_flight"`
	Rejected       uint64  `json:"rejected"`
	// PartialResults counts searches answered degraded (some shards
	// failed or timed out); BatchPanics counts engine panics recovered
	// in batch dispatch.
	PartialResults uint64 `json:"partial_results"`
	BatchPanics    uint64 `json:"batch_panics"`
	// WritesShed counts writes refused by overload protection: write
	// admission rejections plus engine ErrOverloaded refusals, both
	// answered 429 + Retry-After.
	WritesShed uint64 `json:"writes_shed"`
}

// StatsResponse is the GET /v1/stats reply.
type StatsResponse struct {
	Schema  []ModalityInfo `json:"schema"`
	Objects int            `json:"objects"`
	Deleted int            `json:"deleted"`
	Epoch   uint64         `json:"epoch"`
	Built   bool           `json:"built"`
	// Engine is the index-layer statistics (zero value until built).
	Engine must.Stats  `json:"engine"`
	Server ServerStats `json:"server"`
	// Shards carries per-shard build progress, sizes, epochs, and health
	// when the backing service is sharded (directly or behind a durable
	// wrapper); omitted for a single engine.
	Shards []must.ShardInfo `json:"shards,omitempty"`
	// Maintenance reports the background maintenance loop; omitted when
	// maintenance is disabled.
	Maintenance *must.MaintStats `json:"maintenance,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
