package server

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"must"
)

const (
	testImgDim = 24
	testTxtDim = 12
)

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// testEngine builds a small engine; returned queries[i]'s exact top
// match is ids[i] (queries are the stored, normalized vectors).
func testEngine(t testing.TB, n int) (*must.Engine, []must.Query, []int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	eng, err := must.NewEngine(must.Schema{
		{Name: "image", Dim: testImgDim},
		{Name: "text", Dim: testTxtDim},
	}, must.EngineOptions{Build: must.BuildOptions{Gamma: 12, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := eng.Insert(must.NamedVectors{
			"image": randVec(rng, testImgDim),
			"text":  randVec(rng, testTxtDim),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	queries := make([]must.Query, 0, 64)
	ids := make([]int64, 0, 64)
	for i := 0; i < 64; i++ {
		id := int64(rng.Intn(n))
		o, err := eng.Object(id)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, must.Query{Vectors: o, K: 3})
		ids = append(ids, id)
	}
	return eng, queries, ids
}

// TestBatcherCoalesces proves concurrent requests actually share
// batches: with 32 goroutines submitting through a 1ms window, far
// fewer than 32 batches dispatch, and every request still gets its own
// right answer.
func TestBatcherCoalesces(t *testing.T) {
	eng, queries, ids := testEngine(t, 500)
	var batches, queriesServed int
	var mu sync.Mutex
	b := newBatcher(eng, 64, 2*time.Millisecond, 0, func(size int) {
		mu.Lock()
		batches++
		queriesServed += size
		mu.Unlock()
	}, nil)
	defer b.Close()

	const clients = 32
	var wg sync.WaitGroup
	sawShared := false
	var sharedMu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				i := (c + round*7) % len(queries)
				resp, size, err := b.Search(context.Background(), queries[i])
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if len(resp.Matches) == 0 || resp.Matches[0].ID != ids[i] {
					t.Errorf("client %d round %d: wrong top match %+v, want %d",
						c, round, resp.Matches, ids[i])
					return
				}
				if size > 1 {
					sharedMu.Lock()
					sawShared = true
					sharedMu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if queriesServed != clients*5 {
		t.Fatalf("served %d queries, want %d", queriesServed, clients*5)
	}
	if batches >= queriesServed {
		t.Errorf("no coalescing: %d batches for %d queries", batches, queriesServed)
	}
	if !sawShared {
		t.Error("no request ever reported riding a shared batch")
	}
}

// TestBatcherCancellationPromptAndIsolated: a request whose context is
// cancelled returns promptly, and its batch companions are unharmed.
func TestBatcherCancellation(t *testing.T) {
	eng, queries, ids := testEngine(t, 500)
	b := newBatcher(eng, 64, 50*time.Millisecond, 0, nil, nil) // long window: requests wait in the batch
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	start := time.Now()
	go func() {
		defer wg.Done()
		_, _, err := b.Search(ctx, queries[0])
		errCh <- err
	}()
	// Let the doomed request enter the batch window, then cancel it.
	time.Sleep(5 * time.Millisecond)
	cancel()
	wg.Wait()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request returned %v", err)
	}
	if waited := time.Since(start); waited > 40*time.Millisecond {
		t.Errorf("cancelled request took %v — did not return promptly", waited)
	}
	// A healthy companion submitted into the same window still succeeds.
	resp, _, err := b.Search(context.Background(), queries[1])
	if err != nil {
		t.Fatalf("companion failed after neighbor cancel: %v", err)
	}
	if resp.Matches[0].ID != ids[1] {
		t.Fatalf("companion got wrong result %+v, want %d", resp.Matches[0], ids[1])
	}
}

// TestBatcherPerQueryErrors: an invalid query in a shared batch fails
// alone.
func TestBatcherPerQueryErrors(t *testing.T) {
	eng, queries, ids := testEngine(t, 400)
	b := newBatcher(eng, 8, 20*time.Millisecond, 0, nil, nil)
	defer b.Close()

	bad := must.Query{Vectors: must.NamedVectors{"sound": {1, 2, 3}}}
	var wg sync.WaitGroup
	results := make([]error, 4)
	resps := make([]*must.Response, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := queries[i]
			if i == 2 {
				q = bad
			}
			resps[i], _, results[i] = b.Search(context.Background(), q)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if i == 2 {
			if results[i] == nil {
				t.Error("invalid query succeeded")
			}
			continue
		}
		if results[i] != nil {
			t.Errorf("valid query %d poisoned by batch neighbor: %v", i, results[i])
			continue
		}
		if resps[i].Matches[0].ID != ids[i] {
			t.Errorf("query %d: wrong match %+v, want %d", i, resps[i].Matches[0], ids[i])
		}
	}
}

// TestBatcherCloseDrains: Close answers everything already queued, and
// later submits are refused with ErrDraining.
func TestBatcherCloseDrains(t *testing.T) {
	eng, queries, _ := testEngine(t, 400)
	b := newBatcher(eng, 4, 30*time.Millisecond, 0, nil, nil)

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = b.Search(context.Background(), queries[i%len(queries)])
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // let most submits land in the queue
	b.Close()
	wg.Wait()
	for i, err := range errs {
		// Requests either completed or were refused at the door — none
		// may hang or get a non-drain error.
		if err != nil && !errors.Is(err, ErrDraining) {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if _, _, err := b.Search(context.Background(), queries[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close search returned %v, want ErrDraining", err)
	}
	b.Close() // second Close is a no-op
}
