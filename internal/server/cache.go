package server

import (
	"container/list"
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"must"
)

// resultCache is a sharded LRU over search responses, keyed on a
// canonical serialization of the query and stamped with the engine
// mutation epoch at lookup time. Invalidation is O(1) and global: any
// insert, delete, weight change, or rebuild bumps the engine epoch, so
// every entry stamped with an older epoch reads as a miss (and is
// evicted on touch). Sharding keeps the per-shard mutex off the hot
// path under concurrent load.
type resultCache struct {
	shards [cacheShards]cacheShard
	// perShard is the entry capacity of each shard (total/cacheShards,
	// min 1); 0 disables the cache entirely.
	perShard int
	hits     atomic.Uint64
	misses   atomic.Uint64
}

const cacheShards = 16

type cacheShard struct {
	mu sync.Mutex
	ll *list.List // front = most recently used
	m  map[string]*list.Element
}

type cacheEntry struct {
	key   string
	epoch uint64
	resp  *must.Response
}

// newResultCache builds a cache holding ~capacity responses across all
// shards; capacity ≤ 0 returns a disabled cache (every lookup misses).
func newResultCache(capacity int) *resultCache {
	c := &resultCache{}
	if capacity <= 0 {
		return c
	}
	c.perShard = (capacity + cacheShards - 1) / cacheShards
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].m = make(map[string]*list.Element)
	}
	return c
}

// fnv1a64 is inlined here (instead of hash/fnv) to hash the key without
// allocating a hasher per lookup.
func fnv1a64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Get returns the cached response for key if it was stored at the
// current engine epoch. Stale entries are evicted on touch. The
// returned response is shared and must be treated as read-only.
func (c *resultCache) Get(key string, epoch uint64) (*must.Response, bool) {
	if c.perShard == 0 {
		c.misses.Add(1)
		return nil, false
	}
	sh := &c.shards[fnv1a64(key)%cacheShards]
	sh.mu.Lock()
	el, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.epoch != epoch {
		sh.ll.Remove(el)
		delete(sh.m, key)
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	sh.ll.MoveToFront(el)
	sh.mu.Unlock()
	c.hits.Add(1)
	return ent.resp, true
}

// Put stores a response computed at the given engine epoch. If the
// engine has mutated since the caller read the epoch, the entry is
// stored stamped with the old epoch and the next Get evicts it — stale
// results are never served.
func (c *resultCache) Put(key string, epoch uint64, resp *must.Response) {
	if c.perShard == 0 {
		return
	}
	sh := &c.shards[fnv1a64(key)%cacheShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.epoch = epoch
		ent.resp = resp
		sh.ll.MoveToFront(el)
		return
	}
	sh.m[key] = sh.ll.PushFront(&cacheEntry{key: key, epoch: epoch, resp: resp})
	if sh.ll.Len() > c.perShard {
		lru := sh.ll.Back()
		sh.ll.Remove(lru)
		delete(sh.m, lru.Value.(*cacheEntry).key)
	}
}

// Len reports the live entry count across shards (stale entries
// included until touched).
func (c *resultCache) Len() int {
	if c.perShard == 0 {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// Counters returns the lifetime hit/miss totals.
func (c *resultCache) Counters() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// cacheKey canonicalizes a search request into a byte-exact string key:
// scalar parameters, then weight overrides sorted by name, then vectors
// sorted by name with raw IEEE-754 bits. Two requests that search
// identically always produce the same key; any parameter that changes
// results changes the key. Requests that cannot be canonicalized (none
// today) would return ok=false.
func cacheKey(req *SearchRequest) string {
	names := make([]string, 0, len(req.Vectors))
	for name := range req.Vectors {
		names = append(names, name)
	}
	sort.Strings(names)

	size := 16
	for _, name := range names {
		size += len(name) + 8 + 4*len(req.Vectors[name])
	}
	b := make([]byte, 0, size+16*len(req.Weights))
	var scratch [8]byte

	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		b = append(b, scratch[:4]...)
	}
	str := func(s string) {
		u32(uint32(len(s)))
		b = append(b, s...)
	}

	u32(uint32(req.K))
	u32(uint32(req.L))
	u32(uint32(req.Patience))
	flags := uint32(0)
	if req.DisableOptimization {
		flags = 1
	}
	u32(flags)

	wnames := make([]string, 0, len(req.Weights))
	for name := range req.Weights {
		wnames = append(wnames, name)
	}
	sort.Strings(wnames)
	u32(uint32(len(wnames)))
	for _, name := range wnames {
		str(name)
		u32(math.Float32bits(req.Weights[name]))
	}

	u32(uint32(len(names)))
	for _, name := range names {
		str(name)
		v := req.Vectors[name]
		u32(uint32(len(v)))
		for _, x := range v {
			u32(math.Float32bits(x))
		}
	}
	return string(b)
}
