package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"must"
)

// testServer stands up a Server over a built engine behind httptest.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server, []must.Query, []int64) {
	t.Helper()
	eng, queries, ids := testEngine(t, 500)
	s := New(eng, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, queries, ids
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func searchBody(q must.Query) *SearchRequest {
	return &SearchRequest{Vectors: q.Vectors, K: q.K}
}

func TestServerSearchEndToEnd(t *testing.T) {
	_, ts, queries, ids := testServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/search", searchBody(queries[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Matches) != 3 || sr.Matches[0].ID != ids[0] {
		t.Fatalf("wrong matches %+v, want top %d", sr.Matches, ids[0])
	}
	if sr.Cached {
		t.Fatal("first search reported cached")
	}
	if sr.QueryTimeMS <= 0 {
		t.Fatal("query_time_ms missing")
	}
	if len(sr.Matches[0].ByModality) != 2 {
		t.Fatalf("per-modality breakdown missing: %+v", sr.Matches[0])
	}
	if sr.Stats.Hops == 0 {
		t.Fatal("routing stats missing")
	}

	// Second identical request: served from cache.
	resp, data = postJSON(t, ts.URL+"/v1/search", searchBody(queries[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached search: %d %s", resp.StatusCode, data)
	}
	var sr2 SearchResponse
	if err := json.Unmarshal(data, &sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.Cached {
		t.Fatal("identical request missed the cache")
	}
	if sr2.Matches[0].ID != sr.Matches[0].ID {
		t.Fatal("cached response differs")
	}
}

func TestServerInsertDeleteInvalidateCache(t *testing.T) {
	_, ts, queries, _ := testServer(t, Config{})
	// Prime the cache.
	postJSON(t, ts.URL+"/v1/search", searchBody(queries[1]))
	resp, data := postJSON(t, ts.URL+"/v1/search", searchBody(queries[1]))
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Cached {
		t.Fatal("expected cache hit before mutation")
	}

	// Insert a new object: epoch bumps, cached entry must not be served.
	rng := rand.New(rand.NewSource(9))
	resp, data = postJSON(t, ts.URL+"/v1/insert", &InsertRequest{
		Vectors: map[string][]float32{
			"image": randVec(rng, testImgDim),
			"text":  randVec(rng, testTxtDim),
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, data)
	}
	var ir InsertResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	if len(ir.IDs) != 1 {
		t.Fatalf("insert ids %v", ir.IDs)
	}

	_, data = postJSON(t, ts.URL+"/v1/search", searchBody(queries[1]))
	var sr3 SearchResponse
	if err := json.Unmarshal(data, &sr3); err != nil {
		t.Fatal(err)
	}
	if sr3.Cached {
		t.Fatal("stale cache entry served after insert")
	}

	// Delete the inserted object: another epoch bump.
	resp, data = postJSON(t, ts.URL+"/v1/delete", &DeleteRequest{IDs: ir.IDs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, data)
	}
	_, data = postJSON(t, ts.URL+"/v1/search", searchBody(queries[1]))
	var sr4 SearchResponse
	if err := json.Unmarshal(data, &sr4); err != nil {
		t.Fatal(err)
	}
	if sr4.Cached {
		t.Fatal("stale cache entry served after delete")
	}
	// The deleted object never appears in results.
	for _, m := range sr4.Matches {
		if m.ID == ir.IDs[0] {
			t.Fatal("deleted object returned")
		}
	}

	// Unknown ID: 404 with error body.
	resp, data = postJSON(t, ts.URL+"/v1/delete", &DeleteRequest{IDs: []int64{1 << 40}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown delete: %d %s", resp.StatusCode, data)
	}
}

func TestServerRebuildFlow(t *testing.T) {
	// Start from an empty, unbuilt engine: search 409s, inserts
	// accumulate, rebuild builds, search works, rebuild again compacts.
	eng, err := must.NewEngine(must.Schema{
		{Name: "image", Dim: testImgDim},
		{Name: "text", Dim: testTxtDim},
	}, must.EngineOptions{Build: must.BuildOptions{Gamma: 12, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	rng := rand.New(rand.NewSource(3))
	probe := map[string][]float32{"image": randVec(rng, testImgDim)}
	resp, data := postJSON(t, ts.URL+"/v1/search", &SearchRequest{Vectors: probe})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("search before build: %d %s", resp.StatusCode, data)
	}

	objects := make([]map[string][]float32, 80)
	for i := range objects {
		objects[i] = map[string][]float32{
			"image": randVec(rng, testImgDim),
			"text":  randVec(rng, testTxtDim),
		}
	}
	resp, data = postJSON(t, ts.URL+"/v1/insert", &InsertRequest{Objects: objects})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk insert: %d %s", resp.StatusCode, data)
	}
	var ir InsertResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	if len(ir.IDs) != len(objects) {
		t.Fatalf("inserted %d, want %d", len(ir.IDs), len(objects))
	}

	resp, data = postJSON(t, ts.URL+"/v1/rebuild", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild: %d %s", resp.StatusCode, data)
	}
	var rr RebuildResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Built || rr.Objects != len(objects) {
		t.Fatalf("rebuild response %+v", rr)
	}

	resp, data = postJSON(t, ts.URL+"/v1/search", &SearchRequest{Vectors: objects[7], K: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after build: %d %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Matches[0].ID != ir.IDs[7] {
		t.Fatalf("got %+v, want %d", sr.Matches[0], ir.IDs[7])
	}

	// Second rebuild is a compaction, not a first build.
	resp, data = postJSON(t, ts.URL+"/v1/rebuild", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second rebuild: %d %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Built {
		t.Fatal("second rebuild claimed to be the first build")
	}
}

func TestServerStatsAndMetrics(t *testing.T) {
	_, ts, queries, _ := testServer(t, Config{})
	postJSON(t, ts.URL+"/v1/search", searchBody(queries[0]))
	postJSON(t, ts.URL+"/v1/search", searchBody(queries[0])) // cache hit

	resp, data := getBody(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d %s", resp.StatusCode, data)
	}
	var st StatsResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Built || st.Objects != 500 || len(st.Schema) != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Engine.Edges == 0 || st.Engine.CorpusBytes == 0 || st.Engine.GraphBytesPerEdge == 0 {
		t.Fatalf("engine stats not marshaled: %+v", st.Engine)
	}
	if st.Server.CacheHits == 0 {
		t.Fatalf("server stats missing cache hit: %+v", st.Server)
	}
	// The raw JSON uses the contract field names.
	for _, want := range []string{`"corpus_bytes"`, `"graph_bytes_per_edge"`, `"avg_degree"`, `"cache_hit_ratio"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("stats JSON missing %s: %s", want, data)
		}
	}

	resp, data = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(data)
	for _, want := range []string{
		`mustd_requests_total{endpoint="search",code="200"}`,
		`mustd_request_seconds_bucket{endpoint="search"`,
		"mustd_cache_hits_total 1",
		"mustd_engine_objects 500",
		"mustd_batch_size_sum",
		"mustd_in_flight_requests",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	resp, _ = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func TestServerValidationAndMethods(t *testing.T) {
	_, ts, queries, _ := testServer(t, Config{})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown modality", &SearchRequest{Vectors: map[string][]float32{"sound": {1}}}, http.StatusBadRequest},
		{"wrong dim", &SearchRequest{Vectors: map[string][]float32{"image": {1, 2}}}, http.StatusBadRequest},
		{"empty vectors", &SearchRequest{}, http.StatusBadRequest},
		{"negative k", &SearchRequest{Vectors: queries[0].Vectors, K: -1}, http.StatusBadRequest},
		{"unknown weight", &SearchRequest{Vectors: queries[0].Vectors, Weights: map[string]float32{"x": 1}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.URL+"/v1/search", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d %s, want %d", tc.name, resp.StatusCode, data, tc.want)
		}
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not structured", tc.name, data)
		}
	}

	// Unknown JSON fields are rejected (typo safety).
	resp, err := http.Post(ts.URL+"/v1/search", "application/json",
		strings.NewReader(`{"vectorz": {}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET search: %d, want 405", resp.StatusCode)
	}
}

func TestServerAdmissionControl(t *testing.T) {
	// MaxInFlight 2 with a slow batch window: hammer with concurrent
	// requests and require at least one 429 with Retry-After, while
	// admitted requests succeed.
	_, ts, queries, _ := testServer(t, Config{
		MaxInFlight: 2,
		BatchDelay:  20 * time.Millisecond,
		CacheSize:   -1, // cache off so every request takes the slow path
	})
	const clients = 16
	var wg sync.WaitGroup
	codes := make([]int, clients)
	retryAfter := make([]string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			raw, _ := json.Marshal(searchBody(queries[c%len(queries)]))
			resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(raw))
			if err != nil {
				codes[c] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[c] = resp.StatusCode
			retryAfter[c] = resp.Header.Get("Retry-After")
		}(c)
	}
	wg.Wait()
	ok, shed := 0, 0
	for c, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[c] == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Errorf("client %d: unexpected status %d", c, code)
		}
	}
	if ok == 0 {
		t.Error("no request was admitted")
	}
	if shed == 0 {
		t.Error("no request was shed despite MaxInFlight=2 and 16 clients")
	}
}

func TestServerTimeout(t *testing.T) {
	_, ts, queries, _ := testServer(t, Config{
		// A 1ns effective timeout: the context is dead before the
		// batcher even sees the request.
		DefaultTimeout: time.Nanosecond,
		CacheSize:      -1,
	})
	resp, data := postJSON(t, ts.URL+"/v1/search", searchBody(queries[0]))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timeout search: %d %s, want 504", resp.StatusCode, data)
	}
}

func TestServerDraining(t *testing.T) {
	s, ts, queries, _ := testServer(t, Config{})
	// Healthy first.
	resp, _ := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}
	s.StartDraining()
	resp, _ = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", resp.StatusCode)
	}
	resp, data := postJSON(t, ts.URL+"/v1/search", searchBody(queries[0]))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("search during drain: %d %s, want 503", resp.StatusCode, data)
	}
}

func TestServerConcurrentMixedWorkload(t *testing.T) {
	// The serving invariant under -race: concurrent searches, inserts,
	// and deletes through the full HTTP stack never cross results.
	_, ts, queries, ids := testServer(t, Config{})
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(77))
	var insertMu sync.Mutex
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				j := (g*10 + i) % len(queries)
				resp, data := postJSON(t, ts.URL+"/v1/search", searchBody(queries[j]))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("g%d: search %d %s", g, resp.StatusCode, data)
					return
				}
				var sr SearchResponse
				if err := json.Unmarshal(data, &sr); err != nil {
					t.Error(err)
					return
				}
				if len(sr.Matches) == 0 || sr.Matches[0].ID != ids[j] {
					t.Errorf("g%d query %d: wrong top %+v want %d", g, j, sr.Matches, ids[j])
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			insertMu.Lock()
			img, txt := randVec(rng, testImgDim), randVec(rng, testTxtDim)
			insertMu.Unlock()
			resp, data := postJSON(t, ts.URL+"/v1/insert", &InsertRequest{
				Vectors: map[string][]float32{"image": img, "text": txt},
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("writer: insert %d %s", resp.StatusCode, data)
				return
			}
			var ir InsertResponse
			if err := json.Unmarshal(data, &ir); err != nil {
				t.Error(err)
				return
			}
			if resp, data := postJSON(t, ts.URL+"/v1/delete", &DeleteRequest{IDs: ir.IDs}); resp.StatusCode != http.StatusOK {
				t.Errorf("writer: delete %d %s", resp.StatusCode, data)
				return
			}
		}
	}()
	wg.Wait()
}

func TestMetricsHistogramRendering(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequest("search", 200, 0.0007)
	m.ObserveRequest("search", 200, 0.3)
	m.ObserveRequest("search", 400, 0.001)
	m.ObserveBatch(3)
	m.ObserveBatch(64)
	eng, _, _ := testEngine(t, 60)
	var sb strings.Builder
	m.WritePrometheus(&sb, eng, newResultCache(4), nil)
	out := sb.String()
	for _, want := range []string{
		`mustd_requests_total{endpoint="search",code="200"} 2`,
		`mustd_requests_total{endpoint="search",code="400"} 1`,
		`mustd_request_seconds_bucket{endpoint="search",le="0.001"} 2`,
		`mustd_request_seconds_bucket{endpoint="search",le="+Inf"} 3`,
		`mustd_request_seconds_count{endpoint="search"} 3`,
		`mustd_batch_size_bucket{le="4"} 1`,
		`mustd_batch_size_bucket{le="64"} 2`,
		"mustd_batch_size_count 2",
		"mustd_engine_objects 60",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Scrapes are deterministic: same registry renders identically.
	var sb2 strings.Builder
	m.WritePrometheus(&sb2, eng, newResultCache(4), nil)
	if sb2.String() != out {
		t.Error("two scrapes of an idle registry differ")
	}
}

// The serving tier runs unchanged over a ShardedEngine: the result cache
// keys on the summed per-shard epoch, so a mutation that touches only
// one shard still invalidates stale entries, and /v1/stats reports the
// per-shard breakdown.
func TestServerShardedEngineCacheInvalidation(t *testing.T) {
	const shards = 4
	eng, err := must.NewShardedEngine(must.Schema{
		{Name: "image", Dim: testImgDim},
		{Name: "text", Dim: testTxtDim},
	}, shards, must.EngineOptions{Build: must.BuildOptions{Gamma: 12, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		if _, err := eng.Insert(must.NamedVectors{
			"image": randVec(rng, testImgDim),
			"text":  randVec(rng, testTxtDim),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	s := New(eng, Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	probe, err := eng.Object(7)
	if err != nil {
		t.Fatal(err)
	}
	q := &SearchRequest{Vectors: probe, K: 3}

	resp, data := postJSON(t, ts.URL+"/v1/search", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cached || len(sr.Matches) != 3 || sr.Matches[0].ID != 7 {
		t.Fatalf("first search %+v", sr)
	}
	var sr2 SearchResponse
	_, data = postJSON(t, ts.URL+"/v1/search", q)
	if err := json.Unmarshal(data, &sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.Cached {
		t.Fatal("identical request missed the cache")
	}

	// A single-shard mutation (one delete) must invalidate the cache.
	epochBefore := eng.Epoch()
	resp, data = postJSON(t, ts.URL+"/v1/delete", &DeleteRequest{IDs: []int64{190}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, data)
	}
	if eng.Epoch() <= epochBefore {
		t.Fatal("summed epoch did not advance on delete")
	}
	var sr3 SearchResponse
	_, data = postJSON(t, ts.URL+"/v1/search", q)
	if err := json.Unmarshal(data, &sr3); err != nil {
		t.Fatal(err)
	}
	if sr3.Cached {
		t.Fatal("stale cache entry served after single-shard delete")
	}

	// /v1/rebuild drives ShardedEngine.Rebuild (parallel compaction).
	resp, data = postJSON(t, ts.URL+"/v1/rebuild", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild: %d %s", resp.StatusCode, data)
	}
	var rr RebuildResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	// Built reports false for a compacting rebuild of an already-built
	// engine; the live count excludes the deleted object.
	if rr.Built || rr.Objects != 199 {
		t.Fatalf("rebuild response %+v", rr)
	}

	// /v1/stats exposes the per-shard breakdown.
	resp, data = getBody(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != shards {
		t.Fatalf("stats reported %d shards, want %d", len(st.Shards), shards)
	}
	for j, si := range st.Shards {
		if si.State != "built" || si.Objects == 0 {
			t.Fatalf("shard %d stats %+v", j, si)
		}
	}
	if st.Engine.Objects != 199 {
		t.Fatalf("aggregate objects %d, want 199", st.Engine.Objects)
	}
}
