package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"must"
)

// ErrDraining is returned to requests that arrive after the server
// began shutting down.
var ErrDraining = errors.New("server draining")

// batcher coalesces concurrent search requests into engine batches: the
// first request to arrive opens a batch, which dispatches when either
// maxBatch requests have joined or maxDelay has passed. One SearchEach
// call then serves the whole batch — the read lock is taken once, each
// worker keeps one pooled searcher hot across its stride, and the fused
// kernel amortizes across requests — which is what turns 64 concurrent
// HTTP requests into a handful of engine calls instead of 64
// lock/pool round-trips racing each other.
type batcher struct {
	eng      must.Service
	maxBatch int
	maxDelay time.Duration
	workers  int
	// onBatch observes each dispatched batch's size (metrics hook).
	onBatch func(size int)
	// onPanic observes each recovered dispatch panic (metrics hook).
	onPanic func()

	in   chan *pending
	stop chan struct{}
	done chan struct{}

	mu     sync.RWMutex
	closed bool
}

type pending struct {
	ctx context.Context
	q   must.Query
	// out is buffered (capacity 1) so the dispatcher never blocks on a
	// caller that gave up waiting.
	out chan batchResult
}

type batchResult struct {
	resp *must.Response
	size int
	err  error
}

// newBatcher starts the dispatcher goroutine. maxBatch ≤ 0 defaults to
// 64, maxDelay ≤ 0 to 1ms; workers ≤ 0 lets the engine pick.
func newBatcher(eng must.Service, maxBatch int, maxDelay time.Duration, workers int, onBatch func(int), onPanic func()) *batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if maxDelay <= 0 {
		maxDelay = time.Millisecond
	}
	b := &batcher{
		eng:      eng,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		workers:  workers,
		onBatch:  onBatch,
		onPanic:  onPanic,
		in:       make(chan *pending, 4*maxBatch),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.run()
	return b
}

// Search submits one query and waits for its slot of the coalesced
// batch. It returns the engine response, the size of the batch the
// query rode in, and an error. Cancellation of ctx returns promptly
// even while the batch is still computing; the abandoned slot is
// discarded by the dispatcher without blocking it.
func (b *batcher) Search(ctx context.Context, q must.Query) (*must.Response, int, error) {
	p := &pending{ctx: ctx, q: q, out: make(chan batchResult, 1)}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, 0, ErrDraining
	}
	// Submitting under the read lock pairs with Close's write lock:
	// once closed is set, no new pending can enter b.in, so the final
	// drain below cannot strand a request.
	select {
	case b.in <- p:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		// Queue full: the server is past its coalescing capacity.
		// Admission control upstream should make this rare; fail fast
		// rather than block the client behind an unbounded queue.
		return nil, 0, ErrOverloaded
	}
	select {
	case r := <-p.out:
		return r.resp, r.size, r.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// ErrOverloaded is returned when the batch queue is full.
var ErrOverloaded = errors.New("server overloaded")

// Close stops accepting requests, serves everything already queued, and
// waits for the dispatcher to exit. Safe to call once.
func (b *batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	<-b.done
}

func (b *batcher) run() {
	defer close(b.done)
	for {
		var first *pending
		select {
		case first = <-b.in:
		case <-b.stop:
			b.drain()
			return
		}
		batch := make([]*pending, 1, b.maxBatch)
		batch[0] = first
		timer := time.NewTimer(b.maxDelay)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case p := <-b.in:
				batch = append(batch, p)
			case <-timer.C:
				break collect
			case <-b.stop:
				break collect
			}
		}
		timer.Stop()
		b.dispatch(batch)
	}
}

// drain serves whatever was queued before Close flipped the flag.
func (b *batcher) drain() {
	for {
		batch := make([]*pending, 0, b.maxBatch)
		for len(batch) < b.maxBatch {
			select {
			case p := <-b.in:
				batch = append(batch, p)
			default:
				goto flush
			}
		}
	flush:
		if len(batch) == 0 {
			return
		}
		b.dispatch(batch)
	}
}

// dispatch answers one coalesced batch with a single SearchEach call.
// Requests whose context is already dead are answered immediately and
// excluded, so one cancelled client neither wastes engine work nor
// poisons the rest of the batch.
func (b *batcher) dispatch(batch []*pending) {
	live := batch[:0]
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			p.out <- batchResult{err: err}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	if b.onBatch != nil {
		b.onBatch(len(live))
	}
	queries := make([]must.Query, len(live))
	for i, p := range live {
		queries[i] = p.q
	}
	resps, errs := b.searchRecovered(queries)
	for i, p := range live {
		p.out <- batchResult{resp: resps[i], size: len(live), err: errs[i]}
	}
}

// searchRecovered runs the engine call for one batch, converting a
// panic into a per-request error. Without the recover, one poisoned
// query (or engine bug) in a coalesced batch would kill the whole
// daemon from the dispatcher goroutine; with it, only this batch's
// requests see a 500 and the dispatcher keeps serving.
func (b *batcher) searchRecovered(queries []must.Query) (resps []*must.Response, errs []error) {
	defer func() {
		if r := recover(); r != nil {
			if b.onPanic != nil {
				b.onPanic()
			}
			err := fmt.Errorf("batch dispatch panicked: %v", r)
			resps = make([]*must.Response, len(queries))
			errs = make([]error, len(queries))
			for i := range errs {
				errs[i] = err
			}
		}
	}()
	// The batch deliberately runs under its own bounded context, not any
	// request's: a client that cancels mid-batch gets its answer slot
	// dropped (the select in Search already returned), but must not be
	// able to cancel the neighbors it was coalesced with. Engine work per
	// batch is bounded (≤ maxBatch short routing walks), so the deadline
	// is a backstop, not a tuning knob.
	bctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return b.eng.SearchEach(bctx, queries, b.workers)
}
