package baseline

import (
	"math/rand"
	"testing"

	"must/internal/graph"
	"must/internal/vec"
)

// fixture builds clustered 2-modality objects plus queries whose true
// answer is a planted object matching both modalities.
func fixture(n int, seed int64) (objects []vec.Multi, queries []vec.Multi, truths []int) {
	rng := rand.New(rand.NewSource(seed))
	const nq = 25
	for qi := 0; qi < nq; qi++ {
		content := vec.RandUnit(rng, 16)
		attr := vec.RandUnit(rng, 8)
		objects = append(objects, vec.Multi{
			vec.AddGaussianNoise(rng, content, 0.2),
			vec.AddGaussianNoise(rng, attr, 0.2),
		})
		queries = append(queries, vec.Multi{
			vec.AddGaussianNoise(rng, content, 0.2),
			vec.AddGaussianNoise(rng, attr, 0.2),
		})
		truths = append(truths, qi)
	}
	for len(objects) < n {
		objects = append(objects, vec.Multi{vec.RandUnit(rng, 16), vec.RandUnit(rng, 8)})
	}
	return
}

func pipeline(seed int64) graph.Pipeline { return graph.Ours(12, 3, seed) }

func TestJEFindsPlantedMatches(t *testing.T) {
	objects, queries, truths := fixture(600, 1)
	je, err := BuildJE(objects, pipeline(2))
	if err != nil {
		t.Fatal(err)
	}
	s := je.NewSearcher()
	hits := 0
	for i, q := range queries {
		got, err := s.Search(q, 5, 100)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range got {
			if id == truths[i] {
				hits++
				break
			}
		}
	}
	// JE only matches modality 0, which here is strongly aligned, so
	// recall@5 should be high on this easy fixture.
	if hits < len(queries)*7/10 {
		t.Errorf("JE recall@5 = %d/%d, too low for the easy fixture", hits, len(queries))
	}
}

func TestMRFindsPlantedMatches(t *testing.T) {
	objects, queries, truths := fixture(600, 3)
	mr, err := BuildMR(objects, pipeline(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Indexes()) != 2 {
		t.Fatalf("MR built %d indexes, want 2", len(mr.Indexes()))
	}
	s := mr.NewSearcher()
	hits := 0
	for i, q := range queries {
		got, err := s.Search(q, 5, 100)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range got {
			if id == truths[i] {
				hits++
				break
			}
		}
	}
	if hits < len(queries)*7/10 {
		t.Errorf("MR recall@5 = %d/%d, too low for the easy fixture", hits, len(queries))
	}
}

func TestMRIntersectionPrecedesUnion(t *testing.T) {
	objects, queries, _ := fixture(400, 5)
	mr, err := BuildMR(objects, pipeline(6))
	if err != nil {
		t.Fatal(err)
	}
	s := mr.NewSearcher()
	got, err := s.Search(queries[0], 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no results")
	}
	// Re-run the per-stream searches to classify members.
	inStream := make([]map[int]bool, 2)
	for i := 0; i < 2; i++ {
		idx := mr.Indexes()[i].NewSearcher()
		res, _, err := idx.Search(vec.Multi{queries[0][i]}, 60, 60)
		if err != nil {
			t.Fatal(err)
		}
		inStream[i] = map[int]bool{}
		for _, r := range res {
			inStream[i][r.ID] = true
		}
	}
	sawUnionOnly := false
	for _, id := range got {
		full := inStream[0][id] && inStream[1][id]
		if full && sawUnionOnly {
			t.Fatal("intersection member ranked after union-only member")
		}
		if !full {
			sawUnionOnly = true
		}
	}
}

func TestMRBruteMatchesShape(t *testing.T) {
	objects, queries, truths := fixture(300, 7)
	mb := NewMRBrute(objects)
	hits := 0
	for i, q := range queries {
		got, err := mb.Search(q, 5, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatal("MR-- returned nothing")
		}
		for _, id := range got {
			if id == truths[i] {
				hits++
				break
			}
		}
	}
	if hits < len(queries)*7/10 {
		t.Errorf("MR-- recall@5 = %d/%d", hits, len(queries))
	}
}

func TestMRValidation(t *testing.T) {
	if _, err := BuildMR(nil, pipeline(8)); err == nil {
		t.Error("empty BuildMR did not error")
	}
	objects, queries, _ := fixture(200, 9)
	mr, err := BuildMR(objects, pipeline(10))
	if err != nil {
		t.Fatal(err)
	}
	s := mr.NewSearcher()
	if _, err := s.Search(vec.Multi{queries[0][0]}, 5, 50); err == nil {
		t.Error("modality mismatch did not error")
	}
	mb := NewMRBrute(objects)
	if _, err := mb.Search(vec.Multi{queries[0][0]}, 5, 50); err == nil {
		t.Error("MR-- modality mismatch did not error")
	}
}

func TestMRAccounting(t *testing.T) {
	objects, _, _ := fixture(200, 11)
	mr, err := BuildMR(objects, pipeline(12))
	if err != nil {
		t.Fatal(err)
	}
	if mr.BuildTime() <= 0 {
		t.Error("MR build time not recorded")
	}
	if mr.SizeBytes() <= 0 {
		t.Error("MR size not positive")
	}
	// MR carries one graph per modality, so it must be larger than any
	// single one of them.
	if mr.SizeBytes() <= mr.Indexes()[0].SizeBytes() {
		t.Error("MR total size must exceed single index size")
	}
}
