// Package baseline implements the paper's two baselines (§III): MR
// (multi-streamed retrieval — one index and one search per modality, with
// candidate merging) and JE (joint embedding — a single composition vector
// searched against the target-modality index), plus their brute-force
// variants MR-- used in the §VIII-D efficiency study.
package baseline

import (
	"fmt"
	"sort"

	"must/internal/graph"
	"must/internal/index"
	"must/internal/search"
	"must/internal/vec"
)

// JE is the joint-embedding baseline: the multimodal query is fused into
// one composition vector (done at encoding time: the query's modality-0
// vector is Φ(q0,...,q_{t-1})) and searched against the index over
// {ϕ0(o0)}.
type JE struct {
	idx *index.Fused
}

// BuildJE indexes the target-modality vectors of objects.
func BuildJE(objects []vec.Multi, p graph.Pipeline) (*JE, error) {
	view := search.ModalityView(objects, 0)
	idx, err := index.BuildFused(view, vec.Weights{1}, p)
	if err != nil {
		return nil, fmt.Errorf("baseline: building JE index: %w", err)
	}
	return &JE{idx: idx}, nil
}

// Index exposes the underlying fused index (for size/build-time reports).
func (j *JE) Index() *index.Fused { return j.idx }

// NewSearcher returns a single-goroutine JE searcher.
func (j *JE) NewSearcher() *JESearcher {
	return &JESearcher{s: j.idx.NewSearcher()}
}

// JESearcher runs JE queries; not safe for concurrent use.
type JESearcher struct {
	s *search.Searcher
}

// Search returns the top-k object IDs for the query. Only the query's
// modality-0 vector (the composition vector) is used.
func (js *JESearcher) Search(query vec.Multi, k, l int) ([]int, error) {
	res, _, err := js.s.Search(vec.Multi{query[0]}, k, l)
	if err != nil {
		return nil, err
	}
	return search.IDs(res), nil
}

// MR is the multi-streamed retrieval baseline: one proximity-graph index
// per modality, one search per query modality, and a merge of the
// candidate sets (§III, Baseline 1).
type MR struct {
	indexes []*index.Fused
}

// BuildMR indexes every modality of objects separately.
func BuildMR(objects []vec.Multi, p graph.Pipeline) (*MR, error) {
	if len(objects) == 0 {
		return nil, fmt.Errorf("baseline: no objects")
	}
	m := len(objects[0])
	mr := &MR{indexes: make([]*index.Fused, m)}
	for i := 0; i < m; i++ {
		sub := p
		sub.Name = fmt.Sprintf("%s/mod%d", p.Name, i)
		idx, err := index.BuildFused(search.ModalityView(objects, i), vec.Weights{1}, sub)
		if err != nil {
			return nil, fmt.Errorf("baseline: building MR index %d: %w", i, err)
		}
		mr.indexes[i] = idx
	}
	return mr, nil
}

// Indexes exposes the per-modality indexes (for size/build-time reports).
func (m *MR) Indexes() []*index.Fused { return m.indexes }

// BuildTime sums the per-modality build times.
func (m *MR) BuildTime() (total int64) {
	for _, idx := range m.indexes {
		total += int64(idx.BuildTime)
	}
	return total
}

// SizeBytes sums the per-modality index sizes.
func (m *MR) SizeBytes() (total int64) {
	for _, idx := range m.indexes {
		total += idx.SizeBytes()
	}
	return total
}

// NewSearcher returns a single-goroutine MR searcher.
func (m *MR) NewSearcher() *MRSearcher {
	searchers := make([]*search.Searcher, len(m.indexes))
	for i, idx := range m.indexes {
		searchers[i] = idx.NewSearcher()
	}
	return &MRSearcher{searchers: searchers}
}

// MRSearcher runs MR queries; not safe for concurrent use.
type MRSearcher struct {
	searchers []*search.Searcher
}

// Search retrieves l candidates from every modality stream and merges
// them: the intersection of the streams ranked by summed per-stream rank
// (Borda fusion), padded from the union when the intersection is smaller
// than k — the paper's intersection merge with the importance of streams
// unknown (§III).
func (ms *MRSearcher) Search(query vec.Multi, k, l int) ([]int, error) {
	if len(query) != len(ms.searchers) {
		return nil, fmt.Errorf("baseline: query has %d modalities, MR has %d indexes", len(query), len(ms.searchers))
	}
	t := len(ms.searchers)
	// rank[id] collects per-stream ranks; streams[id] counts how many
	// streams returned id.
	type entry struct {
		streams  int
		rankSum  int
		bestRank int
	}
	merged := make(map[int]*entry)
	for i, s := range ms.searchers {
		res, _, err := s.Search(vec.Multi{query[i]}, l, l)
		if err != nil {
			return nil, err
		}
		for rank, r := range res {
			e := merged[r.ID]
			if e == nil {
				e = &entry{bestRank: rank}
				merged[r.ID] = e
			}
			e.streams++
			e.rankSum += rank
			if rank < e.bestRank {
				e.bestRank = rank
			}
		}
	}
	type cand struct {
		id int
		e  *entry
	}
	cands := make([]cand, 0, len(merged))
	for id, e := range merged {
		// Missing streams contribute the worst possible rank l.
		e.rankSum += (t - e.streams) * l
		cands = append(cands, cand{id, e})
	}
	// Intersection first (present in all streams), then by rank sum; ties
	// by id for determinism.
	sort.Slice(cands, func(i, j int) bool {
		ci, cj := cands[i], cands[j]
		iFull, jFull := ci.e.streams == t, cj.e.streams == t
		if iFull != jFull {
			return iFull
		}
		if ci.e.rankSum != cj.e.rankSum {
			return ci.e.rankSum < cj.e.rankSum
		}
		return ci.id < cj.id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out, nil
}

// MRBrute is MR-- : exact per-modality scans with the same merge.
type MRBrute struct {
	brutes []*index.BruteForce
}

// NewMRBrute builds the exact multi-streamed baseline.
func NewMRBrute(objects []vec.Multi) *MRBrute {
	if len(objects) == 0 {
		return &MRBrute{}
	}
	m := len(objects[0])
	b := &MRBrute{brutes: make([]*index.BruteForce, m)}
	for i := 0; i < m; i++ {
		b.brutes[i] = &index.BruteForce{
			Objects: search.ModalityView(objects, i),
			Weights: vec.Weights{1},
		}
	}
	return b
}

// Search mirrors MRSearcher.Search with exact per-stream retrieval.
func (b *MRBrute) Search(query vec.Multi, k, l int) ([]int, error) {
	if len(query) != len(b.brutes) {
		return nil, fmt.Errorf("baseline: query has %d modalities, MR-- has %d scanners", len(query), len(b.brutes))
	}
	t := len(b.brutes)
	type entry struct {
		streams int
		rankSum int
	}
	merged := make(map[int]*entry)
	for i, bf := range b.brutes {
		res := bf.TopK(vec.Multi{query[i]}, l)
		for rank, r := range res {
			e := merged[r.ID]
			if e == nil {
				e = &entry{}
				merged[r.ID] = e
			}
			e.streams++
			e.rankSum += rank
		}
	}
	type cand struct {
		id int
		e  *entry
	}
	cands := make([]cand, 0, len(merged))
	for id, e := range merged {
		e.rankSum += (t - e.streams) * l
		cands = append(cands, cand{id, e})
	}
	sort.Slice(cands, func(i, j int) bool {
		ci, cj := cands[i], cands[j]
		iFull, jFull := ci.e.streams == t, cj.e.streams == t
		if iFull != jFull {
			return iFull
		}
		if ci.e.rankSum != cj.e.rankSum {
			return ci.e.rankSum < cj.e.rankSum
		}
		return ci.id < cj.id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out, nil
}
