package metrics

import (
	"math"
	"testing"
	"time"
)

func TestRecall(t *testing.T) {
	cases := []struct {
		name   string
		result []int
		truth  []int
		want   float64
	}{
		{"perfect", []int{1, 2, 3}, []int{1, 2, 3}, 1},
		{"half", []int{1, 9}, []int{1, 2}, 0.5},
		{"none", []int{7, 8}, []int{1, 2}, 0},
		{"empty truth", []int{1}, nil, 0},
		{"empty result", nil, []int{1}, 0},
		{"k bigger than kprime", []int{5, 1, 9, 8}, []int{1}, 1},
		{"duplicate results count once", []int{1, 1, 1}, []int{1, 2}, 0.5},
	}
	for _, c := range cases {
		if got := Recall(c.result, c.truth); got != c.want {
			t.Errorf("%s: Recall = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMeanRecall(t *testing.T) {
	got := MeanRecall([][]int{{1}, {9}}, [][]int{{1}, {2}})
	if got != 0.5 {
		t.Errorf("MeanRecall = %v, want 0.5", got)
	}
	if MeanRecall(nil, nil) != 0 {
		t.Error("empty MeanRecall should be 0")
	}
}

func TestMeanRecallPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	MeanRecall([][]int{{1}}, nil)
}

func TestSME(t *testing.T) {
	if got := SME(1); got != 0 {
		t.Errorf("SME(1) = %v, want 0", got)
	}
	if got := SME(0.6); math.Abs(got-0.4) > 1e-6 {
		t.Errorf("SME(0.6) = %v, want 0.4", got)
	}
}

func TestQPS(t *testing.T) {
	if got := QPS(100, time.Second); got != 100 {
		t.Errorf("QPS = %v, want 100", got)
	}
	if got := QPS(10, 0); got != 0 {
		t.Errorf("QPS with zero elapsed = %v, want 0", got)
	}
}

func TestFrontier(t *testing.T) {
	pts := []Point{
		{Param: 1, Recall: 0.5, QPS: 1000},
		{Param: 2, Recall: 0.7, QPS: 500},
		{Param: 3, Recall: 0.6, QPS: 300}, // dominated by param 2
		{Param: 4, Recall: 0.9, QPS: 100},
	}
	f := Frontier(pts)
	if len(f) != 3 {
		t.Fatalf("frontier size = %d, want 3: %+v", len(f), f)
	}
	for i := 1; i < len(f); i++ {
		if f[i].Recall < f[i-1].Recall {
			t.Error("frontier not sorted by recall")
		}
		if f[i].QPS > f[i-1].QPS {
			t.Error("frontier QPS must be non-increasing in recall")
		}
	}
	for _, p := range f {
		if p.Param == 3 {
			t.Error("dominated point survived")
		}
	}
}

func TestFrontierEmptyAndSingle(t *testing.T) {
	if f := Frontier(nil); len(f) != 0 {
		t.Error("empty frontier not empty")
	}
	f := Frontier([]Point{{Recall: 0.1, QPS: 1}})
	if len(f) != 1 {
		t.Error("single-point frontier lost its point")
	}
}
