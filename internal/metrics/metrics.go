// Package metrics implements the paper's evaluation metrics: the recall
// rate Recall@k(k') of Eq. 1, the similarity measurement error SME of
// Eq. 4, and queries-per-second accounting (§VIII-A).
package metrics

import (
	"sort"
	"time"
)

// Recall computes Recall@k(k') = |R ∩ G| / k' for one query, where result
// holds the returned object IDs (R, len ≤ k) and truth the ground-truth
// IDs (G, len = k'). An empty ground truth yields 0.
func Recall(result, truth []int) float64 {
	if len(truth) == 0 {
		return 0
	}
	in := make(map[int]struct{}, len(truth))
	for _, id := range truth {
		in[id] = struct{}{}
	}
	hits := 0
	for _, id := range result {
		if _, ok := in[id]; ok {
			hits++
			delete(in, id) // count duplicates in result only once
		}
	}
	return float64(hits) / float64(len(truth))
}

// MeanRecall averages Recall over a batch; results and truths must have
// equal length.
func MeanRecall(results, truths [][]int) float64 {
	if len(results) != len(truths) {
		panic("metrics: results/truths length mismatch")
	}
	if len(results) == 0 {
		return 0
	}
	var s float64
	for i := range results {
		s += Recall(results[i], truths[i])
	}
	return s / float64(len(results))
}

// SME computes the similarity measurement error of Eq. 4 for one query:
// 1 − IP(ϕ0(a0), ϕ0(r0)), where aSim is the target-modality inner product
// between the ground-truth object and the returned object. Callers pass
// the precomputed IP because only they know the vectors.
func SME(ip float32) float64 {
	return 1 - float64(ip)
}

// QPS converts a query count and total elapsed search time into queries
// per second (#q/τ, §VIII-A).
func QPS(queries int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(queries) / elapsed.Seconds()
}

// Series is one (recall, qps) trade-off point, a sample of the curves in
// Fig. 6, 8 and 10.
type Point struct {
	// Param is the knob that produced the point (the beam width l).
	Param int
	// Recall is the mean recall at this setting.
	Recall float64
	// QPS is the measured throughput at this setting.
	QPS float64
	// Latency is the mean per-query response time.
	Latency time.Duration
}

// Frontier sorts points by recall and removes points that are dominated
// (another point has both ≥ recall and ≥ QPS), yielding the Pareto
// frontier that the paper's QPS-vs-recall plots trace.
func Frontier(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Recall != sorted[j].Recall {
			return sorted[i].Recall < sorted[j].Recall
		}
		return sorted[i].QPS > sorted[j].QPS
	})
	out := make([]Point, 0, len(sorted))
	bestQPS := -1.0
	// Walk from the high-recall end so we keep the highest-QPS point for
	// every recall level.
	for i := len(sorted) - 1; i >= 0; i-- {
		if sorted[i].QPS > bestQPS {
			out = append(out, sorted[i])
			bestQPS = sorted[i].QPS
		}
	}
	// Reverse back to ascending recall.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
