package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
)

func TestSplitGlobalRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 64} {
		for id := int64(0); id < 1000; id++ {
			s, l := Split(id, n)
			if s < 0 || s >= n {
				t.Fatalf("Split(%d,%d) shard %d out of range", id, n, s)
			}
			if got := Global(s, l, n); got != id {
				t.Fatalf("Global(Split(%d,%d)) = %d", id, n, got)
			}
		}
	}
}

// Sequential global IDs are dense and identical to a single engine's:
// insert k lands at global k.
func TestSequentialInsertIDsAreDense(t *testing.T) {
	const n = 5
	locals := make([]int64, n)
	for k := int64(0); k < 100; k++ {
		s := int(k % n) // round-robin insertion order
		if got := Global(s, locals[s], n); got != k {
			t.Fatalf("insert %d: global %d", k, got)
		}
		locals[s]++
	}
}

func TestValidate(t *testing.T) {
	for _, n := range []int{1, 2, MaxShards} {
		if err := Validate(n); err != nil {
			t.Errorf("Validate(%d): %v", n, err)
		}
	}
	for _, n := range []int{0, -1, MaxShards + 1} {
		if err := Validate(n); err == nil {
			t.Errorf("Validate(%d) accepted", n)
		}
	}
}

func TestMergeTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		lists := make([][]float64, 1+rng.Intn(6))
		var all []float64
		for i := range lists {
			m := rng.Intn(20)
			l := make([]float64, m)
			for j := range l {
				l[j] = rng.NormFloat64()
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(l)))
			lists[i] = l
			all = append(all, l...)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(all)))
		k := 1 + rng.Intn(15)
		got := MergeTopK(lists, k, func(a, b float64) bool { return a > b })
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: merge[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMergeTopKDeterministicTies(t *testing.T) {
	type scored struct {
		list  int
		score float64
	}
	lists := [][]scored{
		{{0, 1.0}, {0, 0.5}},
		{{1, 1.0}, {1, 0.5}},
	}
	got := MergeTopK(lists, 4, func(a, b scored) bool { return a.score > b.score })
	wantLists := []int{0, 1, 0, 1} // equal scores resolve to the lower list
	for i, w := range wantLists {
		if got[i].list != w {
			t.Fatalf("tie order: got %v", got)
		}
	}
}

func TestMergeTopKEdgeCases(t *testing.T) {
	gt := func(a, b int) bool { return a > b }
	if got := MergeTopK[int](nil, 5, gt); len(got) != 0 {
		t.Errorf("nil lists: %v", got)
	}
	if got := MergeTopK([][]int{{3, 2}, {}}, 0, gt); got != nil {
		t.Errorf("k=0: %v", got)
	}
	if got := MergeTopK([][]int{{3, 2}}, 10, gt); len(got) != 2 {
		t.Errorf("k beyond total: %v", got)
	}
}

func TestDoRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var count atomic.Int64
		seen := make([]atomic.Bool, 37)
		if err := Do(37, workers, func(i int) error {
			seen[i].Store(true)
			count.Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if count.Load() != 37 {
			t.Fatalf("workers=%d: ran %d of 37", workers, count.Load())
		}
		for i := range seen {
			if !seen[i].Load() {
				t.Fatalf("workers=%d: index %d never ran", workers, i)
			}
		}
	}
}

func TestDoReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	for _, workers := range []int{1, 4} {
		err := Do(10, workers, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return fmt.Errorf("b")
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want lowest-indexed error", workers, err)
		}
	}
	if err := Do(0, 4, func(int) error { return errA }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}
