// Package shard holds the engine-agnostic mechanics of the sharded
// corpus: the stable-ID ↔ (shard, local) routing arithmetic, the k-way
// merge that combines per-shard top-k lists, and a bounded worker pool
// for running per-shard work in parallel.
//
// The package deliberately knows nothing about engines, queries, or
// results — it operates on IDs, sorted slices, and closures — so both
// the public must package and any future distribution layer can share
// one tested implementation of the partitioning math.
package shard

import (
	"fmt"
	"runtime"
	"sync"
)

// MaxShards bounds the shard count a sharded engine (and the MUSTSH1
// container format) accepts. The limit is far above any sensible
// configuration — shards cost per-shard graphs and searcher pools, so
// useful S values are small multiples of the core count — and exists so
// a corrupt persistence header cannot demand an absurd allocation.
const MaxShards = 4096

// Validate rejects shard counts outside [1, MaxShards].
func Validate(n int) error {
	if n < 1 || n > MaxShards {
		return fmt.Errorf("shard count %d out of range [1,%d]", n, MaxShards)
	}
	return nil
}

// Split routes a stable global ID to its owning shard and the ID the
// object carries inside that shard. The mapping is pure arithmetic —
// shard = id mod n, local = id div n — so routing needs no lookup
// table, no lock, and survives save/load byte-for-byte.
func Split(id int64, n int) (shard int, local int64) {
	return int(id % int64(n)), id / int64(n)
}

// Global is the inverse of Split: the stable global ID of a shard-local
// ID. Globals handed out by sequential inserts are exactly the dense
// sequence 0,1,2,… (insert k lands in shard k mod n with local k div n),
// which is what makes a sharded engine ID-compatible with a single
// engine over the same insertion order.
func Global(shard int, local int64, n int) int64 {
	return local*int64(n) + int64(shard)
}

// MergeTopK merges up to k best elements out of several independently
// sorted lists (each sorted best-first under better) using a k-way
// tournament over the list heads. Ties across lists resolve to the
// lower list index, so the merge is deterministic for equal scores.
// The result is a fresh slice; the input lists are not modified.
func MergeTopK[T any](lists [][]T, k int, better func(a, b T) bool) []T {
	if k <= 0 {
		return nil
	}
	// heap of (list, pos) ordered by better on the element each cursor
	// points at; index tie-break keeps the merge deterministic.
	type cursor struct {
		list, pos int
	}
	h := make([]cursor, 0, len(lists))
	at := func(c cursor) T { return lists[c.list][c.pos] }
	less := func(a, b cursor) bool {
		av, bv := at(a), at(b)
		if better(av, bv) {
			return true
		}
		if better(bv, av) {
			return false
		}
		return a.list < b.list
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < len(h) && less(h[l], h[s]) {
				s = l
			}
			if r < len(h) && less(h[r], h[s]) {
				s = r
			}
			if s == i {
				return
			}
			h[i], h[s] = h[s], h[i]
			i = s
		}
	}
	for li, l := range lists {
		if len(l) > 0 {
			h = append(h, cursor{li, 0})
			up(len(h) - 1)
		}
	}
	out := make([]T, 0, k)
	for len(h) > 0 && len(out) < k {
		c := h[0]
		out = append(out, at(c))
		if c.pos+1 < len(lists[c.list]) {
			h[0] = cursor{c.list, c.pos + 1}
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		down(0)
	}
	return out
}

// Do runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers ≤ 0 means GOMAXPROCS) and returns the error of the
// lowest-indexed failure, after every started call has finished — a
// failed shard never leaves sibling work running into a torn state.
func Do(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				errs[i] = fn(i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
