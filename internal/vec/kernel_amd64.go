//go:build amd64 && !purego

package vec

import "unsafe"

// The AVX2 kernels live in kernel_amd64.s. They are selected at runtime:
// AVX2 needs both the CPUID feature bit and OS support for saving YMM
// state (OSXSAVE + XCR0 bits 1:2), probed by the tiny assembly helpers
// below. CPUs without AVX2 — or binaries built with -tags purego — stay
// on the pure-Go reference kernels.

// dotAVX2 computes the float32 dot product of a and b with the shared
// 8-lane accumulation schedule. len(a) must equal len(b).
func dotAVX2(a, b []float32) float32

// dotCodesAVX2 computes the exact integer dot Σ int32(q[i])·int32(c[i])
// via VPMADDWD (16 codes per step). len(q) must equal len(c); the caller
// guarantees the sum fits int32 (see kernel.go).
func dotCodesAVX2(q []int16, c []uint8) int32

// prefetchSpan issues PREFETCHT0 for each cache line in [p, p+n).
// Prefetch needs no CPU feature probe — it has been architectural since
// SSE and is a hint the CPU may ignore, so init installs it whenever the
// assembly kernels are compiled in (i.e. not under -tags purego).
func prefetchSpan(p unsafe.Pointer, n uintptr)

// cpuidex returns CPUID leaf/subleaf output registers.
func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 returns the low 32 bits of XCR0 (extended control register 0).
func xgetbv0() uint32

func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS saves YMM state on context
	// switch. Without this, using YMM registers corrupts other threads.
	if xgetbv0()&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

func init() {
	prefetchImpl = prefetchSpan
	if hasAVX2() {
		dotImpl = dotAVX2
		dotCodesImpl = dotCodesAVX2
		kernelName = "avx2"
	}
}
