package vec

import (
	"math"
	"math/rand"
)

// RandUnit returns a random unit vector of dimension dim drawn from the
// isotropic Gaussian distribution (then normalized), using rng. All
// randomness in the reproduction flows through explicitly seeded *rand.Rand
// instances so every experiment is deterministic.
func RandUnit(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return Normalize(v)
}

// AddGaussianNoise returns a new vector equal to v plus an isotropic
// Gaussian noise vector whose expected norm is sigma·||v||-independent —
// the per-coordinate deviation is sigma/sqrt(dim) — re-normalized to unit
// length. sigma is therefore a dimension-free noise-to-signal ratio: for a
// unit v, E[IP(v, noisy(v))] ≈ 1/sqrt(1+sigma²). It models encoder error:
// the larger sigma, the worse the encoder.
func AddGaussianNoise(rng *rand.Rand, v []float32, sigma float64) []float32 {
	if len(v) == 0 {
		return nil
	}
	perCoord := sigma / math.Sqrt(float64(len(v)))
	out := make([]float32, len(v))
	for i := range v {
		out[i] = v[i] + float32(rng.NormFloat64()*perCoord)
	}
	return Normalize(out)
}

// RandProjection returns a rows×cols random Gaussian projection matrix in
// row-major order. It models an encoder's mapping from a latent space into
// that encoder's embedding space.
func RandProjection(rng *rand.Rand, rows, cols int) []float32 {
	m := make([]float32, rows*cols)
	for i := range m {
		m[i] = float32(rng.NormFloat64())
	}
	return m
}

// ApplyProjection computes normalize(M·x) where M is rows×len(x) row-major.
func ApplyProjection(m []float32, rows int, x []float32) []float32 {
	cols := len(x)
	if len(m) != rows*cols {
		panic("vec: projection shape mismatch")
	}
	out := make([]float32, rows)
	for r := 0; r < rows; r++ {
		out[r] = Dot(m[r*cols:(r+1)*cols], x)
	}
	return Normalize(out)
}
