package vec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// forceGeneric swaps the installed kernels for the pure-Go reference and
// returns a restore func. Tests in this package run sequentially, so the
// swap cannot race with other kernel users.
func forceGeneric() (restore func()) {
	d, u := dotImpl, dotCodesImpl
	dotImpl, dotCodesImpl = dotGeneric, dotCodesGeneric
	return func() { dotImpl, dotCodesImpl = d, u }
}

func randInt16(rng *rand.Rand, n int) []int16 {
	out := make([]int16, n)
	for i := range out {
		// Full range of the quantized-query contract (see sq8MaxQ).
		out[i] = int16(rng.Intn(2*sq8MaxQ+1) - sq8MaxQ)
	}
	return out
}

func randFloats(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

func randCodes(rng *rand.Rand, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(rng.Intn(256))
	}
	return out
}

func TestKernelName(t *testing.T) {
	switch KernelName() {
	case "go", "avx2", "neon":
		t.Logf("installed kernel: %s", KernelName())
	default:
		t.Fatalf("unknown kernel name %q", KernelName())
	}
}

// TestDotKernelBitExact sweeps every length around the unroll/vector-width
// boundary — all tails 0–7 at several multiples of 8, plus everything in
// between — and requires the installed kernel to match the pure-Go
// reference bit for bit. On a purego build (or a CPU without the SIMD
// features) this degenerates to reference-vs-reference, which keeps the
// test meaningful as a determinism check under every build tag.
func TestDotKernelBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 0; n <= 131; n++ {
		a := randFloats(rng, n)
		b := randFloats(rng, n)
		q := randInt16(rng, n)
		c := randCodes(rng, n)
		if got, want := dotImpl(a, b), dotGeneric(a, b); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("dot len=%d: kernel %v (%#x) != reference %v (%#x)",
				n, got, math.Float32bits(got), want, math.Float32bits(want))
		}
		if got, want := dotCodesImpl(q, c), dotCodesGeneric(q, c); got != want {
			t.Fatalf("dotCodes len=%d: kernel %d != reference %d", n, got, want)
		}
	}
}

// TestDotKernelExtremes feeds values whose sums are catastrophically
// cancellation-prone — mixed magnitudes across 40 orders, exact negations
// offset by one lane — where any deviation in accumulation order or a
// fused multiply-add shows up in the last ULP.
func TestDotKernelExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			mag := math.Pow(10, float64(rng.Intn(41)-20))
			a[i] = float32(rng.NormFloat64() * mag)
			b[i] = float32(rng.NormFloat64() * mag)
			if i > 0 && rng.Intn(3) == 0 {
				a[i] = -a[i-1] // adjacent-lane cancellation
				b[i] = b[i-1]
			}
		}
		if got, want := dotImpl(a, b), dotGeneric(a, b); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("trial %d len=%d: kernel %v (%#x) != reference %v (%#x)",
				trial, n, got, math.Float32bits(got), want, math.Float32bits(want))
		}
	}
}

// TestScannerKernelAgreement locks the scanner-level contract: FullIP
// results and Scan's per-segment early-exit decisions must be identical
// between the installed kernel and the pure-Go reference. Modality dims
// are chosen to exercise tails (13 = 8+5, 7 = pure tail, 24 = no tail).
func TestScannerKernelAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dims := []int{13, 7, 24}
	st := NewFlatStore(dims, 64)
	for i := 0; i < 64; i++ {
		row := st.AppendRow()
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		Normalize(row[0:13])
		Normalize(row[13:20])
		Normalize(row[20:44])
	}
	w := Weights{0.8, 0.5, 0.3}
	query := Multi{
		Normalized(randFloats(rng, 13)),
		Normalized(randFloats(rng, 7)),
		Normalized(randFloats(rng, 24)),
	}

	kern := NewFlatScanner(st, w, query)
	restore := forceGeneric()
	ref := NewFlatScanner(st, w, query)
	restore()

	for i := 0; i < st.Len(); i++ {
		row := st.Row(i)
		kip := kern.FullIP(row)
		restore2 := forceGeneric()
		rip := ref.FullIP(row)
		restore2()
		if math.Float32bits(kip) != math.Float32bits(rip) {
			t.Fatalf("row %d FullIP: kernel %v != reference %v", i, kip, rip)
		}
		// Thresholds straddling the exact IP exercise both the early-exit
		// and exact outcomes of Scan; the decisions must match exactly.
		for _, thr := range []float32{kip - 0.1, kip - 1e-6, kip, kip + 1e-6, kern.SumW2()} {
			kv, kexact := kern.Scan(row, thr)
			restore3 := forceGeneric()
			rv, rexact := ref.Scan(row, thr)
			restore3()
			if kexact != rexact || math.Float32bits(kv) != math.Float32bits(rv) {
				t.Fatalf("row %d Scan(thr=%v): kernel (%v,%v) != reference (%v,%v)",
					i, thr, kv, kexact, rv, rexact)
			}
		}
	}
}

// FuzzDotKernel drives arbitrary byte patterns — including NaN, Inf and
// denormal encodings — through both kernels. Any payload where the SIMD
// path and the reference disagree in even one bit is a bug.
func FuzzDotKernel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	seed := make([]byte, 9*8+3) // 9 float pairs + partial tail bytes
	rng := rand.New(rand.NewSource(3))
	rng.Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		a := make([]float32, n)
		b := make([]float32, n)
		q := make([]int16, n)
		c := make([]uint8, n)
		for i := 0; i < n; i++ {
			a[i] = math.Float32frombits(uint32(data[8*i]) | uint32(data[8*i+1])<<8 |
				uint32(data[8*i+2])<<16 | uint32(data[8*i+3])<<24)
			b[i] = math.Float32frombits(uint32(data[8*i+4]) | uint32(data[8*i+5])<<8 |
				uint32(data[8*i+6])<<16 | uint32(data[8*i+7])<<24)
			q[i] = int16(uint16(data[8*i+5]) | uint16(data[8*i+6])<<8)
			c[i] = data[8*i+4]
		}
		if got, want := dotImpl(a, b), dotGeneric(a, b); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("dot len=%d: kernel %v (%#x) != reference %v (%#x)",
				n, got, math.Float32bits(got), want, math.Float32bits(want))
		}
		if got, want := dotCodesImpl(q, c), dotCodesGeneric(q, c); got != want {
			t.Fatalf("dotCodes len=%d: kernel %d != reference %d", n, got, want)
		}
	})
}

// BenchmarkKernel compares the installed dot kernel (SIMD where the CPU
// has it; named after vec.KernelName) against the pure-Go reference
// schedule, for both the float32 sweep and the SQ8 integer-dot
// sweep (int16 query × uint8 codes), at segment lengths spanning one
// modality to a large fused row.
// CI gates the ns/op of these via cmd/benchgate, and the variant in the
// sub-benchmark name records which kernel produced the artifact numbers.
func BenchmarkKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	impls := []struct {
		name     string
		dot      func(a, bb []float32) float32
		dotCodes func(q []int16, c []uint8) int32
	}{
		{kernelName, dotImpl, dotCodesImpl},
		{"go", dotGeneric, dotCodesGeneric},
	}
	for _, n := range []int{64, 256, 1024} {
		x := randFloats(rng, n)
		y := randFloats(rng, n)
		q := randInt16(rng, n)
		codes := randCodes(rng, n)
		for _, im := range impls {
			b.Run(fmt.Sprintf("dot/%s/n=%d", im.name, n), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(8 * n))
				var acc float32
				for i := 0; i < b.N; i++ {
					acc += im.dot(x, y)
				}
				sinkF32 = acc
			})
			b.Run(fmt.Sprintf("dotcodes/%s/n=%d", im.name, n), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(3 * n))
				var acc int32
				for i := 0; i < b.N; i++ {
					acc += im.dotCodes(q, codes)
				}
				sinkI32 = acc
			})
		}
	}
}

var sinkI32 int32
