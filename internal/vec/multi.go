package vec

import (
	"fmt"
	"math"
)

// Multi is a multi-vector representation of an object or query: one
// L2-normalized vector per modality (§V of the paper). The slice index is
// the modality index; modality 0 is the target modality by convention.
type Multi [][]float32

// Dims returns the per-modality dimensions of m.
func (m Multi) Dims() []int {
	out := make([]int, len(m))
	for i, v := range m {
		out[i] = len(v)
	}
	return out
}

// TotalDim returns the dimension of the concatenated vector.
func (m Multi) TotalDim() int {
	total := 0
	for _, v := range m {
		total += len(v)
	}
	return total
}

// Weights holds the per-modality weights ω_i of §VI. The joint similarity
// between two multi-vectors under w is Σ ω_i² · IP_i (Lemma 1).
type Weights []float32

// Uniform returns m equal weights that square-sum to 1, the paper's
// ω_0² = ... = ω_{m-1}² = 1/m starting point. The weights are computed in
// float64 and then renormalized so the float32 squared sum lands exactly
// on 1.0 — naive float32(1/√m) weights drift by a few ULPs per modality,
// which compounds through SumSquared into every Lemma 4 bound.
func Uniform(m int) Weights {
	w := make(Weights, m)
	v := float32(math.Sqrt(1 / float64(m)))
	for i := range w {
		w[i] = v
	}
	return w.Renormalize(1)
}

// Renormalize rescales w in place so that SumSquared() equals target as
// exactly as float32 representation allows, and returns w. The scale is
// computed in float64 to avoid the drift of a float32 running sum, then a
// final correction nudges one weight so the float64-accumulated squared
// sum lands on target (ratios between weights are preserved to within one
// ULP, so joint-similarity rankings are unaffected). A non-positive
// squared sum (degenerate collapse) resets to equal weights at the target
// scale.
func (w Weights) Renormalize(target float64) Weights {
	if len(w) == 0 {
		return w
	}
	sum := w.sumSquared64()
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		v := float32(math.Sqrt(target / float64(len(w))))
		for i := range w {
			w[i] = v
		}
	} else {
		scale := math.Sqrt(target / sum)
		for i := range w {
			w[i] = float32(float64(w[i]) * scale)
		}
	}
	// float32 quantization of the scaled weights leaves a residual of a few
	// ULPs. Absorb it by nudging one weight at a time (cycling so no single
	// weight's ULP granularity limits the search) until the
	// float64-accumulated squared sum rounds in float32 exactly to target.
	// Candidates per step: the analytic correction δ = diff/(2·ω_j) and the
	// adjacent representable values, in case δ is below ω_j's half-ULP.
	t32 := float32(target)
	for iter := 0; iter < 4*len(w); iter++ {
		sum := w.sumSquared64()
		if float32(sum) == t32 {
			break
		}
		diff := target - sum
		j := iter % len(w)
		wj := float64(w[j])
		if wj == 0 {
			continue
		}
		cands := [3]float32{
			float32(wj + diff/(2*wj)),
			math.Nextafter32(w[j], float32(math.Inf(1))),
			math.Nextafter32(w[j], float32(math.Inf(-1))),
		}
		best, bestErr := w[j], math.Abs(diff)
		for _, c := range cands {
			w[j] = c
			s := w.sumSquared64()
			if float32(s) == t32 {
				best = c
				break
			}
			if e := math.Abs(target - s); e < bestErr {
				best, bestErr = c, e
			}
		}
		w[j] = best
	}
	return w
}

// Squared returns the squared weights ω_i², which is what Lemma 1
// multiplies per-modality similarities by.
func (w Weights) Squared() []float32 {
	out := make([]float32, len(w))
	for i, x := range w {
		out[i] = x * x
	}
	return out
}

// Clone returns a copy of w.
func (w Weights) Clone() Weights {
	out := make(Weights, len(w))
	copy(out, w)
	return out
}

// JointIP computes the joint similarity between two multi-vectors under
// the weights w: Σ ω_i² · IP(a_i, b_i) (Lemma 1). Modalities beyond
// len(w) — or with a zero weight — are skipped, which implements the
// t != m case of §VII-B (missing query modalities get ω_i = 0).
func JointIP(w Weights, a, b Multi) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: joint IP modality mismatch %d != %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		if i >= len(w) || w[i] == 0 {
			continue
		}
		s += w[i] * w[i] * Dot(a[i], b[i])
	}
	return s
}

// JointSquaredL2 computes the weighted squared Euclidean distance between
// two multi-vectors: Σ ω_i² · ||a_i - b_i||² (Eq. 9).
func JointSquaredL2(w Weights, a, b Multi) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: joint L2 modality mismatch %d != %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		if i >= len(w) || w[i] == 0 {
			continue
		}
		s += w[i] * w[i] * SquaredL2(a[i], b[i])
	}
	return s
}

// WeightedConcat builds the concatenated vector
// [ω_0·a_0, ..., ω_{m-1}·a_{m-1}] of §VI. The result is NOT re-normalized:
// Lemma 1 requires the raw weighted concatenation.
func WeightedConcat(w Weights, a Multi) []float32 {
	out := make([]float32, 0, a.TotalDim())
	for i, v := range a {
		wi := float32(0)
		if i < len(w) {
			wi = w[i]
		}
		for _, x := range v {
			out = append(out, wi*x)
		}
	}
	return out
}

// SumSquared returns Σ ω_i², used to relate joint IP and joint L2
// on normalized per-modality vectors:
//
//	JointIP = Σ ω_i² − ½·JointSquaredL2.
//
// The sum is accumulated in float64: it seeds every Lemma 4 upper bound,
// and float32 accumulation drifts by one ULP per modality.
func (w Weights) SumSquared() float32 {
	return float32(w.sumSquared64())
}

func (w Weights) sumSquared64() float64 {
	var s float64
	for _, x := range w {
		s += float64(x) * float64(x)
	}
	return s
}

// PartialIPScanner incrementally evaluates the joint inner product between
// a fixed query and one candidate, one modality at a time, implementing the
// multi-vector computation optimization of §VII-B (Lemma 4).
//
// On normalized per-modality vectors,
//
//	IP_joint(q̂, û) = Σ ω_i² − ½ · Σ ω_i²·||q_i − u_i||²,
//
// and the partial distance Σ_{i<x} ω_i²·||q_i − u_i||² only grows as more
// modalities are scanned, so the partial IP (an upper bound on the true
// joint IP) only shrinks. Once it drops to or below a threshold, the
// candidate can be discarded without scanning the remaining modalities.
type PartialIPScanner struct {
	w     Weights
	query Multi
	sumW2 float32
}

// NewPartialIPScanner prepares a scanner for the given weights and query.
func NewPartialIPScanner(w Weights, query Multi) *PartialIPScanner {
	return &PartialIPScanner{w: w, query: query, sumW2: w.SumSquared()}
}

// Scan evaluates the joint IP between the scanner's query and cand.
// If at any point the running upper bound drops to or at most threshold,
// Scan returns (bound, false) without scanning further modalities; the
// caller may safely discard cand (Lemma 4). Otherwise it returns the exact
// joint IP and true.
func (s *PartialIPScanner) Scan(cand Multi, threshold float32) (ip float32, exact bool) {
	var partial float32 // Σ ω_i²·||q_i − u_i||² over scanned modalities
	for i := range cand {
		if i >= len(s.w) || s.w[i] == 0 {
			continue
		}
		partial += s.w[i] * s.w[i] * SquaredL2(s.query[i], cand[i])
		if bound := s.sumW2 - 0.5*partial; bound <= threshold {
			return bound, false
		}
	}
	return s.sumW2 - 0.5*partial, true
}

// FullIP computes the exact joint IP without early termination, using the
// same distance formulation as Scan so the two agree bit-for-bit on the
// exact path.
func (s *PartialIPScanner) FullIP(cand Multi) float32 {
	return s.sumW2 - 0.5*JointSquaredL2(s.w, s.query, cand)
}
