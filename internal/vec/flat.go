package vec

import "fmt"

// FlatStore packs the multi-vectors of many objects into rows of one
// contiguous arena: object i occupies a rowDim-float row, and modality m of
// that object is the sub-range [offs[m], offs[m+1]) of the row. Flat
// storage removes the two levels of pointer chasing a
// [][]float32-of-[]float32 layout costs on every distance computation and
// keeps each candidate's modalities on adjacent cache lines, which is what
// the fused FlatScanner kernel relies on for its throughput.
//
// The arena is chunked so it can grow without ever moving a stored row:
// the base block (the bulk arena — sized by the construction capacity or
// adopted whole from a v3/v4 collection file) is followed by fixed-size
// overflow chunks, each allocated at full size the moment it is needed.
// Appends therefore never reallocate previously written memory, so views
// returned by Row/Modality/Multi stay valid for the lifetime of the store —
// this is what lets one store be the single shared corpus for the
// collection, the graph build, every pooled searcher, and persistence at
// once, instead of each layer holding its own copy.
//
// A FlatStore is safe for concurrent readers. Append must not race with
// readers; callers serialize mutation externally (the Engine holds its
// write lock). Snapshot pins a length for lock-free readers that must not
// observe concurrent appends.
type FlatStore struct {
	dims   []int
	offs   []int // len(dims)+1 prefix offsets into a row
	rowDim int
	// bulk is the base arena block: bulkCap rows allocated up front (or
	// adopted from a collection file). Rows [0, min(n, bulkCap)) live here.
	bulk    []float32
	bulkCap int
	// chunks hold rows appended past the bulk capacity, chunkRows rows per
	// chunk (power of two), each chunk fully allocated on creation.
	chunks     [][]float32
	chunkRows  int
	chunkShift uint
	n          int
	// sq8 is the optional int8 scalar-quantized shadow of the arena (see
	// sq8.go); nil unless quantization is enabled.
	sq8 *SQ8Store
}

// chunkTargetFloats sizes overflow chunks at ~64 KiB of float32s: large
// enough that the per-chunk allocation amortizes over hundreds of rows,
// small enough that the committed-but-unfilled slack of the last chunk
// keeps total corpus memory within a whisker of the raw payload even for
// small collections.
const chunkTargetFloats = 1 << 14

// newFlatLayout validates dims and computes the row layout.
func newFlatLayout(dims []int) ([]int, []int, int) {
	if len(dims) == 0 {
		panic("vec: flat store needs at least one modality")
	}
	offs := make([]int, len(dims)+1)
	for i, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("vec: flat store modality %d has non-positive dim %d", i, d))
		}
		offs[i+1] = offs[i] + d
	}
	return append([]int(nil), dims...), offs, offs[len(dims)]
}

// NewFlatStore creates an empty store for objects with the given
// per-modality dimensions. capacity rows are committed up front as one
// contiguous bulk block; appends beyond it land in overflow chunks.
func NewFlatStore(dims []int, capacity int) *FlatStore {
	d, offs, rowDim := newFlatLayout(dims)
	if capacity < 0 {
		capacity = 0
	}
	s := &FlatStore{dims: d, offs: offs, rowDim: rowDim, bulkCap: capacity}
	if capacity > 0 {
		s.bulk = make([]float32, capacity*rowDim)
	}
	s.initChunkLayout()
	return s
}

// initChunkLayout picks the overflow chunk size: the smallest power-of-two
// row count whose chunk reaches ~chunkTargetFloats (at least one row).
func (s *FlatStore) initChunkLayout() {
	rows := 1
	shift := uint(0)
	for rows*s.rowDim < chunkTargetFloats && rows < 1<<16 {
		rows <<= 1
		shift++
	}
	s.chunkRows = rows
	s.chunkShift = shift
}

// FlatFromMulti packs objects into a fresh store. It returns nil for an
// empty object slice (there are no dimensions to derive a layout from).
func FlatFromMulti(objects []Multi) *FlatStore {
	if len(objects) == 0 {
		return nil
	}
	s := NewFlatStore(objects[0].Dims(), len(objects))
	for _, o := range objects {
		s.AppendMulti(o)
	}
	return s
}

// FlatStoreFromArena adopts an already packed arena — rows of the given
// per-modality dimensions laid out back-to-back — without copying. The
// v3/v4 collection loaders produce exactly this layout, so a loaded engine
// uses its arena as the shared corpus store for free; subsequent appends
// land in overflow chunks, never touching (or invalidating views into) the
// adopted block. len(arena) must be a whole number of rows.
func FlatStoreFromArena(dims []int, arena []float32) *FlatStore {
	d, offs, rowDim := newFlatLayout(dims)
	if len(arena)%rowDim != 0 {
		panic(fmt.Sprintf("vec: arena of %d floats is not a whole number of %d-float rows", len(arena), rowDim))
	}
	s := &FlatStore{
		dims:    d,
		offs:    offs,
		rowDim:  rowDim,
		bulk:    arena,
		bulkCap: len(arena) / rowDim,
		n:       len(arena) / rowDim,
	}
	s.initChunkLayout()
	return s
}

// Len returns the number of stored objects.
func (s *FlatStore) Len() int { return s.n }

// Modalities returns the number of modalities per object.
func (s *FlatStore) Modalities() int { return len(s.dims) }

// Dims returns the per-modality dimensions.
func (s *FlatStore) Dims() []int { return append([]int(nil), s.dims...) }

// Offsets returns the per-modality prefix offsets into a row
// (len(dims)+1 entries). The returned slice is shared and must not be
// mutated; it exists so row-view consumers (the fused graph space) avoid
// an allocation per accessor call.
func (s *FlatStore) Offsets() []int { return s.offs }

// RowDim returns the length of one packed row (the concatenated dim).
func (s *FlatStore) RowDim() int { return s.rowDim }

// Row returns object i's packed row (a view, not a copy). Views stay valid
// across appends for the lifetime of the store.
func (s *FlatStore) Row(i int) []float32 {
	if i < s.bulkCap {
		off := i * s.rowDim
		return s.bulk[off : off+s.rowDim : off+s.rowDim]
	}
	j := i - s.bulkCap
	c := s.chunks[j>>s.chunkShift]
	off := (j & (s.chunkRows - 1)) * s.rowDim
	return c[off : off+s.rowDim : off+s.rowDim]
}

// Modality returns modality m of object i (a view, not a copy).
func (s *FlatStore) Modality(i, m int) []float32 {
	row := s.Row(i)
	return row[s.offs[m]:s.offs[m+1]:s.offs[m+1]]
}

// Multi returns object i as a Multi whose per-modality slices are views
// into the packed row, so FlatFromMulti followed by Multi round-trips
// without copying.
func (s *FlatStore) Multi(i int) Multi {
	row := s.Row(i)
	out := make(Multi, len(s.dims))
	for m := range s.dims {
		out[m] = row[s.offs[m]:s.offs[m+1]:s.offs[m+1]]
	}
	return out
}

// AppendRow reserves the next row and returns it for the caller to fill.
// The returned slice is zeroed bulk/chunk memory of length RowDim; callers
// write the packed modalities directly into it (the Collection normalizes
// straight into the arena this way, with no intermediate per-object
// allocation). Not safe to call concurrently with readers.
func (s *FlatStore) AppendRow() []float32 {
	var row []float32
	if s.n < s.bulkCap {
		off := s.n * s.rowDim
		row = s.bulk[off : off+s.rowDim : off+s.rowDim]
	} else {
		j := s.n - s.bulkCap
		ci := j >> s.chunkShift
		if ci == len(s.chunks) {
			s.chunks = append(s.chunks, make([]float32, s.chunkRows*s.rowDim))
		}
		off := (j & (s.chunkRows - 1)) * s.rowDim
		row = s.chunks[ci][off : off+s.rowDim : off+s.rowDim]
	}
	s.n++
	return row
}

// AppendMulti validates o against the store layout, packs it into a new
// row and returns the new object's index.
func (s *FlatStore) AppendMulti(o Multi) int {
	if len(o) != len(s.dims) {
		panic(fmt.Sprintf("vec: flat append with %d modalities, store has %d", len(o), len(s.dims)))
	}
	for m, v := range o {
		if len(v) != s.dims[m] {
			panic(fmt.Sprintf("vec: flat append modality %d has dim %d, store expects %d", m, len(v), s.dims[m]))
		}
	}
	row := s.AppendRow()
	for m, v := range o {
		copy(row[s.offs[m]:s.offs[m+1]], v)
	}
	return s.n - 1
}

// Snapshot returns a read-only view of the store pinned at its current
// length: the snapshot shares every stored row (zero-copy) but carries its
// own chunk table and count, so appends to the original — which only write
// memory past the pinned length and extend the original's chunk table —
// are invisible to, and race-free against, readers of the snapshot. Used
// for off-lock work (weight training) over a consistent corpus.
func (s *FlatStore) Snapshot() *FlatStore {
	snap := *s
	snap.chunks = append([][]float32(nil), s.chunks...)
	if s.sq8 != nil {
		snap.sq8 = s.sq8.snapshot()
	}
	return &snap
}

// MemoryBytes reports the bytes committed to vector storage: the bulk
// block plus every allocated overflow chunk. This is the "corpus" term of
// the per-component accounting in Stats — with the single-store
// architecture it is also the only resident copy of the vectors.
func (s *FlatStore) MemoryBytes() int64 {
	total := len(s.bulk)
	for _, c := range s.chunks {
		total += len(c)
	}
	return int64(total) * 4
}

// Runs invokes fn over the contiguous filled regions of the arena in row
// order: the filled prefix of the bulk block, then the filled prefix of
// each overflow chunk. Persistence writes the whole corpus with one pass
// over these few large runs instead of one write per object.
func (s *FlatStore) Runs(fn func(run []float32) error) error {
	remaining := s.n
	if s.bulkCap > 0 {
		rows := remaining
		if rows > s.bulkCap {
			rows = s.bulkCap
		}
		if rows > 0 {
			if err := fn(s.bulk[:rows*s.rowDim]); err != nil {
				return err
			}
		}
		remaining -= rows
	}
	for _, c := range s.chunks {
		if remaining <= 0 {
			break
		}
		rows := remaining
		if rows > s.chunkRows {
			rows = s.chunkRows
		}
		if err := fn(c[:rows*s.rowDim]); err != nil {
			return err
		}
		remaining -= rows
	}
	return nil
}

// PackQuery flattens a query multi-vector into one row in the store's
// layout. Missing (nil) modalities become zero ranges; combined with a
// zero weight they neither score nor steer routing (§VII-B).
func (s *FlatStore) PackQuery(q Multi) []float32 {
	row := make([]float32, s.rowDim)
	s.PackQueryInto(row, q)
	return row
}

// PackQueryInto is PackQuery into a caller-owned buffer of length RowDim,
// zeroing it first — the allocation-free path pooled searchers reuse
// across calls.
func (s *FlatStore) PackQueryInto(row []float32, q Multi) {
	if len(q) != len(s.dims) {
		panic(fmt.Sprintf("vec: query has %d modalities, store has %d", len(q), len(s.dims)))
	}
	if len(row) != s.rowDim {
		panic(fmt.Sprintf("vec: pack buffer has %d floats, store rows have %d", len(row), s.rowDim))
	}
	for i := range row {
		row[i] = 0
	}
	for m, v := range q {
		if v == nil {
			continue
		}
		if len(v) != s.dims[m] {
			panic(fmt.Sprintf("vec: query modality %d has dim %d, store expects %d", m, len(v), s.dims[m]))
		}
		copy(row[s.offs[m]:s.offs[m+1]], v)
	}
}

// ---------------------------------------------------------------------------
// Fused joint-similarity kernel.

// flatSeg is one active (non-zero-weight) modality range of a packed row.
type flatSeg struct {
	a, b int
	// halfC is ½·ω_i²·(‖q_i‖² + 1): the constant part of the distance-form
	// joint IP for this modality on unit-norm stored vectors, hoisted out
	// of the per-candidate loop.
	halfC float32
}

// FlatScanner evaluates the Lemma 1 joint similarity Σ ω_i²·IP_i between
// a fixed query and packed candidate rows in a single fused pass: the
// query is pre-scaled by ω_i² per modality, so each candidate costs one
// unrolled multiply-add sweep over its contiguous row — no per-modality
// slice dispatch and no weight multiplies in the inner loop.
//
// Like PartialIPScanner it works in the distance formulation of Eq. 8,
// IP_joint = Σω_i² − ½·Σω_i²·‖q_i−u_i‖², expanded with the stored rows'
// unit per-modality norms (Collection.Add normalizes; so does the paper).
// Scan implements the Lemma 4 early termination by checking the shrinking
// upper bound at modality boundaries only.
type FlatScanner struct {
	sq    []float32 // ω_i²-pre-scaled packed query (zero on inactive ranges)
	segs  []flatSeg
	sumW2 float32
}

// NewFlatScanner prepares a fused scanner for queries against rows laid
// out like st. Modalities at or beyond len(w), or with a zero weight, are
// skipped entirely (the t != m case of §VII-B).
func NewFlatScanner(st *FlatStore, w Weights, query Multi) *FlatScanner {
	fs := &FlatScanner{}
	fs.Reset(st, w, query)
	return fs
}

// Reset re-targets the scanner at a new query (and weights) against rows
// laid out like st, reusing the pre-scaled-query and segment buffers from
// the previous call. Pooled searchers call this once per search instead
// of NewFlatScanner, which is what keeps the steady-state search path at
// zero allocations.
func (fs *FlatScanner) Reset(st *FlatStore, w Weights, query Multi) {
	if cap(fs.sq) < st.rowDim {
		fs.sq = make([]float32, st.rowDim)
	}
	sq := fs.sq[:st.rowDim]
	fs.sq = sq
	st.PackQueryInto(sq, query)
	fs.segs = fs.segs[:0]
	fs.sumW2 = w.SumSquared()
	for m := range st.dims {
		if m >= len(w) || w[m] == 0 {
			for i := st.offs[m]; i < st.offs[m+1]; i++ {
				sq[i] = 0
			}
			continue
		}
		w2 := w[m] * w[m]
		var qq float32
		for i := st.offs[m]; i < st.offs[m+1]; i++ {
			qq += sq[i] * sq[i]
			sq[i] *= w2
		}
		fs.segs = append(fs.segs, flatSeg{a: st.offs[m], b: st.offs[m+1], halfC: 0.5 * w2 * (qq + 1)})
	}
}

// SumW2 returns Σ ω_i², the joint IP of the query with itself under unit
// norms and the upper bound Scan starts from.
func (fs *FlatScanner) SumW2() float32 { return fs.sumW2 }

// FullIP computes the exact joint IP against a packed row with no early
// termination. It accumulates per-segment in the same order as Scan, so
// the two agree bit-for-bit on the exact path. Each segment is one call
// into the installed dot kernel (AVX2/NEON where available, the pure-Go
// reference otherwise — see kernel.go).
func (fs *FlatScanner) FullIP(row []float32) float32 {
	ip := fs.sumW2
	sq := fs.sq
	for _, sg := range fs.segs {
		a := sq[sg.a:sg.b]
		b := row[sg.a:sg.b:sg.b]
		ip += dotImpl(a, b) - sg.halfC
	}
	return ip
}

// Scan evaluates the joint IP against row, checking the Lemma 4 upper
// bound after each modality segment: if the bound drops to or below
// threshold, Scan returns (bound, false) without touching the remaining
// segments and the caller may discard the candidate. Otherwise it returns
// the exact joint IP and true. Like PartialIPScanner.Scan, the bound is
// checked after every segment including the last, so exact == true
// implies ip > threshold.
func (fs *FlatScanner) Scan(row []float32, threshold float32) (ip float32, exact bool) {
	ip = fs.sumW2
	sq := fs.sq
	for _, sg := range fs.segs {
		a := sq[sg.a:sg.b]
		b := row[sg.a:sg.b:sg.b]
		ip += dotImpl(a, b) - sg.halfC
		if ip <= threshold {
			return ip, false
		}
	}
	return ip, true
}

// Scan and FullIP share the exact per-segment accumulation (both call the
// same installed kernel, and every kernel honors the fixed accumulation
// schedule in kernel.go), so the early-exiting and exact search paths —
// and the AVX2/NEON/pure-Go builds — agree bit-for-bit.
