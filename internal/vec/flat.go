package vec

import "fmt"

// FlatStore packs the multi-vectors of many objects into one contiguous
// []float32: object i occupies the row buf[i*rowDim : (i+1)*rowDim], and
// modality m of that object is the sub-range [offs[m], offs[m+1]) of the
// row. Flat storage removes the two levels of pointer chasing a
// [][]float32-of-[]float32 layout costs on every distance computation and
// keeps each candidate's modalities on adjacent cache lines, which is what
// the fused FlatScanner kernel relies on for its throughput.
//
// A FlatStore is safe for concurrent readers. Append invalidates nothing —
// Row and Multi compute views on demand — but must not race with readers;
// callers serialize mutation externally (the Engine holds its write lock).
type FlatStore struct {
	dims   []int
	offs   []int // len(dims)+1 prefix offsets into a row
	rowDim int
	buf    []float32
	n      int
}

// NewFlatStore creates an empty store for objects with the given
// per-modality dimensions, pre-allocating room for capacity rows.
func NewFlatStore(dims []int, capacity int) *FlatStore {
	if len(dims) == 0 {
		panic("vec: flat store needs at least one modality")
	}
	offs := make([]int, len(dims)+1)
	for i, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("vec: flat store modality %d has non-positive dim %d", i, d))
		}
		offs[i+1] = offs[i] + d
	}
	rowDim := offs[len(dims)]
	if capacity < 0 {
		capacity = 0
	}
	return &FlatStore{
		dims:   append([]int(nil), dims...),
		offs:   offs,
		rowDim: rowDim,
		buf:    make([]float32, 0, capacity*rowDim),
	}
}

// FlatFromMulti packs objects into a fresh store. It returns nil for an
// empty object slice (there are no dimensions to derive a layout from).
func FlatFromMulti(objects []Multi) *FlatStore {
	if len(objects) == 0 {
		return nil
	}
	s := NewFlatStore(objects[0].Dims(), len(objects))
	for _, o := range objects {
		s.AppendMulti(o)
	}
	return s
}

// FlatStoreFromArena wraps an already packed arena — rows of the given
// per-modality dimensions laid out back-to-back — without copying. The
// v3 collection loader produces exactly this layout, so a loaded engine
// adopts its arena as the search store for free. len(arena) must be a
// multiple of the row dimension.
func FlatStoreFromArena(dims []int, arena []float32) *FlatStore {
	s := NewFlatStore(dims, 0)
	if len(arena)%s.rowDim != 0 {
		panic(fmt.Sprintf("vec: arena of %d floats is not a whole number of %d-float rows", len(arena), s.rowDim))
	}
	s.buf = arena
	s.n = len(arena) / s.rowDim
	return s
}

// Len returns the number of stored objects.
func (s *FlatStore) Len() int { return s.n }

// Modalities returns the number of modalities per object.
func (s *FlatStore) Modalities() int { return len(s.dims) }

// Dims returns the per-modality dimensions.
func (s *FlatStore) Dims() []int { return append([]int(nil), s.dims...) }

// RowDim returns the length of one packed row (the concatenated dim).
func (s *FlatStore) RowDim() int { return s.rowDim }

// Row returns object i's packed row (a view, not a copy).
func (s *FlatStore) Row(i int) []float32 {
	off := i * s.rowDim
	return s.buf[off : off+s.rowDim : off+s.rowDim]
}

// Modality returns modality m of object i (a view, not a copy).
func (s *FlatStore) Modality(i, m int) []float32 {
	off := i * s.rowDim
	a, b := off+s.offs[m], off+s.offs[m+1]
	return s.buf[a:b:b]
}

// Multi returns object i as a Multi whose per-modality slices are views
// into the packed row, so FlatFromMulti followed by Multi round-trips
// without copying.
func (s *FlatStore) Multi(i int) Multi {
	out := make(Multi, len(s.dims))
	for m := range s.dims {
		out[m] = s.Modality(i, m)
	}
	return out
}

// AppendMulti validates o against the store layout, packs it into a new
// row and returns the new object's index.
func (s *FlatStore) AppendMulti(o Multi) int {
	if len(o) != len(s.dims) {
		panic(fmt.Sprintf("vec: flat append with %d modalities, store has %d", len(o), len(s.dims)))
	}
	for m, v := range o {
		if len(v) != s.dims[m] {
			panic(fmt.Sprintf("vec: flat append modality %d has dim %d, store expects %d", m, len(v), s.dims[m]))
		}
	}
	for _, v := range o {
		s.buf = append(s.buf, v...)
	}
	s.n++
	return s.n - 1
}

// PackQuery flattens a query multi-vector into one row in the store's
// layout. Missing (nil) modalities become zero ranges; combined with a
// zero weight they neither score nor steer routing (§VII-B).
func (s *FlatStore) PackQuery(q Multi) []float32 {
	if len(q) != len(s.dims) {
		panic(fmt.Sprintf("vec: query has %d modalities, store has %d", len(q), len(s.dims)))
	}
	row := make([]float32, s.rowDim)
	for m, v := range q {
		if v == nil {
			continue
		}
		if len(v) != s.dims[m] {
			panic(fmt.Sprintf("vec: query modality %d has dim %d, store expects %d", m, len(v), s.dims[m]))
		}
		copy(row[s.offs[m]:s.offs[m+1]], v)
	}
	return row
}

// ---------------------------------------------------------------------------
// Fused joint-similarity kernel.

// flatSeg is one active (non-zero-weight) modality range of a packed row.
type flatSeg struct {
	a, b int
	// halfC is ½·ω_i²·(‖q_i‖² + 1): the constant part of the distance-form
	// joint IP for this modality on unit-norm stored vectors, hoisted out
	// of the per-candidate loop.
	halfC float32
}

// FlatScanner evaluates the Lemma 1 joint similarity Σ ω_i²·IP_i between
// a fixed query and packed candidate rows in a single fused pass: the
// query is pre-scaled by ω_i² per modality, so each candidate costs one
// unrolled multiply-add sweep over its contiguous row — no per-modality
// slice dispatch and no weight multiplies in the inner loop.
//
// Like PartialIPScanner it works in the distance formulation of Eq. 8,
// IP_joint = Σω_i² − ½·Σω_i²·‖q_i−u_i‖², expanded with the stored rows'
// unit per-modality norms (Collection.Add normalizes; so does the paper).
// Scan implements the Lemma 4 early termination by checking the shrinking
// upper bound at modality-segment boundaries only.
type FlatScanner struct {
	sq    []float32 // ω_i²-scaled packed query (zero on inactive ranges)
	segs  []flatSeg
	sumW2 float32
}

// NewFlatScanner prepares a fused scanner for queries against rows laid
// out like st. Modalities at or beyond len(w), or with a zero weight, are
// skipped entirely (the t != m case of §VII-B).
func NewFlatScanner(st *FlatStore, w Weights, query Multi) *FlatScanner {
	sq := st.PackQuery(query)
	fs := &FlatScanner{sq: sq, sumW2: w.SumSquared()}
	for m := range st.dims {
		if m >= len(w) || w[m] == 0 {
			for i := st.offs[m]; i < st.offs[m+1]; i++ {
				sq[i] = 0
			}
			continue
		}
		w2 := w[m] * w[m]
		var qq float32
		for i := st.offs[m]; i < st.offs[m+1]; i++ {
			qq += sq[i] * sq[i]
			sq[i] *= w2
		}
		fs.segs = append(fs.segs, flatSeg{a: st.offs[m], b: st.offs[m+1], halfC: 0.5 * w2 * (qq + 1)})
	}
	return fs
}

// SumW2 returns Σ ω_i², the joint IP of the query with itself under unit
// norms and the upper bound Scan starts from.
func (fs *FlatScanner) SumW2() float32 { return fs.sumW2 }

// FullIP computes the exact joint IP against a packed row with no early
// termination. It accumulates per-segment in the same order as Scan, so
// the two agree bit-for-bit on the exact path. The unrolled sweep is
// written out inline — at production embedding dims a call per segment is
// measurable against a 40–300-float multiply-add loop.
func (fs *FlatScanner) FullIP(row []float32) float32 {
	ip := fs.sumW2
	sq := fs.sq
	for _, sg := range fs.segs {
		a := sq[sg.a:sg.b]
		b := row[sg.a:sg.b]
		b = b[:len(a)]
		var s0, s1, s2, s3 float32
		i := 0
		for ; i+4 <= len(a); i += 4 {
			s0 += a[i] * b[i]
			s1 += a[i+1] * b[i+1]
			s2 += a[i+2] * b[i+2]
			s3 += a[i+3] * b[i+3]
		}
		s := (s0 + s1) + (s2 + s3)
		for ; i < len(a); i++ {
			s += a[i] * b[i]
		}
		ip += s - sg.halfC
	}
	return ip
}

// Scan evaluates the joint IP against row, checking the Lemma 4 upper
// bound after each modality segment: if the bound drops to or below
// threshold, Scan returns (bound, false) without touching the remaining
// segments and the caller may discard the candidate. Otherwise it returns
// the exact joint IP and true. Like PartialIPScanner.Scan, the bound is
// checked after every segment including the last, so exact == true
// implies ip > threshold.
func (fs *FlatScanner) Scan(row []float32, threshold float32) (ip float32, exact bool) {
	ip = fs.sumW2
	sq := fs.sq
	for _, sg := range fs.segs {
		a := sq[sg.a:sg.b]
		b := row[sg.a:sg.b]
		b = b[:len(a)]
		var s0, s1, s2, s3 float32
		i := 0
		for ; i+4 <= len(a); i += 4 {
			s0 += a[i] * b[i]
			s1 += a[i+1] * b[i+1]
			s2 += a[i+2] * b[i+2]
			s3 += a[i+3] * b[i+3]
		}
		s := (s0 + s1) + (s2 + s3)
		for ; i < len(a); i++ {
			s += a[i] * b[i]
		}
		ip += s - sg.halfC
		if ip <= threshold {
			return ip, false
		}
	}
	return ip, true
}

// The kernel's inner loop (written out inline in FullIP and Scan) uses a
// 4-way unroll with four independent accumulators: a single running sum
// serializes on floating-point add latency and roughly halves scalar
// throughput. Scan and FullIP share the exact accumulation order, so the
// optimized and unoptimized search paths agree bit-for-bit.
