package vec

import (
	"math"
	"math/rand"
	"testing"
)

func randomMulti(rng *rand.Rand, dims []int) Multi {
	out := make(Multi, len(dims))
	for i, d := range dims {
		out[i] = RandUnit(rng, d)
	}
	return out
}

// Round trip: Multi → flat row → Multi must be exact, and the store's
// views must alias the packed buffer, not copy it.
func TestFlatStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	dims := []int{24, 12, 7}
	objects := make([]Multi, 9)
	for i := range objects {
		objects[i] = randomMulti(rng, dims)
	}
	st := FlatFromMulti(objects)
	if st.Len() != len(objects) || st.Modalities() != len(dims) || st.RowDim() != 43 {
		t.Fatalf("store shape: len=%d m=%d rowDim=%d", st.Len(), st.Modalities(), st.RowDim())
	}
	for i, o := range objects {
		got := st.Multi(i)
		for m := range dims {
			for j := range o[m] {
				if got[m][j] != o[m][j] {
					t.Fatalf("object %d modality %d coord %d: %v != %v", i, m, j, got[m][j], o[m][j])
				}
			}
			if &got[m][0] != &st.Row(i)[st.offs[m]] {
				t.Fatalf("object %d modality %d view does not alias the packed row", i, m)
			}
		}
	}
	// Append after the fact and round-trip the new row too.
	extra := randomMulti(rng, dims)
	id := st.AppendMulti(extra)
	if id != len(objects) {
		t.Fatalf("append id = %d, want %d", id, len(objects))
	}
	back := st.Multi(id)
	for m := range dims {
		for j := range extra[m] {
			if back[m][j] != extra[m][j] {
				t.Fatalf("appended object modality %d differs", m)
			}
		}
	}
}

func TestFlatFromMultiEmpty(t *testing.T) {
	if st := FlatFromMulti(nil); st != nil {
		t.Fatalf("empty pack returned non-nil store")
	}
}

func TestFlatStorePackQueryMissingModality(t *testing.T) {
	st := NewFlatStore([]int{3, 2}, 0)
	row := st.PackQuery(Multi{[]float32{1, 2, 3}, nil})
	want := []float32{1, 2, 3, 0, 0}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("packed query = %v, want %v", row, want)
		}
	}
}

// The fused kernel must agree with the naive per-modality Lemma 1 sum
// within 1e-5 on normalized vectors, across weight shapes including zero
// and missing (short-weight-vector) modalities.
func TestFlatScannerMatchesNaiveJointIP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dims := []int{16, 9, 5}
	objects := make([]Multi, 64)
	for i := range objects {
		objects[i] = randomMulti(rng, dims)
	}
	st := FlatFromMulti(objects)
	weightSets := []Weights{
		{0.8, 0.6, 0.3},
		{1, 0, 0.5}, // zero-weight modality skipped
		{0.7, 0.7},  // modality beyond len(w) skipped
		Uniform(3),
	}
	for wi, w := range weightSets {
		q := randomMulti(rng, dims)
		fs := NewFlatScanner(st, w, q)
		legacy := NewPartialIPScanner(w, q)
		for i := range objects {
			naive := float64(JointIP(w, q, objects[i]))
			fused := float64(fs.FullIP(st.Row(i)))
			if math.Abs(naive-fused) > 1e-5 {
				t.Fatalf("weights %d object %d: fused %v vs naive %v (Δ=%g)", wi, i, fused, naive, math.Abs(naive-fused))
			}
			old := float64(legacy.FullIP(objects[i]))
			if math.Abs(old-fused) > 1e-5 {
				t.Fatalf("weights %d object %d: fused %v vs legacy scanner %v", wi, i, fused, old)
			}
		}
	}
}

// Scan run to completion must equal FullIP bit-for-bit (the search relies
// on the optimized and unoptimized paths agreeing exactly), and an early
// exit must only happen when the returned bound is at or below threshold.
func TestFlatScannerScanConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	dims := []int{12, 8, 4}
	objects := make([]Multi, 128)
	for i := range objects {
		objects[i] = randomMulti(rng, dims)
	}
	st := FlatFromMulti(objects)
	w := Weights{0.9, 0.5, 0.4}
	q := randomMulti(rng, dims)
	fs := NewFlatScanner(st, w, q)
	neverExit := float32(math.Inf(-1))
	exits := 0
	for i := range objects {
		full := fs.FullIP(st.Row(i))
		got, exact := fs.Scan(st.Row(i), neverExit)
		if !exact || got != full {
			t.Fatalf("object %d: Scan(-inf) = (%v,%v), FullIP = %v", i, got, exact, full)
		}
		threshold := full + 0.01 // force at least the final check to fail
		bound, exact := fs.Scan(st.Row(i), threshold)
		if exact {
			t.Fatalf("object %d: Scan with threshold above exact IP reported exact", i)
		}
		if bound > threshold {
			t.Fatalf("object %d: early-exit bound %v exceeds threshold %v", i, bound, threshold)
		}
		if bound < full-1e-6 {
			t.Fatalf("object %d: bound %v below exact IP %v — not an upper-bound exit", i, bound, full)
		}
		exits++
	}
	if exits == 0 {
		t.Fatal("no early exits exercised")
	}
}

// Uniform weights must square-sum to exactly 1.0 after the float64
// renormalization — the precision-drift fix for the weights path.
func TestUniformSquaredSumExact(t *testing.T) {
	for m := 1; m <= 16; m++ {
		w := Uniform(m)
		if got := w.SumSquared(); got != 1 {
			t.Errorf("m=%d: Uniform squared sum = %.9f, want exactly 1", m, got)
		}
		for i := 1; i < m; i++ {
			ratio := float64(w[i]) / float64(w[0])
			if math.Abs(ratio-1) > 1e-6 {
				t.Errorf("m=%d: weights not equal after renorm: %v", m, w)
			}
		}
	}
}

func TestRenormalizeHitsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(8)
		w := make(Weights, m)
		for i := range w {
			w[i] = float32(rng.Float64()*3 + 0.01)
		}
		target := float64(1 + rng.Intn(3))
		w.Renormalize(target)
		if got := float64(w.SumSquared()); math.Abs(got-target) > 1e-6 {
			t.Fatalf("trial %d: Σω² = %v, want %v", trial, got, target)
		}
	}
	// Degenerate input resets to equal weights at the target scale.
	w := Weights{0, 0, 0}
	w.Renormalize(3)
	for _, x := range w {
		if x != 1 {
			t.Fatalf("degenerate renorm = %v, want all 1", w)
		}
	}
}

// --- Kernel benchmarks: fused flat sweep vs naive per-modality sum. ---

func benchKernelSetup(b *testing.B) (*FlatStore, []Multi, Weights, Multi) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	dims := []int{256, 64}
	objects := make([]Multi, 1024)
	for i := range objects {
		objects[i] = randomMulti(rng, dims)
	}
	return FlatFromMulti(objects), objects, Weights{0.8, 0.6}, randomMulti(rng, dims)
}

func BenchmarkKernelFusedFlat(b *testing.B) {
	st, _, w, q := benchKernelSetup(b)
	fs := NewFlatScanner(st, w, q)
	b.ResetTimer()
	var acc float32
	for i := 0; i < b.N; i++ {
		acc += fs.FullIP(st.Row(i % st.Len()))
	}
	sinkF32 = acc
}

func BenchmarkKernelLegacyScanner(b *testing.B) {
	_, objects, w, q := benchKernelSetup(b)
	s := NewPartialIPScanner(w, q)
	b.ResetTimer()
	var acc float32
	for i := 0; i < b.N; i++ {
		acc += s.FullIP(objects[i%len(objects)])
	}
	sinkF32 = acc
}

func BenchmarkKernelNaiveJointIP(b *testing.B) {
	_, objects, w, q := benchKernelSetup(b)
	b.ResetTimer()
	var acc float32
	for i := 0; i < b.N; i++ {
		acc += JointIP(w, q, objects[i%len(objects)])
	}
	sinkF32 = acc
}

var sinkF32 float32

// Appends must never invalidate previously returned views: the arena is
// chunked, so growing the store past any capacity leaves every existing
// row exactly where it was. This is the property that lets one store be
// shared by the collection, the index, and every searcher while the
// engine keeps inserting.
func TestFlatStoreAppendKeepsViewsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dims := []int{8, 5}
	st := NewFlatStore(dims, 3) // tiny bulk so appends spill into chunks fast
	var first Multi
	var snapshots []struct {
		id  int
		ptr *float32
		val float32
	}
	for i := 0; i < 5000; i++ {
		o := randomMulti(rng, dims)
		id := st.AppendMulti(o)
		if id != i {
			t.Fatalf("append id = %d, want %d", id, i)
		}
		if i == 0 {
			first = st.Multi(0)
		}
		if i%977 == 0 {
			row := st.Row(i)
			snapshots = append(snapshots, struct {
				id  int
				ptr *float32
				val float32
			}{i, &row[0], row[0]})
		}
	}
	for _, snap := range snapshots {
		row := st.Row(snap.id)
		if &row[0] != snap.ptr {
			t.Fatalf("row %d moved after later appends", snap.id)
		}
		if row[0] != snap.val {
			t.Fatalf("row %d value changed after later appends", snap.id)
		}
	}
	if &first[0][0] != &st.Row(0)[0] {
		t.Fatal("early Multi view no longer aliases row 0")
	}
}

// An adopted arena must be served zero-copy, and appends after adoption
// must land in overflow chunks without touching the adopted block.
func TestFlatStoreFromArenaGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	dims := []int{6, 4}
	arena := make([]float32, 10*10)
	for i := range arena {
		arena[i] = float32(rng.NormFloat64())
	}
	st := FlatStoreFromArena(dims, arena)
	if st.Len() != 10 {
		t.Fatalf("adopted %d rows, want 10", st.Len())
	}
	if &st.Row(4)[0] != &arena[40] {
		t.Fatal("adopted rows are not zero-copy")
	}
	keep := st.Row(9)
	keepPtr, keepVal := &keep[0], keep[0]
	for i := 0; i < 300; i++ {
		st.AppendMulti(randomMulti(rng, dims))
	}
	if st.Len() != 310 {
		t.Fatalf("store len = %d after appends, want 310", st.Len())
	}
	if &st.Row(9)[0] != keepPtr || st.Row(9)[0] != keepVal {
		t.Fatal("adopted row moved or changed after post-adoption appends")
	}
	if &st.Row(4)[0] != &arena[40] {
		t.Fatal("adopted block no longer aliased after appends")
	}
}

// Snapshot pins the length: appends to the original are invisible to the
// snapshot, while all shared rows stay readable through it.
func TestFlatStoreSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	dims := []int{7}
	st := NewFlatStore(dims, 0)
	for i := 0; i < 20; i++ {
		st.AppendMulti(randomMulti(rng, dims))
	}
	snap := st.Snapshot()
	want := Clone(snap.Row(13))
	for i := 0; i < 4000; i++ {
		st.AppendMulti(randomMulti(rng, dims))
	}
	if snap.Len() != 20 {
		t.Fatalf("snapshot len = %d, want pinned 20", snap.Len())
	}
	got := snap.Row(13)
	for j := range want {
		if got[j] != want[j] {
			t.Fatal("snapshot row changed after appends to the original")
		}
	}
	if st.Len() != 4020 {
		t.Fatalf("original len = %d, want 4020", st.Len())
	}
}

// Runs must cover exactly the filled arena in row order, and the memory
// accounting must stay within one overflow chunk of the raw payload.
func TestFlatStoreRunsAndMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	dims := []int{9, 3}
	st := NewFlatStore(dims, 7)
	var want []float32
	for i := 0; i < 2500; i++ {
		o := randomMulti(rng, dims)
		st.AppendMulti(o)
		for _, v := range o {
			want = append(want, v...)
		}
	}
	var got []float32
	if err := st.Runs(func(run []float32) error { got = append(got, run...); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("runs covered %d floats, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("runs float %d differs", i)
		}
	}
	raw := int64(st.Len()) * int64(st.RowDim()) * 4
	if mem := st.MemoryBytes(); mem < raw || mem > raw+4*chunkTargetFloats*2 {
		t.Fatalf("memory %d bytes for %d raw, want within one chunk of slack", mem, raw)
	}
}
