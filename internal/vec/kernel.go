package vec

import "unsafe"

// Kernel dispatch for the two inner multiply-add sweeps that dominate the
// search and build hot paths: the float32·float32 dot product (graph
// build, FlatScanner) and the int16·uint8 integer dot product (the SQ8
// quantized scanner). On amd64 with AVX2 and on arm64 (NEON is baseline)
// an assembly kernel is installed at init; everywhere else — and always
// under the `purego` build tag — the pure-Go reference below runs.
//
// Bit-exactness contract: every implementation of a kernel must produce
// the exact same result, bit for bit, for the same inputs.
//
// For the float32 kernel the reference fixes the accumulation schedule
// the assembly mirrors:
//
//   - the vector body consumes 8 lanes per step into 8 independent
//     accumulators s0..s7 (lane j only ever accumulates elements with
//     index ≡ j mod 8), with the product rounded before the add (no FMA);
//   - the lanes reduce as s = ((s0+s4)+(s1+s5)) + ((s2+s6)+(s3+s7)),
//     which is one 8→4 halving add followed by two pairwise adds — the
//     cheapest shape on both AVX2 (VEXTRACTF128+VADDPS, then VHADDPS)
//     and NEON (FADD, then two FADDPs);
//   - the ≤7-element tail accumulates sequentially into s, again with
//     the product rounded separately.
//
// The explicit float32(x*y) conversions are load-bearing: the Go spec
// permits fusing a multiply-add across statements unless an explicit
// conversion forces the intermediate rounding, and the arm64 compiler
// does emit FMADD for unannotated s += x*y. Fused accumulation would
// diverge from the non-FMA assembly path in the last ULP.
//
// The integer kernel needs no schedule at all: int32 addition is
// associative and every int16·uint8 product is exact, so any lane count,
// unroll, or reduction order yields the identical sum — which is exactly
// why the quantized scanner quantizes the query to int16 instead of
// multiplying float32 by widened codes. It also buys AVX2 VPMADDWD (16
// codes per instruction, 1-cycle accumulate chain) over the much slower
// widen-to-float32-then-VADDPS shape. Overflow is the caller's contract:
// Σ |q[i]|·c[i] must stay within int32, which SQ8Scanner.Reset
// guarantees by capping the query quantization scale (see sq8MaxQ).
//
// Search routing makes discrete decisions (candidate ordering, the
// Lemma 4 early exit) on these sums, so "close" is not enough: the
// purego fallback, the AVX2 path, and the NEON path must route
// identically or result sets drift across platforms. kernel_test.go
// fuzzes the boundary.

// dotImpl and dotCodesImpl are the installed kernels. They are function
// variables (not build-tag-selected functions) so the amd64 init can
// choose at runtime between AVX2 and the reference based on CPUID, and
// so tests can force the reference to cross-check the assembly.
var (
	dotImpl      = dotGeneric
	dotCodesImpl = dotCodesGeneric
	// kernelName names the installed kernel for Stats/ops visibility.
	kernelName = "go"
)

// KernelName reports which dot-kernel implementation is serving this
// process: "avx2", "neon", or "go" (the pure-Go reference, also forced
// by the `purego` build tag or a CPU without the required features).
func KernelName() string { return kernelName }

// prefetchImpl issues a read prefetch hint for every cache line in
// [p, p+n). Purely advisory — the pure-Go fallback is a no-op, and the
// assembly versions (PREFETCHT0 / PRFM PLDL1KEEP) never fault, so
// callers need no alignment or residency guarantees beyond the span
// being valid memory.
var prefetchImpl = func(p unsafe.Pointer, n uintptr) {}

// PrefetchBytes hints that b will be scanned shortly. The search routing
// loop calls it while gathering a hop's candidate batch, so the rows
// stream into cache behind the scoring of earlier candidates instead of
// stalling each dot kernel on a cold row.
func PrefetchBytes(b []uint8) {
	if len(b) > 0 {
		prefetchImpl(unsafe.Pointer(&b[0]), uintptr(len(b)))
	}
}

// PrefetchFloats is PrefetchBytes for float32 rows.
func PrefetchFloats(f []float32) {
	if len(f) > 0 {
		prefetchImpl(unsafe.Pointer(&f[0]), uintptr(len(f))*4)
	}
}

// dotGeneric is the reference float32 dot kernel. Both slices must have
// the same length (callers pass matched sub-slices of packed rows).
func dotGeneric(a, b []float32) float32 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= len(a); i += 8 {
		s0 += float32(a[i] * b[i])
		s1 += float32(a[i+1] * b[i+1])
		s2 += float32(a[i+2] * b[i+2])
		s3 += float32(a[i+3] * b[i+3])
		s4 += float32(a[i+4] * b[i+4])
		s5 += float32(a[i+5] * b[i+5])
		s6 += float32(a[i+6] * b[i+6])
		s7 += float32(a[i+7] * b[i+7])
	}
	t0 := s0 + s4
	t1 := s1 + s5
	t2 := s2 + s6
	t3 := s3 + s7
	s := (t0 + t1) + (t2 + t3)
	for ; i < len(a); i++ {
		s += float32(a[i] * b[i])
	}
	return s
}

// dotCodesGeneric is the reference int16·uint8 dot kernel:
// Σ int32(q[i])·int32(c[i]). Exact integer arithmetic — the unroll below
// is for speed only; any order gives the same sum. Both slices must have
// the same length.
func dotCodesGeneric(q []int16, c []uint8) int32 {
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(c); i += 4 {
		s0 += int32(q[i]) * int32(c[i])
		s1 += int32(q[i+1]) * int32(c[i+1])
		s2 += int32(q[i+2]) * int32(c[i+2])
		s3 += int32(q[i+3]) * int32(c[i+3])
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(c); i++ {
		s += int32(q[i]) * int32(c[i])
	}
	return s
}
