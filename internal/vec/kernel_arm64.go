//go:build arm64 && !purego

package vec

import "unsafe"

// The NEON kernels live in kernel_arm64.s. NEON (ASIMD) is baseline on
// arm64 — every CPU Go targets has it — so unlike amd64 there is no
// runtime feature probe: init installs the assembly kernels
// unconditionally unless the binary was built with -tags purego.

// dotNEON computes the float32 dot product of a and b with the shared
// 8-lane accumulation schedule. len(a) must equal len(b).
func dotNEON(a, b []float32) float32

// dotCodesNEON computes the exact integer dot Σ int32(q[i])·int32(c[i])
// via SMLAL/SMLAL2 (8 codes per step). len(q) must equal len(c); the
// caller guarantees the sum fits int32 (see kernel.go).
func dotCodesNEON(q []int16, c []uint8) int32

// prefetchSpan issues PRFM PLDL1KEEP for each cache line in [p, p+n).
func prefetchSpan(p unsafe.Pointer, n uintptr)

func init() {
	dotImpl = dotNEON
	dotCodesImpl = dotCodesNEON
	prefetchImpl = prefetchSpan
	kernelName = "neon"
}
