package vec

import "fmt"

// SQ8Store is an int8 scalar-quantized shadow copy of a FlatStore: every
// float32 of a packed row becomes one byte, encoded against a per-modality
// affine scale code = round((x − min_m)/Δ_m) with Δ_m = (max_m − min_m)/255.
// Per-modality scales matter because modalities come from different
// encoders with different value ranges; a single global scale would burn
// most of the 8-bit budget on the widest modality.
//
// The beam search scans these codes at 1 byte/dim instead of 4 — the scan
// is memory-bandwidth-bound, so this is directly a ~4× reduction in hot
// loop traffic — and the top candidates are re-ranked exactly against the
// float32 rows before results are returned (see internal/search).
//
// Like its parent the code arena is chunked so it grows without moving
// stored rows, and the same concurrency contract applies: concurrent
// readers are safe, mutation (Train/Sync) is serialized by the caller's
// write lock, and snapshot carries its own chunk table so appends to the
// original never race readers of the snapshot.
type SQ8Store struct {
	offs   []int
	rowDim int
	// mins[m] and deltas[m] are the affine scale of modality m; invDeltas
	// is the precomputed reciprocal used when quantizing (0 for a
	// degenerate modality where max == min, making every code 0).
	mins, deltas, invDeltas []float32
	trained                 bool

	bulk       []uint8
	bulkCap    int
	chunks     [][]uint8
	chunkRows  int
	chunkShift uint
	n          int
}

// sq8ChunkTargetBytes sizes overflow chunks at ~64 KiB of codes.
const sq8ChunkTargetBytes = 1 << 16

func newSQ8Store(offs []int, rowDim, capacity int) *SQ8Store {
	m := len(offs) - 1
	q := &SQ8Store{
		offs:      offs,
		rowDim:    rowDim,
		mins:      make([]float32, m),
		deltas:    make([]float32, m),
		invDeltas: make([]float32, m),
		bulkCap:   capacity,
	}
	if capacity > 0 {
		q.bulk = make([]uint8, capacity*rowDim)
	}
	rows := 1
	shift := uint(0)
	for rows*rowDim < sq8ChunkTargetBytes && rows < 1<<16 {
		rows <<= 1
		shift++
	}
	q.chunkRows = rows
	q.chunkShift = shift
	return q
}

// SQ8FromParts reconstructs a trained store from persisted scales and a
// code arena (the v5 collection loader). len(codes) must be a whole
// number of rows.
func SQ8FromParts(offs []int, rowDim int, mins, deltas []float32, codes []uint8) *SQ8Store {
	if len(codes)%rowDim != 0 {
		panic(fmt.Sprintf("vec: sq8 arena of %d codes is not a whole number of %d-byte rows", len(codes), rowDim))
	}
	q := newSQ8Store(offs, rowDim, 0)
	copy(q.mins, mins)
	copy(q.deltas, deltas)
	for m, d := range q.deltas {
		if d > 0 {
			q.invDeltas[m] = 1 / d
		}
	}
	q.trained = true
	q.bulk = codes
	q.bulkCap = len(codes) / rowDim
	q.n = q.bulkCap
	return q
}

// Trained reports whether per-modality scales have been computed. An
// untrained store holds no codes and cannot serve quantized scans.
func (q *SQ8Store) Trained() bool { return q.trained }

// Len returns the number of quantized rows.
func (q *SQ8Store) Len() int { return q.n }

// Scales returns the per-modality (min, delta) affine scales, for
// persistence. The slices are views; do not mutate.
func (q *SQ8Store) Scales() (mins, deltas []float32) { return q.mins, q.deltas }

// Row returns row i's codes (a view, not a copy). Views stay valid across
// appends for the lifetime of the store.
func (q *SQ8Store) Row(i int) []uint8 {
	if i < q.bulkCap {
		off := i * q.rowDim
		return q.bulk[off : off+q.rowDim : off+q.rowDim]
	}
	j := i - q.bulkCap
	c := q.chunks[j>>q.chunkShift]
	off := (j & (q.chunkRows - 1)) * q.rowDim
	return c[off : off+q.rowDim : off+q.rowDim]
}

// MemoryBytes reports bytes committed to code storage.
func (q *SQ8Store) MemoryBytes() int64 {
	total := len(q.bulk)
	for _, c := range q.chunks {
		total += len(c)
	}
	return int64(total)
}

// Runs invokes fn over the contiguous filled regions of the code arena in
// row order, mirroring FlatStore.Runs for bulk persistence writes.
func (q *SQ8Store) Runs(fn func(run []uint8) error) error {
	remaining := q.n
	if q.bulkCap > 0 {
		rows := remaining
		if rows > q.bulkCap {
			rows = q.bulkCap
		}
		if rows > 0 {
			if err := fn(q.bulk[:rows*q.rowDim]); err != nil {
				return err
			}
		}
		remaining -= rows
	}
	for _, c := range q.chunks {
		if remaining <= 0 {
			break
		}
		rows := remaining
		if rows > q.chunkRows {
			rows = q.chunkRows
		}
		if err := fn(c[:rows*q.rowDim]); err != nil {
			return err
		}
		remaining -= rows
	}
	return nil
}

// appendRow reserves the next code row for quantizeInto to fill.
func (q *SQ8Store) appendRow() []uint8 {
	var row []uint8
	if q.n < q.bulkCap {
		off := q.n * q.rowDim
		row = q.bulk[off : off+q.rowDim : off+q.rowDim]
	} else {
		j := q.n - q.bulkCap
		ci := j >> q.chunkShift
		if ci == len(q.chunks) {
			q.chunks = append(q.chunks, make([]uint8, q.chunkRows*q.rowDim))
		}
		off := (j & (q.chunkRows - 1)) * q.rowDim
		row = q.chunks[ci][off : off+q.rowDim : off+q.rowDim]
	}
	q.n++
	return row
}

// quantizeInto encodes one packed float32 row. Values outside the trained
// range clamp to the nearest code — rows inserted after training can
// exceed the observed min/max; the exact re-rank absorbs the resulting
// extra quantization error on those rows.
func (q *SQ8Store) quantizeInto(dst []uint8, row []float32) {
	for m := 0; m < len(q.offs)-1; m++ {
		min, inv := q.mins[m], q.invDeltas[m]
		for i := q.offs[m]; i < q.offs[m+1]; i++ {
			// Round-half-up is fine here: the exact tie behavior only
			// shifts which neighbor code a boundary value maps to, and
			// both are within half a delta.
			c := int32((row[i]-min)*inv + 0.5)
			if c < 0 {
				c = 0
			} else if c > 255 {
				c = 255
			}
			dst[i] = uint8(c)
		}
	}
}

// train computes per-modality min/max over rows [0, n) of st, fixes the
// affine scales, and quantizes those rows.
func (q *SQ8Store) train(st *FlatStore) {
	nm := len(q.offs) - 1
	for m := 0; m < nm; m++ {
		q.mins[m] = 0
		q.deltas[m] = 0
		q.invDeltas[m] = 0
	}
	if st.n == 0 {
		return
	}
	maxs := make([]float32, nm)
	for m := range maxs {
		q.mins[m] = st.Row(0)[q.offs[m]]
		maxs[m] = q.mins[m]
	}
	for i := 0; i < st.n; i++ {
		row := st.Row(i)
		for m := 0; m < nm; m++ {
			for j := q.offs[m]; j < q.offs[m+1]; j++ {
				x := row[j]
				if x < q.mins[m] {
					q.mins[m] = x
				}
				if x > maxs[m] {
					maxs[m] = x
				}
			}
		}
	}
	for m := 0; m < nm; m++ {
		d := (maxs[m] - q.mins[m]) / 255
		q.deltas[m] = d
		if d > 0 {
			q.invDeltas[m] = 1 / d
		}
	}
	q.trained = true
	for i := 0; i < st.n; i++ {
		q.quantizeInto(q.appendRow(), st.Row(i))
	}
}

// snapshot returns a read-only view with its own chunk table, so appends
// to the original (which only extend the original's table and write
// memory past q.n) are invisible to snapshot readers.
func (q *SQ8Store) snapshot() *SQ8Store {
	snap := *q
	snap.chunks = append([][]uint8(nil), q.chunks...)
	return &snap
}

// ---------------------------------------------------------------------------
// FlatStore integration.

// EnableSQ8 attaches an (untrained) SQ8 shadow store sized for the parent
// bulk capacity. SyncSQ8 trains it on first call once rows exist. No-op
// if already enabled.
func (s *FlatStore) EnableSQ8() {
	if s.sq8 == nil {
		s.sq8 = newSQ8Store(s.offs, s.rowDim, s.bulkCap)
	}
}

// AdoptSQ8 installs a reconstructed shadow store (the v5 collection
// loader). It must cover exactly the store's current rows.
func (s *FlatStore) AdoptSQ8(q *SQ8Store) {
	if q.n != s.n {
		panic(fmt.Sprintf("vec: sq8 store has %d rows, parent has %d", q.n, s.n))
	}
	s.sq8 = q
}

// SQ8 returns the attached shadow store, or nil when quantization is not
// enabled.
func (s *FlatStore) SQ8() *SQ8Store { return s.sq8 }

// SyncSQ8 brings the shadow store up to date with the parent: the first
// call with a non-empty corpus trains the per-modality scales over all
// rows present and quantizes them; later calls quantize only the rows
// appended since. Mutating — callers hold the parent's write lock. No-op
// when quantization is not enabled.
func (s *FlatStore) SyncSQ8() {
	q := s.sq8
	if q == nil || q.n == s.n {
		return
	}
	if !q.trained {
		q.train(s)
		return
	}
	for i := q.n; i < s.n; i++ {
		q.quantizeInto(q.appendRow(), s.Row(i))
	}
}

// QuantizedBytes reports bytes committed to the SQ8 shadow store, or 0
// when quantization is not enabled.
func (s *FlatStore) QuantizedBytes() int64 {
	if s.sq8 == nil {
		return 0
	}
	return s.sq8.MemoryBytes()
}

// ---------------------------------------------------------------------------
// Quantized fused scanner.

// sq8MaxQ is the query quantization range: the ω²-pre-scaled query
// segment maps to int16 values in [-sq8MaxQ, sq8MaxQ]. 4096 keeps the
// worst-case integer dot Σ|t_i|·255 within int32 for segments up to 2048
// dims (Reset lowers the cap further for longer segments) while leaving
// the query's relative quantization error at ~1/8192 — far below the
// ~1/512 relative error the uint8 codes already carry.
const sq8MaxQ = 4096

// sq8Seg is one active modality range of a code row: the dequantized
// segment IP folds to scale·(Σ t_i·c_i) + c, where t is the query
// segment quantized to int16 (see sq8MaxQ), scale = Δ_m·s_m folds the
// code and query dequantization factors, and
// c = min_m·Σq′_seg − ½·ω²·(‖q‖²+1) collects every constant term (q′ is
// the exact ω²-pre-scaled float query, so only the Δ_m term carries
// query quantization error).
type sq8Seg struct {
	a, b     int
	scale, c float32
}

// SQ8Scanner is FlatScanner's quantized twin: it evaluates the Lemma 1
// joint similarity against SQ8 code rows via the exact int16·uint8
// integer dot kernel (the affine scales and offsets fold into
// per-segment constants hoisted out of the loop). Scores are approximate
// — code quantization error is bounded by ~½Δ per dimension, query
// quantization adds ~1/8192 relative on top — so the search pipeline
// re-ranks top candidates exactly; Scan keeps the same Lemma 4
// early-exit shape as the float32 scanner. Because the inner sum is
// exact integer arithmetic, every kernel variant (go/avx2/neon) produces
// bit-identical scores by construction.
type SQ8Scanner struct {
	sq    []float32
	q16   []int16
	segs  []sq8Seg
	sumW2 float32
}

// Reset re-targets the scanner at a new query and weights against the
// trained shadow store of st, reusing buffers like FlatScanner.Reset.
func (qs *SQ8Scanner) Reset(st *FlatStore, w Weights, query Multi) {
	q := st.sq8
	if q == nil || !q.trained {
		panic("vec: SQ8Scanner.Reset on a store without a trained SQ8 shadow")
	}
	if cap(qs.sq) < st.rowDim {
		qs.sq = make([]float32, st.rowDim)
		qs.q16 = make([]int16, st.rowDim)
	}
	sq := qs.sq[:st.rowDim]
	qs.sq = sq
	q16 := qs.q16[:st.rowDim]
	qs.q16 = q16
	st.PackQueryInto(sq, query)
	qs.segs = qs.segs[:0]
	qs.sumW2 = w.SumSquared()
	for m := range st.dims {
		a, b := st.offs[m], st.offs[m+1]
		if m >= len(w) || w[m] == 0 {
			for i := a; i < b; i++ {
				sq[i] = 0
				q16[i] = 0
			}
			continue
		}
		w2 := w[m] * w[m]
		var qq, qsum, maxAbs float32
		for i := a; i < b; i++ {
			qq += sq[i] * sq[i]
			sq[i] *= w2
			qsum += sq[i]
			if v := sq[i]; v > maxAbs {
				maxAbs = v
			} else if -v > maxAbs {
				maxAbs = -v
			}
		}
		// Quantize the weighted query segment to int16. The cap keeps
		// Σ|t_i|·255 within int32 (kernel overflow contract); rounding
		// is symmetric and pure Go, so every platform and kernel variant
		// builds the identical t vector.
		tCap := int32(sq8MaxQ)
		if limit := int32((1<<31 - 1) / (255 * (b - a))); limit < tCap {
			tCap = limit
		}
		var scale float32
		if maxAbs > 0 {
			inv := float64(tCap) / float64(maxAbs)
			for i := a; i < b; i++ {
				f := float64(sq[i]) * inv
				var t int32
				if f >= 0 {
					t = int32(f + 0.5)
				} else {
					t = int32(f - 0.5)
				}
				if t > tCap {
					t = tCap
				} else if t < -tCap {
					t = -tCap
				}
				q16[i] = int16(t)
			}
			sm := float32(float64(maxAbs) / float64(tCap))
			scale = q.deltas[m] * sm
		} else {
			for i := a; i < b; i++ {
				q16[i] = 0
			}
		}
		qs.segs = append(qs.segs, sq8Seg{
			a:     a,
			b:     b,
			scale: scale,
			c:     q.mins[m]*qsum - 0.5*w2*(qq+1),
		})
	}
}

// SumW2 returns Σ ω_i², the upper bound Scan starts from.
func (qs *SQ8Scanner) SumW2() float32 { return qs.sumW2 }

// FullIP computes the approximate joint IP against a code row with no
// early termination, accumulating per-segment in the same order as Scan.
func (qs *SQ8Scanner) FullIP(codes []uint8) float32 {
	ip := qs.sumW2
	q16 := qs.q16
	for _, sg := range qs.segs {
		ip += sg.scale*float32(dotCodesImpl(q16[sg.a:sg.b], codes[sg.a:sg.b:sg.b])) + sg.c
	}
	return ip
}

// Scan evaluates the approximate joint IP against a code row with the
// Lemma 4 bound checked at modality boundaries, exactly like
// FlatScanner.Scan. exact == true means the approximate IP cleared the
// threshold, not that the score is exact — callers re-rank.
func (qs *SQ8Scanner) Scan(codes []uint8, threshold float32) (ip float32, exact bool) {
	ip = qs.sumW2
	q16 := qs.q16
	for _, sg := range qs.segs {
		ip += sg.scale*float32(dotCodesImpl(q16[sg.a:sg.b], codes[sg.a:sg.b:sg.b])) + sg.c
		if ip <= threshold {
			return ip, false
		}
	}
	return ip, true
}
