// Package vec provides the float32 vector primitives used throughout the
// MUST reproduction: inner products, Euclidean distances, normalization,
// and the multi-vector joint-similarity operations of Lemma 1 and the
// partial-inner-product early-termination machinery of Lemma 4.
//
// All similarity computations in the paper operate on L2-normalized
// vectors, where IP(a, b) = 1 - 0.5*||a-b||^2 (Eq. 8). The helpers here
// preserve that identity exactly so that higher layers may interchange
// inner-product and distance formulations.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. The two slices must have the
// same length; Dot panics otherwise, because a dimension mismatch is a
// programming error rather than a runtime condition.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dot dimension mismatch %d != %d", len(a), len(b)))
	}
	// The Go compiler does not auto-vectorize, and this inner product
	// dominates index build time; dotImpl is the installed SIMD kernel
	// where available (see kernel.go).
	return dotImpl(a, b)
}

// SquaredL2 returns the squared Euclidean distance between a and b.
func SquaredL2(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: l2 dimension mismatch %d != %d", len(a), len(b)))
	}
	var s float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s += d0*d0 + d1*d1 + d2*d2 + d3*d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float32) float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}

// Normalize scales v in place to unit Euclidean norm and returns v.
// A zero vector is left unchanged (there is no meaningful direction).
func Normalize(v []float32) []float32 {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Normalized returns a freshly allocated unit-norm copy of v.
func Normalized(v []float32) []float32 {
	out := make([]float32, len(v))
	copy(out, v)
	return Normalize(out)
}

// Clone returns a copy of v.
func Clone(v []float32) []float32 {
	out := make([]float32, len(v))
	copy(out, v)
	return out
}

// Add returns a+b as a new vector.
func Add(a, b []float32) []float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: add dimension mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: axpy dimension mismatch %d != %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale returns alpha*v as a new vector.
func Scale(alpha float32, v []float32) []float32 {
	out := make([]float32, len(v))
	for i := range v {
		out[i] = alpha * v[i]
	}
	return out
}

// Concat concatenates the given vectors into one new vector.
func Concat(vs ...[]float32) []float32 {
	total := 0
	for _, v := range vs {
		total += len(v)
	}
	out := make([]float32, 0, total)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}
