package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-4

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDotBasic(t *testing.T) {
	cases := []struct {
		a, b []float32
		want float32
	}{
		{[]float32{1, 2, 3}, []float32{4, 5, 6}, 32},
		{[]float32{0, 0}, []float32{1, 1}, 0},
		{[]float32{1}, []float32{-1}, -1},
		{[]float32{}, []float32{}, 0},
		{[]float32{1, 1, 1, 1, 1}, []float32{2, 2, 2, 2, 2}, 10}, // crosses the unroll boundary
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); got != c.want {
			t.Errorf("Dot(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched dims did not panic")
		}
	}()
	Dot([]float32{1, 2}, []float32{1})
}

func TestSquaredL2Basic(t *testing.T) {
	got := SquaredL2([]float32{1, 2, 3, 4, 5}, []float32{0, 0, 0, 0, 0})
	if got != 55 {
		t.Errorf("SquaredL2 = %v, want 55", got)
	}
	if d := SquaredL2([]float32{1, 2}, []float32{1, 2}); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
}

func TestNormalize(t *testing.T) {
	v := []float32{3, 4}
	Normalize(v)
	if !approxEq(float64(v[0]), 0.6, eps) || !approxEq(float64(v[1]), 0.8, eps) {
		t.Errorf("Normalize = %v, want [0.6 0.8]", v)
	}
	z := []float32{0, 0, 0}
	Normalize(z)
	for _, x := range z {
		if x != 0 {
			t.Errorf("zero vector changed by Normalize: %v", z)
		}
	}
}

func TestNormalizedDoesNotMutate(t *testing.T) {
	v := []float32{3, 4}
	u := Normalized(v)
	if v[0] != 3 || v[1] != 4 {
		t.Errorf("Normalized mutated input: %v", v)
	}
	if !approxEq(float64(Norm(u)), 1, eps) {
		t.Errorf("Normalized output norm = %v, want 1", Norm(u))
	}
}

// Property: IP(a, b) = 1 - 0.5*||a-b||^2 for unit vectors (Eq. 8).
func TestIPDistanceIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandUnit(r, 37)
		b := RandUnit(r, 37)
		ip := float64(Dot(a, b))
		d2 := float64(SquaredL2(a, b))
		return approxEq(ip, 1-0.5*d2, 1e-3)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property (Lemma 1): joint IP of the weighted concatenation equals the
// weighted sum of per-modality IPs.
func TestLemma1ConcatEqualsWeightedSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := []int{8, 16, 5}
		w := Weights{float32(r.Float64()), float32(r.Float64()), float32(r.Float64())}
		a := make(Multi, len(dims))
		b := make(Multi, len(dims))
		for i, d := range dims {
			a[i] = RandUnit(r, d)
			b[i] = RandUnit(r, d)
		}
		lhs := float64(Dot(WeightedConcat(w, a), WeightedConcat(w, b)))
		rhs := float64(JointIP(w, a, b))
		return approxEq(lhs, rhs, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property (Lemma 4): the partial-IP scanner either returns the exact joint
// IP, or an upper bound that is at most the discard threshold — in which
// case the exact IP is also at most the threshold, so discarding is safe.
func TestLemma4PartialIPSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := []int{12, 7, 9, 4}
		w := Weights{0.8, 0.33, 0.5, 0.2}
		q := make(Multi, len(dims))
		u := make(Multi, len(dims))
		for i, d := range dims {
			q[i] = RandUnit(r, d)
			u[i] = RandUnit(r, d)
		}
		s := NewPartialIPScanner(w, q)
		exactIP := s.FullIP(u)
		threshold := float32(r.Float64()*2 - 1)
		got, exact := s.Scan(u, threshold)
		if exact {
			// Exact path must match the full computation and exceed the
			// threshold.
			return approxEq(float64(got), float64(exactIP), 1e-3) && got > threshold
		}
		// Early-terminated path: the bound must not exceed the threshold
		// and the true IP must also be <= bound (safe discard).
		return got <= threshold && exactIP <= got+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// The scanner's FullIP must agree with JointIP computed directly.
func TestScannerFullIPMatchesJointIP(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	w := Weights{0.7, 0.7}
	q := Multi{RandUnit(r, 24), RandUnit(r, 16)}
	u := Multi{RandUnit(r, 24), RandUnit(r, 16)}
	s := NewPartialIPScanner(w, q)
	if got, want := float64(s.FullIP(u)), float64(JointIP(w, q, u)); !approxEq(got, want, 1e-3) {
		t.Errorf("FullIP = %v, JointIP = %v", got, want)
	}
}

func TestJointIPSkipsZeroWeightAndMissingModalities(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := Multi{RandUnit(r, 8), RandUnit(r, 8), RandUnit(r, 8)}
	b := Multi{RandUnit(r, 8), RandUnit(r, 8), RandUnit(r, 8)}
	// Zero weight on modality 1 and no weight entry for modality 2.
	w := Weights{1, 0}
	got := JointIP(w, a, b)
	want := Dot(a[0], b[0])
	if !approxEq(float64(got), float64(want), eps) {
		t.Errorf("JointIP with zero/missing weights = %v, want %v", got, want)
	}
}

func TestUniformWeightsSquareSumToOne(t *testing.T) {
	for m := 1; m <= 6; m++ {
		w := Uniform(m)
		if !approxEq(float64(w.SumSquared()), 1, eps) {
			t.Errorf("Uniform(%d) square sum = %v, want 1", m, w.SumSquared())
		}
	}
}

func TestWeightedConcatLayout(t *testing.T) {
	a := Multi{{1, 2}, {3}}
	w := Weights{2, 10}
	got := WeightedConcat(w, a)
	want := []float32{2, 4, 30}
	if len(got) != len(want) {
		t.Fatalf("WeightedConcat len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("WeightedConcat[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConcatAndClone(t *testing.T) {
	c := Concat([]float32{1}, []float32{2, 3}, nil, []float32{4})
	want := []float32{1, 2, 3, 4}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("Concat = %v, want %v", c, want)
		}
	}
	v := []float32{1, 2}
	cl := Clone(v)
	cl[0] = 9
	if v[0] != 1 {
		t.Error("Clone aliases input")
	}
}

func TestAXPYAndScaleAndAdd(t *testing.T) {
	y := []float32{1, 1}
	AXPY(2, []float32{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v, want [7 9]", y)
	}
	s := Scale(3, []float32{1, 2})
	if s[0] != 3 || s[1] != 6 {
		t.Errorf("Scale = %v", s)
	}
	a := Add([]float32{1, 2}, []float32{3, 4})
	if a[0] != 4 || a[1] != 6 {
		t.Errorf("Add = %v", a)
	}
}

func TestRandUnitIsUnit(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		v := RandUnit(r, 33)
		if !approxEq(float64(Norm(v)), 1, eps) {
			t.Errorf("RandUnit norm = %v", Norm(v))
		}
	}
}

func TestAddGaussianNoiseSimilarityDecreasesWithSigma(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	base := RandUnit(r, 64)
	var simLow, simHigh float64
	const trials = 50
	for i := 0; i < trials; i++ {
		simLow += float64(Dot(base, AddGaussianNoise(r, base, 0.02)))
		simHigh += float64(Dot(base, AddGaussianNoise(r, base, 0.5)))
	}
	simLow /= trials
	simHigh /= trials
	if simLow <= simHigh {
		t.Errorf("low-noise similarity %v should exceed high-noise %v", simLow, simHigh)
	}
	if simLow < 0.95 {
		t.Errorf("low-noise similarity %v unexpectedly small", simLow)
	}
}

func TestApplyProjectionShape(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	m := RandProjection(r, 16, 8)
	x := RandUnit(r, 8)
	y := ApplyProjection(m, 16, x)
	if len(y) != 16 {
		t.Fatalf("projection output dim = %d, want 16", len(y))
	}
	if !approxEq(float64(Norm(y)), 1, eps) {
		t.Errorf("projection output norm = %v, want 1", Norm(y))
	}
	// Determinism: same matrix, same input, same output.
	y2 := ApplyProjection(m, 16, x)
	for i := range y {
		if y[i] != y2[i] {
			t.Fatal("ApplyProjection not deterministic")
		}
	}
}

func TestMultiDims(t *testing.T) {
	m := Multi{make([]float32, 3), make([]float32, 5)}
	d := m.Dims()
	if d[0] != 3 || d[1] != 5 || m.TotalDim() != 8 {
		t.Errorf("Dims = %v, TotalDim = %d", d, m.TotalDim())
	}
}

func BenchmarkDot128(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	x := RandUnit(r, 128)
	y := RandUnit(r, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Dot(x, y)
	}
}

func BenchmarkJointIP(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	w := Weights{0.8, 0.33}
	q := Multi{RandUnit(r, 64), RandUnit(r, 32)}
	u := Multi{RandUnit(r, 64), RandUnit(r, 32)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JointIP(w, q, u)
	}
}
