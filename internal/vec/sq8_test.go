package vec

import (
	"math"
	"math/rand"
	"testing"
)

func buildSQ8Fixture(t *testing.T, n int) (*FlatStore, Weights, Multi) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	dims := []int{13, 24}
	st := NewFlatStore(dims, n)
	for i := 0; i < n; i++ {
		row := st.AppendRow()
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		Normalize(row[0:13])
		Normalize(row[13:37])
	}
	w := Weights{0.8, 0.6}
	q := Multi{
		Normalized(randFloats(rng, 13)),
		Normalized(randFloats(rng, 24)),
	}
	return st, w, q
}

func TestSQ8TrainAndSync(t *testing.T) {
	st, _, _ := buildSQ8Fixture(t, 50)
	if st.QuantizedBytes() != 0 || st.SQ8() != nil {
		t.Fatal("quantization should be off by default")
	}
	st.EnableSQ8()
	if st.SQ8().Trained() {
		t.Fatal("enable alone must not train")
	}
	st.SyncSQ8()
	q := st.SQ8()
	if !q.Trained() || q.Len() != 50 {
		t.Fatalf("after sync: trained=%v len=%d", q.Trained(), q.Len())
	}
	if st.QuantizedBytes() <= 0 {
		t.Fatal("quantized bytes should be positive")
	}

	// Appends after training quantize incrementally on the next sync.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		row := st.AppendRow()
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		Normalize(row[0:13])
		Normalize(row[13:37])
	}
	st.SyncSQ8()
	if q.Len() != 90 {
		t.Fatalf("after incremental sync: len=%d, want 90", q.Len())
	}

	// Dequantized codes must approximate the float rows within half a
	// delta per dimension — except values outside the trained range
	// (possible on rows appended after training), which clamp to the
	// nearest endpoint code.
	mins, deltas := q.Scales()
	for i := 0; i < st.Len(); i++ {
		row, codes := st.Row(i), q.Row(i)
		for m := 0; m < st.Modalities(); m++ {
			for j := st.Offsets()[m]; j < st.Offsets()[m+1]; j++ {
				deq := mins[m] + deltas[m]*float32(codes[j])
				lo, hi := mins[m], mins[m]+255*deltas[m]
				switch {
				case row[j] < lo:
					if codes[j] != 0 {
						t.Fatalf("row %d dim %d: %v below range, code %d != 0", i, j, row[j], codes[j])
					}
				case row[j] > hi:
					if codes[j] != 255 {
						t.Fatalf("row %d dim %d: %v above range, code %d != 255", i, j, row[j], codes[j])
					}
				default:
					if diff := math.Abs(float64(deq - row[j])); diff > float64(deltas[m])*0.51+1e-7 {
						t.Fatalf("row %d dim %d: dequant %v vs %v (delta %v)", i, j, deq, row[j], deltas[m])
					}
				}
			}
		}
	}
}

func TestSQ8ScannerApproximatesFlat(t *testing.T) {
	st, w, query := buildSQ8Fixture(t, 200)
	st.EnableSQ8()
	st.SyncSQ8()

	exact := NewFlatScanner(st, w, query)
	var qs SQ8Scanner
	qs.Reset(st, w, query)
	if qs.SumW2() != exact.SumW2() {
		t.Fatalf("SumW2 mismatch: %v vs %v", qs.SumW2(), exact.SumW2())
	}

	// Quantized scores must track the exact ones closely: per-dim error is
	// ≤ ω²·|q_j|·Δ/2, so a loose global bound of 0.05 on unit-norm data
	// catches any sign/offset bug while tolerating rounding.
	sq8 := st.SQ8()
	var worst float64
	for i := 0; i < st.Len(); i++ {
		e := exact.FullIP(st.Row(i))
		a := qs.FullIP(sq8.Row(i))
		if diff := math.Abs(float64(e - a)); diff > worst {
			worst = diff
		}
	}
	if worst > 0.05 {
		t.Fatalf("worst |exact−quantized| = %v, want ≤ 0.05", worst)
	}
	t.Logf("worst |exact−quantized| over 200 rows: %v", worst)

	// Scan agrees with FullIP on the exact path and respects thresholds.
	for i := 0; i < st.Len(); i += 17 {
		full := qs.FullIP(sq8.Row(i))
		ip, ok := qs.Scan(sq8.Row(i), full-1)
		if !ok || math.Float32bits(ip) != math.Float32bits(full) {
			t.Fatalf("row %d: Scan(full-1) = (%v,%v), want (%v,true)", i, ip, ok, full)
		}
		if ip, ok := qs.Scan(sq8.Row(i), qs.SumW2()); ok {
			t.Fatalf("row %d: Scan with threshold ≥ upper bound returned exact (ip=%v)", i, ip)
		}
	}
}

func TestSQ8SnapshotIsolation(t *testing.T) {
	st, _, _ := buildSQ8Fixture(t, 20)
	st.EnableSQ8()
	st.SyncSQ8()
	snap := st.Snapshot()
	if snap.SQ8() == nil || snap.SQ8().Len() != 20 {
		t.Fatal("snapshot must carry the trained shadow store")
	}
	// Appends+sync on the original leave the snapshot pinned.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		row := st.AppendRow()
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
	}
	st.SyncSQ8()
	if st.SQ8().Len() != 2020 {
		t.Fatalf("original shadow len=%d, want 2020", st.SQ8().Len())
	}
	if snap.SQ8().Len() != 20 {
		t.Fatalf("snapshot shadow len=%d, want 20", snap.SQ8().Len())
	}
	for i := 0; i < 20; i++ {
		a, b := st.SQ8().Row(i), snap.SQ8().Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d codes diverged between store and snapshot", i)
			}
		}
	}
}

func TestSQ8RoundtripParts(t *testing.T) {
	st, _, _ := buildSQ8Fixture(t, 30)
	st.EnableSQ8()
	st.SyncSQ8()
	q := st.SQ8()

	var codes []uint8
	if err := q.Runs(func(run []uint8) error {
		codes = append(codes, run...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(codes) != 30*st.RowDim() {
		t.Fatalf("Runs emitted %d codes, want %d", len(codes), 30*st.RowDim())
	}
	mins, deltas := q.Scales()
	q2 := SQ8FromParts(st.Offsets(), st.RowDim(), mins, deltas, codes)
	if !q2.Trained() || q2.Len() != 30 {
		t.Fatalf("reconstructed: trained=%v len=%d", q2.Trained(), q2.Len())
	}
	for i := 0; i < 30; i++ {
		a, b := q.Row(i), q2.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d differs after roundtrip", i)
			}
		}
	}

	// A fresh store can adopt the reconstructed shadow and keep appending.
	st2 := NewFlatStore(st.Dims(), 0)
	for i := 0; i < 30; i++ {
		copy(st2.AppendRow(), st.Row(i))
	}
	st2.AdoptSQ8(q2)
	copy(st2.AppendRow(), st.Row(0))
	st2.SyncSQ8()
	if st2.SQ8().Len() != 31 {
		t.Fatalf("adopted shadow len=%d after append+sync, want 31", st2.SQ8().Len())
	}
	a, b := st2.SQ8().Row(30), q.Row(0)
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("row appended after adoption quantized differently from original")
		}
	}
}

func TestSQ8DegenerateModality(t *testing.T) {
	// A modality whose values are all identical has delta 0; codes must
	// all be 0 and dequantize exactly to the constant.
	st := NewFlatStore([]int{4, 3}, 8)
	for i := 0; i < 8; i++ {
		row := st.AppendRow()
		for j := 0; j < 4; j++ {
			row[j] = 0.25
		}
		for j := 4; j < 7; j++ {
			row[j] = float32(i) / 8
		}
	}
	st.EnableSQ8()
	st.SyncSQ8()
	q := st.SQ8()
	mins, deltas := q.Scales()
	if mins[0] != 0.25 || deltas[0] != 0 {
		t.Fatalf("degenerate modality scales: min=%v delta=%v", mins[0], deltas[0])
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 4; j++ {
			if q.Row(i)[j] != 0 {
				t.Fatalf("degenerate modality code row %d dim %d = %d, want 0", i, j, q.Row(i)[j])
			}
		}
	}
}
