//go:build arm64 && !purego

#include "textflag.h"

// NEON dot kernels. dotNEON follows the float32 accumulation schedule
// documented in kernel.go: V0 holds lanes s0..s3 and V1 holds s4..s7, accumulated with
// separate FMUL+FADD roundings (deliberately no FMLA, so the result
// matches the pure-Go reference bit for bit). The reduction is one
// vector FADD (t0..t3 = s_j + s_{j+4}) followed by two FADDPs —
// (t0+t1, t2+t3) then (t0+t1)+(t2+t3) — and the ≤7-element tail
// accumulates sequentially with scalar FMULS/FADDS.
//
// The vector FMUL/FADD/FADDP/SMLAL/SMLAL2 forms have no Go-assembler
// mnemonics, so they are emitted as WORD directives with the standard
// A64 encodings; each is annotated with the instruction it encodes.

// func dotNEON(a, b []float32) float32
TEXT ·dotNEON(SB), NOSPLIT, $0-52
	MOVD a_base+0(FP), R0
	MOVD b_base+24(FP), R1
	MOVD a_len+8(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	LSR  $3, R2, R3            // R3 = len/8 vector steps
	CBZ  R3, reduce
loop8:
	VLD1.P 32(R0), [V2.S4, V3.S4]
	VLD1.P 32(R1), [V4.S4, V5.S4]
	WORD $0x6E24DC42           // FMUL V2.4S, V2.4S, V4.4S
	WORD $0x6E25DC63           // FMUL V3.4S, V3.4S, V5.4S
	WORD $0x4E22D400           // FADD V0.4S, V0.4S, V2.4S
	WORD $0x4E23D421           // FADD V1.4S, V1.4S, V3.4S
	SUBS $1, R3
	BNE  loop8
reduce:
	WORD $0x4E21D400           // FADD  V0.4S, V0.4S, V1.4S  (t0..t3)
	WORD $0x6E20D400           // FADDP V0.4S, V0.4S, V0.4S  (t0+t1, t2+t3, ...)
	WORD $0x6E20D400           // FADDP V0.4S, V0.4S, V0.4S  ((t0+t1)+(t2+t3), ...)
	AND  $7, R2, R3
	CBZ  R3, done
tail:
	FMOVS.P 4(R0), F2
	FMOVS.P 4(R1), F3
	FMULS F3, F2, F2
	FADDS F2, F0, F0
	SUBS  $1, R3
	BNE   tail
done:
	FMOVS F0, ret+48(FP)
	RET

// func dotCodesNEON(q []int16, c []uint8) int32
//
// Exact integer dot: 8 codes per step widen to u16 and multiply-
// accumulate into two int32 accumulators with SMLAL/SMLAL2 (codes are
// 0..255, so they are non-negative int16 after the widen). Integer adds
// are associative, so no accumulation schedule needs mirroring — any
// reduction order matches the Go reference.
TEXT ·dotCodesNEON(SB), NOSPLIT, $0-52
	MOVD q_base+0(FP), R0
	MOVD c_base+24(FP), R1
	MOVD c_len+32(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	LSR  $3, R2, R3            // R3 = len/8 vector steps
	CBZ  R3, reducei
loopi:
	VLD1.P 8(R1), [V2.B8]
	VUXTL   V2.B8, V2.H8       // bytes -> u16
	VLD1.P 16(R0), [V3.H8]
	WORD $0x0E628060           // SMLAL  V0.4S, V3.4H, V2.4H (low 4 into V0's int32 lanes)
	WORD $0x4E628061           // SMLAL2 V1.4S, V3.8H, V2.8H (high 4 into V1's)
	SUBS $1, R3
	BNE  loopi
reducei:
	VADD  V1.S4, V0.S4, V0.S4
	VADDV V0.S4, V0            // ADDV S0, V0.4S
	VMOV  V0.S[0], R4
	AND  $7, R2, R3
	CBZ  R3, donei
taili:
	MOVBU.P 1(R1), R5
	MOVH.P  2(R0), R6
	MULW R6, R5, R5
	ADDW R5, R4, R4
	SUBS $1, R3
	BNE  taili
donei:
	MOVW R4, ret+48(FP)
	RET

// func prefetchSpan(p unsafe.Pointer, n uintptr)
//
// One PRFM PLDL1KEEP per 64-byte line of [p, p+n). The caller
// guarantees n > 0; prefetch never faults, so over-reaching the last
// partial line is harmless.
TEXT ·prefetchSpan(SB), NOSPLIT, $0-16
	MOVD p+0(FP), R0
	MOVD n+8(FP), R1
prefloop:
	PRFM (R0), PLDL1KEEP
	ADD  $64, R0
	SUBS $64, R1
	BGT  prefloop
	RET
