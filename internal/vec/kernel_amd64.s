//go:build amd64 && !purego

#include "textflag.h"

// AVX2 dot kernels. dotAVX2 follows the float32 accumulation schedule
// documented in kernel.go: one YMM register holds the 8 lane accumulators s0..s7
// (VMULPS then VADDPS — separate roundings, deliberately no FMA so the
// result matches the pure-Go reference bit for bit), the reduction is
// VEXTRACTF128+VADDPS (t0..t3 = s_j + s_{j+4}) followed by VHADDPS
// ((t0+t1, t2+t3)) and a final scalar add, and the ≤7-element tail
// accumulates sequentially with scalar MULSS/ADDSS.

// func dotAVX2(a, b []float32) float32
TEXT ·dotAVX2(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	VXORPS Y0, Y0, Y0
	MOVQ CX, BX
	SHRQ $3, BX        // BX = len/8 vector steps
	JZ   reduce
loop8:
	VMOVUPS (SI), Y1
	VMOVUPS (DI), Y2
	VMULPS  Y2, Y1, Y1
	VADDPS  Y1, Y0, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ BX
	JNZ  loop8
reduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPS  X1, X0, X0 // (t0, t1, t2, t3)
	VHADDPS X0, X0, X0 // (t0+t1, t2+t3, t0+t1, t2+t3)
	VMOVSHDUP X0, X1   // lane 1 -> lane 0
	VADDSS  X1, X0, X0 // (t0+t1) + (t2+t3)
	VZEROUPPER
	ANDQ $7, CX
	JZ   done
tail:
	MOVSS (SI), X1
	MULSS (DI), X1
	ADDSS X1, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  tail
done:
	MOVSS X0, ret+48(FP)
	RET

// func dotCodesAVX2(q []int16, c []uint8) int32
//
// Exact integer dot: the sixteen int16·uint8 products per step reduce
// pairwise to 8 int32 lanes in one VPMADDWD (codes are 0..255, so they
// are non-negative int16 after the zero-extend), and the VPADDD
// accumulate chain has single-cycle latency. No rounding anywhere, so no
// schedule to mirror — any reduction order matches the Go reference.
TEXT ·dotCodesAVX2(SB), NOSPLIT, $0-52
	MOVQ q_base+0(FP), SI
	MOVQ c_base+24(FP), DI
	MOVQ c_len+32(FP), CX
	VPXOR Y0, Y0, Y0
	MOVQ CX, BX
	SHRQ $4, BX        // BX = len/16 vector steps
	JZ   reducei
loopi:
	VPMOVZXBW (DI), Y1    // 16 bytes -> 16 words
	VPMADDWD  (SI), Y1, Y1 // q[2k]·c[2k] + q[2k+1]·c[2k+1] -> 8 dwords
	VPADDD    Y1, Y0, Y0
	ADDQ $32, SI
	ADDQ $16, DI
	DECQ BX
	JNZ  loopi
reducei:
	VEXTRACTI128 $1, Y0, X1
	VPADDD  X1, X0, X0
	VPHADDD X0, X0, X0
	VPHADDD X0, X0, X0
	VMOVD   X0, AX
	VZEROUPPER
	ANDQ $15, CX
	JZ   donei
taili:
	MOVBLZX (DI), DX
	MOVWLSX (SI), R8
	IMULL   R8, DX
	ADDL    DX, AX
	ADDQ $2, SI
	INCQ DI
	DECQ CX
	JNZ  taili
donei:
	MOVL AX, ret+48(FP)
	RET

// func prefetchSpan(p unsafe.Pointer, n uintptr)
//
// One PREFETCHT0 per 64-byte line of [p, p+n). The caller guarantees
// n > 0; prefetch never faults, so over-reaching the last partial line
// is harmless.
TEXT ·prefetchSpan(SB), NOSPLIT, $0-16
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX
prefloop:
	PREFETCHT0 (SI)
	ADDQ $64, SI
	SUBQ $64, CX
	JGT  prefloop
	RET

// func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() uint32
TEXT ·xgetbv0(SB), NOSPLIT, $0-4
	XORL CX, CX
	XGETBV
	MOVL AX, ret+0(FP)
	RET
