package must

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var shardedSchema = Schema{{Name: "a", Dim: 24}, {Name: "b", Dim: 12}}

// shardedObjects generates a deterministic corpus in insertion order.
func shardedObjects(n int, seed int64) []Object {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Object, n)
	for i := range out {
		out[i] = Object{randVec(rng, 24), randVec(rng, 12)}
	}
	return out
}

func shardedQueries(nq int, seed int64) []NamedVectors {
	rng := rand.New(rand.NewSource(seed))
	out := make([]NamedVectors, nq)
	for i := range out {
		out[i] = NamedVectors{"a": randVec(rng, 24), "b": randVec(rng, 12)}
	}
	return out
}

// newSharded builds an S-shard engine over objs in insertion order.
func newSharded(t *testing.T, objs []Object, shards int, build bool) *ShardedEngine {
	t.Helper()
	s, err := NewShardedEngine(shardedSchema, shards, EngineOptions{
		Build: BuildOptions{Gamma: 12, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range objs {
		id, err := s.InsertObject(o)
		if err != nil {
			t.Fatal(err)
		}
		if id != int64(i) {
			t.Fatalf("insert %d assigned global ID %d (want dense sequence)", i, id)
		}
	}
	if build {
		if err := s.Build(); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func newSingle(t *testing.T, objs []Object, build bool) *Engine {
	t.Helper()
	e, err := NewEngine(shardedSchema, EngineOptions{
		Build: BuildOptions{Gamma: 12, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if _, err := e.InsertObject(o); err != nil {
			t.Fatal(err)
		}
	}
	if build {
		if err := e.Build(); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// Exact search over the same corpus must return identical top-k IDs and
// scores regardless of the shard count: partitioning never changes an
// exhaustive scan, and the dense round-robin IDs line up with the single
// engine's.
func TestShardedExactEquivalence(t *testing.T) {
	objs := shardedObjects(300, 11)
	queries := shardedQueries(20, 12)
	single := newSingle(t, objs, false)
	for _, S := range []int{1, 4, 7} {
		sharded := newSharded(t, objs, S, false)
		for qi, q := range queries {
			want, err := single.ExactSearch(context.Background(), Query{Vectors: q, K: 10})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.ExactSearch(context.Background(), Query{Vectors: q, K: 10})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Matches) != len(want.Matches) {
				t.Fatalf("S=%d q=%d: %d matches, want %d", S, qi, len(got.Matches), len(want.Matches))
			}
			for i := range want.Matches {
				w, g := want.Matches[i], got.Matches[i]
				if g.ID != w.ID || g.Similarity != w.Similarity {
					t.Fatalf("S=%d q=%d rank %d: got (%d, %v), want (%d, %v)",
						S, qi, i, g.ID, g.Similarity, w.ID, w.Similarity)
				}
				for name, ws := range w.ByModality {
					if g.ByModality[name] != ws {
						t.Fatalf("S=%d q=%d rank %d: modality %s breakdown %v, want %v",
							S, qi, i, name, g.ByModality[name], ws)
					}
				}
			}
			if got.Stats.FullEvals != want.Stats.FullEvals {
				t.Fatalf("S=%d q=%d: scanned %d objects, want %d", S, qi, got.Stats.FullEvals, want.Stats.FullEvals)
			}
		}
	}
}

// ANN recall at equal per-shard L must be at least the single engine's
// (each shard examines up to L candidates of a smaller corpus, so the
// union can only cover more of the true top-k), minus a small tolerance
// for the different graphs.
func TestShardedRecallParity(t *testing.T) {
	const n, nq, k = 1500, 30, 10
	objs := shardedObjects(n, 21)
	queries := shardedQueries(nq, 22)
	single := newSingle(t, objs, true)

	recall := func(got, truth *Response) float64 {
		inTruth := make(map[int64]bool, len(truth.Matches))
		for _, m := range truth.Matches {
			inTruth[m.ID] = true
		}
		hit := 0
		for _, m := range got.Matches {
			if inTruth[m.ID] {
				hit++
			}
		}
		return float64(hit) / float64(len(truth.Matches))
	}

	baseline := 0.0
	truths := make([]*Response, nq)
	for qi, q := range queries {
		truth, err := single.ExactSearch(context.Background(), Query{Vectors: q, K: k})
		if err != nil {
			t.Fatal(err)
		}
		truths[qi] = truth
		got, err := single.Search(context.Background(), Query{Vectors: q, K: k, L: 60})
		if err != nil {
			t.Fatal(err)
		}
		baseline += recall(got, truth)
	}
	baseline /= nq

	for _, S := range []int{4, 7} {
		sharded := newSharded(t, objs, S, true)
		sum := 0.0
		for qi, q := range queries {
			got, err := sharded.Search(context.Background(), Query{Vectors: q, K: k, L: 60})
			if err != nil {
				t.Fatal(err)
			}
			sum += recall(got, truths[qi])
		}
		r := sum / nq
		t.Logf("S=%d recall@%d %.3f (single %.3f)", S, k, r, baseline)
		if r < baseline-0.05 {
			t.Errorf("S=%d recall@%d %.3f below single-engine %.3f - 0.05", S, k, r, baseline)
		}
	}
}

func TestShardedDeleteAndFilterUseGlobalIDs(t *testing.T) {
	objs := shardedObjects(120, 31)
	s := newSharded(t, objs, 4, true)

	// Filter sees global IDs.
	q := Query{Vectors: NamedVectors{"a": objs[6][0], "b": objs[6][1]}, K: 20,
		Filter: func(id int64) bool { return id%2 == 0 }}
	resp, err := s.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) == 0 {
		t.Fatal("filtered search returned nothing")
	}
	for _, m := range resp.Matches {
		if m.ID%2 != 0 {
			t.Fatalf("filter leaked odd global ID %d", m.ID)
		}
	}

	// Delete routes by global ID and excludes the object from results.
	if err := s.Delete(6); err != nil {
		t.Fatal(err)
	}
	resp, err = s.Search(context.Background(), Query{Vectors: NamedVectors{"a": objs[6][0], "b": objs[6][1]}, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range resp.Matches {
		if m.ID == 6 {
			t.Fatal("deleted object still in results")
		}
	}

	// Unknown IDs report the caller's global ID and match ErrUnknownID.
	err = s.Delete(999_999)
	if !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown delete: %v", err)
	}
	if err.Error() != "must: unknown object id 999999" {
		t.Fatalf("unknown delete message: %q", err.Error())
	}
	if _, err := s.Object(-3); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("negative object id: %v", err)
	}
}

// Build with fewer objects than shards leaves the empty shards pending;
// the first insert routed to a pending shard builds it lazily so the
// object is immediately searchable, like a post-Build insert on a single
// engine.
func TestShardedLazyBuildOnInsert(t *testing.T) {
	objs := shardedObjects(10, 41)
	s := newSharded(t, objs[:2], 4, true)

	states := func() map[string]int {
		m := map[string]int{}
		for _, si := range s.ShardStats() {
			m[si.State]++
		}
		return m
	}
	if st := states(); st["built"] != 2 || st["pending"] != 2 {
		t.Fatalf("after partial build: %v", st)
	}
	for i, o := range objs[2:] {
		id, err := s.InsertObject(o)
		if err != nil {
			t.Fatal(err)
		}
		if id != int64(2+i) {
			t.Fatalf("post-build insert got ID %d, want %d", id, 2+i)
		}
	}
	if st := states(); st["built"] != 4 {
		t.Fatalf("after lazy builds: %v", st)
	}
	// Every object, including ones inserted into lazily-built shards, is
	// reachable.
	for i, o := range objs {
		resp, err := s.Search(context.Background(), Query{Vectors: NamedVectors{"a": o[0], "b": o[1]}, K: len(objs)})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range resp.Matches {
			if m.ID == int64(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("object %d not reachable", i)
		}
	}
}

// Rebuild compacts tombstones shard by shard; a shard whose objects are
// all tombstoned is skipped rather than emptied.
func TestShardedRebuildCompacts(t *testing.T) {
	const S = 4
	objs := shardedObjects(40, 51)
	s := newSharded(t, objs, S, true)

	// Tombstone all of shard 1 (ids ≡ 1 mod S) and a few others.
	for id := int64(1); id < 40; id += S {
		if err := s.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(4); err != nil {
		t.Fatal(err)
	}
	wantLive := 40 - 10 - 2
	if got := s.Len(); got != wantLive {
		t.Fatalf("live %d, want %d", got, wantLive)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	// Shards 0,2,3 compacted; shard 1 skipped with its 10 tombstones.
	if got := s.Deleted(); got != 10 {
		t.Fatalf("tombstones after rebuild %d, want 10 (all-dead shard skipped)", got)
	}
	if got := s.Len(); got != wantLive {
		t.Fatalf("live after rebuild %d, want %d", got, wantLive)
	}
	// Surviving IDs stay stable and searchable; deleted ones stay gone.
	resp, err := s.Search(context.Background(), Query{Vectors: NamedVectors{"a": objs[2][0], "b": objs[2][1]}, K: 40})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, m := range resp.Matches {
		seen[m.ID] = true
	}
	if !seen[2] {
		t.Fatal("surviving object 2 unreachable after rebuild")
	}
	for _, dead := range []int64{0, 1, 4, 5} {
		if seen[dead] {
			t.Fatalf("deleted object %d resurfaced after rebuild", dead)
		}
	}

	// Per-shard rebuild hook: out-of-range is an error, in-range compacts.
	if err := s.RebuildShard(S); err == nil {
		t.Fatal("RebuildShard out of range accepted")
	}
	if err := s.RebuildShard(0); err != nil {
		t.Fatal(err)
	}
}

// The summed epoch changes on every mutation, and a mutation bumps only
// the owning shard's epoch.
func TestShardedEpochPerShard(t *testing.T) {
	objs := shardedObjects(20, 61)
	s := newSharded(t, objs, 4, true)
	before := s.Epochs()
	sumBefore := s.Epoch()
	// Insert 20 routes to shard 20 % 4 = 0.
	if _, err := s.InsertObject(objs[0]); err != nil {
		t.Fatal(err)
	}
	after := s.Epochs()
	if after[0] <= before[0] {
		t.Fatalf("owning shard epoch did not advance: %v -> %v", before, after)
	}
	for j := 1; j < 4; j++ {
		if after[j] != before[j] {
			t.Fatalf("shard %d epoch moved on foreign insert: %v -> %v", j, before, after)
		}
	}
	if s.Epoch() <= sumBefore {
		t.Fatal("summed epoch did not advance")
	}
}

func shardedEqualResults(t *testing.T, a, b *ShardedEngine, queries []NamedVectors) {
	t.Helper()
	for qi, q := range queries {
		ra, err := a.Search(context.Background(), Query{Vectors: q, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Search(context.Background(), Query{Vectors: q, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(ra.Matches) != len(rb.Matches) {
			t.Fatalf("q=%d: %d vs %d matches", qi, len(ra.Matches), len(rb.Matches))
		}
		for i := range ra.Matches {
			if ra.Matches[i].ID != rb.Matches[i].ID || ra.Matches[i].Similarity != rb.Matches[i].Similarity {
				t.Fatalf("q=%d rank %d: (%d,%v) vs (%d,%v)", qi, i,
					ra.Matches[i].ID, ra.Matches[i].Similarity, rb.Matches[i].ID, rb.Matches[i].Similarity)
			}
		}
	}
}

func TestShardedPersistRoundTrip(t *testing.T) {
	objs := shardedObjects(90, 71)
	queries := shardedQueries(10, 72)
	s := newSharded(t, objs, 3, true)
	if err := s.Delete(5); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sharded.bin")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	// Parallel file load.
	loaded, err := LoadShardedEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ShardCount() != 3 || loaded.Len() != s.Len() || loaded.Deleted() != s.Deleted() {
		t.Fatalf("loaded shape: shards=%d len=%d deleted=%d", loaded.ShardCount(), loaded.Len(), loaded.Deleted())
	}
	shardedEqualResults(t, s, loaded, queries)

	// Sequential stream load agrees.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := ReadShardedEngine(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	shardedEqualResults(t, s, streamed, queries)

	// The round-robin cursor survives: the next insert lands on the same
	// shard and gets the same global ID in both engines.
	idLive, err := s.InsertObject(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	idLoaded, err := loaded.InsertObject(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	if idLive != idLoaded {
		t.Fatalf("post-load insert ID %d, live engine %d", idLoaded, idLive)
	}

	// LoadService sniffs the container magic for both kinds.
	svc, err := LoadService(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.(*ShardedEngine); !ok {
		t.Fatalf("LoadService(MUSTSH1) returned %T", svc)
	}
	single := newSingle(t, objs[:30], true)
	singlePath := filepath.Join(t.TempDir(), "single.bin")
	if err := single.Save(singlePath); err != nil {
		t.Fatal(err)
	}
	svc, err = LoadService(singlePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.(*Engine); !ok {
		t.Fatalf("LoadService(MUSTEG1) returned %T", svc)
	}
}

func TestShardedPersistCorruptHeader(t *testing.T) {
	objs := shardedObjects(30, 81)
	s := newSharded(t, objs, 3, true)
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), good...)
		mutate(b)
		_, err := ReadShardedEngine(bytes.NewReader(b))
		return err
	}

	if err := corrupt(func(b []byte) { b[0] = 'X' }); err == nil {
		t.Error("bad magic accepted")
	}
	// Shard count beyond MaxShards must be rejected before any
	// per-shard allocation happens.
	if err := corrupt(func(b []byte) {
		binary.LittleEndian.PutUint32(b[8:], 1<<31)
	}); err == nil {
		t.Error("absurd shard count accepted")
	}
	if err := corrupt(func(b []byte) {
		binary.LittleEndian.PutUint32(b[8:], 0)
	}); err == nil {
		t.Error("zero shard count accepted")
	}
	// First blob length pointing past the end of the data must fail
	// cleanly (truncated read), not hang or over-read into a panic.
	if err := corrupt(func(b []byte) {
		binary.LittleEndian.PutUint64(b[20:], 1<<40)
	}); err == nil {
		t.Error("oversized blob length accepted")
	}
	if _, err := ReadShardedEngine(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated container accepted")
	}

	// The parallel file loader bounds blob sizes against the file size.
	path := filepath.Join(t.TempDir(), "corrupt.bin")
	b := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(b[20:], 1<<40)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardedEngine(path); err == nil {
		t.Error("LoadShardedEngine accepted blob size beyond file size")
	}
}

// A mixed concurrent workload over a sharded engine must be race-free:
// searches, inserts, deletes, rebuilds, stats, and snapshots all at once.
func TestShardedConcurrentMixedWorkload(t *testing.T) {
	objs := shardedObjects(300, 91)
	extra := shardedObjects(200, 92)
	queries := shardedQueries(8, 93)
	s := newSharded(t, objs, 4, true)

	var wg sync.WaitGroup
	// Searchers: single queries and batches.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				q := Query{Vectors: queries[(w+i)%len(queries)], K: 5}
				if _, err := s.Search(context.Background(), q); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		qs := make([]Query, len(queries))
		for i, q := range queries {
			qs[i] = Query{Vectors: q, K: 5}
		}
		for i := 0; i < 15; i++ {
			_, errs := s.SearchEach(context.Background(), qs, 2)
			for _, err := range errs {
				if err != nil {
					t.Errorf("searchEach: %v", err)
					return
				}
			}
		}
	}()
	// Inserters.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(extra); i += 2 {
				if _, err := s.InsertObject(extra[i]); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	// Deleter: tombstones a slice of the initial corpus (always live).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := int64(0); id < 60; id++ {
			if err := s.Delete(id); err != nil {
				t.Errorf("delete %d: %v", id, err)
				return
			}
		}
	}()
	// Maintenance: full rebuilds and single-shard rebuilds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if err := s.Rebuild(); err != nil {
				t.Errorf("rebuild: %v", err)
				return
			}
			if err := s.RebuildShard(i % 4); err != nil {
				t.Errorf("rebuildShard: %v", err)
				return
			}
		}
	}()
	// Observers: stats, epochs, snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := s.Stats(); err != nil {
				t.Errorf("stats: %v", err)
				return
			}
			s.ShardStats()
			s.Epochs()
			_ = s.Len()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if err := s.SaveTo(&countingDiscard{}); err != nil {
				t.Errorf("save: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if got, want := s.Len(), len(objs)+len(extra)-60; got != want {
		t.Fatalf("final live count %d, want %d", got, want)
	}
}

// countingDiscard is an io.Writer sink for concurrent snapshot tests.
type countingDiscard struct{ n int64 }

func (c *countingDiscard) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
