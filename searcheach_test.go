package must

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestSearchEachPerQueryErrors checks that one bad query fails only its
// own slot: every other query in the batch still runs and returns its
// result (the serving-tier contract — a malformed request must not
// poison the coalesced batch it rides in).
func TestSearchEachPerQueryErrors(t *testing.T) {
	e, rng := newBuiltEngine(t, 300)
	good := Query{Vectors: NamedVectors{"image": engRandVec(rng, engImgDim)}, K: 5}
	queries := []Query{
		good,
		{Vectors: NamedVectors{"sound": engRandVec(rng, 4)}}, // unknown modality
		good,
		{Vectors: NamedVectors{"image": engRandVec(rng, 3)}}, // wrong dim
		{Vectors: NamedVectors{"image": nil, "text": nil}},   // no active modality
		good,
	}
	out, errs := e.SearchEach(context.Background(), queries, 2)
	if len(out) != len(queries) || len(errs) != len(queries) {
		t.Fatalf("got %d responses, %d errors for %d queries", len(out), len(errs), len(queries))
	}
	for i, wantErr := range []bool{false, true, false, true, true, false} {
		if wantErr {
			if errs[i] == nil || out[i] != nil {
				t.Errorf("query %d: want error, got resp=%v err=%v", i, out[i], errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Errorf("query %d: unexpected error %v", i, errs[i])
			continue
		}
		if out[i] == nil || len(out[i].Matches) != 5 {
			t.Errorf("query %d: want 5 matches, got %+v", i, out[i])
		}
	}
}

// TestSearchEachRequestMatchedResults hammers SearchEach from many
// goroutines under -race, each batch querying with exact stored vectors:
// the top match of slot i must be the object whose vectors slot i asked
// for, proving results are never crossed between sub-queries or torn by
// searcher reuse across a worker's stride.
func TestSearchEachRequestMatchedResults(t *testing.T) {
	const n = 400
	e, rng := newBuiltEngine(t, n)
	// Re-fetch stored vectors so queries are bit-identical to corpus rows
	// (Insert normalizes; Object returns the normalized copy).
	ids := make([]int64, 0, 32)
	objs := make([]NamedVectors, 0, 32)
	for i := 0; i < 32; i++ {
		id := int64(rng.Intn(n))
		o, err := e.Object(id)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		objs = append(objs, o)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				// Each batch uses a goroutine-specific rotation so
				// concurrent batches ask for different objects in the
				// same slot.
				queries := make([]Query, len(objs))
				want := make([]int64, len(objs))
				for i := range objs {
					j := (i + g + round) % len(objs)
					queries[i] = Query{Vectors: objs[j], K: 3}
					want[i] = ids[j]
				}
				out, errs := e.SearchEach(context.Background(), queries, 4)
				for i := range out {
					if errs[i] != nil {
						t.Errorf("g%d r%d slot %d: %v", g, round, i, errs[i])
						continue
					}
					if len(out[i].Matches) == 0 || out[i].Matches[0].ID != want[i] {
						t.Errorf("g%d r%d slot %d: top match %+v, want id %d",
							g, round, i, out[i].Matches, want[i])
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSearchEachCancellation checks a cancelled context fails queries
// with a context error in their own slots and returns promptly, and
// that a batch already answered is unaffected by later cancellation.
func TestSearchEachCancellation(t *testing.T) {
	e, rng := newBuiltEngine(t, 300)
	q := Query{Vectors: NamedVectors{"image": engRandVec(rng, engImgDim)}, K: 3}

	ctx, cancel := context.WithCancel(context.Background())
	done, errsDone := e.SearchEach(ctx, []Query{q, q}, 2)
	for i := range done {
		if errsDone[i] != nil {
			t.Fatalf("pre-cancel slot %d: %v", i, errsDone[i])
		}
	}
	keepID, keepSim := done[0].Matches[0].ID, done[0].Matches[0].Similarity
	cancel()
	// Already-cancelled context: every slot reports the context error.
	out, errs := e.SearchEach(ctx, []Query{q, q, q}, 2)
	for i := range errs {
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("slot %d: want context.Canceled, got %v (resp %v)", i, errs[i], out[i])
		}
	}
	// Responses produced before the cancel are owned copies, untouched.
	if done[0].Matches[0].ID != keepID || done[0].Matches[0].Similarity != keepSim {
		t.Errorf("earlier response mutated after cancel: %+v != {%d %v}", done[0].Matches[0], keepID, keepSim)
	}
}

// TestSearchEachResultsAreOwnedCopies verifies responses do not alias
// pooled searcher buffers: matches captured from one batch stay
// byte-identical after the same searchers serve many further batches.
func TestSearchEachResultsAreOwnedCopies(t *testing.T) {
	e, rng := newBuiltEngine(t, 300)
	q := Query{Vectors: NamedVectors{"image": engRandVec(rng, engImgDim)}, K: 10}
	out, errs := e.SearchEach(context.Background(), []Query{q}, 1)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	snap := make([]ScoredMatch, len(out[0].Matches))
	copy(snap, out[0].Matches)
	for i := 0; i < 50; i++ {
		other := Query{Vectors: NamedVectors{"image": engRandVec(rng, engImgDim)}, K: 10}
		if _, errs := e.SearchEach(context.Background(), []Query{other, other}, 2); errs[0] != nil {
			t.Fatal(errs[0])
		}
	}
	for i, m := range out[0].Matches {
		if m.ID != snap[i].ID || m.Similarity != snap[i].Similarity {
			t.Fatalf("match %d mutated by later searches: %+v != %+v", i, m, snap[i])
		}
	}
}

// TestSearchEachBeforeBuild: every slot reports ErrNotBuilt, no panic.
func TestSearchEachBeforeBuild(t *testing.T) {
	e, err := NewEngine(engSchema(), EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, errs := e.SearchEach(context.Background(), make([]Query, 3), 2)
	for i := range errs {
		if !errors.Is(errs[i], ErrNotBuilt) {
			t.Errorf("slot %d: want ErrNotBuilt, got %v (resp %v)", i, errs[i], out[i])
		}
	}
}

// TestEngineEpoch checks the mutation epoch advances on every
// result-visible change — the invariant result caches key on.
func TestEngineEpoch(t *testing.T) {
	e, r := newBuiltEngine(t, 60)
	last := e.Epoch()
	bump := func(what string, f func() error) {
		t.Helper()
		if err := f(); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		now := e.Epoch()
		if now <= last {
			t.Errorf("%s did not advance epoch (%d -> %d)", what, last, now)
		}
		last = now
	}
	var id int64
	bump("insert", func() error {
		var err error
		id, err = e.Insert(NamedVectors{"image": engRandVec(r, engImgDim), "text": engRandVec(r, engTxtDim)})
		return err
	})
	bump("delete", func() error { return e.Delete(id) })
	bump("setweights", func() error { return e.SetWeights(Weights{0.5, 0.5}) })
	bump("rebuild", func() error { return e.Rebuild() })
	// Failed mutations must not bump: deleting an unknown ID errors.
	if err := e.Delete(1 << 40); err == nil {
		t.Fatal("delete of unknown id succeeded")
	}
	if e.Epoch() != last {
		t.Errorf("failed delete bumped epoch %d -> %d", last, e.Epoch())
	}
}
