// Sharded-engine benchmarks: the scale path's CI gates. The n=16384 tier
// always runs and is gated in BENCH_BASELINE.json with the rest of the
// suite; the n=262144 tier only runs with MUST_SCALE=1 (the nightly
// scale workflow) and gates against BENCH_BASELINE_SCALE.json, so PR
// benches stay fast while the 256k path cannot silently regress.
package must_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"must"
)

var shardedBenchSchema = must.Schema{{Name: "image", Dim: 24}, {Name: "text", Dim: 12}}

type shardedBench struct {
	mu      sync.Mutex
	corpus  map[int][]must.Object
	queries []must.NamedVectors
	engines map[string]*must.ShardedEngine
	truth   map[int][]map[int64]bool // n -> per-query exact top-10 ID set
}

var sb = shardedBench{
	corpus:  map[int][]must.Object{},
	engines: map[string]*must.ShardedEngine{},
	truth:   map[int][]map[int64]bool{},
}

const shardedBenchQueryCount = 64

func (s *shardedBench) getQueries() []must.NamedVectors {
	if s.queries == nil {
		rng := rand.New(rand.NewSource(99))
		s.queries = make([]must.NamedVectors, shardedBenchQueryCount)
		for i := range s.queries {
			img := make([]float32, 24)
			txt := make([]float32, 12)
			for j := range img {
				img[j] = float32(rng.NormFloat64())
			}
			for j := range txt {
				txt[j] = float32(rng.NormFloat64())
			}
			s.queries[i] = must.NamedVectors{"image": img, "text": txt}
		}
	}
	return s.queries
}

func (s *shardedBench) getCorpus(n int) []must.Object {
	if objs, ok := s.corpus[n]; ok {
		return objs
	}
	rng := rand.New(rand.NewSource(int64(n)))
	objs := make([]must.Object, n)
	for i := range objs {
		img := make([]float32, 24)
		txt := make([]float32, 12)
		for j := range img {
			img[j] = float32(rng.NormFloat64())
		}
		for j := range txt {
			txt[j] = float32(rng.NormFloat64())
		}
		objs[i] = must.Object{img, txt}
	}
	s.corpus[n] = objs
	return objs
}

func shardedBenchEngine(b *testing.B, n, shards int, build bool) *must.ShardedEngine {
	b.Helper()
	eng, err := must.NewShardedEngine(shardedBenchSchema, shards, must.EngineOptions{
		Build: must.BuildOptions{Gamma: 24, Seed: 7},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range sb.getCorpus(n) {
		if _, err := eng.InsertObject(o); err != nil {
			b.Fatal(err)
		}
	}
	if build {
		if err := eng.Build(); err != nil {
			b.Fatal(err)
		}
	}
	return eng
}

// getBuiltEngine caches one built engine per (n, S) for the whole bench
// process, so -count reruns re-time search without rebuilding.
func (s *shardedBench) getBuiltEngine(b *testing.B, n, shards int) *must.ShardedEngine {
	b.Helper()
	key := fmt.Sprintf("%d/%d", n, shards)
	if eng, ok := s.engines[key]; ok {
		return eng
	}
	eng := shardedBenchEngine(b, n, shards, true)
	s.engines[key] = eng
	return eng
}

// getTruth caches the exact top-10 ID sets of the first 16 bench queries
// (exhaustive scan is partition-independent, so any engine over the same
// corpus produces the same sets).
func (s *shardedBench) getTruth(b *testing.B, eng *must.ShardedEngine, n int) []map[int64]bool {
	b.Helper()
	if tr, ok := s.truth[n]; ok {
		return tr
	}
	queries := s.getQueries()[:16]
	tr := make([]map[int64]bool, len(queries))
	for i, q := range queries {
		resp, err := eng.ExactSearch(context.Background(), must.Query{Vectors: q, K: 10})
		if err != nil {
			b.Fatal(err)
		}
		tr[i] = make(map[int64]bool, len(resp.Matches))
		for _, m := range resp.Matches {
			tr[i][m.ID] = true
		}
	}
	s.truth[n] = tr
	return tr
}

// shardedTiers returns the corpus sizes to bench: the PR tier always,
// plus the 256k scale tier when MUST_SCALE=1.
func shardedTiers() []int {
	tiers := []int{16384}
	if os.Getenv("MUST_SCALE") != "" {
		tiers = append(tiers, 262144)
	}
	return tiers
}

// BenchmarkShardedBuild times full index construction at S=1 vs S=8 over
// the identical corpus. Shards build in parallel on a bounded pool, so on
// a multi-core runner S=8 is expected to be ≥2× faster than S=1 at 256k;
// on a single core the two are equivalent (the gate then guards the
// bookkeeping overhead of sharding instead).
func BenchmarkShardedBuild(b *testing.B) {
	for _, n := range shardedTiers() {
		for _, S := range []int{1, 8} {
			b.Run(fmt.Sprintf("n=%d/S=%d", n, S), func(b *testing.B) {
				sb.mu.Lock()
				defer sb.mu.Unlock()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					eng := shardedBenchEngine(b, n, S, false)
					b.StartTimer()
					if err := eng.Build(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkShardedSearch times single-query fan-out/merge search at
// matched recall: the single engine runs the default beam l=160 while
// S=8 runs l=40 per shard (8 shards × 40 candidates ≈ more corpus
// coverage per query, so recall stays at least as high — reported as
// recall@10 next to ns/op). The gate holds the sharded p50 within the
// tolerance band of this baseline.
func BenchmarkShardedSearch(b *testing.B) {
	for _, n := range shardedTiers() {
		for _, cfg := range []struct{ S, L int }{{1, 160}, {8, 40}} {
			b.Run(fmt.Sprintf("n=%d/S=%d/l=%d", n, cfg.S, cfg.L), func(b *testing.B) {
				sb.mu.Lock()
				defer sb.mu.Unlock()
				eng := sb.getBuiltEngine(b, n, cfg.S)
				queries := sb.getQueries()
				truth := sb.getTruth(b, eng, n)
				hits, total := 0, 0
				for i, tr := range truth {
					resp, err := eng.Search(context.Background(), must.Query{Vectors: queries[i], K: 10, L: cfg.L})
					if err != nil {
						b.Fatal(err)
					}
					for _, m := range resp.Matches {
						if tr[m.ID] {
							hits++
						}
					}
					total += len(tr)
				}
				b.ReportAllocs()
				b.ResetTimer() // also clears ReportMetric state — report recall after the loop
				for i := 0; i < b.N; i++ {
					q := must.Query{Vectors: queries[i%len(queries)], K: 10, L: cfg.L}
					if _, err := eng.Search(context.Background(), q); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(hits)/float64(total), "recall@10")
			})
		}
	}
}
