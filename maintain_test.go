package must

import (
	"context"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"must/internal/maint"
)

// waitUntil polls cond up to 5s — maintenance runs on its own clock, so
// e2e assertions are convergence checks, not instant ones.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fastMaint returns options that make the loop converge in test time.
func fastMaint() MaintenanceOptions {
	return MaintenanceOptions{
		Interval:           2 * time.Millisecond,
		MinRebuildGap:      time.Millisecond,
		OverlayWatermark:   0.20,
		TombstoneWatermark: 0.20,
	}
}

// TestMaintenanceAutoRebuildsSingleEngine is the headline contract:
// churn past the tombstone watermark and the engine compacts itself
// with NO caller Rebuild.
func TestMaintenanceAutoRebuildsSingleEngine(t *testing.T) {
	e := newSingle(t, shardedObjects(100, 1), true)
	for id := int64(0); id < 30; id++ {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	m := StartMaintenance(e, fastMaint())
	defer m.Close()
	waitUntil(t, "auto-rebuild to clear tombstones", func() bool {
		return e.Deleted() == 0 && m.Rebuilds() >= 1
	})
	st := m.Stats()
	if !st.Enabled || st.LastUnit != 0 {
		t.Fatalf("MaintStats = %+v, want enabled with last_unit 0", st)
	}
	// The compacted engine still answers.
	resp, err := e.Search(context.Background(), Query{Vectors: shardedQueries(1, 2)[0], K: 5})
	if err != nil || len(resp.Matches) == 0 {
		t.Fatalf("search after auto-rebuild: %v (%d matches)", err, len(resp.Matches))
	}
}

// TestMaintenanceRebuildsOnlyTheDirtyShard: one hot shard crosses the
// watermark; maintenance rebuilds it shard-by-shard and leaves clean
// shards' epochs untouched.
func TestMaintenanceRebuildsOnlyTheDirtyShard(t *testing.T) {
	const S = 4
	s := newSharded(t, shardedObjects(400, 1), S, true)
	for id := int64(1); id < 400 && s.Deleted() < 30; id += S {
		if err := s.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	epochsBefore := make([]uint64, S)
	for j, info := range s.ShardStats() {
		epochsBefore[j] = info.Epoch
	}
	m := StartMaintenance(s, fastMaint())
	defer m.Close()
	waitUntil(t, "dirty shard auto-rebuild", func() bool {
		return s.Deleted() == 0 && m.Rebuilds() >= 1
	})
	if got := m.Stats().LastUnit; got != 1 {
		t.Fatalf("last rebuilt unit = %d, want the dirty shard 1", got)
	}
	for j, info := range s.ShardStats() {
		if j == 1 {
			continue
		}
		if info.Epoch != epochsBefore[j] {
			t.Fatalf("clean shard %d epoch moved %d -> %d (maintenance must touch only the dirty shard)",
				j, epochsBefore[j], info.Epoch)
		}
	}
}

// TestMaintenanceRecoversQuarantinedShard is the self-healing loop end
// to end: K panics quarantine a shard, maintenance notices and rebuilds
// it, the rebuild force-closes the breaker, and fan-out is whole again
// — with no manual intervention anywhere.
func TestMaintenanceRecoversQuarantinedShard(t *testing.T) {
	const S = 4
	s := newSharded(t, shardedObjects(400, 1), S, true)
	s.ConfigureHealth(HealthConfig{Threshold: 2, Window: time.Minute, Probe: time.Hour})
	failShard(s, t, 2, S, 2)
	if got := s.ShardHealth()[2]; got != maint.Quarantined.String() {
		t.Fatalf("health = %q, want quarantined before maintenance starts", got)
	}

	m := StartMaintenance(s, fastMaint())
	defer m.Close()
	waitUntil(t, "quarantined shard re-admitted by maintenance rebuild", func() bool {
		return s.ShardHealth()[2] == maint.Healthy.String()
	})
	if m.Rebuilds() < 1 {
		t.Fatal("re-admission happened without a maintenance rebuild")
	}
	resp, err := s.Search(context.Background(), Query{Vectors: shardedQueries(1, 2)[0], K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Partial {
		t.Fatalf("search still partial after recovery: %+v", resp.ShardErrors)
	}
}

// TestMaintenancePauseResumeLive: Pause freezes rebuild decisions while
// pressure accumulates; Resume drains it.
func TestMaintenancePauseResumeLive(t *testing.T) {
	e := newSingle(t, shardedObjects(100, 1), true)
	m := StartMaintenance(e, fastMaint())
	defer m.Close()
	m.Pause()
	for id := int64(0); id < 30; id++ {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "debt sampled while paused", func() bool { return m.Stats().Debt == 1 })
	if m.Rebuilds() != 0 || e.Deleted() == 0 {
		t.Fatal("paused maintainer rebuilt anyway")
	}
	m.Resume()
	m.Kick()
	waitUntil(t, "resume drains the debt", func() bool { return e.Deleted() == 0 })
}

// TestDurableRebuildShardReplay: a RebuildShard through the durable
// wrapper is WAL-logged (OpRebuildShard) and replay reproduces the
// exact state — same epoch sequence, same bits — including writes
// interleaved around the shard rebuild.
func TestDurableRebuildShardReplay(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	ds, _, err := OpenDurable(newDurableEngine(t, 3), walDir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	ids := make([]int64, 0, 90)
	for i := 0; i < 90; i++ {
		id, err := ds.Insert(durableRandObject(rng))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := ds.Build(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ids); i += 3 {
		if err := ds.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.RebuildShard(1); err != nil {
		t.Fatal(err)
	}
	// Writes after the shard rebuild must replay on top of it.
	for i := 0; i < 12; i++ {
		if _, err := ds.Insert(durableRandObject(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.RebuildShard(2); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2, replayed, err := OpenDurable(newDurableEngine(t, 3), walDir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if replayed == 0 {
		t.Fatal("nothing replayed")
	}
	sameCorpus(t, ds, ds2)
	// The replayed service keeps working where the original left off.
	if _, err := ds2.Insert(durableRandObject(rng)); err != nil {
		t.Fatalf("insert after replay: %v", err)
	}
}

// TestDurableRebuildShardOnUnsharded: the durable wrapper must refuse
// shard-grain rebuilds when the inner service is not sharded.
func TestDurableRebuildShardOnUnsharded(t *testing.T) {
	ds, _, err := OpenDurable(newDurableEngine(t, 1), filepath.Join(t.TempDir(), "wal"), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d, want 1", ds.ShardCount())
	}
	if err := ds.RebuildShard(0); err == nil {
		t.Fatal("RebuildShard on an unsharded durable service succeeded")
	}
}

// TestMaintenanceDurableReplayEquivalence: maintenance-initiated
// rebuilds go through the durable write path, so a service that
// self-healed replays to the same state as one that never restarted.
func TestMaintenanceDurableReplayEquivalence(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	ds, _, err := OpenDurable(newDurableEngine(t, 2), walDir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	ids := make([]int64, 0, 80)
	for i := 0; i < 80; i++ {
		id, err := ds.Insert(durableRandObject(rng))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := ds.Build(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ids); i += 3 {
		if err := ds.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	m := StartMaintenance(ds, fastMaint())
	waitUntil(t, "maintenance rebuild through the WAL", func() bool {
		return ds.Deleted() == 0 && m.Rebuilds() >= 1
	})
	m.Close()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2, _, err := OpenDurable(newDurableEngine(t, 2), walDir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	sameCorpus(t, ds, ds2)
}

// TestShardedRebuildChurnRace hammers a sharded engine with concurrent
// Insert/Delete/Search while rebuilds (whole-engine and per-shard) run —
// the exact interleaving background maintenance creates. Run under
// -race this is the PR's memory-safety proof for the maintenance path.
func TestShardedRebuildChurnRace(t *testing.T) {
	const S = 3
	s := newSharded(t, shardedObjects(240, 1), S, true)
	var (
		stop atomic.Bool
		next atomic.Int64
		wg   sync.WaitGroup
	)
	next.Store(240)
	rng := rand.New(rand.NewSource(21))
	objs := shardedObjects(64, 5)
	queries := shardedQueries(8, 9)
	_ = rng

	// Writers: insert fresh objects, delete a sliding window.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				if _, err := s.InsertObject(objs[int(next.Add(1))%len(objs)]); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				id := next.Load() - 40
				if id >= 0 {
					// Concurrent deletes may race on the same id or hit one a
					// rebuild just compacted away; both are fine — only data
					// races and corruption are failures here.
					_ = s.Delete(id % next.Load())
				}
			}
		}(w)
	}
	// Searchers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				q := Query{Vectors: queries[(w+i)%len(queries)], K: 5}
				if _, err := s.Search(context.Background(), q); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}(w)
	}
	// Maintenance-shaped rebuild loop: alternate shard and full rebuilds.
	deadline := time.Now().Add(800 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		var err error
		if i%4 == 3 {
			err = s.Rebuild()
		} else {
			err = s.RebuildShard(i % S)
		}
		if err != nil {
			t.Errorf("rebuild %d: %v", i, err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()

	// The engine must still be coherent: search answers, stats add up.
	if _, err := s.Search(context.Background(), Query{Vectors: queries[0], K: 5}); err != nil {
		t.Fatalf("search after churn: %v", err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects <= 0 {
		t.Fatalf("stats after churn: %+v", st)
	}
}

// TestStatsMaintenanceRatios: the new Stats fields used by the
// maintenance loop must be populated and summed across shards.
func TestStatsMaintenanceRatios(t *testing.T) {
	const S = 2
	s := newSharded(t, shardedObjects(200, 1), S, true)
	for id := int64(0); id < 20; id++ {
		if err := s.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		if _, err := s.InsertObject(Object{randVec(rng, 24), randVec(rng, 12)}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TombstoneRatio <= 0 {
		t.Fatalf("TombstoneRatio = %v, want > 0 after deletes", st.TombstoneRatio)
	}
	// Overlay inserts create one overlay vertex each plus back-edge
	// entries on the existing vertices they wire into, so the count is
	// at least the number of inserts.
	if st.OverlayVertices < 10 || st.OverlayRatio <= 0 {
		t.Fatalf("overlay = %d/%v, want >= 10 vertices after overlay inserts", st.OverlayVertices, st.OverlayRatio)
	}
	for j, info := range s.ShardStats() {
		if info.Stats.TombstoneRatio <= 0 {
			t.Fatalf("shard %d TombstoneRatio = %v, want > 0", j, info.Stats.TombstoneRatio)
		}
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	st, err = s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TombstoneRatio != 0 || st.OverlayRatio != 0 {
		t.Fatalf("ratios after rebuild = %v/%v, want 0/0", st.TombstoneRatio, st.OverlayRatio)
	}
}
