package must

import (
	"sync"
	"time"

	"must/internal/maint"
)

// MaintenanceOptions tunes StartMaintenance; zero fields take defaults.
type MaintenanceOptions struct {
	// Interval between maintenance-pressure samples (default 1s).
	Interval time.Duration
	// MinRebuildGap is the minimum time between two maintenance rebuilds
	// — the pacing that keeps compaction from monopolizing the engine
	// (default 10s). One shard (or the whole engine, when unsharded)
	// rebuilds per gap.
	MinRebuildGap time.Duration
	// OverlayWatermark triggers a rebuild when a unit's overlay ratio
	// reaches it (default 0.20).
	OverlayWatermark float64
	// TombstoneWatermark triggers a rebuild when a unit's tombstone
	// ratio reaches it (default 0.20).
	TombstoneWatermark float64
	// Guard, when set, is held around every maintenance rebuild. mustd
	// shares one guard between maintenance and the periodic-snapshot
	// loop so a snapshot never captures a shard mid-compaction.
	Guard sync.Locker
	// Logf, when set, receives one line per rebuild decision and error.
	Logf func(format string, args ...any)
	// Seed seeds the scheduling jitter (0 = fixed default).
	Seed int64
}

// MaintStats is the maintenance block of /v1/stats.
type MaintStats struct {
	// Enabled is false when the serving layer runs without maintenance.
	Enabled bool `json:"enabled"`
	// Paused reports whether rebuild decisions are suspended.
	Paused bool `json:"paused"`
	// Rebuilds counts completed maintenance rebuilds.
	Rebuilds uint64 `json:"rebuilds"`
	// Failures counts maintenance rebuilds that returned an error.
	Failures uint64 `json:"failures"`
	// Debt is how many units (shards) were at or past a watermark — or
	// quarantined — at the last sample.
	Debt int `json:"debt"`
	// LastUnit is the most recently rebuilt unit (shard index; 0 for an
	// unsharded engine), or -1 if maintenance has not rebuilt yet.
	LastUnit int `json:"last_unit"`
}

// Maintainer runs background maintenance over a Service: it samples
// overlay and tombstone ratios against the watermarks and issues paced
// Rebuild (unsharded) or RebuildShard (sharded — one shard at a time)
// calls, so the engine self-heals under write churn with no caller
// Rebuild. Quarantined shards jump the queue: their rebuild is the
// re-admission path. Close stops the loop; the Service is untouched.
type Maintainer struct {
	mgr *maint.Manager
}

// serviceTarget adapts a Service onto the maint.Target surface. A
// sharded service (ShardCount > 1) is maintained shard by shard; any
// other service — a single Engine, durable-wrapped or not — is one
// maintenance unit rebuilt whole.
type serviceTarget struct {
	svc Service
}

func (t serviceTarget) sharded() (ShardRebuilder, bool) {
	sr, ok := t.svc.(ShardRebuilder)
	return sr, ok && sr.ShardCount() > 1
}

func (t serviceTarget) Samples() []maint.Sample {
	if sr, ok := t.sharded(); ok {
		infos := sr.ShardStats()
		out := make([]maint.Sample, 0, len(infos))
		for j, info := range infos {
			if info.State != ShardBuilt.String() {
				// Pending shards have nothing to compact; a building
				// shard is already being rebuilt.
				continue
			}
			out = append(out, maint.Sample{
				Unit:           j,
				OverlayRatio:   info.Stats.OverlayRatio,
				TombstoneRatio: info.Stats.TombstoneRatio,
				Quarantined:    info.Health == maint.Quarantined.String(),
			})
		}
		return out
	}
	st, err := t.svc.Stats()
	if err != nil {
		// Not built yet: nothing to maintain.
		return nil
	}
	return []maint.Sample{{Unit: 0, OverlayRatio: st.OverlayRatio, TombstoneRatio: st.TombstoneRatio}}
}

func (t serviceTarget) Rebuild(unit int) error {
	if sr, ok := t.sharded(); ok {
		return sr.RebuildShard(unit)
	}
	return t.svc.Rebuild()
}

// StartMaintenance starts a background maintenance loop over svc and
// returns its Maintainer. For a DurableService, every maintenance
// rebuild goes through the durable write path, so it is WAL-logged
// (OpRebuild / OpRebuildShard) like any caller-initiated rebuild.
func StartMaintenance(svc Service, o MaintenanceOptions) *Maintainer {
	return &Maintainer{mgr: maint.NewManager(serviceTarget{svc: svc}, maint.Config{
		Interval:           o.Interval,
		MinRebuildGap:      o.MinRebuildGap,
		OverlayWatermark:   o.OverlayWatermark,
		TombstoneWatermark: o.TombstoneWatermark,
		Guard:              o.Guard,
		Logf:               o.Logf,
		Seed:               o.Seed,
	})}
}

// Stats reports the maintainer's counters for serving-layer exposure.
func (m *Maintainer) Stats() MaintStats {
	return MaintStats{
		Enabled:  true,
		Paused:   m.mgr.Paused(),
		Rebuilds: m.mgr.Rebuilds(),
		Failures: m.mgr.Failures(),
		Debt:     m.mgr.Debt(),
		LastUnit: m.mgr.LastUnit(),
	}
}

// Rebuilds returns how many maintenance rebuilds completed successfully.
func (m *Maintainer) Rebuilds() uint64 { return m.mgr.Rebuilds() }

// Pause suspends rebuild decisions; sampling continues. Idempotent.
func (m *Maintainer) Pause() { m.mgr.Pause() }

// Resume re-enables rebuild decisions. Idempotent.
func (m *Maintainer) Resume() { m.mgr.Resume() }

// Kick asks the loop to sample immediately instead of waiting for the
// next tick.
func (m *Maintainer) Kick() { m.mgr.Kick() }

// Close stops the maintenance loop, waiting for any in-flight rebuild.
// Safe to call more than once.
func (m *Maintainer) Close() { m.mgr.Close() }
