// Package must is a Go implementation of MUST — the Multimodal Search of
// Target Modality framework (Wang et al., ICDE 2024). It answers queries
// that combine a target-modality example (e.g. a reference image) with
// auxiliary-modality constraints (e.g. an edit described in text) against
// a corpus of multimodal objects.
//
// The framework has three pluggable stages (§IV of the paper):
//
//  1. Embedding: every object and query is represented by one vector per
//     modality (multi-vector representation, §V). Any encoder can produce
//     these vectors; this package consumes the vectors directly.
//  2. Vector weight learning (§VI): LearnWeights fits per-modality
//     importance weights ω with a contrastive objective so the joint
//     similarity Σ ω_i²·IP_i ranks true results first. Weights may also be
//     set manually (user-defined weights, §VIII-F).
//  3. Fused indexing and joint search (§VII): Build constructs one
//     proximity graph over the weighted concatenated vectors; Index.Search
//     routes greedily through it under the joint similarity, with the
//     multi-vector partial-IP optimization of Lemma 4.
//
// # Quick start
//
// The Engine is the recommended entry point: named modalities, typed
// Query/Response with per-modality score breakdowns, context-aware
// search, and safety under concurrent Search/Insert/Delete/Rebuild:
//
//	e, _ := must.NewEngine(must.Schema{{"image", 128}, {"text", 32}}, must.EngineOptions{})
//	for _, o := range objects { e.Insert(o) }  // NamedVectors per object
//	e.LearnWeights(trainQueries, trainPositives, must.WeightConfig{})
//	e.Build()
//	resp, _ := e.Search(ctx, must.Query{Vectors: must.NamedVectors{"image": img, "text": txt}, K: 10})
//
// # Low-level layer
//
// Collection/Build/Index remain as the positional single-goroutine layer
// the Engine delegates to:
//
//	c := must.NewCollection(128, 32)          // two modalities
//	for _, o := range objects { c.Add(o) }    // [][]float32 per object
//	w, _ := must.LearnWeights(c, trainQueries, trainPositives, must.WeightConfig{})
//	ix, _ := must.Build(c, w, must.BuildOptions{})
//	matches, _ := ix.Search(query, must.SearchOptions{K: 10})
package must

import (
	"fmt"
	"math"

	"must/internal/graph"
	"must/internal/index"
	"must/internal/search"
	"must/internal/vec"
	"must/internal/weights"
)

// Object is one multimodal object or query: one embedding vector per
// modality. Modality 0 is the target modality. Vectors should be
// L2-normalized; Collection.Add normalizes defensively.
type Object = [][]float32

// Weights are the per-modality importance weights ω of §VI. The joint
// similarity between two objects is Σ ω_i² · IP(a_i, b_i) (Lemma 1).
type Weights = []float32

// Collection accumulates multimodal objects with a fixed modality layout.
//
// Vectors live in one shared arena-backed vec.FlatStore from the moment
// they are added: Add normalizes each modality directly into the next
// packed row, and the same store is what graph construction, every pooled
// searcher, brute-force scans, and persistence operate on — the corpus is
// resident exactly once. The store's arena is chunked, so appends never
// move existing rows and zero-copy views handed out earlier stay valid.
type Collection struct {
	dims []int
	// names optionally labels the modalities (set by the Engine's Schema
	// and preserved by the v2+ persistence formats); nil for collections
	// created positionally.
	names []string
	// store is the single packed corpus; nil until the first Add (or
	// installed whole by the collection loaders).
	store *vec.FlatStore
}

// NewCollection creates a collection whose objects have one vector per
// modality with the given dimensions. Modality 0 is the target modality.
func NewCollection(dims ...int) *Collection {
	out := &Collection{dims: append([]int(nil), dims...)}
	return out
}

// Modalities returns the number of modalities per object.
func (c *Collection) Modalities() int { return len(c.dims) }

// Dims returns the per-modality vector dimensions.
func (c *Collection) Dims() []int { return append([]int(nil), c.dims...) }

// Names returns the per-modality names, or nil if the collection was
// created without a schema.
func (c *Collection) Names() []string {
	if c.names == nil {
		return nil
	}
	return append([]string(nil), c.names...)
}

// Len returns the number of objects added.
func (c *Collection) Len() int {
	if c.store == nil {
		return 0
	}
	return c.store.Len()
}

// Add validates, normalizes and stores an object, returning its ID
// (position). IDs are dense and stable. The vectors are packed straight
// into the collection's shared flat store — no per-object allocation and
// no later re-copy into a search-time layout.
func (c *Collection) Add(o Object) (int, error) {
	if len(c.dims) == 0 {
		return 0, fmt.Errorf("must: collection has no modalities configured")
	}
	if len(o) != len(c.dims) {
		return 0, fmt.Errorf("must: object has %d modalities, collection expects %d", len(o), len(c.dims))
	}
	for i, v := range o {
		if len(v) != c.dims[i] {
			return 0, fmt.Errorf("must: modality %d has dim %d, collection expects %d", i, len(v), c.dims[i])
		}
		if err := checkFinite(v); err != nil {
			return 0, fmt.Errorf("must: modality %d: %w", i, err)
		}
	}
	if c.store == nil {
		// First Add: validate the layout before the store constructor (which
		// treats bad dims as a caller bug and panics) — NewCollection does
		// not validate, so a degenerate dimension surfaces here as an error.
		for i, d := range c.dims {
			if d <= 0 {
				return 0, fmt.Errorf("must: modality %d has non-positive dim %d", i, d)
			}
		}
		c.store = vec.NewFlatStore(c.dims, 0)
	}
	row := c.store.AppendRow()
	offs := c.store.Offsets()
	for i, v := range o {
		seg := row[offs[i]:offs[i+1]]
		copy(seg, v)
		vec.Normalize(seg)
	}
	return c.store.Len() - 1, nil
}

// checkFinite rejects NaN/Inf coordinates, which would silently poison
// every similarity they touch.
func checkFinite(v []float32) error {
	for i, x := range v {
		if x != x || x > math.MaxFloat32 || x < -math.MaxFloat32 {
			return fmt.Errorf("non-finite value at coordinate %d", i)
		}
	}
	return nil
}

// Object returns a copy of the stored object with the given ID.
func (c *Collection) Object(id int) (Object, error) {
	if id < 0 || id >= c.Len() {
		return nil, fmt.Errorf("must: object id %d out of range [0,%d)", id, c.Len())
	}
	mv := c.store.Multi(id)
	out := make(Object, len(mv))
	for i, v := range mv {
		out[i] = vec.Clone(v)
	}
	return out, nil
}

// multi returns the stored object as zero-copy views into the shared
// store's packed row.
func (c *Collection) multi(id int) vec.Multi { return c.store.Multi(id) }

// UniformWeights returns equal weights for every modality (ω_i² = 1/m),
// the no-learning default.
func (c *Collection) UniformWeights() Weights {
	return vec.Uniform(len(c.dims))
}

// flatStore returns the collection's shared corpus store (nil only while
// the collection is empty and has never loaded). Every layer — build,
// search, brute force, persistence — views this one store; incremental
// Adds append to it without invalidating outstanding views, so there is
// no untrusted-arena slow path anymore.
func (c *Collection) flatStore() *vec.FlatStore { return c.store }

// query converts and validates an external query against the collection
// layout.
func (c *Collection) query(q Object) (vec.Multi, error) {
	if len(q) != len(c.dims) {
		return nil, fmt.Errorf("must: query has %d modalities, collection expects %d", len(q), len(c.dims))
	}
	mv := make(vec.Multi, len(q))
	for i, v := range q {
		if v == nil {
			// Missing modality: zero vector, excluded by a zero weight at
			// search time (§VII-B).
			mv[i] = make([]float32, c.dims[i])
			continue
		}
		if len(v) != c.dims[i] {
			return nil, fmt.Errorf("must: query modality %d has dim %d, expects %d", i, len(v), c.dims[i])
		}
		mv[i] = vec.Normalized(v)
	}
	return mv, nil
}

// WeightConfig configures LearnWeights; the zero value uses the paper's
// defaults (learning rate 0.002, 700 epochs, 10 hard negatives).
type WeightConfig struct {
	// LearningRate is the gradient-descent step size.
	LearningRate float64
	// Epochs is the number of training passes.
	Epochs int
	// Negatives is the number of negative examples per anchor |N−|.
	Negatives int
	// RandomNegatives disables hard-negative mining (used for ablation;
	// keep false for the paper's method).
	RandomNegatives bool
	// Seed fixes training randomness.
	Seed int64
}

// LearnWeights fits modality weights from training pairs: queries[i]'s
// true answer is the collection object positives[i]. The pool of true
// objects (the paper's T) is exactly the referenced objects.
func LearnWeights(c *Collection, queries []Object, positives []int, cfg WeightConfig) (Weights, error) {
	if len(queries) != len(positives) {
		return nil, fmt.Errorf("must: %d queries but %d positives", len(queries), len(positives))
	}
	anchors := make([]vec.Multi, len(queries))
	for i, q := range queries {
		mv, err := c.query(q)
		if err != nil {
			return nil, fmt.Errorf("must: training query %d: %w", i, err)
		}
		anchors[i] = mv
	}
	// Build the pool T and remap positives into it.
	poolIDs := make(map[int]int)
	var pool []vec.Multi
	remapped := make([]int, len(positives))
	for i, p := range positives {
		if p < 0 || p >= c.Len() {
			return nil, fmt.Errorf("must: positive %d of query %d out of range", p, i)
		}
		idx, ok := poolIDs[p]
		if !ok {
			idx = len(pool)
			poolIDs[p] = idx
			pool = append(pool, c.multi(p))
		}
		remapped[i] = idx
	}
	res, err := weights.Train(anchors, remapped, pool, weights.Config{
		LearningRate:  cfg.LearningRate,
		Epochs:        cfg.Epochs,
		NumNegatives:  cfg.Negatives,
		HardNegatives: !cfg.RandomNegatives,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return res.Weights, nil
}

// GraphAlgorithm selects the index-construction algorithm.
type GraphAlgorithm int

// Supported graph algorithms (§VIII-G). AlgoOurs is the paper's optimized
// component assembly and the default.
const (
	AlgoOurs GraphAlgorithm = iota
	AlgoKGraph
	AlgoNSG
	AlgoNSSG
	AlgoHNSW
	AlgoVamana
	AlgoHCNNG
)

// String names the algorithm.
func (a GraphAlgorithm) String() string {
	switch a {
	case AlgoOurs:
		return "Ours"
	case AlgoKGraph:
		return "KGraph"
	case AlgoNSG:
		return "NSG"
	case AlgoNSSG:
		return "NSSG"
	case AlgoHNSW:
		return "HNSW"
	case AlgoVamana:
		return "Vamana"
	case AlgoHCNNG:
		return "HCNNG"
	default:
		return fmt.Sprintf("GraphAlgorithm(%d)", int(a))
	}
}

// BuildOptions configures index construction; the zero value uses the
// paper's defaults (γ = 30, ε = 3, the "Ours" pipeline).
type BuildOptions struct {
	// Gamma is the maximum out-degree γ (Appendix H; default 30).
	Gamma int
	// Iterations is the NNDescent iteration cap ε (default 3).
	Iterations int
	// Algorithm selects the graph construction (default AlgoOurs).
	Algorithm GraphAlgorithm
	// Seed fixes construction randomness.
	Seed int64
}

// Index is a built fused index over a collection snapshot.
type Index struct {
	c   *Collection
	f   *index.Fused
	opt BuildOptions
	// dead marks tombstoned objects (§IX index updates): they keep
	// routing traffic — proximity graphs need them for connectivity — but
	// are never returned. A rebuild (Build on a compacted collection)
	// removes them for real.
	dead []bool
	// deadCount tracks the set bits of dead so Deleted (called on every
	// Engine.Len and by maintenance sampling) stays O(1).
	deadCount int
}

// Build constructs the fused proximity-graph index over the collection
// under the given weights.
func Build(c *Collection, w Weights, opts BuildOptions) (*Index, error) {
	if c.Len() == 0 {
		return nil, fmt.Errorf("must: cannot index an empty collection")
	}
	if len(w) != c.Modalities() {
		return nil, fmt.Errorf("must: %d weights for %d modalities", len(w), c.Modalities())
	}
	if opts.Gamma == 0 {
		opts.Gamma = 30
	}
	if opts.Iterations == 0 {
		opts.Iterations = 3
	}
	wv := vec.Weights(w)
	// Build consumes the collection's shared store directly: the weighted
	// fused block is materialized only for the duration of construction
	// and released before Build returns, so the built system holds the
	// corpus exactly once.
	st := c.flatStore()
	var (
		f   *index.Fused
		err error
	)
	switch opts.Algorithm {
	case AlgoOurs:
		f, err = index.BuildFusedStore(st, wv, graph.Ours(opts.Gamma, opts.Iterations, opts.Seed))
	case AlgoKGraph:
		f, err = index.BuildFusedStore(st, wv, graph.KGraphAssembly(opts.Gamma, opts.Iterations, opts.Seed))
	case AlgoNSG:
		f, err = index.BuildFusedStore(st, wv, graph.NSGAssembly(opts.Gamma, opts.Iterations, 2*opts.Gamma, opts.Seed))
	case AlgoNSSG:
		f, err = index.BuildFusedStore(st, wv, graph.NSSGAssembly(opts.Gamma, opts.Iterations, opts.Seed))
	case AlgoHNSW:
		f, err = index.BuildFusedGraphStore(st, wv, "HNSW", func(s *graph.Space) *graph.Graph {
			return graph.BuildHNSW(s, graph.HNSWConfig{M: opts.Gamma / 2, EfConstruction: 4 * opts.Gamma, Seed: opts.Seed})
		})
	case AlgoVamana:
		f, err = index.BuildFusedGraphStore(st, wv, "Vamana", func(s *graph.Space) *graph.Graph {
			return graph.BuildVamana(s, graph.VamanaConfig{Gamma: opts.Gamma, Beam: 2 * opts.Gamma, Alpha: 1.2, Seed: opts.Seed})
		})
	case AlgoHCNNG:
		f, err = index.BuildFusedGraphStore(st, wv, "HCNNG", func(s *graph.Space) *graph.Graph {
			return graph.BuildHCNNG(s, graph.HCNNGConfig{Rounds: 3, LeafSize: 200, MaxDegree: opts.Gamma, Seed: opts.Seed})
		})
	default:
		return nil, fmt.Errorf("must: unknown graph algorithm %v", opts.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	return &Index{c: c, f: f, opt: opts}, nil
}

// Match is one search result.
type Match struct {
	// ID is the collection object ID.
	ID int
	// Similarity is the joint similarity to the query under the weights
	// in effect.
	Similarity float32
}

// SearchOptions configures one search; the zero value means K=10,
// L=4·K, learned/index weights, Lemma 4 optimization on.
type SearchOptions struct {
	// K is the number of results (default 10).
	K int
	// L is the result-set size l of Algorithm 2 (default max(4K, 100));
	// larger L trades speed for recall (Tab. XII).
	L int
	// Weights optionally overrides the index weights at query time — the
	// user-defined weight preference of §VIII-F (Tab. IX). Must have one
	// weight per modality; a zero weight skips that modality (§VII-B).
	Weights Weights
	// DisableOptimization turns off the Lemma 4 partial-IP early
	// termination (used by the Fig. 10(c) ablation).
	DisableOptimization bool
	// Filter restricts results to objects it accepts — the hybrid
	// vector-plus-constraint query setting of §III. Rejected objects
	// still route; raise L when the filter is selective.
	Filter func(id int) bool
	// Patience enables adaptive early termination: stop routing after
	// this many consecutive non-improving hops (0 = full Algorithm 2).
	// Trades a little recall for latency.
	Patience int
}

// Search returns the approximate top-K objects for the multimodal query.
// A nil entry in the query marks a missing modality; pair it with a zero
// weight override (or rely on learned weights for present modalities).
func (ix *Index) Search(q Object, opts SearchOptions) ([]Match, error) {
	if opts.K == 0 {
		opts.K = 10
	}
	if opts.L == 0 {
		opts.L = 4 * opts.K
		if opts.L < 100 {
			opts.L = 100
		}
	}
	mv, err := ix.c.query(q)
	if err != nil {
		return nil, err
	}
	w := vec.Weights(ix.f.Weights)
	if opts.Weights != nil {
		if len(opts.Weights) != ix.c.Modalities() {
			return nil, fmt.Errorf("must: %d override weights for %d modalities", len(opts.Weights), ix.c.Modalities())
		}
		w = vec.Weights(opts.Weights)
	}
	// The searcher shares the index's flat store; everything per-call goes
	// through SearchParams.
	s := ix.f.NewSearcher()
	res, _, err := s.SearchParams(mv, search.Params{
		K:          opts.K,
		L:          opts.L,
		Weights:    w,
		Filter:     opts.Filter,
		Tombstones: ix.dead,
		Patience:   opts.Patience,
		Optimize:   !opts.DisableOptimization,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Match, len(res))
	for i, r := range res {
		out[i] = Match{ID: r.ID, Similarity: r.IP}
	}
	return out, nil
}

// Weights returns the weights the index was built with.
func (ix *Index) Weights() Weights {
	return append(Weights(nil), ix.f.Weights...)
}

// Delete tombstones an object (§IX of the paper): it is excluded from all
// future results but keeps participating in graph routing, since removing
// vertices can disconnect a proximity graph. The object is physically
// dropped at the next rebuild. Delete is idempotent.
func (ix *Index) Delete(id int) error {
	n := ix.f.Graph.NumVertices()
	if id < 0 || id >= n {
		return fmt.Errorf("must: delete id %d out of range [0,%d)", id, n)
	}
	if len(ix.dead) < n {
		grown := make([]bool, n)
		copy(grown, ix.dead)
		ix.dead = grown
	}
	if !ix.dead[id] {
		ix.dead[id] = true
		ix.deadCount++
	}
	return nil
}

// Insert adds a new object to both the collection and the live index
// using incremental linking (§IX dynamic updates): the object searches
// for its own neighborhood and is wired in with MRNG-selected edges, the
// scheme HNSW and Vamana use. Periodic rebuilds (Build) remain advisable
// after many inserts and deletes, per the paper.
func (ix *Index) Insert(o Object) (int, error) {
	id, err := ix.c.Add(o)
	if err != nil {
		return 0, err
	}
	// The row is already in the shared store; the index just links it.
	if err := ix.f.Insert(id, ix.opt.Gamma, 0); err != nil {
		return 0, err
	}
	return id, nil
}

// Deleted reports how many objects are tombstoned. When this grows large
// relative to the collection, rebuild the index (the paper's periodic
// reconstruction, §IX).
func (ix *Index) Deleted() int {
	return ix.deadCount
}

// Stats summarizes the built index, including the per-component memory
// accounting of the single-store architecture: CorpusBytes is the one
// resident copy of the vectors, FusedBytes is the transient weighted
// build buffer (always 0 on a built index — it is released before Build
// returns), and SizeBytes is the graph.
// Stats is part of the serving API surface: /v1/stats marshals it
// verbatim, so the JSON field names below are a stable contract —
// rename a Go field if you must, but keep the tag.
type Stats struct {
	// Objects is the indexed object count.
	Objects int `json:"objects"`
	// Edges is the directed edge count of the proximity graph.
	Edges int `json:"edges"`
	// AvgDegree is the mean out-degree.
	AvgDegree float64 `json:"avg_degree"`
	// SizeBytes is the graph memory footprint: the flat CSR edge array
	// (4 B/edge) plus the per-vertex offsets (4 B/vertex) plus any live
	// incremental-insert overlay (0 in steady state).
	SizeBytes int64 `json:"size_bytes"`
	// GraphBytesPerEdge is SizeBytes normalized by Edges — ≈4.2 B/edge
	// for a sealed CSR topology at the default degree bound (the
	// slice-of-slices layout it replaced paid 4 B/edge + 24 B/vertex of
	// headers on top).
	GraphBytesPerEdge float64 `json:"graph_bytes_per_edge"`
	// CorpusBytes is the memory committed to the shared vector store —
	// the single copy of the corpus every layer views.
	CorpusBytes int64 `json:"corpus_bytes"`
	// RawVectorBytes is the payload lower bound: objects × concatenated
	// dim × 4 bytes. CorpusBytes/RawVectorBytes ≈ 1 demonstrates the
	// single-copy property (growable-arena slack keeps it ≤ ~1.2 even
	// after incremental inserts).
	RawVectorBytes int64 `json:"raw_vector_bytes"`
	// FusedBytes is the transient weighted-concatenation buffer used
	// during construction; 0 once the index is built.
	FusedBytes int64 `json:"fused_bytes"`
	// QuantizedBytes is the memory committed to the SQ8 shadow store
	// (≈ CorpusBytes/4); 0 when quantization is not enabled.
	QuantizedBytes int64 `json:"quantized_bytes"`
	// OverlayVertices counts vertices living in the incremental-insert
	// overlay rather than the sealed CSR — the compaction debt a rebuild
	// pays off.
	OverlayVertices int `json:"overlay_vertices"`
	// OverlayRatio is OverlayVertices / Objects: the maintenance
	// scheduler compares it against its overlay watermark.
	OverlayRatio float64 `json:"overlay_ratio"`
	// TombstoneRatio is tombstoned objects / Objects: the fraction of
	// the graph that routes but never returns. The maintenance scheduler
	// compares it against its tombstone watermark.
	TombstoneRatio float64 `json:"tombstone_ratio"`
	// KernelVariant names the dot-kernel implementation serving this
	// process: "avx2", "neon", or "go" (the pure-Go fallback).
	KernelVariant string `json:"kernel_variant"`
	// BuildTime is the wall-clock construction time in nanoseconds.
	BuildTime int64 `json:"build_time_ns"`
	// Algorithm names the construction pipeline.
	Algorithm string `json:"algorithm"`
}

// Stats reports index statistics.
func (ix *Index) Stats() Stats {
	raw := int64(0)
	quant := int64(0)
	if st := ix.f.Store; st != nil {
		raw = int64(st.Len()) * int64(st.RowDim()) * 4
		quant = st.QuantizedBytes()
	}
	edges := ix.f.Graph.NumEdges()
	var perEdge float64
	if edges > 0 {
		perEdge = float64(ix.f.SizeBytes()) / float64(edges)
	}
	objects := ix.f.Graph.NumVertices()
	overlay := ix.f.Graph.OverlayVertices()
	var overlayRatio, tombstoneRatio float64
	if objects > 0 {
		overlayRatio = float64(overlay) / float64(objects)
		tombstoneRatio = float64(ix.deadCount) / float64(objects)
	}
	return Stats{
		Objects:           objects,
		Edges:             edges,
		AvgDegree:         ix.f.Graph.AvgDegree(),
		SizeBytes:         ix.f.SizeBytes(),
		GraphBytesPerEdge: perEdge,
		CorpusBytes:       ix.f.CorpusBytes(),
		RawVectorBytes:    raw,
		FusedBytes:        ix.f.FusedBytes(),
		QuantizedBytes:    quant,
		OverlayVertices:   overlay,
		OverlayRatio:      overlayRatio,
		TombstoneRatio:    tombstoneRatio,
		KernelVariant:     vec.KernelName(),
		BuildTime:         int64(ix.f.BuildTime),
		Algorithm:         ix.f.Pipeline,
	}
}

// Save writes the index structure to a file; the collection itself is not
// stored (persist your vectors separately and pass the same collection to
// LoadIndex).
func (ix *Index) Save(path string) error { return ix.f.Save(path) }

// LoadIndex reads an index saved with Save and attaches it to the
// collection it was built over. Build options are not stored in the index
// file, so the loaded index assumes the paper defaults (γ=30, ε=3) for
// subsequent Insert linking; set them explicitly with SetBuildOptions if
// the index was built with different parameters.
func LoadIndex(path string, c *Collection) (*Index, error) {
	// The index attaches the collection's shared store directly — loaded
	// systems are single-copy from the first search, and subsequent
	// Collection.Add/Index.Insert appends extend the same store.
	f, err := index.Load(path, c.flatStore())
	if err != nil {
		return nil, err
	}
	opt := BuildOptions{Gamma: 30, Iterations: 3}
	return &Index{c: c, f: f, opt: opt}, nil
}

// SetBuildOptions overrides the build parameters a loaded index uses for
// incremental Insert linking (Gamma and Iterations default when zero).
func (ix *Index) SetBuildOptions(opts BuildOptions) {
	if opts.Gamma == 0 {
		opts.Gamma = 30
	}
	if opts.Iterations == 0 {
		opts.Iterations = 3
	}
	ix.opt = opts
}

// ExactSearch performs exhaustive exact retrieval (the paper's MUST--),
// useful for ground truth and for small collections.
func (c *Collection) ExactSearch(q Object, w Weights, k int) ([]Match, error) {
	mv, err := c.query(q)
	if err != nil {
		return nil, err
	}
	if len(w) != c.Modalities() {
		return nil, fmt.Errorf("must: %d weights for %d modalities", len(w), c.Modalities())
	}
	bf := &index.BruteForce{Store: c.flatStore(), Weights: vec.Weights(w)}
	res := bf.TopK(mv, k)
	out := make([]Match, len(res))
	for i, r := range res {
		out[i] = Match{ID: r.ID, Similarity: r.IP}
	}
	return out, nil
}
