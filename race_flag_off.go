//go:build !race

package must

// raceDetectorOn reports whether the binary was built with -race;
// heavyweight soak parameters shrink when it is.
const raceDetectorOn = false
