package must

import (
	"math/rand"
	"testing"
)

// Deletion semantics (§IX): tombstoned objects disappear from results but
// keep routing, and searches still reach everything else.
func TestDeleteExcludesFromResults(t *testing.T) {
	c, queries, truths := buildCorpus(t, 400, 10, 21)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 14, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: the planted answer is found.
	ms, err := ix.Search(queries[0], SearchOptions{K: 3, L: 200})
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].ID != truths[0] {
		t.Skip("planted answer not top-1 at this seed; deletion test needs it")
	}
	if err := ix.Delete(truths[0]); err != nil {
		t.Fatal(err)
	}
	if ix.Deleted() != 1 {
		t.Fatalf("Deleted() = %d", ix.Deleted())
	}
	after, err := ix.Search(queries[0], SearchOptions{K: 3, L: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range after {
		if m.ID == truths[0] {
			t.Fatal("deleted object still returned")
		}
	}
	if len(after) != 3 {
		t.Fatalf("got %d results after deletion, want 3", len(after))
	}
}

func TestDeleteIsIdempotentAndValidated(t *testing.T) {
	c, _, _ := buildCorpus(t, 100, 5, 23)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 10, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(5); err != nil {
		t.Fatal(err)
	}
	if ix.Deleted() != 1 {
		t.Fatalf("Deleted() = %d after double delete", ix.Deleted())
	}
	if err := ix.Delete(-1); err == nil {
		t.Error("negative id did not error")
	}
	if err := ix.Delete(100); err == nil {
		t.Error("out-of-range id did not error")
	}
}

// Mass deletion must not break routing: with half the corpus tombstoned,
// searches still return k live results.
func TestMassDeletionKeepsRouting(t *testing.T) {
	c, queries, _ := buildCorpus(t, 300, 10, 25)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 12, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(27))
	for i := 0; i < 150; i++ {
		if err := ix.Delete(rng.Intn(300)); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range queries {
		ms, err := ix.Search(q, SearchOptions{K: 5, L: 250})
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 5 {
			t.Fatalf("got %d live results, want 5", len(ms))
		}
		for _, m := range ms {
			if ix.dead[m.ID] {
				t.Fatal("tombstoned object returned")
			}
		}
	}
}

// Rebuilding after deletions restores a clean index (the paper's periodic
// reconstruction).
func TestRebuildClearsTombstones(t *testing.T) {
	c, queries, _ := buildCorpus(t, 200, 5, 28)
	ix, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 10, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(0); err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(c, c.UniformWeights(), BuildOptions{Gamma: 10, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Deleted() != 0 {
		t.Fatalf("fresh index reports %d deletions", fresh.Deleted())
	}
	if _, err := fresh.Search(queries[0], SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
}
